package repro_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestPredictMatchesCLI is the model-engine acceptance pin: the
// daemon's synchronous POST /v1/predict and `sim1901 -scenario -engine
// model` must return byte-identical reports for the same spec, cached
// or not.
func TestPredictMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	sim1901 := buildTool(t, bin, "sim1901")
	plcsrv := buildTool(t, bin, "plcsrv")
	const spec = "examples/scenarios/model-saturation-sweep.json"

	// Reference: the CLI's exact bytes. -engine model on an
	// already-model spec is a no-op override, exercising the flag.
	cli := exec.Command(sim1901, "-scenario", spec, "-engine", "model")
	var cliStderr bytes.Buffer
	cli.Stderr = &cliStderr
	want, err := cli.Output()
	if err != nil {
		t.Fatalf("sim1901: %v\n%s", err, cliStderr.String())
	}

	srv := exec.Command(plcsrv, "-listen", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("plcsrv never printed its address")
	}

	specJSON, err := os.ReadFile(spec)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"spec":%s}`, specJSON)
	for round, wantCache := range []string{"miss", "hit"} {
		resp, err := http.Post(base+"/v1/predict?format=text", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict round %d: status %d\n%s", round, resp.StatusCode, got)
		}
		if xc := resp.Header.Get("X-Cache"); xc != wantCache {
			t.Errorf("predict round %d: X-Cache %q, want %q", round, xc, wantCache)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("predict round %d differs from sim1901 -engine model:\n--- served ---\n%s--- cli ---\n%s", round, got, want)
		}
	}
}

// TestServeMatchesCLI is the serving architecture's acceptance pin:
// plcsrv serves concurrent scenario submissions through the job queue,
// a repeated identical submission is answered from the cache
// bit-identically to the first computed result, and both are
// bit-identical to `sim1901 -scenario` on the same spec.
func TestServeMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	sim1901 := buildTool(t, bin, "sim1901")
	plcsrv := buildTool(t, bin, "plcsrv")
	const spec = "testdata/scenarios/tiny-sweep.json"
	const reps = 3

	// Reference: the CLI's exact bytes.
	cli := exec.Command(sim1901, "-scenario", spec, "-reps", fmt.Sprint(reps))
	var cliStderr bytes.Buffer
	cli.Stderr = &cliStderr
	want, err := cli.Output()
	if err != nil {
		t.Fatalf("sim1901: %v\n%s", err, cliStderr.String())
	}

	// Boot the daemon.
	srv := exec.Command(plcsrv, "-listen", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("plcsrv never printed its address")
	}

	specJSON, err := os.ReadFile(spec)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"spec":%s,"reps":%d}`, specJSON, reps)

	// Fire several concurrent submissions of the same study: one
	// computes, the rest coalesce onto it or hit the cache — never a
	// duplicate simulation, and everyone sees the same job outcome.
	type subResult struct {
		sub  serve.SubmitResponse
		code int
		err  error
	}
	const clients = 4
	results := make(chan subResult, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				results <- subResult{err: err}
				return
			}
			defer resp.Body.Close()
			var sr subResult
			sr.code = resp.StatusCode
			sr.err = json.NewDecoder(resp.Body).Decode(&sr.sub)
			results <- sr
		}()
	}
	var ids []string
	for i := 0; i < clients; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.code != http.StatusAccepted && r.code != http.StatusOK {
			t.Fatalf("submission rejected: %d", r.code)
		}
		ids = append(ids, r.sub.ID)
	}

	// Wait for every submission's job and collect the text rendering.
	fetchText := func(id string) []byte {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, err := http.Get(base + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var st serve.Status
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if st.State == serve.StateDone {
				break
			}
			if st.State.Terminal() {
				t.Fatalf("job %s: %+v", id, st)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished", id)
			}
			time.Sleep(10 * time.Millisecond)
		}
		resp, err := http.Get(base + "/v1/jobs/" + id + "/result?format=text")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	for _, id := range ids {
		if got := fetchText(id); !bytes.Equal(got, want) {
			t.Fatalf("served text for job %s differs from sim1901 -scenario:\n--- served ---\n%s--- cli ---\n%s", id, got, want)
		}
	}

	// A fresh repeated submission must now be a cache hit with the
	// same bytes again.
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var again serve.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !again.Cached {
		t.Fatalf("repeat submission: code=%d resp=%+v, want cached", resp.StatusCode, again)
	}
	if got := fetchText(again.ID); !bytes.Equal(got, want) {
		t.Fatalf("cached text differs from sim1901 -scenario:\n--- cached ---\n%s--- cli ---\n%s", got, want)
	}

	// Accounting: every submission was either computed, coalesced, or
	// a cache hit — and at least one computed. Submit's lock-free cache
	// lookup permits a rare miss-then-completed race that recomputes a
	// bit-identical result, so "exactly one computed" would over-assert;
	// the bit-identity checks above are the real guarantee.
	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats serve.StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed < 1 {
		t.Errorf("completed jobs = %d, want ≥ 1", stats.Completed)
	}
	if total := stats.Completed + stats.CacheHits + stats.Coalesced; total != int64(clients)+1 {
		t.Errorf("completed (%d) + cache hits (%d) + coalesced (%d) = %d, want %d submissions accounted for",
			stats.Completed, stats.CacheHits, stats.Coalesced, total, clients+1)
	}
	if stats.CacheHits+stats.Coalesced < 1 {
		t.Errorf("no submission was deduplicated: %+v", stats)
	}
}

// bootPlcsrv starts the daemon on an ephemeral port and returns its
// base URL; the process dies with the test.
func bootPlcsrv(t *testing.T, plcsrv string) string {
	t.Helper()
	srv := exec.Command(plcsrv, "-listen", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Process.Kill()
		srv.Wait()
	})
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("plcsrv never printed its address")
		return ""
	}
}

// TestCampaignMatchesCLI is the campaign engine's acceptance pin: a
// two-axis campaign served through POST /v1/campaigns returns (a) text
// byte-identical to `sim1901 -campaign` on the same file, and (b)
// per-point reports byte-identical to running each expanded spec
// individually through `sim1901 -scenario`; a rerun is answered whole
// from the cache (X-Cache: hit) with zero additional simulation work,
// pinned via /v1/stats.
func TestCampaignMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	sim1901 := buildTool(t, bin, "sim1901")
	plcsrv := buildTool(t, bin, "plcsrv")
	const campFile = "testdata/campaigns/tiny-grid.json"

	// Reference: the CLI's exact bytes.
	cli := exec.Command(sim1901, "-campaign", campFile)
	var cliStderr bytes.Buffer
	cli.Stderr = &cliStderr
	want, err := cli.Output()
	if err != nil {
		t.Fatalf("sim1901 -campaign: %v\n%s", err, cliStderr.String())
	}

	base := bootPlcsrv(t, plcsrv)
	campJSON, err := os.ReadFile(campFile)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"campaign":%s}`, campJSON)

	submit := func() (*http.Response, serve.SubmitResponse) {
		t.Helper()
		resp, err := http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sub serve.SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, sub
	}
	resp, sub := submit()
	if resp.StatusCode != http.StatusAccepted || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first submission: status %d X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/campaigns/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st serve.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == serve.StateDone {
			if st.PointsDone != 4 || st.PointsTotal != 4 {
				t.Fatalf("done campaign reports %d/%d points", st.PointsDone, st.PointsTotal)
			}
			break
		}
		if st.State.Terminal() {
			t.Fatalf("campaign %s: %+v", sub.ID, st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never finished", sub.ID)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// (a) The served text equals the CLI's bytes.
	resp2, err := http.Get(base + "/v1/campaigns/" + sub.ID + "/result?format=text")
	if err != nil {
		t.Fatal(err)
	}
	gotText, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotText, want) {
		t.Fatalf("served campaign text differs from sim1901 -campaign:\n--- served ---\n%s--- cli ---\n%s", gotText, want)
	}

	// (b) Every grid point, run standalone through `sim1901 -scenario`
	// on its expanded spec, reproduces the served per-point report
	// byte for byte (compared via the CLI's text rendering).
	resp3, err := http.Get(base + "/v1/campaigns/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res serve.CampaignResult
	err = json.NewDecoder(resp3.Body).Decode(&res)
	resp3.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Report.Points {
		specJSON, err := p.Report.Spec.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		specFile := filepath.Join(bin, fmt.Sprintf("point-%d.json", p.Index))
		if err := os.WriteFile(specFile, specJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(sim1901, "-scenario", specFile, "-reps", fmt.Sprint(p.Reps))
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		standalone, err := cmd.Output()
		if err != nil {
			t.Fatalf("sim1901 -scenario point %d: %v\n%s", p.Index, err, stderr.String())
		}
		var served bytes.Buffer
		if err := p.Report.Write(&served); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(standalone, served.Bytes()) {
			t.Fatalf("point %d: standalone CLI run differs from the served campaign point:\n--- cli ---\n%s--- served ---\n%s",
				p.Index, standalone, served.String())
		}
	}

	// Rerun: answered whole from cache, zero extra simulation.
	resp4, sub2 := submit()
	if resp4.StatusCode != http.StatusOK || resp4.Header.Get("X-Cache") != "hit" || !sub2.Cached {
		t.Fatalf("rerun: status %d X-Cache %q cached=%v, want 200/hit/true",
			resp4.StatusCode, resp4.Header.Get("X-Cache"), sub2.Cached)
	}
	resp5, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats serve.StatsResponse
	err = json.NewDecoder(resp5.Body).Decode(&stats)
	resp5.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Campaigns != 2 || stats.CampaignCacheHits != 1 || stats.Completed != 1 {
		t.Errorf("stats = %+v, want 2 campaigns, 1 campaign cache hit, 1 completed job (no recomputation)", stats)
	}
}
