package repro_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestPredictMatchesCLI is the model-engine acceptance pin: the
// daemon's synchronous POST /v1/predict and `sim1901 -scenario -engine
// model` must return byte-identical reports for the same spec, cached
// or not.
func TestPredictMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	sim1901 := buildTool(t, bin, "sim1901")
	plcsrv := buildTool(t, bin, "plcsrv")
	const spec = "examples/scenarios/model-saturation-sweep.json"

	// Reference: the CLI's exact bytes. -engine model on an
	// already-model spec is a no-op override, exercising the flag.
	cli := exec.Command(sim1901, "-scenario", spec, "-engine", "model")
	var cliStderr bytes.Buffer
	cli.Stderr = &cliStderr
	want, err := cli.Output()
	if err != nil {
		t.Fatalf("sim1901: %v\n%s", err, cliStderr.String())
	}

	srv := exec.Command(plcsrv, "-listen", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("plcsrv never printed its address")
	}

	specJSON, err := os.ReadFile(spec)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"spec":%s}`, specJSON)
	for round, wantCache := range []string{"miss", "hit"} {
		resp, err := http.Post(base+"/v1/predict?format=text", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict round %d: status %d\n%s", round, resp.StatusCode, got)
		}
		if xc := resp.Header.Get("X-Cache"); xc != wantCache {
			t.Errorf("predict round %d: X-Cache %q, want %q", round, xc, wantCache)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("predict round %d differs from sim1901 -engine model:\n--- served ---\n%s--- cli ---\n%s", round, got, want)
		}
	}
}

// TestServeMatchesCLI is the serving architecture's acceptance pin:
// plcsrv serves concurrent scenario submissions through the job queue,
// a repeated identical submission is answered from the cache
// bit-identically to the first computed result, and both are
// bit-identical to `sim1901 -scenario` on the same spec.
func TestServeMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	sim1901 := buildTool(t, bin, "sim1901")
	plcsrv := buildTool(t, bin, "plcsrv")
	const spec = "testdata/scenarios/tiny-sweep.json"
	const reps = 3

	// Reference: the CLI's exact bytes.
	cli := exec.Command(sim1901, "-scenario", spec, "-reps", fmt.Sprint(reps))
	var cliStderr bytes.Buffer
	cli.Stderr = &cliStderr
	want, err := cli.Output()
	if err != nil {
		t.Fatalf("sim1901: %v\n%s", err, cliStderr.String())
	}

	// Boot the daemon.
	srv := exec.Command(plcsrv, "-listen", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("plcsrv never printed its address")
	}

	specJSON, err := os.ReadFile(spec)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"spec":%s,"reps":%d}`, specJSON, reps)

	// Fire several concurrent submissions of the same study: one
	// computes, the rest coalesce onto it or hit the cache — never a
	// duplicate simulation, and everyone sees the same job outcome.
	type subResult struct {
		sub  serve.SubmitResponse
		code int
		err  error
	}
	const clients = 4
	results := make(chan subResult, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				results <- subResult{err: err}
				return
			}
			defer resp.Body.Close()
			var sr subResult
			sr.code = resp.StatusCode
			sr.err = json.NewDecoder(resp.Body).Decode(&sr.sub)
			results <- sr
		}()
	}
	var ids []string
	for i := 0; i < clients; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.code != http.StatusAccepted && r.code != http.StatusOK {
			t.Fatalf("submission rejected: %d", r.code)
		}
		ids = append(ids, r.sub.ID)
	}

	// Wait for every submission's job and collect the text rendering.
	fetchText := func(id string) []byte {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, err := http.Get(base + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var st serve.Status
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if st.State == serve.StateDone {
				break
			}
			if st.State.Terminal() {
				t.Fatalf("job %s: %+v", id, st)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished", id)
			}
			time.Sleep(10 * time.Millisecond)
		}
		resp, err := http.Get(base + "/v1/jobs/" + id + "/result?format=text")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	for _, id := range ids {
		if got := fetchText(id); !bytes.Equal(got, want) {
			t.Fatalf("served text for job %s differs from sim1901 -scenario:\n--- served ---\n%s--- cli ---\n%s", id, got, want)
		}
	}

	// A fresh repeated submission must now be a cache hit with the
	// same bytes again.
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var again serve.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !again.Cached {
		t.Fatalf("repeat submission: code=%d resp=%+v, want cached", resp.StatusCode, again)
	}
	if got := fetchText(again.ID); !bytes.Equal(got, want) {
		t.Fatalf("cached text differs from sim1901 -scenario:\n--- cached ---\n%s--- cli ---\n%s", got, want)
	}

	// Accounting: every submission was either computed, coalesced, or
	// a cache hit — and at least one computed. Submit's lock-free cache
	// lookup permits a rare miss-then-completed race that recomputes a
	// bit-identical result, so "exactly one computed" would over-assert;
	// the bit-identity checks above are the real guarantee.
	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats serve.StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed < 1 {
		t.Errorf("completed jobs = %d, want ≥ 1", stats.Completed)
	}
	if total := stats.Completed + stats.CacheHits + stats.Coalesced; total != int64(clients)+1 {
		t.Errorf("completed (%d) + cache hits (%d) + coalesced (%d) = %d, want %d submissions accounted for",
			stats.Completed, stats.CacheHits, stats.Coalesced, total, clients+1)
	}
	if stats.CacheHits+stats.Coalesced < 1 {
		t.Errorf("no submission was deduplicated: %+v", stats)
	}
}
