// Sniffer: the Section 3.3 capture methodology. Station D's sniffer
// mode is enabled (MME 0xA034); the SoF delimiters of every PLC frame
// on the strip are captured and reduced to the paper's statistics —
// burst sizes via the MPDUCnt countdown, management overhead via the
// LinkID priority, and the per-source trace used by the fairness study.
//
// Run with:
//
//	go run ./examples/sniffer
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/config"
	"repro/internal/fairness"
	"repro/internal/hpav"
	"repro/internal/testbed"
)

func main() {
	tb, err := testbed.New(testbed.Options{
		N:              3,
		Seed:           11,
		MgmtMeanMicros: 50_000, // each station sends an MME every ~50 ms
	})
	if err != nil {
		log.Fatal(err)
	}
	tb.EnableSniffer()
	tb.Run(30e6) // 30 virtual seconds
	caps := tb.Captures()
	fmt.Printf("captured %d SoF delimiters at D in 30 s\n\n", len(caps))

	// Print the first few captures, faifa-style.
	for i, c := range caps[:8] {
		fmt.Printf("  [%d] t=%-9d stei=%d dtei=%d lid=%s mpducnt=%d pbs=%d fl=%.0fµs\n",
			i, c.TimestampMicros, c.SoF.STEI, c.SoF.DTEI, c.SoF.LinkID,
			c.SoF.MPDUCnt, c.SoF.PBCount, c.SoF.DurationMicros())
	}
	fmt.Println("  ...")

	a, err := testbed.AnalyzeCaptures(caps, config.CA1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nburst-size frequencies (bursts end at MPDUCnt = 0):\n")
	for size := 1; size <= hpav.MaxBurstMPDUs; size++ {
		fmt.Printf("  %d MPDUs: %d bursts\n", size, a.BurstSizes[size])
	}
	fmt.Printf("dominant burst size: %d (the paper measured 2)\n", a.DominantBurstSize())
	fmt.Printf("\ndata bursts: %d   MME bursts: %d\n", a.DataBursts, a.MgmtBursts)
	fmt.Printf("MME overhead (MME bursts / data bursts): %.4f\n", a.MMEOverhead())

	// Fairness from the same trace, at burst granularity.
	universe := make([]hpav.TEI, 0, len(a.SourceBursts))
	for tei := range a.SourceBursts {
		universe = append(universe, tei)
	}
	sort.Slice(universe, func(i, j int) bool { return universe[i] < universe[j] })

	counts := make([]int, len(universe))
	for i, tei := range universe {
		counts[i] = a.SourceBursts[tei]
	}
	fmt.Printf("\nper-source data bursts: ")
	for i, tei := range universe {
		fmt.Printf("TEI%d=%d ", tei, counts[i])
	}
	fmt.Printf("\nlong-term Jain index: %.4f\n", fairness.JainIndexInts(counts))

	if st, err := fairness.ShortTermJain(a.SourceSequence, universe, 10); err == nil {
		fmt.Printf("short-term Jain (window 10 bursts): %.4f — the 1901 short-term unfairness\n", st.MeanJain)
	}
}
