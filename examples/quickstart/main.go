// Quickstart: evaluate the IEEE 1901 CSMA/CA performance of a home
// power-line network three ways — simulator, analytical model, emulated
// HomePlug AV measurement — and print the Figure 2 comparison.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	fmt.Println("IEEE 1901 collision probability, three ways (CA1 defaults)")
	fmt.Println()
	fmt.Printf("%3s  %12s  %10s  %22s\n", "N", "simulation", "analysis", "measurement (±95% CI)")

	// Short horizons keep the example interactive (~1 s); the paper's
	// full setup (5·10⁸ µs simulations, 10 × 240 s tests) is just the
	// zero-value Scenario.
	base := core.Scenario{
		SimTimeMicros:      2e7,
		TestDurationMicros: 1e7,
		Tests:              3,
		Seed:               1,
	}
	evs, err := core.Sweep(base, []int{1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range evs {
		simP, modelP, measP := ev.CollisionProbabilities()
		fmt.Printf("%3d  %12.4f  %10.4f  %14.4f ± %.4f\n",
			ev.Scenario.N, simP, modelP, measP, ev.Measured.CI95)
	}

	fmt.Println()
	fmt.Println("Normalized throughput (simulator vs model), N = 3:")
	ev, err := core.Evaluate(core.Scenario{N: 3, SimTimeMicros: 2e7, Tests: 0, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  simulator: %.4f\n", ev.Simulation.NormalizedThroughput)
	fmt.Printf("  model:     %.4f\n", ev.AnalysisMetrics.NormalizedThroughput)
}
