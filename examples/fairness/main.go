// Fairness: replicates the authors' prior study ("Fairness of MAC
// protocols: IEEE 1901 vs 802.11") with this library: identical
// saturated scenarios run under both protocols, winner traces recorded,
// and the sliding-window Jain index compared across window sizes. The
// example also prints a Figure 1-style excerpt of the two-station
// backoff dynamics that cause the unfairness.
//
// Run with:
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	"repro/internal/backoff"
	"repro/internal/experiments"
	"repro/internal/fairness"
	"repro/internal/sim"
)

func main() {
	// Part 1: the Figure 1 dynamics.
	fmt.Println("Figure 1-style trace (2 saturated stations, CA1):")
	tbl, err := experiments.Figure1(3, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-10s %-12s %-12s %s\n", "event", "t (µs)", "A cw/dc/bc", "B cw/dc/bc", "outcome")
	for _, row := range tbl.Rows {
		fmt.Printf("%-6s %-10s %2s/%2s/%2s     %2s/%2s/%2s     %s\n",
			row[0], row[1], row[2], row[3], row[4], row[5], row[6], row[7], row[8])
	}

	// Part 2: short-term fairness, 1901 vs 802.11.
	const n, simTime = 2, 5e7
	universe := []int{0, 1}

	collect1901 := func() []int {
		in := sim.DefaultInputs(n)
		in.SimTime = simTime
		e, err := sim.NewEngine(in)
		if err != nil {
			log.Fatal(err)
		}
		rec := &winners{}
		e.SetObserver(rec)
		e.Run()
		return rec.trace
	}
	collectDCF := func() []int {
		in := sim.DefaultDCFInputs(n)
		in.SimTime = simTime
		rec := &winners{}
		in.Observer = rec
		if _, err := sim.RunDCF(in); err != nil {
			log.Fatal(err)
		}
		return rec.trace
	}

	t1901, tdcf := collect1901(), collectDCF()
	fmt.Printf("\nshort-term fairness, %d stations, %d/%d transmissions traced:\n",
		n, len(t1901), len(tdcf))
	fmt.Printf("%-12s %10s %10s\n", "window (tx)", "1901", "802.11")
	for _, w := range []int{5, 10, 30, 100, 1000} {
		a, err := fairness.ShortTermJain(t1901, universe, w)
		if err != nil {
			log.Fatal(err)
		}
		b, err := fairness.ShortTermJain(tdcf, universe, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %10.4f %10.4f\n", w, a.MeanJain, b.MeanJain)
	}

	// Part 3: win-run lengths — the mechanism behind the numbers.
	runs1901 := fairness.ConsecutiveWins(t1901)
	runsDCF := fairness.ConsecutiveWins(tdcf)
	fmt.Printf("\nconsecutive-win runs (how often one station won k times in a row):\n")
	fmt.Printf("%-4s %10s %10s\n", "k", "1901", "802.11")
	for k := 1; k <= 8; k++ {
		fmt.Printf("%-4d %10d %10d\n", k, runs1901[k], runsDCF[k])
	}
	fmt.Println("\n1901's winner restarts at CW₀=8 while the loser climbs stages, so long")
	fmt.Println("win-runs are much more common than under 802.11 — the Figure 1 effect.")
}

// winners records success winners from either simulator.
type winners struct{ trace []int }

// OnSlot implements sim.Observer.
func (w *winners) OnSlot(_ float64, kind sim.SlotKind, txs []int, _ []backoff.Snapshot) {
	if kind == sim.Success {
		w.trace = append(w.trace, txs[0])
	}
}
