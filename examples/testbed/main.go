// Testbed: the full Section 3.2 measurement procedure, end to end over
// UDP. An emulated power strip of N saturated HomePlug AV stations is
// hosted in-process; the measurement side then follows the paper
// exactly, speaking the vendor MME protocol through real sockets:
//
//  1. reset the tx counters at every station (MME 0xA030, reset);
//  2. run the test (here: advance the virtual clock by 240 s);
//  3. fetch the acked/collided counters from every station;
//  4. compute the collision probability ΣCᵢ/ΣAᵢ.
//
// Run with:
//
//	go run ./examples/testbed
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/config"
	"repro/internal/device"
	"repro/internal/testbed"
)

const (
	nStations = 5
	duration  = 60e6 // 60 virtual seconds per test
)

func main() {
	// Emulated power strip.
	tb, err := testbed.New(testbed.Options{N: nStations, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	host := device.NewHost(pc, tb.Network)
	host.Add(tb.Destination)
	for _, d := range tb.Transmitters {
		host.Add(d)
	}
	go host.Serve()
	defer host.Close()
	fmt.Printf("emulated power strip on %s: %d stations → D (%s)\n\n",
		host.Addr(), nStations, testbed.DstAddr)

	// Measurement side: a plain UDP client, like ampstat.
	cli, err := device.Dial(host.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// Step 1: reset.
	for i := 0; i < nStations; i++ {
		if err := cli.ResetLink(testbed.StationAddr(i), testbed.DstAddr, config.CA1); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("counters reset at all stations")

	// Step 2: run.
	clock, err := cli.Run(duration)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test ran; virtual clock at %.1f s\n\n", float64(clock)/1e6)

	// Steps 3-4: fetch and aggregate.
	var sumC, sumA uint64
	fmt.Printf("%-20s %12s %12s\n", "station", "acked A_i", "collided C_i")
	for i := 0; i < nStations; i++ {
		c, err := cli.FetchLink(testbed.StationAddr(i), testbed.DstAddr, config.CA1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %12d %12d\n", testbed.StationAddr(i), c.Acked, c.Collided)
		sumC += c.Collided
		sumA += c.Acked
	}
	fmt.Printf("\nΣC = %d, ΣA = %d\n", sumC, sumA)
	fmt.Printf("collision probability ΣC/ΣA = %.4f\n", float64(sumC)/float64(sumA))
	fmt.Println("\n(compare: the paper measures ≈0.22 at N=5, Figure 2)")
}
