// Coexistence: the deployment question behind the boosting results.
// A tuned (cw, dc) configuration that wins when *every* station runs it
// can behave very differently when it shares the power line with
// legacy stations on the Table 1 defaults. This example evaluates both
// mixes with the heterogeneous fixed-point model and the heterogeneous
// simulator:
//
//   - the search's best homogeneous config (highly deferential,
//     dc = [0 0 0 0]) — which politely LOSES to legacy stations;
//   - an aggressive config (deferral disabled, small windows) — which
//     captures the channel ~8:1 and starves the legacy stations.
//
// Run with:
//
//	go run ./examples/coexistence
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/model"
	"repro/internal/sim"
)

const (
	perGroup = 4
	simTime  = 5e7
)

func main() {
	def := config.DefaultCA1()
	inf := 1 << 20
	polite := config.Params{Name: "best-homogeneous", CW: []int{4, 16, 64, 256}, DC: []int{0, 0, 0, 0}}
	aggressive := config.Params{Name: "aggressive", CW: []int{4, 8, 16, 32}, DC: []int{inf, inf, inf, inf}}

	fmt.Printf("%d legacy CA1 stations sharing the line with %d tuned stations:\n\n", perGroup, perGroup)
	for _, tuned := range []config.Params{polite, aggressive} {
		legacySim, tunedSim := simulate(def, tuned)
		legacyMod, tunedMod := analyze(def, tuned)
		fmt.Printf("tuned config %-18s cw=%v dc=%v\n", tuned.Name, tuned.CW, shortDC(tuned.DC))
		fmt.Printf("  per-station throughput   sim: legacy %.4f / tuned %.4f\n", legacySim, tunedSim)
		fmt.Printf("                         model: legacy %.4f / tuned %.4f\n", legacyMod, tunedMod)
		fmt.Printf("  capture ratio (tuned/legacy): %.2f (sim), %.2f (model)\n\n",
			tunedSim/legacySim, tunedMod/legacyMod)
	}
	fmt.Println("The best homogeneous config is *polite*: deployed unilaterally it loses")
	fmt.Println("to the legacy fleet. The aggressive config captures the channel but")
	fmt.Println("collapses aggregate efficiency. Boosting is a fleet-wide decision.")
}

// simulate runs the heterogeneous simulator and returns per-station
// normalized throughput for (legacy, tuned).
func simulate(legacy, tuned config.Params) (float64, float64) {
	n := 2 * perGroup
	in := sim.DefaultInputs(n)
	in.SimTime = simTime
	in.PerStation = make([]config.Params, n)
	for i := 0; i < perGroup; i++ {
		in.PerStation[i] = legacy
		in.PerStation[perGroup+i] = tuned
	}
	e, err := sim.NewEngine(in)
	if err != nil {
		log.Fatal(err)
	}
	r := e.Run()
	group := func(g int) float64 {
		var succ int64
		for i := 0; i < perGroup; i++ {
			succ += r.PerStation[g*perGroup+i].Successes
		}
		return float64(succ) * in.FrameLength / r.Elapsed / perGroup
	}
	return group(0), group(1)
}

// analyze solves the heterogeneous fixed point for the same mix.
func analyze(legacy, tuned config.Params) (float64, float64) {
	groups := []model.Group{{N: perGroup, Params: legacy}, {N: perGroup, Params: tuned}}
	pred, err := model.SolveHeterogeneous(groups, model.Options{})
	if err != nil {
		log.Fatal(err)
	}
	met := model.HeteroMetricsFor(pred, groups, model.DefaultTiming())
	return met.PerStationThroughput[0], met.PerStationThroughput[1]
}

func shortDC(dc []int) []string {
	out := make([]string, len(dc))
	for i, d := range dc {
		if d >= 1<<20 {
			out[i] = "∞"
		} else {
			out[i] = fmt.Sprint(d)
		}
	}
	return out
}
