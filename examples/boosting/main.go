// Boosting: the configuration-tuning workflow of the paper's title.
// The analytical model scores a grid of (cw, dc) candidates across
// several contention levels in milliseconds; the leaders are then
// validated in the discrete-event simulator, which also scores their
// short-term fairness; finally the throughput/fairness Pareto frontier
// is printed against the Table 1 defaults.
//
// Run with:
//
//	go run ./examples/boosting
package main

import (
	"fmt"
	"log"

	"repro/internal/boost"
	"repro/internal/config"
)

func main() {
	ns := []int{2, 5, 10, 15}
	fmt.Printf("searching %s over N=%v…\n\n", describeSpace(boost.DefaultSpace()), ns)

	cands, err := boost.Search(boost.DefaultSpace(), ns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model ranking (top 5 of %d candidates, score = worst-case throughput):\n", len(cands))
	for i, c := range cands[:5] {
		fmt.Printf("  %d. %-14s cw=%v dc=%v score=%.4f\n",
			i+1, c.Params.Name, c.Params.CW, compactDC(c.Params.DC), c.Score)
	}

	defCand, err := boost.ScoreModel(config.DefaultCA1(), ns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  —  %-14s cw=%v dc=%v score=%.4f (baseline)\n\n",
		"default CA1", defCand.Params.CW, compactDC(defCand.Params.DC), defCand.Score)

	fmt.Println("validating the top 5 in the simulator (3·10⁷ µs each)…")
	vals, err := boost.ValidateTop(cands, 5, ns, 3e7, 1)
	if err != nil {
		log.Fatal(err)
	}
	defVal, err := boost.Validate(defCand, ns, 3e7, 1)
	if err != nil {
		log.Fatal(err)
	}

	nRef := ns[len(ns)-1]
	fmt.Printf("\n%-14s %10s %10s %12s\n", "config", "sim score", "thr(N=15)", "Jain-10(N=15)")
	print := func(name string, v boost.Validation) {
		fmt.Printf("%-14s %10.4f %10.4f %12.4f\n",
			name, v.SimScore, v.SimThroughput[nRef], v.ShortTermJain[nRef])
	}
	print("default CA1", defVal)
	for _, v := range vals {
		print(v.Candidate.Params.Name, v)
	}

	front := boost.ParetoFront(append(vals, defVal), nRef)
	fmt.Printf("\nthroughput/fairness Pareto frontier at N=%d:\n", nRef)
	for _, v := range front {
		fmt.Printf("  %-14s thr=%.4f jain=%.4f\n",
			v.Candidate.Params.Name, v.SimThroughput[nRef], v.ShortTermJain[nRef])
	}

	best := vals[0]
	gain := (best.SimScore/defVal.SimScore - 1) * 100
	fmt.Printf("\nbest validated config %s improves worst-case throughput by %.1f%% over the defaults\n",
		best.Candidate.Params.Name, gain)
}

func describeSpace(s boost.Space) string {
	return fmt.Sprintf("%d×%d×%d grid (CW0 × growth × dc schedules)",
		len(s.CW0s), len(s.Growths), len(s.DCSchedules))
}

// compactDC shortens the "deferral disabled" sentinel for display.
func compactDC(dc []int) []string {
	out := make([]string, len(dc))
	for i, d := range dc {
		if d >= 1<<20 {
			out[i] = "∞"
		} else {
			out[i] = fmt.Sprint(d)
		}
	}
	return out
}
