package repro_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// startPlcsrv boots the daemon with extra flags and returns its base
// URL plus the command (so tests can SIGKILL it). Unlike bootPlcsrv it
// does not install a cleanup kill — callers that kill deliberately and
// restart manage the lifetime themselves.
func startPlcsrv(t *testing.T, plcsrv string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	srv := exec.Command(plcsrv, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return "http://" + addr, srv
	case <-time.After(30 * time.Second):
		srv.Process.Kill()
		srv.Wait()
		t.Fatal("plcsrv never printed its address")
		return "", nil
	}
}

// getJSON decodes one GET response into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestKillRestartRecovery is the crash-safety acceptance pin: plcsrv is
// SIGKILLed in the middle of a journaled campaign — no drain, no
// goodbye — restarted on the same journal and cache directories, and
// must (a) replay the unfinished campaign to completion on its own, (b)
// serve a result byte-identical to an uninterrupted run, and (c) adopt
// the replication batches completed before the kill from the disk cache
// instead of re-simulating them.
func TestKillRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	plcsrv := buildTool(t, bin, "plcsrv")
	const campFile = "testdata/campaigns/kill-restart-grid.json"
	campJSON, err := os.ReadFile(campFile)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"campaign":%s}`, campJSON)
	journalDir, cacheDir := t.TempDir(), t.TempDir()
	// One job worker, serial replications: the campaign advances rep by
	// rep, so the kill window between "first round published" and
	// "campaign done" spans seconds.
	flags := []string{"-journal-dir", journalDir, "-cache-dir", cacheDir, "-workers", "1", "-rep-workers", "1"}

	// Reference first: an uninterrupted run of the same campaign on
	// clean directories pins the bytes recovery must reproduce.
	refBase, refCmd := startPlcsrv(t, plcsrv, "-journal-dir", t.TempDir(), "-cache-dir", t.TempDir())
	defer func() {
		refCmd.Process.Kill()
		refCmd.Wait()
	}()
	resp, err := http.Post(refBase+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var refSub serve.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&refSub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitCampaignDone := func(base, id string) serve.Status {
		t.Helper()
		deadline := time.Now().Add(120 * time.Second)
		for {
			var st serve.Status
			getJSON(t, base+"/v1/campaigns/"+id, &st)
			if st.State.Terminal() {
				if st.State != serve.StateDone {
					t.Fatalf("campaign %s: %+v", id, st)
				}
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %s never finished", id)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitCampaignDone(refBase, refSub.ID)
	refResp, err := http.Get(refBase + "/v1/campaigns/" + refSub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	want, err := io.ReadAll(refResp.Body)
	refResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// The victim: submit, wait until it is provably mid-flight — past
	// the first adaptive round (whose per-point batches are already
	// published to the disk cache) but not finished — then SIGKILL.
	base, victim := startPlcsrv(t, plcsrv, flags...)
	resp, err = http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub serve.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submission: status %d", resp.StatusCode)
	}
	killDeadline := time.Now().Add(120 * time.Second)
	for {
		var st serve.Status
		getJSON(t, base+"/v1/campaigns/"+sub.ID, &st)
		// done ≥ 6 replications: round 1 (2 points × 2 reps) finished
		// AND round 2 is executing, so round 1's cumulative batches are
		// on disk. The campaign runs 20 replications total, so it is
		// still seconds from done.
		if st.Done >= 6 && !st.State.Terminal() {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("campaign finished before it could be killed: %+v (grow the spec's sim_time_us)", st)
		}
		if time.Now().After(killDeadline) {
			t.Fatalf("campaign never reached the kill window: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil { // SIGKILL: no drain, no journal goodbye
		t.Fatal(err)
	}
	victim.Wait()

	// Restart on the same directories: the journal replays the
	// campaign without any client resubmitting it.
	base2, restarted := startPlcsrv(t, plcsrv, flags...)
	defer func() {
		restarted.Process.Kill()
		restarted.Wait()
	}()
	var replayed serve.Status
	listDeadline := time.Now().Add(120 * time.Second)
	for {
		var list []serve.Status
		getJSON(t, base2+"/v1/campaigns", &list)
		if len(list) > 0 {
			replayed = list[0]
			if replayed.State.Terminal() {
				break
			}
		}
		if time.Now().After(listDeadline) {
			t.Fatalf("restarted daemon never completed the replayed campaign (last: %+v)", replayed)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if replayed.State != serve.StateDone {
		t.Fatalf("replayed campaign: %+v", replayed)
	}
	if !replayed.Replayed {
		t.Fatalf("recovered campaign not marked replayed: %+v", replayed)
	}

	// (b) Byte-identical to the uninterrupted run.
	gotResp, err := http.Get(base2 + "/v1/campaigns/" + replayed.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(gotResp.Body)
	gotResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered campaign result differs from the uninterrupted run:\n--- recovered ---\n%.400s\n--- reference ---\n%.400s", got, want)
	}

	// (c) Recovery reused the work done before the kill: the journal
	// replayed the job, and at least the first round's batches were
	// adopted from the disk cache instead of re-simulated.
	var stats serve.StatsResponse
	getJSON(t, base2+"/v1/stats", &stats)
	if stats.Replayed < 1 {
		t.Errorf("journal_replayed = %d, want ≥ 1", stats.Replayed)
	}
	if stats.CampaignPointHits < 1 {
		t.Errorf("campaign_point_hits = %d, want ≥ 1 (pre-kill batches must come from cache)", stats.CampaignPointHits)
	}
	if stats.DiskCacheHits < 1 {
		t.Errorf("disk_cache_hits = %d, want ≥ 1 (the restarted process starts with a cold memory tier)", stats.DiskCacheHits)
	}
}
