// Package noallocfix is a fixture for the noalloc escape gate: one
// annotated function per behavior class — clean, panic-only escapes
// (excluded), and genuine heap escapes (violations).
package noallocfix

import "fmt"

// clean is allocation-free: pure arithmetic over its arguments.
//
//plclint:noalloc
func clean(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

// guarded allocates only on its panic path, which the gate excludes:
// panic paths terminate the run and cannot contribute to steady-state
// allocation.
//
//plclint:noalloc
func guarded(k int) int {
	if k < 0 {
		panic(fmt.Sprintf("noallocfix: negative %d", k))
	}
	return k * 2
}

// leaksMake returns a fresh slice: the make escapes to the heap, a
// genuine violation.
//
//plclint:noalloc
func leaksMake(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// leaksAddr returns the address of a local: the variable moves to the
// heap, a genuine violation.
//
//plclint:noalloc
func leaksAddr() *int {
	x := 5
	return &x
}

// unannotated allocates freely; without the annotation the gate has no
// opinion.
func unannotated(n int) []int {
	return make([]int, n)
}
