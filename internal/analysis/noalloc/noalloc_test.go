package noalloc_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/noalloc"
)

func moduleDir(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// TestFixtureGate pins the gate's three behavior classes on the
// fixture package: clean and panic-only functions pass, genuine
// escapes (escaping make, moved-to-heap local) fail, unannotated
// allocation is ignored.
func TestFixtureGate(t *testing.T) {
	dir := filepath.Join("testdata", "src", "noallocfix")
	pkgs, err := analysis.Load(dir, ".")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	violations, annotated, err := noalloc.Check(moduleDir(t), pkgs)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if len(annotated) != 4 {
		t.Errorf("found %d annotated functions, want 4", len(annotated))
	}
	got := map[string]int{}
	for _, v := range violations {
		got[v.Func.Name]++
		t.Logf("violation: %s", v)
	}
	if got["leaksMake"] == 0 {
		t.Error("leaksMake's escaping make was not reported")
	}
	if got["leaksAddr"] == 0 {
		t.Error("leaksAddr's moved-to-heap local was not reported")
	}
	if got["clean"] != 0 {
		t.Error("clean was reported despite being allocation-free")
	}
	if got["guarded"] != 0 {
		t.Error("guarded's panic-path allocation should be excluded")
	}
	if got["unannotated"] != 0 {
		t.Error("unannotated functions are out of the gate's scope")
	}
}

// TestRealTreeGate is the acceptance criterion on the real tree: every
// //plclint:noalloc-annotated hot function — the steady-state MAC loop
// and idle fast-forward, both AfterIdleN machines, and the Welford /
// paired accumulators' Add and Merge — passes the escape gate as
// shipped.
func TestRealTreeGate(t *testing.T) {
	mod := moduleDir(t)
	pkgs, err := analysis.Load(mod,
		"repro/internal/mac", "repro/internal/backoff", "repro/internal/stats")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	violations, annotated, err := noalloc.Check(mod, pkgs)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	want := map[string]bool{
		"(*Network).step":            true,
		"(*Network).idleRun":         true,
		"(*Station).AfterIdleN":      true,
		"(*DCFStation).AfterIdleN":   true,
		"(*Accumulator).Add":         true,
		"(*Accumulator).Merge":       true,
		"(*PairedAccumulator).Add":   true,
		"(*PairedAccumulator).Merge": true,
	}
	got := map[string]bool{}
	for _, fn := range annotated {
		got[fn.Name] = true
	}
	for name := range want {
		if !got[name] {
			t.Errorf("hot function %s lost its //plclint:noalloc annotation", name)
		}
	}
	for _, v := range violations {
		t.Errorf("escape in annotated hot function: %s", v)
	}
}
