// Package noalloc is the static escape gate behind //plclint:noalloc.
//
// BenchmarkMACNetworkSteadyState pins the medium loop at 0 allocs/op —
// dynamically, for the configurations the benchmark happens to run.
// This gate is the static complement: a function annotated
//
//	//plclint:noalloc
//
// in its doc comment must show no heap escapes in the compiler's own
// escape analysis (go build -gcflags=-m). A change that introduces a
// new escape into the steady-state MAC loop, AfterIdleN, or the
// Welford/paired accumulators fails the lint immediately, instead of
// surfacing as a benchmark regression three PRs later.
//
// Two diagnostic classes are excluded, because they cannot contribute
// to steady-state allocation:
//
//   - escapes positioned inside a panic(...) argument of the annotated
//     function — panic paths terminate the run;
//   - bare string constants escaping ("..." escapes to heap), which
//     the compiler attributes to the call site when a callee's panic
//     is inlined.
//
// Everything else — moved-to-heap variables, composite literals,
// make/new, boxing for interface conversions — is a violation.
package noalloc

import (
	"bytes"
	"fmt"
	"go/ast"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Name is the annotation and diagnostic tag for the escape gate.
const Name = "noalloc"

// A Func is one //plclint:noalloc-annotated function.
type Func struct {
	ImportPath string
	Name       string // display name, e.g. (*Network).step
	File       string // absolute path
	StartLine  int
	EndLine    int
	panicSpans [][2]int // line ranges of panic(...) calls inside the body
}

// A Violation is one heap escape inside an annotated function.
type Violation struct {
	Func Func
	Pos  string // file:line:col from the compiler
	Diag string // the compiler's message
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s inside //plclint:noalloc %s (%s)", v.Pos, v.Diag, v.Func.Name, Name)
}

// FindAnnotated scans a loaded package for //plclint:noalloc doc
// comments and returns the annotated functions.
func FindAnnotated(pkg *analysis.Package) []Func {
	var out []Func
	for _, f := range pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			annotated := false
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, "//plclint:noalloc") {
					annotated = true
					break
				}
			}
			if !annotated {
				continue
			}
			start := pkg.Fset.Position(fd.Pos())
			end := pkg.Fset.Position(fd.End())
			fn := Func{
				ImportPath: pkg.ImportPath,
				Name:       displayName(fd),
				File:       start.Filename,
				StartLine:  start.Line,
				EndLine:    end.Line,
			}
			if fd.Body != nil {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						fn.panicSpans = append(fn.panicSpans, [2]int{
							pkg.Fset.Position(call.Pos()).Line,
							pkg.Fset.Position(call.End()).Line,
						})
					}
					return true
				})
			}
			out = append(out, fn)
		}
	}
	return out
}

func displayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + recvString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

func recvString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + recvString(e.X)
	case *ast.IndexExpr: // generic receiver
		return recvString(e.X)
	}
	return "?"
}

// escapeRe matches one compiler escape diagnostic.
var escapeRe = regexp.MustCompile(`^(.+?):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// stringConstRe matches an escaping bare string constant — an inlined
// callee's panic message attributed to the call site. Long constants
// are truncated by the compiler ("... escapes to heap), so only the
// opening quote is structural.
var stringConstRe = regexp.MustCompile(`^".*escapes to heap$`)

// Check runs the compiler's escape analysis over every package that
// contains annotated functions and returns the violations. modDir is
// the module root the go command runs in.
func Check(modDir string, pkgs []*analysis.Package) ([]Violation, []Func, error) {
	var all []Func
	byPkg := map[string][]Func{}
	for _, pkg := range pkgs {
		fns := FindAnnotated(pkg)
		if len(fns) == 0 {
			continue
		}
		all = append(all, fns...)
		byPkg[pkg.ImportPath] = append(byPkg[pkg.ImportPath], fns...)
	}
	paths := make([]string, 0, len(byPkg))
	for path := range byPkg {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	var violations []Violation
	for _, path := range paths {
		fns := byPkg[path]
		diags, err := escapeDiagnostics(modDir, path)
		if err != nil {
			return nil, nil, err
		}
		for _, d := range diags {
			for i := range fns {
				if match(&fns[i], modDir, d) {
					violations = append(violations, Violation{Func: fns[i], Pos: d.pos, Diag: d.msg})
				}
			}
		}
	}
	return violations, all, nil
}

type escapeDiag struct {
	file string // as printed by the compiler
	line int
	pos  string
	msg  string
}

// escapeDiagnostics compiles one package with -gcflags=-m and parses
// the escape lines.
func escapeDiagnostics(modDir, importPath string) ([]escapeDiag, error) {
	cmd := exec.Command("go", "build", "-gcflags="+importPath+"=-m", importPath)
	cmd.Dir = modDir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m %s: %v\n%s", importPath, err, out.String())
	}
	var diags []escapeDiag
	for _, line := range strings.Split(out.String(), "\n") {
		m := escapeRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		diags = append(diags, escapeDiag{
			file: m[1],
			line: n,
			pos:  m[1] + ":" + m[2] + ":" + m[3],
			msg:  m[4],
		})
	}
	return diags, nil
}

// match reports whether the diagnostic is a real escape inside fn.
func match(fn *Func, modDir string, d escapeDiag) bool {
	file := d.file
	if !filepath.IsAbs(file) {
		file = filepath.Join(modDir, file)
	}
	if file != fn.File || d.line < fn.StartLine || d.line > fn.EndLine {
		return false
	}
	if stringConstRe.MatchString(d.msg) {
		return false
	}
	for _, span := range fn.panicSpans {
		if d.line >= span[0] && d.line <= span[1] {
			return false
		}
	}
	return true
}
