// Package analysis is the static-analysis framework behind plclint.
//
// It is a deliberately small, stdlib-only mirror of the
// golang.org/x/tools/go/analysis API shape: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. The
// builder environment has no network access, so the x/tools module
// cannot be fetched; everything here is built on go/ast, go/types and
// go/importer instead, keeping the module dependency-free. If the
// repository ever gains the real dependency, analyzers written against
// this package port mechanically (same Name/Doc/Run shape, same
// Pass fields).
//
// Suppression: a source line can opt out of a named analyzer with
//
//	//plclint:allow <analyzer> -- <one-line justification>
//
// placed either at the end of the offending line or alone on the line
// immediately above it. Allow annotations are themselves checked: one
// that suppresses nothing is reported as a diagnostic, so stale
// exemptions cannot accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run inspects the package
// presented by the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //plclint:allow annotations. Lowercase, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run executes the analyzer. Findings go through pass.Reportf;
	// the error return is for analyzer malfunction, not findings.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass presents one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	allows *allowSet
	report func(Diagnostic)
}

// Reportf records a finding at pos unless an in-scope
// //plclint:allow annotation names this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allows != nil && p.allows.suppress(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowRe matches the annotation comment body. The justification after
// "--" is free text for humans; the analyzer list before it is parsed.
var allowRe = regexp.MustCompile(`^//plclint:allow\s+([a-z0-9_,\s]+?)\s*(?:--.*)?$`)

// An allowance is one parsed //plclint:allow annotation.
type allowance struct {
	analyzer string
	file     string // position filename
	line     int    // line whose diagnostics it suppresses
	declLine int    // line the comment itself appears on
	used     bool
}

type allowSet struct {
	byKey map[string][]*allowance // "analyzer\x00file" → annotations
	all   []*allowance
}

// collectAllows parses every //plclint:allow annotation in the files.
// A comment that trails code suppresses its own line; a comment alone
// on its line suppresses the line below it (annotation-above style).
// sources maps position filenames to raw file bytes, used to decide
// whether a comment has code before it on its line.
func collectAllows(fset *token.FileSet, files []*ast.File, sources map[string][]byte) *allowSet {
	s := &allowSet{byKey: map[string][]*allowance{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				target := pos.Line
				if wholeLineComment(fset, c, sources[pos.Filename]) {
					target = pos.Line + 1
				}
				for _, name := range strings.FieldsFunc(m[1], func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					if name == "" {
						continue
					}
					a := &allowance{
						analyzer: name,
						file:     pos.Filename,
						line:     target,
						declLine: pos.Line,
					}
					key := name + "\x00" + pos.Filename
					s.byKey[key] = append(s.byKey[key], a)
					s.all = append(s.all, a)
				}
			}
		}
	}
	return s
}

// wholeLineComment reports whether nothing but whitespace precedes c on
// its source line. Comments that share a line with code suppress that
// line; whole-line comments suppress the next. When the raw source is
// unavailable the column-1 heuristic is used.
func wholeLineComment(fset *token.FileSet, c *ast.Comment, src []byte) bool {
	pos := fset.Position(c.Slash)
	if pos.Column == 1 {
		return true
	}
	if src == nil || pos.Offset > len(src) {
		return false
	}
	for i := pos.Offset - 1; i >= 0; i-- {
		switch src[i] {
		case ' ', '\t':
			continue
		case '\n':
			return true
		default:
			return false
		}
	}
	return true // start of file
}

func (s *allowSet) suppress(analyzer string, pos token.Position) bool {
	for _, a := range s.byKey[analyzer+"\x00"+pos.Filename] {
		if a.line == pos.Line {
			a.used = true
			return true
		}
	}
	return false
}

// Run executes the analyzers over the package and returns the findings
// sorted by position. Allow annotations are honored across the run;
// afterwards, any annotation naming one of the executed analyzers that
// suppressed nothing is itself reported (attributed to the analyzer it
// names), and annotations naming an unknown analyzer are reported as
// configuration errors.
// Test files are exempt: the invariants guard shipped result-producing
// code, and tests legitimately use seeded math/rand, wall clocks and
// best-effort closes. The standalone loader never parses _test.go
// files; this filter keeps vettool mode (where cmd/go hands us test
// variants too) consistent with it.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	files := pkg.Syntax
	var shipped []*ast.File
	for _, f := range files {
		if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		shipped = append(shipped, f)
	}
	files = shipped

	allows := collectAllows(pkg.Fset, files, pkg.Sources)
	var diags []Diagnostic
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			allows:    allows,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	for _, a := range allows.all {
		switch {
		case !ran[a.analyzer] && !knownAnalyzer(a.analyzer):
			diags = append(diags, Diagnostic{
				Pos:      token.Position{Filename: a.file, Line: a.declLine, Column: 1},
				Analyzer: "plclint",
				Message:  fmt.Sprintf("//plclint:allow names unknown analyzer %q", a.analyzer),
			})
		case ran[a.analyzer] && !a.used:
			diags = append(diags, Diagnostic{
				Pos:      token.Position{Filename: a.file, Line: a.declLine, Column: 1},
				Analyzer: a.analyzer,
				Message:  fmt.Sprintf("unused //plclint:allow %s annotation: nothing to suppress on the line it covers", a.analyzer),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// knownNames lists every analyzer name plclint ships, so that an allow
// annotation for an analyzer that simply did not run on this package
// (driver scoping) is not misreported as unknown.
var knownNames = map[string]bool{
	"detrand":    true,
	"maporder":   true,
	"journalerr": true,
	"noalloc":    true,
}

func knownAnalyzer(name string) bool { return knownNames[name] }
