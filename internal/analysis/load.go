package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// Sources maps each file's fset position name to its raw bytes,
	// for annotation parsing and diagnostics that need line text.
	Sources map[string][]byte
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (relative to dir), compiles
// their dependencies' export data via the go command, and type-checks
// each matched package from source. Test files are excluded: plclint
// guards production invariants, and fixtures under testdata exercise
// the analyzers separately.
//
// The loader shells out to `go list -deps -export -json`, the same
// mechanism `go vet` uses to feed its unitchecker tools, so it needs no
// network and no dependencies beyond the toolchain that built the tree.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Name,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{} // import path → export data file
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			pkg := p
			targets = append(targets, &pkg)
		}
	}

	var pkgs []*Package
	for _, t := range targets {
		if t.Name == "" || len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typeCheck parses and type-checks one listed package from source,
// resolving imports through the export-data files go list reported.
func typeCheck(lp *listedPackage, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	sources := map[string][]byte{}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		sources[path] = src
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
		Sources:    sources,
	}, nil
}
