// Package maporderfix is a fixture for the maporder analyzer: map
// ranges that leak iteration order into output, the collect-then-sort
// idiom that neutralizes them (and its broken sortless variant), and
// order-insensitive iterations that must stay legal.
package maporderfix

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"

	scenario "repro/internal/analysis/maporder/testdata/src/scenario"
)

// directPrint iterates a map straight into fmt output.
func directPrint(m map[string]int) {
	for k, v := range m { // want `iteration over map m calls fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// writerWrite iterates a map into an io.Writer.
func writerWrite(w io.Writer, m map[string]int) {
	for k := range m { // want `iteration over map m calls Write on a writer`
		w.Write([]byte(k))
	}
}

// builderWrite iterates a map into a strings.Builder.
func builderWrite(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `iteration over map m calls WriteString on a writer`
		b.WriteString(k)
	}
	return b.String()
}

// bufferWrite iterates a map into a bytes.Buffer.
func bufferWrite(m map[string]bool) []byte {
	var buf bytes.Buffer
	for k := range m { // want `iteration over map m calls WriteString on a writer`
		buf.WriteString(k)
	}
	return buf.Bytes()
}

// stringConcat accumulates a string across iterations.
func stringConcat(m map[string]int) string {
	s := ""
	for k := range m { // want `iteration over map m concatenates onto a string`
		s += k
	}
	return s
}

// feedsCanonical hands map-ordered data to the canonicalizer.
func feedsCanonical(m map[string]any) {
	for _, v := range m { // want `iteration over map m feeds scenario\.Canonical`
		scenario.Canonical(v)
	}
}

// feedsFingerprint hands map-ordered data to the fingerprinter.
func feedsFingerprint(m map[string]any) {
	for _, v := range m { // want `iteration over map m feeds scenario\.Fingerprint`
		scenario.Fingerprint(v, 1)
	}
}

// emitHelper writes output; rangeCallsHelper reaches it transitively
// within the package.
func emitHelper(k string) {
	fmt.Println(k)
}

func rangeCallsHelper(m map[string]int) {
	for k := range m { // want `iteration over map m calls emitHelper, which writes output`
		emitHelper(k)
	}
}

// collectSorted is the sanctioned idiom: collect, sort, then render.
func collectSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m { // no finding: keys are sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// collectSortSlice is the same idiom through sort.Slice.
func collectSortSlice(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m { // no finding: keys are sorted below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// collectUnsorted is collectSorted with the sort deleted — the exact
// regression the analyzer exists to catch.
func collectUnsorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `keys of map m are collected into "keys" but "keys" is never sorted`
		keys = append(keys, k)
	}
	return keys
}

// aggregate is order-insensitive: counting and summing stay legal.
func aggregate(m map[string]int) (n, sum int) {
	for _, v := range m { // no finding: order-insensitive
		n++
		sum += v
	}
	return n, sum
}

// maxKey is order-insensitive: max selection stays legal.
func maxKey(m map[int]bool) int {
	best := 0
	for k := range m { // no finding: order-insensitive
		if k > best {
			best = k
		}
	}
	return best
}

// invert writes into another map, which has no order.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m { // no finding: map writes are unordered anyway
		out[v] = k
	}
	return out
}

// countOnly never binds the key, so order cannot escape.
func countOnly(m map[string]int) int {
	n := 0
	for range m { // no finding: no iteration variable
		n++
	}
	return n
}

// allowed demonstrates an annotated deliberate iteration.
func allowed(m map[string]int) {
	//plclint:allow maporder -- fixture: debug dump, order genuinely irrelevant
	for k := range m {
		fmt.Println(k)
	}
}

// An allow annotation above a clean line is reported as unused.
//
//plclint:allow maporder -- fixture: stale exemption // want `unused //plclint:allow maporder annotation`
func cleanFunc() int {
	return 1
}
