// Package scenario is a fixture stand-in for repro/internal/scenario:
// the maporder analyzer matches Canonical/Fingerprint by package-path
// suffix, so fixtures can exercise the rule without importing the real
// engine.
package scenario

// Canonical mimics scenario.Canonical's shape.
func Canonical(v any) ([]byte, error) { return nil, nil }

// Fingerprint mimics scenario.Fingerprint's shape.
func Fingerprint(v any, reps int) string { return "" }
