// Package maporder flags map iteration whose order can leak into
// output bytes.
//
// Go randomizes map iteration order on purpose, so a `range` over a map
// inside anything that renders text, writes to an io.Writer, or feeds
// the scenario canonicalizer is the classic byte-identity breaker: the
// goldens pass on one run and differ on the next. The repository's
// contract — serve responses byte-identical to the CLI, serial ≡
// -parallel, cached ≡ fresh — makes every such site a latent bug.
//
// The analyzer reports a range over a map-typed expression when:
//
//   - the loop body performs an order-sensitive action: formatted
//     printing (fmt.Print*/Fprint*/Sprint*/Errorf/Appendf), a
//     Write/WriteString/WriteByte/WriteRune/Flush method call,
//     io.WriteString, string concatenation onto an outer variable, a
//     call to scenario.Canonical or scenario.Fingerprint, or a call to
//     any same-package function that (transitively) does one of these;
//   - or the loop collects keys/values into a slice that is never
//     passed to a sort (sort.* or slices.Sort*) later in the same
//     function — the collect-then-sort idiom with the sort deleted.
//
// Loop bodies that only aggregate order-insensitively (counting,
// summing, min/max, writes into other maps, deletes) pass, as does
// `for range m` without iteration variables. Genuinely order-free
// iterations that trip the heuristic carry //plclint:allow maporder
// with a justification.
package maporder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose nondeterministic order can reach rendered output or canonical fingerprints",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	emits := emittingFuncs(pass)
	for _, f := range pass.Files {
		// Track enclosing top-level function bodies so the
		// collect-then-sort search knows where "later in the same
		// function" ends.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, emits)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, emits map[*types.Func]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.Types[rs.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if rs.Key == nil || isBlank(rs.Key) && (rs.Value == nil || isBlank(rs.Value)) {
			// `for range m` / `for _ = range m`: the body cannot see
			// the key, so its order cannot reach the output.
			return true
		}
		if desc, pos := findSink(pass, rs.Body, emits); pos.IsValid() {
			pass.Reportf(rs.For, "iteration over map %s %s in the loop body; map order is randomized — collect the keys, sort them, and range over the slice", exprString(pass, rs.X), desc)
			return true
		}
		for _, tgt := range appendTargets(pass, rs.Body) {
			if !sortedAfter(pass, fd.Body, rs, tgt.obj) {
				pass.Reportf(rs.For, "keys of map %s are collected into %q but %q is never sorted afterwards; map order is randomized — add a sort before use", exprString(pass, rs.X), tgt.obj.Name(), tgt.obj.Name())
			}
		}
		return true
	})
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func exprString(pass *analysis.Pass, e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		return exprString(pass, sel.X) + "." + sel.Sel.Name
	}
	return "expression"
}

// target is one `v = append(v, ...)` accumulation inside a loop body.
type target struct {
	obj types.Object
}

// appendTargets finds local slice variables the loop body appends to.
// Appends through selectors (fields, package globals) are treated as
// sinks by findSink, not collected here.
func appendTargets(pass *analysis.Pass, body *ast.BlockStmt) []target {
	seen := map[types.Object]bool{}
	var out []target
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
			return true
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok || first.Name != lhs.Name {
			return true
		}
		obj := pass.TypesInfo.Uses[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Defs[lhs]
		}
		if obj != nil && !seen[obj] {
			seen[obj] = true
			out = append(out, target{obj: obj})
		}
		return true
	})
	return out
}

// sortFuncs are the standard sorting entry points that make a collected
// key slice deterministic again.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether obj appears in the arguments of a sort
// call positioned after the range statement inside the function body.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		names, ok := sortFuncs[fn.Pkg().Name()]
		if !ok || !names[fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsObject reports whether the expression tree references obj —
// covering sort.Strings(keys), sort.Sort(byName(keys)) and
// slices.SortFunc(keys, cmp) alike.
func mentionsObject(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// findSink looks for the first order-sensitive action in the loop body
// and returns a short description of it.
func findSink(pass *analysis.Pass, body *ast.BlockStmt, emits map[*types.Func]bool) (string, token.Pos) {
	var desc string
	var pos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if d, ok := callSink(pass, n, emits); ok {
				desc, pos = d, n.Pos()
				return false
			}
		case *ast.AssignStmt:
			if d, ok := assignSink(pass, n); ok {
				desc, pos = d, n.Pos()
				return false
			}
		}
		return true
	})
	return desc, pos
}

// assignSink flags string accumulation and appends through selectors
// (struct fields, package variables) whose sortedness cannot be
// verified locally.
func assignSink(pass *analysis.Pass, as *ast.AssignStmt) (string, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", false
	}
	lhsType := pass.TypesInfo.Types[as.Lhs[0]].Type
	isString := lhsType != nil && isStringType(lhsType)
	switch as.Tok {
	case token.ADD_ASSIGN:
		if isString {
			return "concatenates onto a string", true
		}
	case token.ASSIGN, token.DEFINE:
		if isString {
			// s = s + k style accumulation.
			if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok && bin.Op == token.ADD {
				if sameExpr(as.Lhs[0], bin.X) {
					return "concatenates onto a string", true
				}
			}
		}
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
				if _, isSel := as.Lhs[0].(*ast.SelectorExpr); isSel {
					return "appends to a field or package variable", true
				}
			}
		}
	}
	return "", false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func sameExpr(a, b ast.Expr) bool {
	ai, aok := a.(*ast.Ident)
	bi, bok := b.(*ast.Ident)
	return aok && bok && ai.Name == bi.Name
}

// writerMethods are method names whose call means bytes are leaving in
// iteration order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Flush": true,
}

// callSink classifies one call expression.
func callSink(pass *analysis.Pass, call *ast.CallExpr, emits map[*types.Func]bool) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "fmt":
			if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
				strings.HasPrefix(name, "Sprint") || strings.HasPrefix(name, "Append") ||
				name == "Errorf" {
				return fmt.Sprintf("calls fmt.%s", name), true
			}
		case "io":
			if name == "WriteString" || name == "Copy" {
				return fmt.Sprintf("calls io.%s", name), true
			}
		}
		if strings.HasSuffix(pkg.Path(), "scenario") && (name == "Canonical" || name == "Fingerprint") {
			return fmt.Sprintf("feeds %s.%s", pkg.Name(), name), true
		}
		if emits[fn] {
			return fmt.Sprintf("calls %s, which writes output", name), true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && writerMethods[name] {
		return fmt.Sprintf("calls %s on a writer", name), true
	}
	return "", false
}

// calleeFunc resolves the called function or method, if statically
// known.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// emittingFuncs computes, to a fixed point, the set of same-package
// functions that directly or transitively perform an order-sensitive
// write — the "transitively, within the package" rule.
func emittingFuncs(pass *analysis.Pass) map[*types.Func]bool {
	// Collect package function bodies in declaration order — the
	// fixed point is order-independent, but the analyzer practices
	// what it preaches.
	type funcBody struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var bodies []funcBody
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				bodies = append(bodies, funcBody{fn, fd.Body})
			}
		}
	}
	emits := map[*types.Func]bool{}
	// Seed with direct sinks.
	for _, fb := range bodies {
		ast.Inspect(fb.body, func(n ast.Node) bool {
			if emits[fb.fn] {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, sink := callSink(pass, call, nil); sink {
				emits[fb.fn] = true
				return false
			}
			return true
		})
	}
	// Propagate through same-package calls.
	for changed := true; changed; {
		changed = false
		for _, fb := range bodies {
			if emits[fb.fn] {
				continue
			}
			ast.Inspect(fb.body, func(n ast.Node) bool {
				if emits[fb.fn] {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass, call)
				if callee != nil && callee.Pkg() == pass.Pkg && emits[callee] {
					emits[fb.fn] = true
					changed = true
					return false
				}
				return true
			})
		}
	}
	return emits
}
