package maporder_test

import (
	"go/ast"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/maporder"
)

// TestMaporderFixture pins the positive hits (direct prints, writer
// writes, string building, canonicalizer feeds, transitive emit), the
// collect-then-sort negative case and its sortless regression, the
// order-insensitive negatives, and both annotation findings.
func TestMaporderFixture(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "maporder")
}

// TestDeletingRealSortFails is the acceptance criterion on the real
// tree: internal/mac's (*Counters).Keys collects map keys and sorts
// them — the analyzer accepts it as written, and flags it the moment
// the sort is deleted. The deletion happens on the in-memory AST, so
// the test proves the shipped sort call is load-bearing for the lint
// without touching the source.
func TestDeletingRealSortFails(t *testing.T) {
	pkgs, err := analysis.Load(".", "repro/internal/mac")
	if err != nil {
		t.Fatalf("load internal/mac: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]

	diags, err := analysis.Run(pkg, []*analysis.Analyzer{maporder.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("internal/mac should be clean as shipped, got: %s", d)
	}

	// Surgically remove the sort.Slice statement from (*Counters).Keys.
	removed := false
	for _, f := range pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Keys" || fd.Recv == nil {
				continue
			}
			var kept []ast.Stmt
			for _, stmt := range fd.Body.List {
				if isSortCall(stmt) {
					removed = true
					continue
				}
				kept = append(kept, stmt)
			}
			fd.Body.List = kept
		}
	}
	if !removed {
		t.Fatal("did not find a sort call to delete in (*Counters).Keys — the real-tree anchor moved")
	}

	diags, err = analysis.Run(pkg, []*analysis.Analyzer{maporder.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("deleting the sort from (*Counters).Keys produced no maporder finding")
	}
	for _, d := range diags {
		t.Logf("as expected after deleting the sort: %s", d)
	}
}

func isSortCall(stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "sort"
}
