// Package analysistest runs a plclint analyzer over fixture packages
// under a testdata/src tree and checks its diagnostics against
// expectations written in the fixtures themselves, mirroring the
// golang.org/x/tools/go/analysis/analysistest convention:
//
//	m := map[string]int{"a": 1}
//	for k := range m { // want `iteration over map`
//		fmt.Println(k)
//	}
//
// Each `// want` comment carries one or more quoted regular
// expressions; every diagnostic reported on that line must match one of
// them, every expectation must be matched by a diagnostic, and
// diagnostics on lines without a want comment fail the test. Fixture
// packages must compile — the loader type-checks them through the real
// toolchain — so fixtures demonstrate invariant violations, not syntax
// errors.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one quoted regexp from a // want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package rooted at testdata/src/<pkg>, runs the
// analyzer, and reports mismatches between its diagnostics and the
// fixtures' // want comments through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		loaded, err := analysis.Load(dir, ".")
		if err != nil {
			t.Errorf("load fixture %s: %v", name, err)
			continue
		}
		for _, pkg := range loaded {
			check(t, pkg, a)
		}
	}
}

func check(t *testing.T, pkg *analysis.Package, a *analysis.Analyzer) {
	t.Helper()
	expects, err := wants(pkg)
	if err != nil {
		t.Errorf("%s: %v", pkg.ImportPath, err)
		return
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Errorf("%s: %v", pkg.ImportPath, err)
		return
	}
	for _, d := range diags {
		if !claim(expects, d) {
			t.Errorf("%s: unexpected diagnostic: %s", pkg.ImportPath, d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", pkg.ImportPath, e.file, e.line, e.re)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches, returning false when none does.
func claim(expects []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
			continue
		}
		if e.re.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// wants parses every // want comment in the package.
func wants(pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// `want` may open the comment (`// want "re"`) or
				// follow other directive text in the same comment
				// (`//plclint:allow x -- y // want "unused"`), since a
				// line comment swallows everything to end of line.
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if idx := strings.Index(text, "// want "); idx >= 0 {
					text = text[idx+len("// "):]
				}
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				exps, err := parseWant(text[len("want "):], pos)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				out = append(out, exps...)
			}
		}
	}
	return out, nil
}

// parseWant splits `"re1" "re2"` (double- or back-quoted) into compiled
// expectations anchored at the comment's line.
func parseWant(s string, pos token.Position) ([]*expectation, error) {
	var out []*expectation
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		var lit string
		switch s[0] {
		case '"', '`':
			end := closingQuote(s)
			if end < 0 {
				return nil, fmt.Errorf("unterminated pattern in want comment")
			}
			lit = s[:end+1]
			s = s[end+1:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted strings, got %q", s)
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %s: %v", lit, err)
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %s: %v", lit, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
	}
}

// closingQuote returns the index of the quote closing s[0], honoring
// backslash escapes inside double quotes.
func closingQuote(s string) int {
	q := s[0]
	for i := 1; i < len(s); i++ {
		if q == '"' && s[i] == '\\' {
			i++
			continue
		}
		if s[i] == q {
			return i
		}
	}
	return -1
}
