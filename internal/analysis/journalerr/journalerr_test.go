package journalerr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/journalerr"
)

// TestJournalerrFixture pins each discard shape (statement, blank
// assignment, defer, go) across the durable-write surface (*os.File,
// *bufio.Writer, json/gob encoders, os.Rename/WriteFile), the handled
// negatives, out-of-scope writers, and both annotation behaviors.
func TestJournalerrFixture(t *testing.T) {
	analysistest.Run(t, "testdata", journalerr.Analyzer, "journalerr")
}
