// Package journalerrfix is a fixture for the journalerr analyzer:
// every way a durable-write error can be dropped, the handled forms
// that stay legal, and the out-of-scope writers that must not be
// flagged.
package journalerrfix

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"encoding/json"
	"io"
	"os"
)

// dropped exercises each discard shape on *os.File.
func dropped(f *os.File, b []byte) {
	f.Write(b)         // want `error from \*os\.File\.Write discarded`
	f.Sync()           // want `error from \*os\.File\.Sync discarded`
	_ = f.Sync()       // want `error from \*os\.File\.Sync assigned to the blank identifier`
	n, _ := f.Write(b) // want `error from \*os\.File\.Write assigned to the blank identifier`
	_ = n
	defer f.Close() // want `error from \*os\.File\.Close discarded by defer`
}

// droppedBufio exercises the bufio.Writer surface.
func droppedBufio(w *bufio.Writer, b []byte) {
	w.Write(b)         // want `error from \*bufio\.Writer\.Write discarded`
	w.WriteString("x") // want `error from \*bufio\.Writer\.WriteString discarded`
	w.Flush()          // want `error from \*bufio\.Writer\.Flush discarded`
}

// droppedEncoders exercises json and gob encoders.
func droppedEncoders(v any) {
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(v) // want `error from \*json\.Encoder\.Encode discarded`
	gob.NewEncoder(&buf).Encode(v)  // want `error from \*gob\.Encoder\.Encode discarded`
}

// droppedPkgFuncs exercises the package-level durable writes.
func droppedPkgFuncs(dir string, b []byte) {
	os.Rename(dir+"/a", dir+"/b")    // want `error from os\.Rename discarded`
	os.WriteFile(dir+"/c", b, 0o644) // want `error from os\.WriteFile discarded`
	go os.Rename(dir+"/d", dir+"/e") // want `error from os\.Rename discarded by go`
}

// handled shows the legal forms: errors checked or propagated.
func handled(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// outOfScope: writers that are not durable surfaces stay legal even
// when their errors are dropped.
type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }
func (nullWriter) Close() error                { return nil }

func outOfScope(w io.Writer, b []byte) {
	w.Write(b) // interface write: not the durable surface
	var nw nullWriter
	nw.Write(b) // custom writer: not watched
	defer nw.Close()
}

// allowedDrop shows an annotated deliberate drop.
func allowedDrop(f *os.File) {
	defer f.Close() //plclint:allow journalerr -- fixture: read-only file, close error carries no data
}

// An annotation with nothing to suppress is reported.
//
//plclint:allow journalerr -- fixture: stale exemption // want `unused //plclint:allow journalerr annotation`
func nothingHere() int {
	return 2
}
