// Package journalerr flags discarded errors from durable-write calls.
//
// The crash-safety contract (PR 6) rests on the job journal and the
// disk cache actually reaching disk: a silently dropped error from a
// Write, Sync, Close, Rename or Encode on those paths turns "kill and
// restart ≡ uninterrupted" into a data-loss bug that only shows up
// after a crash — exactly the storeDisk silent-drop fixed in PR 4,
// generalized into a lint.
//
// The analyzer reports a call whose final result is an error when the
// error is discarded — the call stands alone as a statement, is
// deferred or spawned with go, or the error position is assigned to
// the blank identifier — and the callee is one of:
//
//   - a method named Write, WriteString, Sync, Close, Rename, Encode
//     or Flush on *os.File, *bufio.Writer, *encoding/json.Encoder or
//     *encoding/gob.Encoder (the durable-write surface);
//   - the package functions os.Rename, os.WriteFile.
//
// Calls on network writers (http.ResponseWriter and friends) are out of
// scope: a client hanging up is not a durability event. Deliberate
// drops — a read-only file's deferred Close, for example — carry
// //plclint:allow journalerr with a justification.
package journalerr

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the journalerr pass.
var Analyzer = &analysis.Analyzer{
	Name: "journalerr",
	Doc:  "flag discarded errors from journal/disk-cache writes (Write, Sync, Close, Rename, Encode)",
	Run:  run,
}

// watchedMethods is the durable-write method surface.
var watchedMethods = map[string]bool{
	"Write": true, "WriteString": true, "Sync": true,
	"Close": true, "Rename": true, "Encode": true, "Flush": true,
}

// watchedRecvTypes are the named types whose watched methods must not
// have their errors dropped. Matching is by full type string of the
// pointer element.
var watchedRecvTypes = map[string]bool{
	"os.File":               true,
	"bufio.Writer":          true,
	"encoding/json.Encoder": true,
	"encoding/gob.Encoder":  true,
}

// watchedPkgFuncs are package-level durable-write functions.
var watchedPkgFuncs = map[string]map[string]bool{
	"os": {"Rename": true, "WriteFile": true},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(pass, call, "discarded")
				}
			case *ast.DeferStmt:
				report(pass, n.Call, "discarded by defer")
			case *ast.GoStmt:
				report(pass, n.Call, "discarded by go")
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags calls whose error result lands in the blank
// identifier: `_ = f.Sync()` or `n, _ := w.Write(b)`.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	// The error is the final result; it is discarded when the final
	// LHS is blank.
	last := as.Lhs[len(as.Lhs)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
		report(pass, call, "assigned to the blank identifier")
	}
}

// report emits a diagnostic if the call is a watched durable write
// returning an error.
func report(pass *analysis.Pass, call *ast.CallExpr, how string) {
	name, recv, ok := watched(pass, call)
	if !ok {
		return
	}
	pass.Reportf(call.Pos(), "error from %s.%s %s: a dropped durable-write error breaks crash-safety — handle it or annotate a deliberate drop", recv, name, how)
}

// watched reports whether the call is on the durable-write surface and
// returns a human-readable receiver description.
func watched(pass *analysis.Pass, call *ast.CallExpr) (name, recv string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	if !returnsError(fn) {
		return "", "", false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		// Package-level function: os.Rename, os.WriteFile.
		pkg := fn.Pkg()
		if pkg == nil {
			return "", "", false
		}
		if names, found := watchedPkgFuncs[pkg.Path()]; found && names[fn.Name()] {
			return fn.Name(), pkg.Name(), true
		}
		return "", "", false
	}
	if !watchedMethods[fn.Name()] {
		return "", "", false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if !watchedRecvTypes[full] {
		return "", "", false
	}
	return fn.Name(), "*" + named.Obj().Pkg().Name() + "." + named.Obj().Name(), true
}

// returnsError reports whether the function's final result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
