package detrand_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detrand"
)

// TestDetrandFixture pins every forbidden construct (wall clock,
// math/rand globals and Source construction, crypto/rand), both
// annotation placements, and the unused-annotation finding.
func TestDetrandFixture(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "detrand")
}

// TestDetrandExemptsRng pins the one package allowed to own randomness
// construction: a package whose import path ends in internal/rng is
// skipped entirely.
func TestDetrandExemptsRng(t *testing.T) {
	pkgs, err := analysis.Load(".", "repro/internal/rng")
	if err != nil {
		t.Fatalf("load internal/rng: %v", err)
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{detrand.Analyzer})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("unexpected diagnostic in exempt package: %s", d)
		}
	}
}
