package detrand_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detrand"
)

// TestDetrandFixture pins every forbidden construct (wall clock,
// math/rand globals and Source construction, crypto/rand), both
// annotation placements, and the unused-annotation finding.
func TestDetrandFixture(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "detrand")
}

// TestDetrandExemptsRng pins the one package allowed to own randomness
// construction: a package whose import path ends in internal/rng is
// skipped entirely.
func TestDetrandExemptsRng(t *testing.T) {
	assertExempt(t, "repro/internal/rng")
}

// TestDetrandExemptsObs pins the sanctioned wall-clock owner: the obs
// package wraps time.Now/Since behind obs.Now/Since (and marks trace
// timelines), so it must be skipped — every other result package reads
// operational time through it and stays annotation-free.
func TestDetrandExemptsObs(t *testing.T) {
	assertExempt(t, "repro/internal/obs")
}

// TestDetrandCoversServe pins the flip side of the obs exemption: with
// serve's wall-clock reads routed through obs, internal/serve itself
// must scan clean with zero allow annotations — a direct time.Now
// creeping back in becomes a finding again.
func TestDetrandCoversServe(t *testing.T) {
	pkgs, err := analysis.Load(".", "repro/internal/serve")
	if err != nil {
		t.Fatalf("load internal/serve: %v", err)
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{detrand.Analyzer})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("internal/serve is expected to be detrand-clean without annotations, got: %s", d)
		}
	}
}

// assertExempt runs detrand over one real package and fails on any
// diagnostic.
func assertExempt(t *testing.T, path string) {
	t.Helper()
	pkgs, err := analysis.Load(".", path)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{detrand.Analyzer})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("unexpected diagnostic in exempt package %s: %s", path, d)
		}
	}
}
