// Package detrand forbids nondeterministic inputs — wall-clock reads
// and unfrozen randomness — in result-producing code.
//
// Every reproduction guarantee the repository makes (serve ≡ CLI,
// serial ≡ -parallel, cached ≡ fresh, restart ≡ uninterrupted) assumes
// that simulation output is a pure function of the scenario spec and
// its seed. A stray time.Now() in a metric, or a math/rand draw whose
// algorithm Go is free to change between releases, breaks that contract
// silently. The sanctioned randomness source is repro/internal/rng
// (frozen xoshiro256**), and the sanctioned clock is the simulated one.
// Operational wall-clock reads (service timing, trace timelines) go
// through repro/internal/obs, the one exempt clock owner — keeping the
// instrumented packages themselves annotation-free.
//
// In the packages it is pointed at, detrand reports:
//
//   - calls to time.Now and time.Since (wall clock);
//   - any use of math/rand or math/rand/v2 — global top-level draws
//     and Source/Rand construction alike — outside internal/rng;
//   - any use of crypto/rand.
//
// A residual legitimate direct use can carry a //plclint:allow detrand
// annotation with a justification; an annotation that stops
// suppressing anything is itself reported.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock and unfrozen randomness in result-producing packages",
	Run:  run,
}

// forbiddenTimeFuncs are the time package functions that read the wall
// clock. time.Duration arithmetic and constants stay legal.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func run(pass *analysis.Pass) error {
	// internal/rng is the one home randomness construction is allowed;
	// it wraps nothing today, but the exemption documents the rule.
	// internal/obs is the sanctioned wall-clock owner: obs.Now/Since
	// wrap time.Now/Since so every other instrumented package reads
	// operational time through them instead of carrying per-call
	// annotations.
	p := pass.Pkg.Path()
	if strings.HasSuffix(p, "internal/rng") || strings.HasSuffix(p, "internal/obs") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			pkg := obj.Pkg()
			if pkg == nil {
				return true
			}
			switch pkg.Path() {
			case "time":
				if fn, ok := obj.(*types.Func); ok && forbiddenTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "call to time.%s reads the wall clock in a result-producing package; results must be a function of (spec, seed) only", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(sel.Pos(), "use of %s.%s: unfrozen randomness in a result-producing package; draw from repro/internal/rng instead", pkg.Path(), obj.Name())
			case "crypto/rand":
				pass.Reportf(sel.Pos(), "use of crypto/rand.%s: nonreproducible randomness in a result-producing package; draw from repro/internal/rng instead", obj.Name())
			}
			return true
		})
	}
	return nil
}
