// Package detrandfix is a fixture for the detrand analyzer: every
// construct a result-producing package must not contain, plus the
// annotation forms that exempt deliberate uses.
package detrandfix

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

// wallClock exercises the time.* surface.
func wallClock() float64 {
	t := time.Now()          // want `call to time\.Now reads the wall clock`
	d := time.Since(t)       // want `call to time\.Since reads the wall clock`
	_ = time.Until(t)        // want `call to time\.Until reads the wall clock`
	_ = time.Duration(3)     // duration arithmetic stays legal
	_ = time.Microsecond * 5 // constants stay legal
	return d.Seconds()
}

// globalRand exercises math/rand top-level draws.
func globalRand() int {
	rand.Seed(42)     // want `use of math/rand\.Seed`
	_ = rand.Intn(10) // want `use of math/rand\.Intn`
	return rand.Int() // want `use of math/rand\.Int`
}

// sourceConstruction exercises rand.Source/rand.Rand construction,
// which is forbidden outside internal/rng even when locally seeded.
func sourceConstruction() float64 {
	src := rand.NewSource(1) // want `use of math/rand\.NewSource`
	r := rand.New(src)       // want `use of math/rand\.New`
	var _ rand.Source        // want `use of math/rand\.Source`
	return r.Float64()       // want `use of math/rand\.Float64`
}

// cryptoRand exercises the crypto/rand ban.
func cryptoRand(buf []byte) {
	crand.Read(buf) // want `use of crypto/rand\.Read`
}

// allowedTrailing shows a trailing annotation suppressing its own line.
func allowedTrailing() time.Time {
	return time.Now() //plclint:allow detrand -- fixture: deliberate wall-clock read
}

// allowedAbove shows a whole-line annotation suppressing the next line.
func allowedAbove() time.Time {
	//plclint:allow detrand -- fixture: deliberate wall-clock read
	return time.Now()
}

// An annotation that suppresses nothing is itself a finding.
//
//plclint:allow detrand -- fixture: stale exemption // want `unused //plclint:allow detrand annotation`
func nothingToAllow() int {
	return 4
}
