package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapPreservesInputOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		out, err := Map(workers, items, func(i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapParallelMatchesSerial(t *testing.T) {
	items := []string{"a", "bb", "ccc", "dddd", "eeeee"}
	fn := func(i int, s string) (string, error) { return fmt.Sprintf("%d:%s", i, s), nil }
	serial, err := Map(1, items, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(4, items, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("index %d: serial %q ≠ parallel %q", i, serial[i], parallel[i])
		}
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	_, err := Map(4, items, func(i, v int) (int, error) {
		switch v {
		case 5:
			return 0, errB
		case 2:
			return 0, errA
		}
		return v, nil
	})
	if err != errA {
		t.Errorf("got %v, want the lowest-indexed error %v", err, errA)
	}
}

func TestMapActuallyRunsConcurrently(t *testing.T) {
	const workers = 4
	var inFlight, peak atomic.Int32
	gate := make(chan struct{})
	_, err := Map(workers, make([]struct{}, 16), func(i int, _ struct{}) (int, error) {
		cur := inFlight.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		if cur == workers {
			select {
			case <-gate:
			default:
				close(gate)
			}
		}
		<-gate // hold until all workers have been observed in flight at once
		inFlight.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got != workers {
		t.Errorf("peak concurrency %d, want %d", got, workers)
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if out, err := Map(8, nil, func(i, v int) (int, error) { return v, nil }); err != nil || out != nil {
		t.Errorf("empty input: %v, %v", out, err)
	}
	out, err := Map(8, []int{42}, func(i, v int) (int, error) { return v + 1, nil })
	if err != nil || len(out) != 1 || out[0] != 43 {
		t.Errorf("single input: %v, %v", out, err)
	}
}

// TestMapCtxCancellation covers the cooperative-cancellation contract:
// unstarted items are skipped and ctx.Err() surfaces, in both the
// serial and the parallel code path.
func TestMapCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		_, err := MapCtx(ctx, workers, make([]struct{}, 64), func(i int, _ struct{}) (int, error) {
			if ran.Add(1) == 2 {
				cancel()
			}
			return i, nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got == 64 {
			t.Errorf("workers=%d: every item ran despite cancellation", workers)
		}
	}
}

// TestMapCtxCompletesBeforeCancel: a ctx cancelled only after the last
// item finished must not fail the call.
func TestMapCtxCompletesBeforeCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out, err := MapCtx(ctx, 4, []int{1, 2, 3}, func(i, v int) (int, error) { return v * v, nil })
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 1 || out[1] != 4 || out[2] != 9 {
		t.Errorf("out = %v", out)
	}
}

// TestMapCtxRealErrorWinsOverCancel: an fn error at a lower index beats
// the cancellation error of later unstarted items.
func TestMapCtxRealErrorWinsOverCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	_, err := MapCtx(ctx, 2, make([]struct{}, 32), func(i int, _ struct{}) (int, error) {
		if i == 0 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom (index 0 outranks later ctx errors)", err)
	}
}
