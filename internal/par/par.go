// Package par provides the deterministic fan-out primitive behind the
// experiment sweeps: a fixed-size worker pool that maps a function over
// a slice and returns the results in input order, regardless of
// completion order.
//
// Determinism is the point. Every sweep point in this repository owns
// its random streams (per-point seeds, split per station), so running
// points concurrently cannot perturb their draws; returning results in
// input order then makes a parallel sweep bit-identical to the serial
// one. Errors are deterministic too: when several points fail, Map
// reports the error of the lowest-indexed one.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is the error Map and MapCtx report when a mapped function
// panics: the recovered value plus the goroutine stack at the panic
// site. Recovering here is what keeps one pathological item from
// killing the whole process — a panicking item fails its map call (a
// PanicError is an error like any other, subject to the lowest-index
// rule) while the other items and the calling goroutine survive.
// Detect it with errors.As to distinguish crashes from ordinary
// failures.
type PanicError struct {
	// Value is the value the mapped function panicked with.
	Value any
	// Stack is the formatted goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: panic in mapped function: %v\n%s", e.Value, e.Stack)
}

// protect invokes fn(i, item), converting a panic into a *PanicError.
func protect[T, R any](fn func(i int, item T) (R, error), i int, item T) (r R, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(i, item)
}

// defaultWorkers is the process-wide fan-out width used by MapDefault;
// 1 (serial) until SetDefaultWorkers raises it.
var defaultWorkers atomic.Int32

func init() { defaultWorkers.Store(1) }

// SetDefaultWorkers sets the process-wide fan-out width used by every
// sweep that calls MapDefault (the experiments and the boost search).
// n ≤ 0 selects GOMAXPROCS.
func SetDefaultWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers returns the current process-wide fan-out width.
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// MapDefault is Map at the process-wide width.
func MapDefault[T, R any](items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return Map(DefaultWorkers(), items, fn)
}

// Map applies fn to every item on up to workers goroutines and returns
// the results in input order. fn receives the item's index and value.
// workers ≤ 1 (or fewer than two items) degenerates to a plain serial
// loop on the calling goroutine, with fail-fast error behaviour.
//
// In parallel mode every item is attempted even when another item has
// already failed (points are independent; partial failure of a sweep
// must not depend on scheduling), and the error of the lowest-indexed
// failing item is returned.
//
// A panic inside fn does not escape: it is recovered into a
// *PanicError charged to that item, so a single pathological item
// fails the call without killing the worker goroutines or the process.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return MapCtx(context.Background(), workers, items, fn)
}

// MapCtx is Map with cooperative cancellation: once ctx is cancelled,
// no further items are started. In-flight items run to completion (fn
// is never interrupted mid-item), unstarted items are charged ctx.Err(),
// and the usual lowest-index error rule then makes MapCtx return either
// a genuine fn error from an earlier index or ctx.Err(). A ctx that is
// cancelled only after every item completed does not fail the call.
func MapCtx[T, R any](ctx context.Context, workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	if len(items) == 0 {
		return nil, nil
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]R, len(items))
	if workers <= 1 || len(items) == 1 {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := protect(fn, i, item)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	errs := make([]error, len(items))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				out[i], errs[i] = protect(fn, i, items[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
