package sim

import "repro/internal/timing"

// Control variates for the replication path (internal/scenario's
// control_variate estimator): alongside the ordinary counters, the
// engine can compute per-run martingale controls — quantities with
// *exactly* zero expectation under the run's own random draws — that
// are strongly correlated with the outputs. The estimator upstream
// regresses each metric on these controls to cancel most of the
// between-replication noise.
//
// The construction is one-step conditional expectation. A 1901 run is a
// sequence of "cycles": a draw point (the initial Start, or the redraw
// block after each busy period) followed by an idle gap and the busy
// event that ends it. At every draw point the distribution of the next
// cycle's counter increments is exactly computable from the
// post-decision state — which stations redraw and with what window,
// which merely decrement — because the gap G = min_i X_i over
// independent per-station slot positions has closed-form slot
// probabilities. The control for a counter is then
//
//	realized total − Σ over draw points E[next-cycle increment | state]
//
// a martingale difference sum, mean-zero by optional stopping, and the
// horizon truncation stays exact because the predictor replays the
// engine's own scalar time accumulation (one SlotTime addition per
// slot, events processed iff their start time ≤ SimTime).
//
// Crucially the predictor consumes no randomness, so a run with
// controls enabled draws the bit-identical random stream as one
// without: common random numbers across the plain and control-variate
// paths come for free, and enabling controls can never perturb a
// result.

// NumControls is the number of control channels an enabled run emits.
const NumControls = 5

// Control-channel indices into Result.Controls.
const (
	CtrlSuccesses = iota
	CtrlCollidedFrames
	CtrlFrameErrors
	CtrlIdleSlots
	CtrlElapsed
)

// ControlNames labels the channels of Result.Controls, in order.
var ControlNames = [NumControls]string{
	"successes", "collided_frames", "frame_errors", "idle_slots", "elapsed_us",
}

// controller holds the predictor's per-engine scratch; all slices are
// preallocated so prediction allocates nothing per event.
type controller struct {
	e *Engine
	// Pre-draw state entering the next cycle: station i either redraws
	// a fresh counter uniform on [0, w[i]) (drawing[i]) or continues
	// deferring with a known post-decrement counter fixed[i].
	drawing []bool
	w       []int
	fixed   []int
	// Per-slot scratch: qv[j] = P(X_j ≥ v), qv1[j] = P(X_j ≥ v+1),
	// pv[j] = P(X_j = v), with prefix/suffix products for the
	// leave-one-out terms in O(N) per slot.
	qv, qv1, pv          []float64
	pre, suf, pre1, suf1 []float64
	expected             [NumControls]float64
}

// EnableControls switches on control-variate accounting for this
// engine's Run. It must be called before Run.
func (e *Engine) EnableControls() {
	n := e.in.N
	e.ctrl = &controller{
		e:       e,
		drawing: make([]bool, n),
		w:       make([]int, n),
		fixed:   make([]int, n),
		qv:      make([]float64, n),
		qv1:     make([]float64, n),
		pv:      make([]float64, n),
		pre:     make([]float64, n+1),
		suf:     make([]float64, n+1),
		pre1:    make([]float64, n+1),
		suf1:    make([]float64, n+1),
	}
}

// predictInitial accounts for the very first cycle: every station is
// fresh and draws at backoff stage 0, exactly what Station.Start does.
func (c *controller) predictInitial() {
	for i := range c.drawing {
		p := c.e.in.stationParams(i)
		c.drawing[i] = true
		c.w[i] = p.CW[p.Stage(0)]
	}
	c.accumulate(0)
}

// predictNext captures the pre-draw state after a busy event and adds
// the conditional expectation of the next cycle. It must run after the
// event is resolved (winner known) but before the AfterBusy updates
// consume the redraw randomness; t0 is the simulated time at which the
// next cycle starts. winner is the index of the successful transmitter,
// or −1 for collisions and frame errors.
//
// The state mapping mirrors backoff.Station.AfterBusy exactly: a
// successful winner resets its backoff-stage counter first; then a
// station redraws (uniform on its stage window) iff its backoff or
// deferral counter hit zero, and otherwise keeps deferring with both
// counters decremented.
func (c *controller) predictNext(t0 float64, winner int) {
	for i, s := range c.e.stations {
		bc, dc, bpc := s.BC(), s.DC(), s.BPC()
		if i == winner {
			bpc = 0
		}
		if bc == 0 || dc == 0 {
			p := c.e.in.stationParams(i)
			c.drawing[i] = true
			c.w[i] = p.CW[p.Stage(bpc)]
		} else {
			c.drawing[i] = false
			c.fixed[i] = bc - 1
		}
	}
	c.accumulate(t0)
}

// accumulate adds E[next-cycle counter increments | pre-draw state] to
// the running expectations, replaying the engine's per-slot time
// accumulation from t0 so horizon truncation matches the medium loop
// bit for bit.
func (c *controller) accumulate(t0 float64) {
	n := len(c.w)
	in := &c.e.in
	tv := t0
	for v := 0; ; v++ {
		if tv > in.SimTime {
			return // neither this slot nor anything after it is processed
		}
		for j := 0; j < n; j++ {
			var q, q1 float64
			if c.drawing[j] {
				fw := float64(c.w[j])
				if d := fw - float64(v); d > 0 {
					q = d / fw
				}
				if d := fw - float64(v+1); d > 0 {
					q1 = d / fw
				}
			} else {
				if c.fixed[j] >= v {
					q = 1
				}
				if c.fixed[j] >= v+1 {
					q1 = 1
				}
			}
			c.qv[j], c.qv1[j], c.pv[j] = q, q1, q-q1
		}
		c.pre[0], c.pre1[0] = 1, 1
		for j := 0; j < n; j++ {
			c.pre[j+1] = c.pre[j] * c.qv[j]
			c.pre1[j+1] = c.pre1[j] * c.qv1[j]
		}
		c.suf[n], c.suf1[n] = 1, 1
		for j := n - 1; j >= 0; j-- {
			c.suf[j] = c.suf[j+1] * c.qv[j]
			c.suf1[j] = c.suf1[j+1] * c.qv1[j]
		}
		sAll := c.pre[n] // P(G ≥ v): every station still deferring
		if sAll == 0 {
			return // the gap cannot reach this slot
		}
		sAll1 := c.pre1[n] // P(G ≥ v+1): slot v idles
		var p1, p1succ, p1err, etx float64
		for i := 0; i < n; i++ {
			if c.pv[i] == 0 {
				continue
			}
			othersGe := c.pre[i] * c.suf[i+1]
			othersGe1 := c.pre1[i] * c.suf1[i+1]
			p1i := c.pv[i] * othersGe1 // station i transmits alone at v
			p1 += p1i
			var ep float64
			if in.ErrorProb != nil {
				ep = in.ErrorProb[i]
			}
			p1succ += p1i * (1 - ep)
			p1err += p1i * ep
			etx += c.pv[i] * othersGe // E[transmitters at v · 1{G = v}]
		}
		pcoll := (sAll - sAll1) - p1 // P(G = v) minus the lone-winner slice
		if pcoll < 0 {
			pcoll = 0
		}
		c.expected[CtrlSuccesses] += p1succ
		c.expected[CtrlFrameErrors] += p1err
		c.expected[CtrlCollidedFrames] += etx - p1
		c.expected[CtrlIdleSlots] += sAll1
		c.expected[CtrlElapsed] += p1*in.Ts + pcoll*in.Tc + sAll1*timing.SlotTime
		tv += timing.SlotTime
	}
}

// finish converts the accumulated expectations into the run's control
// vector: realized − expected per channel, in ControlNames order.
func (c *controller) finish(res *Result) {
	res.Controls = []float64{
		float64(res.Successes) - c.expected[CtrlSuccesses],
		float64(res.CollidedFrames) - c.expected[CtrlCollidedFrames],
		float64(res.FrameErrors) - c.expected[CtrlFrameErrors],
		float64(res.IdleSlots) - c.expected[CtrlIdleSlots],
		res.Elapsed - c.expected[CtrlElapsed],
	}
}
