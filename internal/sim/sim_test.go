package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/backoff"
	"repro/internal/config"
	"repro/internal/timing"
)

func shortInputs(n int) Inputs {
	in := DefaultInputs(n)
	in.SimTime = 2e7 // 20 s of simulated time: enough for stable ratios
	return in
}

func TestInputsValidate(t *testing.T) {
	if err := DefaultInputs(2).Validate(); err != nil {
		t.Fatalf("default inputs invalid: %v", err)
	}
	bad := []Inputs{
		func() Inputs { i := DefaultInputs(0); return i }(),
		func() Inputs { i := DefaultInputs(2); i.SimTime = 0; return i }(),
		func() Inputs { i := DefaultInputs(2); i.SimTime = math.NaN(); return i }(),
		func() Inputs { i := DefaultInputs(2); i.Tc = -1; return i }(),
		func() Inputs { i := DefaultInputs(2); i.Ts = 0; return i }(),
		func() Inputs { i := DefaultInputs(2); i.FrameLength = math.Inf(1); return i }(),
		func() Inputs { i := DefaultInputs(2); i.Params.DC = i.Params.DC[:2]; return i }(),
	}
	for k, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad input %d accepted", k)
		}
	}
}

func TestDefaultInputsMatchPaperInvocation(t *testing.T) {
	in := DefaultInputs(2)
	if in.SimTime != 5e8 || in.Tc != 2920.64 || in.Ts != 2542.64 || in.FrameLength != 2050 {
		t.Errorf("DefaultInputs = %+v, want the paper's sim_1901(2, 5e8, 2920.64, 2542.64, 2050, …)", in)
	}
	if !in.Params.Equal(config.DefaultCA1()) {
		t.Errorf("DefaultInputs params = %v, want CA1 defaults", in.Params)
	}
}

func TestSingleStationNeverCollides(t *testing.T) {
	e, err := NewEngine(shortInputs(1))
	if err != nil {
		t.Fatal(err)
	}
	r := e.Run()
	if r.CollidedFrames != 0 || r.CollisionProbability != 0 {
		t.Errorf("N=1: %d collided frames, p=%v; a lone station cannot collide", r.CollidedFrames, r.CollisionProbability)
	}
	if r.Successes == 0 {
		t.Error("N=1: no successes")
	}
}

// TestCollisionProbabilityShape reproduces the Figure 2 curve's shape:
// strictly increasing in N, ~0 at N=1, in the paper's measured band
// (0.23–0.30) at N=7.
func TestCollisionProbabilityShape(t *testing.T) {
	prev := -1.0
	for n := 1; n <= 7; n++ {
		e, err := NewEngine(shortInputs(n))
		if err != nil {
			t.Fatal(err)
		}
		r := e.Run()
		if r.CollisionProbability <= prev {
			t.Errorf("N=%d: collision probability %v not increasing (prev %v)", n, r.CollisionProbability, prev)
		}
		prev = r.CollisionProbability
		if n == 7 && (prev < 0.20 || prev > 0.32) {
			t.Errorf("N=7: collision probability %v outside the paper's band [0.20, 0.32]", prev)
		}
	}
}

// TestTable2AckedIncreasesWithN reproduces the report's key observation
// about Table 2: the total number of acknowledged frames ΣAᵢ increases
// with N, because collided frames are acknowledged too and more
// contenders expire their counters more often.
func TestTable2AckedIncreasesWithN(t *testing.T) {
	acked := func(r Result) int64 {
		var a int64
		for _, s := range r.PerStation {
			a += s.Acked()
		}
		return a
	}
	e1, _ := NewEngine(shortInputs(1))
	e7, _ := NewEngine(shortInputs(7))
	a1, a7 := acked(e1.Run()), acked(e7.Run())
	if a7 <= a1 {
		t.Errorf("ΣA(N=7)=%d not greater than ΣA(N=1)=%d; the all-frames-acked accounting is broken", a7, a1)
	}
}

func TestThroughputDecreasesWithN(t *testing.T) {
	e1, _ := NewEngine(shortInputs(1))
	e7, _ := NewEngine(shortInputs(7))
	r1, r7 := e1.Run(), e7.Run()
	if r7.NormalizedThroughput >= r1.NormalizedThroughput {
		t.Errorf("throughput N=7 (%v) not below N=1 (%v)", r7.NormalizedThroughput, r1.NormalizedThroughput)
	}
	if r1.NormalizedThroughput < 0.70 || r1.NormalizedThroughput > 0.85 {
		t.Errorf("N=1 normalized throughput %v outside expected band (frame/(Ts+E[backoff]))", r1.NormalizedThroughput)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := NewEngine(shortInputs(3))
	b, _ := NewEngine(shortInputs(3))
	ra, rb := a.Run(), b.Run()
	if ra.Successes != rb.Successes || ra.CollidedFrames != rb.CollidedFrames || ra.IdleSlots != rb.IdleSlots {
		t.Errorf("identical seeds diverged: %+v vs %+v", ra, rb)
	}
	for i := range ra.PerStation {
		if ra.PerStation[i] != rb.PerStation[i] {
			t.Errorf("station %d stats diverged", i)
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	in := shortInputs(3)
	in.Seed = 99
	a, _ := NewEngine(shortInputs(3))
	b, _ := NewEngine(in)
	if a.Run().Successes == b.Run().Successes {
		t.Log("warning: different seeds gave equal success counts (possible but unlikely)")
	}
}

func TestPerStationSumsMatchTotals(t *testing.T) {
	e, _ := NewEngine(shortInputs(5))
	r := e.Run()
	var succ, coll int64
	for _, s := range r.PerStation {
		succ += s.Successes
		coll += s.Collided
		if s.Attempts != s.Successes+s.Collided {
			t.Errorf("station attempts %d ≠ successes %d + collided %d", s.Attempts, s.Successes, s.Collided)
		}
	}
	if succ != r.Successes {
		t.Errorf("Σ station successes %d ≠ total %d", succ, r.Successes)
	}
	if coll != r.CollidedFrames {
		t.Errorf("Σ station collided %d ≠ total %d", coll, r.CollidedFrames)
	}
}

// TestTimeAccounting: elapsed simulated time must equal the sum of the
// per-event durations.
func TestTimeAccounting(t *testing.T) {
	in := shortInputs(4)
	e, _ := NewEngine(in)
	r := e.Run()
	want := float64(r.IdleSlots)*timing.SlotTime +
		float64(r.Successes)*in.Ts +
		float64(r.CollisionEvents)*in.Tc
	if math.Abs(want-r.Elapsed) > 1e-6*want {
		t.Errorf("elapsed %v ≠ accounted %v", r.Elapsed, want)
	}
	if r.Elapsed < in.SimTime {
		t.Errorf("run stopped early: %v < %v", r.Elapsed, in.SimTime)
	}
}

// TestFairnessLongRun: over a long run, saturated stations with equal
// parameters must get near-equal success shares (long-term fairness of
// the protocol; short-term unfairness is a separate metric).
func TestFairnessLongRun(t *testing.T) {
	in := shortInputs(4)
	in.SimTime = 5e7
	e, _ := NewEngine(in)
	r := e.Run()
	mean := float64(r.Successes) / 4
	for i, s := range r.PerStation {
		if d := math.Abs(float64(s.Successes)-mean) / mean; d > 0.05 {
			t.Errorf("station %d success share deviates %.1f%% from equal split", i, d*100)
		}
	}
}

type recordingObserver struct {
	slots      int
	idles      int
	successes  int
	collisions int
	lastTime   float64
	timeMoved  bool
	badSnaps   int
}

func (o *recordingObserver) OnSlot(t float64, kind SlotKind, txs []int, snaps []backoff.Snapshot) {
	o.slots++
	switch kind {
	case Idle:
		o.idles++
		if len(txs) != 0 {
			o.badSnaps++
		}
	case Success:
		o.successes++
		if len(txs) != 1 {
			o.badSnaps++
		}
	case Collision:
		o.collisions++
		if len(txs) < 2 {
			o.badSnaps++
		}
	}
	if t < o.lastTime {
		o.timeMoved = true
	}
	o.lastTime = t
	for _, s := range snaps {
		if s.BC < 0 || s.CW < 1 {
			o.badSnaps++
		}
	}
}

func TestObserverSeesEveryEvent(t *testing.T) {
	in := shortInputs(3)
	e, _ := NewEngine(in)
	obs := &recordingObserver{}
	e.SetObserver(obs)
	r := e.Run()
	if int64(obs.idles) != r.IdleSlots {
		t.Errorf("observer idles %d ≠ result %d", obs.idles, r.IdleSlots)
	}
	if int64(obs.successes) != r.Successes {
		t.Errorf("observer successes %d ≠ result %d", obs.successes, r.Successes)
	}
	if int64(obs.collisions) != r.CollisionEvents {
		t.Errorf("observer collisions %d ≠ result %d", obs.collisions, r.CollisionEvents)
	}
	if obs.timeMoved {
		t.Error("observer saw time move backwards")
	}
	if obs.badSnaps != 0 {
		t.Errorf("%d malformed observer callbacks", obs.badSnaps)
	}
}

func TestSim1901EntryPoint(t *testing.T) {
	p, thr, err := Sim1901(2, 2e7, 2920.64, 2542.64, 2050, []int{8, 16, 32, 64}, []int{0, 1, 3, 15}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p >= 0.3 {
		t.Errorf("collision probability %v outside plausible N=2 band", p)
	}
	if thr <= 0.5 || thr >= 1 {
		t.Errorf("normalized throughput %v outside plausible band", thr)
	}
	if _, _, err := Sim1901(2, 2e7, 2920.64, 2542.64, 2050, []int{8, 16}, []int{0}, 1); err == nil {
		t.Error("mismatched cw/dc accepted (MATLAB returns early on this)")
	}
}

// TestLargerCWminReducesCollisions: the CW tradeoff of Section 2 — a
// larger minimum contention window must lower collision probability.
func TestLargerCWminReducesCollisions(t *testing.T) {
	small := shortInputs(5)
	large := shortInputs(5)
	large.Params = config.Params{Name: "wide", CW: []int{64, 64, 64, 64}, DC: []int{0, 1, 3, 15}}
	es, _ := NewEngine(small)
	el, _ := NewEngine(large)
	ps, pl := es.Run().CollisionProbability, el.Run().CollisionProbability
	if pl >= ps {
		t.Errorf("CWmin 64 collision probability %v not below CWmin 8's %v", pl, ps)
	}
}

// TestDeferralCountersReduceCollisions: disabling the deferral counter
// (dᵢ = ∞) must increase collisions under contention — the mechanism
// exists precisely to absorb the small CWmin.
func TestDeferralCountersReduceCollisions(t *testing.T) {
	withDC := shortInputs(7)
	noDC := shortInputs(7)
	noDC.Params = config.Params{Name: "no-dc", CW: []int{8, 16, 32, 64}, DC: []int{1 << 20, 1 << 20, 1 << 20, 1 << 20}}
	ew, _ := NewEngine(withDC)
	en, _ := NewEngine(noDC)
	pw, pn := ew.Run().CollisionProbability, en.Run().CollisionProbability
	if pn <= pw {
		t.Errorf("without deferral counters collision probability %v ≤ with %v", pn, pw)
	}
}

// Property: for any small scenario the accounting identities hold.
func TestAccountingProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%6 + 1
		in := DefaultInputs(n)
		in.SimTime = 2e6
		in.Seed = seed
		e, err := NewEngine(in)
		if err != nil {
			return false
		}
		r := e.Run()
		var succ, coll int64
		for _, s := range r.PerStation {
			succ += s.Successes
			coll += s.Collided
		}
		if succ != r.Successes || coll != r.CollidedFrames {
			return false
		}
		if r.CollisionProbability < 0 || r.CollisionProbability > 1 {
			return false
		}
		if r.NormalizedThroughput < 0 || r.NormalizedThroughput > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPerStationParamsValidation(t *testing.T) {
	in := shortInputs(3)
	in.PerStation = []config.Params{config.DefaultCA1()} // wrong length
	if err := in.Validate(); err == nil {
		t.Error("wrong PerStation length accepted")
	}
	in.PerStation = []config.Params{config.DefaultCA1(), {}, config.DefaultCA1()}
	if err := in.Validate(); err == nil {
		t.Error("invalid per-station config accepted")
	}
}

// TestHeterogeneousCapture: a station with a small fixed window takes a
// larger success share than its large-window peers — the capture effect
// of the coexistence experiment.
func TestHeterogeneousCapture(t *testing.T) {
	in := shortInputs(3)
	aggressive := config.Params{Name: "aggr", CW: []int{4, 8, 16, 32}, DC: []int{0, 1, 3, 15}}
	polite := config.Params{Name: "polite", CW: []int{64, 64, 64, 64}, DC: []int{0, 1, 3, 15}}
	in.PerStation = []config.Params{aggressive, polite, polite}
	e, err := NewEngine(in)
	if err != nil {
		t.Fatal(err)
	}
	r := e.Run()
	if r.PerStation[0].Successes <= 2*r.PerStation[1].Successes {
		t.Errorf("aggressive station won %d vs polite %d; expected strong capture",
			r.PerStation[0].Successes, r.PerStation[1].Successes)
	}
}

// TestHeterogeneousEqualsHomogeneousWhenIdentical: PerStation with
// identical entries must reproduce the homogeneous run bit for bit.
func TestHeterogeneousEqualsHomogeneous(t *testing.T) {
	a := shortInputs(3)
	b := shortInputs(3)
	b.PerStation = []config.Params{config.DefaultCA1(), config.DefaultCA1(), config.DefaultCA1()}
	ea, _ := NewEngine(a)
	eb, _ := NewEngine(b)
	ra, rb := ea.Run(), eb.Run()
	if ra.Successes != rb.Successes || ra.CollidedFrames != rb.CollidedFrames {
		t.Error("identical per-station configs diverged from homogeneous run")
	}
}
