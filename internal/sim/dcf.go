package sim

import (
	"fmt"

	"repro/internal/backoff"
	"repro/internal/config"
	"repro/internal/rng"
	"repro/internal/timing"
)

// DCFInputs parameterizes the 802.11 baseline simulation. The medium
// loop, timing accounting and statistics definitions are identical to
// the 1901 engine so that the two protocols are compared like for like;
// only the per-station backoff engine differs.
type DCFInputs struct {
	N           int
	SimTime     float64
	Tc          float64
	Ts          float64
	FrameLength float64
	DCF         config.DCF
	// SlottedBusy selects the busy-period convention: true (default in
	// the papers' comparisons) decrements a frozen station's counter
	// once per busy period, like the 1901 simulator; false freezes it.
	SlottedBusy bool
	Seed        uint64
	// Observer optionally receives every medium event (snapshots are
	// not populated for DCF stations; txs and kind are).
	Observer Observer
}

// DefaultDCFInputs mirrors DefaultInputs with the classic DCF config.
func DefaultDCFInputs(n int) DCFInputs {
	return DCFInputs{
		N:           n,
		SimTime:     5e8,
		Tc:          timing.DefaultCollisionDuration,
		Ts:          timing.DefaultSuccessDuration,
		FrameLength: timing.DefaultFrameDuration,
		DCF:         config.Default80211(),
		SlottedBusy: true,
		Seed:        1,
	}
}

// Validate checks the numeric inputs and the DCF configuration.
func (in DCFInputs) Validate() error {
	if in.N < 1 {
		return fmt.Errorf("sim: N=%d must be ≥ 1", in.N)
	}
	if in.SimTime <= 0 {
		return fmt.Errorf("sim: sim_time=%v must be positive", in.SimTime)
	}
	if in.Tc <= 0 || in.Ts <= 0 || in.FrameLength <= 0 {
		return fmt.Errorf("sim: Tc/Ts/frame_length must be positive")
	}
	return in.DCF.Validate()
}

// RunDCF executes the 802.11 baseline and returns a Result with the same
// statistics definitions as the 1901 engine.
func RunDCF(in DCFInputs) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	root := rng.New(in.Seed)
	stations := make([]*backoff.DCFStation, in.N)
	intents := make([]backoff.Action, in.N)
	for i := range stations {
		stations[i] = backoff.NewDCFStation(in.DCF, root.Split(uint64(i)))
		stations[i].DecrementOnBusy = in.SlottedBusy
		intents[i] = stations[i].Start()
	}

	res := Result{
		Inputs: Inputs{
			N: in.N, SimTime: in.SimTime, Tc: in.Tc, Ts: in.Ts,
			FrameLength: in.FrameLength, Params: in.DCF.Params(), Seed: in.Seed,
		},
		PerStation: make([]StationStats, in.N),
	}

	txs := make([]int, 0, in.N)
	txMask := make([]bool, in.N)
	var t float64
	for t <= in.SimTime {
		txs = txs[:0]
		for i, a := range intents {
			if a == backoff.Transmit {
				txs = append(txs, i)
			}
		}
		if in.Observer != nil {
			var kind SlotKind
			switch len(txs) {
			case 0:
				kind = Idle
			case 1:
				kind = Success
			default:
				kind = Collision
			}
			in.Observer.OnSlot(t, kind, txs, nil)
		}
		switch len(txs) {
		case 0:
			if in.Observer != nil {
				res.IdleSlots++
				for i, s := range stations {
					intents[i] = s.AfterIdle()
				}
				t += timing.SlotTime
				break
			}
			fastForwardIdle(stations, intents, &t, in.SimTime, &res.IdleSlots)
		case 1:
			w := txs[0]
			res.Successes++
			res.PerStation[w].Successes++
			res.PerStation[w].Attempts++
			for i, s := range stations {
				intents[i] = s.AfterBusy(i == w, true)
			}
			t += in.Ts
		default:
			res.CollisionEvents++
			res.CollidedFrames += int64(len(txs))
			for _, i := range txs {
				txMask[i] = true
				res.PerStation[i].Collided++
				res.PerStation[i].Attempts++
			}
			for i, s := range stations {
				intents[i] = s.AfterBusy(txMask[i], false)
			}
			for _, i := range txs {
				txMask[i] = false
			}
			t += in.Tc
		}
	}

	res.Elapsed = t
	for i, s := range stations {
		res.PerStation[i].Redraws = s.Redraws()
	}
	if attempts := res.CollidedFrames + res.Successes; attempts > 0 {
		res.CollisionProbability = float64(res.CollidedFrames) / float64(attempts)
	}
	res.NormalizedThroughput = float64(res.Successes) * in.FrameLength / t
	return res, nil
}
