package sim

import (
	"reflect"
	"testing"

	"repro/internal/backoff"
	"repro/internal/config"
)

// noopObserver forces the engine onto its slot-by-slot path without
// recording anything: installing any observer disables the idle
// fast-forward, so a run with noopObserver reproduces the seed
// repository's original slot-at-a-time medium loop exactly.
type noopObserver struct{}

func (noopObserver) OnSlot(float64, SlotKind, []int, []backoff.Snapshot) {}

// runBoth executes the same inputs through the batched (no observer)
// and slot-by-slot (observer installed) engines and returns both
// results.
func runBoth(t *testing.T, in Inputs) (batched, slotwise Result) {
	t.Helper()
	fast, err := NewEngine(in)
	if err != nil {
		t.Fatalf("NewEngine(batched): %v", err)
	}
	slow, err := NewEngine(in)
	if err != nil {
		t.Fatalf("NewEngine(slotwise): %v", err)
	}
	slow.SetObserver(noopObserver{})
	return fast.Run(), slow.Run()
}

// TestFastForwardBitIdentical is the equivalence property of the idle
// fast-forward: for every seed, station count, priority class and
// heterogeneous configuration tried, the batched engine's Result —
// including the floating-point Elapsed trajectory and every per-station
// counter — must equal the slot-by-slot engine's bit for bit. Idle
// slots consume no randomness, so batching them cannot change a draw.
func TestFastForwardBitIdentical(t *testing.T) {
	for n := 1; n <= 10; n++ {
		for _, pri := range []config.Priority{config.CA0, config.CA1, config.CA2, config.CA3} {
			for seed := uint64(1); seed <= 5; seed++ {
				in := DefaultInputs(n)
				in.SimTime = 3e6
				in.Seed = seed
				in.Params = config.Default1901(pri)
				fast, slow := runBoth(t, in)
				if !reflect.DeepEqual(fast, slow) {
					t.Fatalf("N=%d %v seed=%d: batched %+v ≠ slot-by-slot %+v",
						n, pri, seed, fast, slow)
				}
			}
		}
	}
}

// TestFastForwardBitIdenticalHeterogeneous covers PerStation configs:
// mixed aggressive/polite windows and deferral-disabled stations, where
// idle runs are longest and the batch bound must still be exact.
func TestFastForwardBitIdenticalHeterogeneous(t *testing.T) {
	inf := 1 << 20
	aggressive := config.Params{Name: "aggr", CW: []int{4, 8, 16, 32}, DC: []int{0, 1, 3, 15}}
	polite := config.Params{Name: "polite", CW: []int{64, 128, 128, 128}, DC: []int{inf, inf, inf, inf}}
	for n := 2; n <= 10; n++ {
		for seed := uint64(1); seed <= 5; seed++ {
			in := DefaultInputs(n)
			in.SimTime = 3e6
			in.Seed = seed
			in.PerStation = make([]config.Params, n)
			for i := range in.PerStation {
				if i%2 == 0 {
					in.PerStation[i] = aggressive
				} else {
					in.PerStation[i] = polite
				}
			}
			fast, slow := runBoth(t, in)
			if !reflect.DeepEqual(fast, slow) {
				t.Fatalf("N=%d seed=%d heterogeneous: batched ≠ slot-by-slot\nbatched:  %+v\nslotwise: %+v",
					n, seed, fast, slow)
			}
		}
	}
}

// TestFastForwardStationStateMatches goes beyond the Result: the
// internal backoff state left behind (BC, DC, BPC, stage) must also be
// identical, so that any future extension reading engine state after a
// run cannot observe the fast-forward.
func TestFastForwardStationStateMatches(t *testing.T) {
	in := DefaultInputs(4)
	in.SimTime = 2e6
	in.Seed = 7
	fast, err := NewEngine(in)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewEngine(in)
	if err != nil {
		t.Fatal(err)
	}
	slow.SetObserver(noopObserver{})
	fast.Run()
	slow.Run()
	for i := 0; i < in.N; i++ {
		if fs, ss := fast.Station(i).Snapshot(), slow.Station(i).Snapshot(); fs != ss {
			t.Errorf("station %d: batched state %+v ≠ slot-by-slot %+v", i, fs, ss)
		}
	}
}

// TestMediumLoopAllocationFree pins the zero-allocation property of the
// engine's medium loop: a 100× longer simulation must allocate exactly
// as much as a short one (engine construction and the Result only) —
// i.e. the loop itself allocates nothing.
func TestMediumLoopAllocationFree(t *testing.T) {
	allocs := func(simTime float64) float64 {
		in := DefaultInputs(3)
		in.SimTime = simTime
		return testing.AllocsPerRun(3, func() {
			e, err := NewEngine(in)
			if err != nil {
				t.Fatal(err)
			}
			e.Run()
		})
	}
	short, long := allocs(2e5), allocs(2e7)
	if long > short {
		t.Errorf("run 100× longer allocated more (%v vs %v): medium loop is not allocation-free", long, short)
	}
}

// TestDCFFastForwardBitIdentical is the same property for the 802.11
// baseline engine, under both busy-period conventions.
func TestDCFFastForwardBitIdentical(t *testing.T) {
	for n := 1; n <= 10; n++ {
		for _, slotted := range []bool{true, false} {
			for seed := uint64(1); seed <= 3; seed++ {
				in := DefaultDCFInputs(n)
				in.SimTime = 3e6
				in.Seed = seed
				in.SlottedBusy = slotted
				fast, err := RunDCF(in)
				if err != nil {
					t.Fatal(err)
				}
				in.Observer = noopObserver{}
				slow, err := RunDCF(in)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(fast, slow) {
					t.Fatalf("DCF N=%d slotted=%v seed=%d: batched %+v ≠ slot-by-slot %+v",
						n, slotted, seed, fast, slow)
				}
			}
		}
	}
}
