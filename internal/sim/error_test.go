package sim

import (
	"reflect"
	"testing"

	"repro/internal/backoff"
)

// errInputs builds a 3-station scenario with per-station channel error
// probabilities.
func errInputs(seed uint64, probs []float64) Inputs {
	in := DefaultInputs(len(probs))
	in.SimTime = 3e6
	in.Seed = seed
	in.ErrorProb = probs
	return in
}

// TestChannelErrorAccounting checks the errored-frame bookkeeping: the
// counters balance, errors appear only at stations with positive
// probability, and the acked counter includes errored frames (the
// Section 3.2 acknowledgment semantics).
func TestChannelErrorAccounting(t *testing.T) {
	e, err := NewEngine(errInputs(1, []float64{0.3, 0, 0.1}))
	if err != nil {
		t.Fatal(err)
	}
	r := e.Run()
	if r.FrameErrors == 0 {
		t.Fatal("no frame errors recorded at p=0.3")
	}
	var sum int64
	for i, s := range r.PerStation {
		sum += s.Errored
		if i == 1 && s.Errored != 0 {
			t.Fatalf("station 1 has p=0 but %d errored frames", s.Errored)
		}
		if got, want := s.Acked(), s.Successes+s.Collided+s.Errored; got != want {
			t.Fatalf("station %d Acked()=%d, want %d", i, got, want)
		}
		if got, want := s.Attempts, s.Successes+s.Collided+s.Errored; got != want {
			t.Fatalf("station %d Attempts=%d, want %d", i, got, want)
		}
	}
	if sum != r.FrameErrors {
		t.Fatalf("per-station errored sum %d != FrameErrors %d", sum, r.FrameErrors)
	}
	wantP := float64(r.CollidedFrames) / float64(r.CollidedFrames+r.Successes+r.FrameErrors)
	if r.CollisionProbability != wantP {
		t.Fatalf("collision probability %v, want %v (errored frames in the denominator)", r.CollisionProbability, wantP)
	}
}

// TestChannelErrorObserverEquivalence extends the fast-forward
// equivalence property to errored channels: with an observer installed
// the engine steps slot by slot, without one it batches idle runs —
// and the results must stay bit-identical, error draws included. The
// observer must also see every errored slot as FrameError, never
// Success (traces of noisy runs classify correctly).
func TestChannelErrorObserverEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		probs := []float64{0.25, 0, 0.5, 0.05}
		fast, err := NewEngine(errInputs(seed, probs))
		if err != nil {
			t.Fatal(err)
		}
		rFast := fast.Run()

		slow, err := NewEngine(errInputs(seed, probs))
		if err != nil {
			t.Fatal(err)
		}
		counts := map[SlotKind]int64{}
		slow.SetObserver(obsFunc(func(_ float64, kind SlotKind, txs []int, _ []backoff.Snapshot) {
			counts[kind]++
			if kind == FrameError && len(txs) != 1 {
				t.Fatalf("FrameError slot with %d transmitters", len(txs))
			}
		}))
		rSlow := slow.Run()

		if !reflect.DeepEqual(rFast, rSlow) {
			t.Fatalf("seed %d: fast-forward and slot-by-slot runs differ with channel errors:\n%+v\n%+v", seed, rFast, rSlow)
		}
		if counts[FrameError] != rSlow.FrameErrors {
			t.Fatalf("seed %d: observer saw %d FrameError slots, result says %d", seed, counts[FrameError], rSlow.FrameErrors)
		}
		if counts[Success] != rSlow.Successes {
			t.Fatalf("seed %d: observer saw %d Success slots, result says %d", seed, counts[Success], rSlow.Successes)
		}
	}
}

// TestChannelErrorBackoffDrawsUnperturbed checks the dedicated-stream
// design: an errored run and its error-free twin share every backoff
// draw up to the first errored frame, so the idle-slot trajectory of a
// single station (which never collides and, with p=0, never errs) is
// identical until the first divergence — and with p=0 everywhere, the
// run equals a plain error-free run exactly.
func TestChannelErrorBackoffDrawsUnperturbed(t *testing.T) {
	in := DefaultInputs(3)
	in.SimTime = 3e6
	e1, err := NewEngine(in)
	if err != nil {
		t.Fatal(err)
	}
	r1 := e1.Run()

	withZero := errInputs(1, []float64{0, 0, 0})
	e2, err := NewEngine(withZero)
	if err != nil {
		t.Fatal(err)
	}
	r2 := e2.Run()
	// Normalize the Inputs field (ErrorProb differs by construction).
	r2.Inputs.ErrorProb = nil
	r1.Inputs.Params = r2.Inputs.Params
	r1.Inputs.PerStation = r2.Inputs.PerStation
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("all-zero ErrorProb perturbed the run:\n%+v\n%+v", r1, r2)
	}
}

// TestErrorProbValidation covers the new Inputs checks.
func TestErrorProbValidation(t *testing.T) {
	in := DefaultInputs(2)
	in.ErrorProb = []float64{0.5}
	if err := in.Validate(); err == nil {
		t.Fatal("length mismatch accepted")
	}
	in.ErrorProb = []float64{0.5, 1.5}
	if err := in.Validate(); err == nil {
		t.Fatal("probability 1.5 accepted")
	}
	in.ErrorProb = []float64{0.5, 1}
	if err := in.Validate(); err != nil {
		t.Fatalf("valid probabilities rejected: %v", err)
	}
}

// obsFunc adapts a function to the Observer interface.
type obsFunc func(t float64, kind SlotKind, txs []int, snaps []backoff.Snapshot)

func (f obsFunc) OnSlot(t float64, kind SlotKind, txs []int, snaps []backoff.Snapshot) {
	f(t, kind, txs, snaps)
}
