package sim

import (
	"math"
	"testing"

	"repro/internal/timing"
)

func shortDCF(n int) DCFInputs {
	in := DefaultDCFInputs(n)
	in.SimTime = 2e7
	return in
}

func TestDCFInputsValidate(t *testing.T) {
	if err := DefaultDCFInputs(2).Validate(); err != nil {
		t.Fatalf("default DCF inputs invalid: %v", err)
	}
	bad := []DCFInputs{
		func() DCFInputs { i := DefaultDCFInputs(0); return i }(),
		func() DCFInputs { i := DefaultDCFInputs(2); i.SimTime = -1; return i }(),
		func() DCFInputs { i := DefaultDCFInputs(2); i.Tc = 0; return i }(),
		func() DCFInputs { i := DefaultDCFInputs(2); i.DCF.CWmin = 0; return i }(),
	}
	for k, in := range bad {
		if _, err := RunDCF(in); err == nil {
			t.Errorf("bad DCF input %d accepted", k)
		}
	}
}

func TestDCFSingleStation(t *testing.T) {
	r, err := RunDCF(shortDCF(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.CollidedFrames != 0 {
		t.Errorf("N=1 DCF collided %d times", r.CollidedFrames)
	}
	if r.Successes == 0 {
		t.Error("N=1 DCF made no progress")
	}
}

func TestDCFDeterminism(t *testing.T) {
	a, _ := RunDCF(shortDCF(3))
	b, _ := RunDCF(shortDCF(3))
	if a.Successes != b.Successes || a.CollidedFrames != b.CollidedFrames {
		t.Error("DCF runs with equal seeds diverged")
	}
}

func TestDCFTimeAccounting(t *testing.T) {
	in := shortDCF(4)
	r, _ := RunDCF(in)
	want := float64(r.IdleSlots)*timing.SlotTime + float64(r.Successes)*in.Ts + float64(r.CollisionEvents)*in.Tc
	if math.Abs(want-r.Elapsed) > 1e-6*want {
		t.Errorf("elapsed %v ≠ accounted %v", r.Elapsed, want)
	}
}

// Test1901BeatsDCFAtFewStations: with N small, 1901's tiny CWmin wastes
// fewer idle slots than DCF's CWmin 16 → higher throughput. This is the
// backoff-inefficiency motivation of Section 2.
func Test1901BeatsDCFAtFewStations(t *testing.T) {
	e, _ := NewEngine(shortInputs(1))
	r1901 := e.Run()
	rdcf, _ := RunDCF(shortDCF(1))
	if r1901.NormalizedThroughput <= rdcf.NormalizedThroughput {
		t.Errorf("N=1: 1901 throughput %v not above DCF %v", r1901.NormalizedThroughput, rdcf.NormalizedThroughput)
	}
}

// TestDeferralBeatsDCFUnderContention: under contention, 1901's
// deferral counter raises CW preemptively (before collisions happen),
// so its collision probability stays below plain DCF's even though its
// CWmin is half of DCF's — the mechanism the paper's Section 2
// describes as counterbalancing the small CWmin.
func TestDeferralBeatsDCFUnderContention(t *testing.T) {
	e, _ := NewEngine(shortInputs(10))
	r1901 := e.Run()
	rdcf, _ := RunDCF(shortDCF(10))
	if r1901.CollisionProbability >= rdcf.CollisionProbability {
		t.Errorf("N=10: 1901 collision probability %v not below DCF's %v",
			r1901.CollisionProbability, rdcf.CollisionProbability)
	}
}

func TestDCFCollisionIncreasesWithN(t *testing.T) {
	prev := -1.0
	for _, n := range []int{1, 2, 5, 10} {
		r, err := RunDCF(shortDCF(n))
		if err != nil {
			t.Fatal(err)
		}
		if r.CollisionProbability <= prev && n > 1 {
			t.Errorf("N=%d: DCF collision probability %v not increasing", n, r.CollisionProbability)
		}
		prev = r.CollisionProbability
	}
}

func TestDCFBusyConventionMatters(t *testing.T) {
	slotted := shortDCF(5)
	frozen := shortDCF(5)
	frozen.SlottedBusy = false
	rs, _ := RunDCF(slotted)
	rf, _ := RunDCF(frozen)
	// Freezing makes stations spend more real time in backoff; the two
	// conventions must at least produce different dynamics.
	if rs.Successes == rf.Successes && rs.CollidedFrames == rf.CollidedFrames {
		t.Error("busy-period convention had no effect at all")
	}
}

func TestDCFResultParamsCarrySentinelDC(t *testing.T) {
	r, _ := RunDCF(shortDCF(2))
	p := r.Inputs.Params
	if err := p.Validate(); err != nil {
		t.Fatalf("flattened DCF params invalid: %v", err)
	}
	for i := range p.CW {
		if p.DC[i] < p.CW[i]-1 {
			t.Errorf("stage %d: sentinel DC %d reachable within CW %d", i, p.DC[i], p.CW[i])
		}
	}
}
