package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/stats/statcheck"
)

func runWith(t *testing.T, in Inputs, controls bool, obs Observer) Result {
	t.Helper()
	e, err := NewEngine(in)
	if err != nil {
		t.Fatal(err)
	}
	if controls {
		e.EnableControls()
	}
	if obs != nil {
		e.SetObserver(obs)
	}
	return e.Run()
}

func controlTestInputs(n int, simTime float64, errProb float64, seed uint64) Inputs {
	in := DefaultInputs(n)
	in.SimTime = simTime
	in.Seed = seed
	if errProb > 0 {
		in.ErrorProb = make([]float64, n)
		for i := range in.ErrorProb {
			in.ErrorProb[i] = errProb
		}
	}
	return in
}

// Enabling controls must not change anything else about the run: the
// predictor consumes no randomness, so every counter and output stays
// bit-identical. This is the common-random-numbers guarantee the whole
// control-variate estimator rests on.
func TestControlsDoNotPerturbResult(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n       int
		errProb float64
	}{
		{"n2", 2, 0},
		{"n5", 5, 0},
		{"n3-err", 3, 0.2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := controlTestInputs(tc.n, 3e5, tc.errProb, 42)
			plain := runWith(t, in, false, nil)
			cv := runWith(t, in, true, nil)
			if cv.Controls == nil {
				t.Fatal("controls enabled but Result.Controls is nil")
			}
			cv.Controls = nil
			if !reflect.DeepEqual(plain, cv) {
				t.Errorf("enabling controls changed the result:\nplain %+v\ncv    %+v", plain, cv)
			}
		})
	}
}

// Observer mode steps idle slots one by one instead of fast-forwarding;
// the controls must come out bit-identical either way.
func TestControlsObserverEquivalence(t *testing.T) {
	in := controlTestInputs(3, 2e5, 0, 7)
	fast := runWith(t, in, true, nil)
	slow := runWith(t, in, true, noopObserver{})
	if !reflect.DeepEqual(fast.Controls, slow.Controls) {
		t.Errorf("controls diverge between fast-forward and observer mode:\n%v\n%v", fast.Controls, slow.Controls)
	}
}

// The defining property: every control channel has exactly zero
// expectation, so over many independent seeds its sample mean must sit
// within a few standard errors of zero. A sign error in the
// conditional-expectation bookkeeping, a horizon-truncation mismatch,
// or a wrong window in the backoff-state mapping all show up here as a
// many-sigma bias.
func TestControlMeansZero(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		simTime float64
		errProb float64
		reps    int
	}{
		{"n2", 2, 2e5, 0, 300},
		{"n5", 5, 2e5, 0, 300},
		{"n3-err", 3, 2e5, 0.3, 300},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			accs := make([]stats.Accumulator, NumControls)
			for r := 0; r < tc.reps; r++ {
				in := controlTestInputs(tc.n, tc.simTime, tc.errProb, statcheck.Seed(0x1901, r))
				res := runWith(t, in, true, nil)
				for j, c := range res.Controls {
					accs[j].Add(c)
				}
			}
			for j, a := range accs {
				if a.StdDev() == 0 {
					// Degenerate channel (frame errors on an error-free
					// spec): every control must be exactly zero.
					if a.Mean() != 0 {
						t.Errorf("control %q constant but nonzero: %v", ControlNames[j], a.Mean())
					}
					continue
				}
				se := a.StdDev() / math.Sqrt(float64(a.N()))
				statcheck.AssertUnbiased(t, "control "+ControlNames[j], a.Mean(), se, 0, 4.5)
			}
		})
	}
}

// Heterogeneous per-station configs exercise the per-station window
// lookup in the predictor.
func TestControlMeansZeroHeterogeneous(t *testing.T) {
	base := DefaultInputs(3)
	per := []config.Params{config.DefaultCA1(), config.DefaultCA1(), config.Default1901(config.CA3)}
	accs := make([]stats.Accumulator, NumControls)
	const reps = 300
	for r := 0; r < reps; r++ {
		in := base
		in.SimTime = 2e5
		in.PerStation = per
		in.Seed = statcheck.Seed(0x4e7, r)
		res := runWith(t, in, true, nil)
		for j, c := range res.Controls {
			accs[j].Add(c)
		}
	}
	for j, a := range accs {
		if a.StdDev() == 0 {
			continue
		}
		se := a.StdDev() / math.Sqrt(float64(a.N()))
		statcheck.AssertUnbiased(t, "control "+ControlNames[j], a.Mean(), se, 0, 4.5)
	}
}

// The controls must genuinely track the counters — that correlation is
// the entire variance-reduction mechanism. This is a loose structural
// check (the precise ≥3× acceptance bound lives in internal/campaign);
// it guards against a refactor that leaves the controls mean-zero but
// decorrelated, e.g. by predicting from stale state.
func TestControlsCorrelateWithCounters(t *testing.T) {
	const reps = 200
	ys := make([]float64, 0, reps)
	cs := make([][]float64, 0, reps)
	for r := 0; r < reps; r++ {
		in := controlTestInputs(3, 2e5, 0, statcheck.Seed(0xc0de, r))
		res := runWith(t, in, true, nil)
		ys = append(ys, float64(res.Successes))
		cs = append(cs, []float64{res.Controls[CtrlSuccesses]})
	}
	est := stats.SummarizeCV(ys, cs, stats.CVOpts{})
	if !est.Applied {
		t.Fatalf("successes control not applied: %+v", est)
	}
	if est.R2 < 0.5 {
		t.Errorf("successes control R² = %v; the control has decorrelated from the counter", est.R2)
	}
}
