// Package sim implements the slot-synchronous finite-state-machine
// simulator of the IEEE 1901 CSMA/CA mechanism published with the paper
// (Section 4.2), generalized to run either 1901 or 802.11 backoff
// engines over the same medium loop.
//
// The published MATLAB function
//
//	sim_1901(N, sim_time, Tc, Ts, frame_length, cw, dc)
//
// is reproduced exactly by Sim1901 (same inputs, same two outputs —
// collision probability and normalized throughput, same event semantics,
// same statistics definitions). The generic Engine additionally exposes
// per-station counters and an Observer hook used to regenerate the
// Figure 1 trace and the fairness studies.
//
// Assumptions inherited from the paper's simulator: stations are
// saturated, the retry limit is infinite, all stations form a single
// contention domain, and the channel is error-free. The last assumption
// can be lifted per station through Inputs.ErrorProb (frame loss
// without collision), a knob the declarative scenario layer
// (internal/scenario) exposes; leaving it nil reproduces the paper
// exactly.
package sim

import (
	"fmt"
	"math"

	"repro/internal/backoff"
	"repro/internal/config"
	"repro/internal/rng"
	"repro/internal/timing"
)

// Inputs mirrors Table 3 of the paper: the simulator's input variables
// in the order they are given to sim_1901.
type Inputs struct {
	// N is the number of saturated stations.
	N int
	// SimTime is the total simulation time in µs.
	SimTime float64
	// Tc is the duration of a collision in µs.
	Tc float64
	// Ts is the duration of a successful transmission in µs.
	Ts float64
	// FrameLength is the frame duration in µs, not including overheads
	// such as preamble or inter-frame spaces; used only to normalize
	// throughput.
	FrameLength float64
	// Params carries the cw and dc vectors.
	Params config.Params
	// PerStation optionally configures each station individually (for
	// heterogeneous coexistence scenarios). When non-nil it must have
	// exactly N entries and overrides Params.
	PerStation []config.Params
	// ErrorProb optionally assigns each station a per-frame channel
	// error probability: a transmission that wins the medium alone is
	// still lost with this probability (impulsive power-line noise, no
	// collision involved). The destination acknowledges the errored
	// frame with an all-blocks-errored indication, so the transmitter
	// treats it like a failed attempt and moves to the next backoff
	// stage. When non-nil it must have exactly N entries in [0, 1];
	// nil keeps the paper's error-free channel. Error draws come from
	// dedicated per-station streams, so enabling errors never perturbs
	// the backoff draws of an otherwise identical run.
	ErrorProb []float64
	// Seed selects the random stream; runs with equal inputs and seeds
	// are bit-identical.
	Seed uint64
}

// DefaultInputs returns the exact invocation the paper gives as example:
// sim_1901(N, 5·10⁸, 2920.64, 2542.64, 2050, [8 16 32 64], [0 1 3 15]).
func DefaultInputs(n int) Inputs {
	return Inputs{
		N:           n,
		SimTime:     5e8,
		Tc:          timing.DefaultCollisionDuration,
		Ts:          timing.DefaultSuccessDuration,
		FrameLength: timing.DefaultFrameDuration,
		Params:      config.DefaultCA1(),
		Seed:        1,
	}
}

// Validate checks the inputs the way the MATLAB function does (it
// returns early when the cw and dc vectors disagree) plus basic range
// checks on the numeric inputs.
func (in Inputs) Validate() error {
	if in.N < 1 {
		return fmt.Errorf("sim: N=%d must be ≥ 1", in.N)
	}
	if in.SimTime <= 0 || math.IsNaN(in.SimTime) || math.IsInf(in.SimTime, 0) {
		return fmt.Errorf("sim: sim_time=%v must be a positive finite duration", in.SimTime)
	}
	for _, d := range []struct {
		name string
		v    float64
	}{{"Tc", in.Tc}, {"Ts", in.Ts}, {"frame_length", in.FrameLength}} {
		if d.v <= 0 || math.IsNaN(d.v) || math.IsInf(d.v, 0) {
			return fmt.Errorf("sim: %s=%v must be a positive finite duration", d.name, d.v)
		}
	}
	if in.ErrorProb != nil {
		if len(in.ErrorProb) != in.N {
			return fmt.Errorf("sim: %d error probabilities for N=%d", len(in.ErrorProb), in.N)
		}
		for i, p := range in.ErrorProb {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return fmt.Errorf("sim: station %d: error probability %v outside [0, 1]", i, p)
			}
		}
	}
	if in.PerStation != nil {
		if len(in.PerStation) != in.N {
			return fmt.Errorf("sim: %d per-station configs for N=%d", len(in.PerStation), in.N)
		}
		for i, p := range in.PerStation {
			if err := p.Validate(); err != nil {
				return fmt.Errorf("sim: station %d: %w", i, err)
			}
		}
		return nil
	}
	return in.Params.Validate()
}

// stationParams returns station i's configuration.
func (in Inputs) stationParams(i int) config.Params {
	if in.PerStation != nil {
		return in.PerStation[i]
	}
	return in.Params
}

// Result carries the simulator outputs. CollisionProbability and
// NormalizedThroughput are defined exactly as in the paper's code:
//
//	collision_pr    = collisions / (collisions + succ_transmissions)
//	norm_throughput = succ_transmissions · frame_length / t
//
// where "collisions" counts the colliding *stations* of each collision
// event (a 3-way collision adds 3), matching the per-station frame
// counters the testbed measures. With a channel error model installed
// (Inputs.ErrorProb) the attempt denominator additionally includes the
// errored frames — the ΣAᵢ estimator of Section 3.2 counts them, since
// the destination acknowledges errored frames too; with the paper's
// error-free channel the definitions coincide exactly.
type Result struct {
	Inputs Inputs

	CollisionProbability float64
	NormalizedThroughput float64

	// Successes is the number of successful transmissions.
	Successes int64
	// CollidedFrames is the number of collided frames (station-events).
	CollidedFrames int64
	// CollisionEvents is the number of collision busy-periods.
	CollisionEvents int64
	// FrameErrors is the number of frames lost to channel errors —
	// single-transmitter busy periods whose frame the channel corrupted
	// (always 0 with the paper's error-free channel).
	FrameErrors int64
	// IdleSlots is the number of empty contention slots.
	IdleSlots int64
	// Elapsed is the simulated time actually consumed (µs); it may
	// exceed SimTime by up to one busy period, as in the original loop.
	Elapsed float64

	// PerStation holds each station's counters, indexed by station.
	PerStation []StationStats

	// Controls holds the run's martingale control variates (realized −
	// expected per channel, ControlNames order) when the engine ran with
	// EnableControls; nil otherwise. Each entry has exactly zero
	// expectation under the run's random draws — see control.go.
	Controls []float64
}

// StationStats are the per-station counters the emulated testbed also
// exposes through its MME interface: with an ideal channel, Acked =
// Successes + Collided because the 1901 destination acknowledges even a
// collided frame (with an all-blocks-errored indication), which is the
// report's key observation about the ΣAᵢ statistic.
type StationStats struct {
	Successes int64
	Collided  int64
	// Errored counts frames this station lost to channel errors (no
	// collision: the station transmitted alone and the channel corrupted
	// the frame).
	Errored   int64
	Attempts  int64
	Deferrals int64
	Redraws   int64
}

// Acked returns the acknowledged-frame counter as the INT6300 firmware
// reports it: collided and channel-errored frames are included, because
// the destination decodes the robust preamble and acknowledges them
// with an all-blocks-errored indication.
func (s StationStats) Acked() int64 { return s.Successes + s.Collided + s.Errored }

// Observer receives the simulator's events. All callbacks run on the
// simulation goroutine; implementations must not retain the snapshot
// slice, which is reused between events.
type Observer interface {
	// OnSlot is called once per medium event, before state advances.
	// kind describes the event; txs lists the transmitting stations
	// (nil for idle); t is the simulated time at the event's start;
	// snaps holds each station's counters entering the event.
	OnSlot(t float64, kind SlotKind, txs []int, snaps []backoff.Snapshot)
}

// SlotKind classifies a medium event.
type SlotKind int

const (
	// Idle: no station transmitted; one 35.84 µs slot elapses.
	Idle SlotKind = iota
	// Success: exactly one station transmitted; Ts elapses.
	Success
	// Collision: two or more stations transmitted; Tc elapses.
	Collision
	// FrameError: exactly one station transmitted, but the channel
	// corrupted the frame (Inputs.ErrorProb); the medium is busy for Ts
	// like a success, the transmission fails like a collision. Never
	// seen with the paper's error-free channel.
	FrameError
)

// String names the slot kind.
func (k SlotKind) String() string {
	switch k {
	case Idle:
		return "idle"
	case Success:
		return "success"
	case Collision:
		return "collision"
	case FrameError:
		return "error"
	default:
		return fmt.Sprintf("SlotKind(%d)", int(k))
	}
}

// Engine runs N backoff processes over the shared slotted medium.
//
// The medium loop is event-driven over idle time: when every station
// defers, the next min(BC) slots are provably idle and consume no
// randomness, so the engine batches them through AfterIdleN instead of
// stepping slot by slot. With an Observer installed the engine falls
// back to slot-by-slot stepping (traces must see every slot); both modes
// produce bit-identical Results.
type Engine struct {
	in       Inputs
	stations []*backoff.Station
	errSrc   []*rng.Source // per-station channel-error streams (nil entries: error-free)
	intents  []backoff.Action
	txs      []int
	txMask   []bool // scratch: transmitter membership during a collision
	snaps    []backoff.Snapshot
	observer Observer
	ctrl     *controller // non-nil after EnableControls (see control.go)
}

// errStreamBase labels the per-station channel-error streams split off
// the root rng. It is far above any realistic station index, so error
// streams never collide with the backoff streams Split(i) and enabling
// errors leaves every backoff draw untouched.
const errStreamBase = uint64(1) << 32

// NewEngine builds a 1901 engine from validated inputs.
func NewEngine(in Inputs) (*Engine, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(in.Seed)
	e := &Engine{
		in:       in,
		stations: make([]*backoff.Station, in.N),
		intents:  make([]backoff.Action, in.N),
		txs:      make([]int, 0, in.N),
		txMask:   make([]bool, in.N),
		snaps:    make([]backoff.Snapshot, in.N),
	}
	for i := range e.stations {
		e.stations[i] = backoff.NewStation(in.stationParams(i), root.Split(uint64(i)))
	}
	if in.ErrorProb != nil {
		e.errSrc = make([]*rng.Source, in.N)
		for i, p := range in.ErrorProb {
			if p > 0 {
				e.errSrc[i] = root.Split(errStreamBase + uint64(i))
			}
		}
	}
	return e, nil
}

// SetObserver installs a trace observer; pass nil to remove it.
func (e *Engine) SetObserver(o Observer) { e.observer = o }

// Station exposes station i for inspection in tests and traces.
func (e *Engine) Station(i int) *backoff.Station { return e.stations[i] }

// Run executes the simulation until SimTime elapses and returns the
// aggregated result. Run may be called once per Engine.
func (e *Engine) Run() Result {
	res := Result{Inputs: e.in, PerStation: make([]StationStats, e.in.N)}

	// The first cycle's draws happen inside Start; its conditional
	// expectation must be captured before they do.
	if e.ctrl != nil {
		e.ctrl.predictInitial()
	}
	for i, s := range e.stations {
		e.intents[i] = s.Start()
	}

	var t float64
	for t <= e.in.SimTime {
		e.txs = e.txs[:0]
		for i, a := range e.intents {
			if a == backoff.Transmit {
				e.txs = append(e.txs, i)
			}
		}

		var kind SlotKind
		switch len(e.txs) {
		case 0:
			kind = Idle
		case 1:
			kind = Success
			// Channel error: the lone transmission is lost without a
			// collision. Decided before the observer fires so traces see
			// the true slot kind; the draw comes from a dedicated
			// stream, never the backoff streams, and only
			// single-transmitter events consume it.
			if w := e.txs[0]; e.errSrc != nil && e.errSrc[w] != nil && e.errSrc[w].Bernoulli(e.in.ErrorProb[w]) {
				kind = FrameError
			}
		default:
			kind = Collision
		}

		if e.observer != nil {
			for i, s := range e.stations {
				e.snaps[i] = s.Snapshot()
			}
			e.observer.OnSlot(t, kind, e.txs, e.snaps)
		}

		switch kind {
		case Idle:
			if e.observer != nil {
				// Traces must see every slot: step one at a time.
				res.IdleSlots++
				for i, s := range e.stations {
					e.intents[i] = s.AfterIdle()
				}
				t += timing.SlotTime
				break
			}
			fastForwardIdle(e.stations, e.intents, &t, e.in.SimTime, &res.IdleSlots)

		case Success:
			w := e.txs[0]
			res.Successes++
			res.PerStation[w].Successes++
			res.PerStation[w].Attempts++
			if e.ctrl != nil {
				e.ctrl.predictNext(t+e.in.Ts, w)
			}
			for i, s := range e.stations {
				e.intents[i] = s.AfterBusy(i == w, true)
			}
			t += e.in.Ts

		case FrameError:
			// The medium is busy for Ts either way (the frame was sent;
			// the loss happens at the receiver), but the transmitter's
			// ACK carries the all-blocks-errored indication, so its
			// backoff advances to the next stage like a failure.
			w := e.txs[0]
			res.FrameErrors++
			res.PerStation[w].Errored++
			res.PerStation[w].Attempts++
			if e.ctrl != nil {
				e.ctrl.predictNext(t+e.in.Ts, -1)
			}
			for i, s := range e.stations {
				e.intents[i] = s.AfterBusy(i == w, false)
			}
			t += e.in.Ts

		case Collision:
			res.CollisionEvents++
			res.CollidedFrames += int64(len(e.txs))
			for _, i := range e.txs {
				e.txMask[i] = true
				res.PerStation[i].Collided++
				res.PerStation[i].Attempts++
			}
			if e.ctrl != nil {
				e.ctrl.predictNext(t+e.in.Tc, -1)
			}
			for i, s := range e.stations {
				e.intents[i] = s.AfterBusy(e.txMask[i], false)
			}
			for _, i := range e.txs {
				e.txMask[i] = false
			}
			t += e.in.Tc
		}
	}

	res.Elapsed = t
	for i, s := range e.stations {
		res.PerStation[i].Deferrals = s.Deferrals()
		res.PerStation[i].Redraws = s.Redraws()
	}
	attempts := res.CollidedFrames + res.Successes + res.FrameErrors
	if attempts > 0 {
		res.CollisionProbability = float64(res.CollidedFrames) / float64(attempts)
	}
	res.NormalizedThroughput = float64(res.Successes) * e.in.FrameLength / t
	if e.ctrl != nil {
		e.ctrl.finish(&res)
	}
	return res
}

// fastForwardIdle batches the provably idle run that begins at *t: when
// every station defers, the next min(BC) slots are empty and consume no
// randomness, so the per-station updates collapse into one AfterIdleN
// call. The per-slot time accounting is replayed scalar-wise (one
// SlotTime addition per slot) so the float accumulation — and the
// SimTime stopping point — stays bit-identical to the slot-by-slot
// loop. Generic over the backoff engine so the 1901 and DCF medium
// loops share one provably common implementation.
func fastForwardIdle[P backoff.Process](stations []P, intents []backoff.Action, t *float64, simTime float64, idleSlots *int64) {
	m := stations[0].BC()
	for _, s := range stations[1:] {
		if bc := s.BC(); bc < m {
			m = bc
		}
	}
	k := 0
	for k < m && *t <= simTime {
		*idleSlots++
		*t += timing.SlotTime
		k++
	}
	for i, s := range stations {
		intents[i] = s.AfterIdleN(k)
	}
}

// Sim1901 reproduces the published sim_1901 entry point: it builds an
// engine and returns (collision probability, normalized throughput),
// exactly the two outputs of the MATLAB function.
func Sim1901(n int, simTime, tc, ts, frameLength float64, cw, dc []int, seed uint64) (collisionPr, normThroughput float64, err error) {
	in := Inputs{
		N: n, SimTime: simTime, Tc: tc, Ts: ts, FrameLength: frameLength,
		Params: config.Params{Name: "custom", CW: cw, DC: dc},
		Seed:   seed,
	}
	e, err := NewEngine(in)
	if err != nil {
		return 0, 0, err
	}
	r := e.Run()
	return r.CollisionProbability, r.NormalizedThroughput, nil
}
