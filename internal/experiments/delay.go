package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// AccessDelay (experiment E5) measures the saturated head-of-line
// access delay versus the number of stations, from the event-driven MAC
// (mean, median, p95) against the analytical model's renewal estimate.
// Delay is the third axis of the paper's performance analysis (after
// throughput and fairness): the heavy p95/median tail at large N is the
// short-term unfairness expressed in time units.
func AccessDelay(ns []int, durationMicros float64, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "Saturated access delay vs N (per burst, µs): event-driven MAC vs model",
		Note:   "Delay = time from a burst reaching the head of its queue to the end of its successful transmission. Model: E[σ]/(τ(1−γ)). The p95/median ratio grows with N — short-term unfairness in time units.",
		Header: []string{"N", "mean (MAC)", "median", "p95", "mean (model)"},
	}
	type point struct {
		mean, median, p95, model float64
	}
	points, err := sweep(ns, func(_ int, n int) (point, error) {
		tb, err := testbed.New(testbed.Options{
			N: n, BurstMPDUs: 1, Seed: seed, RecordDelays: true,
			FrameMicros: 2050,
		})
		if err != nil {
			return point{}, err
		}
		tb.Run(durationMicros)
		ds := tb.Network.Stats().AccessDelays
		if len(ds) == 0 {
			return point{}, fmt.Errorf("experiments: no delay samples at N=%d", n)
		}
		sum := stats.Summarize(ds)

		pred, err := model.Solve(n, config.DefaultCA1(), model.Options{})
		if err != nil {
			return point{}, err
		}
		met := model.MetricsFor(pred, n, model.DefaultTiming())
		return point{
			mean: sum.Mean, median: stats.Median(ds),
			p95: stats.Quantile(ds, 0.95), model: met.MeanAccessDelay,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		p := points[i]
		t.AddRow(fmt.Sprint(n), f(p.mean), f(p.median), f(p.p95), f(p.model))
	}
	return t, nil
}

// DelayVsLoad (experiment E6) sweeps the offered load of an unsaturated
// network and reports the mean access delay — the classic hockey-stick
// curve whose knee marks the MAC's usable capacity.
func DelayVsLoad(n int, loads []float64, durationMicros float64, seed uint64) (*Table, error) {
	if n < 1 {
		return nil, fmt.Errorf("experiments: DelayVsLoad needs ≥ 1 stations")
	}
	t := &Table{
		ID:     "E6",
		Title:  fmt.Sprintf("Access delay vs offered load, N=%d (bursts of 2 MPDUs)", n),
		Note:   "Offered load is the fraction of the single-station saturation burst rate each station generates; delays explode as aggregate load approaches the MAC's capacity.",
		Header: []string{"offered load", "bursts served", "mean delay (µs)", "p95 delay (µs)", "quiet fraction"},
	}

	// Calibrate the saturation burst rate at N=1 once.
	satTb, err := testbed.New(testbed.Options{N: 1, Seed: seed})
	if err != nil {
		return nil, err
	}
	satTb.Run(durationMicros)
	satStats := satTb.Network.Stats()
	satRate := float64(satStats.Successes) / satStats.Elapsed // bursts/µs

	type point struct {
		served           int64
		mean, p95, quiet float64
	}
	points, err := sweep(loads, func(_ int, load float64) (point, error) {
		if load <= 0 || load > 1 {
			return point{}, fmt.Errorf("experiments: offered load %v outside (0, 1]", load)
		}
		meanInter := 1 / (satRate * load)
		tb, err := testbed.New(testbed.Options{
			N: n, Seed: seed, RecordDelays: true,
			TrafficMeanMicros: meanInter,
		})
		if err != nil {
			return point{}, err
		}
		tb.Run(durationMicros)
		st := tb.Network.Stats()
		if len(st.AccessDelays) == 0 {
			return point{}, fmt.Errorf("experiments: no traffic served at load %v", load)
		}
		return point{
			served: st.Successes,
			mean:   stats.Mean(st.AccessDelays),
			p95:    stats.Quantile(st.AccessDelays, 0.95),
			quiet:  st.QuietTime / st.Elapsed,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, load := range loads {
		p := points[i]
		t.AddRow(fmt.Sprintf("%.2f", load), fmt.Sprint(p.served), f(p.mean), f(p.p95), f(p.quiet))
	}
	return t, nil
}

// ModelAccuracy (experiment E7) quantifies the decoupling
// approximation's error against the simulator across N — the
// known-deviation table of EXPERIMENTS.md, generated rather than
// asserted.
func ModelAccuracy(ns []int, simTime float64, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "Decoupling model accuracy: γ (model) − p (simulator) across N",
		Note:   "The model ignores the negative correlation between freshly synchronized backoff draws, overestimating collisions most at N=2; the error shrinks monotonically with N.",
		Header: []string{"N", "simulator p", "model γ", "error", "model thr − sim thr"},
	}
	type point struct {
		sim  simResult
		pred float64
		thr  float64
	}
	points, err := sweep(ns, func(_ int, n int) (point, error) {
		ev, err := simPoint(n, simTime, seed)
		if err != nil {
			return point{}, err
		}
		pred, err := model.Solve(n, config.DefaultCA1(), model.Options{})
		if err != nil {
			return point{}, err
		}
		met := model.MetricsFor(pred, n, model.DefaultTiming())
		return point{sim: ev, pred: pred.Gamma, thr: met.NormalizedThroughput}, nil
	})
	if err != nil {
		return nil, err
	}
	// The monotonicity check compares consecutive points, so it runs
	// serially over the in-order results.
	prevErr := 1.0
	for i, n := range ns {
		p := points[i]
		e := p.pred - p.sim.collision
		t.AddRow(fmt.Sprint(n), f(p.sim.collision), f(p.pred), f(e), f(p.thr-p.sim.throughput))
		if n > 1 && e > prevErr+0.005 {
			return nil, fmt.Errorf("experiments: model error grew with N (%v → %v at N=%d)", prevErr, e, n)
		}
		if n > 1 {
			prevErr = e
		}
	}
	return t, nil
}
