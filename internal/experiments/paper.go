package experiments

import (
	"fmt"

	"repro/internal/backoff"
	"repro/internal/config"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Table1 renders the IEEE 1901 parameter table (Table 1 of the paper):
// CWᵢ and dᵢ per backoff stage for the two priority groups. It is a
// constants table; regenerating it pins the configuration package to
// the standard.
func Table1() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "IEEE 1901 contention windows CW_i and initial deferral counters d_i per backoff stage",
		Header: []string{"backoff stage i", "BPC", "CA0/CA1 CW_i", "CA0/CA1 d_i", "CA2/CA3 CW_i", "CA2/CA3 d_i"},
	}
	low := config.Default1901(config.CA1)
	high := config.Default1901(config.CA3)
	bpc := []string{"0", "1", "2", "≥ 3"}
	for i := 0; i < low.Stages(); i++ {
		t.AddRow(
			fmt.Sprint(i), bpc[i],
			fmt.Sprint(low.CW[i]), fmt.Sprint(low.DC[i]),
			fmt.Sprint(high.CW[i]), fmt.Sprint(high.DC[i]),
		)
	}
	return t
}

// Figure1 reproduces the paper's example trace: the time evolution of
// the backoff process of two saturated stations, one row per medium
// event, with each station's CWᵢ, DC and BC — exposing the short-term
// unfairness (the winner restarts at stage 0 and tends to win again).
func Figure1(seed uint64, transmissions int) (*Table, error) {
	if transmissions < 1 {
		return nil, fmt.Errorf("experiments: Figure1 needs ≥ 1 transmissions")
	}
	// A 2-station run produces a transmission roughly every 3 ms; give
	// the engine 5 ms of simulated time per requested transmission so
	// the observer (which stops recording at the target) always fills
	// its quota, without running a needlessly long simulation.
	in := sim.DefaultInputs(2)
	in.Seed = seed
	in.SimTime = float64(transmissions) * 5000
	e, err := sim.NewEngine(in)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "fig1",
		Title:  "Time evolution of the 1901 backoff process with 2 saturated stations",
		Note:   "Each row is one medium event. Observe the CW change when a station senses the medium busy with DC = 0, and the winner restarting at stage 0.",
		Header: []string{"event", "t (µs)", "A: CW", "A: DC", "A: BC", "B: CW", "B: DC", "B: BC", "outcome"},
	}

	count := 0
	event := 0
	e.SetObserver(obsFunc(func(ts float64, kind sim.SlotKind, txs []int, snaps []backoff.Snapshot) {
		if count >= transmissions {
			return
		}
		outcome := "idle"
		switch kind {
		case sim.Success:
			who := "A"
			if txs[0] == 1 {
				who = "B"
			}
			outcome = "transmission by " + who
			count++
		case sim.Collision:
			outcome = "collision"
			count++
		}
		event++
		t.AddRow(
			fmt.Sprint(event), fmt.Sprintf("%.2f", ts),
			fmt.Sprint(snaps[0].CW), fmt.Sprint(snaps[0].DC), fmt.Sprint(snaps[0].BC),
			fmt.Sprint(snaps[1].CW), fmt.Sprint(snaps[1].DC), fmt.Sprint(snaps[1].BC),
			outcome,
		)
	}))
	e.Run()
	if count < transmissions {
		return nil, fmt.Errorf("experiments: Figure1 recorded %d of %d transmissions", count, transmissions)
	}
	return t, nil
}

// obsFunc adapts a function to sim.Observer.
type obsFunc func(t float64, kind sim.SlotKind, txs []int, snaps []backoff.Snapshot)

// OnSlot calls the function.
func (f obsFunc) OnSlot(t float64, kind sim.SlotKind, txs []int, snaps []backoff.Snapshot) {
	f(t, kind, txs, snaps)
}

// simResult is a (collision probability, throughput) pair from one
// minimal-simulator run, shared by several experiments.
type simResult struct {
	collision  float64
	throughput float64
}

// simPoint runs the minimal simulator once with CA1 defaults.
func simPoint(n int, simTime float64, seed uint64) (simResult, error) {
	in := sim.DefaultInputs(n)
	in.SimTime = simTime
	in.Seed = seed
	e, err := sim.NewEngine(in)
	if err != nil {
		return simResult{}, err
	}
	r := e.Run()
	return simResult{collision: r.CollisionProbability, throughput: r.NormalizedThroughput}, nil
}

// Table2Config parameterizes the Table 2 reproduction.
type Table2Config struct {
	// Ns are the station counts (the paper: 1…7).
	Ns []int
	// DurationMicros is the per-test virtual duration (paper: 240 s).
	DurationMicros float64
	// Seed drives the testbed.
	Seed uint64
}

// DefaultTable2Config reproduces the paper's setup at full length.
func DefaultTable2Config() Table2Config {
	return Table2Config{Ns: []int{1, 2, 3, 4, 5, 6, 7}, DurationMicros: 240e6, Seed: 1}
}

// Table2 reproduces Table 2: the statistics ΣCᵢ and ΣAᵢ of one test per
// N, measured through the emulated testbed's MME counters exactly as
// Section 3.2 prescribes (reset, run, fetch, sum).
func Table2(cfg Table2Config) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Statistics ΣC_i, ΣA_i measured in one test per N (duration " + fmt.Sprintf("%.0f s", cfg.DurationMicros/1e6) + ")",
		Note:   "ΣA_i includes collided frames (the destination acknowledges them with an all-blocks-errored indication); the collision probability is ΣC_i/ΣA_i. Emulated testbed, bursts of 2 MPDUs.",
		Header: []string{"N", "ΣC_i", "ΣA_i", "ΣC_i/ΣA_i"},
	}
	type point struct{ sumC, sumA uint64 }
	points, err := sweep(cfg.Ns, func(_ int, n int) (point, error) {
		tb, err := testbed.New(testbed.Options{N: n, Seed: cfg.Seed + uint64(n)})
		if err != nil {
			return point{}, err
		}
		tb.ResetAll()
		tb.Run(cfg.DurationMicros)
		_, sumC, sumA := tb.Fetch()
		return point{sumC, sumA}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range cfg.Ns {
		ratio := 0.0
		if points[i].sumA > 0 {
			ratio = float64(points[i].sumC) / float64(points[i].sumA)
		}
		t.AddRow(fmt.Sprint(n), e(points[i].sumC), e(points[i].sumA), f(ratio))
	}
	return t, nil
}

// Figure2Config parameterizes the Figure 2 reproduction.
type Figure2Config struct {
	// Ns are the station counts (paper: 1…7).
	Ns []int
	// Tests is the number of repeated measurements (paper: 10).
	Tests int
	// TestDurationMicros is each measurement's virtual duration
	// (paper: 240 s).
	TestDurationMicros float64
	// SimTimeMicros is the simulator's duration (paper: 5·10⁸ µs).
	SimTimeMicros float64
	// Seed drives all random streams.
	Seed uint64
}

// DefaultFigure2Config reproduces the paper's setup at full length.
func DefaultFigure2Config() Figure2Config {
	return Figure2Config{
		Ns: []int{1, 2, 3, 4, 5, 6, 7}, Tests: 10,
		TestDurationMicros: 240e6, SimTimeMicros: 5e8, Seed: 1,
	}
}

// Figure2Point is one x-position of the figure.
type Figure2Point struct {
	N          int
	Simulation float64
	Analysis   float64
	Measured   stats.Summary
}

// Figure2 reproduces the paper's validation figure: collision
// probability versus the number of stations, from (a) the
// finite-state-machine simulator, (b) the analytical model, and (c)
// the emulated HomePlug AV measurements averaged over repeated tests.
func Figure2(cfg Figure2Config) ([]Figure2Point, *Table, error) {
	if cfg.Tests < 1 {
		return nil, nil, fmt.Errorf("experiments: Figure2 needs ≥ 1 tests")
	}
	t := &Table{
		ID:     "fig2",
		Title:  "Collision probability vs number of stations: simulation, analysis, measurements",
		Note:   "Measurements are the mean of repeated emulated tests (± 95% CI). The paper reports an excellent fit between the three curves for the CA1 defaults.",
		Header: []string{"N", "MAC simulation", "Analysis", "HomePlug AV measurements", "± 95% CI"},
	}
	points, err := sweep(cfg.Ns, func(_ int, n int) (Figure2Point, error) {
		in := sim.DefaultInputs(n)
		in.SimTime = cfg.SimTimeMicros
		in.Seed = cfg.Seed
		eng, err := sim.NewEngine(in)
		if err != nil {
			return Figure2Point{}, err
		}
		simP := eng.Run().CollisionProbability

		pred, err := model.Solve(n, config.DefaultCA1(), model.Options{})
		if err != nil {
			return Figure2Point{}, err
		}

		measured := make([]float64, 0, cfg.Tests)
		for k := 0; k < cfg.Tests; k++ {
			tb, err := testbed.New(testbed.Options{N: n, Seed: cfg.Seed + uint64(1000*n+k)})
			if err != nil {
				return Figure2Point{}, err
			}
			measured = append(measured, tb.CollisionProbability(cfg.TestDurationMicros))
		}
		sum := stats.Summarize(measured)
		return Figure2Point{N: n, Simulation: simP, Analysis: pred.Gamma, Measured: sum}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, p := range points {
		t.AddRow(fmt.Sprint(p.N), f(p.Simulation), f(p.Analysis), f(p.Measured.Mean), f(p.Measured.CI95))
	}
	return points, t, nil
}
