package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/config"
)

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not a number: %v", s, err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Note: "note", Header: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("3", "4")

	var md bytes.Buffer
	if err := tbl.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"### x — demo", "note", "| a | b |", "| 1 | 2 |"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q:\n%s", want, md.String())
		}
	}

	var csvOut bytes.Buffer
	if err := tbl.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	if got := csvOut.String(); got != "a,b\n1,2\n3,4\n" {
		t.Errorf("csv = %q", got)
	}
}

func TestAddRowPanicsOnArity(t *testing.T) {
	tbl := &Table{ID: "x", Header: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch accepted")
		}
	}()
	tbl.AddRow("only-one")
}

func TestTable1MatchesStandard(t *testing.T) {
	tbl := Table1()
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d stages", len(tbl.Rows))
	}
	// Spot-check stage 3: BPC ≥ 3, CA1 CW 64 d 15, CA3 CW 32 d 15.
	last := tbl.Rows[3]
	want := []string{"3", "≥ 3", "64", "15", "32", "15"}
	for i := range want {
		if last[i] != want[i] {
			t.Errorf("stage 3 col %d = %q, want %q", i, last[i], want[i])
		}
	}
}

func TestFigure1Trace(t *testing.T) {
	tbl, err := Figure1(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 10 {
		t.Fatalf("only %d rows", len(tbl.Rows))
	}
	transmissions := 0
	sawStageChange := false
	for _, row := range tbl.Rows {
		// CW columns must always hold Table 1 values.
		for _, col := range []int{2, 5} {
			switch row[col] {
			case "8", "16", "32", "64":
			default:
				t.Fatalf("CW cell %q not a CA1 window", row[col])
			}
			if row[col] != "8" {
				sawStageChange = true
			}
		}
		if strings.HasPrefix(row[8], "transmission") || row[8] == "collision" {
			transmissions++
		}
	}
	if transmissions < 10 {
		t.Errorf("%d transmissions recorded", transmissions)
	}
	if !sawStageChange {
		t.Error("no station ever left stage 0 — the Figure 1 dynamics are missing")
	}
	if _, err := Figure1(1, 0); err == nil {
		t.Error("0 transmissions accepted")
	}
}

func TestTable2ShortRun(t *testing.T) {
	cfg := Table2Config{Ns: []int{1, 3}, DurationMicros: 5e6, Seed: 1}
	tbl, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// N=1: ratio ~0; N=3: ratio in (0, 0.3).
	if r := parseCell(t, tbl.Rows[0][3]); r > 0.01 {
		t.Errorf("N=1 ratio %v", r)
	}
	if r := parseCell(t, tbl.Rows[1][3]); r <= 0.02 || r > 0.3 {
		t.Errorf("N=3 ratio %v", r)
	}
}

func TestFigure2ShortRun(t *testing.T) {
	cfg := Figure2Config{Ns: []int{1, 2, 4}, Tests: 3, TestDurationMicros: 5e6, SimTimeMicros: 1e7, Seed: 1}
	points, tbl, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 || len(tbl.Rows) != 3 {
		t.Fatalf("%d points, %d rows", len(points), len(tbl.Rows))
	}
	for i, p := range points {
		if p.N == 1 {
			if p.Simulation != 0 || p.Analysis != 0 {
				t.Errorf("N=1 nonzero: %+v", p)
			}
			continue
		}
		// The three curves must agree within the paper's visual band.
		if d := p.Simulation - p.Measured.Mean; d > 0.04 || d < -0.04 {
			t.Errorf("point %d: sim %v vs measured %v", i, p.Simulation, p.Measured.Mean)
		}
		if d := p.Analysis - p.Simulation; d > 0.06 || d < -0.06 {
			t.Errorf("point %d: model %v vs sim %v", i, p.Analysis, p.Simulation)
		}
	}
	// Monotone increasing in N across all three curves.
	for i := 1; i < len(points); i++ {
		if points[i].Simulation <= points[i-1].Simulation && points[i].N > 1 {
			t.Error("simulation curve not increasing")
		}
	}
	if _, _, err := Figure2(Figure2Config{Ns: []int{2}, Tests: 0}); err == nil {
		t.Error("0 tests accepted")
	}
}

func TestThroughputVsNShortRun(t *testing.T) {
	tbl, err := ThroughputVsN([]int{1, 5}, 5e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// N=1: 1901 must beat DCF in both sim and model.
	r := tbl.Rows[0]
	if parseCell(t, r[1]) <= parseCell(t, r[3]) {
		t.Error("N=1: 1901 sim throughput not above DCF")
	}
	if parseCell(t, r[2]) <= parseCell(t, r[4]) {
		t.Error("N=1: 1901 model throughput not above DCF")
	}
	// Model within 0.05 of sim for both protocols at both N.
	for _, row := range tbl.Rows {
		if d := parseCell(t, row[1]) - parseCell(t, row[2]); d > 0.05 || d < -0.05 {
			t.Errorf("1901 model vs sim gap %v", d)
		}
		if d := parseCell(t, row[3]) - parseCell(t, row[4]); d > 0.05 || d < -0.05 {
			t.Errorf("DCF model vs sim gap %v", d)
		}
	}
}

func TestBoostShortRun(t *testing.T) {
	res, tbl, err := Boost([]int{2, 5}, 3e6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 { // default + 2 candidates
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	if res.Best.SimScore <= 0 {
		t.Error("degenerate best score")
	}
	if len(res.Front) == 0 {
		t.Error("empty Pareto front")
	}
	if tbl.Rows[0][0] != "default CA1" {
		t.Errorf("first row %q, want defaults", tbl.Rows[0][0])
	}
}

func TestSnifferShortRun(t *testing.T) {
	a, tbl, err := Sniffer(2, 1e7, 100_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.DataBursts == 0 || a.MgmtBursts == 0 {
		t.Fatalf("analysis %+v missing traffic", a)
	}
	if a.DominantBurstSize() != 2 {
		t.Errorf("dominant burst size %d", a.DominantBurstSize())
	}
	found := false
	for _, row := range tbl.Rows {
		if row[0] == "MME overhead" && parseCell(t, row[1]) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no positive MME overhead row")
	}
}

func TestShortTermFairnessShortRun(t *testing.T) {
	tbl, err := ShortTermFairness(2, []int{10, 100, 1000}, 2e7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// Fairness must improve with window size for both protocols, and
	// 1901 must be below 802.11 at the smallest window (the [4] result).
	j1901 := []float64{}
	jdcf := []float64{}
	for _, row := range tbl.Rows {
		j1901 = append(j1901, parseCell(t, row[1]))
		jdcf = append(jdcf, parseCell(t, row[2]))
	}
	if !(j1901[0] < j1901[2]) {
		t.Errorf("1901 fairness not improving with window: %v", j1901)
	}
	if j1901[0] >= jdcf[0] {
		t.Errorf("window 10: 1901 Jain %v not below 802.11 %v", j1901[0], jdcf[0])
	}
	if j1901[2] < 0.95 {
		t.Errorf("window 1000: 1901 Jain %v, want near 1 (long-term fair)", j1901[2])
	}
	if _, err := ShortTermFairness(1, []int{10}, 1e6, 1); err == nil {
		t.Error("N=1 accepted")
	}
}

func TestAblationDeferralShortRun(t *testing.T) {
	tbl, err := AblationDeferral([]int{7}, 1e7, 1)
	if err != nil {
		t.Fatal(err)
	}
	row := tbl.Rows[0]
	if parseCell(t, row[1]) >= parseCell(t, row[2]) {
		t.Errorf("with-DC collision %v not below no-DC %v", row[1], row[2])
	}
}

func TestAblationBurstSizeShortRun(t *testing.T) {
	tbl, err := AblationBurstSize(3, 1e7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// Collision ratio stable across k (within noise), payload growing.
	p1 := parseCell(t, tbl.Rows[0][1])
	p4 := parseCell(t, tbl.Rows[3][1])
	if d := p1 - p4; d > 0.04 || d < -0.04 {
		t.Errorf("collision ratio moved with burst size: %v vs %v", p1, p4)
	}
	if parseCell(t, tbl.Rows[3][2]) <= parseCell(t, tbl.Rows[0][2]) {
		t.Error("payload fraction not growing with burst size")
	}
}

func TestSimulatorAgreementShortRun(t *testing.T) {
	tbl, err := SimulatorAgreement([]int{2, 5}, 1e7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if d := parseCell(t, row[3]); d > 0.03 {
			t.Errorf("N=%s: implementations %v apart", row[0], d)
		}
	}
}

func TestAccessDelayShortRun(t *testing.T) {
	tbl, err := AccessDelay([]int{1, 5}, 1e7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// Delay grows with N in both MAC and model.
	if parseCell(t, tbl.Rows[1][1]) <= parseCell(t, tbl.Rows[0][1]) {
		t.Error("MAC delay not growing with N")
	}
	if parseCell(t, tbl.Rows[1][4]) <= parseCell(t, tbl.Rows[0][4]) {
		t.Error("model delay not growing with N")
	}
	// MAC and model within 35% of each other (the model has no PRS,
	// bursting or CIFS asymmetries).
	for _, row := range tbl.Rows {
		macD, modelD := parseCell(t, row[1]), parseCell(t, row[4])
		if r := macD / modelD; r < 0.65 || r > 1.35 {
			t.Errorf("N=%s: MAC delay %v vs model %v (ratio %v)", row[0], macD, modelD, r)
		}
	}
}

func TestDelayVsLoadShortRun(t *testing.T) {
	tbl, err := DelayVsLoad(3, []float64{0.05, 0.30}, 1e7, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Higher load → higher delay; light load leaves quiet time.
	if parseCell(t, tbl.Rows[1][2]) <= parseCell(t, tbl.Rows[0][2]) {
		t.Error("delay not growing with load")
	}
	if parseCell(t, tbl.Rows[0][4]) <= 0 {
		t.Error("no quiet time at 5% load")
	}
	if _, err := DelayVsLoad(3, []float64{1.5}, 1e6, 1); err == nil {
		t.Error("load > 1 accepted")
	}
	if _, err := DelayVsLoad(0, []float64{0.5}, 1e6, 1); err == nil {
		t.Error("N=0 accepted")
	}
}

func TestModelAccuracyShortRun(t *testing.T) {
	tbl, err := ModelAccuracy([]int{2, 4, 7}, 1e7, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Error positive (model overestimates) and shrinking.
	first := parseCell(t, tbl.Rows[0][3])
	last := parseCell(t, tbl.Rows[len(tbl.Rows)-1][3])
	if first <= 0 {
		t.Errorf("model error at N=2 is %v, expected positive", first)
	}
	if last >= first {
		t.Errorf("model error grew: %v → %v", first, last)
	}
}

func TestCoexistenceCaptureByAggressiveConfig(t *testing.T) {
	// An aggressive config (small windows, deferral disabled) must
	// capture the channel from legacy CA1 stations: ratio > 1 in both
	// simulator and model.
	inf := 1 << 20
	aggressive := config.Params{Name: "aggr", CW: []int{4, 8, 16, 32}, DC: []int{inf, inf, inf, inf}}
	tbl, err := Coexistence(aggressive, 3, 1e7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	if parseCell(t, tbl.Rows[1][2]) <= parseCell(t, tbl.Rows[0][2]) {
		t.Error("sim: aggressive not above legacy")
	}
	if parseCell(t, tbl.Rows[1][3]) <= parseCell(t, tbl.Rows[0][3]) {
		t.Error("model: aggressive not above legacy")
	}
	if parseCell(t, tbl.Rows[2][2]) <= 1 {
		t.Error("capture ratio ≤ 1")
	}
	if _, err := Coexistence(aggressive, 0, 1e6, 1); err == nil {
		t.Error("0 per group accepted")
	}
	if _, err := Coexistence(config.Params{}, 2, 1e6, 1); err == nil {
		t.Error("invalid boosted params accepted")
	}
}

func TestCoexistencePoliteBoostLosesToLegacy(t *testing.T) {
	// The model-guided search's best homogeneous config is highly
	// deferential (dc = [0 0 0 0]): it wins when everyone runs it, but
	// *loses* per-station share against legacy CA1 stations — the
	// deployment caveat this experiment exists to expose.
	polite := config.Params{Name: "cw4-g4-dc0", CW: []int{4, 16, 64, 256}, DC: []int{0, 0, 0, 0}}
	tbl, err := Coexistence(polite, 3, 1e7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := parseCell(t, tbl.Rows[2][2]); ratio >= 1 {
		t.Errorf("polite boost capture ratio %v; expected < 1 (legacy wins)", ratio)
	}
}
