package experiments

import (
	"fmt"

	"repro/internal/backoff"
	"repro/internal/boost"
	"repro/internal/config"
	"repro/internal/fairness"
	"repro/internal/hpav"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// ThroughputVsN (experiment E1, the CoNEXT "analyzing" axis) compares
// normalized throughput of 1901 against the 802.11 DCF baseline across
// station counts, from both the simulators and the analytical models.
func ThroughputVsN(ns []int, simTime float64, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "Normalized throughput vs N: IEEE 1901 (CA1) vs 802.11 DCF, simulation and analysis",
		Note:   "1901's small CWmin wins at low contention; the deferral counter keeps it competitive as N grows. Crossovers are the design tradeoff of Section 2.",
		Header: []string{"N", "1901 sim", "1901 model", "802.11 sim", "802.11 model"},
	}
	type point struct{ sim1901, mod1901, simDCF, modDCF float64 }
	points, err := sweep(ns, func(_ int, n int) (point, error) {
		in := sim.DefaultInputs(n)
		in.SimTime = simTime
		in.Seed = seed
		e, err := sim.NewEngine(in)
		if err != nil {
			return point{}, err
		}
		r1901 := e.Run()

		_, met1901, err := model.Predict(n, config.DefaultCA1())
		if err != nil {
			return point{}, err
		}

		din := sim.DefaultDCFInputs(n)
		din.SimTime = simTime
		din.Seed = seed
		rdcf, err := sim.RunDCF(din)
		if err != nil {
			return point{}, err
		}

		pdcf, err := model.SolveDCF(n, config.Default80211(), model.Options{})
		if err != nil {
			return point{}, err
		}
		mdcf := model.MetricsFor(pdcf, n, model.DefaultTiming())
		return point{
			sim1901: r1901.NormalizedThroughput, mod1901: met1901.NormalizedThroughput,
			simDCF: rdcf.NormalizedThroughput, modDCF: mdcf.NormalizedThroughput,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		p := points[i]
		t.AddRow(fmt.Sprint(n), f(p.sim1901), f(p.mod1901), f(p.simDCF), f(p.modDCF))
	}
	return t, nil
}

// BoostResult carries the boosting experiment's structured output next
// to its rendered table.
type BoostResult struct {
	Default boost.Validation
	Best    boost.Validation
	Front   []boost.Validation
}

// Boost (experiment E2, the CoNEXT "boosting" axis) runs the
// model-guided configuration search, validates the leaders in the
// simulator and reports them against the Table 1 defaults.
func Boost(ns []int, simTime float64, topK int, seed uint64) (*BoostResult, *Table, error) {
	cands, err := boost.Search(boost.DefaultSpace(), ns)
	if err != nil {
		return nil, nil, err
	}
	vals, err := boost.ValidateTop(cands, topK, ns, simTime, seed)
	if err != nil {
		return nil, nil, err
	}
	defCand, err := boost.ScoreModel(config.DefaultCA1(), ns)
	if err != nil {
		return nil, nil, err
	}
	defVal, err := boost.Validate(defCand, ns, simTime, seed)
	if err != nil {
		return nil, nil, err
	}

	nRef := ns[len(ns)-1]
	t := &Table{
		ID:    "E2",
		Title: fmt.Sprintf("Configuration search: top %d candidates vs Table 1 defaults (min-throughput over N=%v)", topK, ns),
		Note:  "Score = worst-case normalized throughput across the station counts; Jain = mean sliding-window (10 tx) fairness at the largest N. Model-guided search, simulator-validated.",
		Header: []string{"config", "cw", "dc", "model score", "sim score",
			fmt.Sprintf("sim thr (N=%d)", nRef), fmt.Sprintf("Jain-10 (N=%d)", nRef)},
	}
	addRow := func(v boost.Validation, name string) {
		p := v.Candidate.Params
		t.AddRow(name,
			fmt.Sprint(p.CW), fmt.Sprint(p.DC),
			f(v.Candidate.Score), f(v.SimScore),
			f(v.SimThroughput[nRef]), f(v.ShortTermJain[nRef]))
	}
	addRow(defVal, "default CA1")
	for _, v := range vals {
		addRow(v, v.Candidate.Params.Name)
	}
	res := &BoostResult{Default: defVal, Best: vals[0], Front: boost.ParetoFront(append(vals, defVal), nRef)}
	return res, t, nil
}

// Sniffer (experiment E3) reproduces the Section 3.1/3.3 sniffer
// methodology: burst-size frequencies and the MME overhead, measured by
// capturing SoF delimiters at the destination.
func Sniffer(n int, durationMicros, mgmtMeanMicros float64, seed uint64) (*testbed.CaptureAnalysis, *Table, error) {
	tb, err := testbed.New(testbed.Options{N: n, Seed: seed, MgmtMeanMicros: mgmtMeanMicros})
	if err != nil {
		return nil, nil, err
	}
	tb.EnableSniffer()
	tb.Run(durationMicros)
	a, err := testbed.AnalyzeCaptures(tb.Captures(), config.CA1)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID:     "E3",
		Title:  fmt.Sprintf("Sniffer capture analysis: N=%d, %.0f s, management traffic mean %.0f ms", n, durationMicros/1e6, mgmtMeanMicros/1e3),
		Note:   "Bursts are delimited by MPDUCnt = 0; MMEs are distinguished from data by the LinkID priority (data at CA1, MMEs at CA2/CA3). Overhead = MME bursts / data bursts.",
		Header: []string{"metric", "value"},
	}
	t.AddRow("captured MPDUs", fmt.Sprint(a.MPDUs))
	t.AddRow("data bursts", fmt.Sprint(a.DataBursts))
	t.AddRow("MME bursts", fmt.Sprint(a.MgmtBursts))
	for size := 1; size <= hpav.MaxBurstMPDUs; size++ {
		t.AddRow(fmt.Sprintf("bursts of %d MPDUs", size), fmt.Sprint(a.BurstSizes[size]))
	}
	t.AddRow("dominant burst size", fmt.Sprint(a.DominantBurstSize()))
	t.AddRow("MME overhead", f(a.MMEOverhead()))
	return a, t, nil
}

// ShortTermFairness (experiment E4, the prior-work [4] replication)
// compares the sliding-window Jain index of 1901 and 802.11 across
// window sizes: 1901 is short-term unfair (winners keep winning from
// stage 0) but converges to fairness at large windows.
func ShortTermFairness(n int, windows []int, simTime float64, seed uint64) (*Table, error) {
	if n < 2 {
		return nil, fmt.Errorf("experiments: fairness needs ≥ 2 stations")
	}
	// The two protocol traces are independent simulations: fan them out.
	traces, err := sweep([]string{"1901", "dcf"}, func(_ int, proto string) ([]int, error) {
		rec := &winnerTrace{}
		if proto == "1901" {
			in := sim.DefaultInputs(n)
			in.SimTime = simTime
			in.Seed = seed
			e, err := sim.NewEngine(in)
			if err != nil {
				return nil, err
			}
			e.SetObserver(rec)
			e.Run()
			return rec.winners, nil
		}
		din := sim.DefaultDCFInputs(n)
		din.SimTime = simTime
		din.Seed = seed
		din.Observer = rec
		if _, err := sim.RunDCF(din); err != nil {
			return nil, err
		}
		return rec.winners, nil
	})
	if err != nil {
		return nil, err
	}
	rec1901 := &winnerTrace{winners: traces[0]}
	recDCF := &winnerTrace{winners: traces[1]}

	universe := make([]int, n)
	for i := range universe {
		universe[i] = i
	}

	t := &Table{
		ID:     "E4",
		Title:  fmt.Sprintf("Short-term fairness (mean sliding-window Jain index), N=%d", n),
		Note:   "1901's winner restarts at CW₀ = 8 while losers climb stages (Figure 1), depressing small-window fairness below 802.11's; both converge to 1 at large windows.",
		Header: []string{"window (tx)", "1901 Jain", "802.11 Jain"},
	}
	for _, w := range windows {
		a, err := fairness.ShortTermJain(rec1901.winners, universe, w)
		if err != nil {
			return nil, err
		}
		b, err := fairness.ShortTermJain(recDCF.winners, universe, w)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(w), f(a.MeanJain), f(b.MeanJain))
	}
	return t, nil
}

// winnerTrace records success winners from either simulator.
type winnerTrace struct{ winners []int }

// OnSlot implements sim.Observer.
func (o *winnerTrace) OnSlot(_ float64, kind sim.SlotKind, txs []int, _ []backoff.Snapshot) {
	if kind == sim.Success {
		o.winners = append(o.winners, txs[0])
	}
}

// AblationDeferral isolates the deferral counter's contribution:
// identical CW schedules with the standard dᵢ versus deferral disabled,
// across N.
func AblationDeferral(ns []int, simTime float64, seed uint64) (*Table, error) {
	noDC := config.Params{Name: "no-deferral", CW: []int{8, 16, 32, 64}, DC: []int{1 << 20, 1 << 20, 1 << 20, 1 << 20}}
	t := &Table{
		ID:     "ablation-deferral",
		Title:  "Deferral counter ablation: collision probability and throughput with and without DC",
		Note:   "Same CW schedule; dᵢ = ∞ disables the 1901-specific jumps. The deferral counter is what absorbs CWmin = 8 under contention.",
		Header: []string{"N", "p (with DC)", "p (no DC)", "thr (with DC)", "thr (no DC)"},
	}
	type point struct{ pw, tw, pn, tn float64 }
	points, err := sweep(ns, func(_ int, n int) (point, error) {
		run := func(p config.Params) (float64, float64, error) {
			in := sim.DefaultInputs(n)
			in.SimTime = simTime
			in.Seed = seed
			in.Params = p
			e, err := sim.NewEngine(in)
			if err != nil {
				return 0, 0, err
			}
			r := e.Run()
			return r.CollisionProbability, r.NormalizedThroughput, nil
		}
		pw, tw, err := run(config.DefaultCA1())
		if err != nil {
			return point{}, err
		}
		pn, tn, err := run(noDC)
		if err != nil {
			return point{}, err
		}
		return point{pw, tw, pn, tn}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		p := points[i]
		t.AddRow(fmt.Sprint(n), f(p.pw), f(p.pn), f(p.tw), f(p.tn))
	}
	return t, nil
}

// AblationBurstSize sweeps the MPDU burst size in the emulated testbed:
// the collision ratio is burst-size invariant while throughput grows,
// the property that lets MPDU counters estimate burst-level collision
// probability (Section 3.1).
func AblationBurstSize(n int, durationMicros float64, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "ablation-burst",
		Title:  fmt.Sprintf("Burst-size ablation at N=%d: MPDU counters vs burst size", n),
		Note:   "ΣC/ΣA is invariant to the burst size k (both counters scale by k); payload per unit time grows with k.",
		Header: []string{"burst MPDUs", "ΣC/ΣA", "payload fraction"},
	}
	bursts := make([]int, hpav.MaxBurstMPDUs)
	for i := range bursts {
		bursts[i] = i + 1
	}
	type point struct{ p, payload float64 }
	points, err := sweep(bursts, func(_ int, k int) (point, error) {
		tb, err := testbed.New(testbed.Options{N: n, BurstMPDUs: k, Seed: seed})
		if err != nil {
			return point{}, err
		}
		p := tb.CollisionProbability(durationMicros)
		st := tb.Network.Stats()
		return point{p: p, payload: st.PayloadMicros / st.Elapsed}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, k := range bursts {
		t.AddRow(fmt.Sprint(k), f(points[i].p), f(points[i].payload))
	}
	return t, nil
}

// SimulatorAgreement cross-checks the two independent implementations —
// the slot-synchronous port of the paper's simulator and the
// event-driven MAC — on identical single-priority saturated scenarios.
func SimulatorAgreement(ns []int, simTime float64, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "ablation-agreement",
		Title:  "Minimal simulator vs event-driven MAC: collision probability on identical scenarios",
		Note:   "Burst size 1, CA1 only, saturated. The implementations share the backoff engine but nothing else.",
		Header: []string{"N", "minimal sim", "event-driven MAC", "|Δ|"},
	}
	type point struct{ simP, macP float64 }
	points, err := sweep(ns, func(_ int, n int) (point, error) {
		in := sim.DefaultInputs(n)
		in.SimTime = simTime
		in.Seed = seed
		e, err := sim.NewEngine(in)
		if err != nil {
			return point{}, err
		}
		simP := e.Run().CollisionProbability

		tb, err := testbed.New(testbed.Options{N: n, BurstMPDUs: 1, Seed: seed})
		if err != nil {
			return point{}, err
		}
		return point{simP: simP, macP: tb.CollisionProbability(simTime)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		d := points[i].simP - points[i].macP
		if d < 0 {
			d = -d
		}
		t.AddRow(fmt.Sprint(n), f(points[i].simP), f(points[i].macP), f(d))
	}
	return t, nil
}
