package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/model"
	"repro/internal/sim"
)

// Coexistence (experiment E8) answers the deployment question the
// boosting results raise: what happens when stations running a tuned
// configuration share the power line with stations on the Table 1
// defaults? Half the stations run each configuration; per-station
// throughput shares come from both the heterogeneous fixed point and
// the heterogeneous simulator. An aggressive tuned config that starves
// legacy stations is not deployable, however good its homogeneous
// score — this experiment quantifies the capture effect.
func Coexistence(boosted config.Params, nPerGroup int, simTime float64, seed uint64) (*Table, error) {
	if nPerGroup < 1 {
		return nil, fmt.Errorf("experiments: coexistence needs ≥ 1 stations per group")
	}
	if err := boosted.Validate(); err != nil {
		return nil, err
	}
	def := config.DefaultCA1()
	groups := []model.Group{
		{N: nPerGroup, Params: def},
		{N: nPerGroup, Params: boosted},
	}

	// Model side.
	pred, err := model.SolveHeterogeneous(groups, model.Options{})
	if err != nil {
		return nil, err
	}
	met := model.HeteroMetricsFor(pred, groups, model.DefaultTiming())

	// Simulator side: stations 0..n-1 default, n..2n-1 boosted.
	n := 2 * nPerGroup
	in := sim.DefaultInputs(n)
	in.SimTime = simTime
	in.Seed = seed
	in.PerStation = make([]config.Params, n)
	for i := 0; i < nPerGroup; i++ {
		in.PerStation[i] = def
		in.PerStation[nPerGroup+i] = boosted
	}
	e, err := sim.NewEngine(in)
	if err != nil {
		return nil, err
	}
	r := e.Run()

	perStationSim := func(group int) float64 {
		var succ int64
		for i := 0; i < nPerGroup; i++ {
			succ += r.PerStation[group*nPerGroup+i].Successes
		}
		return float64(succ) * in.FrameLength / r.Elapsed / float64(nPerGroup)
	}

	t := &Table{
		ID:    "E8",
		Title: fmt.Sprintf("Coexistence: %d default CA1 stations vs %d boosted (%s)", nPerGroup, nPerGroup, boosted.Name),
		Note:  "Per-station normalized throughput by group, heterogeneous model vs heterogeneous simulator. The capture ratio quantifies how strongly the tuned configuration starves legacy stations.",
		Header: []string{"group", "config", "per-station thr (sim)", "per-station thr (model)",
			"γ (model)"},
	}
	t.AddRow("legacy", fmt.Sprint(def.CW), f(perStationSim(0)), f(met.PerStationThroughput[0]), f(pred.Gamma[0]))
	t.AddRow("boosted", fmt.Sprint(boosted.CW), f(perStationSim(1)), f(met.PerStationThroughput[1]), f(pred.Gamma[1]))
	capture := perStationSim(1) / perStationSim(0)
	t.AddRow("capture ratio", "boosted / legacy", f(capture), f(met.PerStationThroughput[1]/met.PerStationThroughput[0]), "—")
	return t, nil
}
