package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// withWorkers runs fn under the given fan-out width and restores the
// serial default afterwards (the package-level setting is shared).
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(1)
	fn()
}

func renderTable(t *testing.T, tbl *Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestParallelSweepsBitIdentical is the determinism contract of the
// worker pool: every experiment must render exactly the same table
// whether its sweep points run serially or fanned across goroutines.
func TestParallelSweepsBitIdentical(t *testing.T) {
	runs := []struct {
		name string
		gen  func() (*Table, error)
	}{
		{"table2", func() (*Table, error) {
			return Table2(Table2Config{Ns: []int{1, 2, 3}, DurationMicros: 1e6, Seed: 1})
		}},
		{"fig2", func() (*Table, error) {
			_, tbl, err := Figure2(Figure2Config{
				Ns: []int{1, 2, 3}, Tests: 2,
				TestDurationMicros: 1e6, SimTimeMicros: 2e6, Seed: 1,
			})
			return tbl, err
		}},
		{"throughput", func() (*Table, error) { return ThroughputVsN([]int{1, 2, 4}, 2e6, 1) }},
		{"fairness", func() (*Table, error) { return ShortTermFairness(2, []int{10, 100}, 4e6, 1) }},
		{"ablation-deferral", func() (*Table, error) { return AblationDeferral([]int{2, 5}, 2e6, 1) }},
		{"ablation-burst", func() (*Table, error) { return AblationBurstSize(3, 1e6, 1) }},
		{"ablation-agreement", func() (*Table, error) { return SimulatorAgreement([]int{1, 3}, 2e6, 1) }},
		{"model-accuracy", func() (*Table, error) { return ModelAccuracy([]int{2, 4}, 2e6, 1) }},
		{"delay", func() (*Table, error) { return AccessDelay([]int{1, 3}, 2e6, 1) }},
		{"delay-load", func() (*Table, error) { return DelayVsLoad(2, []float64{0.2, 0.8}, 2e6, 1) }},
	}
	for _, run := range runs {
		t.Run(run.name, func(t *testing.T) {
			serialTbl, err := run.gen()
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			var parallelTbl *Table
			withWorkers(t, 4, func() {
				parallelTbl, err = run.gen()
			})
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			serial, parallel := renderTable(t, serialTbl), renderTable(t, parallelTbl)
			if serial != parallel {
				t.Errorf("parallel output differs from serial:\nserial:\n%s\nparallel:\n%s", serial, parallel)
			}
		})
	}
}

// TestParallelBoostBitIdentical covers the boost search's fan-out: the
// full experiment (grid scoring, simulator validation, Pareto front)
// must be invariant to the worker count.
func TestParallelBoostBitIdentical(t *testing.T) {
	serialRes, serialTbl, err := Boost([]int{2, 4}, 1e6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var parallelRes *BoostResult
	var parallelTbl *Table
	withWorkers(t, 4, func() {
		parallelRes, parallelTbl, err = Boost([]int{2, 4}, 1e6, 2, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderTable(t, parallelTbl), renderTable(t, serialTbl); got != want {
		t.Errorf("boost table differs:\nserial:\n%s\nparallel:\n%s", want, got)
	}
	if !reflect.DeepEqual(serialRes.Best, parallelRes.Best) {
		t.Errorf("best candidate differs: %+v vs %+v", serialRes.Best, parallelRes.Best)
	}
}

func TestSetWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	defer SetWorkers(1)
	SetWorkers(0)
	if Workers() < 1 {
		t.Errorf("Workers() = %d after SetWorkers(0)", Workers())
	}
	SetWorkers(3)
	if Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", Workers())
	}
}
