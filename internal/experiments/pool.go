package experiments

import "repro/internal/par"

// SetWorkers sets how many goroutines the experiment sweeps — and the
// boost package's model search and simulator validation — fan their
// independent points across. n ≤ 0 selects GOMAXPROCS; 1 (the default)
// runs serially. Each sweep point owns its random streams (seeds are
// derived per point, never shared) and results are collected in input
// order, so every table and figure is bit-identical whatever the worker
// count — parallelism only changes wall-clock time.
func SetWorkers(n int) { par.SetDefaultWorkers(n) }

// Workers returns the current fan-out width.
func Workers() int { return par.DefaultWorkers() }

// sweep maps fn over the experiment's independent points on Workers()
// goroutines, returning the per-point results in input order.
func sweep[T, R any](items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return par.MapDefault(items, fn)
}
