// Package experiments regenerates every table and figure of the paper,
// plus the extension experiments of DESIGN.md. Each experiment is a
// function producing a Table — the same rows/series the paper reports —
// rendered as markdown or CSV by the harness (cmd/plcbench) and
// asserted on by the benchmark suite.
package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier ("table2", "fig2", "E1", …).
	ID string
	// Title is the paper's caption-level description.
	Title string
	// Note carries reproduction remarks (substitutions, expected bands).
	Note string
	// Header names the columns.
	Header []string
	// Rows hold the cells, already formatted.
	Rows [][]string
}

// AddRow appends a row of formatted cells; it panics on a column-count
// mismatch, which is always a harness bug.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("experiments: table %s: row of %d cells, want %d", t.ID, len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// WriteMarkdown renders the table as GitHub-flavored markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n\n", t.Note); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteJSON renders the table as indented JSON — the machine-readable
// form behind `plcbench -format json`. The field names are part of the
// output contract (golden-file pinned); renaming them is a wire-format
// change.
func (t *Table) WriteJSON(w io.Writer) error {
	out := struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Note   string     `json:"note,omitempty"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{t.ID, t.Title, t.Note, t.Header, t.Rows}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteCSV renders the table as CSV (header first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.4f", v) }

// e formats a count in the paper's scientific style (Table 2 prints
// 1.6222·10⁵ etc.).
func e(v uint64) string { return fmt.Sprintf("%.4e", float64(v)) }
