package testbed

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/hpav"
)

// CaptureAnalysis summarizes a sniffer trace the way Section 3.3 does:
// bursts are identified by the MPDUCnt countdown (an MPDU with
// MPDUCnt = 0 closes its burst); management traffic is distinguished
// from data by the LinkID priority; per-burst source sequences feed the
// fairness study.
type CaptureAnalysis struct {
	// MPDUs is the total number of captured delimiters.
	MPDUs int
	// DataBursts and MgmtBursts count completed bursts by kind: data at
	// the data priority, management at CA2/CA3.
	DataBursts int
	MgmtBursts int
	// BurstSizes histograms the completed bursts by MPDU count
	// (index 1–4), reproducing the paper's burst-size measurement.
	BurstSizes [hpav.MaxBurstMPDUs + 1]int
	// SourceSequence is the per-burst source TEI sequence of the data
	// traffic, in capture order — the fairness trace of [4].
	SourceSequence []hpav.TEI
	// SourceBursts counts data bursts per source.
	SourceBursts map[hpav.TEI]int
}

// MMEOverhead returns the management overhead as the paper computes it:
// "dividing the number of bursts corresponding to MMEs by the number of
// bursts corresponding to data frames" — bursts, not MPDUs, because
// bursts are what consume CSMA/CA time.
func (a *CaptureAnalysis) MMEOverhead() float64 {
	if a.DataBursts == 0 {
		return 0
	}
	return float64(a.MgmtBursts) / float64(a.DataBursts)
}

// AnalyzeCaptures reduces a sniffer trace. dataPriority identifies the
// data class (CA1 in every experiment of the paper); everything at
// CA2/CA3 counts as management.
func AnalyzeCaptures(caps []hpav.SnifferInd, dataPriority config.Priority) (*CaptureAnalysis, error) {
	a := &CaptureAnalysis{SourceBursts: make(map[hpav.TEI]int)}

	type openBurst struct {
		size int
		sof  hpav.SoF
	}
	open := make(map[hpav.TEI]*openBurst)

	for i := range caps {
		sof := caps[i].SoF
		a.MPDUs++
		b := open[sof.STEI]
		if b == nil {
			b = &openBurst{}
			open[sof.STEI] = b
		}
		b.size++
		b.sof = sof
		if !sof.LastInBurst() {
			continue
		}
		// Burst completed.
		if b.size > hpav.MaxBurstMPDUs {
			return nil, fmt.Errorf("testbed: source %d burst of %d MPDUs exceeds the standard's limit", sof.STEI, b.size)
		}
		a.BurstSizes[b.size]++
		switch {
		case sof.LinkID == dataPriority:
			a.DataBursts++
			a.SourceSequence = append(a.SourceSequence, sof.STEI)
			a.SourceBursts[sof.STEI]++
		case sof.LinkID == config.CA2 || sof.LinkID == config.CA3:
			a.MgmtBursts++
		}
		delete(open, sof.STEI)
	}
	return a, nil
}

// DominantBurstSize returns the most frequent completed burst size —
// the paper's observation "the stations in the isolated experiments use
// bursts with 2 MPDUs".
func (a *CaptureAnalysis) DominantBurstSize() int {
	best, bestCount := 0, -1
	for size := 1; size <= hpav.MaxBurstMPDUs; size++ {
		if a.BurstSizes[size] > bestCount {
			best, bestCount = size, a.BurstSizes[size]
		}
	}
	return best
}
