package testbed

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/hpav"
	"repro/internal/phy"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{N: 3}.withDefaults()
	if o.BurstMPDUs != 2 {
		t.Errorf("default burst %d, want 2 (the paper's measured size)", o.BurstMPDUs)
	}
	if o.FrameMicros != CalibratedFrameMicros {
		t.Errorf("default frame %v, want 2050", o.FrameMicros)
	}
	if o.Priority != config.CA1 {
		t.Errorf("default priority %v, want CA1", o.Priority)
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{N: 0},
		{N: 1, BurstMPDUs: 5},
		{N: 1, PBsPerMPDU: -1},
		{N: 1, FrameMicros: -3},
		{N: 1, Params: &config.Params{CW: []int{0}, DC: []int{0}}},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestResetRunFetchCycle(t *testing.T) {
	tb, err := New(Options{N: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := tb.CollisionProbability(1e7)
	if p <= 0 || p > 0.3 {
		t.Errorf("N=3 collision probability %v outside plausible band", p)
	}
	per, sumC, sumA := tb.Fetch()
	if len(per) != 3 {
		t.Fatalf("%d per-station rows", len(per))
	}
	var c, a uint64
	for _, x := range per {
		c += x.Collided
		a += x.Acked
	}
	if c != sumC || a != sumA {
		t.Error("sums disagree with per-station rows")
	}
}

// TestFigure2MeasurementMatchesSimulation is the testbed half of
// Figure 2: the emulated HomePlug AV measurement (MME counters, bursts
// of 2, ΣC/ΣA estimator) must land on the minimal simulator's collision
// probability for every N. The paper reports exactly this agreement
// between its measurements and its simulator.
func TestFigure2MeasurementMatchesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-N comparison")
	}
	for _, n := range []int{1, 2, 4, 7} {
		tb, err := New(Options{N: n, Seed: uint64(n)})
		if err != nil {
			t.Fatal(err)
		}
		measured := tb.CollisionProbability(3e7)

		in := sim.DefaultInputs(n)
		in.SimTime = 3e7
		e, err := sim.NewEngine(in)
		if err != nil {
			t.Fatal(err)
		}
		simulated := e.Run().CollisionProbability

		if math.Abs(measured-simulated) > 0.03 {
			t.Errorf("N=%d: measured %.4f vs simulated %.4f (> 0.03 apart)", n, measured, simulated)
		}
	}
}

// TestTable2Shape reproduces the qualitative content of Table 2: ΣA is
// large and grows with N; ΣC grows steeply with N; at N=1 collisions
// are (near) zero.
func TestTable2Shape(t *testing.T) {
	var prevC, prevA uint64
	for _, n := range []int{1, 3, 5} {
		tb, err := New(Options{N: n, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		tb.ResetAll()
		tb.Run(1e7)
		_, c, a := tb.Fetch()
		if n == 1 && c != 0 {
			t.Errorf("N=1: %d collided MPDUs", c)
		}
		if n > 1 {
			if c <= prevC {
				t.Errorf("N=%d: ΣC=%d did not grow (prev %d)", n, c, prevC)
			}
			if a <= prevA {
				t.Errorf("N=%d: ΣA=%d did not grow (prev %d) — collided frames must be acked", n, a, prevA)
			}
		}
		prevC, prevA = c, a
	}
}

func TestSnifferBurstAnalysis(t *testing.T) {
	tb, err := New(Options{N: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tb.EnableSniffer()
	tb.Run(5e6)
	caps := tb.Captures()
	if len(caps) == 0 {
		t.Fatal("no captures")
	}
	a, err := AnalyzeCaptures(caps, config.CA1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's observation: bursts of 2 MPDUs dominate.
	if got := a.DominantBurstSize(); got != 2 {
		t.Errorf("dominant burst size %d, want 2", got)
	}
	if a.MgmtBursts != 0 {
		t.Errorf("%d management bursts in an isolated run", a.MgmtBursts)
	}
	if a.MMEOverhead() != 0 {
		t.Errorf("MME overhead %v in an isolated run", a.MMEOverhead())
	}
	if len(a.SourceSequence) != a.DataBursts {
		t.Errorf("source sequence %d entries, %d data bursts", len(a.SourceSequence), a.DataBursts)
	}
	// Both stations must appear in the trace.
	if len(a.SourceBursts) != 2 {
		t.Errorf("sources seen: %v, want 2", a.SourceBursts)
	}
}

// TestMMEOverheadMeasured reproduces the Section 3.3 methodology end to
// end: with background management traffic enabled, the sniffer-based
// overhead estimate must be positive and match the configured rates to
// first order.
func TestMMEOverheadMeasured(t *testing.T) {
	tb, err := New(Options{
		N:              2,
		Seed:           4,
		MgmtMeanMicros: 100_000, // one MME per station per 100 ms
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.EnableSniffer()
	tb.Run(3e7)
	caps := tb.Captures()
	a, err := AnalyzeCaptures(caps, config.CA1)
	if err != nil {
		t.Fatal(err)
	}
	if a.MgmtBursts == 0 {
		t.Fatal("no management bursts captured")
	}
	ov := a.MMEOverhead()
	if ov <= 0 || ov > 0.2 {
		t.Errorf("MME overhead %v implausible for sparse management traffic", ov)
	}
	// Management bursts are single MPDUs: burst-size histogram must
	// have entries at size 1 (MMEs) and size 2 (data).
	if a.BurstSizes[1] == 0 || a.BurstSizes[2] == 0 {
		t.Errorf("burst size histogram %v missing expected sizes", a.BurstSizes)
	}
}

func TestCustomParamsApplied(t *testing.T) {
	// A testbed with enormous CW must collide less than the default.
	wide := config.Params{Name: "wide", CW: []int{256, 256, 256, 256}, DC: []int{0, 1, 3, 15}}
	tbWide, err := New(Options{N: 5, Seed: 5, Params: &wide})
	if err != nil {
		t.Fatal(err)
	}
	tbDef, err := New(Options{N: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pWide := tbWide.CollisionProbability(1e7)
	pDef := tbDef.CollisionProbability(1e7)
	if pWide >= pDef {
		t.Errorf("CW=256 collision probability %v not below default %v", pWide, pDef)
	}
}

func TestUnsaturatedTestbed(t *testing.T) {
	tb, err := New(Options{N: 2, Seed: 6, TrafficMeanMicros: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(1e7)
	st := tb.Network.Stats()
	if st.QuietTime == 0 {
		t.Error("no quiet time with 5 bursts/s offered load")
	}
	if st.Successes == 0 {
		t.Error("no traffic served")
	}
}

func TestErrorModelPlumbs(t *testing.T) {
	tb, err := New(Options{N: 1, Seed: 7, ErrorModel: phy.NewBernoulli(0.2, rng.New(9))})
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(5e6)
	if tb.Network.Stats().ErroredPBs == 0 {
		t.Error("error model not wired through")
	}
}

func TestStationAddressing(t *testing.T) {
	if StationAddr(0) == StationAddr(1) {
		t.Error("station addresses collide")
	}
	if StationTEI(0) == DstTEI {
		t.Error("station TEI collides with destination")
	}
	tb, err := New(Options{N: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Network.StationByAddr(DstAddr) != tb.Destination.Station() {
		t.Error("destination not reachable by address")
	}
	for i, d := range tb.Transmitters {
		if tb.Network.Station(StationTEI(i)) != d.Station() {
			t.Errorf("transmitter %d not reachable by TEI", i)
		}
	}
}

func TestAnalyzeCapturesRejectsOversizedBurst(t *testing.T) {
	// Hand-craft a trace with 5 MPDUs never closing (MPDUCnt always
	// > 0 is impossible to encode beyond 3, so build 5 with countdown
	// restarted — the analyzer must flag >4 open MPDUs per source).
	var caps []hpav.SnifferInd
	for i := 0; i < 5; i++ {
		caps = append(caps, hpav.SnifferInd{SoF: hpav.SoF{
			STEI: 9, DTEI: 1, LinkID: config.CA1, MPDUCnt: 1, PBCount: 1,
		}})
	}
	caps = append(caps, hpav.SnifferInd{SoF: hpav.SoF{
		STEI: 9, DTEI: 1, LinkID: config.CA1, MPDUCnt: 0, PBCount: 1,
	}})
	if _, err := AnalyzeCaptures(caps, config.CA1); err == nil {
		t.Error("oversized burst accepted")
	}
}
