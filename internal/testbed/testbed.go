// Package testbed orchestrates the emulated HomePlug AV experiments
// exactly the way Section 3 of the paper runs the real ones: N
// saturated stations plugged into one power strip, all transmitting
// UDP traffic at CA1 to a destination station D; counters reset at
// test start and fetched at test end; collision probability evaluated
// as ΣCᵢ/ΣAᵢ; optional sniffer capture at D for burst, overhead and
// fairness analysis.
package testbed

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/device"
	"repro/internal/hpav"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/rng"
	"repro/internal/traffic"
)

// Options configures a testbed instance.
type Options struct {
	// N is the number of saturated transmitting stations.
	N int
	// BurstMPDUs is the burst size; the paper measured that its
	// stations use bursts of 2 MPDUs (Section 3.1). Default 2.
	BurstMPDUs int
	// PBsPerMPDU is the number of physical blocks per MPDU. Default 4.
	PBsPerMPDU int
	// FrameMicros is the per-MPDU payload duration. Default 1100 µs,
	// calibrated so a 240 s test at N = 1 yields ΣA ≈ 1.6·10⁵ MPDUs,
	// matching the absolute counter magnitudes of the paper's Table 2
	// (the INT6300 testbed transmits bursts of 2 MPDUs whose implied
	// per-MPDU airtime is ≈1.1 ms). The minimal simulator keeps the
	// paper's 2050 µs frame from the sim_1901 invocation; the collision
	// probability is invariant to the frame duration, so Figure 2's
	// agreement is unaffected.
	FrameMicros float64
	// Priority of the data traffic. Default CA1 ("the UDP traffic is
	// transmitted with CA1 priority").
	Priority config.Priority
	// Params optionally overrides the CSMA/CA parameters of the data
	// priority at every transmitter (the boosting hook). Nil keeps the
	// Table 1 defaults.
	Params *config.Params
	// MgmtMeanMicros, when positive, gives every transmitter a Poisson
	// management-message flow at CA2 with this mean inter-arrival time,
	// reproducing the background MMEs whose overhead Section 3.3
	// measures. Zero disables management traffic (the paper's isolated
	// validation runs).
	MgmtMeanMicros float64
	// TrafficMeanMicros, when positive, replaces saturated sources with
	// Poisson sources of this mean inter-arrival time. Zero = saturated.
	TrafficMeanMicros float64
	// ErrorModel corrupts physical blocks; nil = error-free channel.
	ErrorModel phy.ErrorModel
	// BeaconPeriodMicros, when positive, makes the strip carry a
	// central-coordinator beacon every period (HomePlug AV: two AC line
	// cycles — 33,330 µs at 60 Hz). Zero disables beacons, matching the
	// MAC-only validation runs.
	BeaconPeriodMicros float64
	// RecordDelays enables per-burst access-delay sampling
	// (Network.Stats().AccessDelays).
	RecordDelays bool
	// Seed drives every random stream of the testbed.
	Seed uint64
}

// withDefaults fills the zero values.
func (o Options) withDefaults() Options {
	if o.BurstMPDUs == 0 {
		o.BurstMPDUs = 2
	}
	if o.PBsPerMPDU == 0 {
		o.PBsPerMPDU = 4
	}
	if o.FrameMicros == 0 {
		o.FrameMicros = CalibratedFrameMicros
	}
	if o.Priority == 0 {
		// The zero value means "unset" and defaults to CA1, the class
		// of all the paper's data traffic. Scenarios that genuinely
		// need CA0 data flows build their stations through internal/mac
		// directly; the testbed's methodology never uses CA0.
		o.Priority = config.CA1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.N < 1 {
		return fmt.Errorf("testbed: N=%d must be ≥ 1", o.N)
	}
	if o.BurstMPDUs < 1 || o.BurstMPDUs > hpav.MaxBurstMPDUs {
		return fmt.Errorf("testbed: burst of %d MPDUs out of range", o.BurstMPDUs)
	}
	if o.PBsPerMPDU < 1 {
		return fmt.Errorf("testbed: %d PBs per MPDU", o.PBsPerMPDU)
	}
	if o.FrameMicros <= 0 {
		return fmt.Errorf("testbed: frame duration %v", o.FrameMicros)
	}
	if o.Params != nil {
		if err := o.Params.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CalibratedFrameMicros is the default per-MPDU payload duration; see
// Options.FrameMicros for the Table 2 calibration argument.
const CalibratedFrameMicros = 1100.0

// DstTEI and DstAddr identify the destination station D.
const DstTEI = hpav.TEI(1)

// DstAddr is D's MAC address.
var DstAddr = hpav.MAC{0x00, 0xB0, 0x52, 0x00, 0x00, 0x01}

// StationAddr returns the MAC of transmitter i (0-based).
func StationAddr(i int) hpav.MAC {
	return hpav.MAC{0x00, 0xB0, 0x52, 0x00, 0x01, byte(i + 1)}
}

// StationTEI returns the TEI of transmitter i (0-based).
func StationTEI(i int) hpav.TEI { return hpav.TEI(i + 2) }

// Testbed is an assembled emulated power strip.
type Testbed struct {
	Options Options
	Network *mac.Network
	// Transmitters are the N saturated stations' devices.
	Transmitters []*device.Device
	// Destination is station D's device (where the sniffer runs).
	Destination *device.Device
}

// New assembles a testbed.
func New(opts Options) (*Testbed, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}

	root := rng.New(opts.Seed)
	nw := mac.NewNetworkCfg(mac.Config{
		ErrorModel:         opts.ErrorModel,
		BeaconPeriodMicros: opts.BeaconPeriodMicros,
		RecordDelays:       opts.RecordDelays,
	})

	dstStation := mac.NewStation("D", DstTEI, DstAddr, root.Split(0))
	nw.Attach(dstStation)
	dst := device.New(dstStation)

	tb := &Testbed{Options: opts, Network: nw, Destination: dst}
	for i := 0; i < opts.N; i++ {
		st := mac.NewStation(fmt.Sprintf("sta%d", i+1), StationTEI(i), StationAddr(i), root.Split(uint64(i+1)))
		if opts.Params != nil {
			st.SetParams(opts.Priority, *opts.Params)
		}

		var src traffic.Source = traffic.Saturated{}
		if opts.TrafficMeanMicros > 0 {
			src = traffic.NewPoisson(opts.TrafficMeanMicros, root.Split(uint64(1000+i)))
		}
		st.AddFlow(&mac.Flow{
			Source: src,
			Spec: mac.BurstSpec{
				Dst: DstTEI, DstAddr: DstAddr, Priority: opts.Priority,
				MPDUs: opts.BurstMPDUs, PBsPerMPDU: opts.PBsPerMPDU,
				FrameMicros: opts.FrameMicros,
			},
		})
		if opts.MgmtMeanMicros > 0 {
			st.AddFlow(&mac.Flow{
				Source: traffic.NewPoisson(opts.MgmtMeanMicros, root.Split(uint64(2000+i))),
				Spec: mac.BurstSpec{
					Dst: DstTEI, DstAddr: DstAddr, Priority: config.CA2,
					MPDUs: 1, PBsPerMPDU: 1, FrameMicros: 150,
				},
			})
		}
		nw.Attach(st)
		tb.Transmitters = append(tb.Transmitters, device.New(st))
	}
	return tb, nil
}

// dataKey is the counter bucket of the data traffic toward D.
func (tb *Testbed) dataKey() mac.LinkKey {
	return mac.LinkKey{Peer: DstAddr, Priority: tb.Options.Priority, Direction: hpav.DirectionTx}
}

// ResetAll clears the data-link counters at every transmitter — the
// start-of-test step ("we reset the statistics of the frames
// transmitted at all the stations at the beginning of each test").
func (tb *Testbed) ResetAll() {
	key := tb.dataKey()
	for _, d := range tb.Transmitters {
		d.Station().Counters().Reset(key)
	}
}

// Run advances the emulated strip by the given virtual duration (µs).
func (tb *Testbed) Run(durationMicros float64) { tb.Network.Run(durationMicros) }

// Fetch returns each transmitter's (Cᵢ, Aᵢ) toward D plus the sums —
// the end-of-test step of Section 3.2.
func (tb *Testbed) Fetch() (per []mac.LinkCounters, sumC, sumA uint64) {
	key := tb.dataKey()
	per = make([]mac.LinkCounters, len(tb.Transmitters))
	for i, d := range tb.Transmitters {
		c := d.Station().Counters().Fetch(key)
		per[i] = c
		sumC += c.Collided
		sumA += c.Acked
	}
	return per, sumC, sumA
}

// CollisionProbability runs one reset–run–fetch cycle and returns
// ΣCᵢ/ΣAᵢ, the paper's measurement estimator.
func (tb *Testbed) CollisionProbability(durationMicros float64) float64 {
	tb.ResetAll()
	tb.Run(durationMicros)
	_, c, a := tb.Fetch()
	if a == 0 {
		return 0
	}
	return float64(c) / float64(a)
}

// EnableSniffer turns on capture at the destination D, as the paper
// does ("we can capture the SoF delimiters at the destination station
// D").
func (tb *Testbed) EnableSniffer() {
	req := &hpav.Frame{
		ODA: DstAddr, OSA: hpav.MAC{0x02, 0, 0, 0, 0, 0x01},
		Type: hpav.MMTypeSnifferReq, OUI: hpav.IntellonOUI,
		Payload: (&hpav.SnifferReq{Control: hpav.SnifferEnable}).Marshal(),
	}
	if _, err := tb.Destination.HandleMME(req); err != nil {
		panic(fmt.Sprintf("testbed: enable sniffer: %v", err))
	}
}

// Captures drains the destination's capture buffer.
func (tb *Testbed) Captures() []hpav.SnifferInd { return tb.Destination.Captures() }
