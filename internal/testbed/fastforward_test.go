package testbed

import (
	"reflect"
	"testing"

	"repro/internal/mac"
)

// buildPairedTestbeds returns two identically seeded testbeds, the
// second forced onto the slot-by-slot medium loop by a no-op observer
// (any observer disables the network's idle fast-forward).
func buildPairedTestbeds(t *testing.T, opts Options) (fast, slow *Testbed) {
	t.Helper()
	fast, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	slow, err = New(opts)
	if err != nil {
		t.Fatal(err)
	}
	slow.Network.Observe(mac.ObserverFunc(func(mac.Event) {}))
	return fast, slow
}

// compareRuns drives both testbeds across the same schedule of Run
// calls (repeated runs exercise the end-of-run batch bound) and demands
// bit-identical statistics and firmware counters.
func compareRuns(t *testing.T, opts Options, durations []float64) {
	t.Helper()
	fast, slow := buildPairedTestbeds(t, opts)
	for _, d := range durations {
		fast.Run(d)
		slow.Run(d)
	}
	fs, ss := fast.Network.Stats(), slow.Network.Stats()
	if !reflect.DeepEqual(fs, ss) {
		t.Fatalf("%+v: batched stats ≠ slot-by-slot stats\nbatched:  %+v\nslotwise: %+v", opts, fs, ss)
	}
	fPer, fC, fA := fast.Fetch()
	sPer, sC, sA := slow.Fetch()
	if fC != sC || fA != sA || !reflect.DeepEqual(fPer, sPer) {
		t.Fatalf("%+v: batched counters (%d/%d %v) ≠ slot-by-slot (%d/%d %v)",
			opts, fC, fA, fPer, sC, sA, sPer)
	}
}

// TestMACFastForwardBitIdentical is the event-driven network's
// equivalence property: batching provably idle slots must not move a
// single counter, clock increment or random draw relative to the
// slot-by-slot loop, across saturated, unsaturated, managed and
// beaconed scenarios.
func TestMACFastForwardBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"saturated-N2", Options{N: 2, Seed: 3}},
		{"saturated-N7", Options{N: 7, Seed: 9}},
		{"burst1-N3", Options{N: 3, BurstMPDUs: 1, Seed: 4}},
		{"poisson-traffic", Options{N: 3, TrafficMeanMicros: 30_000, Seed: 5}},
		{"management-CA2", Options{N: 2, MgmtMeanMicros: 50_000, Seed: 6}},
		{"beacons", Options{N: 3, BeaconPeriodMicros: 33_330, Seed: 7}},
		{"delays-recorded", Options{N: 2, RecordDelays: true, Seed: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			compareRuns(t, tc.opts, []float64{1e6, 5e5, 2e6})
		})
	}
}

// TestMACFastForwardAcrossSeeds widens the seed coverage on the
// saturated scenario the paper's tables use.
func TestMACFastForwardAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		for _, n := range []int{1, 2, 5} {
			compareRuns(t, Options{N: n, Seed: seed}, []float64{2e6})
		}
	}
}

// TestMediumLoopAllocationFree pins the zero-allocation property of the
// unobserved medium loop: once the scratch buffers and counter buckets
// are warm, advancing the network must not allocate at all.
func TestMediumLoopAllocationFree(t *testing.T) {
	tb, err := New(Options{N: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(1e6) // warm scratch buffers and counter buckets
	if allocs := testing.AllocsPerRun(5, func() { tb.Run(5e5) }); allocs > 0 {
		t.Errorf("steady-state Run allocated %.0f objects per call, want 0", allocs)
	}
}
