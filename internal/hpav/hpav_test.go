package hpav

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/config"
)

var (
	testODA = MAC{0x00, 0xB0, 0x52, 0x00, 0x00, 0x01}
	testOSA = MAC{0x00, 0xB0, 0x52, 0x00, 0x00, 0x02}
)

func TestMACString(t *testing.T) {
	if got := testODA.String(); got != "00:b0:52:00:00:01" {
		t.Errorf("MAC.String() = %q", got)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		ODA:     testODA,
		OSA:     testOSA,
		Type:    MMTypeStatsReq,
		FMI:     0,
		OUI:     IntellonOUI,
		Payload: []byte{1, 2, 3, 4},
	}
	b := f.Marshal()
	g, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.ODA != f.ODA || g.OSA != f.OSA || g.Type != f.Type || g.OUI != f.OUI {
		t.Errorf("round trip mismatch: %+v vs %+v", g, f)
	}
	if !bytes.Equal(g.Payload, f.Payload) {
		t.Errorf("payload mismatch: %v vs %v", g.Payload, f.Payload)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); !errors.Is(err, ErrShortFrame) {
		t.Errorf("short frame: %v", err)
	}
	f := (&Frame{Type: MMTypeStatsReq}).Marshal()
	f[12], f[13] = 0x08, 0x00 // IPv4 ethertype
	if _, err := Unmarshal(f); !errors.Is(err, ErrEtherType) {
		t.Errorf("wrong ethertype: %v", err)
	}
	f = (&Frame{Type: MMTypeStatsReq}).Marshal()
	f[14] = 0x7F
	if _, err := Unmarshal(f); !errors.Is(err, ErrMMV) {
		t.Errorf("wrong MMV: %v", err)
	}
}

func TestMMTypeDirections(t *testing.T) {
	tests := []struct {
		t    MMType
		dir  int
		base MMType
	}{
		{MMTypeStatsReq, 0, 0xA030},
		{MMTypeStatsCnf, 1, 0xA030},
		{MMTypeSnifferReq, 0, 0xA034},
		{MMTypeSnifferCnf, 1, 0xA034},
		{MMTypeSnifferInd, 2, 0xA034},
	}
	for _, tc := range tests {
		if got := tc.t.Direction(); got != tc.dir {
			t.Errorf("%v.Direction() = %d, want %d", tc.t, got, tc.dir)
		}
		if got := tc.t.Base(); got != tc.base {
			t.Errorf("%v.Base() = 0x%04X, want 0x%04X", tc.t, uint16(got), uint16(tc.base))
		}
		if !tc.t.IsVendor() {
			t.Errorf("%v.IsVendor() = false", tc.t)
		}
	}
	if MMType(0x0014).IsVendor() {
		t.Error("standard MMType classified as vendor")
	}
}

func TestMMTypeStrings(t *testing.T) {
	for typ, want := range map[MMType]string{
		MMTypeStatsReq:   "VS_STATS.REQ",
		MMTypeStatsCnf:   "VS_STATS.CNF",
		MMTypeSnifferReq: "VS_SNIFFER.REQ",
		MMTypeSnifferCnf: "VS_SNIFFER.CNF",
		MMTypeSnifferInd: "VS_SNIFFER.IND",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%04X.String() = %q, want %q", uint16(typ), got, want)
		}
	}
}

// TestStatsCnfByteOffsets pins the paper's byte layout: "the bytes
// 25-32 of this reply represent the number of acknowledged frames and
// the bytes 33-40 represent the number of collided frames"
// (1-based, from the start of the Ethernet frame).
func TestStatsCnfByteOffsets(t *testing.T) {
	cnf := &StatsCnf{
		Status:    StatsStatusSuccess,
		Direction: DirectionTx,
		Acked:     0x1122334455667788,
		Collided:  0x99AABBCCDDEEFF00,
	}
	frame := &Frame{
		ODA: testODA, OSA: testOSA,
		Type: MMTypeStatsCnf, OUI: IntellonOUI,
		Payload: cnf.Marshal(),
	}
	b := frame.Marshal()
	// 1-based bytes 25–32 → 0-based offsets 24–31.
	acked := binaryLEUint64(b[24:32])
	collided := binaryLEUint64(b[32:40])
	if acked != cnf.Acked {
		t.Errorf("bytes 25-32 = 0x%016X, want acked counter 0x%016X", acked, cnf.Acked)
	}
	if collided != cnf.Collided {
		t.Errorf("bytes 33-40 = 0x%016X, want collided counter 0x%016X", collided, cnf.Collided)
	}
}

func binaryLEUint64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func TestStatsReqRoundTrip(t *testing.T) {
	r := &StatsReq{
		Control:     StatsReset,
		Direction:   DirectionTx,
		Priority:    config.CA1,
		PeerAddress: testODA,
	}
	g, err := UnmarshalStatsReq(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *g != *r {
		t.Errorf("round trip: %+v vs %+v", g, r)
	}
}

func TestStatsReqValidation(t *testing.T) {
	ok := (&StatsReq{Control: StatsFetch, Direction: DirectionRx, Priority: config.CA3}).Marshal()
	cases := map[string]func([]byte) []byte{
		"short":         func(b []byte) []byte { return b[:4] },
		"bad control":   func(b []byte) []byte { b[0] = 9; return b },
		"bad direction": func(b []byte) []byte { b[1] = 7; return b },
		"bad priority":  func(b []byte) []byte { b[2] = 200; return b },
	}
	for name, mutate := range cases {
		b := append([]byte(nil), ok...)
		if _, err := UnmarshalStatsReq(mutate(b)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestStatsCnfRoundTrip(t *testing.T) {
	c := &StatsCnf{Status: 0, Direction: DirectionRx, Acked: 162220, Collided: 25}
	g, err := UnmarshalStatsCnf(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *g != *c {
		t.Errorf("round trip: %+v vs %+v", g, c)
	}
	if _, err := UnmarshalStatsCnf(make([]byte, 5)); err == nil {
		t.Error("short confirm accepted")
	}
}

func TestControlStrings(t *testing.T) {
	if StatsFetch.String() != "fetch" || StatsReset.String() != "reset" {
		t.Error("StatsControl names wrong")
	}
	if DirectionTx.String() != "tx" || DirectionRx.String() != "rx" {
		t.Error("StatsDirection names wrong")
	}
	if SnifferEnable.String() != "enable" || SnifferDisable.String() != "disable" {
		t.Error("SnifferControl names wrong")
	}
}

func TestSoFRoundTrip(t *testing.T) {
	s := &SoF{
		STEI: 3, DTEI: 1, LinkID: config.CA1, MPDUCnt: 1,
		PBCount: 4, FrameLength: EncodeFrameLength(1050), BurstID: 77,
	}
	g, err := UnmarshalSoF(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *g != *s {
		t.Errorf("round trip: %+v vs %+v", g, s)
	}
}

func TestSoFValidation(t *testing.T) {
	ok := (&SoF{STEI: 1, DTEI: 2, LinkID: config.CA1, MPDUCnt: 0, PBCount: 1}).Marshal()
	short := ok[:sofLen-1]
	if _, err := UnmarshalSoF(short); err == nil {
		t.Error("short SoF accepted")
	}
	badType := append([]byte(nil), ok...)
	badType[0] = byte(DelimiterSACK)
	if _, err := UnmarshalSoF(badType); err == nil {
		t.Error("SACK bytes accepted as SoF")
	}
	badLink := append([]byte(nil), ok...)
	badLink[3] = 99
	if _, err := UnmarshalSoF(badLink); err == nil {
		t.Error("invalid link id accepted")
	}
	badCnt := append([]byte(nil), ok...)
	badCnt[4] = MaxBurstMPDUs
	if _, err := UnmarshalSoF(badCnt); err == nil {
		t.Error("MPDUCnt ≥ 4 accepted")
	}
}

func TestSoFMarshalPanicsOnHugeBurst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Marshal accepted MPDUCnt ≥ 4")
		}
	}()
	(&SoF{MPDUCnt: 4}).Marshal()
}

func TestFrameLengthEncoding(t *testing.T) {
	tests := []struct {
		us   float64
		want uint16
	}{
		{0, 0},
		{-5, 0},
		{1.28, 1},
		{2050, 1602}, // 2050/1.28 = 1601.56 → 1602
		{1e9, 65535}, // saturate
	}
	for _, tc := range tests {
		if got := EncodeFrameLength(tc.us); got != tc.want {
			t.Errorf("EncodeFrameLength(%v) = %d, want %d", tc.us, got, tc.want)
		}
	}
	s := &SoF{FrameLength: EncodeFrameLength(2050)}
	if d := s.DurationMicros(); d < 2049 || d > 2051 {
		t.Errorf("DurationMicros round trip = %v, want ≈2050", d)
	}
}

func TestSoFLastInBurst(t *testing.T) {
	if !(&SoF{MPDUCnt: 0}).LastInBurst() {
		t.Error("MPDUCnt 0 not detected as last in burst")
	}
	if (&SoF{MPDUCnt: 1}).LastInBurst() {
		t.Error("MPDUCnt 1 detected as last in burst")
	}
}

func TestSACKRoundTrip(t *testing.T) {
	for _, s := range []*SACK{
		{STEI: 1, DTEI: 2, ReceivedPBs: 4, TotalPBs: 4, AllErrored: false},
		{STEI: 2, DTEI: 1, ReceivedPBs: 0, TotalPBs: 4, AllErrored: true},
	} {
		g, err := UnmarshalSACK(s.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if *g != *s {
			t.Errorf("round trip: %+v vs %+v", g, s)
		}
	}
}

func TestSACKValidation(t *testing.T) {
	if _, err := UnmarshalSACK(make([]byte, 3)); err == nil {
		t.Error("short SACK accepted")
	}
	bad := (&SACK{ReceivedPBs: 5, TotalPBs: 4}).Marshal()
	if _, err := UnmarshalSACK(bad); err == nil {
		t.Error("received > total accepted")
	}
	// All-errored with received blocks is contradictory.
	b := (&SACK{ReceivedPBs: 2, TotalPBs: 4}).Marshal()
	b[7] = 1
	if _, err := UnmarshalSACK(b); err == nil {
		t.Error("all-errored with received blocks accepted")
	}
}

func TestSnifferBodies(t *testing.T) {
	req := &SnifferReq{Control: SnifferEnable}
	g, err := UnmarshalSnifferReq(req.Marshal())
	if err != nil || g.Control != SnifferEnable {
		t.Errorf("sniffer req round trip: %+v, %v", g, err)
	}
	if _, err := UnmarshalSnifferReq([]byte{}); err == nil {
		t.Error("empty sniffer req accepted")
	}
	if _, err := UnmarshalSnifferReq([]byte{9}); err == nil {
		t.Error("unknown sniffer control accepted")
	}

	cnf := &SnifferCnf{Status: 0, State: SnifferEnable}
	gc, err := UnmarshalSnifferCnf(cnf.Marshal())
	if err != nil || gc.State != SnifferEnable {
		t.Errorf("sniffer cnf round trip: %+v, %v", gc, err)
	}
	if _, err := UnmarshalSnifferCnf([]byte{0}); err == nil {
		t.Error("short sniffer cnf accepted")
	}
}

func TestSnifferIndRoundTrip(t *testing.T) {
	ind := &SnifferInd{
		TimestampMicros: 123456789,
		SoF: SoF{
			STEI: 5, DTEI: 1, LinkID: config.CA2, MPDUCnt: 0,
			PBCount: 2, FrameLength: 100, BurstID: 9,
		},
	}
	g, err := UnmarshalSnifferInd(ind.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.TimestampMicros != ind.TimestampMicros || g.SoF != ind.SoF {
		t.Errorf("round trip: %+v vs %+v", g, ind)
	}
	if _, err := UnmarshalSnifferInd(make([]byte, 10)); err == nil {
		t.Error("short sniffer ind accepted")
	}
}

func TestBurstConstruction(t *testing.T) {
	b, err := NewBurst(2, 3, 1, config.CA1, 4, 1050, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.MPDUs[0].SoF.MPDUCnt != 1 || b.MPDUs[1].SoF.MPDUCnt != 0 {
		t.Errorf("countdown wrong: %d, %d", b.MPDUs[0].SoF.MPDUCnt, b.MPDUs[1].SoF.MPDUCnt)
	}
	if !b.MPDUs[1].SoF.LastInBurst() || b.MPDUs[0].SoF.LastInBurst() {
		t.Error("LastInBurst flags wrong")
	}
}

func TestBurstConstructionErrors(t *testing.T) {
	if _, err := NewBurst(0, 1, 2, config.CA1, 1, 100, 1); err == nil {
		t.Error("burst of 0 accepted")
	}
	if _, err := NewBurst(5, 1, 2, config.CA1, 1, 100, 1); err == nil {
		t.Error("burst of 5 accepted")
	}
	if _, err := NewBurst(1, 1, 2, config.CA1, 0, 100, 1); err == nil {
		t.Error("0 PBs accepted")
	}
	if _, err := NewBurst(1, 1, 2, config.Priority(9), 1, 100, 1); err == nil {
		t.Error("invalid priority accepted")
	}
}

func TestBurstValidateRejectsMixups(t *testing.T) {
	mk := func() *Burst {
		b, _ := NewBurst(3, 3, 1, config.CA1, 4, 1050, 42)
		return b
	}
	b := mk()
	b.MPDUs[1].SoF.MPDUCnt = 0
	if err := b.Validate(); err == nil {
		t.Error("broken countdown accepted")
	}
	b = mk()
	b.MPDUs[2].SoF.BurstID = 43
	if err := b.Validate(); err == nil {
		t.Error("mixed burst ids accepted")
	}
	b = mk()
	b.MPDUs[1].SoF.STEI = 9
	if err := b.Validate(); err == nil {
		t.Error("mixed sources accepted")
	}
	if err := (&Burst{}).Validate(); err == nil {
		t.Error("empty burst accepted")
	}
}

func TestAggregateRoundTrip(t *testing.T) {
	frames := [][]byte{
		bytes.Repeat([]byte{0xAA}, 60),
		bytes.Repeat([]byte{0xBB}, 1500),
		{0x01},
	}
	stream, err := Aggregate(frames)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate PB padding.
	padded := append(stream, make([]byte, 37)...)
	got, err := Disaggregate(padded)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("recovered %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Errorf("frame %d mismatch", i)
		}
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := Aggregate([][]byte{{}}); err == nil {
		t.Error("empty frame accepted")
	}
	if _, err := Aggregate([][]byte{make([]byte, 2000)}); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestDisaggregateErrors(t *testing.T) {
	// Truncated frame: claims 100 bytes, provides 3.
	bad := []byte{100, 0, 1, 2, 3}
	if _, err := Disaggregate(bad); err == nil {
		t.Error("truncated stream accepted")
	}
	// Oversized length prefix.
	big := []byte{0xFF, 0xFF}
	big = append(big, make([]byte, 70000)...)
	if _, err := Disaggregate(big); err == nil {
		t.Error("oversized frame length accepted")
	}
	// Empty stream is fine (pure padding).
	if got, err := Disaggregate(make([]byte, 10)); err != nil || len(got) != 0 {
		t.Errorf("padding-only stream: %v, %v", got, err)
	}
}

// Property: MME frame marshal/unmarshal is the identity.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(oda, osa [6]byte, typ uint16, fmi uint16, payload []byte) bool {
		in := &Frame{ODA: MAC(oda), OSA: MAC(osa), Type: MMType(typ), FMI: fmi, OUI: IntellonOUI, Payload: payload}
		out, err := Unmarshal(in.Marshal())
		if err != nil {
			return false
		}
		return out.ODA == in.ODA && out.OSA == in.OSA && out.Type == in.Type &&
			out.FMI == in.FMI && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: aggregation round-trips arbitrary non-empty frame sets.
func TestAggregationProperty(t *testing.T) {
	f := func(sizes []uint16, fill byte) bool {
		var frames [][]byte
		for _, s := range sizes {
			n := int(s)%maxAggregatedFrame + 1
			frames = append(frames, bytes.Repeat([]byte{fill | 1}, n))
		}
		if len(frames) == 0 {
			return true
		}
		stream, err := Aggregate(frames)
		if err != nil {
			return false
		}
		got, err := Disaggregate(stream)
		if err != nil || len(got) != len(frames) {
			return false
		}
		for i := range frames {
			if !bytes.Equal(got[i], frames[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
