package hpav

import (
	"encoding/binary"
	"fmt"

	"repro/internal/config"
)

// StatsControl selects what a VS_STATS.REQ does, mirroring ampstat's
// reset/fetch semantics (Section 3.2: "we can reset to 0 or retrieve
// the number of acknowledged and collided PLC frames given the
// destination MAC address, the priority, and the direction").
type StatsControl uint8

const (
	// StatsFetch retrieves the counters without modifying them.
	StatsFetch StatsControl = 0
	// StatsReset clears the counters for the addressed link.
	StatsReset StatsControl = 1
)

// String names the control code.
func (c StatsControl) String() string {
	switch c {
	case StatsFetch:
		return "fetch"
	case StatsReset:
		return "reset"
	default:
		return fmt.Sprintf("StatsControl(%d)", uint8(c))
	}
}

// StatsDirection selects the link direction of the queried counters.
type StatsDirection uint8

const (
	// DirectionTx selects frames transmitted toward the peer.
	DirectionTx StatsDirection = 0
	// DirectionRx selects frames received from the peer.
	DirectionRx StatsDirection = 1
)

// String names the direction.
func (d StatsDirection) String() string {
	switch d {
	case DirectionTx:
		return "tx"
	case DirectionRx:
		return "rx"
	default:
		return fmt.Sprintf("StatsDirection(%d)", uint8(d))
	}
}

// StatsReq is the body of a VS_STATS.REQ (MMType 0xA030): reset or
// fetch the MPDU counters of the link to PeerAddress at the given
// priority and direction.
type StatsReq struct {
	Control   StatsControl
	Direction StatsDirection
	Priority  config.Priority
	// PeerAddress is the MAC of the link's remote end (the destination
	// station D in the paper's experiments).
	PeerAddress MAC
}

// statsReqLen: control(1) + direction(1) + priority(1) + peer(6).
const statsReqLen = 9

// Marshal encodes the request body.
func (r *StatsReq) Marshal() []byte {
	b := make([]byte, statsReqLen)
	b[0] = byte(r.Control)
	b[1] = byte(r.Direction)
	b[2] = byte(r.Priority)
	copy(b[3:9], r.PeerAddress[:])
	return b
}

// UnmarshalStatsReq decodes and validates a request body.
func UnmarshalStatsReq(b []byte) (*StatsReq, error) {
	if len(b) < statsReqLen {
		return nil, fmt.Errorf("%w: stats request %d bytes, need %d", ErrPayload, len(b), statsReqLen)
	}
	r := &StatsReq{
		Control:   StatsControl(b[0]),
		Direction: StatsDirection(b[1]),
		Priority:  config.Priority(b[2]),
	}
	copy(r.PeerAddress[:], b[3:9])
	if r.Control > StatsReset {
		return nil, fmt.Errorf("%w: unknown stats control %d", ErrPayload, b[0])
	}
	if r.Direction > DirectionRx {
		return nil, fmt.Errorf("%w: unknown stats direction %d", ErrPayload, b[1])
	}
	if !r.Priority.Valid() {
		return nil, fmt.Errorf("%w: invalid priority %d", ErrPayload, b[2])
	}
	return r, nil
}

// StatsCnf is the body of a VS_STATS.CNF (MMType 0xA031).
//
// Layout (offsets within the payload, which itself starts at byte 23 of
// the frame, 1-based):
//
//	+0  status (0 = success)
//	+1  direction echoed from the request
//	+2  acked, uint64 little-endian   → frame bytes 25–32 (1-based)
//	+10 collided, uint64 little-endian → frame bytes 33–40 (1-based)
//
// matching the INT6300 reply layout the paper decodes in Section 3.2.
type StatsCnf struct {
	Status    uint8
	Direction StatsDirection
	// Acked counts MPDUs that received a selective acknowledgment —
	// including collided MPDUs, which the destination still
	// acknowledges with an all-blocks-errored indication. This is the
	// Aᵢ of the paper.
	Acked uint64
	// Collided counts MPDUs lost to collisions — the Cᵢ of the paper.
	Collided uint64
}

// statsCnfLen: status(1) + direction(1) + acked(8) + collided(8).
const statsCnfLen = 18

// StatsStatusSuccess indicates a successful stats operation.
const StatsStatusSuccess = 0

// Marshal encodes the confirmation body.
func (c *StatsCnf) Marshal() []byte {
	b := make([]byte, statsCnfLen)
	b[0] = c.Status
	b[1] = byte(c.Direction)
	binary.LittleEndian.PutUint64(b[2:10], c.Acked)
	binary.LittleEndian.PutUint64(b[10:18], c.Collided)
	return b
}

// UnmarshalStatsCnf decodes a confirmation body.
func UnmarshalStatsCnf(b []byte) (*StatsCnf, error) {
	if len(b) < statsCnfLen {
		return nil, fmt.Errorf("%w: stats confirm %d bytes, need %d", ErrPayload, len(b), statsCnfLen)
	}
	return &StatsCnf{
		Status:    b[0],
		Direction: StatsDirection(b[1]),
		Acked:     binary.LittleEndian.Uint64(b[2:10]),
		Collided:  binary.LittleEndian.Uint64(b[10:18]),
	}, nil
}
