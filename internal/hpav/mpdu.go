package hpav

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/phy"
)

// MPDU is a MAC protocol data unit: one SoF delimiter plus the payload
// carried as 512-byte physical blocks. Bursts of up to four MPDUs
// contend for the medium as a unit (Section 3.1): the SoF's MPDUCnt
// field counts the MPDUs remaining after the current one.
type MPDU struct {
	SoF SoF
	// Payload is the aggregated MAC frame stream (before PB padding).
	Payload []byte
}

// PBs returns the number of physical blocks the payload occupies.
func (m *MPDU) PBs() int { return phy.PBCount(len(m.Payload)) }

// Burst is an ordered group of MPDUs transmitted back-to-back after a
// single successful contention. All MPDUs of a burst share a BurstID
// and count MPDUCnt down to zero.
type Burst struct {
	MPDUs []MPDU
}

// Validate checks the burst invariants the sniffer-side analysis relies
// on: 1 ≤ size ≤ 4, a countdown MPDUCnt sequence, a shared BurstID and
// a shared source.
func (b *Burst) Validate() error {
	n := len(b.MPDUs)
	if n < 1 || n > MaxBurstMPDUs {
		return fmt.Errorf("hpav: burst of %d MPDUs (must be 1–%d)", n, MaxBurstMPDUs)
	}
	id := b.MPDUs[0].SoF.BurstID
	src := b.MPDUs[0].SoF.STEI
	for i := range b.MPDUs {
		s := &b.MPDUs[i].SoF
		if want := uint8(n - 1 - i); s.MPDUCnt != want {
			return fmt.Errorf("hpav: burst MPDU %d has MPDUCnt %d, want %d", i, s.MPDUCnt, want)
		}
		if s.BurstID != id {
			return fmt.Errorf("hpav: burst MPDU %d has BurstID %d, want %d", i, s.BurstID, id)
		}
		if s.STEI != src {
			return fmt.Errorf("hpav: burst MPDU %d has source %d, want %d", i, s.STEI, src)
		}
	}
	return nil
}

// NewBurst assembles a burst of n MPDUs from src to dst at the given
// priority, each carrying payloadPBs physical blocks lasting
// frameMicros on the wire. The caller supplies the burst identifier
// (monotonic per station).
func NewBurst(n int, src, dst TEI, pri config.Priority, payloadPBs int, frameMicros float64, burstID uint32) (*Burst, error) {
	if n < 1 || n > MaxBurstMPDUs {
		return nil, fmt.Errorf("hpav: burst size %d out of range 1–%d", n, MaxBurstMPDUs)
	}
	if payloadPBs < 1 || payloadPBs > 65535 {
		return nil, fmt.Errorf("hpav: %d physical blocks out of range", payloadPBs)
	}
	if !pri.Valid() {
		return nil, fmt.Errorf("hpav: invalid priority %d", pri)
	}
	b := &Burst{MPDUs: make([]MPDU, n)}
	for i := 0; i < n; i++ {
		b.MPDUs[i].SoF = SoF{
			STEI:        src,
			DTEI:        dst,
			LinkID:      pri,
			MPDUCnt:     uint8(n - 1 - i),
			PBCount:     uint16(payloadPBs),
			FrameLength: EncodeFrameLength(frameMicros),
			BurstID:     burstID,
		}
	}
	return b, nil
}
