// Package hpav implements the HomePlug AV / IEEE 1901 frame formats the
// paper's measurement methodology relies on: management-message entries
// (MMEs) with their vendor-specific subtypes, start-of-frame (SoF) and
// selective-acknowledgment delimiters, and MPDU/burst framing.
//
// The byte layouts follow the conventions of the open tools the paper
// uses — faifa and the Atheros Open Powerline Toolkit — closely enough
// that the measurement procedures of Section 3 translate verbatim. In
// particular the station-statistics confirmation places the
// acknowledged-frame counter at bytes 25–32 and the collided-frame
// counter at bytes 33–40 of the reply frame (1-based, counted from the
// start of the Ethernet header), exactly as Section 3.2 describes for
// the INT6300's 0xA030 reply.
//
// Everything here is pure codec: no I/O, no time, no state. The
// emulated device (internal/device) and the tools (cmd/ampstat,
// cmd/faifa) speak these bytes over UDP.
package hpav

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// String renders the conventional colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Broadcast is the all-ones address; MMEs to it reach every station on
// the power line.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// ParseMAC parses the colon-separated hexadecimal form.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("hpav: %q is not a aa:bb:cc:dd:ee:ff address", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("hpav: bad MAC octet %q: %v", p, err)
		}
		m[i] = byte(v)
	}
	return m, nil
}

// EtherTypeHomePlug is the HomePlug AV management ethertype (0x88E1).
const EtherTypeHomePlug = 0x88E1

// MMV is the management-message version field. Version 1 corresponds to
// HomePlug AV 1.1 MMEs, which is what the INT6300 toolchain speaks.
const MMV = 0x01

// OUI is a vendor organizationally-unique identifier. Vendor-specific
// MMEs (the 0xAxxx range) carry one right after the MME header.
type OUI [3]byte

// IntellonOUI is the OUI used by INT6300-class devices (00:B0:52); the
// emulated firmware answers vendor MMEs carrying it.
var IntellonOUI = OUI{0x00, 0xB0, 0x52}

// MMType identifies a management message. The low two bits encode the
// direction: 00 request (REQ), 01 confirm (CNF), 10 indication (IND),
// 11 response (RSP).
type MMType uint16

// Vendor-specific MMTypes used by the paper's tools.
const (
	// MMTypeStatsReq is the 0xA030 statistics request of ampstat: reset
	// or fetch the acknowledged/collided frame counters of a link.
	MMTypeStatsReq MMType = 0xA030
	// MMTypeStatsCnf is the matching confirmation.
	MMTypeStatsCnf MMType = 0xA031
	// MMTypeSnifferReq is the 0xA034 sniffer-mode request of faifa.
	MMTypeSnifferReq MMType = 0xA034
	// MMTypeSnifferCnf confirms a sniffer-mode change.
	MMTypeSnifferCnf MMType = 0xA035
	// MMTypeSnifferInd carries one captured SoF delimiter to the host.
	MMTypeSnifferInd MMType = 0xA036
)

// Direction returns the two low bits (0 REQ, 1 CNF, 2 IND, 3 RSP).
func (t MMType) Direction() int { return int(t & 0x3) }

// Base returns the MMType with the direction bits cleared, identifying
// the message family.
func (t MMType) Base() MMType { return t &^ 0x3 }

// IsVendor reports whether the type sits in the vendor-specific range.
func (t MMType) IsVendor() bool { return t >= 0xA000 && t < 0xC000 }

// String names the known types and hex-dumps the rest.
func (t MMType) String() string {
	switch t {
	case MMTypeStatsReq:
		return "VS_STATS.REQ"
	case MMTypeStatsCnf:
		return "VS_STATS.CNF"
	case MMTypeSnifferReq:
		return "VS_SNIFFER.REQ"
	case MMTypeSnifferCnf:
		return "VS_SNIFFER.CNF"
	case MMTypeSnifferInd:
		return "VS_SNIFFER.IND"
	default:
		return fmt.Sprintf("MMType(0x%04X)", uint16(t))
	}
}

// headerLen is the fixed MME prefix: Ethernet (14) + MMV (1) +
// MMTYPE (2) + FMI (2) + OUI (3) = 22 bytes. Every vendor MME payload
// starts at offset 22.
const headerLen = 22

// Frame is a decoded management-message frame.
type Frame struct {
	// ODA and OSA are the destination and source MAC addresses.
	ODA, OSA MAC
	// Type is the management-message type.
	Type MMType
	// FMI is the fragmentation management information field; the tools
	// never fragment, so it is zero everywhere in this system.
	FMI uint16
	// OUI is the vendor identifier of vendor-specific messages.
	OUI OUI
	// Payload is the type-specific body (offset 22 onwards).
	Payload []byte
}

// Errors returned by the codecs.
var (
	ErrShortFrame = errors.New("hpav: frame too short")
	ErrEtherType  = errors.New("hpav: not a HomePlug AV frame (wrong ethertype)")
	ErrMMV        = errors.New("hpav: unsupported management-message version")
	ErrPayload    = errors.New("hpav: malformed MME payload")
)

// Marshal encodes the frame. Multi-byte fields are little-endian, as in
// the HomePlug AV MME encoding (except the Ethernet ethertype, which is
// network order).
func (f *Frame) Marshal() []byte {
	b := make([]byte, headerLen+len(f.Payload))
	copy(b[0:6], f.ODA[:])
	copy(b[6:12], f.OSA[:])
	binary.BigEndian.PutUint16(b[12:14], EtherTypeHomePlug)
	b[14] = MMV
	binary.LittleEndian.PutUint16(b[15:17], uint16(f.Type))
	binary.LittleEndian.PutUint16(b[17:19], f.FMI)
	copy(b[19:22], f.OUI[:])
	copy(b[headerLen:], f.Payload)
	return b
}

// Unmarshal decodes a frame, validating the ethertype and MMV. The
// payload slice aliases b; callers that retain it must copy.
func Unmarshal(b []byte) (*Frame, error) {
	if len(b) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes, need %d", ErrShortFrame, len(b), headerLen)
	}
	if et := binary.BigEndian.Uint16(b[12:14]); et != EtherTypeHomePlug {
		return nil, fmt.Errorf("%w: 0x%04X", ErrEtherType, et)
	}
	if b[14] != MMV {
		return nil, fmt.Errorf("%w: %d", ErrMMV, b[14])
	}
	f := &Frame{
		Type:    MMType(binary.LittleEndian.Uint16(b[15:17])),
		FMI:     binary.LittleEndian.Uint16(b[17:19]),
		Payload: b[headerLen:],
	}
	copy(f.ODA[:], b[0:6])
	copy(f.OSA[:], b[6:12])
	copy(f.OUI[:], b[19:22])
	return f, nil
}
