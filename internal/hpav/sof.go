package hpav

import (
	"encoding/binary"
	"fmt"

	"repro/internal/config"
)

// TEI is a terminal equipment identifier: the short station address the
// central coordinator assigns when a station joins the AV logical
// network. Delimiters carry TEIs, not MACs.
type TEI uint8

// DelimiterType distinguishes the 1901 frame-control delimiters.
type DelimiterType uint8

const (
	// DelimiterSoF starts an MPDU (start-of-frame).
	DelimiterSoF DelimiterType = 1
	// DelimiterSACK is a selective acknowledgment.
	DelimiterSACK DelimiterType = 2
)

// String names the delimiter type.
func (d DelimiterType) String() string {
	switch d {
	case DelimiterSoF:
		return "SoF"
	case DelimiterSACK:
		return "SACK"
	default:
		return fmt.Sprintf("DelimiterType(%d)", uint8(d))
	}
}

// SoF is the start-of-frame delimiter, the frame-control structure the
// sniffer mode captures (Section 3.3). The fields exposed are exactly
// the ones the paper's methodology uses:
//
//   - LinkID encodes the priority of the frame, distinguishing CA1 data
//     from CA2/CA3 management traffic;
//   - MPDUCnt is the number of MPDUs *remaining* in the current burst
//     (0 marks the last MPDU of a burst — the paper's burst-boundary
//     detector);
//   - STEI identifies the source for fairness traces;
//   - FrameLength and PBCount describe the payload for overhead
//     accounting.
type SoF struct {
	// STEI and DTEI are the source and destination station identifiers.
	STEI, DTEI TEI
	// LinkID carries the channel-access priority of the MPDU.
	LinkID config.Priority
	// MPDUCnt is the number of MPDUs remaining in the burst after this
	// one (2-bit field in the standard; up to 4 MPDUs per burst).
	MPDUCnt uint8
	// PBCount is the number of 512-byte physical blocks in the MPDU.
	PBCount uint16
	// FrameLength is the MPDU payload duration on the wire, encoded in
	// units of 1.28 µs as in the standard's FL_AV field.
	FrameLength uint16
	// BurstID tags all MPDUs of one burst with a common identifier so
	// traces can be grouped without inferring boundaries (a convenience
	// the real SoF lacks; the tools only use MPDUCnt).
	BurstID uint32
}

// MaxBurstMPDUs is the burst-size limit: "Up to four MPDUs may be
// supported in a burst" (Section 3.1).
const MaxBurstMPDUs = 4

// FLUnit is the duration granularity of the FrameLength field in µs.
const FLUnit = 1.28

// sofLen: type(1) + stei(1) + dtei(1) + linkid(1) + mpducnt(1) +
// pbcount(2) + framelength(2) + burstid(4).
const sofLen = 13

// EncodeFrameLength converts a µs duration into FL_AV units (rounding
// to nearest; saturating at the field's 16-bit range).
func EncodeFrameLength(us float64) uint16 {
	if us <= 0 {
		return 0
	}
	v := us/FLUnit + 0.5
	if v >= 65535 {
		return 65535
	}
	return uint16(v)
}

// DurationMicros returns the payload duration in µs.
func (s *SoF) DurationMicros() float64 { return float64(s.FrameLength) * FLUnit }

// LastInBurst reports whether this MPDU closes its burst (MPDUCnt = 0),
// the condition Section 3.3 uses to count bursts.
func (s *SoF) LastInBurst() bool { return s.MPDUCnt == 0 }

// Marshal encodes the delimiter.
func (s *SoF) Marshal() []byte {
	if s.MPDUCnt >= MaxBurstMPDUs {
		panic(fmt.Sprintf("hpav: SoF.MPDUCnt = %d exceeds the 2-bit burst field (max %d)", s.MPDUCnt, MaxBurstMPDUs-1))
	}
	b := make([]byte, sofLen)
	b[0] = byte(DelimiterSoF)
	b[1] = byte(s.STEI)
	b[2] = byte(s.DTEI)
	b[3] = byte(s.LinkID)
	b[4] = s.MPDUCnt
	binary.LittleEndian.PutUint16(b[5:7], s.PBCount)
	binary.LittleEndian.PutUint16(b[7:9], s.FrameLength)
	binary.LittleEndian.PutUint32(b[9:13], s.BurstID)
	return b
}

// UnmarshalSoF decodes and validates an SoF delimiter.
func UnmarshalSoF(b []byte) (*SoF, error) {
	if len(b) < sofLen {
		return nil, fmt.Errorf("%w: SoF %d bytes, need %d", ErrShortFrame, len(b), sofLen)
	}
	if DelimiterType(b[0]) != DelimiterSoF {
		return nil, fmt.Errorf("%w: delimiter type %d is not SoF", ErrPayload, b[0])
	}
	s := &SoF{
		STEI:        TEI(b[1]),
		DTEI:        TEI(b[2]),
		LinkID:      config.Priority(b[3]),
		MPDUCnt:     b[4],
		PBCount:     binary.LittleEndian.Uint16(b[5:7]),
		FrameLength: binary.LittleEndian.Uint16(b[7:9]),
		BurstID:     binary.LittleEndian.Uint32(b[9:13]),
	}
	if !s.LinkID.Valid() {
		return nil, fmt.Errorf("%w: SoF link id %d is not a priority class", ErrPayload, b[3])
	}
	if s.MPDUCnt >= MaxBurstMPDUs {
		return nil, fmt.Errorf("%w: SoF MPDUCnt %d exceeds burst limit", ErrPayload, s.MPDUCnt)
	}
	return s, nil
}

// SACK is the selective-acknowledgment delimiter. Per Section 3.2, the
// destination acknowledges even collided frames when it could decode
// the (robustly modulated) preamble, marking every physical block as
// errored; AllErrored carries that indication.
type SACK struct {
	// STEI/DTEI identify the acknowledging and acknowledged stations.
	STEI, DTEI TEI
	// ReceivedPBs is the number of physical blocks received intact.
	ReceivedPBs uint16
	// TotalPBs is the number of physical blocks in the acked MPDU.
	TotalPBs uint16
	// AllErrored indicates that every block failed — the collision
	// signature that still increments the transmitter's Acked counter.
	AllErrored bool
}

// sackLen: type(1) + stei(1) + dtei(1) + received(2) + total(2) + flags(1).
const sackLen = 8

// Marshal encodes the delimiter.
func (s *SACK) Marshal() []byte {
	b := make([]byte, sackLen)
	b[0] = byte(DelimiterSACK)
	b[1] = byte(s.STEI)
	b[2] = byte(s.DTEI)
	binary.LittleEndian.PutUint16(b[3:5], s.ReceivedPBs)
	binary.LittleEndian.PutUint16(b[5:7], s.TotalPBs)
	if s.AllErrored {
		b[7] = 1
	}
	return b
}

// UnmarshalSACK decodes and validates a SACK delimiter.
func UnmarshalSACK(b []byte) (*SACK, error) {
	if len(b) < sackLen {
		return nil, fmt.Errorf("%w: SACK %d bytes, need %d", ErrShortFrame, len(b), sackLen)
	}
	if DelimiterType(b[0]) != DelimiterSACK {
		return nil, fmt.Errorf("%w: delimiter type %d is not SACK", ErrPayload, b[0])
	}
	s := &SACK{
		STEI:        TEI(b[1]),
		DTEI:        TEI(b[2]),
		ReceivedPBs: binary.LittleEndian.Uint16(b[3:5]),
		TotalPBs:    binary.LittleEndian.Uint16(b[5:7]),
		AllErrored:  b[7]&1 != 0,
	}
	if s.ReceivedPBs > s.TotalPBs {
		return nil, fmt.Errorf("%w: SACK received %d > total %d", ErrPayload, s.ReceivedPBs, s.TotalPBs)
	}
	if s.AllErrored && s.ReceivedPBs != 0 {
		return nil, fmt.Errorf("%w: SACK all-errored with %d received blocks", ErrPayload, s.ReceivedPBs)
	}
	return s, nil
}
