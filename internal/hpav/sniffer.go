package hpav

import (
	"encoding/binary"
	"fmt"
)

// SnifferControl switches the device's sniffer mode, mirroring faifa's
// 0xA034 option (Section 3.3): when enabled, the device forwards the
// SoF delimiter of every PLC frame it hears — data, beacons and
// management alike — to the host as VS_SNIFFER.IND messages.
type SnifferControl uint8

const (
	// SnifferDisable turns capture off.
	SnifferDisable SnifferControl = 0
	// SnifferEnable turns capture on.
	SnifferEnable SnifferControl = 1
)

// String names the control code.
func (c SnifferControl) String() string {
	switch c {
	case SnifferDisable:
		return "disable"
	case SnifferEnable:
		return "enable"
	default:
		return fmt.Sprintf("SnifferControl(%d)", uint8(c))
	}
}

// SnifferReq is the body of a VS_SNIFFER.REQ.
type SnifferReq struct {
	Control SnifferControl
}

// Marshal encodes the request body.
func (r *SnifferReq) Marshal() []byte { return []byte{byte(r.Control)} }

// UnmarshalSnifferReq decodes and validates a request body.
func UnmarshalSnifferReq(b []byte) (*SnifferReq, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: empty sniffer request", ErrPayload)
	}
	c := SnifferControl(b[0])
	if c > SnifferEnable {
		return nil, fmt.Errorf("%w: unknown sniffer control %d", ErrPayload, b[0])
	}
	return &SnifferReq{Control: c}, nil
}

// SnifferCnf confirms a sniffer-mode change.
type SnifferCnf struct {
	Status uint8 // 0 = success
	State  SnifferControl
}

// Marshal encodes the confirmation body.
func (c *SnifferCnf) Marshal() []byte { return []byte{c.Status, byte(c.State)} }

// UnmarshalSnifferCnf decodes a confirmation body.
func UnmarshalSnifferCnf(b []byte) (*SnifferCnf, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: sniffer confirm %d bytes, need 2", ErrPayload, len(b))
	}
	return &SnifferCnf{Status: b[0], State: SnifferControl(b[1])}, nil
}

// SnifferInd carries one captured delimiter to the host, stamped with
// the capture time. faifa prints exactly these fields; the capture
// pipeline of Section 3.3 (burst counting via MPDUCnt, MME-overhead
// estimation via LinkID, fairness via STEI) consumes them.
type SnifferInd struct {
	// TimestampMicros is the device's µs clock at capture time.
	TimestampMicros uint64
	// SoF is the captured start-of-frame delimiter. Only SoF delimiters
	// are forwarded — the tool "can only capture the SoF delimiters and
	// not the frame content" (Section 3.3).
	SoF SoF
}

// snifferIndHeaderLen: timestamp(8).
const snifferIndHeaderLen = 8

// Marshal encodes the indication body.
func (i *SnifferInd) Marshal() []byte {
	b := make([]byte, snifferIndHeaderLen, snifferIndHeaderLen+sofLen)
	binary.LittleEndian.PutUint64(b[0:8], i.TimestampMicros)
	return append(b, i.SoF.Marshal()...)
}

// UnmarshalSnifferInd decodes an indication body.
func UnmarshalSnifferInd(b []byte) (*SnifferInd, error) {
	if len(b) < snifferIndHeaderLen+sofLen {
		return nil, fmt.Errorf("%w: sniffer indication %d bytes, need %d", ErrPayload, len(b), snifferIndHeaderLen+sofLen)
	}
	sof, err := UnmarshalSoF(b[snifferIndHeaderLen:])
	if err != nil {
		return nil, err
	}
	return &SnifferInd{
		TimestampMicros: binary.LittleEndian.Uint64(b[0:8]),
		SoF:             *sof,
	}, nil
}
