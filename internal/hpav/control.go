package hpav

import (
	"encoding/binary"
	"fmt"
)

// Emulator-control MME. Real HomePlug AV testbeds advance in wall-clock
// time: the operator resets counters, waits 240 s while traffic flows,
// then queries. The emulated testbed runs in virtual time, so the tools
// need a way to say "run the test now". VS_EMULATOR is the vendor MME
// providing that: it asks the emulated power strip to advance its
// virtual clock by a duration. It deliberately follows the same
// REQ/CNF encoding conventions as the real vendor messages.
const (
	// MMTypeEmulatorReq asks the emulator host to advance virtual time.
	MMTypeEmulatorReq MMType = 0xA0F0
	// MMTypeEmulatorCnf reports the host's virtual clock.
	MMTypeEmulatorCnf MMType = 0xA0F1
)

// EmulatorOp selects the emulator-control operation.
type EmulatorOp uint8

const (
	// EmulatorStatus queries the virtual clock without advancing it.
	EmulatorStatus EmulatorOp = 0
	// EmulatorRun advances the virtual clock by DurationMicros.
	EmulatorRun EmulatorOp = 1
)

// String names the operation.
func (op EmulatorOp) String() string {
	switch op {
	case EmulatorStatus:
		return "status"
	case EmulatorRun:
		return "run"
	default:
		return fmt.Sprintf("EmulatorOp(%d)", uint8(op))
	}
}

// EmulatorReq is the body of a VS_EMULATOR.REQ.
type EmulatorReq struct {
	Op EmulatorOp
	// DurationMicros is the virtual time to advance (EmulatorRun only).
	DurationMicros uint64
}

// emulatorReqLen: op(1) + duration(8).
const emulatorReqLen = 9

// Marshal encodes the request body.
func (r *EmulatorReq) Marshal() []byte {
	b := make([]byte, emulatorReqLen)
	b[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(b[1:9], r.DurationMicros)
	return b
}

// UnmarshalEmulatorReq decodes and validates a request body.
func UnmarshalEmulatorReq(b []byte) (*EmulatorReq, error) {
	if len(b) < emulatorReqLen {
		return nil, fmt.Errorf("%w: emulator request %d bytes, need %d", ErrPayload, len(b), emulatorReqLen)
	}
	r := &EmulatorReq{Op: EmulatorOp(b[0]), DurationMicros: binary.LittleEndian.Uint64(b[1:9])}
	if r.Op > EmulatorRun {
		return nil, fmt.Errorf("%w: unknown emulator op %d", ErrPayload, b[0])
	}
	if r.Op == EmulatorRun && r.DurationMicros == 0 {
		return nil, fmt.Errorf("%w: run with zero duration", ErrPayload)
	}
	return r, nil
}

// EmulatorCnf is the body of a VS_EMULATOR.CNF.
type EmulatorCnf struct {
	Status uint8 // 0 = success
	// ClockMicros is the emulator's virtual clock after the operation.
	ClockMicros uint64
}

// emulatorCnfLen: status(1) + clock(8).
const emulatorCnfLen = 9

// Marshal encodes the confirmation body.
func (c *EmulatorCnf) Marshal() []byte {
	b := make([]byte, emulatorCnfLen)
	b[0] = c.Status
	binary.LittleEndian.PutUint64(b[1:9], c.ClockMicros)
	return b
}

// UnmarshalEmulatorCnf decodes a confirmation body.
func UnmarshalEmulatorCnf(b []byte) (*EmulatorCnf, error) {
	if len(b) < emulatorCnfLen {
		return nil, fmt.Errorf("%w: emulator confirm %d bytes, need %d", ErrPayload, len(b), emulatorCnfLen)
	}
	return &EmulatorCnf{Status: b[0], ClockMicros: binary.LittleEndian.Uint64(b[1:9])}, nil
}
