package hpav

import (
	"encoding/binary"
	"fmt"
)

// IEEE 1901 aggregates multiple Ethernet frames into one PLC frame
// (Section 3.1): "The data are organized in physical blocks (PBs),
// which are blocks of 512 bytes. Then, the PBs are organized in a MAC
// protocol data unit (MPDU)". The aggregation sublayer below frames
// each Ethernet frame with a 2-byte length prefix inside the MPDU
// payload stream, which is then cut into PBs by the PHY — the standard
// uses a richer ATS/confounder encoding, but the length-prefixed stream
// preserves the property the experiments need: payload size determines
// PB count determines frame duration.

// maxAggregatedFrame bounds a single Ethernet frame inside an MPDU.
const maxAggregatedFrame = 1518

// Aggregate packs Ethernet frames into a single MPDU payload stream.
// It returns an error if any frame is empty or oversized — the caller
// (the MAC's aggregation timeout logic) decides how many frames fit.
func Aggregate(frames [][]byte) ([]byte, error) {
	var total int
	for i, f := range frames {
		if len(f) == 0 {
			return nil, fmt.Errorf("hpav: aggregate: frame %d is empty", i)
		}
		if len(f) > maxAggregatedFrame {
			return nil, fmt.Errorf("hpav: aggregate: frame %d is %d bytes (max %d)", i, len(f), maxAggregatedFrame)
		}
		total += 2 + len(f)
	}
	out := make([]byte, 0, total)
	for _, f := range frames {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(f)))
		out = append(out, l[:]...)
		out = append(out, f...)
	}
	return out, nil
}

// Disaggregate recovers the Ethernet frames from an MPDU payload
// stream. Trailing zero padding (PB alignment) is tolerated: a zero
// length prefix terminates the stream, since no aggregated frame may be
// empty.
func Disaggregate(payload []byte) ([][]byte, error) {
	var frames [][]byte
	off := 0
	for off+2 <= len(payload) {
		l := int(binary.LittleEndian.Uint16(payload[off : off+2]))
		if l == 0 {
			break // padding
		}
		off += 2
		if off+l > len(payload) {
			return nil, fmt.Errorf("hpav: disaggregate: frame of %d bytes truncated at offset %d", l, off)
		}
		if l > maxAggregatedFrame {
			return nil, fmt.Errorf("hpav: disaggregate: frame of %d bytes exceeds maximum %d", l, maxAggregatedFrame)
		}
		frames = append(frames, payload[off:off+l])
		off += l
	}
	return frames, nil
}
