package model

import (
	"fmt"
	"math"

	"repro/internal/config"
)

// Group is a set of identically configured stations inside a
// heterogeneous contention domain.
type Group struct {
	// N is the number of stations in the group.
	N int
	// Params is the group's CSMA/CA configuration.
	Params config.Params
	// ErrorProb is the per-frame channel error probability in [0, 1]:
	// a transmission that wins the medium alone is still lost with this
	// probability. It folds into the fixed point's success term — an
	// attempt returns to stage 0 w.p. (1−γ)(1−ErrorProb) — because the
	// destination acknowledges the errored frame with an all-blocks-
	// errored indication and the transmitter advances its backoff stage
	// exactly like a collision. 0 keeps the paper's error-free channel.
	ErrorProb float64
}

// HeteroPrediction is the multi-group fixed point: per-group attempt
// probabilities and collision probabilities, plus derived per-group
// throughput shares.
type HeteroPrediction struct {
	// Tau[i] is group i's per-slot attempt probability.
	Tau []float64
	// Gamma[i] is group i's conditional collision probability:
	// 1 − Π_j (1−τ_j)^(n_j − [i=j]).
	Gamma []float64
	// Iterations used by the solver.
	Iterations int
}

// SolveHeterogeneous extends the decoupling fixed point to multiple
// station groups with different (cw, dc) configurations — the model
// needed to analyze coexistence between boosted and default stations.
// Each group's station solves the same renewal-reward equation as in
// the homogeneous model, but against a busy probability composed from
// every other station's attempt rate:
//
//	p_i = 1 − (1−τ_i)^(n_i−1) · Π_{j≠i} (1−τ_j)^(n_j)
//
// The joint fixed point is solved by damped simultaneous iteration.
func SolveHeterogeneous(groups []Group, opts Options) (HeteroPrediction, error) {
	if len(groups) == 0 {
		return HeteroPrediction{}, fmt.Errorf("model: no groups")
	}
	total := 0
	for i, g := range groups {
		if g.N < 1 {
			return HeteroPrediction{}, fmt.Errorf("model: group %d has N=%d", i, g.N)
		}
		if err := g.Params.Validate(); err != nil {
			return HeteroPrediction{}, fmt.Errorf("model: group %d: %w", i, err)
		}
		if g.ErrorProb < 0 || g.ErrorProb > 1 || math.IsNaN(g.ErrorProb) {
			return HeteroPrediction{}, fmt.Errorf("model: group %d: error probability %v outside [0, 1]", i, g.ErrorProb)
		}
		total += g.N
	}
	opts = opts.withDefaults()

	k := len(groups)
	if total == 1 {
		// A lone station sees an idle medium: p = 0 exactly, mirroring
		// the homogeneous solver's N=1 fast path (the damped iteration
		// would only approach this value geometrically).
		g := groups[0]
		t, _ := tauGivenSucc(g.Params, 0, 1-g.ErrorProb)
		return HeteroPrediction{Tau: []float64{t}, Gamma: []float64{0}, Iterations: 0}, nil
	}
	tau := make([]float64, k)
	for i := range tau {
		tau[i] = 0.1
	}

	next := make([]float64, k)
	for it := 1; it <= opts.MaxIterations; it++ {
		var maxDelta float64
		for i, g := range groups {
			p := gammaOf(tau, groups, i)
			v, _ := tauGivenSucc(g.Params, p, (1-p)*(1-g.ErrorProb))
			next[i] = tau[i] + opts.Damping*(v-tau[i])
			if d := math.Abs(next[i] - tau[i]); d > maxDelta {
				maxDelta = d
			}
		}
		copy(tau, next)
		if maxDelta < opts.Tolerance {
			pred := HeteroPrediction{Tau: tau, Gamma: make([]float64, k), Iterations: it}
			for i := range groups {
				pred.Gamma[i] = gammaOf(tau, groups, i)
			}
			return pred, nil
		}
	}
	return HeteroPrediction{}, ErrNoConvergence
}

// gammaOf is group i's conditional collision probability given the
// current attempt rates: 1 − Π_j (1−τ_j)^(n_j − [i=j]). Runs of groups
// sharing the same τ are collapsed into one math.Pow call with the
// summed exponent, so that k identically configured groups — whose τ
// stay equal throughout the iteration by symmetry — reproduce the
// homogeneous solver's 1 − (1−τ)^(N−1) bit for bit.
func gammaOf(tau []float64, groups []Group, i int) float64 {
	q := 1.0
	for j := 0; j < len(tau); {
		base := 1 - tau[j]
		exp := groups[j].N
		if j == i {
			exp--
		}
		k := j + 1
		for k < len(tau) && 1-tau[k] == base {
			exp += groups[k].N
			if k == i {
				exp--
			}
			k++
		}
		if exp > 0 {
			q *= math.Pow(base, float64(exp))
		}
		j = k
	}
	return 1 - q
}

// HeteroMetrics derives time-based metrics from a heterogeneous fixed
// point: throughput shares plus the per-virtual-slot rates the scenario
// layer converts into expected event counts.
type HeteroMetrics struct {
	// GroupThroughput[i] is group i's normalized throughput (all its
	// stations combined).
	GroupThroughput []float64
	// PerStationThroughput[i] is one group-i station's share.
	PerStationThroughput []float64
	// TotalThroughput sums the groups.
	TotalThroughput float64
	// MeanSlotDuration is E[σ] in µs.
	MeanSlotDuration float64
	// CollisionProbability is the attempt-weighted ΣC/ΣA the paper's
	// counters measure: Σ n_i·τ_i·γ_i / Σ n_i·τ_i. Errored frames sit in
	// the denominator (the destination acknowledges them), so the
	// definition matches the simulator's with channel errors enabled.
	CollisionProbability float64
	// SlotIdle, SlotSingle and SlotCollision are the per-virtual-slot
	// outcome probabilities. SlotSingle counts every single-transmitter
	// slot — successes and channel-errored frames both occupy Ts.
	SlotIdle, SlotSingle, SlotCollision float64
	// AttemptRate, SuccessRate, CollidedRate and ErrorRate are expected
	// frames per virtual slot: attempts Σ n_i·τ_i, delivered frames
	// Σ n_i·τ_i·(1−γ_i)(1−e_i), collided frames Σ n_i·τ_i·γ_i, and
	// channel-errored frames Σ n_i·τ_i·(1−γ_i)·e_i.
	AttemptRate, SuccessRate, CollidedRate, ErrorRate float64
}

// HeteroMetricsFor evaluates the time-based metrics of a heterogeneous
// prediction. The per-slot delivery probability of a group-i station is
// τ_i(1−γ_i)(1−e_i); the slot-duration composition follows the
// homogeneous construction with the aggregate idle/busy probabilities
// (an errored single-transmitter slot occupies Ts like a success).
func HeteroMetricsFor(pred HeteroPrediction, groups []Group, tm Timing) HeteroMetrics {
	pIdle := 1.0
	for j, g := range groups {
		pIdle *= math.Pow(1-pred.Tau[j], float64(g.N))
	}
	var pSingle float64
	m := HeteroMetrics{
		GroupThroughput:      make([]float64, len(groups)),
		PerStationThroughput: make([]float64, len(groups)),
	}
	groupSucc := make([]float64, len(groups))
	for i, g := range groups {
		a := float64(g.N) * pred.Tau[i]
		s := a * (1 - pred.Gamma[i])
		groupSucc[i] = s * (1 - g.ErrorProb)
		pSingle += s
		m.AttemptRate += a
		m.CollidedRate += a * pred.Gamma[i]
		m.ErrorRate += s * g.ErrorProb
		m.SuccessRate += groupSucc[i]
	}
	pColl := 1 - pIdle - pSingle
	if pColl < 0 {
		pColl = 0
	}
	es := pIdle*tm.Slot + pSingle*tm.Ts + pColl*tm.Tc
	m.SlotIdle, m.SlotSingle, m.SlotCollision = pIdle, pSingle, pColl
	m.MeanSlotDuration = es
	if m.AttemptRate > 0 {
		m.CollisionProbability = m.CollidedRate / m.AttemptRate
	}
	if es <= 0 {
		return m
	}
	for i, g := range groups {
		m.GroupThroughput[i] = groupSucc[i] * tm.FrameLength / es
		m.PerStationThroughput[i] = m.GroupThroughput[i] / float64(g.N)
		m.TotalThroughput += m.GroupThroughput[i]
	}
	return m
}
