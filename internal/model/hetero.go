package model

import (
	"fmt"
	"math"

	"repro/internal/config"
)

// Group is a set of identically configured stations inside a
// heterogeneous contention domain.
type Group struct {
	// N is the number of stations in the group.
	N int
	// Params is the group's CSMA/CA configuration.
	Params config.Params
}

// HeteroPrediction is the multi-group fixed point: per-group attempt
// probabilities and collision probabilities, plus derived per-group
// throughput shares.
type HeteroPrediction struct {
	// Tau[i] is group i's per-slot attempt probability.
	Tau []float64
	// Gamma[i] is group i's conditional collision probability:
	// 1 − Π_j (1−τ_j)^(n_j − [i=j]).
	Gamma []float64
	// Iterations used by the solver.
	Iterations int
}

// SolveHeterogeneous extends the decoupling fixed point to multiple
// station groups with different (cw, dc) configurations — the model
// needed to analyze coexistence between boosted and default stations.
// Each group's station solves the same renewal-reward equation as in
// the homogeneous model, but against a busy probability composed from
// every other station's attempt rate:
//
//	p_i = 1 − (1−τ_i)^(n_i−1) · Π_{j≠i} (1−τ_j)^(n_j)
//
// The joint fixed point is solved by damped simultaneous iteration.
func SolveHeterogeneous(groups []Group, opts Options) (HeteroPrediction, error) {
	if len(groups) == 0 {
		return HeteroPrediction{}, fmt.Errorf("model: no groups")
	}
	total := 0
	for i, g := range groups {
		if g.N < 1 {
			return HeteroPrediction{}, fmt.Errorf("model: group %d has N=%d", i, g.N)
		}
		if err := g.Params.Validate(); err != nil {
			return HeteroPrediction{}, fmt.Errorf("model: group %d: %w", i, err)
		}
		total += g.N
	}
	opts = opts.withDefaults()

	k := len(groups)
	tau := make([]float64, k)
	for i := range tau {
		tau[i] = 0.1
	}
	gammaOf := func(tau []float64, i int) float64 {
		q := 1.0
		for j, g := range groups {
			exp := float64(g.N)
			if j == i {
				exp--
			}
			q *= math.Pow(1-tau[j], exp)
		}
		return 1 - q
	}

	next := make([]float64, k)
	for it := 1; it <= opts.MaxIterations; it++ {
		var maxDelta float64
		for i, g := range groups {
			p := gammaOf(tau, i)
			v, _ := tauGivenP(g.Params, p)
			next[i] = tau[i] + opts.Damping*(v-tau[i])
			if d := math.Abs(next[i] - tau[i]); d > maxDelta {
				maxDelta = d
			}
		}
		copy(tau, next)
		if maxDelta < opts.Tolerance {
			pred := HeteroPrediction{Tau: tau, Gamma: make([]float64, k), Iterations: it}
			for i := range groups {
				pred.Gamma[i] = gammaOf(tau, i)
			}
			return pred, nil
		}
	}
	return HeteroPrediction{}, ErrNoConvergence
}

// HeteroMetrics derives throughput shares from a heterogeneous fixed
// point.
type HeteroMetrics struct {
	// GroupThroughput[i] is group i's normalized throughput (all its
	// stations combined).
	GroupThroughput []float64
	// PerStationThroughput[i] is one group-i station's share.
	PerStationThroughput []float64
	// TotalThroughput sums the groups.
	TotalThroughput float64
	// MeanSlotDuration is E[σ] in µs.
	MeanSlotDuration float64
}

// HeteroMetricsFor evaluates the time-based metrics of a heterogeneous
// prediction. The per-slot success probability of a group-i station is
// τ_i(1−γ_i); the slot-duration composition follows the homogeneous
// construction with the aggregate idle/success probabilities.
func HeteroMetricsFor(pred HeteroPrediction, groups []Group, tm Timing) HeteroMetrics {
	pIdle := 1.0
	for j, g := range groups {
		pIdle *= math.Pow(1-pred.Tau[j], float64(g.N))
	}
	var pSucc float64
	groupSucc := make([]float64, len(groups))
	for i, g := range groups {
		s := float64(g.N) * pred.Tau[i] * (1 - pred.Gamma[i])
		groupSucc[i] = s
		pSucc += s
	}
	pColl := 1 - pIdle - pSucc
	if pColl < 0 {
		pColl = 0
	}
	es := pIdle*tm.Slot + pSucc*tm.Ts + pColl*tm.Tc

	m := HeteroMetrics{
		GroupThroughput:      make([]float64, len(groups)),
		PerStationThroughput: make([]float64, len(groups)),
		MeanSlotDuration:     es,
	}
	if es <= 0 {
		return m
	}
	for i, g := range groups {
		m.GroupThroughput[i] = groupSucc[i] * tm.FrameLength / es
		m.PerStationThroughput[i] = m.GroupThroughput[i] / float64(g.N)
		m.TotalThroughput += m.GroupThroughput[i]
	}
	return m
}
