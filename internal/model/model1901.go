package model

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/timing"
)

// StageQuantities are the per-backoff-stage ingredients of the model for
// a given medium-busy probability p: the probability that a visit to the
// stage ends with a transmission attempt (as opposed to a deferral jump)
// and the expected number of virtual slots a visit consumes.
type StageQuantities struct {
	// Attempt is x_i = P(the station's backoff expires before its
	// deferral counter forces a jump) = E_b[P(Bin(b, p) ≤ d_i)] with b
	// uniform in {0,…,CW_i−1}.
	Attempt float64
	// Slots is E[T_i]: expected virtual slots per visit, counting the
	// transmission slot when attempting and the jump-triggering busy
	// slot when deferring.
	Slots float64
}

// Stage computes the quantities for one stage: contention window w,
// initial deferral counter d, medium-busy probability p.
//
// Derivation (matching the published simulator's semantics exactly):
// after the redraw the station holds BC = b ~ U{0,…,w−1} and DC = d.
// Every observed virtual slot is busy independently with probability p.
// A busy slot observed while DC = 0 causes a jump; otherwise a busy slot
// decrements both counters and an idle slot decrements BC only. Hence
// the station attempts iff at most d of its first b observed slots are
// busy, and otherwise jumps at the (d+1)-th busy slot.
// The implementation is O(w): it advances three recurrences in b —
// T(b) = P(Bin(b,p) ≤ d) via T(b+1) = T(b) − p·P(Bin(b,p) = d),
// the pmf f(b) = P(Bin(b,p) = d) via its ratio recurrence, and the
// partial jump-cost sum S(b) = Σ_{k=d+1}^{b} k·P(first (d+1)-th busy at
// k) via the negative-binomial ratio recurrence — instead of evaluating
// each tail from scratch (stageDirect in the tests does exactly that
// and pins this implementation down).
func Stage(w, d int, p float64) StageQuantities {
	q := 1 - p
	tail := 1.0 // T(b): P(Bin(b,p) ≤ d); T(0) = 1
	var pmf float64
	if d == 0 {
		pmf = 1 // f(0) = P(Bin(0,p) = 0)
	}
	var nb, jumpSum float64 // nb(b), S(b)

	var attempt, slots float64
	for b := 0; b < w; b++ {
		if b > 0 {
			tail -= p * pmf // T(b) from T(b−1), f(b−1)
			switch {
			case b < d:
				pmf = 0
			case b == d:
				pmf = math.Pow(p, float64(d))
			default: // b > d
				pmf *= q * float64(b) / float64(b-d)
			}
			switch {
			case b == d+1:
				nb = math.Pow(p, float64(d+1))
			case b > d+1:
				nb *= q * float64(b-1) / float64(b-1-d)
			}
			if b >= d+1 {
				jumpSum += nb * float64(b)
			}
		}
		attempt += tail
		// Attempt path: b backoff slots + 1 transmission slot; jump
		// path: the (d+1)-th busy observation, which arrived at slot
		// k ≤ b, closes the stage after k slots.
		slots += tail*float64(b+1) + jumpSum
	}
	inv := 1 / float64(w)
	return StageQuantities{Attempt: attempt * inv, Slots: slots * inv}
}

// Prediction is the model's output for one scenario.
type Prediction struct {
	// Tau is the per-virtual-slot transmission attempt probability τ.
	Tau float64
	// Gamma is the conditional collision probability
	// γ = 1 − (1−τ)^(N−1); with the all-frames-acked accounting of the
	// paper's measurements this is also the predicted ΣCᵢ/ΣAᵢ.
	Gamma float64
	// BusyProbability is p, equal to Gamma under the decoupling
	// assumption (any other station transmits).
	BusyProbability float64
	// StageDistribution π_i is the stationary fraction of stage visits
	// spent at each backoff stage.
	StageDistribution []float64
	// Iterations used by the fixed-point solver.
	Iterations int
}

// Options tune the fixed-point solver. The zero value asks for defaults.
type Options struct {
	// Damping in (0,1]: fraction of the new iterate mixed in per step.
	// Default 0.25 — the map is a contraction for all Table 1 configs,
	// but heavy damping keeps exotic boosting candidates convergent.
	Damping float64
	// Tolerance on |τ' − τ|. Default 1e-12.
	Tolerance float64
	// MaxIterations before falling back to bisection. Default 10000.
	MaxIterations int
}

func (o Options) withDefaults() Options {
	if o.Damping <= 0 || o.Damping > 1 {
		o.Damping = 0.25
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-12
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 10000
	}
	return o
}

// ErrNoConvergence is returned when neither damped iteration nor the
// bisection fallback reaches the tolerance (practically unreachable for
// valid inputs; kept for API honesty).
var ErrNoConvergence = errors.New("model: fixed point did not converge")

// tauGivenP evaluates the renewal-reward attempt rate τ(p) for a station
// running params against a medium busy with probability p per slot and
// an error-free channel: an attempt succeeds exactly when it does not
// collide, so the per-attempt success probability is 1−γ = 1−p.
func tauGivenP(params config.Params, p float64) (tau float64, pi []float64) {
	return tauGivenSucc(params, p, 1-p)
}

// tauGivenSucc evaluates the renewal-reward attempt rate τ for a station
// running params against a medium busy with probability p per slot, when
// each transmission attempt succeeds (returns the station to stage 0)
// with probability succ. With an error-free channel succ = 1−γ; a
// per-frame channel error probability e folds in as succ = (1−γ)(1−e),
// since an errored frame is acknowledged with the all-blocks-errored
// indication and advances the backoff stage exactly like a collision.
//
// Stage chain: a visit to stage i ends in an attempt w.p. x_i. An
// attempt succeeds w.p. succ (→ stage 0) and fails otherwise (→ next
// stage); a deferral jump also moves to the next stage; the last stage
// re-enters itself. The chain's visit distribution π solves
//
//	π_0 = Σ_i π_i·x_i·succ,  π_i = π_{i−1}·(1 − x_{i−1}·succ) (i<m−1)
//	π_{m−1} = π_{m−2}·(1−x_{m−2}·succ) / (x_{m−1}·succ)  [self-loop]
//
// and τ = Σπ_i·x_i / Σπ_i·E[T_i].
func tauGivenSucc(params config.Params, p, succ float64) (tau float64, pi []float64) {
	m := params.Stages()
	sq := make([]StageQuantities, m)
	for i := 0; i < m; i++ {
		sq[i] = Stage(params.CW[i], params.DC[i], p)
	}

	// Unnormalized visit rates, v_0 = 1.
	v := make([]float64, m)
	v[0] = 1
	for i := 1; i < m; i++ {
		leaveToNext := 1 - sq[i-1].Attempt*succ
		v[i] = v[i-1] * leaveToNext
	}
	// The last stage self-loops with probability 1 − x_{m−1}·succ: its
	// total visit rate is the inflow divided by the escape probability.
	if m > 1 {
		escape := sq[m-1].Attempt * succ
		// v[m-1] counts only first entries per cycle; the total visit
		// rate scales by expected visits per entry, 1/escape. When the
		// station can never leave the last stage (escape = 0, or so
		// small the division overflows), the visit distribution
		// concentrates there and the renewal-reward ratio has the
		// defined limit τ = x_{m−1}/E[T_{m−1}] — return it explicitly
		// instead of letting ±Inf/Inf produce NaN.
		if escape <= 0 || math.IsInf(v[m-1]/escape, 0) {
			pi = make([]float64, m)
			pi[m-1] = 1
			return sq[m-1].Attempt / sq[m-1].Slots, pi
		}
		v[m-1] /= escape
	}

	var num, den, sum float64
	for i := 0; i < m; i++ {
		num += v[i] * sq[i].Attempt
		den += v[i] * sq[i].Slots
		sum += v[i]
	}
	pi = make([]float64, m)
	for i := range pi {
		pi[i] = v[i] / sum
	}
	if den == 0 {
		return 1, pi // every stage attempts immediately (all CW = 1)
	}
	return num / den, pi
}

// Solve computes the model's fixed point for N stations running params.
func Solve(n int, params config.Params, opts Options) (Prediction, error) {
	if n < 1 {
		return Prediction{}, fmt.Errorf("model: N=%d must be ≥ 1", n)
	}
	if err := params.Validate(); err != nil {
		return Prediction{}, err
	}
	opts = opts.withDefaults()

	if n == 1 {
		// No contention: p = 0 exactly.
		tau, pi := tauGivenP(params, 0)
		return Prediction{Tau: tau, Gamma: 0, BusyProbability: 0, StageDistribution: pi, Iterations: 0}, nil
	}

	pOfTau := func(tau float64) float64 {
		return 1 - math.Pow(1-tau, float64(n-1))
	}

	// Damped fixed-point iteration on τ.
	tau := 0.1
	var pi []float64
	for it := 1; it <= opts.MaxIterations; it++ {
		p := pOfTau(tau)
		var next float64
		next, pi = tauGivenP(params, p)
		newTau := tau + opts.Damping*(next-tau)
		if math.Abs(newTau-tau) < opts.Tolerance {
			tau = newTau
			g := pOfTau(tau)
			return Prediction{Tau: tau, Gamma: g, BusyProbability: g, StageDistribution: pi, Iterations: it}, nil
		}
		tau = newTau
	}

	// Bisection fallback on f(τ) = τ(p(τ)) − τ, which is positive at
	// τ→0⁺ and negative at τ→1⁻ for any contention-creating config.
	lo, hi := 1e-9, 1-1e-9
	f := func(t float64) float64 {
		v, _ := tauGivenP(params, pOfTau(t))
		return v - t
	}
	flo := f(lo)
	for it := 0; it < 200; it++ {
		mid := (lo + hi) / 2
		fm := f(mid)
		if math.Abs(hi-lo) < opts.Tolerance {
			tau = mid
			_, pi = tauGivenP(params, pOfTau(tau))
			g := pOfTau(tau)
			return Prediction{Tau: tau, Gamma: g, BusyProbability: g, StageDistribution: pi, Iterations: opts.MaxIterations + it}, nil
		}
		if (fm >= 0) == (flo >= 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return Prediction{}, ErrNoConvergence
}

// Metrics derived from a prediction for a concrete slot/frame timing.
type Metrics struct {
	// CollisionProbability is the paper's per-frame measure ΣC/ΣA = γ.
	CollisionProbability float64
	// NormalizedThroughput is successful payload time over total time.
	NormalizedThroughput float64
	// SlotIdle, SlotSuccess, SlotCollision are the per-virtual-slot
	// outcome probabilities.
	SlotIdle, SlotSuccess, SlotCollision float64
	// MeanSlotDuration is E[σ] in µs.
	MeanSlotDuration float64
	// MeanAccessDelay is the model's saturated head-of-line delay in
	// µs: a tagged station succeeds with per-slot probability τ(1−γ),
	// so it waits 1/(τ(1−γ)) virtual slots of mean duration E[σ]
	// between consecutive successful transmissions.
	MeanAccessDelay float64
}

// Timing groups the busy-period durations used to convert per-slot
// probabilities into time-based metrics.
type Timing struct {
	Slot        float64 // idle slot duration (µs)
	Ts          float64 // successful transmission duration (µs)
	Tc          float64 // collision duration (µs)
	FrameLength float64 // useful payload duration inside Ts (µs)
}

// DefaultTiming reproduces the paper's simulator invocation.
func DefaultTiming() Timing {
	return Timing{
		Slot:        timing.SlotTime,
		Ts:          timing.DefaultSuccessDuration,
		Tc:          timing.DefaultCollisionDuration,
		FrameLength: timing.DefaultFrameDuration,
	}
}

// MetricsFor converts a fixed-point prediction into time-based metrics
// for N stations with the given timing.
func MetricsFor(pred Prediction, n int, tm Timing) Metrics {
	tau := pred.Tau
	pIdle := math.Pow(1-tau, float64(n))
	pSucc := float64(n) * tau * math.Pow(1-tau, float64(n-1))
	pColl := 1 - pIdle - pSucc
	if pColl < 0 {
		pColl = 0
	}
	es := pIdle*tm.Slot + pSucc*tm.Ts + pColl*tm.Tc
	m := Metrics{
		CollisionProbability: pred.Gamma,
		SlotIdle:             pIdle,
		SlotSuccess:          pSucc,
		SlotCollision:        pColl,
		MeanSlotDuration:     es,
	}
	if es > 0 {
		m.NormalizedThroughput = pSucc * tm.FrameLength / es
	}
	if rate := tau * (1 - pred.Gamma); rate > 0 {
		m.MeanAccessDelay = es / rate
	}
	return m
}

// Predict is the one-call convenience used by the experiment harness:
// fixed point plus metrics for the default timing.
func Predict(n int, params config.Params) (Prediction, Metrics, error) {
	pred, err := Solve(n, params, Options{})
	if err != nil {
		return Prediction{}, Metrics{}, err
	}
	return pred, MetricsFor(pred, n, DefaultTiming()), nil
}
