package model

import (
	"math"
	"testing"

	"repro/internal/config"
)

func loadedTiming() Timing { return DefaultTiming() }

// classOf fails the test unless the solution has the class.
func classOf(t *testing.T, sol *LoadedSolution, p config.Priority) *ClassSolution {
	t.Helper()
	cs := sol.ClassFor(p)
	if cs == nil {
		t.Fatalf("solution has no class %s: %+v", p, sol)
	}
	return cs
}

// wallSuccessRate is a class's delivered frames per wall-clock µs.
func wallSuccessRate(cs *ClassSolution) float64 {
	if cs.Starved || cs.Met.MeanSlotDuration <= 0 {
		return 0
	}
	return cs.Share * cs.Met.SuccessRate / cs.Met.MeanSlotDuration
}

// TestLoadedAllSaturatedMatchesHeterogeneousBitForBit pins the
// delegation: an all-saturated single-class input must reproduce the
// plain heterogeneous solver exactly, so widening the model cannot move
// a single bit of any previously answerable scenario.
func TestLoadedAllSaturatedMatchesHeterogeneousBitForBit(t *testing.T) {
	groups := []Group{
		{N: 5, Params: config.Default1901(config.CA1), ErrorProb: 0.1},
		{N: 3, Params: config.Default1901(config.CA3)},
	}
	loaded := make([]LoadedGroup, len(groups))
	for i, g := range groups {
		loaded[i] = LoadedGroup{Group: g, Priority: config.CA1, Saturated: true}
	}
	sol, err := SolveLoaded(loaded, loadedTiming(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := SolveHeterogeneous(groups, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := HeteroMetricsFor(pred, groups, loadedTiming())
	cs := classOf(t, sol, config.CA1)
	if cs.Share != 1 || cs.Starved {
		t.Fatalf("single class must own the timeline: %+v", cs)
	}
	for i := range groups {
		if cs.Tau[i] != pred.Tau[i] || cs.Gamma[i] != pred.Gamma[i] {
			t.Fatalf("group %d fixed point moved: tau %v vs %v, gamma %v vs %v",
				i, cs.Tau[i], pred.Tau[i], cs.Gamma[i], pred.Gamma[i])
		}
		if cs.Availability[i] != 1 {
			t.Fatalf("saturated group %d availability = %v, want 1", i, cs.Availability[i])
		}
		if cs.Met.GroupThroughput[i] != want.GroupThroughput[i] {
			t.Fatalf("group %d throughput moved: %v vs %v", i, cs.Met.GroupThroughput[i], want.GroupThroughput[i])
		}
	}
	if cs.Met.TotalThroughput != want.TotalThroughput ||
		cs.Met.CollisionProbability != want.CollisionProbability ||
		cs.Met.MeanSlotDuration != want.MeanSlotDuration {
		t.Fatalf("aggregate metrics moved:\n got %+v\nwant %+v", cs.Met, want)
	}
}

// TestLoadedFlowConservation: a stable unsaturated station delivers
// exactly its arrival rate — collisions and channel errors only stretch
// the queue, every frame is retried until acknowledged. The fixed point
// encodes this by construction; the test checks the solver actually
// reaches it, across loads and error probabilities.
func TestLoadedFlowConservation(t *testing.T) {
	tm := loadedTiming()
	for _, tc := range []struct {
		name string
		lam  float64 // per-station frames/µs
		err  float64
		n    int
	}{
		{"light", 1.0 / 80000, 0, 4},
		{"light-errors", 1.0 / 80000, 0.3, 4},
		{"medium", 1.0 / 25000, 0, 6},
		{"medium-errors", 1.0 / 25000, 0.15, 6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := LoadedGroup{
				Group:       Group{N: tc.n, Params: config.Default1901(config.CA1), ErrorProb: tc.err},
				Priority:    config.CA1,
				ArrivalRate: tc.lam,
			}
			sol, err := SolveLoaded([]LoadedGroup{g}, tm, Options{})
			if err != nil {
				t.Fatal(err)
			}
			cs := classOf(t, sol, config.CA1)
			if cs.Availability[0] >= 1 {
				t.Fatalf("load %v should be stable, got availability %v", tc.lam, cs.Availability[0])
			}
			got := wallSuccessRate(cs)
			want := float64(tc.n) * tc.lam
			if rel := math.Abs(got-want) / want; rel > 1e-6 {
				t.Fatalf("delivered %v frames/µs, offered %v (rel err %v)", got, want, rel)
			}
		})
	}
}

// TestLoadedOverloadSaturates: an arrival rate beyond the saturation
// capacity clamps availability at 1 and reproduces the saturated fixed
// point exactly.
func TestLoadedOverloadSaturates(t *testing.T) {
	tm := loadedTiming()
	params := config.Default1901(config.CA1)
	over := []LoadedGroup{{
		Group:       Group{N: 8, Params: params},
		Priority:    config.CA1,
		ArrivalRate: 1.0, // one frame per µs per station: far beyond capacity
	}}
	sat := []LoadedGroup{{
		Group:     Group{N: 8, Params: params},
		Priority:  config.CA1,
		Saturated: true,
	}}
	so, err := SolveLoaded(over, tm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := SolveLoaded(sat, tm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	co, cs := classOf(t, so, config.CA1), classOf(t, ss, config.CA1)
	if co.Availability[0] != 1 {
		t.Fatalf("overloaded availability = %v, want exactly 1", co.Availability[0])
	}
	if d := math.Abs(co.Tau[0] - cs.Tau[0]); d > 1e-9 {
		t.Fatalf("overloaded tau %v != saturated tau %v (|Δ| %v)", co.Tau[0], cs.Tau[0], d)
	}
	if d := math.Abs(co.Met.TotalThroughput - cs.Met.TotalThroughput); d > 1e-9 {
		t.Fatalf("overloaded throughput %v != saturated %v", co.Met.TotalThroughput, cs.Met.TotalThroughput)
	}
}

// TestLoadedThroughputMonotoneInLoad: delivered rate is non-decreasing
// in the offered load and never exceeds the saturated ceiling.
func TestLoadedThroughputMonotoneInLoad(t *testing.T) {
	tm := loadedTiming()
	params := config.Default1901(config.CA1)
	sat, err := SolveLoaded([]LoadedGroup{{
		Group: Group{N: 10, Params: params}, Priority: config.CA1, Saturated: true,
	}}, tm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ceiling := wallSuccessRate(classOf(t, sat, config.CA1))
	prev := 0.0
	for _, lam := range []float64{1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1e-3, 4e-3} {
		sol, err := SolveLoaded([]LoadedGroup{{
			Group: Group{N: 10, Params: params}, Priority: config.CA1, ArrivalRate: lam,
		}}, tm, Options{})
		if err != nil {
			t.Fatalf("λ=%v: %v", lam, err)
		}
		got := wallSuccessRate(classOf(t, sol, config.CA1))
		if got+1e-9 < prev {
			t.Fatalf("delivered rate decreased with load: λ=%v gives %v after %v", lam, got, prev)
		}
		if got > ceiling*(1+1e-9) {
			t.Fatalf("λ=%v delivers %v above the saturated ceiling %v", lam, got, ceiling)
		}
		prev = got
	}
}

// TestLoadedSilentGroupIsInert: a silent group changes nothing for its
// contenders — it never attempts, so the saturated group's fixed point
// matches the solo solution.
func TestLoadedSilentGroupIsInert(t *testing.T) {
	tm := loadedTiming()
	params := config.Default1901(config.CA1)
	mixed, err := SolveLoaded([]LoadedGroup{
		{Group: Group{N: 6, Params: params}, Priority: config.CA1, Saturated: true},
		{Group: Group{N: 4, Params: params}, Priority: config.CA1}, // silent
	}, tm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := SolveLoaded([]LoadedGroup{
		{Group: Group{N: 6, Params: params}, Priority: config.CA1, Saturated: true},
	}, tm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cm, cs := classOf(t, mixed, config.CA1), classOf(t, solo, config.CA1)
	if cm.Availability[1] != 0 {
		t.Fatalf("silent availability = %v, want 0", cm.Availability[1])
	}
	if d := math.Abs(cm.Tau[0] - cs.Tau[0]); d > 1e-9 {
		t.Fatalf("silent group moved the saturated tau: %v vs %v", cm.Tau[0], cs.Tau[0])
	}
	if d := math.Abs(cm.Met.TotalThroughput - cs.Met.TotalThroughput); d > 1e-9 {
		t.Fatalf("silent group moved throughput: %v vs %v", cm.Met.TotalThroughput, cs.Met.TotalThroughput)
	}
}

// TestLoadedPriorityStarvation: a saturated higher class owns every
// contention opportunity; everything below is exactly starved — zero
// share, zero rates — matching the event-driven MAC, where lower-class
// backoff freezes whenever a higher class has pending traffic.
func TestLoadedPriorityStarvation(t *testing.T) {
	tm := loadedTiming()
	sol, err := SolveLoaded([]LoadedGroup{
		{Group: Group{N: 3, Params: config.Default1901(config.CA3)}, Priority: config.CA3, Saturated: true},
		{Group: Group{N: 5, Params: config.Default1901(config.CA1)}, Priority: config.CA1, Saturated: true},
		{Group: Group{N: 2, Params: config.Default1901(config.CA1)}, Priority: config.CA0, ArrivalRate: 1e-4},
	}, tm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	top := classOf(t, sol, config.CA3)
	if top.Share != 1 || top.Starved {
		t.Fatalf("highest class must own the timeline: %+v", top)
	}
	solo, err := SolveHeterogeneous([]Group{{N: 3, Params: config.Default1901(config.CA3)}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if top.Tau[0] != solo.Tau[0] {
		t.Fatalf("saturated top class must match its solo fixed point: %v vs %v", top.Tau[0], solo.Tau[0])
	}
	for _, pri := range []config.Priority{config.CA1, config.CA0} {
		cs := classOf(t, sol, pri)
		if !cs.Starved || cs.Share != 0 {
			t.Fatalf("%s below a saturated class must starve: %+v", pri, cs)
		}
		if r := wallSuccessRate(cs); r != 0 {
			t.Fatalf("%s starved class delivers %v, want exactly 0", pri, r)
		}
		if cs.Met.TotalThroughput != 0 {
			t.Fatalf("%s starved throughput = %v, want 0", pri, cs.Met.TotalThroughput)
		}
	}
}

// TestLoadedPrioritySharing: a lightly loaded high class takes only its
// occupancy; the saturated class below gets the complementary share,
// shrinking monotonically as the high-class load grows, while the high
// class still delivers its full arrival rate.
func TestLoadedPrioritySharing(t *testing.T) {
	tm := loadedTiming()
	prevShare := 1.0
	for _, lam := range []float64{1e-5, 4e-5, 1.2e-4} {
		hi := LoadedGroup{
			Group: Group{N: 2, Params: config.Default1901(config.CA3)}, Priority: config.CA3, ArrivalRate: lam,
		}
		lo := LoadedGroup{
			Group: Group{N: 5, Params: config.Default1901(config.CA1)}, Priority: config.CA1, Saturated: true,
		}
		sol, err := SolveLoaded([]LoadedGroup{hi, lo}, tm, Options{})
		if err != nil {
			t.Fatalf("λ=%v: %v", lam, err)
		}
		top, bot := classOf(t, sol, config.CA3), classOf(t, sol, config.CA1)
		want := 2 * lam
		if got := wallSuccessRate(top); math.Abs(got-want)/want > 1e-6 {
			t.Fatalf("λ=%v: high class delivers %v, offered %v", lam, got, want)
		}
		if bot.Share <= 0 || bot.Share >= 1 {
			t.Fatalf("λ=%v: low-class share %v outside (0,1)", lam, bot.Share)
		}
		wantShare := math.Pow(1-top.Availability[0], float64(2))
		if math.Abs(bot.Share-wantShare) > 1e-12 {
			t.Fatalf("λ=%v: share %v != (1−a)^n = %v", lam, bot.Share, wantShare)
		}
		if bot.Share >= prevShare {
			t.Fatalf("λ=%v: low-class share %v did not shrink from %v", lam, bot.Share, prevShare)
		}
		prevShare = bot.Share
	}
}
