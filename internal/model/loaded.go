package model

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/config"
)

// LoadedGroup is one station group under the extended fixed point: the
// heterogeneous decoupling model widened with an offered load (Poisson
// arrivals or silence instead of saturation) and a channel-access
// priority class.
type LoadedGroup struct {
	Group
	// Priority is the group's 1901 channel-access class. Stations never
	// contend across classes: the priority-resolution phase elects the
	// highest class with pending traffic and only its members run the
	// backoff process.
	Priority config.Priority
	// Saturated marks an always-backlogged group (availability 1).
	Saturated bool
	// ArrivalRate is the per-station Poisson arrival rate λ in frames
	// per µs for an unsaturated group. Zero with Saturated false means
	// the group is silent (availability 0); delivered frames are
	// retried until successful, so a stable station's delivery rate is
	// exactly λ.
	ArrivalRate float64
}

// saturatedOnly reports whether the group is the classic saturated
// regime the plain heterogeneous solver covers.
func (g LoadedGroup) saturatedOnly() bool { return g.Saturated }

// silent reports whether the group never offers traffic.
func (g LoadedGroup) silent() bool { return !g.Saturated && g.ArrivalRate == 0 }

// ClassSolution is the fixed point of one priority class, solved over
// the fraction of wall-clock time the class can access the medium.
type ClassSolution struct {
	// Priority is the class this solution describes.
	Priority config.Priority
	// Share is F_c: the fraction of wall-clock time no strictly higher
	// class has pending traffic, i.e. the fraction the priority
	// resolution phase awards to this class. The highest present class
	// has Share 1; a class below a saturated one has Share 0.
	Share float64
	// Starved is true when Share is 0 and the class offers traffic it
	// can never send: its stations stay backlogged forever and every
	// rate below is exactly zero.
	Starved bool
	// GroupIndex maps the per-group slices below back to positions in
	// the SolveLoaded input.
	GroupIndex []int
	// Tau is the per-slot attempt probability of a backlogged station,
	// per group; Availability the probability the station is backlogged
	// at a slot boundary (1 for saturated, 0 for silent groups); Gamma
	// the conditional collision probability against the effective
	// attempt rates Availability·Tau.
	Tau, Availability, Gamma []float64
	// Met holds the class's per-virtual-slot rates and timing, measured
	// in the class's own medium time (multiply rates/E[σ] by Share to
	// get wall-clock rates). Zero-valued when Starved.
	Met HeteroMetrics
	// Iterations used by the class solver.
	Iterations int
}

// LoadedSolution is the joint fixed point over every priority class.
type LoadedSolution struct {
	// Classes holds one solution per present class, highest priority
	// first (the order they were solved in).
	Classes []ClassSolution
}

// ClassFor returns the solution for a class, or nil when the input had
// no group of that class.
func (s *LoadedSolution) ClassFor(p config.Priority) *ClassSolution {
	for i := range s.Classes {
		if s.Classes[i].Priority == p {
			return &s.Classes[i]
		}
	}
	return nil
}

// SolveLoaded extends the heterogeneous decoupling fixed point with an
// offered-load (unsaturated) regime and strict 1901 priority classes.
//
// Within one class, each group carries an attempt-availability
// probability a: the chance a station has a frame pending at a slot
// boundary. The effective per-slot attempt probability is a·τ, which
// replaces τ in the busy probability and the slot-state composition,
// and a itself is pinned by flow conservation — a backlogged station
// delivers τ(1−γ)(1−e) frames per virtual slot of mean duration E[σ],
// so a = min(1, λ·E[σ]/(τ(1−γ)(1−e))) — giving a joint damped fixed
// point in (τ, a). Saturated groups hold a = 1 (reducing exactly to
// SolveHeterogeneous, to which an all-saturated class delegates) and
// silent groups a = 0.
//
// Across classes, the priority-resolution phase is strict: a lower
// class transmits only while no higher-class station is backlogged.
// Under the decoupling assumption that fraction is
// F_c = Π over higher-class groups (1−a)^N, so each class solves its
// own fixed point over its share of the timeline with arrival rates
// scaled by 1/F_c; a saturated (or overloaded) higher class starves
// everything below it to exactly zero, matching the event-driven MAC's
// frozen-backoff semantics.
func SolveLoaded(groups []LoadedGroup, tm Timing, opts Options) (*LoadedSolution, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("model: no groups")
	}
	for i, g := range groups {
		if g.N < 1 {
			return nil, fmt.Errorf("model: group %d has N=%d", i, g.N)
		}
		if err := g.Params.Validate(); err != nil {
			return nil, fmt.Errorf("model: group %d: %w", i, err)
		}
		if g.ErrorProb < 0 || g.ErrorProb > 1 || math.IsNaN(g.ErrorProb) {
			return nil, fmt.Errorf("model: group %d: error probability %v outside [0, 1]", i, g.ErrorProb)
		}
		if !g.Priority.Valid() {
			return nil, fmt.Errorf("model: group %d: invalid priority %v", i, g.Priority)
		}
		if g.ArrivalRate < 0 || math.IsNaN(g.ArrivalRate) || math.IsInf(g.ArrivalRate, 0) {
			return nil, fmt.Errorf("model: group %d: arrival rate %v must be ≥ 0 and finite", i, g.ArrivalRate)
		}
		if g.Saturated && g.ArrivalRate > 0 {
			return nil, fmt.Errorf("model: group %d: saturated groups carry no arrival rate", i)
		}
	}

	// Partition by class, highest priority first: higher classes are
	// oblivious to lower ones, so they solve first and hand their
	// occupancies down.
	byClass := map[config.Priority][]int{}
	for i, g := range groups {
		byClass[g.Priority] = append(byClass[g.Priority], i)
	}
	classes := make([]config.Priority, 0, len(byClass))
	for p := range byClass {
		classes = append(classes, p)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] > classes[j] })

	out := &LoadedSolution{}
	share := 1.0
	for _, pri := range classes {
		idx := byClass[pri]
		cs, err := solveClass(pri, idx, groups, share, tm, opts)
		if err != nil {
			return nil, err
		}
		out.Classes = append(out.Classes, cs)
		// This class's occupancy shrinks the share of every class below.
		for k, gi := range idx {
			if occ := cs.Availability[k]; occ > 0 {
				share *= math.Pow(1-occ, float64(groups[gi].N))
			}
		}
	}
	return out, nil
}

// solveClass computes one class's fixed point over its wall-clock share.
func solveClass(pri config.Priority, idx []int, groups []LoadedGroup, share float64, tm Timing, opts Options) (ClassSolution, error) {
	k := len(idx)
	cs := ClassSolution{
		Priority:     pri,
		Share:        share,
		GroupIndex:   append([]int(nil), idx...),
		Tau:          make([]float64, k),
		Availability: make([]float64, k),
		Gamma:        make([]float64, k),
	}

	if share <= 0 {
		// Starved by a saturated class above: the class never reaches
		// the medium. Loaded stations stay backlogged forever
		// (occupancy 1, so everything below starves too); every rate is
		// exactly zero.
		cs.Starved = true
		for i, gi := range idx {
			if !groups[gi].silent() {
				cs.Availability[i] = 1
			}
		}
		cs.Met = HeteroMetrics{
			GroupThroughput:      make([]float64, k),
			PerStationThroughput: make([]float64, k),
		}
		return cs, nil
	}

	plain := make([]Group, k)
	allSaturated := true
	for i, gi := range idx {
		plain[i] = groups[gi].Group
		if !groups[gi].saturatedOnly() {
			allSaturated = false
		}
	}

	if allSaturated {
		// The classic regime: delegate so an all-saturated class is bit
		// for bit the plain heterogeneous solution.
		pred, err := SolveHeterogeneous(plain, opts)
		if err != nil {
			return ClassSolution{}, fmt.Errorf("model: class %s: %w", pri, err)
		}
		copy(cs.Tau, pred.Tau)
		copy(cs.Gamma, pred.Gamma)
		for i := range cs.Availability {
			cs.Availability[i] = 1
		}
		cs.Met = HeteroMetricsFor(pred, plain, tm)
		cs.Iterations = pred.Iterations
		return cs, nil
	}

	opts = opts.withDefaults()
	tau := make([]float64, k)
	avail := make([]float64, k)
	for i, gi := range idx {
		tau[i] = 0.1
		switch {
		case groups[gi].saturatedOnly():
			avail[i] = 1
		case groups[gi].silent():
			avail[i] = 0
		default:
			avail[i] = 1 // start backlogged and relax downward
		}
	}

	eff := make([]float64, k) // a·τ, the effective per-slot attempt rates
	gam := make([]float64, k)
	nextTau := make([]float64, k)
	nextAvail := make([]float64, k)
	for it := 1; it <= opts.MaxIterations; it++ {
		for i := range idx {
			eff[i] = avail[i] * tau[i]
		}
		es := 0.0
		{
			// Slot-state composition under the effective attempt rates.
			pIdle := 1.0
			for i, gi := range idx {
				pIdle *= math.Pow(1-eff[i], float64(groups[gi].N))
			}
			var pSingle float64
			for i, gi := range idx {
				gam[i] = gammaOf(eff, plain, i)
				pSingle += float64(groups[gi].N) * eff[i] * (1 - gam[i])
			}
			pColl := 1 - pIdle - pSingle
			if pColl < 0 {
				pColl = 0
			}
			es = pIdle*tm.Slot + pSingle*tm.Ts + pColl*tm.Tc
		}

		var maxDelta float64
		for i, gi := range idx {
			g := groups[gi]
			v, _ := tauGivenSucc(g.Params, gam[i], (1-gam[i])*(1-g.ErrorProb))
			nextTau[i] = tau[i] + opts.Damping*(v-tau[i])
			if d := math.Abs(nextTau[i] - tau[i]); d > maxDelta {
				maxDelta = d
			}

			nextAvail[i] = avail[i]
			if !g.saturatedOnly() && !g.silent() {
				// Flow conservation: while backlogged the station
				// completes τ(1−γ)(1−e) frames per slot of E[σ] µs, so
				// its queue is busy the fraction λ·E[σ]/service — scaled
				// by 1/Share because only that fraction of wall-clock
				// time belongs to this class — clamped at 1 (overload:
				// the station saturates).
				serv := tau[i] * (1 - gam[i]) * (1 - g.ErrorProb)
				target := 1.0
				if serv > 0 {
					target = g.ArrivalRate / share * es / serv
					if target > 1 {
						target = 1
					}
				}
				nextAvail[i] = avail[i] + opts.Damping*(target-avail[i])
				if d := math.Abs(nextAvail[i] - avail[i]); d > maxDelta {
					maxDelta = d
				}
			}
		}
		copy(tau, nextTau)
		copy(avail, nextAvail)
		if maxDelta < opts.Tolerance {
			copy(cs.Tau, tau)
			copy(cs.Availability, avail)
			for i := range idx {
				eff[i] = avail[i] * tau[i]
			}
			for i := range idx {
				cs.Gamma[i] = gammaOf(eff, plain, i)
			}
			cs.Met = HeteroMetricsFor(HeteroPrediction{Tau: eff, Gamma: cs.Gamma}, plain, tm)
			cs.Iterations = it
			return cs, nil
		}
	}
	return ClassSolution{}, fmt.Errorf("model: class %s: %w", pri, ErrNoConvergence)
}
