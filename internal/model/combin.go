// Package model implements the decoupling ("mean-field") analytical
// model of the IEEE 1901 backoff process — the "Analysis" curve of the
// paper's Figure 2 — together with the matching 802.11 DCF model used by
// the baseline comparisons.
//
// The model follows the fixed-point construction of Vlachou, Banchs,
// Herzen and Thiran ("On the MAC for Power-Line Communications:
// Modeling Assumptions and Performance Tradeoffs", ICNP 2014), which the
// paper cites as [5]: each station is modeled in isolation against a
// medium that is busy in any observed slot independently with
// probability p; transmission attempts collide with probability
// γ = 1 − (1−τ)^(N−1); and the per-station attempt rate τ follows from
// a renewal-reward argument over the backoff-stage chain. Consistency
// of (τ, p) is imposed by a fixed point solved numerically.
package model

import "math"

// binomialTail returns P(Bin(n, p) ≤ k) — the probability that at most
// k of n independent busy/idle observations are busy.
//
// Computed by the forward pmf recurrence
//
//	pmf(j+1) = pmf(j) · (n−j)/(j+1) · p/(1−p)
//
// which is numerically stable for the small n (≤ a few thousand) and
// moderate k this model needs, and avoids any math.Gamma cancellation.
func binomialTail(n, k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n || p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0 // all n observations busy; n > k here
	}
	q := 1 - p
	pmf := math.Pow(q, float64(n)) // P(X = 0)
	sum := pmf
	ratio := p / q
	for j := 0; j < k; j++ {
		pmf *= float64(n-j) / float64(j+1) * ratio
		sum += pmf
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// negBinomialAt returns P(the (r)-th busy observation happens exactly at
// observation k), i.e. C(k−1, r−1)·p^r·(1−p)^(k−r) for k ≥ r ≥ 1.
func negBinomialAt(r, k int, p float64) float64 {
	if k < r || r < 1 || p <= 0 {
		return 0
	}
	if p >= 1 {
		if k == r {
			return 1
		}
		return 0
	}
	// C(k-1, r-1) p^r q^(k-r), built multiplicatively in log space only
	// if needed; the direct product is fine for the magnitudes in play.
	q := 1 - p
	v := math.Pow(p, float64(r)) * math.Pow(q, float64(k-r))
	// multiply by C(k-1, r-1)
	for i := 1; i <= r-1; i++ {
		v *= float64(k-r+i) / float64(i)
	}
	return v
}
