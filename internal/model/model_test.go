package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func TestBinomialTailEdges(t *testing.T) {
	tests := []struct {
		n, k int
		p    float64
		want float64
	}{
		{0, 0, 0.5, 1},     // no trials: 0 busy ≤ anything
		{5, -1, 0.5, 0},    // negative bound
		{5, 5, 0.5, 1},     // bound ≥ n
		{5, 7, 0.5, 1},     // bound > n
		{5, 2, 0, 1},       // p = 0: zero busy always
		{5, 2, 1, 0},       // p = 1: five busy > 2
		{1, 0, 0.25, 0.75}, // P(Bin(1,.25) = 0)
	}
	for _, tc := range tests {
		got := binomialTail(tc.n, tc.k, tc.p)
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("binomialTail(%d,%d,%v) = %v, want %v", tc.n, tc.k, tc.p, got, tc.want)
		}
	}
}

func TestBinomialTailAgainstDirectSum(t *testing.T) {
	// Compare with a direct factorial evaluation for small n.
	choose := func(n, k int) float64 {
		v := 1.0
		for i := 0; i < k; i++ {
			v = v * float64(n-i) / float64(i+1)
		}
		return v
	}
	for _, p := range []float64{0.1, 0.37, 0.5, 0.9} {
		for n := 0; n <= 12; n++ {
			for k := 0; k <= n; k++ {
				var want float64
				for j := 0; j <= k; j++ {
					want += choose(n, j) * math.Pow(p, float64(j)) * math.Pow(1-p, float64(n-j))
				}
				got := binomialTail(n, k, p)
				if math.Abs(got-want) > 1e-10 {
					t.Fatalf("binomialTail(%d,%d,%v) = %v, want %v", n, k, p, got, want)
				}
			}
		}
	}
}

func TestNegBinomialSumsToTailComplement(t *testing.T) {
	// Σ_{k=r}^{n} P(r-th busy at k) = P(Bin(n,p) ≥ r) = 1 − P(Bin ≤ r−1).
	for _, p := range []float64{0.2, 0.5, 0.8} {
		for _, r := range []int{1, 2, 4} {
			for _, n := range []int{r, r + 3, r + 10} {
				var sum float64
				for k := r; k <= n; k++ {
					sum += negBinomialAt(r, k, p)
				}
				want := 1 - binomialTail(n, r-1, p)
				if math.Abs(sum-want) > 1e-10 {
					t.Errorf("Σ negBinomialAt(r=%d, k≤%d, p=%v) = %v, want %v", r, n, p, sum, want)
				}
			}
		}
	}
}

func TestNegBinomialEdges(t *testing.T) {
	if got := negBinomialAt(1, 0, 0.5); got != 0 {
		t.Errorf("k < r should be 0, got %v", got)
	}
	if got := negBinomialAt(0, 1, 0.5); got != 0 {
		t.Errorf("r < 1 should be 0, got %v", got)
	}
	if got := negBinomialAt(2, 2, 1); got != 1 {
		t.Errorf("p=1: r-th busy exactly at k=r, got %v", got)
	}
	if got := negBinomialAt(2, 3, 1); got != 0 {
		t.Errorf("p=1, k>r should be 0, got %v", got)
	}
	if got := negBinomialAt(1, 1, 0.3); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("geometric first-trial probability = %v, want 0.3", got)
	}
}

func TestStageZeroBusyProbability(t *testing.T) {
	// With p = 0 the station always attempts; expected slots are
	// E[b] + 1 = (w−1)/2 + 1.
	for _, w := range []int{1, 8, 16, 64} {
		sq := Stage(w, 0, 0)
		if sq.Attempt != 1 {
			t.Errorf("w=%d p=0: attempt %v, want 1", w, sq.Attempt)
		}
		want := float64(w-1)/2 + 1
		if math.Abs(sq.Slots-want) > 1e-12 {
			t.Errorf("w=%d p=0: slots %v, want %v", w, sq.Slots, want)
		}
	}
}

func TestStageCertainBusy(t *testing.T) {
	// With p = 1 and d = 0, any station drawing b ≥ 1 jumps on its first
	// observation; only b = 0 attempts. So attempt = 1/w and the slots
	// are 1 either way (one tx slot or one jump slot).
	for _, w := range []int{1, 8, 32} {
		sq := Stage(w, 0, 1)
		want := 1 / float64(w)
		if math.Abs(sq.Attempt-want) > 1e-12 {
			t.Errorf("w=%d d=0 p=1: attempt %v, want %v", w, sq.Attempt, want)
		}
		if math.Abs(sq.Slots-1) > 1e-12 {
			t.Errorf("w=%d d=0 p=1: slots %v, want 1", w, sq.Slots)
		}
	}
}

func TestStageLargeDeferralNeverJumps(t *testing.T) {
	// d ≥ w−1 means the deferral counter cannot expire before BC does:
	// attempt probability 1 regardless of p.
	sq := Stage(16, 15, 0.7)
	if math.Abs(sq.Attempt-1) > 1e-12 {
		t.Errorf("d=w−1: attempt %v, want 1", sq.Attempt)
	}
}

func TestStageMonotoneInBusyProbability(t *testing.T) {
	// More busy slots → more jumps → lower attempt probability.
	prev := 2.0
	for _, p := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		sq := Stage(16, 1, p)
		if sq.Attempt > prev+1e-12 {
			t.Errorf("attempt probability increased with p at p=%v", p)
		}
		prev = sq.Attempt
	}
}

func TestSolveSingleStation(t *testing.T) {
	pred, err := Solve(1, config.DefaultCA1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Gamma != 0 || pred.BusyProbability != 0 {
		t.Errorf("N=1: γ=%v p=%v, want 0", pred.Gamma, pred.BusyProbability)
	}
	// With p=0, the CA1 station cycles at stage 0: τ = 1/E[T_0] =
	// 1/((8−1)/2 + 1) = 1/4.5.
	want := 1 / 4.5
	if math.Abs(pred.Tau-want) > 1e-9 {
		t.Errorf("N=1: τ=%v, want %v", pred.Tau, want)
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(0, config.DefaultCA1(), Options{}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Solve(2, config.Params{}, Options{}); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestFigure2ModelShape: the analysis curve of Figure 2 — γ increasing
// in N, ≈0.12 at N=2, ≈0.27 at N=7 (paper band widened for the
// decoupling approximation).
func TestFigure2ModelShape(t *testing.T) {
	prev := -1.0
	var g2, g7 float64
	for n := 1; n <= 7; n++ {
		pred, err := Solve(n, config.DefaultCA1(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if pred.Gamma <= prev {
			t.Errorf("N=%d: γ=%v not increasing", n, pred.Gamma)
		}
		prev = pred.Gamma
		if n == 2 {
			g2 = pred.Gamma
		}
		if n == 7 {
			g7 = pred.Gamma
		}
	}
	if g2 < 0.05 || g2 > 0.15 {
		t.Errorf("γ(N=2) = %v outside [0.05, 0.15]", g2)
	}
	if g7 < 0.22 || g7 > 0.32 {
		t.Errorf("γ(N=7) = %v outside [0.22, 0.32]", g7)
	}
}

func TestStageDistributionIsDistribution(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10} {
		pred, err := Solve(n, config.DefaultCA1(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range pred.StageDistribution {
			if v < -1e-12 {
				t.Errorf("N=%d: negative stage probability %v", n, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("N=%d: stage distribution sums to %v", n, sum)
		}
	}
}

func TestMoreStationsPushToHigherStages(t *testing.T) {
	p2, _ := Solve(2, config.DefaultCA1(), Options{})
	p10, _ := Solve(10, config.DefaultCA1(), Options{})
	if p10.StageDistribution[0] >= p2.StageDistribution[0] {
		t.Errorf("stage-0 occupancy did not shrink with N: %v → %v",
			p2.StageDistribution[0], p10.StageDistribution[0])
	}
	last := len(p2.StageDistribution) - 1
	if p10.StageDistribution[last] <= p2.StageDistribution[last] {
		t.Errorf("last-stage occupancy did not grow with N: %v → %v",
			p2.StageDistribution[last], p10.StageDistribution[last])
	}
}

func TestMetricsForConsistency(t *testing.T) {
	pred, err := Solve(5, config.DefaultCA1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := MetricsFor(pred, 5, DefaultTiming())
	if s := m.SlotIdle + m.SlotSuccess + m.SlotCollision; math.Abs(s-1) > 1e-9 {
		t.Errorf("slot probabilities sum to %v", s)
	}
	if m.NormalizedThroughput <= 0 || m.NormalizedThroughput >= 1 {
		t.Errorf("normalized throughput %v outside (0,1)", m.NormalizedThroughput)
	}
	if m.MeanSlotDuration <= 0 {
		t.Errorf("mean slot duration %v", m.MeanSlotDuration)
	}
	if m.CollisionProbability != pred.Gamma {
		t.Errorf("metrics collision probability %v ≠ γ %v", m.CollisionProbability, pred.Gamma)
	}
}

func TestPredictConvenience(t *testing.T) {
	pred, met, err := Predict(3, config.DefaultCA1())
	if err != nil {
		t.Fatal(err)
	}
	if pred.Tau <= 0 || met.NormalizedThroughput <= 0 {
		t.Error("Predict returned degenerate values")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Damping <= 0 || o.Damping > 1 || o.Tolerance <= 0 || o.MaxIterations <= 0 {
		t.Errorf("withDefaults produced %+v", o)
	}
	o2 := Options{Damping: 2, Tolerance: -1, MaxIterations: -5}.withDefaults()
	if o2.Damping > 1 || o2.Tolerance <= 0 || o2.MaxIterations <= 0 {
		t.Errorf("withDefaults did not repair invalid options: %+v", o2)
	}
}

// TestSolverAgreementDampingVsBisection: the two solution strategies
// must land on the same fixed point (solver ablation from DESIGN.md).
func TestSolverAgreementDampingVsBisection(t *testing.T) {
	params := config.DefaultCA1()
	damped, err := Solve(5, params, Options{Damping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Force bisection by allowing almost no iterations.
	bisect, err := Solve(5, params, Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(damped.Tau-bisect.Tau) > 1e-6 {
		t.Errorf("damped τ=%v vs bisection τ=%v", damped.Tau, bisect.Tau)
	}
}

// Property: the fixed point exists, lies in (0,1), and γ < 1 for any
// sane configuration and station count.
func TestFixedPointSanityProperty(t *testing.T) {
	f := func(nRaw, w0Raw, d0Raw uint8) bool {
		n := int(nRaw)%20 + 1
		w0 := int(w0Raw)%63 + 2
		d0 := int(d0Raw) % 16
		params := config.Params{
			CW: []int{w0, w0 * 2, w0 * 4, w0 * 8},
			DC: []int{d0, d0 + 1, d0 + 3, d0 + 15},
		}
		pred, err := Solve(n, params, Options{})
		if err != nil {
			return false
		}
		if pred.Tau <= 0 || pred.Tau > 1 {
			return false
		}
		if pred.Gamma < 0 || pred.Gamma >= 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveDCFBaseline(t *testing.T) {
	cfg := config.Default80211()
	if _, err := SolveDCF(0, cfg, Options{}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := SolveDCF(2, config.DCF{CWmin: 0, CWmax: 4}, Options{}); err == nil {
		t.Error("invalid DCF accepted")
	}
	p1, err := SolveDCF(1, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Lone DCF station: τ = 1/((16−1)/2 + 1) = 1/8.5.
	if want := 1 / 8.5; math.Abs(p1.Tau-want) > 1e-9 {
		t.Errorf("DCF N=1 τ=%v, want %v", p1.Tau, want)
	}
	prev := -1.0
	for _, n := range []int{2, 5, 10, 20} {
		p, err := SolveDCF(n, cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if p.Gamma <= prev {
			t.Errorf("DCF γ not increasing at N=%d", n)
		}
		prev = p.Gamma
	}
}

// TestAggressivenessCrossover: the design tradeoff of Section 2 in
// model terms. With little contention 1901's CWmin = 8 makes it more
// aggressive than DCF (higher τ); under contention the deferral counter
// raises CW preemptively and 1901 becomes the milder protocol. The
// crossover is the signature of the deferral mechanism.
func TestAggressivenessCrossover(t *testing.T) {
	tau := func(n int) (float64, float64) {
		p1901, err := Solve(n, config.DefaultCA1(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		pdcf, err := SolveDCF(n, config.Default80211(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return p1901.Tau, pdcf.Tau
	}
	for _, n := range []int{1, 2} {
		t1901, tdcf := tau(n)
		if t1901 <= tdcf {
			t.Errorf("N=%d: 1901 τ=%v not above DCF τ=%v", n, t1901, tdcf)
		}
	}
	for _, n := range []int{5, 10, 20} {
		t1901, tdcf := tau(n)
		if t1901 >= tdcf {
			t.Errorf("N=%d: 1901 τ=%v not below DCF τ=%v (deferral should have tamed it)", n, t1901, tdcf)
		}
	}
}

// stageDirect is the O(w²·d) direct evaluation of the stage quantities,
// kept as the reference implementation for the recurrence-based Stage.
func stageDirect(w, d int, p float64) StageQuantities {
	var attempt, slots float64
	for b := 0; b < w; b++ {
		pa := binomialTail(b, d, p)
		attempt += pa
		slots += pa * float64(b+1)
		for k := d + 1; k <= b; k++ {
			slots += negBinomialAt(d+1, k, p) * float64(k)
		}
	}
	inv := 1 / float64(w)
	return StageQuantities{Attempt: attempt * inv, Slots: slots * inv}
}

// TestStageMatchesDirectEvaluation pins the O(w) recurrences to the
// direct sums across the parameter ranges the experiments use.
func TestStageMatchesDirectEvaluation(t *testing.T) {
	for _, p := range []float64{0, 0.01, 0.1, 0.37, 0.5, 0.8, 0.99, 1} {
		for _, w := range []int{1, 2, 8, 16, 32, 64, 128} {
			for _, d := range []int{0, 1, 3, 15, 40} {
				got := Stage(w, d, p)
				want := stageDirect(w, d, p)
				if math.Abs(got.Attempt-want.Attempt) > 1e-9 {
					t.Fatalf("Stage(%d,%d,%v).Attempt = %v, direct = %v", w, d, p, got.Attempt, want.Attempt)
				}
				if math.Abs(got.Slots-want.Slots) > 1e-7*(1+want.Slots) {
					t.Fatalf("Stage(%d,%d,%v).Slots = %v, direct = %v", w, d, p, got.Slots, want.Slots)
				}
			}
		}
	}
}

// Property: recurrence and direct evaluation agree on random inputs.
func TestStageRecurrenceProperty(t *testing.T) {
	f := func(wRaw, dRaw uint8, pRaw uint16) bool {
		w := int(wRaw)%200 + 1
		d := int(dRaw) % 32
		p := float64(pRaw) / 65536
		got := Stage(w, d, p)
		want := stageDirect(w, d, p)
		return math.Abs(got.Attempt-want.Attempt) < 1e-9 &&
			math.Abs(got.Slots-want.Slots) < 1e-7*(1+want.Slots)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTauGivenSuccDegenerate pins the never-escaping limit: a station
// whose last stage can never be left (per-attempt success probability
// 0, as a boost candidate sweep can propose via a busy probability that
// rounds to 1, or a channel error probability of 1) must get the
// defined limit τ = x_{m−1}/E[T_{m−1}] with the visit distribution
// concentrated on the last stage — not the NaN the old
// divide-by-SmallestNonzeroFloat64 overflow produced.
func TestTauGivenSuccDegenerate(t *testing.T) {
	params := config.DefaultCA1()
	tau, pi := tauGivenSucc(params, 1, 0)
	m := params.Stages()
	last := Stage(params.CW[m-1], params.DC[m-1], 1)
	if want := last.Attempt / last.Slots; math.Abs(tau-want) > 1e-12 || math.IsNaN(tau) {
		t.Errorf("degenerate τ = %v, want x/E[T] = %v", tau, want)
	}
	for i, v := range pi {
		want := 0.0
		if i == m-1 {
			want = 1
		}
		if v != want {
			t.Errorf("degenerate π[%d] = %v, want %v", i, v, want)
		}
	}
	// Near-degenerate: an escape probability small enough that the old
	// code overflowed v[m−1] to +Inf must also stay finite.
	tau, pi = tauGivenSucc(params, 1, 1e-320)
	if math.IsNaN(tau) || math.IsInf(tau, 0) || tau <= 0 {
		t.Errorf("near-degenerate τ = %v", tau)
	}
	for i, v := range pi {
		if math.IsNaN(v) {
			t.Errorf("near-degenerate π[%d] = NaN", i)
		}
	}
}

// TestSolveBisectionSurvivesSaturatedBusyProbability forces the
// bisection fallback at a station count large enough that the upper
// bracket's busy probability rounds to exactly 1 — the regime where the
// old degenerate handling returned NaN and poisoned the bracket.
func TestSolveBisectionSurvivesSaturatedBusyProbability(t *testing.T) {
	pred, err := Solve(40, config.DefaultCA1(), Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(pred.Tau) || pred.Tau <= 0 || pred.Tau > 1 {
		t.Errorf("bisection τ = %v", pred.Tau)
	}
	damped, err := Solve(40, config.DefaultCA1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred.Tau-damped.Tau) > 1e-6 {
		t.Errorf("bisection τ %v disagrees with damped τ %v", pred.Tau, damped.Tau)
	}
}

// TestHeterogeneousMatchesHomogeneousBitForBit: splitting N identical
// stations into k groups must reproduce the homogeneous fixed point
// exactly — the equality the model scenario engine's determinism
// guarantee leans on.
func TestHeterogeneousMatchesHomogeneousBitForBit(t *testing.T) {
	params := config.DefaultCA1()
	for _, split := range [][]int{{1}, {5}, {2, 3}, {1, 1, 3}, {1, 2, 3, 4}} {
		n := 0
		groups := make([]Group, len(split))
		for i, c := range split {
			groups[i] = Group{N: c, Params: params}
			n += c
		}
		homo, err := Solve(n, params, Options{})
		if err != nil {
			t.Fatal(err)
		}
		hetero, err := SolveHeterogeneous(groups, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range groups {
			if hetero.Tau[i] != homo.Tau {
				t.Errorf("split %v: group %d τ = %v, homogeneous τ = %v (must be bit-identical)",
					split, i, hetero.Tau[i], homo.Tau)
			}
			if hetero.Gamma[i] != homo.Gamma {
				t.Errorf("split %v: group %d γ = %v, homogeneous γ = %v (must be bit-identical)",
					split, i, hetero.Gamma[i], homo.Gamma)
			}
		}
	}
}

// TestHeteroErrorProbability covers the channel-error extension of the
// fixed point: errors lower delivered throughput but leave the busy
// medium composition intact, and the e=1 limit stays finite with zero
// delivered throughput.
func TestHeteroErrorProbability(t *testing.T) {
	params := config.DefaultCA1()
	clean, err := SolveHeterogeneous([]Group{{N: 5, Params: params}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cleanMet := HeteroMetricsFor(clean, []Group{{N: 5, Params: params}}, DefaultTiming())

	noisyGroups := []Group{{N: 5, Params: params, ErrorProb: 0.2}}
	noisy, err := SolveHeterogeneous(noisyGroups, Options{})
	if err != nil {
		t.Fatal(err)
	}
	noisyMet := HeteroMetricsFor(noisy, noisyGroups, DefaultTiming())
	if noisyMet.TotalThroughput >= cleanMet.TotalThroughput*0.9 {
		t.Errorf("20%% frame loss left throughput at %v (clean %v)",
			noisyMet.TotalThroughput, cleanMet.TotalThroughput)
	}
	if noisyMet.ErrorRate <= 0 {
		t.Error("no error rate predicted despite error_prob = 0.2")
	}
	// Errors advance the backoff stage like collisions, so the noisy
	// population must be at least as backed off (lower attempt rate).
	if noisy.Tau[0] > clean.Tau[0] {
		t.Errorf("errors raised τ: %v > %v", noisy.Tau[0], clean.Tau[0])
	}

	dead := []Group{{N: 3, Params: params, ErrorProb: 1}}
	pred, err := SolveHeterogeneous(dead, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(pred.Tau[0]) || pred.Tau[0] <= 0 {
		t.Errorf("e=1 τ = %v", pred.Tau[0])
	}
	met := HeteroMetricsFor(pred, dead, DefaultTiming())
	if met.TotalThroughput != 0 {
		t.Errorf("e=1 delivered throughput %v, want 0", met.TotalThroughput)
	}
	if _, err := SolveHeterogeneous([]Group{{N: 2, Params: params, ErrorProb: 1.5}}, Options{}); err == nil {
		t.Error("error probability 1.5 accepted")
	}
}

// TestHeteroSingleStationFastPath: one lone station must get the exact
// p = 0 solution (Iterations 0), matching the homogeneous N=1 path.
func TestHeteroSingleStationFastPath(t *testing.T) {
	homo, err := Solve(1, config.DefaultCA1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	hetero, err := SolveHeterogeneous([]Group{{N: 1, Params: config.DefaultCA1()}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hetero.Iterations != 0 || hetero.Tau[0] != homo.Tau || hetero.Gamma[0] != 0 {
		t.Errorf("single-station fast path: %+v vs homogeneous τ %v", hetero, homo.Tau)
	}
}

func TestSolveHeterogeneousReducesToHomogeneous(t *testing.T) {
	// One group of N must reproduce the homogeneous fixed point.
	for _, n := range []int{2, 5, 10} {
		homo, err := Solve(n, config.DefaultCA1(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		hetero, err := SolveHeterogeneous([]Group{{N: n, Params: config.DefaultCA1()}}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(homo.Tau-hetero.Tau[0]) > 1e-9 {
			t.Errorf("N=%d: hetero τ %v ≠ homo τ %v", n, hetero.Tau[0], homo.Tau)
		}
		if math.Abs(homo.Gamma-hetero.Gamma[0]) > 1e-9 {
			t.Errorf("N=%d: hetero γ %v ≠ homo γ %v", n, hetero.Gamma[0], homo.Gamma)
		}
	}
}

func TestSolveHeterogeneousSplitGroupsEqualOneGroup(t *testing.T) {
	// Two groups with identical params must behave as one big group.
	one, err := SolveHeterogeneous([]Group{{N: 6, Params: config.DefaultCA1()}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	two, err := SolveHeterogeneous([]Group{
		{N: 3, Params: config.DefaultCA1()},
		{N: 3, Params: config.DefaultCA1()},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one.Tau[0]-two.Tau[0]) > 1e-9 || math.Abs(two.Tau[0]-two.Tau[1]) > 1e-9 {
		t.Errorf("split groups diverged: %v vs %v", one.Tau, two.Tau)
	}
}

func TestSolveHeterogeneousValidation(t *testing.T) {
	if _, err := SolveHeterogeneous(nil, Options{}); err == nil {
		t.Error("no groups accepted")
	}
	if _, err := SolveHeterogeneous([]Group{{N: 0, Params: config.DefaultCA1()}}, Options{}); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := SolveHeterogeneous([]Group{{N: 2, Params: config.Params{}}}, Options{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestHeterogeneousAggressiveGroupWins(t *testing.T) {
	// A small-CW group contending against a large-CW group must attempt
	// more and take a larger per-station share.
	aggressive := config.Params{Name: "small", CW: []int{4, 8, 16, 32}, DC: []int{1 << 20, 1 << 20, 1 << 20, 1 << 20}}
	polite := config.Params{Name: "large", CW: []int{64, 128, 256, 512}, DC: []int{1 << 20, 1 << 20, 1 << 20, 1 << 20}}
	groups := []Group{{N: 3, Params: polite}, {N: 3, Params: aggressive}}
	pred, err := SolveHeterogeneous(groups, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Tau[1] <= pred.Tau[0] {
		t.Errorf("aggressive τ %v not above polite %v", pred.Tau[1], pred.Tau[0])
	}
	met := HeteroMetricsFor(pred, groups, DefaultTiming())
	if met.PerStationThroughput[1] <= met.PerStationThroughput[0] {
		t.Errorf("aggressive share %v not above polite %v",
			met.PerStationThroughput[1], met.PerStationThroughput[0])
	}
	if met.TotalThroughput <= 0 || met.TotalThroughput >= 1 {
		t.Errorf("total throughput %v", met.TotalThroughput)
	}
}

func TestHeteroMetricsConsistency(t *testing.T) {
	groups := []Group{{N: 2, Params: config.DefaultCA1()}, {N: 2, Params: config.Default1901(config.CA3)}}
	pred, err := SolveHeterogeneous(groups, Options{})
	if err != nil {
		t.Fatal(err)
	}
	met := HeteroMetricsFor(pred, groups, DefaultTiming())
	var sum float64
	for i, g := range groups {
		if met.PerStationThroughput[i]*float64(g.N)-met.GroupThroughput[i] > 1e-12 {
			t.Error("per-station × N ≠ group throughput")
		}
		sum += met.GroupThroughput[i]
	}
	if math.Abs(sum-met.TotalThroughput) > 1e-12 {
		t.Error("group throughputs do not sum to total")
	}
}
