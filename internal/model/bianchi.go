package model

import (
	"fmt"
	"math"

	"repro/internal/config"
)

// SolveDCF computes the Bianchi-style fixed point for N saturated
// 802.11 DCF stations: the same renewal-reward construction as the 1901
// model with the deferral mechanism removed, so the two protocols are
// modeled under identical assumptions (slotted time, busy slots count
// one decrement, infinite retry).
//
// A DCF stage visit with window W consumes on average (W−1)/2 backoff
// slots plus one transmission slot and always ends in an attempt, so
// x_i = 1 and E[T_i] = (W_i+1)/2 + ... precisely E[T_i] = (W_i−1)/2 + 1.
func SolveDCF(n int, cfg config.DCF, opts Options) (Prediction, error) {
	if n < 1 {
		return Prediction{}, fmt.Errorf("model: N=%d must be ≥ 1", n)
	}
	if err := cfg.Validate(); err != nil {
		return Prediction{}, err
	}
	opts = opts.withDefaults()

	m := cfg.Stages()
	slotsAt := func(i int) float64 { return float64(cfg.Window(i)-1)/2 + 1 }

	tauGivenGamma := func(gamma float64) (float64, []float64) {
		// Visit rates: v_0 = 1; v_i = γ^i for i < m−1; the last stage
		// absorbs the tail: v_{m−1} = γ^{m−1}/(1−γ).
		v := make([]float64, m)
		v[0] = 1
		for i := 1; i < m; i++ {
			v[i] = v[i-1] * gamma
		}
		if m > 1 && gamma < 1 {
			v[m-1] /= 1 - gamma
		}
		var num, den, sum float64
		for i := 0; i < m; i++ {
			num += v[i] // one attempt per visit
			den += v[i] * slotsAt(i)
			sum += v[i]
		}
		pi := make([]float64, m)
		for i := range pi {
			pi[i] = v[i] / sum
		}
		return num / den, pi
	}

	if n == 1 {
		tau, pi := tauGivenGamma(0)
		return Prediction{Tau: tau, StageDistribution: pi}, nil
	}

	gammaOf := func(tau float64) float64 { return 1 - math.Pow(1-tau, float64(n-1)) }

	tau := 0.1
	var pi []float64
	for it := 1; it <= opts.MaxIterations; it++ {
		var next float64
		next, pi = tauGivenGamma(gammaOf(tau))
		newTau := tau + opts.Damping*(next-tau)
		if math.Abs(newTau-tau) < opts.Tolerance {
			g := gammaOf(newTau)
			return Prediction{Tau: newTau, Gamma: g, BusyProbability: g, StageDistribution: pi, Iterations: it}, nil
		}
		tau = newTau
	}
	return Prediction{}, ErrNoConvergence
}
