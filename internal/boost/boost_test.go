package boost

import (
	"testing"

	"repro/internal/config"
)

func TestSpaceValidation(t *testing.T) {
	if err := DefaultSpace().Validate(); err != nil {
		t.Fatalf("default space invalid: %v", err)
	}
	bad := []Space{
		{},
		{CW0s: []int{8}, Growths: []int{2}, DCSchedules: [][]int{{0}}, Stages: 0, MaxCW: 64},
		{CW0s: []int{0}, Growths: []int{2}, DCSchedules: [][]int{{0}}, Stages: 1, MaxCW: 64},
		{CW0s: []int{8}, Growths: []int{0}, DCSchedules: [][]int{{0}}, Stages: 1, MaxCW: 64},
		{CW0s: []int{8}, Growths: []int{2}, DCSchedules: [][]int{{0, 1}}, Stages: 1, MaxCW: 64},
		{CW0s: []int{8}, Growths: []int{2}, DCSchedules: [][]int{{-1}}, Stages: 1, MaxCW: 64},
		{CW0s: []int{8}, Growths: []int{2}, DCSchedules: [][]int{{0}}, Stages: 1, MaxCW: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad space %d accepted", i)
		}
	}
}

func TestEnumerateCountAndValidity(t *testing.T) {
	space := DefaultSpace()
	params, err := space.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	want := len(space.CW0s) * len(space.Growths) * len(space.DCSchedules)
	if len(params) != want {
		t.Fatalf("%d candidates, want %d", len(params), want)
	}
	seen := map[string]bool{}
	for _, p := range params {
		if err := p.Validate(); err != nil {
			t.Errorf("candidate %s invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate candidate name %s", p.Name)
		}
		seen[p.Name] = true
		for _, w := range p.CW {
			if w > space.MaxCW {
				t.Errorf("candidate %s exceeds MaxCW: %v", p.Name, p.CW)
			}
		}
	}
}

func TestEnumerateCapsWindows(t *testing.T) {
	s := Space{CW0s: []int{512}, Growths: []int{4}, DCSchedules: [][]int{{0, 0, 0, 0}}, Stages: 4, MaxCW: 1024}
	params, err := s.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	p := params[0]
	for i, w := range p.CW {
		if w > 1024 {
			t.Errorf("stage %d window %d above cap", i, w)
		}
	}
}

func TestScoreModelDefaults(t *testing.T) {
	ns := []int{2, 5, 10}
	c, err := ScoreModel(config.DefaultCA1(), ns)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ns {
		if c.Throughput[n] <= 0 || c.Throughput[n] >= 1 {
			t.Errorf("N=%d throughput %v", n, c.Throughput[n])
		}
		if c.Collision[n] <= 0 || c.Collision[n] >= 1 {
			t.Errorf("N=%d collision %v", n, c.Collision[n])
		}
		if c.Score > c.Throughput[n] {
			t.Errorf("score %v above throughput at N=%d", c.Score, n)
		}
	}
}

func TestSearchRanksDescending(t *testing.T) {
	cands, err := Search(DefaultSpace(), []int{2, 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Fatalf("candidates not sorted at %d: %v > %v", i, cands[i].Score, cands[i-1].Score)
		}
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(DefaultSpace(), nil); err == nil {
		t.Error("empty N set accepted")
	}
	if _, err := Search(Space{}, []int{2}); err == nil {
		t.Error("invalid space accepted")
	}
}

// TestBoostBeatsDefaults is the headline boosting claim in miniature:
// the best configuration found by the model-guided search must beat the
// CA1 defaults on min-throughput across the contention range, and the
// improvement must survive simulator validation.
func TestBoostBeatsDefaults(t *testing.T) {
	ns := []int{2, 5, 10}
	cands, err := Search(DefaultSpace(), ns)
	if err != nil {
		t.Fatal(err)
	}
	def, err := ScoreModel(config.DefaultCA1(), ns)
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Score <= def.Score {
		t.Fatalf("best candidate %s (%.4f) does not beat defaults (%.4f) in the model",
			cands[0].Params.Name, cands[0].Score, def.Score)
	}

	vals, err := ValidateTop(cands, 3, ns, 5e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	defVal, err := Validate(def, ns, 5e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].SimScore <= defVal.SimScore {
		t.Errorf("validated best %s sim score %.4f does not beat defaults %.4f",
			vals[0].Candidate.Params.Name, vals[0].SimScore, defVal.SimScore)
	}
}

func TestValidatePopulatesFairness(t *testing.T) {
	c, err := ScoreModel(config.DefaultCA1(), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Validate(c, []int{2}, 5e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	j := v.ShortTermJain[2]
	if j <= 0.5 || j > 1 {
		t.Errorf("short-term Jain %v out of (0.5, 1]", j)
	}
	if v.SimThroughput[2] <= 0 {
		t.Error("no sim throughput")
	}
}

func TestValidateTopClampsK(t *testing.T) {
	cands, err := Search(Space{
		CW0s: []int{8}, Growths: []int{2},
		DCSchedules: [][]int{{0, 1, 3, 15}}, Stages: 4, MaxCW: 64,
	}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := ValidateTop(cands, 10, []int{2}, 2e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 {
		t.Errorf("%d validations, want 1", len(vals))
	}
}

func TestParetoFront(t *testing.T) {
	mk := func(thr, jain float64) Validation {
		return Validation{
			SimThroughput: map[int]float64{5: thr},
			ShortTermJain: map[int]float64{5: jain},
		}
	}
	vs := []Validation{
		mk(0.8, 0.6),  // frontier (best throughput)
		mk(0.7, 0.9),  // frontier (best fairness)
		mk(0.7, 0.6),  // dominated by both
		mk(0.75, 0.8), // frontier
	}
	front := ParetoFront(vs, 5)
	if len(front) != 3 {
		t.Fatalf("frontier size %d, want 3", len(front))
	}
	for _, v := range front {
		if v.SimThroughput[5] == 0.7 && v.ShortTermJain[5] == 0.6 {
			t.Error("dominated point survived")
		}
	}
}

// TestDeferralDisabledLosesUnderContention: the ablation DESIGN.md
// calls out — the no-deferral candidate must score worse than the
// standard schedule at high N in the model.
func TestDeferralDisabledLosesUnderContention(t *testing.T) {
	std := config.DefaultCA1()
	noDC := config.Params{Name: "no-dc", CW: []int{8, 16, 32, 64}, DC: []int{1 << 20, 1 << 20, 1 << 20, 1 << 20}}
	cs, err := ScoreModel(std, []int{15})
	if err != nil {
		t.Fatal(err)
	}
	cn, err := ScoreModel(noDC, []int{15})
	if err != nil {
		t.Fatal(err)
	}
	if cn.Collision[15] <= cs.Collision[15] {
		t.Errorf("no-deferral collision %v not above standard %v at N=15",
			cn.Collision[15], cs.Collision[15])
	}
}

// TestSearchMatchesScoreModel pins the campaign refactor: the grid a
// Search runs through the campaign layer must reproduce per-candidate
// ScoreModel results exactly — same throughput/collision maps, same
// scores, same Table-ready ordering.
func TestSearchMatchesScoreModel(t *testing.T) {
	ns := []int{2, 5, 10}
	space := DefaultSpace()
	cands, err := Search(space, ns)
	if err != nil {
		t.Fatal(err)
	}
	params, err := space.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != len(params) {
		t.Fatalf("search returned %d candidates for %d params", len(cands), len(params))
	}
	byName := map[string]Candidate{}
	for _, c := range cands {
		byName[c.Params.Name] = c
	}
	for _, p := range params {
		want, err := ScoreModel(p, ns)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := byName[p.Name]
		if !ok {
			t.Fatalf("candidate %s missing from search results", p.Name)
		}
		if got.Score != want.Score {
			t.Errorf("%s: search score %v != ScoreModel %v", p.Name, got.Score, want.Score)
		}
		for _, n := range ns {
			if got.Throughput[n] != want.Throughput[n] {
				t.Errorf("%s N=%d: throughput %v != %v", p.Name, n, got.Throughput[n], want.Throughput[n])
			}
			if got.Collision[n] != want.Collision[n] {
				t.Errorf("%s N=%d: collision %v != %v", p.Name, n, got.Collision[n], want.Collision[n])
			}
		}
	}
}

// TestSearchCampaignShape sanity-checks the emitted campaign spec: the
// axes cover the full candidate grid in Enumerate order, and the spec
// itself validates (a client could POST it to /v1/campaigns verbatim).
func TestSearchCampaignShape(t *testing.T) {
	space := DefaultSpace()
	ns := []int{2, 10}
	spec, err := SearchCampaign(space, ns)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("emitted campaign does not validate: %v", err)
	}
	params, err := space.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	wantCW := len(params) / len(space.DCSchedules)
	if len(spec.Axes) != 3 ||
		len(spec.Axes[0].Values) != wantCW ||
		len(spec.Axes[1].Values) != len(space.DCSchedules) ||
		len(spec.Axes[2].Values) != len(ns) {
		t.Fatalf("campaign axes %d/%d/%d, want %d/%d/%d",
			len(spec.Axes[0].Values), len(spec.Axes[1].Values), len(spec.Axes[2].Values),
			wantCW, len(space.DCSchedules), len(ns))
	}
}
