// Package boost implements the performance-boosting side of the paper:
// a search over the (cw, dc) parameter vectors of the 1901 CSMA/CA
// process for configurations that improve on the Table 1 defaults.
//
// The search follows the structure the analytical work enables: the
// decoupling model (internal/model) evaluates thousands of candidate
// configurations in microseconds each, pruning the space; the survivors
// are validated with the discrete-event simulator, which also provides
// the short-term fairness metric the model cannot express. Candidates
// are scored across a set of station counts, not a single N, because
// the number of contenders in a home network is unknown to the devices
// — the same robustness argument the paper's tuning makes.
//
// Model scoring runs through the compiled scenario path: a single
// candidate lowers to a model-engine scenario.Spec (ScoreModel), and
// the whole space lowers to a campaign (SearchCampaign) — a
// model-engine base scenario swept over cw/dc/n axes — so the search
// grid is the same object the serving daemon's /v1/campaigns endpoint
// runs, and "run many related scenarios" is one code path everywhere.
package boost

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/backoff"
	"repro/internal/campaign"
	"repro/internal/config"
	"repro/internal/fairness"
	"repro/internal/par"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Space describes the candidate configuration grid.
type Space struct {
	// CW0s are the stage-0 contention windows to try.
	CW0s []int
	// Growths are the per-stage window multipliers (1 = flat, 2 =
	// doubling, …).
	Growths []int
	// DCSchedules are the deferral-counter vectors to try; each must
	// have Stages entries.
	DCSchedules [][]int
	// Stages is the number of backoff stages of every candidate.
	Stages int
	// MaxCW caps the per-stage windows (the standard's field width
	// bounds CW; 1024 is a safe ceiling).
	MaxCW int
}

// DefaultSpace is a compact grid around the standard's configuration:
// 3 × 3 × 4 = 36 candidates spanning less and more aggressive CW0s,
// flat to doubling growth, and deferral schedules from "defer
// immediately" to "never defer".
func DefaultSpace() Space {
	return Space{
		CW0s:    []int{4, 8, 16, 32},
		Growths: []int{1, 2, 4},
		DCSchedules: [][]int{
			{0, 0, 0, 0},
			{0, 1, 3, 15},
			{1, 3, 7, 15},
			{1 << 20, 1 << 20, 1 << 20, 1 << 20}, // deferral disabled
		},
		Stages: 4,
		MaxCW:  1024,
	}
}

// Validate checks the space's shape.
func (s Space) Validate() error {
	if s.Stages < 1 {
		return fmt.Errorf("boost: %d stages", s.Stages)
	}
	if len(s.CW0s) == 0 || len(s.Growths) == 0 || len(s.DCSchedules) == 0 {
		return fmt.Errorf("boost: empty search dimensions")
	}
	if s.MaxCW < 1 {
		return fmt.Errorf("boost: MaxCW %d", s.MaxCW)
	}
	for _, w := range s.CW0s {
		if w < 1 {
			return fmt.Errorf("boost: CW0 %d", w)
		}
	}
	for _, g := range s.Growths {
		if g < 1 {
			return fmt.Errorf("boost: growth %d", g)
		}
	}
	for i, dc := range s.DCSchedules {
		if len(dc) != s.Stages {
			return fmt.Errorf("boost: dc schedule %d has %d entries, want %d", i, len(dc), s.Stages)
		}
		for _, d := range dc {
			if d < 0 {
				return fmt.Errorf("boost: negative deferral in schedule %d", i)
			}
		}
	}
	return nil
}

// Enumerate materializes every candidate configuration in the space.
func (s Space) Enumerate() ([]config.Params, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var out []config.Params
	for _, w0 := range s.CW0s {
		for _, g := range s.Growths {
			cw := make([]int, s.Stages)
			w := w0
			for i := range cw {
				if w > s.MaxCW {
					w = s.MaxCW
				}
				cw[i] = w
				w *= g
			}
			for di, dc := range s.DCSchedules {
				p := config.Params{
					Name: fmt.Sprintf("cw%d-g%d-dc%d", w0, g, di),
					CW:   append([]int(nil), cw...),
					DC:   append([]int(nil), dc...),
				}
				out = append(out, p)
			}
		}
	}
	return out, nil
}

// Candidate is a model-scored configuration.
type Candidate struct {
	Params config.Params
	// Throughput maps N → model normalized throughput.
	Throughput map[int]float64
	// Collision maps N → model collision probability γ.
	Collision map[int]float64
	// Score is the ranking key: the minimum throughput across the
	// evaluated Ns (max-min robustness; a config must not fall apart at
	// any contention level).
	Score float64
}

// candidateSpec lowers one (cw, dc) candidate onto the declarative
// scenario layer: a model-engine spec sweeping the evaluation station
// counts. This is the exact compiled path the serving daemon runs, so a
// search candidate and a `POST /v1/predict` of the same spec are
// answered by the same code (and the same content-addressed cache key).
func candidateSpec(p config.Params, ns []int) scenario.Spec {
	name := p.Name
	if name == "" {
		name = "candidate"
	}
	return scenario.Spec{
		Name:          "boost-" + name,
		Engine:        scenario.EngineModel,
		SimTimeMicros: 1e6, // rates and probabilities are horizon-free
		SweepN:        ns,
		Stations:      []scenario.Group{{Count: 1, CW: p.CW, DC: p.DC}},
	}
}

// ScoreModel evaluates one configuration across the given station
// counts with the analytical model, through the compiled scenario path
// (scenario.Compile + RunOnce on a model-engine spec).
func ScoreModel(p config.Params, ns []int) (Candidate, error) {
	c := Candidate{
		Params:     p,
		Throughput: make(map[int]float64, len(ns)),
		Collision:  make(map[int]float64, len(ns)),
		Score:      math.Inf(1),
	}
	compiled, err := scenario.Compile(candidateSpec(p, ns))
	if err != nil {
		return Candidate{}, fmt.Errorf("boost: compile %s: %w", p.Name, err)
	}
	for i, point := range compiled.Points {
		metrics, err := scenario.RunOnce(point, 0)
		if err != nil {
			return Candidate{}, fmt.Errorf("boost: model for %s at N=%d: %w", p.Name, ns[i], err)
		}
		var thr, coll float64
		for _, m := range metrics {
			switch m.Name {
			case "norm_throughput":
				thr = m.Value
			case "collision_pr":
				coll = m.Value
			}
		}
		c.Throughput[ns[i]] = thr
		c.Collision[ns[i]] = coll
		if thr < c.Score {
			c.Score = thr
		}
	}
	return c, nil
}

// SearchCampaign lowers the whole candidate space onto the campaign
// layer: a model-engine base scenario swept over three axes —
// stations[0].cw (one vector per CW0×growth pair), stations[0].dc (the
// deferral schedules) and n (the evaluation station counts) — in the
// exact row-major order Enumerate materializes candidates. Running many
// related scenarios is one code path: the grid a Search evaluates is
// the same campaign a `POST /v1/campaigns` submission of this spec
// runs, point for point and fingerprint for fingerprint.
func SearchCampaign(space Space, ns []int) (campaign.Spec, error) {
	if len(ns) == 0 {
		return campaign.Spec{}, fmt.Errorf("boost: no station counts to evaluate")
	}
	params, err := space.Enumerate()
	if err != nil {
		return campaign.Spec{}, err
	}
	return searchCampaign(space, params, ns)
}

// searchCampaign builds the campaign from an already-enumerated
// candidate list, so Search and SearchCampaign share one enumeration
// and one ordering (the point-index math in Search depends on it).
func searchCampaign(space Space, params []config.Params, ns []int) (campaign.Spec, error) {
	rawInts := func(vs []int) json.RawMessage {
		data, err := json.Marshal(vs)
		if err != nil {
			panic(fmt.Sprintf("boost: marshal int vector: %v", err)) // unreachable
		}
		return data
	}
	// Enumerate orders candidates (cw0, growth)-major, dc-minor: the cw
	// vector of candidate k*len(DCSchedules) is the k-th distinct
	// window schedule.
	var cwVals []json.RawMessage
	for k := 0; k < len(params); k += len(space.DCSchedules) {
		cwVals = append(cwVals, rawInts(params[k].CW))
	}
	var dcVals []json.RawMessage
	for _, dc := range space.DCSchedules {
		dcVals = append(dcVals, rawInts(dc))
	}
	var nVals []json.RawMessage
	for _, n := range ns {
		data, err := json.Marshal(n)
		if err != nil {
			return campaign.Spec{}, err // unreachable: ints always marshal
		}
		nVals = append(nVals, data)
	}
	return campaign.Spec{
		Name:        "boost-search",
		Description: "Model-guided (cw, dc) search grid: every candidate configuration scored across the evaluation station counts.",
		Base: scenario.Spec{
			Name:          "boost-search",
			Engine:        scenario.EngineModel,
			SimTimeMicros: 1e6, // rates and probabilities are horizon-free
			Stations:      []scenario.Group{{Count: 1, CW: params[0].CW, DC: params[0].DC}},
		},
		Axes: []campaign.Axis{
			{Path: "stations[0].cw", Values: cwVals},
			{Path: "stations[0].dc", Values: dcVals},
			{Path: "n", Values: nVals},
		},
		Reps: 1, // model points are deterministic
	}, nil
}

// Search scores the whole space with the model and returns candidates
// sorted by descending score. ns must be non-empty.
//
// The sweep runs as a campaign (SearchCampaign) over the process-wide
// par width: one grid point per (candidate, N) pair, answered through
// the same compiled scenario path the serving daemon uses.
func Search(space Space, ns []int) ([]Candidate, error) {
	if len(ns) == 0 {
		return nil, fmt.Errorf("boost: no station counts to evaluate")
	}
	params, err := space.Enumerate()
	if err != nil {
		return nil, err
	}
	spec, err := searchCampaign(space, params, ns)
	if err != nil {
		return nil, err
	}
	compiled, err := campaign.Compile(spec)
	if err != nil {
		return nil, fmt.Errorf("boost: compile search campaign: %w", err)
	}
	report, err := campaign.Run(compiled, campaign.Opts{Workers: par.DefaultWorkers()})
	if err != nil {
		return nil, fmt.Errorf("boost: run search campaign: %w", err)
	}
	if len(report.Points) != len(params)*len(ns) {
		return nil, fmt.Errorf("boost: campaign expanded %d points, want %d candidates × %d counts",
			len(report.Points), len(params), len(ns))
	}

	out := make([]Candidate, len(params))
	for ci, p := range params {
		out[ci] = Candidate{
			Params:     p,
			Throughput: make(map[int]float64, len(ns)),
			Collision:  make(map[int]float64, len(ns)),
			Score:      math.Inf(1),
		}
	}
	// Row-major grid, n innermost: point index = candidate·len(ns) + ni.
	for i, pt := range report.Points {
		ci, ni := i/len(ns), i%len(ns)
		c := &out[ci]
		for _, m := range pt.Report.Points[0].Metrics {
			switch m.Name {
			case "norm_throughput":
				c.Throughput[ns[ni]] = m.Summary.Mean
			case "collision_pr":
				c.Collision[ns[ni]] = m.Summary.Mean
			}
		}
		if thr := c.Throughput[ns[ni]]; thr < c.Score {
			c.Score = thr
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}

// Validation is a simulator-verified candidate.
type Validation struct {
	Candidate Candidate
	// SimThroughput and SimCollision map N → simulator results.
	SimThroughput map[int]float64
	SimCollision  map[int]float64
	// ShortTermJain maps N → mean sliding-window Jain index (window =
	// 10 transmissions), the short-term fairness measure.
	ShortTermJain map[int]float64
	// SimScore is min-over-N simulator throughput.
	SimScore float64
}

// Validate runs the simulator on a candidate across the given Ns.
func Validate(c Candidate, ns []int, simTime float64, seed uint64) (Validation, error) {
	v := Validation{
		Candidate:     c,
		SimThroughput: make(map[int]float64, len(ns)),
		SimCollision:  make(map[int]float64, len(ns)),
		ShortTermJain: make(map[int]float64, len(ns)),
		SimScore:      math.Inf(1),
	}
	for _, n := range ns {
		in := sim.DefaultInputs(n)
		in.SimTime = simTime
		in.Params = c.Params
		in.Seed = seed
		e, err := sim.NewEngine(in)
		if err != nil {
			return Validation{}, err
		}
		rec := &winnerRecorder{}
		e.SetObserver(rec)
		r := e.Run()
		v.SimThroughput[n] = r.NormalizedThroughput
		v.SimCollision[n] = r.CollisionProbability
		if r.NormalizedThroughput < v.SimScore {
			v.SimScore = r.NormalizedThroughput
		}

		universe := make([]int, n)
		for i := range universe {
			universe[i] = i
		}
		if n >= 2 && len(rec.winners) >= 10 {
			st, err := fairness.ShortTermJain(rec.winners, universe, 10)
			if err != nil {
				return Validation{}, err
			}
			v.ShortTermJain[n] = st.MeanJain
		} else {
			v.ShortTermJain[n] = 1
		}
	}
	return v, nil
}

// winnerRecorder implements sim.Observer, retaining success winners.
type winnerRecorder struct{ winners []int }

// OnSlot records the winner of each successful slot.
func (o *winnerRecorder) OnSlot(_ float64, kind sim.SlotKind, txs []int, _ []backoff.Snapshot) {
	if kind == sim.Success {
		o.winners = append(o.winners, txs[0])
	}
}

// ValidateTop validates the best k candidates and re-ranks by simulator
// score.
func ValidateTop(cands []Candidate, k int, ns []int, simTime float64, seed uint64) ([]Validation, error) {
	if k > len(cands) {
		k = len(cands)
	}
	out, err := par.MapDefault(cands[:k], func(_ int, c Candidate) (Validation, error) {
		return Validate(c, ns, simTime, seed)
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].SimScore > out[j].SimScore })
	return out, nil
}

// ParetoFront filters validations to the throughput/fairness Pareto
// frontier at station count n: a validation survives if no other
// validation is at least as good on both axes and strictly better on
// one.
func ParetoFront(vs []Validation, n int) []Validation {
	var front []Validation
	for i, a := range vs {
		dominated := false
		for j, b := range vs {
			if i == j {
				continue
			}
			if b.SimThroughput[n] >= a.SimThroughput[n] && b.ShortTermJain[n] >= a.ShortTermJain[n] &&
				(b.SimThroughput[n] > a.SimThroughput[n] || b.ShortTermJain[n] > a.ShortTermJain[n]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, a)
		}
	}
	return front
}
