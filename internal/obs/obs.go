// Package obs is the repository's dependency-free observability layer:
// a metrics registry of atomic counters, gauges and fixed-bucket
// histograms with a lock-free, allocation-free hot path, rendered in
// the Prometheus text exposition format (text/plain; version=0.0.4),
// plus the sanctioned wall-clock accessors (Now, Since, Timeline) that
// result-producing packages route operational timing through.
//
// Two invariants shape the design:
//
//   - Determinism neutrality. Nothing in this package ever feeds a
//     result fingerprint or a rendered report: instrumentation observes
//     computation, it never participates in it. The plclint detrand
//     analyzer enforces the split — internal/obs is the one package
//     besides internal/rng allowed to touch nondeterministic inputs
//     (here: the wall clock), and every other instrumented package
//     reads time only through it.
//
//   - A free hot path. Counter.Inc/Add, Gauge.Set/Add and
//     Histogram.Observe are single atomic operations (the histogram
//     adds a CAS loop for its float sum) with zero allocations, pinned
//     by the //plclint:noalloc escape gate and an AllocsPerRun test,
//     so instrumenting a serving path costs nanoseconds, not a lock.
//
// Registration (NewCounter, NewHistogramVec, …) is wiring-time work and
// panics on programmer error — duplicate or malformed names — exactly
// like http.ServeMux.Handle.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric families, in exposition TYPE terms.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Registry holds metric families and renders them. The zero value is
// not usable; create with NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is one named metric family: a fixed type, help text and label
// schema, plus its children (one per label-value combination).
type family struct {
	name   string
	help   string
	typ    string
	labels []string  // label names; empty for unlabeled families
	bounds []float64 // histogram bucket upper bounds (sorted, +Inf implicit)
	fn     func() float64

	mu       sync.Mutex
	children map[string]renderable // key: joined label values
	keys     []string              // child keys, kept sorted for rendering
}

// renderable is the per-child rendering hook each metric type provides.
type renderable interface {
	render(b []byte, name, labels string) []byte
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register validates and installs a family, panicking on wiring errors:
// a duplicate name, a malformed name or label, unsorted histogram
// buckets. Metric registration happens once at construction time, so a
// panic here is a programmer error surfaced at startup, not a runtime
// hazard.
func (r *Registry) register(f *family) *family {
	if !validName(f.name, true) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l, false) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", f.name, l))
		}
	}
	for i := 1; i < len(f.bounds); i++ {
		if !(f.bounds[i] > f.bounds[i-1]) {
			panic(fmt.Sprintf("obs: metric %s: histogram bounds not strictly increasing", f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric name %q", f.name))
	}
	f.children = make(map[string]renderable)
	r.fams[f.name] = f
	return f
}

// validName checks a metric or label name against the exposition
// grammar (metric names may additionally contain colons).
func validName(s string, metric bool) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == ':' && metric:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// child resolves (creating on first use) the family's child for the
// given label values. Lookup takes the family mutex — callers resolve
// children once at wiring time and hold the returned handle; the
// handle's own operations are lock-free.
func (f *family) child(values []string, make func(labels string) renderable) renderable {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s: got %d label values for %d labels", f.name, len(values), len(f.labels)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := make(renderLabels(f.labels, values))
	f.children[key] = c
	f.keys = append(f.keys, key)
	sort.Strings(f.keys)
	return c
}

// renderLabels renders `{name="value",...}` with exposition escaping,
// or "" for an unlabeled child.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes HELP text per the exposition format.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// A Counter is a monotonically increasing count. All methods are safe
// for concurrent use and allocation-free.
type Counter struct {
	labels string
	v      atomic.Uint64
}

// Inc adds one.
//
//plclint:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//plclint:noalloc
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, typ: typeCounter})
	return f.counter(nil)
}

// A CounterVec is a counter family with labels; resolve children with
// With at wiring time and hold the handles.
type CounterVec struct{ f *family }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(&family{name: name, help: help, typ: typeCounter, labels: labelNames})}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.counter(values) }

func (f *family) counter(values []string) *Counter {
	return f.child(values, func(labels string) renderable { return &Counter{labels: labels} }).(*Counter)
}

// A Gauge is a value that can go up and down. All methods are safe for
// concurrent use and allocation-free.
type Gauge struct {
	labels string
	v      atomic.Int64
}

// Set replaces the value.
//
//plclint:noalloc
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
//
//plclint:noalloc
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, typ: typeGauge})
	return f.gauge(nil)
}

// A GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(&family{name: name, help: help, typ: typeGauge, labels: labelNames})}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.gauge(values) }

func (f *family) gauge(values []string) *Gauge {
	return f.child(values, func(labels string) renderable { return &Gauge{labels: labels} }).(*Gauge)
}

// NewCounterFunc registers a counter whose value is read from fn at
// render time — the view over a total another subsystem already tracks
// (journal write failures, say), so the registry exposes it without
// becoming a second source of truth. fn must be monotone and safe for
// concurrent use.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: typeCounter, fn: fn})
}

// NewGaugeFunc registers a gauge whose value is read from fn at render
// time (queue depth, cache occupancy). fn must be safe for concurrent
// use.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: typeGauge, fn: fn})
}

// A Histogram counts observations into fixed buckets. Observe is
// lock-free (atomic bucket and count increments plus a CAS loop for
// the float sum) and allocation-free; the bucket scan is linear, which
// beats binary search at the ≲20-bucket sizes latency histograms use.
type Histogram struct {
	labels  string
	bounds  []float64
	buckets []atomic.Uint64 // one per bound, plus the +Inf overflow at the end
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits
}

// Observe records one value.
//
//plclint:noalloc
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// NewHistogram registers an unlabeled histogram with the given bucket
// upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	f := r.register(&family{name: name, help: help, typ: typeHistogram, bounds: append([]float64(nil), bounds...)})
	return f.histogram(nil)
}

// A HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.register(&family{
		name: name, help: help, typ: typeHistogram,
		bounds: append([]float64(nil), bounds...), labels: labelNames,
	})}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.histogram(values) }

func (f *family) histogram(values []string) *Histogram {
	return f.child(values, func(labels string) renderable {
		return &Histogram{labels: labels, bounds: f.bounds, buckets: make([]atomic.Uint64, len(f.bounds)+1)}
	}).(*Histogram)
}

// LatencyBuckets returns the default duration buckets (seconds) for
// service-time and latency histograms: 1 ms to 5 min, roughly
// geometric — wide enough for a cached hit and an adaptive campaign
// alike.
func LatencyBuckets() []float64 {
	return []float64{
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
		1, 2.5, 5, 10, 30, 60, 120, 300,
	}
}
