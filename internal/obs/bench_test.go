package obs

import "testing"

// BenchmarkMetricsHotPath measures the per-event instrumentation cost
// on the serving path: one counter increment plus one latency-histogram
// observation, which is what recording a finished job costs.
func BenchmarkMetricsHotPath(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounterVec("bench_jobs_total", "jobs", "kind", "state").With("scenario", "done")
	h := r.NewHistogramVec("bench_latency_seconds", "latency", LatencyBuckets(), "kind").With("scenario")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(0.0173)
	}
}

// BenchmarkMetricsHotPathParallel exercises the same pair under
// contention from all procs — the shape a busy server produces.
func BenchmarkMetricsHotPathParallel(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounter("bench_par_total", "par")
	h := r.NewHistogram("bench_par_seconds", "par", LatencyBuckets())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
			h.Observe(0.0173)
		}
	})
}

// BenchmarkRender measures a full /metrics scrape over a registry of
// realistic size.
func BenchmarkRender(b *testing.B) {
	r, _, _ := testRegistry()
	var buf discard
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Render(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
