package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// testRegistry builds a registry exercising every family kind, label
// shape and escaping edge the renderer supports.
func testRegistry() (*Registry, *Counter, *Histogram) {
	r := NewRegistry()
	c := r.NewCounter("test_requests_total", "Requests handled.")
	c.Add(41)
	c.Inc()
	cv := r.NewCounterVec("test_outcomes_total", "Outcomes by kind and state.", "kind", "state")
	cv.With("scenario", "done").Add(7)
	cv.With("campaign", "failed").Inc()
	cv.With("scenario", `we"ird\val`+"\nue").Inc() // escaping edge
	g := r.NewGauge("test_queue_depth", "Jobs waiting.")
	g.Set(3)
	gv := r.NewGaugeVec("test_occupancy", "Occupancy by tier.", "tier")
	gv.With("memory").Set(128)
	gv.With("disk").Set(1 << 30)
	r.NewGaugeFunc("test_live_records", "Live journal records.", func() float64 { return 12 })
	r.NewCounterFunc("test_write_failures_total", "Dropped writes.", func() float64 { return 2 })
	h := r.NewHistogram("test_latency_seconds", "E2E latency.\nSecond help line.", LatencyBuckets())
	for _, v := range []float64{0.0005, 0.003, 0.003, 0.07, 2, 1000} {
		h.Observe(v)
	}
	hv := r.NewHistogramVec("test_service_seconds", "Service time by kind.", []float64{0.01, 0.1, 1}, "kind")
	hv.With("scenario").Observe(0.05)
	hv.With("campaign").Observe(5)
	return r, c, h
}

// TestExpositionConformance is the format conformance gate: everything
// the registry renders must re-parse, and every family must satisfy
// the text-exposition invariants — exactly one HELP and TYPE line,
// histogram buckets cumulative and monotone ending in +Inf, _count
// equal to the +Inf bucket, and _sum consistent with the observations.
func TestExpositionConformance(t *testing.T) {
	r, _, _ := testRegistry()
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	fams, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("rendered exposition does not parse: %v\n%s", err, text)
	}
	want := map[string]string{
		"test_requests_total":       "counter",
		"test_outcomes_total":       "counter",
		"test_queue_depth":          "gauge",
		"test_occupancy":            "gauge",
		"test_live_records":         "gauge",
		"test_write_failures_total": "counter",
		"test_latency_seconds":      "histogram",
		"test_service_seconds":      "histogram",
	}
	if len(fams) != len(want) {
		t.Errorf("parsed %d families, want %d", len(fams), len(want))
	}
	for name, typ := range want {
		f := fams[name]
		if f == nil {
			t.Errorf("family %s missing", name)
			continue
		}
		if f.Type != typ {
			t.Errorf("family %s: type %q, want %q", name, f.Type, typ)
		}
		if f.Help == "" {
			t.Errorf("family %s: no HELP line", name)
		}
		if len(f.Samples) == 0 {
			t.Errorf("family %s: no samples", name)
		}
		if f.Type == "histogram" {
			checkHistogram(t, f)
		}
	}

	// HELP/TYPE exactly once per family: the parser already rejects
	// duplicates, so surviving ParseText plus one count check pins it.
	for name := range want {
		if got := strings.Count(text, "# TYPE "+name+" "); got != 1 {
			t.Errorf("family %s: %d TYPE lines, want 1", name, got)
		}
		if got := strings.Count(text, "# HELP "+name+" "); got != 1 {
			t.Errorf("family %s: %d HELP lines, want 1", name, got)
		}
	}

	// Specific values survive the round trip.
	if v, ok := fams["test_requests_total"].Value(nil); !ok || v != 42 {
		t.Errorf("test_requests_total = %v, %v; want 42", v, ok)
	}
	if v, ok := fams["test_outcomes_total"].Value(map[string]string{"kind": "scenario", "state": "done"}); !ok || v != 7 {
		t.Errorf("outcomes{scenario,done} = %v, %v; want 7", v, ok)
	}
	if v, ok := fams["test_outcomes_total"].Value(map[string]string{"kind": "scenario", "state": `we"ird\val` + "\nue"}); !ok || v != 1 {
		t.Errorf("escaped label value did not round-trip: %v, %v", v, ok)
	}
	if v, ok := fams["test_occupancy"].Value(map[string]string{"tier": "disk"}); !ok || v != 1<<30 {
		t.Errorf("occupancy{disk} = %v, %v; want 2^30", v, ok)
	}

	// Deterministic rendering: a second scrape of the unchanged
	// registry is byte-identical.
	var sb2 strings.Builder
	if err := r.Render(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != text {
		t.Error("two renders of an idle registry differ")
	}
}

// checkHistogram asserts the histogram family invariants for every
// label set present in the family.
func checkHistogram(t *testing.T, f *ParsedFamily) {
	t.Helper()
	// Collect the distinct non-le label sets.
	seen := map[string]map[string]string{}
	for _, s := range f.Samples {
		key, match := "", map[string]string{}
		for k, v := range s.Labels {
			if k == "le" {
				continue
			}
			match[k] = v
		}
		for k, v := range match {
			key += k + "=" + v + ";"
		}
		seen[key] = match
	}
	for _, match := range seen {
		bounds, cum, sum, count := f.Buckets(match)
		if len(bounds) == 0 {
			t.Errorf("%s%v: no buckets", f.Name, match)
			continue
		}
		if !math.IsInf(bounds[len(bounds)-1], 1) {
			t.Errorf("%s%v: last bucket le=%v, want +Inf", f.Name, match, bounds[len(bounds)-1])
		}
		for i := 1; i < len(cum); i++ {
			if cum[i] < cum[i-1] {
				t.Errorf("%s%v: bucket counts not monotone at %d: %v", f.Name, match, i, cum)
			}
		}
		if cum[len(cum)-1] != count {
			t.Errorf("%s%v: _count = %d, +Inf bucket = %d", f.Name, match, count, cum[len(cum)-1])
		}
		if count > 0 && (math.IsNaN(sum) || sum < 0 && f.Name != "negative") {
			t.Errorf("%s%v: implausible _sum %v", f.Name, match, sum)
		}
	}
}

// TestHistogramSum pins _sum exactly against known observations.
func TestHistogramSum(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("s", "sum check", []float64{1})
	want := 0.0
	for _, v := range []float64{0.25, 0.5, 3} {
		h.Observe(v)
		want += v
	}
	if h.Sum() != want {
		t.Errorf("Sum = %v, want %v", h.Sum(), want)
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3", h.Count())
	}
}

// TestConcurrentNoLostIncrements hammers one counter, one gauge and
// one histogram from many goroutines and asserts exact totals — under
// -race this doubles as the data-race gate for the whole hot path.
func TestConcurrentNoLostIncrements(t *testing.T) {
	const goroutines, perG = 16, 5000
	r := NewRegistry()
	c := r.NewCounter("c_total", "c")
	g := r.NewGauge("g", "g")
	h := r.NewHistogram("h", "h", []float64{0.5, 1.5, 2.5})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(k % 4)) // buckets 0.5,1.5,2.5,+Inf each hit perG/4 times
			}
		}(i)
	}
	wg.Wait()
	const total = goroutines * perG
	if c.Value() != total {
		t.Errorf("counter = %d, want %d (lost increments)", c.Value(), total)
	}
	if g.Value() != total {
		t.Errorf("gauge = %d, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	wantSum := float64(goroutines) * (perG / 4) * (0 + 1 + 2 + 3)
	if h.Sum() != wantSum {
		t.Errorf("histogram sum = %v, want %v (lost CAS update)", h.Sum(), wantSum)
	}
	for i, n := range h.BucketCounts() {
		if n != total/4 {
			t.Errorf("bucket %d = %d, want %d", i, n, total/4)
		}
	}
}

// TestHotPathAllocationFree is the dynamic twin of the
// //plclint:noalloc escape gate: the instrument operations must not
// allocate, or instrumenting the serving path would put pressure on
// the GC exactly when the server is busiest.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c")
	g := r.NewGauge("g", "g")
	h := r.NewHistogram("h", "h", LatencyBuckets())
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(2) }); n != 0 {
		t.Errorf("Counter.Inc/Add allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(7); g.Add(-1) }); n != 0 {
		t.Errorf("Gauge.Set/Add allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.017) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op, want 0", n)
	}
}

// TestRegistrationPanics pins the wiring-time error contract.
func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.NewCounter("dup_total", "first")
	mustPanic("duplicate name", func() { r.NewGauge("dup_total", "second") })
	mustPanic("bad metric name", func() { r.NewCounter("0bad", "x") })
	mustPanic("bad label name", func() { r.NewCounterVec("v_total", "x", "le gal") })
	mustPanic("unsorted buckets", func() { r.NewHistogram("h", "x", []float64{2, 1}) })
	v := r.NewCounterVec("arity_total", "x", "a", "b")
	mustPanic("label arity", func() { v.With("only-one") })
}

// TestHistogramBucketBoundaryInclusive pins the exposition semantics:
// le is inclusive, so an observation exactly on a bound lands in that
// bound's bucket.
func TestHistogramBucketBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "h", []float64{1, 2})
	h.Observe(1) // exactly on the first bound
	if got := h.BucketCounts(); got[0] != 1 || got[1] != 0 || got[2] != 0 {
		t.Errorf("buckets after Observe(1) = %v, want [1 0 0]", got)
	}
}

// TestTimeline covers marks, ordering, durations and the length cap.
func TestTimeline(t *testing.T) {
	var tl Timeline
	tl.Mark("accepted")
	tl.Mark("running")
	time.Sleep(time.Millisecond)
	tl.Mark("done")
	st := tl.Stages()
	if len(st) != 3 || st[0].Name != "accepted" || st[2].Name != "done" {
		t.Fatalf("stages = %+v", st)
	}
	for i := 1; i < len(st); i++ {
		if st[i].At.Before(st[i-1].At) {
			t.Errorf("stage %d out of order", i)
		}
	}
	if d, ok := tl.Between("running", "done"); !ok || d < time.Millisecond {
		t.Errorf("Between(running, done) = %v, %v", d, ok)
	}
	if _, ok := tl.Between("done", "running"); ok {
		t.Error("Between matched out-of-order stages")
	}
	var capped Timeline
	for i := 0; i < timelineCap+10; i++ {
		capped.Mark("x")
	}
	if n := len(capped.Stages()); n != timelineCap {
		t.Errorf("capped timeline has %d stages, want %d", n, timelineCap)
	}
}
