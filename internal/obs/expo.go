package obs

import (
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// ContentType is the exposition format version the renderer emits.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Render writes every family in the Prometheus text exposition format:
// families sorted by name, each with one `# HELP` and one `# TYPE`
// line, children sorted by label values, histograms as cumulative
// `_bucket{le=…}` series ending in `+Inf` plus `_sum` and `_count`.
// The rendering order is deterministic, so two scrapes of an idle
// registry are byte-identical.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	var b []byte
	for _, f := range fams {
		b = f.render(b[:0])
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns the GET /metrics endpoint over this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.Render(w) // the only write error is a gone client; nothing to do
	})
}

// render appends one family's exposition block.
func (f *family) render(b []byte) []byte {
	b = append(b, "# HELP "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = append(b, escapeHelp(f.help)...)
	b = append(b, '\n')
	b = append(b, "# TYPE "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = append(b, f.typ...)
	b = append(b, '\n')

	if f.fn != nil {
		b = append(b, f.name...)
		b = append(b, ' ')
		b = appendFloat(b, f.fn())
		return append(b, '\n')
	}

	f.mu.Lock()
	children := make([]renderable, 0, len(f.keys))
	for _, key := range f.keys {
		children = append(children, f.children[key])
	}
	f.mu.Unlock()
	for _, c := range children {
		b = c.render(b, f.name, "")
	}
	return b
}

func (c *Counter) render(b []byte, name, _ string) []byte {
	b = append(b, name...)
	b = append(b, c.labels...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, c.v.Load(), 10)
	return append(b, '\n')
}

func (g *Gauge) render(b []byte, name, _ string) []byte {
	b = append(b, name...)
	b = append(b, g.labels...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, g.v.Load(), 10)
	return append(b, '\n')
}

// render emits the histogram's cumulative bucket series. A concurrent
// Observe between the bucket loads and the count load can make the
// snapshot momentarily inconsistent (count one ahead of the +Inf
// bucket); rendering therefore derives _count from the bucket sum, so
// every emitted histogram satisfies the format's invariants exactly.
func (h *Histogram) render(b []byte, name, _ string) []byte {
	var cum uint64
	appendSeries := func(b []byte, suffix, labels string, v uint64) []byte {
		b = append(b, name...)
		b = append(b, suffix...)
		b = append(b, labels...)
		b = append(b, ' ')
		b = strconv.AppendUint(b, v, 10)
		return append(b, '\n')
	}
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		b = appendSeries(b, "_bucket", bucketLabels(h.labels, le), cum)
	}
	b = append(b, name...)
	b = append(b, "_sum"...)
	b = append(b, h.labels...)
	b = append(b, ' ')
	b = appendFloat(b, math.Float64frombits(h.sum.Load()))
	b = append(b, '\n')
	return appendSeries(b, "_count", h.labels, cum)
}

// bucketLabels merges a child's label block with the le label.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	// labels is `{a="b",…}`: splice le before the closing brace.
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// appendFloat renders a sample value: integers without an exponent,
// everything else in Go's shortest-round-trip form.
func appendFloat(b []byte, v float64) []byte {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendFloat(b, v, 'f', -1, 64)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Snapshot support: reading a histogram's buckets for tests and for
// client-side summaries (plcload) goes through BucketCounts, which
// returns the non-cumulative per-bucket counts with the +Inf overflow
// last.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Bounds returns the histogram's bucket upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 {
	return append([]float64(nil), h.bounds...)
}
