package obs

import (
	"sync"
	"time"
)

// Now reads the wall clock. internal/obs is the plclint-detrand-
// sanctioned owner of wall-clock time: result-producing packages that
// need operational timestamps (job service timing, trace timelines,
// Retry-After estimation) call obs.Now instead of time.Now, keeping
// the determinism analyzer's guarantee auditable — a time.Now anywhere
// else in a result package is a finding, not a judgment call.
//
// Nothing read here may ever feed a result fingerprint or a rendered
// report; obs timestamps are operational metadata only.
func Now() time.Time { return time.Now() }

// Since returns the wall-clock time elapsed since t. See Now.
func Since(t time.Time) time.Duration { return time.Since(t) }

// A Stage is one marked point of a Timeline.
type Stage struct {
	Name string
	At   time.Time
}

// A Timeline records a bounded sequence of named wall-clock marks —
// the lifecycle trace of one job (accepted → queued → running →
// batches → terminal). It is safe for concurrent use; the zero value
// is ready.
type Timeline struct {
	mu     sync.Mutex
	stages []Stage
}

// timelineCap bounds a timeline's length so a pathological caller
// cannot grow one without bound; marks past the cap are dropped (the
// terminal mark always lands because callers mark a fixed stage set).
const timelineCap = 64

// Mark appends a stage at the current wall-clock time and returns that
// time.
func (t *Timeline) Mark(name string) time.Time {
	now := Now()
	t.MarkAt(name, now)
	return now
}

// MarkAt appends a stage at an explicit time (for callers that already
// hold a Now() read).
func (t *Timeline) MarkAt(name string, at time.Time) {
	t.mu.Lock()
	if len(t.stages) < timelineCap {
		t.stages = append(t.stages, Stage{Name: name, At: at})
	}
	t.mu.Unlock()
}

// Stages returns a copy of the marks in order.
func (t *Timeline) Stages() []Stage {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Stage(nil), t.stages...)
}

// Between returns the duration between the first marks named from and
// to (ok=false when either is missing or out of order).
func (t *Timeline) Between(from, to string) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var f, g *time.Time
	for i := range t.stages {
		switch {
		case f == nil && t.stages[i].Name == from:
			f = &t.stages[i].At
		case f != nil && g == nil && t.stages[i].Name == to:
			g = &t.stages[i].At
		}
	}
	if f == nil || g == nil {
		return 0, false
	}
	return g.Sub(*f), true
}
