package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a strict parser
// for the text/plain; version=0.0.4 rendering. It exists for two
// consumers — the conformance test, which re-parses everything the
// registry emits and checks the format's invariants, and cmd/plcload,
// which scrapes a server's /metrics before and after a load run to
// print the server-side summary.

// A Sample is one parsed series line.
type Sample struct {
	// Name is the full series name as emitted (including a _bucket,
	// _sum or _count suffix on histogram series).
	Name string
	// Labels holds the series' label pairs (nil when unlabeled).
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// A ParsedFamily is one metric family as scraped.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// ParseText parses a text exposition stream into its families, keyed
// by family name. It is strict about the properties the renderer
// guarantees: every sample must be preceded by that family's # TYPE
// line, HELP/TYPE may appear only once per family, and histogram
// sample names must be the family name plus _bucket/_sum/_count.
func ParseText(r io.Reader) (map[string]*ParsedFamily, error) {
	fams := make(map[string]*ParsedFamily)
	var current *ParsedFamily
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "# HELP ") {
			name, help, _ := strings.Cut(text[len("# HELP "):], " ")
			if f := fams[name]; f != nil && f.Help != "" {
				return nil, fmt.Errorf("obs: parse line %d: duplicate HELP for %s", line, name)
			}
			f := familyFor(fams, name)
			f.Help = help
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			name, typ, ok := strings.Cut(text[len("# TYPE "):], " ")
			if !ok {
				return nil, fmt.Errorf("obs: parse line %d: malformed TYPE line %q", line, text)
			}
			f := familyFor(fams, name)
			if f.Type != "" {
				return nil, fmt.Errorf("obs: parse line %d: duplicate TYPE for %s", line, name)
			}
			f.Type = typ
			current = f
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // other comments are legal in the format
		}
		s, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("obs: parse line %d: %w", line, err)
		}
		if current == nil || !sampleBelongs(current, s.Name) {
			return nil, fmt.Errorf("obs: parse line %d: sample %s outside its family's TYPE block", line, s.Name)
		}
		current.Samples = append(current.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

func familyFor(fams map[string]*ParsedFamily, name string) *ParsedFamily {
	if f, ok := fams[name]; ok {
		return f
	}
	f := &ParsedFamily{Name: name}
	fams[name] = f
	return f
}

// sampleBelongs reports whether a series name belongs to the family —
// the name itself, or (for histograms) its _bucket/_sum/_count series.
func sampleBelongs(f *ParsedFamily, series string) bool {
	if series == f.Name {
		return true
	}
	if f.Type != "histogram" {
		return false
	}
	rest, ok := strings.CutPrefix(series, f.Name)
	if !ok {
		return false
	}
	return rest == "_bucket" || rest == "_sum" || rest == "_count"
}

// parseSample parses `name{l="v",…} value`.
func parseSample(text string) (Sample, error) {
	s := Sample{}
	rest := text
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", text)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label block in %q", text)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, fmt.Errorf("%v in %q", err, text)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", rest, text)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `a="b",c="d"` (no escapes beyond \\ \" \n, which
// is all the renderer emits).
func parseLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	for s != "" {
		eq := strings.Index(s, "=")
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label pair")
		}
		name := s[:eq]
		rest := s[eq+2:]
		var b strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, fmt.Errorf("unknown escape \\%c", rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i == len(rest) {
			return nil, fmt.Errorf("unterminated label value")
		}
		out[name] = b.String()
		s = rest[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}

// parseValue parses a sample value, accepting the +Inf/-Inf/NaN
// spellings the format defines.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Buckets extracts a parsed histogram family's cumulative buckets for
// one label set (ignoring le), sorted by bound with +Inf last, plus
// its _sum and _count. match selects the series: every non-le label
// must equal the corresponding entry (nil matches the unlabeled
// child).
func (f *ParsedFamily) Buckets(match map[string]string) (bounds []float64, cum []uint64, sum float64, count uint64) {
	type bkt struct {
		le float64
		v  uint64
	}
	var bkts []bkt
	for _, s := range f.Samples {
		if !labelsMatch(s.Labels, match, true) {
			continue
		}
		switch s.Name {
		case f.Name + "_sum":
			sum = s.Value
		case f.Name + "_count":
			count = uint64(s.Value)
		case f.Name + "_bucket":
			le, err := parseValue(s.Labels["le"])
			if err != nil {
				continue
			}
			bkts = append(bkts, bkt{le, uint64(s.Value)})
		}
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	for _, b := range bkts {
		bounds = append(bounds, b.le)
		cum = append(cum, b.v)
	}
	return bounds, cum, sum, count
}

// Value returns the single sample value for one label set of a counter
// or gauge family (ok=false when absent).
func (f *ParsedFamily) Value(match map[string]string) (float64, bool) {
	for _, s := range f.Samples {
		if s.Name == f.Name && labelsMatch(s.Labels, match, false) {
			return s.Value, true
		}
	}
	return 0, false
}

// labelsMatch reports whether the sample's labels equal match
// (ignoring le when ignoreLE), treating nil and empty alike.
func labelsMatch(labels, match map[string]string, ignoreLE bool) bool {
	n := 0
	for k, v := range labels {
		if ignoreLE && k == "le" {
			continue
		}
		if match[k] != v {
			return false
		}
		n++
	}
	return n == len(match)
}
