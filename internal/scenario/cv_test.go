package scenario

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/stats"
	"repro/internal/stats/statcheck"
)

// cvSpec is a small saturated sim spec with the given variance-
// reduction block (nil for plain).
func cvSpec(vr *VarianceReduction) Spec {
	return Spec{
		Name:              "cv-spec",
		SimTimeMicros:     3e5,
		Seed:              11,
		Stations:          []Group{{Count: 3}},
		VarianceReduction: vr,
	}
}

// TestCVDisabledBlockIsCanonicallyAbsent pins the fingerprint contract
// for the "present but disabled" spellings: kind "" or "none" must
// normalize to no block at all, so the canonical bytes — and hence the
// cache keys — coincide with a spec that never mentioned variance
// reduction. A served job submitted either way dedupes onto the same
// entry.
func TestCVDisabledBlockIsCanonicallyAbsent(t *testing.T) {
	plain := cvSpec(nil)
	for _, kind := range []string{"", VRNone} {
		disabled := cvSpec(&VarianceReduction{Kind: kind})
		pc, err := plain.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		dc, err := disabled.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pc, dc) {
			t.Errorf("kind %q: canonical bytes differ from the absent block:\n%s\n%s", kind, pc, dc)
		}
		pf, err := Fingerprint(plain, 5)
		if err != nil {
			t.Fatal(err)
		}
		df, err := Fingerprint(disabled, 5)
		if err != nil {
			t.Fatal(err)
		}
		if pf != df {
			t.Errorf("kind %q: fingerprint %s differs from the absent block's %s", kind, df, pf)
		}
	}
}

// TestCVEnabledChangesFingerprint pins the other half of the cache
// contract: an enabled estimator is a different computation, so its
// fingerprint must not collide with the plain spec's — a CV report must
// never be served from a plain cache entry or vice versa.
func TestCVEnabledChangesFingerprint(t *testing.T) {
	pf, err := Fingerprint(cvSpec(nil), 5)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := Fingerprint(cvSpec(&VarianceReduction{Kind: VRControlVariate}), 5)
	if err != nil {
		t.Fatal(err)
	}
	if pf == cf {
		t.Error("CV-enabled spec fingerprints equal to the plain spec; cache entries would collide")
	}
	// Estimator knobs are part of the computation too.
	tf, err := Fingerprint(cvSpec(&VarianceReduction{Kind: VRControlVariate, MinCorr: 0.5}), 5)
	if err != nil {
		t.Fatal(err)
	}
	if tf == cf {
		t.Error("min_corr change does not move the fingerprint")
	}
}

// TestRunOnceCVMatchesRunOnce is the per-replication CRN guarantee: the
// controls ride the very same random stream, so the metrics of a CV
// replication are bit-identical to a plain replication at the same
// seed. Everything downstream (cache adoption across plain/CV, the
// plain-vs-CV acceptance comparison) leans on this.
func TestRunOnceCVMatchesRunOnce(t *testing.T) {
	c, err := Compile(cvSpec(&VarianceReduction{Kind: VRControlVariate}))
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 5; rep++ {
		seed := RepSeed(SeedSplit, 11, 0, rep)
		plain, err := RunOnce(c.Points[0], seed)
		if err != nil {
			t.Fatal(err)
		}
		metrics, controls, err := RunOnceCV(c.Points[0], seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, metrics) {
			t.Fatalf("rep %d: CV run perturbed the metrics\nplain: %+v\ncv:    %+v", rep, plain, metrics)
		}
		if len(controls) == 0 {
			t.Fatalf("rep %d: no control vector", rep)
		}
	}
}

// TestCVReportSerialParallelIdentical extends the serial≡parallel byte
// guarantee to CV reports: estimates, betas and control vectors are
// reduced from the ordered sample, so the worker count cannot leak in.
func TestCVReportSerialParallelIdentical(t *testing.T) {
	c, err := Compile(cvSpec(&VarianceReduction{Kind: VRControlVariate}))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Replications(c, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Replications(c, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("serial and parallel CV reports diverge")
	}
	var sb, pb bytes.Buffer
	if err := serial.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Write(&pb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != pb.String() {
		t.Error("rendered CV reports diverge between worker counts")
	}
	// The CV lines must actually be there: at 8 reps the collision_pr
	// fit applies on this spec (guarded so a silent fallback to the
	// plain path cannot pass the equivalence checks vacuously).
	var found bool
	for _, m := range serial.Points[0].Metrics {
		if m.Name == "collision_pr" && m.CV != nil {
			found = true
		}
	}
	if !found {
		t.Error("collision_pr carries no CV estimate in the report")
	}
	if serial.Points[0].Controls == nil {
		t.Error("report lacks per-replication control vectors")
	}
}

// TestCVValidation covers the spec-level guard rails.
func TestCVValidation(t *testing.T) {
	bad := []Spec{
		func() Spec {
			s := cvSpec(&VarianceReduction{Kind: "bogus"})
			return s
		}(),
		func() Spec {
			s := cvSpec(&VarianceReduction{Kind: VRControlVariate})
			s.Engine = EngineModel
			return s
		}(),
		func() Spec {
			s := cvSpec(&VarianceReduction{Kind: VRControlVariate, MinCorr: 1.5})
			return s
		}(),
		func() Spec {
			s := cvSpec(&VarianceReduction{Kind: VRControlVariate, PilotReps: -1})
			return s
		}(),
		func() Spec {
			// Beacons force the mac engine, which has no control predictor.
			s := cvSpec(&VarianceReduction{Kind: VRControlVariate})
			s.BeaconPeriodMicros = 1000
			return s
		}(),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated; want an error", i)
		}
	}
	ok := cvSpec(&VarianceReduction{Kind: VRControlVariate})
	if err := ok.Validate(); err != nil {
		t.Errorf("valid CV spec rejected: %v", err)
	}
	norm, err := ok.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	vr := norm.VarianceReduction
	if vr == nil || vr.PilotReps != stats.DefaultPilotReps || vr.MinCorr != stats.DefaultMinCorr || vr.MaxBeta != stats.DefaultMaxBeta {
		t.Errorf("normalization did not pin the estimator defaults: %+v", vr)
	}
}

// TestCICoverage is the z→t regression guard at the scenario level: on
// a tiny 8-replication study, the Student-t 95% interval — plain and
// control-variate alike — must cover the long-run mean in at least 93%
// of 200 independent trials. A z-quantile interval at n=8 covers
// roughly 87–90% and fails this bound; so would a CV interval that
// forgot to pay for its fitted coefficients (t at n−1−K, the c̄ᵀS⁻¹c̄
// term). Everything is seeded, so the observed coverage is a constant
// of the repository, not a flake.
func TestCICoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage study is ~4600 short replications")
	}
	c, err := Compile(cvSpec(&VarianceReduction{Kind: VRControlVariate}))
	if err != nil {
		t.Fatal(err)
	}
	cols := CVControlColumns("collision_pr")
	collide := func(seed uint64) (float64, []float64) {
		metrics, controls, err := RunOnceCV(c.Points[0], seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range metrics {
			if m.Name == "collision_pr" {
				row := make([]float64, len(cols))
				for ci, col := range cols {
					row[ci] = controls[col]
				}
				return m.Value, row
			}
		}
		t.Fatal("collision_pr missing")
		return 0, nil
	}

	// Long-run reference mean over 1400 replications on a seed stream
	// disjoint from every trial's.
	var ref stats.Accumulator
	for r := 0; r < 1400; r++ {
		y, _ := collide(statcheck.Seed(0xeef, r))
		ref.Add(y)
	}
	truth := ref.Mean()

	const perTrial = 8
	var plainCov, cvCov statcheck.Coverage
	cvApplied := 0
	for trial := 0; trial < 400; trial++ {
		base := statcheck.Seed(0xc0ffee, trial)
		ys := make([]float64, perTrial)
		cs := make([][]float64, perTrial)
		for r := 0; r < perTrial; r++ {
			ys[r], cs[r] = collide(statcheck.Seed(base, r))
		}
		sum := stats.Summarize(ys)
		plainCov.Observe(math.Abs(sum.Mean-truth) <= sum.CI95)
		est := stats.SummarizeCV(ys, cs, stats.CVOpts{})
		cvCov.Observe(math.Abs(est.Mean-truth) <= est.CI95)
		if est.Applied {
			cvApplied++
		}
	}
	t.Logf("coverage over 400 trials: plain %v, cv %v (cv applied in %d trials)", plainCov, cvCov, cvApplied)
	plainCov.AssertAtLeast(t, 0.93, 0.95)
	cvCov.AssertAtLeast(t, 0.93, 0.95)
}
