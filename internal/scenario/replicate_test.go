package scenario

import (
	"bytes"
	"reflect"
	"testing"
)

// TestReplicationsSerialParallelIdentical is the determinism property
// of the tentpole: for every sample spec, R sharded replications
// produce a report — summaries, seeds and raw per-rep metrics —
// deep-equal (hence bit-identical when rendered) between 1 worker and
// many.
func TestReplicationsSerialParallelIdentical(t *testing.T) {
	const reps = 4
	for _, spec := range sampleSpecs() {
		t.Run(spec.Name, func(t *testing.T) {
			c, err := Compile(spec)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := Replications(c, reps, 1)
			if err != nil {
				t.Fatal(err)
			}
			// Compile again: a fresh Compiled must not share mutable
			// state with the first run.
			c2, err := Compile(spec)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := Replications(c2, reps, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("serial and parallel reports differ:\n%+v\n%+v", serial, parallel)
			}
			var a, b bytes.Buffer
			if err := serial.Write(&a); err != nil {
				t.Fatal(err)
			}
			if err := parallel.Write(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("rendered reports differ:\n%s\n---\n%s", a.String(), b.String())
			}
		})
	}
}

// TestChannelErrorTwins pins the acceptance property: under the same
// seeds, a channel-error scenario delivers measurably less throughput
// than its error-free twin, and the backoff dynamics diverge only
// through the error draws (the error-free twin records zero errors).
func TestChannelErrorTwins(t *testing.T) {
	base := Spec{
		Name: "twin", SimTimeMicros: 5e6, Seed: 3,
		Stations: []Group{{Count: 3}},
	}
	errored := base
	errored.Stations = []Group{{Count: 3, ErrorProb: 0.2}}

	run := func(s Spec) *Report {
		c, err := Compile(s)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Replications(c, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	metric := func(r *Report, name string) float64 {
		for _, m := range r.Points[0].Metrics {
			if m.Name == name {
				return m.Summary.Mean
			}
		}
		t.Fatalf("metric %s missing", name)
		return 0
	}

	clean := run(base)
	noisy := run(errored)
	if got := metric(clean, "frame_errors"); got != 0 {
		t.Fatalf("error-free twin recorded %v frame errors", got)
	}
	if got := metric(noisy, "frame_errors"); got == 0 {
		t.Fatal("errored scenario recorded no frame errors")
	}
	ct, nt := metric(clean, "norm_throughput"), metric(noisy, "norm_throughput")
	// 20% frame loss must cost well over measurement noise; require a
	// ≥ 10% relative drop.
	if nt >= ct*0.9 {
		t.Fatalf("throughput with 20%% errors %v not measurably below error-free %v", nt, ct)
	}
	// Same seeds: the twins' seed schedules are identical.
	if !reflect.DeepEqual(clean.Points[0].Seeds, noisy.Points[0].Seeds) {
		t.Fatalf("twins ran different seeds: %v vs %v", clean.Points[0].Seeds, noisy.Points[0].Seeds)
	}
}

// TestRepSeed pins the two seed policies: increment reproduces base+r
// at every point; split decorrelates points and replications while
// staying a pure function of (base, point, rep).
func TestRepSeed(t *testing.T) {
	if got := RepSeed(SeedIncrement, 10, 3, 4); got != 14 {
		t.Fatalf("increment seed %d, want 14", got)
	}
	seen := map[uint64]string{}
	for point := 0; point < 4; point++ {
		for rep := 0; rep < 8; rep++ {
			s := RepSeed(SeedSplit, 1, point, rep)
			if s2 := RepSeed(SeedSplit, 1, point, rep); s2 != s {
				t.Fatalf("RepSeed not deterministic: %d vs %d", s, s2)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between (%d,%d) and %s", point, rep, prev)
			}
			seen[s] = "earlier cell"
		}
	}
}

// TestReplicationsRejectsZeroReps covers the runner's own validation.
func TestReplicationsRejectsZeroReps(t *testing.T) {
	c, err := Compile(Spec{Name: "x", SimTimeMicros: 1e6, Stations: []Group{{Count: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replications(c, 0, 1); err == nil {
		t.Fatal("reps=0 accepted")
	}
}
