package scenario

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/par"
	"repro/internal/stats"
)

// mix is the SplitMix64 output finalizer: a bijective avalanche over 64
// bits, used to derive well-separated replication seeds from the base
// seed without touching the rng package's stream state.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// golden is the SplitMix64 increment (2⁶⁴/φ).
const golden = 0x9e3779b97f4a7c15

// RepSeed derives the seed of replication rep at sweep point (both
// 0-based) under the given policy. "increment" reproduces the classic
// sweep convention (base+rep at every point); "split" decorrelates
// points and replications through two SplitMix64 rounds.
func RepSeed(policy string, base uint64, point, rep int) uint64 {
	if policy == SeedIncrement {
		return base + uint64(rep)
	}
	z := mix(base + golden*uint64(point+1))
	return mix(z + golden*uint64(rep+1))
}

// MetricSummary aggregates one metric across replications. The JSON
// tags are part of the serving API (internal/serve marshals reports).
type MetricSummary struct {
	Name    string        `json:"name"`
	Summary stats.Summary `json:"summary"`
	// CV carries the control-variate estimate when the spec enables
	// variance reduction and the metric has control channels; nil
	// otherwise, so plain reports marshal to the same bytes as before
	// the estimator existed.
	CV *stats.CVEstimate `json:"cv,omitempty"`
}

// PointReport is one sweep point's aggregated result.
type PointReport struct {
	// N is the total station count at this point.
	N int `json:"n"`
	// Seeds lists each replication's derived seed, in replication order.
	Seeds []uint64 `json:"seeds"`
	// Metrics aggregates each metric across the replications, in the
	// engine's canonical metric order.
	Metrics []MetricSummary `json:"metrics"`
	// PerRep holds the raw per-replication metrics (replication-major),
	// so callers can post-process beyond mean/CI.
	PerRep [][]Metric `json:"per_rep"`
	// Controls holds each replication's control-variate vector
	// (replication-major, sim.ControlNames order) when the spec enables
	// variance reduction; nil otherwise.
	Controls [][]float64 `json:"controls,omitempty"`
}

// Report is the aggregated outcome of Replications.
type Report struct {
	// Spec is the normalized spec the run used.
	Spec Spec `json:"spec"`
	// Reps is the replication count per point.
	Reps int `json:"reps"`
	// Points holds one report per sweep point, in sweep order.
	Points []PointReport `json:"points"`
}

// Options tunes a replication run beyond the required counts. The zero
// value reproduces Replications exactly.
type Options struct {
	// Context, when non-nil, cancels the run cooperatively: replications
	// already started finish, unstarted ones are skipped, and the run
	// returns the context's error. A nil Context never cancels.
	Context context.Context
	// Progress, when non-nil, is called after every completed
	// replication with the number finished so far and the total
	// (points × reps). Calls are serialized, but — under a parallel
	// pool — not necessarily in replication order; done is monotonic.
	Progress func(done, total int)
}

// Replications runs reps independent-seed replications of every point
// of the compiled scenario, fanned across up to workers goroutines
// through the deterministic internal/par pool, and aggregates mean,
// standard deviation and 95% confidence interval per metric.
//
// Every replication owns its random streams (the seed derives from the
// spec's seed policy, then splits per station), and results are
// collected in input order — so the report is bit-identical whatever
// the worker count. workers ≤ 1 runs serially.
func Replications(c *Compiled, reps, workers int) (*Report, error) {
	return ReplicationsOpts(c, reps, workers, Options{})
}

// ReplicationsOpts is Replications with cancellation and per-replication
// progress reporting — the form the serving layer drives. The report of
// an uncancelled run is bit-identical to Replications on the same
// inputs, whatever the worker count.
func ReplicationsOpts(c *Compiled, reps, workers int, opts Options) (*Report, error) {
	if reps < 1 {
		return nil, fmt.Errorf("scenario %s: replications = %d must be ≥ 1", c.Spec.Name, reps)
	}
	if c.Spec.Engine == EngineModel {
		// Analytic points are deterministic — every replication would
		// return identical metrics, so the study collapses to a single
		// evaluation per point (n=1, zero-width CI) whatever reps was
		// requested. Report.Reps records the collapsed count.
		reps = 1
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	type job struct {
		point, rep int
		seed       uint64
	}
	jobs := make([]job, 0, len(c.Points)*reps)
	for pi := range c.Points {
		for r := 0; r < reps; r++ {
			jobs = append(jobs, job{pi, r, RepSeed(c.Spec.SeedPolicy, c.Spec.Seed, pi, r)})
		}
	}
	cv := c.Spec.CVEnabled()
	type repOut struct {
		metrics  []Metric
		controls []float64
	}
	var progressMu sync.Mutex
	done := 0
	results, err := par.MapCtx(ctx, workers, jobs, func(_ int, j job) (repOut, error) {
		var out repOut
		var err error
		if cv {
			out.metrics, out.controls, err = RunOnceCV(c.Points[j.point], j.seed)
		} else {
			out.metrics, err = RunOnce(c.Points[j.point], j.seed)
		}
		if err == nil && opts.Progress != nil {
			// Deferred unlock: a Progress callback that panics must not
			// leave the mutex held (par recovers the panic into an error,
			// and the surviving workers still report progress).
			func() {
				progressMu.Lock()
				defer progressMu.Unlock()
				done++
				opts.Progress(done, len(jobs))
			}()
		}
		return out, err
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{Spec: c.Spec, Reps: reps}
	for pi, p := range c.Points {
		seeds := make([]uint64, reps)
		perRep := make([][]Metric, reps)
		var controls [][]float64
		if cv {
			controls = make([][]float64, reps)
		}
		for r := 0; r < reps; r++ {
			j := pi*reps + r
			seeds[r] = jobs[j].seed
			perRep[r] = results[j].metrics
			if cv {
				controls[r] = results[j].controls
			}
		}
		rep.Points = append(rep.Points, SummarizePoint(p.N, seeds, perRep, controls, c.Spec.VarianceReduction))
	}
	return rep, nil
}

// SummarizePoint aggregates one point's replications into a
// PointReport: the raw per-replication metrics, their seeds, and a
// mean/stddev/95%-CI summary per metric in the engine's canonical
// order. This is the exact reduction Replications applies, exported so
// that other runners (the campaign engine's adaptive batches) produce
// byte-identical point reports from the same per-replication values.
//
// controls and vr drive the control-variate estimator: when vr requests
// control_variate and controls carries one vector per replication, each
// metric with control channels additionally gets a CVEstimate computed
// by the canonical two-pass stats.SummarizeCV — a pure function of the
// ordered sample, hence bit-identical between serial and parallel runs.
// Plain callers pass (nil, nil) and get exactly the historical
// reduction.
func SummarizePoint(n int, seeds []uint64, perRep [][]Metric, controls [][]float64, vr *VarianceReduction) PointReport {
	pr := PointReport{N: n, Seeds: seeds, PerRep: perRep}
	cvOn := vr != nil && vr.Kind == VRControlVariate && len(controls) == len(perRep)
	var opts stats.CVOpts
	if cvOn {
		pr.Controls = controls
		opts = stats.CVOpts{PilotReps: vr.PilotReps, MinCorr: vr.MinCorr, MaxBeta: vr.MaxBeta}
	}
	first := perRep[0]
	sample := make([]float64, len(perRep))
	for mi, m := range first {
		for r := range perRep {
			sample[r] = perRep[r][mi].Value
		}
		ms := MetricSummary{Name: m.Name, Summary: stats.Summarize(sample)}
		if cvOn {
			if cols := CVControlColumns(m.Name); len(cols) > 0 {
				cs := make([][]float64, len(perRep))
				for r := range perRep {
					row := make([]float64, len(cols))
					for ci, col := range cols {
						row[ci] = controls[r][col]
					}
					cs[r] = row
				}
				est := stats.SummarizeCV(sample, cs, opts)
				ms.CV = &est
			}
		}
		pr.Metrics = append(pr.Metrics, ms)
	}
	return pr
}

// Write renders the report as aligned plain text: a header describing
// the scenario, then one "metric = mean ± ci95" line per metric (and a
// "# N = …" block per sweep point). The output is a pure function of
// the report, hence bit-identical between serial and parallel runs.
func (r *Report) Write(w io.Writer) error {
	s := r.Spec
	if _, err := fmt.Fprintf(w, "# scenario %s (engine %s, %d stations", s.Name, s.Engine, s.N()); err != nil {
		return err
	}
	if len(s.SweepN) > 0 {
		if _, err := fmt.Fprintf(w, " max, sweep over N=%v", s.SweepN); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, ", %d reps, seed %d/%s)\n", r.Reps, s.Seed, s.SeedPolicy); err != nil {
		return err
	}
	if s.Description != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", s.Description); err != nil {
			return err
		}
	}
	width := 0
	for _, p := range r.Points {
		for _, m := range p.Metrics {
			if len(m.Name) > width {
				width = len(m.Name)
			}
		}
	}
	for _, p := range r.Points {
		if len(s.SweepN) > 0 {
			if _, err := fmt.Fprintf(w, "\n# N = %d\n", p.N); err != nil {
				return err
			}
		}
		for _, m := range p.Metrics {
			pad := strings.Repeat(" ", width-len(m.Name))
			if m.Summary.N == 1 {
				// A single sample has no confidence interval; do not
				// print a zero-width one.
				if _, err := fmt.Fprintf(w, "%s%s = %.6f   (n=1, no CI)\n",
					m.Name, pad, m.Summary.Mean); err != nil {
					return err
				}
				continue
			}
			if m.CV != nil {
				// Control-variate runs print the adjusted estimate; the
				// raw half-width rides along so the reduction is visible
				// at a glance. A declined fit (weak correlation, pilot
				// sample) falls back to the raw estimate, marked "cv off".
				if m.CV.Applied {
					if _, err := fmt.Fprintf(w, "%s%s = %.6f ± %.6f   (95%% CI, n=%d, cv ×%.1f, raw ± %.6f)\n",
						m.Name, pad, m.CV.Mean, m.CV.CI95, m.Summary.N, m.CV.VarReduction, m.CV.RawCI95); err != nil {
						return err
					}
					continue
				}
				if _, err := fmt.Fprintf(w, "%s%s = %.6f ± %.6f   (95%% CI, n=%d, sd %.6g, cv off)\n",
					m.Name, pad, m.Summary.Mean, m.Summary.CI95, m.Summary.N, m.Summary.StdDev); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s = %.6f ± %.6f   (95%% CI, n=%d, sd %.6g)\n",
				m.Name, pad, m.Summary.Mean, m.Summary.CI95, m.Summary.N, m.Summary.StdDev); err != nil {
				return err
			}
		}
	}
	return nil
}

// Describe summarizes a compiled scenario in one line — the -validate
// output of cmd/sim1901 and the CI scenario check.
func (c *Compiled) Describe() string {
	s := c.Spec
	if len(s.SweepN) > 0 {
		return fmt.Sprintf("scenario %s: engine %s, sweep over N=%v, %d group(s)",
			s.Name, s.Engine, s.SweepN, len(s.Stations))
	}
	return fmt.Sprintf("scenario %s: engine %s, N=%d, %d group(s)",
		s.Name, s.Engine, c.Points[0].N, len(s.Stations))
}
