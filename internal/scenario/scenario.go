// Package scenario is the declarative layer over the repository's three
// engines: a JSON-serializable Spec describes an operating regime —
// station groups with heterogeneous CW/DC vectors, priorities, traffic
// (saturated, Poisson or silent), per-station channel error
// probabilities, beacons, timing and seed policy — and compiles into
// the slot-synchronous sim.Engine, the event-driven mac.Network, or the
// analytic decoupling-approximation model (engine "model"), whichever
// can express it.
//
// Where internal/experiments hard-codes each paper table and figure as
// a bespoke function, a Spec reaches every regime those functions span
// (and ones they cannot, such as per-station frame loss without
// collision, or mixed saturated/Poisson populations) from one file
// format, so new operating points need no new Go code.
//
// Replications shards R independent-seed replications of a compiled
// scenario across the deterministic internal/par worker pool and
// aggregates each metric's mean, standard deviation and 95% confidence
// interval via internal/stats. Results are order-preserving and
// bit-identical whatever the worker count.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/hpav"
	"repro/internal/stats"
)

// Engine names accepted by Spec.Engine.
const (
	// EngineAuto lets Compile pick: the minimal slot-synchronous
	// simulator when the spec is expressible there, the event-driven MAC
	// otherwise.
	EngineAuto = "auto"
	// EngineSim is the slot-synchronous port of the paper's sim_1901
	// (single priority, saturated, one frame per transmission).
	EngineSim = "sim"
	// EngineMac is the event-driven multi-priority MAC behind the
	// emulated testbed (bursts, priorities, Poisson traffic, beacons).
	EngineMac = "mac"
	// EngineModel answers the scenario analytically through the loaded
	// decoupling-approximation fixed point (internal/model) instead of
	// simulating: microseconds per point instead of seconds. It covers
	// saturated, Poisson and silent traffic, mixed CA0–CA3 priority
	// classes, heterogeneous CW/DC groups and per-station channel
	// errors; only genuinely event-driven features — beacons,
	// multi-MPDU bursts, non-default per-group PHY framing — still
	// require EngineMac. Model points are deterministic: the seed is
	// ignored and replications collapse to a single evaluation (n=1,
	// no CI).
	EngineModel = "model"
)

// Spec-wide physical defaults Normalized writes out.
const (
	// defaultFrameMicros is the frame payload duration in µs when the
	// spec leaves frame_us unset (the paper's 2050 µs payload).
	defaultFrameMicros = 2050
	// defaultPBsPerMPDU is the physical-block count per MPDU the mac
	// engine assumes when a group leaves pbs_per_mpdu unset.
	defaultPBsPerMPDU = 4
)

// Seed policies accepted by Spec.SeedPolicy.
const (
	// SeedSplit (the default) derives every replication's seed from the
	// base seed through a SplitMix64-style mix, decorrelating
	// replications and sweep points.
	SeedSplit = "split"
	// SeedIncrement uses base+r for replication r at every sweep point —
	// the convention of the classic sim1901 -n sweeps, where each N
	// reuses the same seed.
	SeedIncrement = "increment"
)

// Traffic kinds accepted by Traffic.Kind.
const (
	// TrafficSaturated always has a frame queued (the regime of every
	// validation experiment in the paper).
	TrafficSaturated = "saturated"
	// TrafficPoisson generates exponentially spaced arrivals with
	// MeanInterarrivalMicros. Simulates on the mac engine; the model
	// engine answers it through the loaded fixed point.
	TrafficPoisson = "poisson"
	// TrafficNone attaches a silent station (it contends for nothing but
	// occupies an address). Simulates on the mac engine; the model
	// engine excludes it from contention.
	TrafficNone = "none"
)

// Variance-reduction kinds accepted by VarianceReduction.Kind.
const (
	// VRNone disables variance reduction explicitly; a block with this
	// kind normalizes away entirely, so a spec carrying it is
	// byte-identical (and fingerprint-identical) to one without the
	// block.
	VRNone = "none"
	// VRControlVariate estimates every metric as sim − β·control using
	// the engine's martingale control variates (sim.Result.Controls)
	// under common random numbers: the controls consume no randomness,
	// so the underlying replications are bit-identical to a plain run's.
	// Requires a sim-engine-expressible spec.
	VRControlVariate = "control_variate"
)

// VarianceReduction configures the control-variate estimator of the
// replication path. The zero values of the tuning fields select the
// internal/stats defaults; Normalized writes them out explicitly so
// fingerprints pin them.
type VarianceReduction struct {
	// Kind is "none" or "control_variate".
	Kind string `json:"kind"`
	// PilotReps is the smallest sample on which a fitted β is trusted
	// (default stats.DefaultPilotReps).
	PilotReps int `json:"pilot_reps,omitempty"`
	// MinCorr gates the fit on the multiple correlation between metric
	// and controls (default stats.DefaultMinCorr).
	MinCorr float64 `json:"min_corr,omitempty"`
	// MaxBeta clamps each coefficient to MaxBeta·sd(y)/sd(c) (default
	// stats.DefaultMaxBeta).
	MaxBeta float64 `json:"max_beta,omitempty"`
}

// Traffic describes one station group's arrival process.
type Traffic struct {
	// Kind is one of the Traffic* constants; empty means saturated.
	Kind string `json:"kind,omitempty"`
	// MeanInterarrivalMicros is the Poisson mean inter-arrival time in
	// µs; required iff Kind is "poisson".
	MeanInterarrivalMicros float64 `json:"mean_interarrival_us,omitempty"`
}

// Group declares Count identically configured stations.
type Group struct {
	// Count is the number of stations in the group (≥ 1).
	Count int `json:"count"`
	// CW and DC are the per-stage contention windows and initial
	// deferral counters (the paper's cw/dc vectors). Both or neither
	// must be given; when absent, the Table 1 defaults of the group's
	// priority apply.
	CW []int `json:"cw,omitempty"`
	DC []int `json:"dc,omitempty"`
	// Priority is the channel-access class ("CA0".."CA3"); default CA1,
	// the class of all the paper's data traffic.
	Priority string `json:"priority,omitempty"`
	// Traffic is the group's arrival process; nil means saturated.
	Traffic *Traffic `json:"traffic,omitempty"`
	// ErrorProb is the per-frame channel error probability in [0, 1]:
	// frame loss without collision. 0 keeps the paper's error-free
	// channel.
	ErrorProb float64 `json:"error_prob,omitempty"`
	// BurstMPDUs is the MPDU burst size (mac engine only; default 1, so
	// that sim and mac scenarios compare like for like — the paper's
	// testbed uses 2).
	BurstMPDUs int `json:"burst_mpdus,omitempty"`
	// PBsPerMPDU is the physical-block count per MPDU (mac engine only;
	// default 4).
	PBsPerMPDU int `json:"pbs_per_mpdu,omitempty"`
	// FrameMicros overrides the per-MPDU payload duration for this group
	// (mac engine only; default: the spec-level frame_us).
	FrameMicros float64 `json:"frame_us,omitempty"`
}

// Spec is a declarative scenario: everything a run needs except the
// replication count, which is a property of the study, not the regime.
//
// The zero values of the optional fields reproduce the paper's
// defaults; Normalized returns the spec with every default made
// explicit.
type Spec struct {
	// Name identifies the scenario in reports (required).
	Name string `json:"name"`
	// Description is free text for humans.
	Description string `json:"description,omitempty"`
	// Engine selects the simulator: "sim", "mac", or "auto"/"" to let
	// Compile decide.
	Engine string `json:"engine,omitempty"`
	// SimTimeMicros is the simulated duration per replication in µs
	// (required; the paper's validation runs use 5e8).
	SimTimeMicros float64 `json:"sim_time_us"`
	// Seed is the base random seed (default 1). Replication r derives
	// its own seed from it according to SeedPolicy.
	Seed uint64 `json:"seed,omitempty"`
	// SeedPolicy is "split" (default) or "increment"; see the Seed*
	// constants.
	SeedPolicy string `json:"seed_policy,omitempty"`
	// SweepN, when non-empty, turns the scenario into a sweep over total
	// station counts: the spec must then declare exactly one group,
	// whose Count is replaced by each sweep value in turn.
	SweepN []int `json:"sweep_n,omitempty"`
	// TcMicros and TsMicros are the collision and success durations for
	// the sim engine (defaults: the paper's 2920.64 and 2542.64). The
	// mac engine derives durations from its overhead model instead.
	TcMicros float64 `json:"tc_us,omitempty"`
	TsMicros float64 `json:"ts_us,omitempty"`
	// FrameMicros is the frame payload duration in µs (default 2050):
	// the throughput-normalization length for the sim engine, and the
	// default per-MPDU payload for mac groups.
	FrameMicros float64 `json:"frame_us,omitempty"`
	// BeaconPeriodMicros, when positive, carries a central-coordinator
	// beacon every period µs (mac engine only; HomePlug AV uses two AC
	// line cycles, 33330 µs at 60 Hz).
	BeaconPeriodMicros float64 `json:"beacon_period_us,omitempty"`
	// VarianceReduction, when present with kind "control_variate",
	// switches the replication path to the control-variate estimator
	// (sim engine only). A block with kind "none" is dropped by
	// normalization, so present-but-disabled specs fingerprint
	// identically to specs without the block.
	VarianceReduction *VarianceReduction `json:"variance_reduction,omitempty"`
	// Stations declares the population, group by group.
	Stations []Group `json:"stations"`
}

// Parse decodes a Spec from JSON. Unknown fields are rejected, so typos
// fail loudly instead of silently reverting to defaults.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse: %w", err)
	}
	return s, nil
}

// Load reads and decodes a Spec from a JSON file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Marshal encodes the spec as indented JSON (the format of the files
// under examples/scenarios).
func (s Spec) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: marshal: %w", err)
	}
	return append(data, '\n'), nil
}

// N returns the total station count (with SweepN, the count of the
// largest sweep point — callers that need per-point counts use
// Compile).
func (s Spec) N() int {
	if len(s.SweepN) > 0 {
		max := 0
		for _, n := range s.SweepN {
			if n > max {
				max = n
			}
		}
		return max
	}
	n := 0
	for _, g := range s.Stations {
		n += g.Count
	}
	return n
}

// finitePositive reports whether v is a positive finite float.
func finitePositive(v float64) bool {
	return v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Validate checks the spec's structural invariants and reports the
// first violation with enough context to fix the file (field paths use
// the JSON names).
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing \"name\"")
	}
	switch s.Engine {
	case "", EngineAuto, EngineSim, EngineMac, EngineModel:
	default:
		return fmt.Errorf("scenario %s: unknown engine %q (want %q, %q, %q or %q)",
			s.Name, s.Engine, EngineSim, EngineMac, EngineModel, EngineAuto)
	}
	if !finitePositive(s.SimTimeMicros) {
		return fmt.Errorf("scenario %s: \"sim_time_us\" = %v must be a positive finite duration", s.Name, s.SimTimeMicros)
	}
	switch s.SeedPolicy {
	case "", SeedSplit, SeedIncrement:
	default:
		return fmt.Errorf("scenario %s: unknown seed_policy %q (want %q or %q)",
			s.Name, s.SeedPolicy, SeedSplit, SeedIncrement)
	}
	for _, d := range []struct {
		name string
		v    float64
	}{{"tc_us", s.TcMicros}, {"ts_us", s.TsMicros}, {"frame_us", s.FrameMicros}, {"beacon_period_us", s.BeaconPeriodMicros}} {
		if d.v != 0 && !finitePositive(d.v) {
			return fmt.Errorf("scenario %s: %q = %v must be a positive finite duration (or omitted)", s.Name, d.name, d.v)
		}
	}
	if len(s.Stations) == 0 {
		return fmt.Errorf("scenario %s: \"stations\" must declare at least one group", s.Name)
	}
	if len(s.SweepN) > 0 {
		if len(s.Stations) != 1 {
			return fmt.Errorf("scenario %s: \"sweep_n\" requires exactly one station group, got %d", s.Name, len(s.Stations))
		}
		for i, n := range s.SweepN {
			if n < 1 {
				return fmt.Errorf("scenario %s: sweep_n[%d] = %d must be ≥ 1", s.Name, i, n)
			}
		}
	}
	for gi, g := range s.Stations {
		if err := s.validateGroup(gi, g); err != nil {
			return err
		}
	}
	if s.Engine == EngineSim {
		if why := s.needsMac(); why != "" {
			return fmt.Errorf("scenario %s: engine \"sim\" cannot express %s (use \"mac\" or \"auto\")", s.Name, why)
		}
	}
	if s.Engine == EngineModel {
		// The widened fixed point covers offered load (Poisson and
		// silent traffic) and mixed CA0–CA3 priorities; only genuinely
		// event-driven features — beacons, multi-MPDU bursts, per-group
		// PHY framing — still force the event-driven MAC. The error
		// names every offending feature so `-validate` reports them all
		// at once.
		if why := s.modelUnsupported(); len(why) > 0 {
			return fmt.Errorf("scenario %s: engine \"model\" cannot express %s (event-driven features need \"mac\")",
				s.Name, strings.Join(why, "; "))
		}
	}
	if v := s.VarianceReduction; v != nil {
		switch v.Kind {
		case "", VRNone:
		case VRControlVariate:
			// The martingale controls are a property of the
			// slot-synchronous engine: the analytic model is already
			// deterministic (nothing to reduce) and the event-driven MAC
			// exposes no control channels.
			if s.Engine == EngineModel || s.Engine == EngineMac {
				return fmt.Errorf("scenario %s: variance_reduction %q requires the sim engine, not %q",
					s.Name, v.Kind, s.Engine)
			}
			if why := s.needsMac(); why != "" {
				return fmt.Errorf("scenario %s: variance_reduction %q cannot express %s (sim engine only)",
					s.Name, v.Kind, why)
			}
		default:
			return fmt.Errorf("scenario %s: unknown variance_reduction kind %q (want %q or %q)",
				s.Name, v.Kind, VRNone, VRControlVariate)
		}
		if v.PilotReps < 0 {
			return fmt.Errorf("scenario %s: variance_reduction \"pilot_reps\" = %d must be ≥ 0", s.Name, v.PilotReps)
		}
		if v.MinCorr < 0 || v.MinCorr >= 1 || math.IsNaN(v.MinCorr) {
			return fmt.Errorf("scenario %s: variance_reduction \"min_corr\" = %v outside [0, 1)", s.Name, v.MinCorr)
		}
		if v.MaxBeta < 0 || math.IsNaN(v.MaxBeta) || math.IsInf(v.MaxBeta, 0) {
			return fmt.Errorf("scenario %s: variance_reduction \"max_beta\" = %v must be ≥ 0 and finite", s.Name, v.MaxBeta)
		}
	}
	return nil
}

// CVEnabled reports whether the spec requests the control-variate
// estimator. Meaningful on normalized specs (where a disabled block has
// already been dropped), but safe on any spec.
func (s Spec) CVEnabled() bool {
	return s.VarianceReduction != nil && s.VarianceReduction.Kind == VRControlVariate
}

// CVOpts converts the spec's variance-reduction block into the stats
// package's estimator options (zero value when the block is absent —
// the stats layer fills its own defaults either way).
func (s Spec) CVOpts() stats.CVOpts {
	v := s.VarianceReduction
	if v == nil {
		return stats.CVOpts{}
	}
	return stats.CVOpts{PilotReps: v.PilotReps, MinCorr: v.MinCorr, MaxBeta: v.MaxBeta}
}

func (s Spec) validateGroup(gi int, g Group) error {
	at := func(format string, args ...any) error {
		return fmt.Errorf("scenario %s: stations[%d]: %s", s.Name, gi, fmt.Sprintf(format, args...))
	}
	if g.Count < 1 && len(s.SweepN) == 0 {
		return at("\"count\" = %d must be ≥ 1", g.Count)
	}
	if (g.CW == nil) != (g.DC == nil) {
		return at("\"cw\" and \"dc\" must be given together (got cw=%v dc=%v)", g.CW, g.DC)
	}
	if g.CW != nil {
		p := config.Params{Name: "spec", CW: g.CW, DC: g.DC}
		if err := p.Validate(); err != nil {
			return at("%v", err)
		}
	}
	if g.Priority != "" {
		if _, err := config.ParsePriority(g.Priority); err != nil {
			return at("%v", err)
		}
	}
	if g.Traffic != nil {
		switch g.Traffic.Kind {
		case "", TrafficSaturated, TrafficNone:
			if g.Traffic.MeanInterarrivalMicros != 0 {
				return at("\"mean_interarrival_us\" is only meaningful for poisson traffic")
			}
		case TrafficPoisson:
			if !finitePositive(g.Traffic.MeanInterarrivalMicros) {
				return at("poisson traffic needs \"mean_interarrival_us\" > 0, got %v", g.Traffic.MeanInterarrivalMicros)
			}
		default:
			return at("unknown traffic kind %q (want %q, %q or %q)",
				g.Traffic.Kind, TrafficSaturated, TrafficPoisson, TrafficNone)
		}
	}
	if g.ErrorProb < 0 || g.ErrorProb > 1 || math.IsNaN(g.ErrorProb) {
		return at("\"error_prob\" = %v outside [0, 1]", g.ErrorProb)
	}
	if g.BurstMPDUs < 0 || g.BurstMPDUs > hpav.MaxBurstMPDUs {
		return at("\"burst_mpdus\" = %d outside 1–%d", g.BurstMPDUs, hpav.MaxBurstMPDUs)
	}
	if g.PBsPerMPDU < 0 {
		return at("\"pbs_per_mpdu\" = %d must be ≥ 1", g.PBsPerMPDU)
	}
	if g.FrameMicros != 0 && !finitePositive(g.FrameMicros) {
		return at("\"frame_us\" = %v must be a positive finite duration (or omitted)", g.FrameMicros)
	}
	return nil
}

// needsMac returns a human-readable reason the spec requires the
// event-driven MAC, or "" when the slot-synchronous simulator can
// express it.
func (s Spec) needsMac() string {
	if s.BeaconPeriodMicros > 0 {
		return "beacons"
	}
	seen := map[string]bool{}
	for gi, g := range s.Stations {
		if g.Traffic != nil && g.Traffic.Kind != "" && g.Traffic.Kind != TrafficSaturated {
			return fmt.Sprintf("stations[%d]'s %s traffic (the sim engine is saturated-only)", gi, g.Traffic.Kind)
		}
		if g.BurstMPDUs > 1 {
			return fmt.Sprintf("stations[%d]'s burst of %d MPDUs (the sim engine sends one frame per transmission)", gi, g.BurstMPDUs)
		}
		if g.PBsPerMPDU != 0 || g.FrameMicros != 0 {
			return fmt.Sprintf("stations[%d]'s per-group PHY framing", gi)
		}
		pri := g.Priority
		if pri == "" {
			pri = "CA1"
		}
		seen[pri] = true
	}
	if len(seen) > 1 {
		return "mixed priority classes (the sim engine runs a single contention class)"
	}
	return ""
}

// modelUnsupported lists every feature of the spec the analytic model
// engine cannot express, in spec order. It is the model-engine analogue
// of needsMac, but strictly smaller: Poisson/silent traffic and mixed
// priority classes now lower onto the loaded fixed point, so only the
// genuinely event-driven features remain. Empty means the spec is
// model-expressible.
func (s Spec) modelUnsupported() []string {
	var why []string
	if s.BeaconPeriodMicros > 0 {
		why = append(why, "beacons")
	}
	// Group framing equal to the spec-wide defaults is what mac-engine
	// normalization writes out explicitly; it changes no physics, so a
	// normalized mac spec re-aimed at the model (the compare path) must
	// stay expressible. Only framing that deviates is event-driven.
	frame := s.FrameMicros
	if frame == 0 {
		frame = defaultFrameMicros
	}
	for gi, g := range s.Stations {
		if g.BurstMPDUs > 1 {
			why = append(why, fmt.Sprintf("stations[%d]'s burst of %d MPDUs (the model rates one frame per transmission)", gi, g.BurstMPDUs))
		}
		if (g.PBsPerMPDU != 0 && g.PBsPerMPDU != defaultPBsPerMPDU) ||
			(g.FrameMicros != 0 && g.FrameMicros != frame) {
			why = append(why, fmt.Sprintf("stations[%d]'s per-group PHY framing", gi))
		}
	}
	return why
}

// Normalized returns a copy of the spec with every default made
// explicit: the engine resolved, seed and policy filled, timing
// constants expanded, and each group's priority, parameters, traffic
// and (for the mac engine) framing written out. Normalization is
// idempotent, which is what makes the JSON round trip lossless:
// Normalized(Parse(Marshal(Normalized(s)))) == Normalized(s).
func (s Spec) Normalized() (Spec, error) {
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	out := s
	if out.Engine == "" || out.Engine == EngineAuto {
		if out.needsMac() != "" {
			out.Engine = EngineMac
		} else {
			out.Engine = EngineSim
		}
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.SeedPolicy == "" {
		out.SeedPolicy = SeedSplit
	}
	if out.TcMicros == 0 {
		out.TcMicros = 2920.64
	}
	if out.TsMicros == 0 {
		out.TsMicros = 2542.64
	}
	if out.FrameMicros == 0 {
		out.FrameMicros = defaultFrameMicros
	}
	if v := s.VarianceReduction; v == nil || v.Kind == "" || v.Kind == VRNone {
		// A disabled block normalizes away entirely: present-but-off is
		// the same regime as absent, and must canonicalize (and
		// fingerprint) identically.
		out.VarianceReduction = nil
	} else {
		nv := *v
		if nv.PilotReps == 0 {
			nv.PilotReps = stats.DefaultPilotReps
		}
		if nv.MinCorr == 0 {
			nv.MinCorr = stats.DefaultMinCorr
		}
		if nv.MaxBeta == 0 {
			nv.MaxBeta = stats.DefaultMaxBeta
		}
		out.VarianceReduction = &nv
	}
	out.SweepN = append([]int(nil), s.SweepN...)
	out.Stations = make([]Group, len(s.Stations))
	for gi, g := range s.Stations {
		ng := g
		if ng.Priority == "" {
			ng.Priority = "CA1"
		}
		pri, err := config.ParsePriority(ng.Priority)
		if err != nil {
			return Spec{}, err // unreachable: Validate parsed it already
		}
		ng.Priority = pri.String()
		if ng.CW == nil {
			def := config.Default1901(pri)
			ng.CW = def.CW
			ng.DC = def.DC
		} else {
			ng.CW = append([]int(nil), g.CW...)
			ng.DC = append([]int(nil), g.DC...)
		}
		if ng.Traffic == nil {
			ng.Traffic = &Traffic{Kind: TrafficSaturated}
		} else {
			t := *ng.Traffic
			if t.Kind == "" {
				t.Kind = TrafficSaturated
			}
			ng.Traffic = &t
		}
		if out.Engine == EngineMac {
			if ng.BurstMPDUs == 0 {
				ng.BurstMPDUs = 1
			}
			if ng.PBsPerMPDU == 0 {
				ng.PBsPerMPDU = defaultPBsPerMPDU
			}
			if ng.FrameMicros == 0 {
				ng.FrameMicros = out.FrameMicros
			}
		}
		out.Stations[gi] = ng
	}
	return out, nil
}
