package scenario

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sampleSpecs covers both engines, heterogeneity, sweeps, traffic mixes
// and channel errors — the matrix the round-trip and replication
// properties quantify over.
func sampleSpecs() []Spec {
	return []Spec{
		{
			Name: "sat", SimTimeMicros: 2e6,
			Stations: []Group{{Count: 3}},
		},
		{
			Name: "hetero", SimTimeMicros: 2e6, Seed: 7,
			Stations: []Group{
				{Count: 2},
				{Count: 2, CW: []int{4, 8, 16, 32}, DC: []int{0, 0, 1, 3}},
			},
		},
		{
			Name: "sweep", SimTimeMicros: 2e6, SweepN: []int{1, 2, 4},
			Stations: []Group{{Count: 1}},
		},
		{
			Name: "errors", SimTimeMicros: 2e6,
			Stations: []Group{{Count: 2, ErrorProb: 0.3}, {Count: 1}},
		},
		{
			Name: "mac-mix", SimTimeMicros: 2e6,
			Stations: []Group{
				{Count: 2, Traffic: &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 30000}},
				{Count: 1, Priority: "CA3", BurstMPDUs: 2},
			},
		},
		{
			Name: "beacons", SimTimeMicros: 2e6, BeaconPeriodMicros: 33330,
			SeedPolicy: SeedIncrement,
			Stations:   []Group{{Count: 2, ErrorProb: 0.1}},
		},
	}
}

// TestRoundTripLossless pins the tentpole contract: encode→decode→
// compile is lossless. Normalization is idempotent, the JSON round trip
// preserves the normalized spec exactly, and both sides compile to
// deep-equal engine forms.
func TestRoundTripLossless(t *testing.T) {
	for _, spec := range sampleSpecs() {
		t.Run(spec.Name, func(t *testing.T) {
			norm, err := spec.Normalized()
			if err != nil {
				t.Fatalf("Normalized: %v", err)
			}
			norm2, err := norm.Normalized()
			if err != nil {
				t.Fatalf("re-Normalized: %v", err)
			}
			if !reflect.DeepEqual(norm, norm2) {
				t.Fatalf("normalization not idempotent:\n%+v\n%+v", norm, norm2)
			}

			data, err := norm.Marshal()
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			back, err := Parse(data)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			backNorm, err := back.Normalized()
			if err != nil {
				t.Fatalf("Normalized after round trip: %v", err)
			}
			if !reflect.DeepEqual(norm, backNorm) {
				t.Fatalf("JSON round trip changed the spec:\nbefore %+v\nafter  %+v", norm, backNorm)
			}

			c1, err := Compile(spec)
			if err != nil {
				t.Fatalf("Compile original: %v", err)
			}
			c2, err := Compile(back)
			if err != nil {
				t.Fatalf("Compile round-tripped: %v", err)
			}
			if !reflect.DeepEqual(c1, c2) {
				t.Fatalf("round trip changed the compiled form:\n%+v\n%+v", c1, c2)
			}
		})
	}
}

// TestInvalidSpecs asserts every malformed spec fails with a message
// naming the offending field — the error text is part of the format's
// usability contract.
func TestInvalidSpecs(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"missing name", `{"sim_time_us": 1e6, "stations": [{"count": 1}]}`, `missing "name"`},
		{"bad engine", `{"name": "x", "engine": "matlab", "sim_time_us": 1e6, "stations": [{"count": 1}]}`, `unknown engine "matlab"`},
		{"missing sim time", `{"name": "x", "stations": [{"count": 1}]}`, `"sim_time_us" = 0`},
		{"negative sim time", `{"name": "x", "sim_time_us": -5, "stations": [{"count": 1}]}`, `"sim_time_us" = -5`},
		{"no stations", `{"name": "x", "sim_time_us": 1e6}`, `at least one group`},
		{"zero count", `{"name": "x", "sim_time_us": 1e6, "stations": [{"count": 0}]}`, `"count" = 0`},
		{"cw without dc", `{"name": "x", "sim_time_us": 1e6, "stations": [{"count": 1, "cw": [8, 16]}]}`, `"cw" and "dc" must be given together`},
		{"cw/dc length mismatch", `{"name": "x", "sim_time_us": 1e6, "stations": [{"count": 1, "cw": [8, 16], "dc": [0]}]}`, `same length`},
		{"bad priority", `{"name": "x", "sim_time_us": 1e6, "stations": [{"count": 1, "priority": "CA9"}]}`, `unknown priority class`},
		{"poisson without mean", `{"name": "x", "sim_time_us": 1e6, "stations": [{"count": 1, "traffic": {"kind": "poisson"}}]}`, `"mean_interarrival_us" > 0`},
		{"mean on saturated", `{"name": "x", "sim_time_us": 1e6, "stations": [{"count": 1, "traffic": {"mean_interarrival_us": 10}}]}`, `only meaningful for poisson`},
		{"bad traffic kind", `{"name": "x", "sim_time_us": 1e6, "stations": [{"count": 1, "traffic": {"kind": "bursty"}}]}`, `unknown traffic kind "bursty"`},
		{"error prob out of range", `{"name": "x", "sim_time_us": 1e6, "stations": [{"count": 1, "error_prob": 1.5}]}`, `"error_prob" = 1.5 outside [0, 1]`},
		{"burst too large", `{"name": "x", "sim_time_us": 1e6, "stations": [{"count": 1, "burst_mpdus": 9}]}`, `"burst_mpdus" = 9`},
		{"sweep with two groups", `{"name": "x", "sim_time_us": 1e6, "sweep_n": [1, 2], "stations": [{"count": 1}, {"count": 1}]}`, `exactly one station group`},
		{"sweep zero", `{"name": "x", "sim_time_us": 1e6, "sweep_n": [0], "stations": [{"count": 1}]}`, `sweep_n[0] = 0`},
		{"bad seed policy", `{"name": "x", "sim_time_us": 1e6, "seed_policy": "lucky", "stations": [{"count": 1}]}`, `unknown seed_policy "lucky"`},
		{"sim cannot poisson", `{"name": "x", "engine": "sim", "sim_time_us": 1e6, "stations": [{"count": 1, "traffic": {"kind": "poisson", "mean_interarrival_us": 10}}]}`, `engine "sim" cannot express`},
		{"sim cannot beacon", `{"name": "x", "engine": "sim", "sim_time_us": 1e6, "beacon_period_us": 1000, "stations": [{"count": 1}]}`, `cannot express beacons`},
		{"unknown field", `{"name": "x", "sim_time_us": 1e6, "stations": [{"count": 1, "cww": [8]}]}`, `unknown field`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := Parse([]byte(tc.json))
			if err == nil {
				_, err = Compile(spec)
			}
			if err == nil {
				t.Fatalf("spec accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestAutoEngine pins the engine-selection rules: saturated
// single-class specs stay on the minimal simulator; traffic, bursts,
// beacons and mixed classes promote to the event-driven MAC.
func TestAutoEngine(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"saturated", Spec{Name: "a", SimTimeMicros: 1e6, Stations: []Group{{Count: 2}}}, EngineSim},
		{"hetero cw", Spec{Name: "b", SimTimeMicros: 1e6, Stations: []Group{
			{Count: 1}, {Count: 1, CW: []int{4}, DC: []int{0}},
		}}, EngineSim},
		{"errors", Spec{Name: "c", SimTimeMicros: 1e6, Stations: []Group{{Count: 2, ErrorProb: 0.5}}}, EngineSim},
		{"poisson", Spec{Name: "d", SimTimeMicros: 1e6, Stations: []Group{
			{Count: 2, Traffic: &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 100}},
		}}, EngineMac},
		{"beacons", Spec{Name: "e", SimTimeMicros: 1e6, BeaconPeriodMicros: 100, Stations: []Group{{Count: 2}}}, EngineMac},
		{"burst", Spec{Name: "f", SimTimeMicros: 1e6, Stations: []Group{{Count: 2, BurstMPDUs: 2}}}, EngineMac},
		{"mixed classes", Spec{Name: "g", SimTimeMicros: 1e6, Stations: []Group{
			{Count: 1}, {Count: 1, Priority: "CA3"},
		}}, EngineMac},
		{"single non-default class", Spec{Name: "h", SimTimeMicros: 1e6, Stations: []Group{
			{Count: 2, Priority: "CA3"},
		}}, EngineSim},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			norm, err := tc.spec.Normalized()
			if err != nil {
				t.Fatal(err)
			}
			if norm.Engine != tc.want {
				t.Fatalf("engine %q, want %q", norm.Engine, tc.want)
			}
		})
	}
}

// TestCompileExpandsGroups checks group expansion and per-station
// compilation onto the sim engine, including the error-probability
// vector appearing exactly when a group sets it.
func TestCompileExpandsGroups(t *testing.T) {
	c, err := Compile(Spec{
		Name: "mix", SimTimeMicros: 1e6,
		Stations: []Group{
			{Count: 2, ErrorProb: 0.25},
			{Count: 1, CW: []int{4}, DC: []int{0}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := c.Points[0].SimInputs
	if in == nil || c.Points[0].MacPlan != nil {
		t.Fatalf("expected sim compilation, got %+v", c.Points[0])
	}
	if in.N != 3 || len(in.PerStation) != 3 {
		t.Fatalf("N=%d PerStation=%d, want 3", in.N, len(in.PerStation))
	}
	if got := in.PerStation[2].CW[0]; got != 4 {
		t.Fatalf("station 2 CW[0]=%d, want 4", got)
	}
	want := []float64{0.25, 0.25, 0}
	if !reflect.DeepEqual(in.ErrorProb, want) {
		t.Fatalf("ErrorProb %v, want %v", in.ErrorProb, want)
	}

	free, err := Compile(Spec{Name: "clean", SimTimeMicros: 1e6, Stations: []Group{{Count: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if free.Points[0].SimInputs.ErrorProb != nil {
		t.Fatalf("error-free spec compiled with ErrorProb %v", free.Points[0].SimInputs.ErrorProb)
	}
}

// TestExampleScenarios compiles every shipped scenario file, so a
// drifting spec format can never strand the examples.
func TestExampleScenarios(t *testing.T) {
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 5 {
		t.Fatalf("found %d example scenarios, want ≥ 5 regimes", len(paths))
	}
	names := map[string]string{}
	for _, p := range paths {
		spec, err := Load(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if prev, dup := names[spec.Name]; dup {
			t.Errorf("%s: duplicate scenario name %q (also %s)", p, spec.Name, prev)
		}
		names[spec.Name] = p
		if _, err := Compile(spec); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}
