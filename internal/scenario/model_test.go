package scenario

import (
	"bytes"
	"math"
	"testing"
)

// modelSpec is a small heterogeneous model-engine scenario.
func modelSpec() Spec {
	return Spec{
		Name:          "model-test",
		Engine:        EngineModel,
		SimTimeMicros: 1e7,
		Stations: []Group{
			{Count: 2},
			{Count: 2, CW: []int{4, 8, 16, 32}, DC: []int{0, 1, 3, 15}, ErrorProb: 0.1},
		},
	}
}

// TestModelEngineCompilesAndEvaluates: the model engine produces the
// sim engine's canonical metric names, deterministically — the seed
// must not enter the evaluation anywhere.
func TestModelEngineCompilesAndEvaluates(t *testing.T) {
	c, err := Compile(modelSpec())
	if err != nil {
		t.Fatal(err)
	}
	if c.Spec.Engine != EngineModel {
		t.Fatalf("normalized engine %q", c.Spec.Engine)
	}
	p := c.Points[0]
	if p.ModelPlan == nil || p.SimInputs != nil || p.MacPlan != nil {
		t.Fatalf("model spec compiled to the wrong plan: %+v", p)
	}
	if len(p.ModelPlan.Groups) != 2 || p.ModelPlan.Groups[1].ErrorProb != 0.1 {
		t.Fatalf("model plan groups: %+v", p.ModelPlan.Groups)
	}

	m1, err := RunOnce(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RunOnce(p, 99999)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"collision_pr", "norm_throughput", "successes",
		"collided_frames", "frame_errors", "idle_slots", "elapsed_us"}
	if len(m1) != len(wantNames) {
		t.Fatalf("%d metrics, want %d", len(m1), len(wantNames))
	}
	for i, name := range wantNames {
		if m1[i].Name != name {
			t.Errorf("metric %d = %q, want %q (canonical sim order)", i, m1[i].Name, name)
		}
		if m1[i].Value != m2[i].Value {
			t.Errorf("metric %s differs across seeds: %v vs %v (model points must be deterministic)",
				name, m1[i].Value, m2[i].Value)
		}
		if math.IsNaN(m1[i].Value) || m1[i].Value < 0 {
			t.Errorf("metric %s = %v", name, m1[i].Value)
		}
	}
	if m1[4].Value <= 0 {
		t.Error("error_prob group predicted no frame errors")
	}
	if m1[6].Value != 1e7 {
		t.Errorf("elapsed_us = %v, want the spec horizon", m1[6].Value)
	}
}

// TestModelEngineRepsCollapse: deterministic points collapse any
// requested replication count to a single evaluation per point.
func TestModelEngineRepsCollapse(t *testing.T) {
	s := modelSpec()
	s.Stations = s.Stations[:1]
	s.SweepN = []int{1, 2, 5}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replications(c, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reps != 1 {
		t.Fatalf("model report reps = %d, want 1 (collapsed)", rep.Reps)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("%d points", len(rep.Points))
	}
	for _, p := range rep.Points {
		if len(p.PerRep) != 1 {
			t.Errorf("N=%d: %d replications recorded", p.N, len(p.PerRep))
		}
		for _, m := range p.Metrics {
			if m.Summary.N != 1 || m.Summary.CI95 != 0 {
				t.Errorf("N=%d %s: n=%d ci=%v, want a single zero-width sample",
					p.N, m.Name, m.Summary.N, m.Summary.CI95)
			}
		}
	}
	// Any reps value must produce the identical report.
	rep2, err := Replications(c, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := rep.Write(&b1); err != nil {
		t.Fatal(err)
	}
	if err := rep2.Write(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("model reports differ across requested rep counts")
	}
}

// TestModelEngineUnsupportedFeatures: everything that forces the
// event-driven MAC must be a loud validation error under engine
// "model" — the error -validate surfaces.
func TestModelEngineUnsupportedFeatures(t *testing.T) {
	base := func() Spec {
		return Spec{
			Name:          "model-bad",
			Engine:        EngineModel,
			SimTimeMicros: 1e6,
			Stations:      []Group{{Count: 2}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"poisson", func(s *Spec) {
			s.Stations[0].Traffic = &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 1e4}
		}},
		{"silent", func(s *Spec) { s.Stations[0].Traffic = &Traffic{Kind: TrafficNone} }},
		{"beacons", func(s *Spec) { s.BeaconPeriodMicros = 33330 }},
		{"bursts", func(s *Spec) { s.Stations[0].BurstMPDUs = 2 }},
		{"mixed-priorities", func(s *Spec) {
			s.Stations = append(s.Stations, Group{Count: 1, Priority: "CA3"})
		}},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: engine model accepted an inexpressible spec", tc.name)
			continue
		}
		if !bytes.Contains([]byte(err.Error()), []byte(`engine "model" cannot express`)) {
			t.Errorf("%s: error %q does not name the unsupported feature contract", tc.name, err)
		}
	}
}

// TestModelTracksSimulationEnvelope is the accuracy pin of the model
// engine: on the shipped saturation sweep (the paper's Figure 2
// regime) the analytic throughput and collision probability must track
// the simulator within the paper's reported accuracy envelope.
func TestModelTracksSimulationEnvelope(t *testing.T) {
	spec, err := Load("../../examples/scenarios/saturation-sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	spec.SimTimeMicros = 2e7 // shorter horizon: sampling noise ≪ model error
	cmp, err := Compare(spec, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Points) != len(spec.SweepN) {
		t.Fatalf("%d comparison points, want %d", len(cmp.Points), len(spec.SweepN))
	}
	for _, p := range cmp.Points {
		for _, m := range p.Metrics {
			switch m.Name {
			case "norm_throughput":
				if m.RelDiff > 0.05 {
					t.Errorf("N=%d: model throughput %v vs sim %v — %.1f%% off, outside the 5%% envelope",
						p.N, m.Model, m.Sim.Mean, 100*m.RelDiff)
				}
			case "collision_pr":
				// The decoupling approximation is weakest at N=2
				// (≈0.03 high, the band TestFigure2ModelShape also
				// widens); 0.04 bounds every sweep point.
				if m.AbsDiff > 0.04 {
					t.Errorf("N=%d: model collision %v vs sim %v — |Δ| %.4f outside 0.04",
						p.N, m.Model, m.Sim.Mean, m.AbsDiff)
				}
			}
		}
	}
}

// TestCompareReportShape covers the comparison plumbing itself.
func TestCompareReportShape(t *testing.T) {
	s := modelSpec()
	s.Engine = "" // Compare must work from an engine-agnostic spec
	cmp, err := Compare(s, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Reps != 3 || len(cmp.Points) != 1 {
		t.Fatalf("comparison shape: reps=%d points=%d", cmp.Reps, len(cmp.Points))
	}
	names := map[string]bool{}
	for _, m := range cmp.Points[0].Metrics {
		names[m.Name] = true
		if m.Sim.N != 3 {
			t.Errorf("%s: sim side aggregated n=%d, want 3", m.Name, m.Sim.N)
		}
		if m.AbsDiff != math.Abs(m.Model-m.Sim.Mean) {
			t.Errorf("%s: abs diff %v inconsistent", m.Name, m.AbsDiff)
		}
	}
	for _, want := range []string{"collision_pr", "norm_throughput", "successes"} {
		if !names[want] {
			t.Errorf("comparison missing metric %s", want)
		}
	}
	var buf bytes.Buffer
	if err := cmp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("analytic model vs engine sim")) {
		t.Errorf("comparison rendering:\n%s", buf.String())
	}
	// A mac-only spec cannot be compared.
	bad := modelSpec()
	bad.Engine = ""
	bad.BeaconPeriodMicros = 33330
	if _, err := Compare(bad, 2, 1); err == nil {
		t.Error("Compare accepted a mac-only spec")
	}
}
