package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// modelSpec is a small heterogeneous model-engine scenario.
func modelSpec() Spec {
	return Spec{
		Name:          "model-test",
		Engine:        EngineModel,
		SimTimeMicros: 1e7,
		Stations: []Group{
			{Count: 2},
			{Count: 2, CW: []int{4, 8, 16, 32}, DC: []int{0, 1, 3, 15}, ErrorProb: 0.1},
		},
	}
}

// TestModelEngineCompilesAndEvaluates: the model engine produces the
// sim engine's canonical metric names, deterministically — the seed
// must not enter the evaluation anywhere.
func TestModelEngineCompilesAndEvaluates(t *testing.T) {
	c, err := Compile(modelSpec())
	if err != nil {
		t.Fatal(err)
	}
	if c.Spec.Engine != EngineModel {
		t.Fatalf("normalized engine %q", c.Spec.Engine)
	}
	p := c.Points[0]
	if p.ModelPlan == nil || p.SimInputs != nil || p.MacPlan != nil {
		t.Fatalf("model spec compiled to the wrong plan: %+v", p)
	}
	if len(p.ModelPlan.Groups) != 2 || p.ModelPlan.Groups[1].ErrorProb != 0.1 {
		t.Fatalf("model plan groups: %+v", p.ModelPlan.Groups)
	}

	m1, err := RunOnce(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RunOnce(p, 99999)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := MetricNames(EngineModel)
	if len(m1) != len(wantNames) {
		t.Fatalf("%d metrics, want %d", len(m1), len(wantNames))
	}
	byName := map[string]float64{}
	for i, name := range wantNames {
		if m1[i].Name != name {
			t.Errorf("metric %d = %q, want %q (canonical model order)", i, m1[i].Name, name)
		}
		if m1[i].Value != m2[i].Value {
			t.Errorf("metric %s differs across seeds: %v vs %v (model points must be deterministic)",
				name, m1[i].Value, m2[i].Value)
		}
		if math.IsNaN(m1[i].Value) || m1[i].Value < 0 {
			t.Errorf("metric %s = %v", name, m1[i].Value)
		}
		byName[m1[i].Name] = m1[i].Value
	}
	if byName["frame_errors"] <= 0 {
		t.Error("error_prob group predicted no frame errors")
	}
	if byName["elapsed_us"] != 1e7 {
		t.Errorf("elapsed_us = %v, want the spec horizon", byName["elapsed_us"])
	}
	// Both groups default to CA1, so the per-class split must place the
	// whole throughput in CA1 and leave the other classes at zero.
	if byName["throughput_ca1"] != byName["norm_throughput"] {
		t.Errorf("throughput_ca1 = %v, want the single class to carry norm_throughput %v",
			byName["throughput_ca1"], byName["norm_throughput"])
	}
	for _, n := range []string{"throughput_ca0", "collision_pr_ca0", "throughput_ca2",
		"collision_pr_ca2", "throughput_ca3", "collision_pr_ca3"} {
		if byName[n] != 0 {
			t.Errorf("%s = %v, want 0 for an absent class", n, byName[n])
		}
	}
}

// TestModelEngineRepsCollapse: deterministic points collapse any
// requested replication count to a single evaluation per point.
func TestModelEngineRepsCollapse(t *testing.T) {
	s := modelSpec()
	s.Stations = s.Stations[:1]
	s.SweepN = []int{1, 2, 5}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replications(c, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reps != 1 {
		t.Fatalf("model report reps = %d, want 1 (collapsed)", rep.Reps)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("%d points", len(rep.Points))
	}
	for _, p := range rep.Points {
		if len(p.PerRep) != 1 {
			t.Errorf("N=%d: %d replications recorded", p.N, len(p.PerRep))
		}
		for _, m := range p.Metrics {
			if m.Summary.N != 1 || m.Summary.CI95 != 0 {
				t.Errorf("N=%d %s: n=%d ci=%v, want a single zero-width sample",
					p.N, m.Name, m.Summary.N, m.Summary.CI95)
			}
		}
	}
	// Any reps value must produce the identical report.
	rep2, err := Replications(c, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := rep.Write(&b1); err != nil {
		t.Fatal(err)
	}
	if err := rep2.Write(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("model reports differ across requested rep counts")
	}
}

// TestModelEngineAcceptsWidenedRegimes: the loaded fixed point covers
// Poisson traffic, silent groups and mixed CA0–CA3 priorities, so
// engine "model" must validate, compile and evaluate them to finite
// NaN-free metrics.
func TestModelEngineAcceptsWidenedRegimes(t *testing.T) {
	base := func() Spec {
		return Spec{
			Name:          "model-wide",
			Engine:        EngineModel,
			SimTimeMicros: 1e7,
			Stations:      []Group{{Count: 2}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"poisson", func(s *Spec) {
			s.Stations[0].Traffic = &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 1e5}
		}},
		{"silent-group", func(s *Spec) {
			s.Stations = append(s.Stations, Group{Count: 3, Traffic: &Traffic{Kind: TrafficNone}})
		}},
		{"mixed-priorities", func(s *Spec) {
			s.Stations = append(s.Stations, Group{Count: 1, Priority: "CA3",
				Traffic: &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 2e5}})
		}},
		{"all-four-classes", func(s *Spec) {
			s.Stations = []Group{
				{Count: 1, Priority: "CA0", Traffic: &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 1e5}},
				{Count: 1, Priority: "CA1", Traffic: &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 1e5}},
				{Count: 1, Priority: "CA2", Traffic: &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 1e5}},
				{Count: 1, Priority: "CA3", Traffic: &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 1e5}},
			}
		}},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(&s)
		if err := s.Validate(); err != nil {
			t.Errorf("%s: engine model rejected a now-expressible spec: %v", tc.name, err)
			continue
		}
		c, err := Compile(s)
		if err != nil {
			t.Errorf("%s: compile: %v", tc.name, err)
			continue
		}
		m, err := RunOnce(c.Points[0], 1)
		if err != nil {
			t.Errorf("%s: RunOnce: %v", tc.name, err)
			continue
		}
		for _, mm := range m {
			if math.IsNaN(mm.Value) || math.IsInf(mm.Value, 0) || mm.Value < 0 {
				t.Errorf("%s: metric %s = %v", tc.name, mm.Name, mm.Value)
			}
		}
	}
}

// TestModelEngineRejectsEventDrivenFeatures: only genuinely
// event-driven features — beacons, multi-MPDU bursts, per-group PHY
// framing — still force the event-driven MAC, and the validation error
// must name every offending feature without ever claiming a supported
// regime (Poisson load, silence, priorities) is unsupported.
func TestModelEngineRejectsEventDrivenFeatures(t *testing.T) {
	base := func() Spec {
		return Spec{
			Name:          "model-bad",
			Engine:        EngineModel,
			SimTimeMicros: 1e6,
			Stations:      []Group{{Count: 2}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string // substring the error must carry for this feature
	}{
		{"beacons", func(s *Spec) { s.BeaconPeriodMicros = 33330 }, "beacons"},
		{"bursts", func(s *Spec) { s.Stations[0].BurstMPDUs = 2 }, "burst of 2 MPDUs"},
		{"framing", func(s *Spec) { s.Stations[0].PBsPerMPDU = 3 }, "PHY framing"},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: engine model accepted an inexpressible spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), `engine "model" cannot express`) {
			t.Errorf("%s: error %q does not name the unsupported feature contract", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the offending feature (%q)", tc.name, err, tc.want)
		}
	}

	// A spec mixing supported regimes with several unsupported features
	// must list every unsupported feature at once — and none of the
	// supported ones.
	s := base()
	s.BeaconPeriodMicros = 33330
	s.Stations = []Group{
		{Count: 2, Traffic: &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 1e5}},
		{Count: 1, Priority: "CA3", BurstMPDUs: 4},
		{Count: 1, Priority: "CA0", Traffic: &Traffic{Kind: TrafficNone}},
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("engine model accepted beacons+bursts")
	}
	msg := err.Error()
	for _, want := range []string{"beacons", "burst of 4 MPDUs"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q omits unsupported feature %q", msg, want)
		}
	}
	for _, never := range []string{"poisson", "Poisson", "none", "silent", "priorit", "traffic"} {
		if strings.Contains(msg, never) {
			t.Errorf("error %q claims supported regime %q is unsupported", msg, never)
		}
	}
}

// checkEnvelope asserts one comparison stays inside the repository's
// model-accuracy envelope: throughput within 5% relative, collision
// probability within 0.04 absolute of the simulated mean.
func checkEnvelope(t *testing.T, label string, cmp *CompareReport) {
	t.Helper()
	for _, p := range cmp.Points {
		for _, m := range p.Metrics {
			switch m.Name {
			case "norm_throughput":
				if m.RelDiff > 0.05 {
					t.Errorf("%s N=%d: model throughput %v vs sim %v — %.1f%% off, outside the 5%% envelope",
						label, p.N, m.Model, m.Sim.Mean, 100*m.RelDiff)
				}
			case "collision_pr":
				// The decoupling approximation is weakest at N=2
				// (≈0.03 high, the band TestFigure2ModelShape also
				// widens); 0.04 bounds every shipped point.
				if m.AbsDiff > 0.04 {
					t.Errorf("%s N=%d: model collision %v vs sim %v — |Δ| %.4f outside 0.04",
						label, p.N, m.Model, m.Sim.Mean, m.AbsDiff)
				}
			}
		}
	}
}

// TestModelTracksSimulationEnvelope is the accuracy pin of the model
// engine in its classic regime: on the shipped saturation sweep (the
// paper's Figure 2 regime) the analytic throughput and collision
// probability must track the slot-synchronous simulator within the
// paper's reported accuracy envelope.
func TestModelTracksSimulationEnvelope(t *testing.T) {
	spec, err := Load("../../examples/scenarios/saturation-sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	spec.SimTimeMicros = 2e7 // shorter horizon: sampling noise ≪ model error
	cmp, err := Compare(spec, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Points) != len(spec.SweepN) {
		t.Fatalf("%d comparison points, want %d", len(cmp.Points), len(spec.SweepN))
	}
	checkEnvelope(t, "saturation", cmp)
}

// TestModelTracksLoadedEnvelope pins the widened regimes the loaded
// fixed point added — unsaturated Poisson load, silent groups, mixed
// priority classes — against the event-driven MAC (the only simulator
// that expresses them), inside the same accuracy envelope. These are
// spot checks; the full shipped grids run through the campaign-level
// envelope suite in internal/campaign.
func TestModelTracksLoadedEnvelope(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"poisson-load", Spec{
			Name: "poisson-load", SimTimeMicros: 5e7, Seed: 7,
			Stations: []Group{
				{Count: 5, Traffic: &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 1e5}},
			},
		}},
		{"silent-bystanders", Spec{
			Name: "silent-bystanders", SimTimeMicros: 5e7, Seed: 7,
			Stations: []Group{
				{Count: 2, Traffic: &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 4e4}},
				{Count: 2, Traffic: &Traffic{Kind: TrafficNone}},
			},
		}},
		{"priority-mix", Spec{
			Name: "priority-mix", SimTimeMicros: 5e7, Seed: 7,
			Stations: []Group{
				{Count: 2, Priority: "CA1"},
				{Count: 1, Priority: "CA3", Traffic: &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 1e5}},
			},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cmp, err := Compare(tc.spec, 3, 2)
			if err != nil {
				t.Fatal(err)
			}
			checkEnvelope(t, tc.name, cmp)
		})
	}
}

// TestModelFlowConservationVsMac: in a stable unsaturated regime the
// model's delivered-frame count is pinned by flow conservation
// (deliveries ≈ offered load), and the event-driven MAC must agree —
// a regime-specific property sharper than the generic envelope.
func TestModelFlowConservationVsMac(t *testing.T) {
	spec := Spec{
		Name: "flow", SimTimeMicros: 5e7, Seed: 11,
		Stations: []Group{
			{Count: 4, Traffic: &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 1e5}},
		},
	}
	cmp, err := Compare(spec, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	offered := 4 * spec.SimTimeMicros / 1e5 // stations × horizon × λ
	for _, m := range cmp.Points[0].Metrics {
		if m.Name != "successes" {
			continue
		}
		if rel := math.Abs(m.Model-offered) / offered; rel > 0.02 {
			t.Errorf("model deliveries %v vs offered %v: %.2f%% off (flow conservation)",
				m.Model, offered, 100*rel)
		}
		// The simulated mean fluctuates with Poisson arrivals; 5%
		// bounds it comfortably at this horizon.
		if rel := math.Abs(m.Sim.Mean-offered) / offered; rel > 0.05 {
			t.Errorf("mac deliveries %v vs offered %v: %.2f%% off", m.Sim.Mean, offered, 100*rel)
		}
	}
}

// TestModelStarvationVsMac: a saturated CA3 class starves CA1 to
// exactly zero in the model; the event-driven MAC's frozen-backoff
// semantics must agree that the low class delivers (essentially)
// nothing.
func TestModelStarvationVsMac(t *testing.T) {
	spec := Spec{
		Name: "starve", SimTimeMicros: 2e7, Seed: 13,
		Stations: []Group{
			{Count: 1, Priority: "CA3"},
			{Count: 2, Priority: "CA1"},
		},
	}
	// The per-class split is model-only (the MAC reports aggregates), so
	// check it on the model evaluation directly.
	ms := spec
	ms.Engine = EngineModel
	mc, err := Compile(ms)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := RunOnce(mc.Points[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mm {
		if m.Name == "throughput_ca1" && m.Value != 0 {
			t.Errorf("model CA1 throughput %v under a saturated CA3, want exactly 0", m.Value)
		}
	}
	cmp, err := Compare(spec, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range cmp.Points[0].Metrics {
		if m.Name == "norm_throughput" && m.RelDiff > 0.05 {
			t.Errorf("starved-mix throughput: model %v vs mac %v (%.1f%% off)",
				m.Model, m.Sim.Mean, 100*m.RelDiff)
		}
	}
}

// TestCompareReportShape covers the comparison plumbing itself.
func TestCompareReportShape(t *testing.T) {
	s := modelSpec()
	s.Engine = "" // Compare must work from an engine-agnostic spec
	cmp, err := Compare(s, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Reps != 3 || len(cmp.Points) != 1 {
		t.Fatalf("comparison shape: reps=%d points=%d", cmp.Reps, len(cmp.Points))
	}
	names := map[string]bool{}
	for _, m := range cmp.Points[0].Metrics {
		names[m.Name] = true
		if m.Sim.N != 3 {
			t.Errorf("%s: sim side aggregated n=%d, want 3", m.Name, m.Sim.N)
		}
		if m.AbsDiff != math.Abs(m.Model-m.Sim.Mean) {
			t.Errorf("%s: abs diff %v inconsistent", m.Name, m.AbsDiff)
		}
	}
	for _, want := range []string{"collision_pr", "norm_throughput", "successes"} {
		if !names[want] {
			t.Errorf("comparison missing metric %s", want)
		}
	}
	var buf bytes.Buffer
	if err := cmp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("analytic model vs engine sim")) {
		t.Errorf("comparison rendering:\n%s", buf.String())
	}

	// A spec the slot-synchronous engine cannot express falls back to
	// the event-driven MAC on the simulation side.
	wide := modelSpec()
	wide.Engine = ""
	wide.Stations[0].Traffic = &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 1e5}
	wcmp, err := Compare(wide, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wcmp.Spec.Engine != EngineMac {
		t.Errorf("widened-regime comparison simulated with %q, want mac", wcmp.Spec.Engine)
	}
	buf.Reset()
	if err := wcmp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("analytic model vs engine mac")) {
		t.Errorf("mac-fallback rendering:\n%s", buf.String())
	}

	// A mac-only spec cannot be compared.
	bad := modelSpec()
	bad.Engine = ""
	bad.BeaconPeriodMicros = 33330
	if _, err := Compare(bad, 2, 1); err == nil {
		t.Error("Compare accepted a mac-only spec")
	}
}
