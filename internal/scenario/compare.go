package scenario

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// MetricComparison is one metric's model-vs-simulation divergence at
// one operating point.
type MetricComparison struct {
	// Name is the canonical metric name (shared by both engines).
	Name string `json:"name"`
	// Model is the analytic prediction (a single deterministic value).
	Model float64 `json:"model"`
	// Sim aggregates the simulated replications of the same metric.
	Sim stats.Summary `json:"sim"`
	// AbsDiff is |model − sim mean|; RelDiff is AbsDiff normalized by
	// |sim mean| (0 when the simulated mean is 0).
	AbsDiff float64 `json:"abs_diff"`
	RelDiff float64 `json:"rel_diff"`
}

// ComparePoint is one sweep point of a comparison.
type ComparePoint struct {
	N       int                `json:"n"`
	Metrics []MetricComparison `json:"metrics"`
}

// CompareReport is the model-vs-simulation study Compare produces: the
// decoupling approximation's predictions next to replicated simulation
// statistics, metric by metric — the repository form of the paper's
// model-accuracy validation.
type CompareReport struct {
	// Spec is the normalized simulation spec the comparison ran.
	Spec Spec `json:"spec"`
	// Reps is the simulated replication count per point (the model side
	// is deterministic and evaluated once).
	Reps int `json:"reps"`
	// Points pairs the two engines per sweep point, in sweep order.
	Points []ComparePoint `json:"points"`
}

// Compare evaluates a spec through both the analytic model engine and
// a simulator — the slot-synchronous engine when the spec is
// expressible there, the event-driven MAC otherwise (Poisson or silent
// traffic, mixed priorities) — and pairs their canonical metrics by
// name. The spec must be model-expressible; reps and workers shape
// only the simulation side. The report is bit-identical whatever the
// worker count, like everything else in this package.
func Compare(spec Spec, reps, workers int) (*CompareReport, error) {
	ms := spec
	ms.Engine = EngineModel
	// The model side is deterministic: variance reduction is meaningless
	// there (and rejected by Validate), so a CV-enabled sim spec still
	// compares cleanly.
	ms.VarianceReduction = nil
	mc, err := Compile(ms)
	if err != nil {
		return nil, err
	}
	mrep, err := Replications(mc, 1, 1)
	if err != nil {
		return nil, err
	}

	ss := spec
	ss.Engine = EngineSim
	if why := ss.needsMac(); why != "" {
		// The regimes only the widened model covers analytically are
		// simulated by the event-driven MAC; its shared metric names
		// (collision_pr, norm_throughput, …) pair with the model's.
		ss.Engine = EngineMac
		ss.VarianceReduction = nil
	}
	sc, err := Compile(ss)
	if err != nil {
		return nil, err
	}
	srep, err := Replications(sc, reps, workers)
	if err != nil {
		return nil, err
	}

	out := &CompareReport{Spec: srep.Spec, Reps: reps}
	for pi, sp := range srep.Points {
		cp := ComparePoint{N: sp.N}
		modelByName := map[string]float64{}
		for _, m := range mrep.Points[pi].Metrics {
			modelByName[m.Name] = m.Summary.Mean
		}
		for _, m := range sp.Metrics {
			if ss.Engine == EngineMac && m.Name == "idle_slots" {
				// The event-driven MAC's idle counter includes
				// priority-resolution slots and the quiet periods it
				// fast-forwards, so it measures a different quantity
				// than the model's (and sim engine's) virtual-slot
				// idle; pairing the two would only add noise.
				continue
			}
			mv, ok := modelByName[m.Name]
			if !ok {
				continue
			}
			mc := MetricComparison{Name: m.Name, Model: mv, Sim: m.Summary}
			mc.AbsDiff = math.Abs(mv - m.Summary.Mean)
			if m.Summary.Mean != 0 {
				mc.RelDiff = mc.AbsDiff / math.Abs(m.Summary.Mean)
			}
			cp.Metrics = append(cp.Metrics, mc)
		}
		out.Points = append(out.Points, cp)
	}
	return out, nil
}

// Write renders the comparison as aligned plain text, one metric per
// line with the model value, the simulated mean ± CI and the absolute
// and relative divergence. Pure function of the report.
func (r *CompareReport) Write(w io.Writer) error {
	s := r.Spec
	if _, err := fmt.Fprintf(w, "# compare scenario %s: analytic model vs engine %s (%d stations",
		s.Name, s.Engine, s.N()); err != nil {
		return err
	}
	if len(s.SweepN) > 0 {
		if _, err := fmt.Fprintf(w, " max, sweep over N=%v", s.SweepN); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, ", %d sim reps, seed %d/%s)\n", r.Reps, s.Seed, s.SeedPolicy); err != nil {
		return err
	}
	width := 0
	for _, p := range r.Points {
		for _, m := range p.Metrics {
			if len(m.Name) > width {
				width = len(m.Name)
			}
		}
	}
	for _, p := range r.Points {
		if len(s.SweepN) > 0 {
			if _, err := fmt.Fprintf(w, "\n# N = %d\n", p.N); err != nil {
				return err
			}
		}
		for _, m := range p.Metrics {
			pad := strings.Repeat(" ", width-len(m.Name))
			if _, err := fmt.Fprintf(w, "%s%s  model %14.6f   sim %14.6f ± %.6f   |Δ| %.6f (%.2f%%)\n",
				m.Name, pad, m.Model, m.Sim.Mean, m.Sim.CI95, m.AbsDiff, 100*m.RelDiff); err != nil {
				return err
			}
		}
	}
	return nil
}
