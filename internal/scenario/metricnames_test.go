package scenario

import (
	"testing"
)

// TestMetricNamesMatchRunOnce pins MetricNames to what RunOnce actually
// emits for every engine, so the by-name lookup surface (campaign
// convergence targets) can never drift from the real reports.
func TestMetricNamesMatchRunOnce(t *testing.T) {
	specs := map[string]Spec{
		EngineSim: {
			Name: "names-sim", Engine: EngineSim, SimTimeMicros: 1e5,
			Stations: []Group{{Count: 2}},
		},
		EngineModel: {
			Name: "names-model", Engine: EngineModel, SimTimeMicros: 1e5,
			Stations: []Group{{Count: 2}},
		},
		EngineMac: {
			Name: "names-mac", Engine: EngineMac, SimTimeMicros: 1e5,
			Stations: []Group{{Count: 2, Traffic: &Traffic{Kind: TrafficPoisson, MeanInterarrivalMicros: 1e4}}},
		},
	}
	for engine, spec := range specs {
		c, err := Compile(spec)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		metrics, err := RunOnce(c.Points[0], 1)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		want := MetricNames(engine)
		if len(want) != len(metrics) {
			t.Fatalf("%s: MetricNames lists %d metrics, RunOnce reports %d", engine, len(want), len(metrics))
		}
		for i, m := range metrics {
			if m.Name != want[i] {
				t.Errorf("%s: metric %d: MetricNames says %q, RunOnce reports %q", engine, i, want[i], m.Name)
			}
		}
	}
	if MetricNames("nonsense") != nil {
		t.Error("MetricNames of unknown engine should be nil")
	}
}
