package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Canonical returns the spec's canonical byte form: the compact JSON
// encoding of the normalized spec. Normalization makes every default
// explicit (engine resolved, seed and policy filled, timing expanded,
// group parameters written out), so two specs that describe the same
// operating regime — whether or not they spell out the defaults —
// canonicalize to the same bytes. encoding/json emits struct fields in
// declaration order with a fixed float format, so the encoding is
// deterministic across processes.
func (s Spec) Canonical() ([]byte, error) {
	norm, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(norm)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: canonical: %w", s.Name, err)
	}
	return data, nil
}

// Fingerprint content-addresses a replication study: a SHA-256 over the
// spec's canonical form plus the replication count, rendered as
// "sha256:<hex>". The seed and seed policy are part of the normalized
// spec, so the fingerprint pins everything that determines the study's
// bit-exact outcome — equal fingerprints mean equal results, which is
// what lets the serving layer answer repeated submissions from cache
// and coalesce concurrent identical ones.
func Fingerprint(s Spec, reps int) (string, error) {
	if reps < 1 {
		return "", fmt.Errorf("scenario %s: replications = %d must be ≥ 1", s.Name, reps)
	}
	canon, err := s.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(canon)
	fmt.Fprintf(h, "\nreps=%d\n", reps)
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}
