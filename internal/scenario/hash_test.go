package scenario

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func hashSpec() Spec {
	return Spec{
		Name:          "hash-me",
		SimTimeMicros: 1e6,
		Stations:      []Group{{Count: 2}},
	}
}

// TestFingerprintNormalizes: a spec with defaults spelled out and one
// relying on them describe the same study, so they must share a
// fingerprint — that equivalence is what makes the serving cache hit
// on semantically identical submissions.
func TestFingerprintNormalizes(t *testing.T) {
	implicit := hashSpec()
	explicit := implicit
	explicit.Engine = EngineSim
	explicit.Seed = 1
	explicit.SeedPolicy = SeedSplit
	explicit.TcMicros = 2920.64
	explicit.TsMicros = 2542.64
	explicit.FrameMicros = 2050
	explicit.Stations = []Group{{
		Count: 2, Priority: "CA1",
		CW: []int{8, 16, 32, 64}, DC: []int{0, 1, 3, 15},
		Traffic: &Traffic{Kind: TrafficSaturated},
	}}

	fi, err := Fingerprint(implicit, 5)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := Fingerprint(explicit, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fi != fe {
		t.Errorf("defaults-implicit and defaults-explicit specs fingerprint differently:\n%s\n%s", fi, fe)
	}
}

// TestFingerprintDiscriminates: anything that changes the study's
// outcome must change the key.
func TestFingerprintDiscriminates(t *testing.T) {
	base, err := Fingerprint(hashSpec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Spec){
		"seed":        func(s *Spec) { s.Seed = 7 },
		"seed policy": func(s *Spec) { s.SeedPolicy = SeedIncrement },
		"duration":    func(s *Spec) { s.SimTimeMicros = 2e6 },
		"count":       func(s *Spec) { s.Stations[0].Count = 3 },
		"error prob":  func(s *Spec) { s.Stations[0].ErrorProb = 0.1 },
	}
	for what, mutate := range mutations {
		s := hashSpec()
		mutate(&s)
		f, err := Fingerprint(s, 5)
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if f == base {
			t.Errorf("changing %s did not change the fingerprint", what)
		}
	}
	if f, _ := Fingerprint(hashSpec(), 6); f == base {
		t.Error("changing reps did not change the fingerprint")
	}
	if _, err := Fingerprint(hashSpec(), 0); err == nil {
		t.Error("reps=0 fingerprinted")
	}
	if _, err := Fingerprint(Spec{}, 5); err == nil {
		t.Error("invalid spec fingerprinted")
	}
}

// TestReplicationsOptsProgressAndEquivalence: the Options form must
// report monotonic progress reaching total, and produce a report
// bit-identical to plain Replications.
func TestReplicationsOptsProgressAndEquivalence(t *testing.T) {
	s := hashSpec()
	s.SweepN = []int{1, 2}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	const reps = 4
	var calls []int
	opt, err := ReplicationsOpts(c, reps, 3, Options{
		Progress: func(done, total int) {
			if total != 2*reps {
				t.Errorf("total = %d, want %d", total, 2*reps)
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2*reps {
		t.Fatalf("progress called %d times, want %d", len(calls), 2*reps)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress not monotonic: %v", calls)
		}
	}

	plain, err := Replications(c, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, opt) {
		t.Errorf("ReplicationsOpts report differs from Replications:\n%+v\n%+v", plain, opt)
	}
}

// TestReplicationsOptsCancel: a pre-cancelled context stops the run
// and surfaces context.Canceled.
func TestReplicationsOptsCancel(t *testing.T) {
	c, err := Compile(hashSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = ReplicationsOpts(c, 8, 2, Options{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
