package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// seedFromExamples feeds every shipped scenario file into the corpus,
// so the fuzzers start from the full grammar the repository actually
// uses (sweeps, priorities, Poisson traffic, channel errors, beacons).
func seedFromExamples(f *testing.F) {
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no example scenarios found to seed the corpus")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Hand-picked hostile shapes beyond the examples.
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","sim_time_us":1e308,"stations":[{"count":1}]}`))
	f.Add([]byte(`{"name":"x","sim_time_us":1,"sweep_n":[0],"stations":[{"count":0}]}`))
	f.Add([]byte(`{"name":"x","sim_time_us":1,"stations":[{"count":1,"cw":[1],"dc":[0],"error_prob":1}]}`))
	// Variance-reduction blocks: the canonicalization boundary (a
	// disabled block must normalize away without moving the
	// fingerprint), plus hostile knob values the validator must reject.
	f.Add([]byte(`{"name":"x","sim_time_us":1,"stations":[{"count":1}],"variance_reduction":{"kind":"none"}}`))
	f.Add([]byte(`{"name":"x","sim_time_us":1,"stations":[{"count":1}],"variance_reduction":{"kind":"control_variate","pilot_reps":-1,"min_corr":1e308,"max_beta":-0.5}}`))
	// The widened model engine: unsaturated (Poisson) load and mixed
	// CA0–CA3 priorities are now model-expressible and must round-trip
	// under engine "model"; silence and hostile arrival rates ride along.
	f.Add([]byte(`{"name":"x","engine":"model","sim_time_us":1e7,"stations":[{"count":3,"traffic":{"kind":"poisson","mean_interarrival_us":50000}}]}`))
	f.Add([]byte(`{"name":"x","engine":"model","sim_time_us":1e7,"stations":[{"count":2,"priority":"CA1"},{"count":1,"priority":"CA3","traffic":{"kind":"poisson","mean_interarrival_us":100000}},{"count":1,"priority":"CA0","traffic":{"kind":"none"}}]}`))
	f.Add([]byte(`{"name":"x","engine":"model","sim_time_us":1e7,"stations":[{"count":1,"traffic":{"kind":"poisson","mean_interarrival_us":1e-308}}]}`))
}

// FuzzSpecDecode asserts the decode→normalize→encode→decode round trip
// on arbitrary input: whenever a byte string parses and normalizes, the
// normalized form must re-encode to JSON that parses back to the very
// same normalized spec, and the canonical fingerprint must be stable
// across that trip (the serving cache's correctness depends on it).
func FuzzSpecDecode(f *testing.F) {
	seedFromExamples(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // not a spec; rejection is the correct outcome
		}
		norm, err := s.Normalized()
		if err != nil {
			return // invalid spec; rejection is the correct outcome
		}
		enc, err := norm.Marshal()
		if err != nil {
			t.Fatalf("normalized spec does not marshal: %v", err)
		}
		back, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-encoded normalized spec does not parse: %v\n%s", err, enc)
		}
		norm2, err := back.Normalized()
		if err != nil {
			t.Fatalf("re-decoded normalized spec does not normalize: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(norm, norm2) {
			t.Fatalf("round trip not lossless:\nfirst:  %+v\nsecond: %+v", norm, norm2)
		}
		f1, err := Fingerprint(s, 3)
		if err != nil {
			t.Fatalf("valid spec does not fingerprint: %v", err)
		}
		f2, err := Fingerprint(norm, 3)
		if err != nil {
			t.Fatal(err)
		}
		if f1 != f2 {
			t.Fatalf("fingerprint unstable across normalization: %s vs %s", f1, f2)
		}
	})
}

// FuzzNormalizeIdempotent asserts that Normalized never panics on any
// parseable input, and that it is idempotent: normalizing a normalized
// spec is the identity.
func FuzzNormalizeIdempotent(f *testing.F) {
	seedFromExamples(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		// Validate and Normalized must never panic, whatever the field
		// values that survived decoding (NaN cannot arrive via JSON, but
		// negative counts, huge floats and absurd vectors can).
		norm, err := s.Normalized()
		if err != nil {
			return
		}
		again, err := norm.Normalized()
		if err != nil {
			t.Fatalf("normalized spec fails to re-normalize: %v\n%+v", err, norm)
		}
		if !reflect.DeepEqual(norm, again) {
			t.Fatalf("Normalized is not idempotent:\nonce:  %+v\ntwice: %+v", norm, again)
		}
	})
}
