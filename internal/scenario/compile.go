package scenario

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/hpav"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/traffic"
)

// Compiled is a scenario ready to run: the normalized spec plus one
// engine-ready Point per sweep value (or a single point when the spec
// does not sweep). Compilation is deterministic and side-effect free;
// the per-replication seed is injected at run time.
type Compiled struct {
	// Spec is the normalized spec (every default explicit).
	Spec Spec
	// Points holds one entry per sweep value, in sweep order, or exactly
	// one entry for a non-sweeping spec.
	Points []Point
}

// Point is one operating point of a compiled scenario.
type Point struct {
	// N is the total station count at this point.
	N int
	// SimInputs is the compiled form for the slot-synchronous engine
	// (nil when the scenario targets the mac engine). Its Seed field is
	// zero; Run fills it per replication.
	SimInputs *sim.Inputs
	// MacPlan is the compiled form for the event-driven MAC (nil when
	// the scenario targets another engine).
	MacPlan *MacPlan
	// ModelPlan is the compiled form for the analytic model engine (nil
	// when the scenario targets a simulator).
	ModelPlan *ModelPlan
}

// ModelPlan is the compiled form of a model-engine scenario: the
// station groups of the loaded (offered-load, priority-aware)
// decoupling fixed point plus the timing that converts per-slot
// probabilities into time-based metrics. Evaluation is deterministic —
// no seed enters anywhere.
type ModelPlan struct {
	// Groups feed model.SolveLoaded, in spec order: each carries its
	// CSMA/CA parameters plus the group's priority class and offered
	// load (saturated, Poisson rate, or silent).
	Groups []model.LoadedGroup
	// SimTimeMicros scales the per-slot rates into the expected event
	// counts the simulated engines report.
	SimTimeMicros float64
	// Timing holds the slot/Ts/Tc/frame durations.
	Timing model.Timing
}

// MacPlan is the compiled form of a mac-engine scenario: everything
// Build needs except the seed.
type MacPlan struct {
	// Cfg is handed to mac.NewNetworkCfg.
	Cfg mac.Config
	// SimTimeMicros is the run duration.
	SimTimeMicros float64
	// Stations holds one entry per station, groups expanded in order.
	Stations []MacStation
}

// MacStation is one station of a MacPlan.
type MacStation struct {
	// Priority is the station's data class.
	Priority config.Priority
	// Params are the CSMA/CA parameters of that class.
	Params config.Params
	// Traffic is the normalized arrival process.
	Traffic Traffic
	// ErrorProb is the per-burst channel error probability.
	ErrorProb float64
	// BurstMPDUs, PBsPerMPDU and FrameMicros shape the bursts.
	BurstMPDUs  int
	PBsPerMPDU  int
	FrameMicros float64
}

// Compile validates and normalizes the spec and lowers it onto the
// engine it targets.
func Compile(s Spec) (*Compiled, error) {
	norm, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	c := &Compiled{Spec: norm}
	if len(norm.SweepN) == 0 {
		p, err := compilePoint(norm, norm.Stations)
		if err != nil {
			return nil, err
		}
		c.Points = []Point{p}
		return c, nil
	}
	for _, n := range norm.SweepN {
		g := norm.Stations[0] // Validate pinned sweeps to one group
		g.Count = n
		p, err := compilePoint(norm, []Group{g})
		if err != nil {
			return nil, err
		}
		c.Points = append(c.Points, p)
	}
	return c, nil
}

// compilePoint lowers one operating point (an expanded group list).
func compilePoint(s Spec, groups []Group) (Point, error) {
	n := 0
	for _, g := range groups {
		n += g.Count
	}
	if s.Engine == EngineModel {
		plan := &ModelPlan{
			SimTimeMicros: s.SimTimeMicros,
			Timing: model.Timing{
				Slot:        timing.SlotTime,
				Ts:          s.TsMicros,
				Tc:          s.TcMicros,
				FrameLength: s.FrameMicros,
			},
		}
		for gi, g := range groups {
			pri, _ := config.ParsePriority(g.Priority) // Validate parsed it already
			lg := model.LoadedGroup{
				Group: model.Group{
					N: g.Count,
					Params: config.Params{
						Name: fmt.Sprintf("%s-g%d", s.Name, gi),
						CW:   g.CW, DC: g.DC,
					},
					ErrorProb: g.ErrorProb,
				},
				Priority: pri,
			}
			switch g.Traffic.Kind {
			case TrafficPoisson:
				lg.ArrivalRate = 1 / g.Traffic.MeanInterarrivalMicros
			case TrafficNone:
				// Silent: zero availability, the group never contends.
			default:
				lg.Saturated = true
			}
			plan.Groups = append(plan.Groups, lg)
		}
		return Point{N: n, ModelPlan: plan}, nil
	}

	if s.Engine == EngineMac {
		plan := &MacPlan{
			Cfg:           mac.Config{BeaconPeriodMicros: s.BeaconPeriodMicros},
			SimTimeMicros: s.SimTimeMicros,
		}
		for gi, g := range groups {
			pri, _ := config.ParsePriority(g.Priority)
			for k := 0; k < g.Count; k++ {
				plan.Stations = append(plan.Stations, MacStation{
					Priority: pri,
					Params: config.Params{
						Name: fmt.Sprintf("%s-g%d", s.Name, gi),
						CW:   g.CW, DC: g.DC,
					},
					Traffic:     *g.Traffic,
					ErrorProb:   g.ErrorProb,
					BurstMPDUs:  g.BurstMPDUs,
					PBsPerMPDU:  g.PBsPerMPDU,
					FrameMicros: g.FrameMicros,
				})
			}
		}
		return Point{N: n, MacPlan: plan}, nil
	}

	in := &sim.Inputs{
		N:           n,
		SimTime:     s.SimTimeMicros,
		Tc:          s.TcMicros,
		Ts:          s.TsMicros,
		FrameLength: s.FrameMicros,
		PerStation:  make([]config.Params, 0, n),
	}
	anyErr := false
	errProb := make([]float64, 0, n)
	for gi, g := range groups {
		p := config.Params{
			Name: fmt.Sprintf("%s-g%d", s.Name, gi),
			CW:   g.CW, DC: g.DC,
		}
		for k := 0; k < g.Count; k++ {
			in.PerStation = append(in.PerStation, p)
			errProb = append(errProb, g.ErrorProb)
			if g.ErrorProb > 0 {
				anyErr = true
			}
		}
	}
	if anyErr {
		in.ErrorProb = errProb
	}
	if err := in.Validate(); err != nil {
		return Point{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return Point{N: n, SimInputs: in}, nil
}

// Station addressing for mac-engine scenarios. The TEI layout mirrors
// the testbed's (destination D at TEI 1, transmitters from TEI 2), but
// the MAC block (…:EE:…) is deliberately distinct from the testbed's
// (…:00:…/…:01:…), so counters keyed by peer address can never confuse
// a scenario run with a testbed run.
const dstTEI = hpav.TEI(1)

var dstAddr = hpav.MAC{0x00, 0xB0, 0x52, 0xEE, 0x00, 0x01}

func stationAddr(i int) hpav.MAC {
	return hpav.MAC{0x00, 0xB0, 0x52, 0xEE, 0x01, byte(i + 1)}
}

// errStreamBase labels the dedicated per-station channel-error streams,
// mirroring the sim engine's convention so error draws never collide
// with backoff or traffic streams.
const errStreamBase = uint64(1) << 32

// buildMac assembles a runnable network from a plan and a seed. The rng
// root splits exactly like the testbed: destination at 0, station i's
// backoff streams at i+1, its traffic stream at 1000+i, and its channel
// error stream far above at errStreamBase+i.
func buildMac(plan *MacPlan, seed uint64) *mac.Network {
	root := rng.New(seed)
	nw := mac.NewNetworkCfg(plan.Cfg)

	dst := mac.NewStation("D", dstTEI, dstAddr, root.Split(0))
	nw.Attach(dst)

	for i, sp := range plan.Stations {
		st := mac.NewStation(fmt.Sprintf("sta%d", i+1), hpav.TEI(i+2), stationAddr(i), root.Split(uint64(i+1)))
		st.SetParams(sp.Priority, sp.Params)

		var src traffic.Source
		switch sp.Traffic.Kind {
		case TrafficPoisson:
			src = traffic.NewPoisson(sp.Traffic.MeanInterarrivalMicros, root.Split(uint64(1000+i)))
		case TrafficNone:
			src = traffic.None{}
		default:
			src = traffic.Saturated{}
		}
		st.AddFlow(&mac.Flow{
			Source: src,
			Spec: mac.BurstSpec{
				Dst: dstTEI, DstAddr: dstAddr, Priority: sp.Priority,
				MPDUs: sp.BurstMPDUs, PBsPerMPDU: sp.PBsPerMPDU,
				FrameMicros: sp.FrameMicros,
			},
		})
		if sp.ErrorProb > 0 {
			st.SetFrameError(sp.ErrorProb, root.Split(errStreamBase+uint64(i)))
		}
		nw.Attach(st)
	}
	return nw
}

// Metric is one named measurement of a replication. Metrics come in a
// fixed, engine-determined order so that aggregation across
// replications — and rendering — is deterministic.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// MetricNames returns the canonical metric names RunOnce reports for
// the given engine, in report order. Callers that reference metrics by
// name before running anything (the campaign engine validating its
// convergence targets) check against this list; a test pins it to what
// RunOnce actually emits, so the two cannot drift.
func MetricNames(engine string) []string {
	switch engine {
	case EngineMac:
		return []string{"collision_pr", "norm_throughput", "successes", "collisions",
			"frame_errors", "idle_slots", "quiet_fraction", "beacons", "elapsed_us"}
	case EngineSim:
		return []string{"collision_pr", "norm_throughput", "successes", "collided_frames",
			"frame_errors", "idle_slots", "elapsed_us"}
	case EngineModel:
		// The sim engine's canonical metrics plus the per-class split
		// the priority-aware fixed point resolves. All four classes are
		// always present (zero when the spec has no such group) so the
		// list stays static whatever the spec.
		return []string{"collision_pr", "norm_throughput", "successes", "collided_frames",
			"frame_errors", "idle_slots",
			"throughput_ca0", "collision_pr_ca0", "throughput_ca1", "collision_pr_ca1",
			"throughput_ca2", "collision_pr_ca2", "throughput_ca3", "collision_pr_ca3",
			"elapsed_us"}
	default:
		return nil
	}
}

// RunOnce executes one replication of a compiled point with the given
// seed and returns its metrics in the engine's canonical order. A
// model-engine point is answered analytically: the seed is ignored
// (the fixed point is deterministic) and the count-style metrics carry
// the model's expected values over SimTimeMicros, under the sim
// engine's canonical names plus a per-priority-class split — so
// aggregation, rendering, golden files and the serving cache treat all
// engines alike.
func RunOnce(p Point, seed uint64) ([]Metric, error) {
	switch {
	case p.ModelPlan != nil:
		return modelMetrics(p.ModelPlan)

	case p.SimInputs != nil:
		in := *p.SimInputs
		in.Seed = seed
		e, err := sim.NewEngine(in)
		if err != nil {
			return nil, err
		}
		return simMetrics(e.Run()), nil

	case p.MacPlan != nil:
		nw := buildMac(p.MacPlan, seed)
		nw.Run(p.MacPlan.SimTimeMicros)
		st := nw.Stats()
		attempts := st.CollidedMPDUs + st.SuccessMPDUs + st.FrameErrorMPDUs
		collisionPr := 0.0
		if attempts > 0 {
			collisionPr = float64(st.CollidedMPDUs) / float64(attempts)
		}
		return []Metric{
			{"collision_pr", collisionPr},
			{"norm_throughput", st.PayloadMicros / st.Elapsed},
			{"successes", float64(st.Successes)},
			{"collisions", float64(st.Collisions)},
			{"frame_errors", float64(st.FrameErrors)},
			{"idle_slots", float64(st.IdleSlots)},
			{"quiet_fraction", st.QuietTime / st.Elapsed},
			{"beacons", float64(st.Beacons)},
			{"elapsed_us", st.Elapsed},
		}, nil

	default:
		return nil, fmt.Errorf("scenario: point compiled to no engine")
	}
}

// modelMetrics evaluates a model plan through the loaded fixed point
// and converts per-slot rates into the counters the simulators report.
// Expected virtual slots over each class's share of the horizon do the
// conversion; for a single-class plan the arithmetic reduces to the
// classic saturated path exactly (Share is 1), so widening the model
// moved no previously answerable number.
func modelMetrics(pl *ModelPlan) ([]Metric, error) {
	sol, err := model.SolveLoaded(pl.Groups, pl.Timing, model.Options{})
	if err != nil {
		return nil, fmt.Errorf("scenario: model point: %w", err)
	}
	var collisionPr, throughput, successes, collided, frameErrs, idle float64
	if len(sol.Classes) == 1 {
		c := &sol.Classes[0]
		if c.Met.MeanSlotDuration > 0 {
			slots := pl.SimTimeMicros / c.Met.MeanSlotDuration
			collisionPr = c.Met.CollisionProbability
			throughput = c.Met.TotalThroughput
			successes = c.Met.SuccessRate * slots
			collided = c.Met.CollidedRate * slots
			frameErrs = c.Met.ErrorRate * slots
			idle = c.Met.SlotIdle * slots
		}
	} else {
		// Strict priority: each class occupies its share of the
		// horizon; counters add, and the aggregate collision
		// probability stays attempt-weighted across classes. Idle time
		// is what no class spends transmitting — the shares nest
		// (a lower class's timeline contains the higher classes'
		// idle), so summing per-class idle slots would double-count;
		// subtracting busy time from the horizon instead reduces to
		// slots·pIdle exactly in the single-class case.
		var attempts, busy float64
		for i := range sol.Classes {
			c := &sol.Classes[i]
			if c.Starved || c.Met.MeanSlotDuration <= 0 {
				continue
			}
			slots := c.Share * pl.SimTimeMicros / c.Met.MeanSlotDuration
			successes += c.Met.SuccessRate * slots
			collided += c.Met.CollidedRate * slots
			frameErrs += c.Met.ErrorRate * slots
			busy += slots * (c.Met.MeanSlotDuration - c.Met.SlotIdle*pl.Timing.Slot)
			throughput += c.Share * c.Met.TotalThroughput
			attempts += c.Met.AttemptRate * slots
		}
		if attempts > 0 {
			collisionPr = collided / attempts
		}
		if pl.Timing.Slot > 0 {
			idle = (pl.SimTimeMicros - busy) / pl.Timing.Slot
			if idle < 0 {
				idle = 0
			}
		}
	}
	var perClass [4]struct{ thr, coll float64 }
	for i := range sol.Classes {
		c := &sol.Classes[i]
		if c.Starved {
			continue
		}
		perClass[c.Priority].thr = c.Share * c.Met.TotalThroughput
		perClass[c.Priority].coll = c.Met.CollisionProbability
	}
	return []Metric{
		{"collision_pr", collisionPr},
		{"norm_throughput", throughput},
		{"successes", successes},
		{"collided_frames", collided},
		{"frame_errors", frameErrs},
		{"idle_slots", idle},
		{"throughput_ca0", perClass[0].thr},
		{"collision_pr_ca0", perClass[0].coll},
		{"throughput_ca1", perClass[1].thr},
		{"collision_pr_ca1", perClass[1].coll},
		{"throughput_ca2", perClass[2].thr},
		{"collision_pr_ca2", perClass[2].coll},
		{"throughput_ca3", perClass[3].thr},
		{"collision_pr_ca3", perClass[3].coll},
		{"elapsed_us", pl.SimTimeMicros},
	}, nil
}

// simMetrics converts a sim result into the canonical metric vector.
func simMetrics(r sim.Result) []Metric {
	return []Metric{
		{"collision_pr", r.CollisionProbability},
		{"norm_throughput", r.NormalizedThroughput},
		{"successes", float64(r.Successes)},
		{"collided_frames", float64(r.CollidedFrames)},
		{"frame_errors", float64(r.FrameErrors)},
		{"idle_slots", float64(r.IdleSlots)},
		{"elapsed_us", r.Elapsed},
	}
}

// RunOnceCV executes one replication of a sim-engine point with the
// engine's martingale control variates enabled, returning the canonical
// metrics plus the run's control vector (sim.ControlNames order). The
// controls consume no randomness, so the metrics are bit-identical to
// RunOnce on the same point and seed — that is the common-random-numbers
// property the control-variate estimator depends on, and a test pins
// it. Points compiled for the model or mac engines are rejected;
// Spec.Validate keeps such specs from requesting variance reduction in
// the first place.
func RunOnceCV(p Point, seed uint64) ([]Metric, []float64, error) {
	if p.SimInputs == nil {
		return nil, nil, fmt.Errorf("scenario: control variates require a sim-engine point")
	}
	in := *p.SimInputs
	in.Seed = seed
	e, err := sim.NewEngine(in)
	if err != nil {
		return nil, nil, err
	}
	e.EnableControls()
	r := e.Run()
	return simMetrics(r), r.Controls, nil
}

// CVControlColumns maps a sim metric name to the control channels
// (indices into a replication's control vector) its control-variate
// regression uses. Each metric gets only the channels that plausibly
// explain it: a ratio like collision_pr gets its numerator and
// denominator channels, a raw counter gets its own channel. Keeping the
// per-metric regressions small preserves residual degrees of freedom at
// the pilot-size samples adaptive campaigns start from. Unknown (mac-
// or model-only) metric names return nil: no controls, raw estimate.
func CVControlColumns(name string) []int {
	switch name {
	case "collision_pr":
		return []int{sim.CtrlCollidedFrames, sim.CtrlSuccesses, sim.CtrlFrameErrors}
	case "norm_throughput":
		return []int{sim.CtrlSuccesses, sim.CtrlElapsed}
	case "successes":
		return []int{sim.CtrlSuccesses}
	case "collided_frames":
		return []int{sim.CtrlCollidedFrames}
	case "frame_errors":
		return []int{sim.CtrlFrameErrors}
	case "idle_slots":
		return []int{sim.CtrlIdleSlots}
	case "elapsed_us":
		return []int{sim.CtrlElapsed}
	default:
		return nil
	}
}
