// Package campaign is the layer above the scenario engine for running
// *families* of related runs: a declarative JSON spec names one base
// scenario plus N sweep axes — each a JSON-path into the scenario spec
// (`stations[0].cw`, `stations[0].error_prob`, `n`, …) with a list or
// range of values — and the engine expands the cross-product into
// concrete scenario.Specs, shards the grid over the deterministic
// internal/par pool, and keys every point by scenario.Fingerprint so
// reruns and the serving cache dedupe byte-identically.
//
// Replication counts may be fixed, or adaptive: a campaign can target a
// 95% confidence-interval half-width (absolute or relative) per metric,
// plus minimum and maximum replication counts, and the runner adds
// replication batches — continuing the same split/increment seed
// stream, so a converged point is byte-identical to a fixed-rep run of
// the same count — until every targeted metric converges or the cap is
// hit.
//
// Seeds are arranged so three paths coincide bit for bit: grid point i
// of a campaign, the expanded spec run standalone through `sim1901
// -scenario`, and (for a campaign whose only axis is `n`) point i of
// the legacy `sweep_n` path. Under the "split" policy the expanded
// spec's seed is base + golden·i, which makes the standalone
// replication seeds RepSeed(split, base+golden·i, 0, r) equal the sweep
// seeds RepSeed(split, base, i, r) — the SplitMix64 finalizer is
// bijective, so the two derivations collapse. Under "increment" every
// point reuses the base seed, the classic sweep convention.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/scenario"
)

// MaxPoints bounds a campaign's expanded grid. A cross-product is easy
// to explode by accident; failing validation loudly beats queueing a
// million simulations.
const MaxPoints = 4096

// Axis is one sweep dimension: a JSON-path into the scenario spec plus
// the values to substitute there. Exactly one of Values or the
// From/To/Step range must be given.
type Axis struct {
	// Path locates the swept field in the scenario spec's JSON, e.g.
	// "stations[0].error_prob", "stations[0].cw", "sim_time_us",
	// "stations[0].traffic.mean_interarrival_us". The alias "n" sweeps
	// the total station count (the spec must then declare exactly one
	// station group, mirroring sweep_n).
	Path string `json:"path"`
	// Values are the raw JSON values to substitute, in sweep order —
	// numbers for scalar fields, arrays for vector fields like cw/dc.
	Values []json.RawMessage `json:"values,omitempty"`
	// From/To/Step generate an inclusive numeric range instead of an
	// explicit list: From, From+Step, … up to To (tolerating float
	// rounding at the endpoint).
	From *float64 `json:"from,omitempty"`
	To   *float64 `json:"to,omitempty"`
	Step *float64 `json:"step,omitempty"`
}

// Target is one adaptive-replication convergence goal: keep adding
// replication batches until the named metric's 95% confidence-interval
// half-width is at most CI (absolute) or RelCI·|mean| (relative).
type Target struct {
	// Metric is the canonical metric name (e.g. "norm_throughput").
	Metric string `json:"metric"`
	// CI is the absolute half-width target; exactly one of CI and RelCI
	// must be positive.
	CI float64 `json:"ci,omitempty"`
	// RelCI is the half-width target as a fraction of the |mean|.
	RelCI float64 `json:"rel_ci,omitempty"`
}

// Spec is a declarative campaign: a base scenario, the axes of the
// grid, and the replication policy.
type Spec struct {
	// Name identifies the campaign in reports and logs (required).
	Name string `json:"name"`
	// Description is free text for humans.
	Description string `json:"description,omitempty"`
	// Base is the scenario every grid point starts from. It must be a
	// valid standalone scenario and must not use sweep_n (sweep the "n"
	// axis instead).
	Base scenario.Spec `json:"base"`
	// Axes are the sweep dimensions; the grid is their cross-product in
	// row-major order (the last axis varies fastest).
	Axes []Axis `json:"axes"`
	// Reps is the fixed replication count per grid point (default 10).
	// Mutually exclusive with the adaptive fields below.
	Reps int `json:"reps,omitempty"`
	// MinReps/MaxReps/BatchReps shape adaptive replication: every point
	// starts with MinReps replications and grows in BatchReps-sized
	// batches (default: MinReps) until every Target converges or
	// MaxReps is reached. Meaningful only with Targets.
	MinReps   int `json:"min_reps,omitempty"`
	MaxReps   int `json:"max_reps,omitempty"`
	BatchReps int `json:"batch_reps,omitempty"`
	// Targets are the convergence goals; non-empty Targets selects
	// adaptive replication.
	Targets []Target `json:"targets,omitempty"`
}

// Adaptive reports whether the campaign uses adaptive replication.
func (s Spec) Adaptive() bool { return len(s.Targets) > 0 }

// GridSize returns the number of grid points the spec expands to: the
// cross-product of the axis value counts. Unlike Compile it touches no
// JSON, so a cache-hit path can report the grid's shape without paying
// for expansion.
func (s Spec) GridSize() int {
	n := 1
	for _, a := range s.Axes {
		switch {
		case len(a.Values) > 0:
			n *= len(a.Values)
		case a.From != nil && a.To != nil && a.Step != nil:
			n *= rangeLen(*a.From, *a.To, *a.Step)
		}
	}
	return n
}

// Parse decodes a campaign Spec from JSON. Unknown fields are rejected,
// so typos fail loudly instead of silently reverting to defaults.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: parse: %w", err)
	}
	return s, nil
}

// Load reads and decodes a campaign Spec from a JSON file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Marshal encodes the spec as indented JSON (the format of the files
// under examples/campaigns).
func (s Spec) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: marshal: %w", err)
	}
	return append(data, '\n'), nil
}

// reservedPaths are scenario fields an axis may not sweep: the seed
// machinery is owned by the campaign's per-point derivation, sweep_n by
// the "n" axis, and the name keys fingerprints.
var reservedPaths = map[string]string{
	"seed":        "per-point seeds are derived from the base seed",
	"seed_policy": "the seed policy is shared by every grid point",
	"sweep_n":     "sweep station counts with an \"n\" axis instead",
	"name":        "grid points share the base scenario's name",
}

// Validate checks the campaign's structural invariants and reports the
// first violation with enough context to fix the file.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("campaign: missing \"name\"")
	}
	if err := s.Base.Validate(); err != nil {
		return fmt.Errorf("campaign %s: base: %w", s.Name, err)
	}
	if len(s.Base.SweepN) > 0 {
		return fmt.Errorf("campaign %s: base must not use \"sweep_n\"; sweep an \"n\" axis instead", s.Name)
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("campaign %s: \"axes\" must declare at least one sweep dimension", s.Name)
	}
	points := 1
	for ai, a := range s.Axes {
		n, err := s.validateAxis(ai, a)
		if err != nil {
			return err
		}
		if points > MaxPoints/n {
			return fmt.Errorf("campaign %s: grid exceeds %d points (cross-product of the axis value counts)", s.Name, MaxPoints)
		}
		points *= n
	}
	return s.validateReps()
}

func (s Spec) validateAxis(ai int, a Axis) (values int, err error) {
	at := func(format string, args ...any) error {
		return fmt.Errorf("campaign %s: axes[%d]: %s", s.Name, ai, fmt.Sprintf(format, args...))
	}
	if a.Path == "" {
		return 0, at("missing \"path\"")
	}
	if why, ok := reservedPaths[a.Path]; ok {
		return 0, at("path %q cannot be swept: %s", a.Path, why)
	}
	if _, err := parsePath(a.Path); err != nil {
		return 0, at("%v", err)
	}
	if a.Path == "n" && len(s.Base.Stations) != 1 {
		return 0, at("the \"n\" axis requires exactly one base station group, got %d", len(s.Base.Stations))
	}
	hasRange := a.From != nil || a.To != nil || a.Step != nil
	switch {
	case len(a.Values) > 0 && hasRange:
		return 0, at("give either \"values\" or a from/to/step range, not both")
	case len(a.Values) > 0:
		for vi, v := range a.Values {
			var decoded any
			if err := json.Unmarshal(v, &decoded); err != nil {
				return 0, at("values[%d]: %v", vi, err)
			}
		}
		return len(a.Values), nil
	case hasRange:
		if a.From == nil || a.To == nil || a.Step == nil {
			return 0, at("a range needs all of \"from\", \"to\" and \"step\"")
		}
		from, to, step := *a.From, *a.To, *a.Step
		if math.IsNaN(from) || math.IsInf(from, 0) || math.IsNaN(to) || math.IsInf(to, 0) {
			return 0, at("range endpoints must be finite")
		}
		if !(step > 0) || math.IsInf(step, 0) {
			return 0, at("\"step\" = %v must be a positive finite number", step)
		}
		if to < from {
			return 0, at("\"to\" = %v < \"from\" = %v", to, from)
		}
		n := rangeLen(from, to, step)
		if n > MaxPoints {
			return 0, at("range generates %d values, more than the %d-point grid bound", n, MaxPoints)
		}
		return n, nil
	default:
		return 0, at("missing \"values\" (or a from/to/step range)")
	}
}

// rangeEps tolerates float accumulation at a range's endpoint, so from
// 0 to 0.3 step 0.1 includes 0.3.
const rangeEps = 1e-9

// rangeLen counts the values of an inclusive from/to/step range.
func rangeLen(from, to, step float64) int {
	return int(math.Floor((to-from)/step+rangeEps)) + 1
}

// rangeValues materializes a validated range as canonical JSON
// numbers. The endpoint is clamped to `to`: float accumulation may
// push from + i·step a few ulps past it (0 + 3×0.1 > 0.3), and
// emitting the clean declared bound keeps labels readable and — more
// importantly — keeps the endpoint's scenario.Fingerprint equal to a
// hand-written spec using the same value.
func rangeValues(from, to, step float64) []json.RawMessage {
	n := rangeLen(from, to, step)
	out := make([]json.RawMessage, n)
	for i := range out {
		v := from + float64(i)*step
		if v > to {
			v = to
		}
		data, err := json.Marshal(v)
		if err != nil {
			panic(fmt.Sprintf("campaign: range value %v does not marshal: %v", v, err)) // unreachable: finite float
		}
		out[i] = data
	}
	return out
}

func (s Spec) validateReps() error {
	if !s.Adaptive() {
		if s.MinReps != 0 || s.MaxReps != 0 || s.BatchReps != 0 {
			return fmt.Errorf("campaign %s: \"min_reps\"/\"max_reps\"/\"batch_reps\" need \"targets\"; use \"reps\" for a fixed count", s.Name)
		}
		if s.Reps < 0 {
			return fmt.Errorf("campaign %s: \"reps\" = %d must be ≥ 1", s.Name, s.Reps)
		}
		return nil
	}
	if s.Reps != 0 {
		return fmt.Errorf("campaign %s: \"reps\" is mutually exclusive with \"targets\"; bound adaptive replication with \"min_reps\"/\"max_reps\"", s.Name)
	}
	if s.MinReps < 0 {
		return fmt.Errorf("campaign %s: \"min_reps\" = %d must be ≥ 1", s.Name, s.MinReps)
	}
	if s.MaxReps < 0 {
		return fmt.Errorf("campaign %s: \"max_reps\" = %d must be ≥ 1", s.Name, s.MaxReps)
	}
	min, max := s.MinReps, s.MaxReps
	if min == 0 {
		min = defaultMinReps
	}
	if max == 0 {
		max = defaultMaxReps
	}
	if min > max {
		return fmt.Errorf("campaign %s: \"min_reps\" = %d > \"max_reps\" = %d", s.Name, min, max)
	}
	if s.BatchReps < 0 {
		return fmt.Errorf("campaign %s: \"batch_reps\" = %d must be ≥ 1", s.Name, s.BatchReps)
	}
	for ti, tg := range s.Targets {
		at := func(format string, args ...any) error {
			return fmt.Errorf("campaign %s: targets[%d]: %s", s.Name, ti, fmt.Sprintf(format, args...))
		}
		if tg.Metric == "" {
			return at("missing \"metric\"")
		}
		ciSet := tg.CI != 0
		relSet := tg.RelCI != 0
		if ciSet == relSet {
			return at("give exactly one of \"ci\" and \"rel_ci\"")
		}
		if ciSet && (!(tg.CI > 0) || math.IsInf(tg.CI, 0) || math.IsNaN(tg.CI)) {
			return at("\"ci\" = %v must be a positive finite half-width", tg.CI)
		}
		if relSet && (!(tg.RelCI > 0) || math.IsInf(tg.RelCI, 0) || math.IsNaN(tg.RelCI)) {
			return at("\"rel_ci\" = %v must be a positive finite fraction", tg.RelCI)
		}
	}
	return nil
}

// Replication-policy defaults.
const (
	defaultReps    = 10 // fixed mode, matching the CLIs' -reps default
	defaultMinReps = 3  // smallest sample with a meaningful CI
	defaultMaxReps = 100
)

// Normalized returns a copy of the spec with every default explicit:
// the base scenario normalized, ranges expanded to explicit value
// lists, raw JSON values re-encoded compactly, and the replication
// policy filled in. Idempotent, like scenario.Spec.Normalized.
func (s Spec) Normalized() (Spec, error) {
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	out := s
	base, err := s.Base.Normalized()
	if err != nil {
		return Spec{}, fmt.Errorf("campaign %s: base: %w", s.Name, err)
	}
	out.Base = base
	out.Axes = make([]Axis, len(s.Axes))
	for ai, a := range s.Axes {
		na := Axis{Path: a.Path}
		if len(a.Values) > 0 {
			na.Values = make([]json.RawMessage, len(a.Values))
			for vi, v := range a.Values {
				c, err := compactJSON(v)
				if err != nil {
					return Spec{}, fmt.Errorf("campaign %s: axes[%d].values[%d]: %w", s.Name, ai, vi, err)
				}
				na.Values[vi] = c
			}
		} else {
			na.Values = rangeValues(*a.From, *a.To, *a.Step)
		}
		out.Axes[ai] = na
	}
	if out.Adaptive() {
		if out.MinReps == 0 {
			out.MinReps = defaultMinReps
		}
		if out.MaxReps == 0 {
			out.MaxReps = defaultMaxReps
		}
		if out.BatchReps == 0 {
			out.BatchReps = out.MinReps
		}
		out.Targets = append([]Target(nil), s.Targets...)
	} else if out.Reps == 0 {
		out.Reps = defaultReps
	}
	return out, nil
}

// compactJSON canonicalizes one raw JSON value: decoded with number
// fidelity preserved and re-encoded without whitespace.
func compactJSON(raw json.RawMessage) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return nil, err
	}
	return append(json.RawMessage(nil), buf.Bytes()...), nil
}

// valueString renders an axis value for labels and tables.
func valueString(raw json.RawMessage) string {
	return strings.TrimSpace(string(raw))
}
