package campaign

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// cvSweepSpec builds the acceptance campaign: an adaptive saturation
// sweep over the station count, targeting the paper's headline
// collision probability at a ±0.002 half-width — tight enough that the
// plain estimator needs hundreds of replications per point, so the
// control variate has real work to do. withCV toggles the single
// spec-level switch under test; everything else (seeds, horizon, grid)
// is shared, which is what makes the plain and CV runs a common-random-
// numbers pair.
func cvSweepSpec(t *testing.T, withCV bool) Spec {
	t.Helper()
	base := baseSpec()
	base.SimTimeMicros = 1e6
	base.Stations = []scenario.Group{{Count: 1}}
	if withCV {
		base.VarianceReduction = &scenario.VarianceReduction{Kind: scenario.VRControlVariate}
	}
	return Spec{
		Name:      "cv-acceptance",
		Base:      base,
		Axes:      []Axis{{Path: "n", Values: rawVals(t, 2, 3, 5)}},
		Targets:   []Target{{Metric: "collision_pr", CI: 0.002}},
		MinReps:   4,
		MaxReps:   2000,
		BatchReps: 2,
	}
}

// collisionEstimate extracts a point's operative collision_pr estimate:
// the CV-adjusted mean and half-width when a fit applied, the raw
// summary otherwise — exactly what the adaptive stopping rule consumed.
func collisionEstimate(t *testing.T, p PointResult) (mean, hw float64) {
	t.Helper()
	for _, m := range p.Report.Points[0].Metrics {
		if m.Name != "collision_pr" {
			continue
		}
		if m.CV != nil && m.CV.Applied {
			return m.CV.Mean, m.CV.CI95
		}
		return m.Summary.Mean, m.Summary.CI95
	}
	t.Fatal("collision_pr missing from point report")
	return 0, 0
}

// TestControlVariateAcceptance is the PR's headline acceptance test:
// on the adaptive saturation sweep, the control-variate estimator must
// reach the same CI half-width target in at least 3× fewer simulated
// replications than the plain estimator on the same seed stream, while
// the two estimates agree within their combined intervals. The run is
// deterministic (fixed seeds, serial ≡ parallel below), so a regression
// in the estimator, the controls, or the stopping rule fails this
// reproducibly rather than flakily.
func TestControlVariateAcceptance(t *testing.T) {
	plainC, err := Compile(cvSweepSpec(t, false))
	if err != nil {
		t.Fatal(err)
	}
	cvC, err := Compile(cvSweepSpec(t, true))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(plainC, Opts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cv, err := Run(cvC, Opts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	for i, p := range plain.Points {
		if !p.Converged {
			t.Fatalf("plain point %d failed to converge within the cap; loosen the target", i)
		}
		if !cv.Points[i].Converged {
			t.Fatalf("cv point %d failed to converge within the cap", i)
		}
	}
	t.Logf("simulated reps: plain %d, cv %d (%.1f×)",
		plain.SimulatedReps, cv.SimulatedReps, float64(plain.SimulatedReps)/float64(cv.SimulatedReps))
	if cv.SimulatedReps*3 > plain.SimulatedReps {
		t.Errorf("control variate simulated %d reps vs plain %d — less than the 3× acceptance bound",
			cv.SimulatedReps, plain.SimulatedReps)
	}

	for i := range plain.Points {
		pm, phw := collisionEstimate(t, plain.Points[i])
		cm, chw := collisionEstimate(t, cv.Points[i])
		if diff := math.Abs(pm - cm); diff > phw+chw {
			t.Errorf("point %d: plain %v±%v and cv %v±%v disagree beyond the combined interval",
				i, pm, phw, cm, chw)
		}
		if cv.Points[i].Reps > plain.Points[i].Reps {
			t.Errorf("point %d: cv used more reps (%d) than plain (%d)", i, cv.Points[i].Reps, plain.Points[i].Reps)
		}
		if s := cv.Points[i].Speedup; !(s >= 1) {
			t.Errorf("point %d: speedup %v, want ≥ 1 (the no-benefit gate declines worse fits)", i, s)
		}
		if plain.Points[i].Speedup != 0 {
			t.Errorf("point %d: plain campaign reports speedup %v, want 0/omitted", i, plain.Points[i].Speedup)
		}
	}
}

// TestCVCampaignSerialParallelIdentical pins CRN determinism at the
// campaign level: the whole CV report — estimates, betas, speedups,
// per-rep controls — is byte-identical whatever the worker count, and
// stable across reruns.
func TestCVCampaignSerialParallelIdentical(t *testing.T) {
	spec := cvSweepSpec(t, true)
	spec.Targets = []Target{{Metric: "collision_pr", CI: 0.005}}
	c, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(c, Opts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(c, Opts{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(c, Opts{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if runJSON(t, serial) != runJSON(t, parallel) {
		t.Error("serial and parallel CV campaigns diverge")
	}
	if runJSON(t, parallel) != runJSON(t, again) {
		t.Error("CV campaign not stable across reruns")
	}
}

// TestCVCampaignPointMatchesStandalone asserts every CV campaign
// point's embedded report is byte-identical to running the expanded
// spec through scenario.Replications at the same count — the campaign's
// incremental paired accumulation must not produce different bytes than
// the scenario layer's one-shot reduction.
func TestCVCampaignPointMatchesStandalone(t *testing.T) {
	spec := cvSweepSpec(t, true)
	spec.Targets = nil
	spec.MinReps, spec.MaxReps, spec.BatchReps = 0, 0, 0
	spec.Reps = 12
	c, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(c, Opts{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range rep.Points {
		sc, err := scenario.Compile(c.Points[i].Spec)
		if err != nil {
			t.Fatal(err)
		}
		standalone, err := scenario.Replications(sc, 12, 1)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, _ := json.Marshal(p.Report)
		wantJSON, _ := json.Marshal(standalone)
		if string(gotJSON) != string(wantJSON) {
			t.Errorf("point %d: campaign CV report differs from standalone run\ncampaign:   %s\nstandalone: %s",
				i, gotJSON, wantJSON)
		}
	}
}

// TestCVCacheRerunZeroWork extends the "nearly free rerun" property to
// CV campaigns: cached point reports carry the control vectors, so a
// rerun adopts them, rebuilds the paired accumulators, reaches the same
// stopping decisions and simulates nothing.
func TestCVCacheRerunZeroWork(t *testing.T) {
	spec := cvSweepSpec(t, true)
	spec.Targets = []Target{{Metric: "collision_pr", CI: 0.005}}
	c, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	cache := newMapCache()
	first, err := Run(c, Opts{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.SimulatedReps == 0 {
		t.Fatal("first run simulated nothing")
	}
	second, err := Run(c, Opts{Cache: cache, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if second.SimulatedReps != 0 {
		t.Errorf("rerun simulated %d replications, want 0 (all batches cached with controls)", second.SimulatedReps)
	}
	if runJSON(t, first) != runJSON(t, second) {
		t.Error("cached CV rerun differs from computed run")
	}

	// A cached report stripped of its control vectors (e.g. written by a
	// pre-CV binary under a colliding key — impossible via fingerprints,
	// but cheap to defend) must be rejected, not adopted into a broken
	// paired state.
	for k, v := range cache.m {
		clone := *v
		clone.Points = append([]scenario.PointReport(nil), v.Points...)
		clone.Points[0].Controls = nil
		cache.m[k] = &clone
	}
	third, err := Run(c, Opts{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if third.SimulatedReps != first.SimulatedReps {
		t.Errorf("run against control-less cache simulated %d reps, want %d (entries unusable)",
			third.SimulatedReps, first.SimulatedReps)
	}
	if runJSON(t, first) != runJSON(t, third) {
		t.Error("recomputed run differs after rejecting control-less cache entries")
	}
}

// TestCVGridRendersSpeedupColumn checks the consolidated table: CV
// campaigns grow a speedup column and print the reduced intervals;
// plain campaigns keep the historical header, so the goldens that
// predate the estimator cannot shift.
func TestCVGridRendersSpeedupColumn(t *testing.T) {
	spec := cvSweepSpec(t, true)
	spec.Targets = []Target{{Metric: "collision_pr", CI: 0.005}}
	c, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(c, Opts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "speedup") {
		t.Errorf("CV campaign table lacks the speedup column:\n%s", out)
	}

	plainC, err := Compile(cvSweepSpec(t, false))
	if err != nil {
		t.Fatal(err)
	}
	plainRep, err := Run(plainC, Opts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := plainRep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "speedup") {
		t.Errorf("plain campaign table grew a speedup column:\n%s", buf.String())
	}
}
