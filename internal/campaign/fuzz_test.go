package campaign

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// seedFromExamples feeds every shipped campaign file into the corpus,
// so the fuzzers start from the grammar the repository actually uses
// (multi-axis grids, ranges, vector values, adaptive targets).
func seedFromExamples(f *testing.F) {
	paths, err := filepath.Glob("../../examples/campaigns/*.json")
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no example campaigns found to seed the corpus")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Hand-picked hostile shapes beyond the examples.
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","base":{"name":"b","sim_time_us":1,"stations":[{"count":1}]},"axes":[{"path":"n","values":[0]}]}`))
	f.Add([]byte(`{"name":"x","base":{"name":"b","sim_time_us":1,"stations":[{"count":1}]},"axes":[{"path":"stations[9].cw","values":[[1]]}]}`))
	f.Add([]byte(`{"name":"x","base":{"name":"b","sim_time_us":1,"stations":[{"count":1}]},"axes":[{"path":"n","from":1,"to":3,"step":0.5}],"min_reps":2,"max_reps":2,"targets":[{"metric":"collision_pr","rel_ci":0.5}]}`))
}

// FuzzCampaignDecode asserts the decode→normalize→encode→decode round
// trip on arbitrary input: whenever a byte string parses and
// normalizes, the normalized form must re-encode to JSON that parses
// back to the very same normalized spec, and the fingerprint must be
// stable across that trip (the serving cache's correctness depends on
// it).
func FuzzCampaignDecode(f *testing.F) {
	seedFromExamples(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // not a campaign; rejection is the correct outcome
		}
		norm, err := s.Normalized()
		if err != nil {
			return // invalid campaign; rejection is the correct outcome
		}
		enc, err := norm.Marshal()
		if err != nil {
			t.Fatalf("normalized campaign does not marshal: %v", err)
		}
		back, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-encoded normalized campaign does not parse: %v\n%s", err, enc)
		}
		norm2, err := back.Normalized()
		if err != nil {
			t.Fatalf("re-decoded normalized campaign does not normalize: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(norm, norm2) {
			t.Fatalf("round trip not lossless:\nfirst:  %+v\nsecond: %+v", norm, norm2)
		}
		f1, err := Fingerprint(s)
		if err != nil {
			t.Fatalf("valid campaign does not fingerprint: %v", err)
		}
		f2, err := Fingerprint(norm)
		if err != nil {
			t.Fatal(err)
		}
		if f1 != f2 {
			t.Fatalf("fingerprint unstable across normalization: %s vs %s", f1, f2)
		}
	})
}

// FuzzCampaignExpand asserts the expansion invariants: Compile never
// panics; when it succeeds, the grid size is exactly the cross-product
// of the axis value counts, every point's spec is normalized (running
// it standalone is well defined), every axis substitution actually
// landed, and point keys are consistent with the expanded specs.
func FuzzCampaignExpand(f *testing.F) {
	seedFromExamples(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		c, err := Compile(s)
		if err != nil {
			return // invalid campaign or axis path; rejection is correct
		}
		norm := c.Spec
		want := 1
		for _, a := range norm.Axes {
			want *= len(a.Values)
		}
		if len(c.Points) != want {
			t.Fatalf("grid has %d points, cross-product says %d", len(c.Points), want)
		}
		if want > MaxPoints {
			t.Fatalf("grid of %d points exceeds MaxPoints = %d but validated", want, MaxPoints)
		}
		for i, p := range c.Points {
			if p.Index != i {
				t.Fatalf("point %d carries index %d", i, p.Index)
			}
			if len(p.Labels) != len(norm.Axes) {
				t.Fatalf("point %d has %d labels for %d axes", i, len(p.Labels), len(norm.Axes))
			}
			renorm, err := p.Spec.Normalized()
			if err != nil {
				t.Fatalf("point %d spec does not re-normalize: %v", i, err)
			}
			if !reflect.DeepEqual(p.Spec, renorm) {
				t.Fatalf("point %d spec is not in normal form", i)
			}
			if p.Spec.Seed != PointSeed(norm.Base.SeedPolicy, norm.Base.Seed, i) {
				t.Fatalf("point %d seed %d does not follow the point-seed derivation", i, p.Spec.Seed)
			}
		}
	})
}
