package campaign

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// compareSpec is a tiny two-axis campaign whose base every engine can
// express (saturated, single class).
func compareSpec() Spec {
	return Spec{
		Name: "cmp",
		Base: baseSpec(),
		Axes: []Axis{
			{Path: "n", Values: rawValsNoT(2, 3)},
		},
		Reps: 2,
	}
}

// rawValsNoT is rawVals without the testing.T plumbing.
func rawValsNoT(vs ...any) []json.RawMessage {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err)
		}
		out[i] = b
	}
	return out
}

// TestCompareRunShape: one comparison per grid point, in row-major
// order, each pairing the model against the simulation at the
// campaign's fixed rep count.
func TestCompareRunShape(t *testing.T) {
	c, err := Compile(compareSpec())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CompareRun(c, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reps != 2 || len(rep.Points) != 2 {
		t.Fatalf("compare shape: reps=%d points=%d", rep.Reps, len(rep.Points))
	}
	for i, pc := range rep.Points {
		if pc.Index != i {
			t.Errorf("point %d carries index %d", i, pc.Index)
		}
		if pc.Coord == "" {
			t.Errorf("point %d has no coordinate label", i)
		}
		if pc.Report == nil || len(pc.Report.Points) == 0 {
			t.Fatalf("point %d has no comparison", i)
		}
	}
	div := rep.Divergence()
	if len(div) == 0 {
		t.Fatal("no divergence rows")
	}
	seen := map[string]bool{}
	for _, d := range div {
		seen[d.Name] = true
		if d.Points != 2 {
			t.Errorf("%s aggregated %d comparisons, want 2", d.Name, d.Points)
		}
		if d.MaxAbs < d.MeanAbs {
			t.Errorf("%s: max abs %v < mean abs %v", d.Name, d.MaxAbs, d.MeanAbs)
		}
		if d.MaxRel < d.MeanRel {
			t.Errorf("%s: max rel %v < mean rel %v", d.Name, d.MaxRel, d.MeanRel)
		}
		if d.MaxAbs > 0 && d.WorstAbs == "" {
			t.Errorf("%s: nonzero max abs without a worst point", d.Name)
		}
	}
	for _, want := range []string{"collision_pr", "norm_throughput"} {
		if !seen[want] {
			t.Errorf("divergence table missing %s", want)
		}
	}
	if d := rep.MaxDivergence("norm_throughput"); d == nil {
		t.Error("MaxDivergence lost norm_throughput")
	}
	if d := rep.MaxDivergence("no-such-metric"); d != nil {
		t.Errorf("MaxDivergence invented %v", d)
	}

	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# compare campaign cmp", "worst point", "collision_pr", "## point 0", "## point 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

// TestCompareRunSerialParallelIdentical: comparisons fan across
// workers without perturbing a single byte.
func TestCompareRunSerialParallelIdentical(t *testing.T) {
	c, err := Compile(compareSpec())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := CompareRun(c, Opts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CompareRun(c, Opts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := serial.Write(&b1); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Write(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("compare campaign differs across worker counts")
	}
	j1, _ := json.Marshal(serial)
	j2, _ := json.Marshal(parallel)
	if !bytes.Equal(j1, j2) {
		t.Error("compare campaign JSON differs across worker counts")
	}
}

// TestCompareRunRejectsMacOnlyBase: a base the model cannot express
// fails with the offending point named.
func TestCompareRunRejectsMacOnlyBase(t *testing.T) {
	s := compareSpec()
	s.Base.BeaconPeriodMicros = 33330
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareRun(c, Opts{}); err == nil {
		t.Error("CompareRun accepted a beacon-bearing base")
	}
}

// loadCampaignCompare runs a shipped example campaign through compare
// mode with test-friendly reps.
func loadCampaignCompare(t *testing.T, path string) *CompareReport {
	t.Helper()
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CompareRun(c, Opts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// checkCampaignEnvelope asserts a compare campaign's divergence stays
// inside the repository model-accuracy envelope: throughput within 5%
// relative and collision probability within 0.04 absolute at every
// grid point.
func checkCampaignEnvelope(t *testing.T, rep *CompareReport) {
	t.Helper()
	thr := rep.MaxDivergence("norm_throughput")
	if thr == nil {
		t.Fatal("campaign compare lost norm_throughput")
	}
	if d := thr.Sane(); d.MaxRel > 0.05 {
		t.Errorf("throughput diverges %.2f%% at %s — outside the 5%% envelope", 100*d.MaxRel, d.WorstRel)
	}
	coll := rep.MaxDivergence("collision_pr")
	if coll == nil {
		t.Fatal("campaign compare lost collision_pr")
	}
	if d := coll.Sane(); d.MaxAbs > 0.04 {
		t.Errorf("collision probability diverges |Δ| %.4f at %s — outside the 0.04 envelope", d.MaxAbs, d.WorstAbs)
	}
}

// TestModelEnvelopeLoadCampaign is the accuracy-envelope acceptance
// suite over the shipped unsaturated-load grid: every Poisson-load ×
// station-count point must keep the analytic model inside the
// repository envelope against the event-driven MAC.
func TestModelEnvelopeLoadCampaign(t *testing.T) {
	rep := loadCampaignCompare(t, "../../examples/campaigns/model-envelope-load.json")
	if len(rep.Points) != 9 {
		t.Fatalf("%d grid points, want 9 (3 counts × 3 loads)", len(rep.Points))
	}
	checkCampaignEnvelope(t, rep)
}

// TestModelEnvelopePriorityCampaign is the acceptance suite over the
// shipped mixed-priority grid: saturated CA1 under a loaded CA3 must
// stay inside the envelope at every point.
func TestModelEnvelopePriorityCampaign(t *testing.T) {
	rep := loadCampaignCompare(t, "../../examples/campaigns/model-envelope-priority.json")
	if len(rep.Points) != 4 {
		t.Fatalf("%d grid points, want 4 (2 counts × 2 loads)", len(rep.Points))
	}
	checkCampaignEnvelope(t, rep)
}
