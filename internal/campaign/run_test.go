package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/scenario"
)

// runJSON marshals a report for byte-level comparison.
func runJSON(t *testing.T, r *Report) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestCampaignMatchesSweepN pins the legacy-equivalence property: a
// single-axis campaign over "n" produces, point for point, the very
// bytes of the sweep_n path — for both seed policies, serial and
// parallel.
func TestCampaignMatchesSweepN(t *testing.T) {
	for _, policy := range []string{scenario.SeedSplit, scenario.SeedIncrement} {
		base := baseSpec()
		base.SeedPolicy = policy
		base.Stations = []scenario.Group{{Count: 1}}
		camp := Spec{
			Name: "sweep-equiv",
			Base: base,
			Axes: []Axis{{Path: "n", Values: rawVals(t, 1, 2, 3)}},
			Reps: 4,
		}
		c, err := Compile(camp)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			rep, err := Run(c, Opts{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}

			sweep := base
			sweep.SweepN = []int{1, 2, 3}
			sc, err := scenario.Compile(sweep)
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := scenario.Replications(sc, 4, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Points) != len(legacy.Points) {
				t.Fatalf("policy %s: %d campaign points vs %d sweep points", policy, len(rep.Points), len(legacy.Points))
			}
			for i := range rep.Points {
				got, want := rep.Points[i].Report.Points[0], legacy.Points[i]
				if !reflect.DeepEqual(got, want) {
					t.Errorf("policy %s workers %d point %d: campaign and sweep_n diverge\ncampaign: %+v\nsweep:    %+v",
						policy, workers, i, got, want)
				}
			}
		}
	}
}

// TestCampaignPointMatchesStandalone pins the acceptance property: on a
// ≥2-axis grid, every point's embedded report is byte-identical to
// running the expanded spec individually through the scenario layer —
// for both the sim and the model engine.
func TestCampaignPointMatchesStandalone(t *testing.T) {
	for _, engine := range []string{scenario.EngineSim, scenario.EngineModel} {
		base := baseSpec()
		base.Engine = engine
		base.Stations = []scenario.Group{{Count: 1}}
		camp := Spec{
			Name: "standalone-equiv-" + engine,
			Base: base,
			Axes: []Axis{
				{Path: "n", Values: rawVals(t, 2, 4)},
				{Path: "stations[0].error_prob", Values: rawVals(t, 0, 0.3)},
			},
			Reps: 3,
		}
		c, err := Compile(camp)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(c, Opts{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Points) != 4 {
			t.Fatalf("engine %s: %d points, want 4", engine, len(rep.Points))
		}
		for i, p := range rep.Points {
			sc, err := scenario.Compile(c.Points[i].Spec)
			if err != nil {
				t.Fatal(err)
			}
			standalone, err := scenario.Replications(sc, 3, 1)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, _ := json.Marshal(p.Report)
			wantJSON, _ := json.Marshal(standalone)
			if string(gotJSON) != string(wantJSON) {
				t.Errorf("engine %s point %d (%s): campaign differs from standalone run\ncampaign:   %s\nstandalone: %s",
					engine, i, c.Points[i].describeCoord(), gotJSON, wantJSON)
			}
			key, err := scenario.Fingerprint(c.Points[i].Spec, p.Reps)
			if err != nil {
				t.Fatal(err)
			}
			if p.Key != key {
				t.Errorf("engine %s point %d: key %s, want %s", engine, i, p.Key, key)
			}
		}
		if engine == scenario.EngineModel {
			for i, p := range rep.Points {
				if p.Reps != 1 {
					t.Errorf("model point %d: reps = %d, want 1 (deterministic collapse)", i, p.Reps)
				}
			}
		}
	}
}

// TestRunSerialParallelIdentical asserts the whole campaign report —
// not just the points — is byte-identical across worker counts.
func TestRunSerialParallelIdentical(t *testing.T) {
	from, to, step := 0.0, 0.4, 0.2
	camp := Spec{
		Name: "par-equiv",
		Base: baseSpec(),
		Axes: []Axis{
			{Path: "n", Values: rawVals(t, 1, 2)},
			{Path: "stations[0].error_prob", From: &from, To: &to, Step: &step},
		},
		Targets:   []Target{{Metric: "norm_throughput", CI: 0.05}},
		MinReps:   3,
		MaxReps:   9,
		BatchReps: 3,
	}
	camp.Base.Stations = []scenario.Group{{Count: 1}}
	c, err := Compile(camp)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(c, Opts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(c, Opts{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if runJSON(t, serial) != runJSON(t, parallel) {
		t.Error("serial and parallel adaptive campaigns diverge")
	}
}

// TestAdaptiveStopping covers both adaptive outcomes: a loose target
// converges at min_reps; an impossible target runs to max_reps and
// reports non-convergence. Stopping is deterministic for a fixed seed
// policy: two runs agree exactly.
func TestAdaptiveStopping(t *testing.T) {
	mk := func(ci float64) Spec {
		s := Spec{
			Name:      "adaptive",
			Base:      baseSpec(),
			Axes:      []Axis{{Path: "n", Values: rawVals(t, 2, 3)}},
			Targets:   []Target{{Metric: "norm_throughput", CI: ci}},
			MinReps:   3,
			MaxReps:   7,
			BatchReps: 2,
		}
		s.Base.Stations = []scenario.Group{{Count: 1}}
		return s
	}

	loose, err := Compile(mk(10)) // any sample converges instantly
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(loose, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range rep.Points {
		if !p.Converged || p.Reps != 3 {
			t.Errorf("loose target point %d: reps=%d converged=%v, want 3/true", i, p.Reps, p.Converged)
		}
		if got := p.Report.Points[0].Metrics[1].Summary.CI95; got > 10 {
			t.Errorf("point %d: CI %v above target", i, got)
		}
	}

	tight, err := Compile(mk(1e-12)) // unreachable half-width
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(tight, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range rep2.Points {
		if p.Converged || p.Reps != 7 {
			t.Errorf("tight target point %d: reps=%d converged=%v, want 7/false (max cap)", i, p.Reps, p.Converged)
		}
		// Batch continuation: the 7 seeds are the same stream a fixed
		// -reps 7 run would draw.
		for r, seed := range p.Report.Points[0].Seeds {
			want := scenario.RepSeed(p.Report.Spec.SeedPolicy, p.Report.Spec.Seed, 0, r)
			if seed != want {
				t.Fatalf("point %d rep %d: seed %d, want %d (batches must continue the stream)", i, r, seed, want)
			}
		}
	}
	rep3, err := Run(tight, Opts{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if runJSON(t, rep2) != runJSON(t, rep3) {
		t.Error("adaptive stopping not deterministic across runs/workers")
	}
}

// mapCache is an in-memory campaign.Cache for tests.
type mapCache struct {
	m    map[string]*scenario.Report
	gets int
	hits int
	puts int
}

func newMapCache() *mapCache { return &mapCache{m: map[string]*scenario.Report{}} }

func (c *mapCache) Get(key string) (*scenario.Report, bool) {
	c.gets++
	r, ok := c.m[key]
	if ok {
		c.hits++
	}
	return r, ok
}

func (c *mapCache) Put(key string, rep *scenario.Report) {
	c.puts++
	c.m[key] = rep
}

// TestCacheRerunZeroWork pins the "nearly free rerun" property: a
// second run of the same campaign against the cache the first one
// filled simulates nothing and returns identical bytes.
func TestCacheRerunZeroWork(t *testing.T) {
	camp := Spec{
		Name: "cached",
		Base: baseSpec(),
		Axes: []Axis{
			{Path: "n", Values: rawVals(t, 1, 2)},
			{Path: "stations[0].error_prob", Values: rawVals(t, 0, 0.3)},
		},
		Targets:   []Target{{Metric: "norm_throughput", CI: 0.02}},
		MinReps:   2,
		MaxReps:   6,
		BatchReps: 2,
	}
	camp.Base.Stations = []scenario.Group{{Count: 1}}
	c, err := Compile(camp)
	if err != nil {
		t.Fatal(err)
	}
	cache := newMapCache()
	first, err := Run(c, Opts{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.SimulatedReps == 0 {
		t.Fatal("first run simulated nothing")
	}
	putsAfterFirst := cache.puts
	second, err := Run(c, Opts{Cache: cache, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if second.SimulatedReps != 0 {
		t.Errorf("rerun simulated %d replications, want 0 (all batches cached)", second.SimulatedReps)
	}
	if cache.puts != putsAfterFirst {
		t.Errorf("rerun re-published %d cache entries; adopted batches must not be re-Put", cache.puts-putsAfterFirst)
	}
	if runJSON(t, first) != runJSON(t, second) {
		t.Error("cached rerun differs from computed run")
	}

	// A fresh cache holding only some points reuses those and computes
	// the rest.
	partial := newMapCache()
	for k, v := range cache.m {
		partial.m[k] = v
		break
	}
	third, err := Run(c, Opts{Cache: partial})
	if err != nil {
		t.Fatal(err)
	}
	if third.SimulatedReps == 0 || third.SimulatedReps >= first.SimulatedReps {
		t.Errorf("partial-cache run simulated %d, want strictly between 0 and %d", third.SimulatedReps, first.SimulatedReps)
	}
	if runJSON(t, first) != runJSON(t, third) {
		t.Error("partial-cache run differs from computed run")
	}
}

// TestRunCancelledWithWarmCache pins the cancellation edge: a run
// whose every batch would be adopted from cache must still honor a
// cancelled context instead of completing as done.
func TestRunCancelledWithWarmCache(t *testing.T) {
	camp := Spec{
		Name: "cancel-warm",
		Base: baseSpec(),
		Axes: []Axis{{Path: "n", Values: rawVals(t, 1, 2)}},
		Reps: 2,
	}
	camp.Base.Stations = []scenario.Group{{Count: 1}}
	c, err := Compile(camp)
	if err != nil {
		t.Fatal(err)
	}
	cache := newMapCache()
	if _, err := Run(c, Opts{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(c, Opts{Cache: cache, Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled warm-cache run returned %v, want context.Canceled", err)
	}
}

// TestProgressAndPointDone checks the callback plumbing the serving
// layer relies on: done is monotonic, reaches the total, and every
// point reports exactly once.
func TestProgressAndPointDone(t *testing.T) {
	camp := Spec{
		Name: "progress",
		Base: baseSpec(),
		Axes: []Axis{{Path: "n", Values: rawVals(t, 1, 2)}},
		Reps: 3,
	}
	camp.Base.Stations = []scenario.Group{{Count: 1}}
	c, err := Compile(camp)
	if err != nil {
		t.Fatal(err)
	}
	lastDone, points := 0, 0
	rep, err := Run(c, Opts{
		Progress: func(done, total int) {
			if done < lastDone {
				t.Errorf("progress went backwards: %d after %d", done, lastDone)
			}
			lastDone = done
			if total != 6 {
				t.Errorf("total = %d, want 6", total)
			}
		},
		PointDone: func(done, total int) {
			points++
			if total != 2 {
				t.Errorf("point total = %d, want 2", total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != 6 || points != 2 {
		t.Errorf("final progress %d (want 6), points %d (want 2)", lastDone, points)
	}
	if rep.SimulatedReps != 6 {
		t.Errorf("SimulatedReps = %d, want 6", rep.SimulatedReps)
	}
}
