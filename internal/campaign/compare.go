package campaign

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/par"
	"repro/internal/scenario"
)

// PointComparison is one grid point run through both the analytic
// model and a simulator.
type PointComparison struct {
	// Index is the point's row-major grid position.
	Index int `json:"index"`
	// Labels give the point's coordinate on every axis.
	Labels []AxisValue `json:"labels"`
	// Coord is the coordinate rendered for humans
	// ("stations[0].count=5, …").
	Coord string `json:"coord"`
	// Report is the point's model-vs-simulation comparison.
	Report *scenario.CompareReport `json:"report"`
}

// MetricDivergence reduces one metric's model-vs-simulation error over
// every grid point (and every sweep point within them) of a compare
// campaign: the summary row of the accuracy-envelope table.
type MetricDivergence struct {
	// Name is the canonical metric name.
	Name string `json:"name"`
	// MeanRel and MaxRel aggregate the per-point relative errors
	// |model − sim| / |sim| (points with a zero simulated mean are
	// excluded from the relative statistics).
	MeanRel float64 `json:"mean_rel,omitempty"`
	MaxRel  float64 `json:"max_rel,omitempty"`
	// MeanAbs and MaxAbs aggregate the absolute errors |model − sim|.
	MeanAbs float64 `json:"mean_abs"`
	MaxAbs  float64 `json:"max_abs"`
	// Points counts the comparisons aggregated.
	Points int `json:"points"`
	// WorstRel and WorstAbs name the grid point with the largest
	// relative and absolute error ("n=5, …" plus "N=…" inside a sweep).
	WorstRel string `json:"worst_rel,omitempty"`
	WorstAbs string `json:"worst_abs,omitempty"`
}

// CompareReport is a completed compare campaign: every grid point's
// paired model/simulation metrics plus the campaign-wide divergence
// reduction.
type CompareReport struct {
	// Spec is the normalized campaign spec.
	Spec Spec `json:"spec"`
	// Reps is the simulated replication count per point (the model side
	// is deterministic and evaluated once).
	Reps int `json:"reps"`
	// Points holds one comparison per grid point, in row-major order.
	Points []PointComparison `json:"points"`
}

// compareReps is the simulation-side replication count a campaign's
// compare mode uses: the fixed count, or the adaptive floor (the
// comparison pins the model against the simulated mean; it does not
// adapt).
func compareReps(s Spec) int {
	if s.Adaptive() {
		return s.MinReps
	}
	return s.Reps
}

// CompareRun evaluates every grid point of a compiled campaign through
// both the analytic model and a simulator (scenario.Compare picks the
// slot-synchronous engine where expressible, the event-driven MAC for
// the widened regimes) and pairs their metrics point by point. The
// simulation side runs compareReps(spec) replications; points fan
// across opts.Workers, and the report is bit-identical whatever the
// worker count. Only Workers and Context are honoured — comparisons
// are not cached and report no replication progress.
func CompareRun(c *Compiled, opts Opts) (*CompareReport, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	reps := compareReps(c.Spec)
	out := &CompareReport{Spec: c.Spec, Reps: reps}
	comparisons, err := par.MapCtx(ctx, opts.Workers, c.Points, func(_ int, p Point) (PointComparison, error) {
		spec := p.Spec
		// Compare derives both engine lowerings itself from an
		// engine-agnostic spec; a campaign whose base pins an engine
		// still compares the same physics.
		spec.Engine = ""
		spec.VarianceReduction = nil
		rep, err := scenario.Compare(spec, reps, 1)
		if err != nil {
			return PointComparison{}, fmt.Errorf("campaign %s: point %s: %w", c.Spec.Name, p.describeCoord(), err)
		}
		return PointComparison{Index: p.Index, Labels: p.Labels, Coord: p.describeCoord(), Report: rep}, nil
	})
	if err != nil {
		return nil, err
	}
	out.Points = comparisons
	return out, nil
}

// Divergence reduces the report to one row per metric, in the order
// the metrics first appear. Aggregation spans every grid point and
// every sweep point inside each comparison.
func (r *CompareReport) Divergence() []MetricDivergence {
	var order []string
	rows := map[string]*MetricDivergence{}
	relN := map[string]int{}
	for _, pc := range r.Points {
		for _, sp := range pc.Report.Points {
			for _, m := range sp.Metrics {
				d := rows[m.Name]
				if d == nil {
					d = &MetricDivergence{Name: m.Name}
					rows[m.Name] = d
					order = append(order, m.Name)
				}
				coord := pc.Coord
				if len(pc.Report.Spec.SweepN) > 0 {
					coord = fmt.Sprintf("%s, N=%d", coord, sp.N)
				}
				d.Points++
				d.MeanAbs += m.AbsDiff
				if m.AbsDiff > d.MaxAbs || d.WorstAbs == "" {
					d.MaxAbs, d.WorstAbs = m.AbsDiff, coord
				}
				if m.Sim.Mean != 0 {
					relN[m.Name]++
					d.MeanRel += m.RelDiff
					if m.RelDiff > d.MaxRel || d.WorstRel == "" {
						d.MaxRel, d.WorstRel = m.RelDiff, coord
					}
				}
			}
		}
	}
	out := make([]MetricDivergence, 0, len(order))
	for _, name := range order {
		d := rows[name]
		if d.Points > 0 {
			d.MeanAbs /= float64(d.Points)
		}
		if n := relN[name]; n > 0 {
			d.MeanRel /= float64(n)
		}
		out = append(out, *d)
	}
	return out
}

// MaxDivergence returns the named metric's campaign-wide divergence
// row, or nil when no comparison carried it — what the envelope
// acceptance suite asserts against.
func (r *CompareReport) MaxDivergence(metric string) *MetricDivergence {
	for _, d := range r.Divergence() {
		if d.Name == metric {
			return &d
		}
	}
	return nil
}

// Write renders the compare campaign as aligned plain text: a header,
// the per-metric divergence table over the whole grid, then each grid
// point's model/sim/delta lines. Pure function of the report.
func (r *CompareReport) Write(w io.Writer) error {
	s := r.Spec
	if _, err := fmt.Fprintf(w, "# compare campaign %s: analytic model vs simulation, %d points, %d sim reps (base %s, seed %d/%s)\n",
		s.Name, len(r.Points), r.Reps, s.Base.Name, s.Base.Seed, s.Base.SeedPolicy); err != nil {
		return err
	}
	div := r.Divergence()
	width := len("metric")
	for _, d := range div {
		if len(d.Name) > width {
			width = len(d.Name)
		}
	}
	if _, err := fmt.Fprintf(w, "\n%-*s  %9s  %9s  %12s  %12s  worst point\n",
		width, "metric", "mean rel", "max rel", "mean abs", "max abs"); err != nil {
		return err
	}
	for _, d := range div {
		worst := d.WorstRel
		if worst == "" {
			worst = d.WorstAbs
		}
		if _, err := fmt.Fprintf(w, "%-*s  %8.2f%%  %8.2f%%  %12.6f  %12.6f  %s\n",
			width, d.Name, 100*d.MeanRel, 100*d.MaxRel, d.MeanAbs, d.MaxAbs, worst); err != nil {
			return err
		}
	}
	for _, pc := range r.Points {
		if _, err := fmt.Fprintf(w, "\n## point %d: %s\n", pc.Index, pc.Coord); err != nil {
			return err
		}
		if err := writePointMetrics(w, pc.Report); err != nil {
			return err
		}
	}
	return nil
}

// writePointMetrics renders one comparison's metric lines (the body of
// scenario.CompareReport.Write, without its per-scenario header).
func writePointMetrics(w io.Writer, rep *scenario.CompareReport) error {
	width := 0
	for _, p := range rep.Points {
		for _, m := range p.Metrics {
			if len(m.Name) > width {
				width = len(m.Name)
			}
		}
	}
	for _, p := range rep.Points {
		if len(rep.Spec.SweepN) > 0 {
			if _, err := fmt.Fprintf(w, "# N = %d\n", p.N); err != nil {
				return err
			}
		}
		for _, m := range p.Metrics {
			pad := strings.Repeat(" ", width-len(m.Name))
			if _, err := fmt.Fprintf(w, "%s%s  model %14.6f   sim %14.6f ± %.6f   |Δ| %.6f (%.2f%%)\n",
				m.Name, pad, m.Model, m.Sim.Mean, m.Sim.CI95, m.AbsDiff, 100*m.RelDiff); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sane normalizes NaNs in a divergence row to +Inf: a NaN would slip
// past any ≤ threshold, so the envelope acceptance suite asserts on
// the sanitized row and fails loudly instead.
func (d MetricDivergence) Sane() MetricDivergence {
	fix := func(v float64) float64 {
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	d.MeanRel, d.MaxRel = fix(d.MeanRel), fix(d.MaxRel)
	d.MeanAbs, d.MaxAbs = fix(d.MeanAbs), fix(d.MaxAbs)
	return d
}
