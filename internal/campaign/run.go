package campaign

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/par"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Cache lets a runner consult a content-addressed result store before
// simulating a grid point and publish what it computes. Keys are
// scenario.Fingerprint(point spec, reps) — the same keys the serving
// layer uses for individual submissions, which is what makes campaign
// points, direct jobs and reruns dedupe onto one another. A nil Cache
// disables lookups (the plain CLI path).
type Cache interface {
	// Get returns the cached replication report for key, if known.
	Get(key string) (*scenario.Report, bool)
	// Put stores a computed replication report under key.
	Put(key string, rep *scenario.Report)
}

// Opts tunes a campaign run. The zero value runs serially, uncached,
// without progress callbacks.
type Opts struct {
	// Workers is the par pool width replication batches fan across;
	// ≤ 1 runs serially. Results are bit-identical either way.
	Workers int
	// Context, when non-nil, cancels the run cooperatively between
	// replications.
	Context context.Context
	// Cache, when non-nil, is consulted per point and replication count
	// before simulating, and filled with every computed batch.
	Cache Cache
	// Progress, when non-nil, is called after every completed or
	// cache-adopted replication with the totals scheduled so far.
	// Calls are serialized; done is monotonic, total may grow as
	// adaptive batches are scheduled.
	Progress func(done, total int)
	// PointDone, when non-nil, is called each time a grid point
	// reaches its final replication count.
	PointDone func(done, total int)
}

// PointResult is one grid point's outcome.
type PointResult struct {
	// Index is the point's row-major grid position.
	Index int `json:"index"`
	// Labels give the point's coordinate on every axis.
	Labels []AxisValue `json:"labels"`
	// Key is the point's content address,
	// scenario.Fingerprint(spec, reps).
	Key string `json:"key"`
	// Reps is the final replication count: the fixed count, or where
	// adaptive replication stopped.
	Reps int `json:"reps"`
	// Converged reports whether every target met its half-width goal
	// (always true for fixed-rep campaigns and model-engine points).
	Converged bool `json:"converged"`
	// Report is the point's aggregated replication report —
	// byte-identical to running Spec standalone with -reps Reps.
	Report *scenario.Report `json:"report"`
	// Speedup is the control-variate variance-reduction factor at the
	// final count: the minimum VarReduction across the targeted metrics
	// (across all control-carrying metrics for fixed-rep campaigns).
	// Zero — and omitted from JSON — for plain campaigns, so their
	// reports marshal to the same bytes as before the estimator existed.
	Speedup float64 `json:"speedup,omitempty"`
}

// Report is a completed campaign.
type Report struct {
	// Spec is the normalized campaign spec.
	Spec Spec `json:"spec"`
	// Points holds one result per grid point, in row-major order.
	Points []PointResult `json:"points"`
	// SimulatedReps counts the replications actually simulated (cache
	// adoptions excluded). Not part of the canonical result — a rerun
	// answered from cache reports 0 here with identical JSON.
	SimulatedReps int `json:"-"`
}

// pointState tracks one grid point through the replication rounds.
type pointState struct {
	point    Point
	schedule []int // cumulative replication counts, ending at the cap
	step     int   // index into schedule of the count being built
	seeds    []uint64
	perRep   [][]scenario.Metric
	controls [][]float64         // per-rep control vectors (CV campaigns only)
	accs     []stats.Accumulator // one per metric, in canonical order
	// paired mirrors accs for control-variate campaigns: one paired
	// accumulator per metric with control channels, nil elsewhere. The
	// adaptive stopping rule reads its reduced interval.
	paired    []*stats.PairedAccumulator
	names     []string // metric names, from the first replication
	adoptedTo int      // reps covered by cache adoption (no re-Put needed)
	finished  bool
	result    PointResult
}

// cv reports whether this point runs under control-variate estimation.
func (ps *pointState) cv() bool { return ps.point.Spec.CVEnabled() }

// repSchedule builds a point's cumulative replication schedule.
func repSchedule(s Spec, engine string) []int {
	if engine == scenario.EngineModel {
		// Analytic points are deterministic; every replication returns
		// identical metrics, so the study collapses to one evaluation —
		// mirroring scenario.Replications.
		return []int{1}
	}
	if !s.Adaptive() {
		return []int{s.Reps}
	}
	sched := []int{s.MinReps}
	for r := s.MinReps; r < s.MaxReps; {
		r += s.BatchReps
		if r > s.MaxReps {
			r = s.MaxReps
		}
		sched = append(sched, r)
	}
	return sched
}

// converged evaluates the campaign's targets against a point's
// accumulated metrics. A single-sample accumulator never converges
// (its CI is vacuously zero), except for the deterministic model
// engine, whose schedule is pinned to one evaluation anyway.
func (ps *pointState) converged(s Spec) bool {
	if !s.Adaptive() {
		return true
	}
	if ps.point.Spec.Engine == scenario.EngineModel {
		return true
	}
	for _, tg := range s.Targets {
		mi := -1
		for i, n := range ps.names {
			if n == tg.Metric {
				mi = i
				break
			}
		}
		if mi < 0 {
			return false // unreachable: Compile checked target names
		}
		acc := ps.accs[mi]
		if acc.N() < 2 {
			return false
		}
		hw, mean := acc.CI95(), acc.Mean()
		if ps.paired != nil && ps.paired[mi] != nil {
			// Adaptive stopping consumes the reduced interval: a point
			// whose CV-adjusted half-width already meets the goal stops
			// there, which is where the simulated-rep savings come from.
			// A declined fit (pilot sample, weak correlation) mirrors the
			// raw interval, so gated points stop exactly like plain ones.
			est := ps.paired[mi].Estimate(ps.point.Spec.CVOpts())
			hw, mean = est.CI95, est.Mean
		}
		switch {
		case tg.CI > 0:
			if hw > tg.CI {
				return false
			}
		default:
			if hw > tg.RelCI*math.Abs(mean) {
				return false
			}
		}
	}
	return true
}

// Run executes a compiled campaign: every grid point runs its
// replication schedule, points converge (or cap out) independently, and
// each round's fresh replications fan across the par pool. The report
// is bit-identical whatever the worker count, and each point's embedded
// scenario.Report is bit-identical to scenario.Replications on the
// point's expanded spec at the same replication count.
func Run(c *Compiled, opts Opts) (*Report, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	states := make([]*pointState, len(c.Points))
	for i, p := range c.Points {
		states[i] = &pointState{point: p, schedule: repSchedule(c.Spec, p.Spec.Engine)}
	}

	out := &Report{Spec: c.Spec}
	var progressMu sync.Mutex
	scheduled, done := 0, 0
	progress := func(d int) {
		// Deferred unlock: a Progress callback that panics (fault
		// injection, a broken observer) must not leave the mutex held —
		// par recovers the panic, and the surviving workers still pass
		// through here.
		progressMu.Lock()
		defer progressMu.Unlock()
		done += d
		if opts.Progress != nil {
			opts.Progress(done, scheduled)
		}
	}
	pointsDone := 0
	finish := func(ps *pointState, reps int, conv bool) error {
		key, err := scenario.Fingerprint(ps.point.Spec, reps)
		if err != nil {
			return err // unreachable: the spec compiled already
		}
		ps.finished = true
		rep := ps.buildReport(reps)
		ps.result = PointResult{
			Index:     ps.point.Index,
			Labels:    ps.point.Labels,
			Key:       key,
			Reps:      reps,
			Converged: conv,
			Report:    rep,
		}
		if ps.cv() {
			ps.result.Speedup = reportSpeedup(rep, c.Spec.Targets)
		}
		pointsDone++
		if opts.PointDone != nil {
			opts.PointDone(pointsDone, len(c.Points))
		}
		return nil
	}

	for round := 0; ; round++ {
		// Rounds that adopt everything from cache never enter MapCtx,
		// so cancellation must be observed here too — a DELETEd
		// campaign may not complete as done off cached batches.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		type job struct {
			ps   *pointState
			rep  int
			seed uint64
		}
		var jobs []job
		for _, ps := range states {
			if ps.finished {
				continue
			}
			target := ps.schedule[ps.step]
			need := target - len(ps.perRep)
			if need <= 0 {
				continue
			}
			// A cached identical study — an earlier campaign run, or a
			// direct submission of the expanded spec at this count —
			// supplies all reps up to target without simulating.
			if opts.Cache != nil {
				key, err := scenario.Fingerprint(ps.point.Spec, target)
				if err != nil {
					return nil, err
				}
				if rep, ok := opts.Cache.Get(key); ok && cacheUsable(rep, target, ps.cv()) {
					fresh := rep.Points[0].PerRep[len(ps.perRep):target]
					var ctrls [][]float64
					if ps.cv() {
						ctrls = rep.Points[0].Controls[:target]
					}
					ps.adopt(rep.Points[0].Seeds[:target], rep.Points[0].PerRep[:target], ctrls)
					ps.adoptedTo = target
					scheduled += len(fresh)
					progress(len(fresh))
					continue
				}
			}
			for r := len(ps.perRep); r < target; r++ {
				jobs = append(jobs, job{ps, r, scenario.RepSeed(ps.point.Spec.SeedPolicy, ps.point.Spec.Seed, 0, r)})
			}
		}
		scheduled += len(jobs)
		if len(jobs) > 0 {
			type repOut struct {
				metrics  []scenario.Metric
				controls []float64
			}
			results, err := par.MapCtx(ctx, opts.Workers, jobs, func(_ int, j job) (repOut, error) {
				var out repOut
				var err error
				if j.ps.cv() {
					out.metrics, out.controls, err = scenario.RunOnceCV(j.ps.point.Compiled.Points[0], j.seed)
				} else {
					out.metrics, err = scenario.RunOnce(j.ps.point.Compiled.Points[0], j.seed)
				}
				if err == nil {
					progress(1)
				}
				return out, err
			})
			if err != nil {
				return nil, err
			}
			out.SimulatedReps += len(jobs)
			for ji, j := range jobs {
				j.ps.addRep(j.seed, results[ji].metrics, results[ji].controls)
			}
		}

		// Evaluate every point that reached its current scheduled count.
		active := false
		for _, ps := range states {
			if ps.finished {
				continue
			}
			target := ps.schedule[ps.step]
			if len(ps.perRep) < target {
				return nil, fmt.Errorf("campaign %s: point %d short of schedule (%d < %d)", c.Spec.Name, ps.point.Index, len(ps.perRep), target)
			}
			// Publish the cumulative study at this count — it is exactly
			// what a direct -reps run would compute, and it is what makes
			// a rerun of this campaign find every batch in cache. A batch
			// fully adopted from cache is already there under this very
			// key; re-encoding it would be pure waste.
			if opts.Cache != nil && ps.adoptedTo < target {
				key, err := scenario.Fingerprint(ps.point.Spec, target)
				if err != nil {
					return nil, err
				}
				opts.Cache.Put(key, ps.buildReport(target))
			}
			conv := ps.converged(c.Spec)
			if conv || ps.step == len(ps.schedule)-1 {
				if err := finish(ps, target, conv); err != nil {
					return nil, err
				}
				continue
			}
			ps.step++
			active = true
		}
		if !active {
			break
		}
	}

	for _, ps := range states {
		out.Points = append(out.Points, ps.result)
	}
	return out, nil
}

// cacheUsable sanity-checks a cached report before adoption: one point,
// the right replication count, per-rep metrics present — and, for
// control-variate points, the control vectors, without which adoption
// could not continue the paired accumulators into later batches.
func cacheUsable(rep *scenario.Report, reps int, cv bool) bool {
	if rep == nil || rep.Reps != reps || len(rep.Points) != 1 ||
		len(rep.Points[0].PerRep) != reps || len(rep.Points[0].Seeds) != reps {
		return false
	}
	return !cv || len(rep.Points[0].Controls) == reps
}

// addRep folds one freshly simulated replication into the state.
func (ps *pointState) addRep(seed uint64, metrics []scenario.Metric, controls []float64) {
	ps.seeds = append(ps.seeds, seed)
	ps.perRep = append(ps.perRep, metrics)
	if ps.cv() {
		ps.controls = append(ps.controls, controls)
	}
	ps.fold(metrics, controls)
}

// adopt replaces the state's sample with a cached one. The overlap is
// bit-identical by construction (same seeds, deterministic engines), so
// accumulators are rebuilt only for the new tail.
func (ps *pointState) adopt(seeds []uint64, perRep [][]scenario.Metric, controls [][]float64) {
	from := len(ps.perRep)
	ps.seeds = append([]uint64(nil), seeds...)
	ps.perRep = append([][]scenario.Metric(nil), perRep...)
	if ps.cv() {
		ps.controls = append([][]float64(nil), controls...)
	}
	for i, m := range perRep[from:] {
		var c []float64
		if ps.cv() {
			c = controls[from+i]
		}
		ps.fold(m, c)
	}
}

// fold updates the per-metric accumulators with one replication.
func (ps *pointState) fold(metrics []scenario.Metric, controls []float64) {
	if ps.names == nil {
		ps.names = make([]string, len(metrics))
		ps.accs = make([]stats.Accumulator, len(metrics))
		for i, m := range metrics {
			ps.names[i] = m.Name
		}
		if ps.cv() {
			ps.paired = make([]*stats.PairedAccumulator, len(metrics))
			for i, m := range metrics {
				if cols := scenario.CVControlColumns(m.Name); len(cols) > 0 {
					ps.paired[i] = stats.NewPaired(len(cols))
				}
			}
		}
	}
	for i, m := range metrics {
		if i < len(ps.accs) {
			ps.accs[i].Add(m.Value)
		}
		if i < len(ps.paired) && ps.paired[i] != nil && controls != nil {
			cols := scenario.CVControlColumns(m.Name)
			row := make([]float64, len(cols))
			for ci, col := range cols {
				row[ci] = controls[col]
			}
			ps.paired[i].Add(m.Value, row)
		}
	}
}

// buildReport renders the first reps replications as the
// scenario.Report Replications would produce for the same spec and
// count — same seeds, same per-rep metrics, same Summarize reduction —
// so the bytes downstream (cache entries, served results) coincide.
func (ps *pointState) buildReport(reps int) *scenario.Report {
	seeds := append([]uint64(nil), ps.seeds[:reps]...)
	perRep := append([][]scenario.Metric(nil), ps.perRep[:reps]...)
	var controls [][]float64
	if ps.cv() {
		controls = append([][]float64(nil), ps.controls[:reps]...)
	}
	return &scenario.Report{
		Spec:   ps.point.Spec,
		Reps:   reps,
		Points: []scenario.PointReport{scenario.SummarizePoint(ps.point.Compiled.Points[0].N, seeds, perRep, controls, ps.point.Spec.VarianceReduction)},
	}
}

// reportSpeedup reduces a point's CV estimates to the single speedup
// figure the grid table shows: the minimum variance-reduction factor
// across the targeted metrics (across every control-carrying metric for
// fixed-rep campaigns) — i.e. the factor the slowest-improving targeted
// estimate gained. A declined fit counts as ×1; zero means no metric
// carried an estimate at all.
func reportSpeedup(rep *scenario.Report, targets []Target) float64 {
	targeted := map[string]bool{}
	for _, tg := range targets {
		targeted[tg.Metric] = true
	}
	speedup := 0.0
	for _, m := range rep.Points[0].Metrics {
		if len(targets) > 0 && !targeted[m.Name] {
			continue
		}
		if m.CV == nil {
			continue
		}
		vr := 1.0
		if m.CV.Applied {
			vr = m.CV.VarReduction
		}
		if speedup == 0 || vr < speedup {
			speedup = vr
		}
	}
	return speedup
}
