package campaign

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// baseSpec is a fast sim-engine scenario used throughout the tests.
func baseSpec() scenario.Spec {
	return scenario.Spec{
		Name:          "camp-base",
		SimTimeMicros: 1e6,
		Seed:          7,
		Stations:      []scenario.Group{{Count: 2}},
	}
}

func rawVals(t *testing.T, vs ...any) []json.RawMessage {
	t.Helper()
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = data
	}
	return out
}

func TestValidateAndNormalize(t *testing.T) {
	s := Spec{
		Name: "grid",
		Base: baseSpec(),
		Axes: []Axis{
			{Path: "n", Values: rawVals(t, 1, 2)},
			{Path: "stations[0].error_prob", Values: rawVals(t, 0, 0.2)},
		},
	}
	norm, err := s.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Reps != defaultReps {
		t.Errorf("fixed reps not defaulted: %d", norm.Reps)
	}
	if norm.Base.Engine != scenario.EngineSim {
		t.Errorf("base engine not resolved: %q", norm.Base.Engine)
	}
	again, err := norm.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(norm, again) {
		t.Errorf("Normalized not idempotent:\nonce:  %+v\ntwice: %+v", norm, again)
	}

	f1, err := Fingerprint(s)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fingerprint(norm)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Errorf("fingerprint unstable across normalization: %s vs %s", f1, f2)
	}
}

func TestValidateErrors(t *testing.T) {
	ax := func(a ...Axis) []Axis { return a }
	nAxis := Axis{Path: "n", Values: rawVals(t, 1, 2)}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"missing name", func(s *Spec) { s.Name = "" }, `missing "name"`},
		{"no axes", func(s *Spec) { s.Axes = nil }, "at least one sweep dimension"},
		{"sweep_n base", func(s *Spec) { s.Base.SweepN = []int{1, 2} }, `must not use "sweep_n"`},
		{"reserved seed", func(s *Spec) { s.Axes = ax(Axis{Path: "seed", Values: rawVals(t, 1)}) }, "cannot be swept"},
		{"empty axis", func(s *Spec) { s.Axes = ax(Axis{Path: "n"}) }, `missing "values"`},
		{"values and range", func(s *Spec) {
			f := 1.0
			s.Axes = ax(Axis{Path: "n", Values: rawVals(t, 1), From: &f, To: &f, Step: &f})
		}, "not both"},
		{"bad range", func(s *Spec) {
			from, to, step := 5.0, 1.0, 1.0
			s.Axes = ax(Axis{Path: "sim_time_us", From: &from, To: &to, Step: &step})
		}, `"to" = 1 < "from" = 5`},
		{"zero step", func(s *Spec) {
			from, to, step := 1.0, 5.0, 0.0
			s.Axes = ax(Axis{Path: "sim_time_us", From: &from, To: &to, Step: &step})
		}, `"step"`},
		{"n needs one group", func(s *Spec) {
			s.Base.Stations = []scenario.Group{{Count: 1}, {Count: 1}}
			s.Axes = ax(nAxis)
		}, `exactly one base station group`},
		{"min>max", func(s *Spec) {
			s.Targets = []Target{{Metric: "norm_throughput", CI: 0.1}}
			s.MinReps, s.MaxReps = 9, 3
		}, `"min_reps" = 9 > "max_reps" = 3`},
		{"reps with targets", func(s *Spec) {
			s.Targets = []Target{{Metric: "norm_throughput", CI: 0.1}}
			s.Reps = 5
		}, "mutually exclusive"},
		{"adaptive fields without targets", func(s *Spec) { s.MinReps = 3 }, `need "targets"`},
		{"target both goals", func(s *Spec) {
			s.Targets = []Target{{Metric: "x", CI: 0.1, RelCI: 0.1}}
		}, `exactly one of "ci" and "rel_ci"`},
		{"target no metric", func(s *Spec) {
			s.Targets = []Target{{CI: 0.1}}
		}, `missing "metric"`},
		{"grid too big", func(s *Spec) {
			vals := make([]json.RawMessage, 100)
			for i := range vals {
				vals[i] = json.RawMessage("1")
			}
			s.Axes = ax(Axis{Path: "seed_bits", Values: vals}, Axis{Path: "x", Values: vals}, Axis{Path: "y", Values: vals})
		}, "exceeds 4096 points"},
	}
	for _, tc := range cases {
		s := Spec{Name: "bad", Base: baseSpec(), Axes: []Axis{nAxis}}
		s.Base.Stations = []scenario.Group{{Count: 1}}
		tc.mut(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: invalid campaign accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestRangeAxis(t *testing.T) {
	from, to, step := 0.0, 0.3, 0.1
	s := Spec{
		Name: "range",
		Base: baseSpec(),
		Axes: []Axis{{Path: "stations[0].error_prob", From: &from, To: &to, Step: &step}},
		Reps: 2,
	}
	norm, err := s.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if len(norm.Axes[0].Values) != 4 {
		t.Fatalf("range 0..0.3 step 0.1 expanded to %d values (%v), want 4 (endpoint included)",
			len(norm.Axes[0].Values), norm.Axes[0].Values)
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 4 {
		t.Fatalf("%d points, want 4", len(c.Points))
	}
	// Float accumulation must not push the endpoint past "to": the last
	// value is exactly 0.3, so its fingerprint matches a hand-written
	// spec with the same literal (the cross-surface dedupe property).
	if got := c.Points[3].Spec.Stations[0].ErrorProb; got != 0.3 {
		t.Errorf("range endpoint = %v, want exactly 0.3 (clamped)", got)
	}
	if s.GridSize() != 4 {
		t.Errorf("GridSize = %d, want 4", s.GridSize())
	}
}

func TestGridSizeMatchesCompile(t *testing.T) {
	from, to, step := 1.0, 5.0, 2.0
	s := Spec{
		Name: "gridsize",
		Base: baseSpec(),
		Axes: []Axis{
			{Path: "n", Values: rawVals(t, 1, 2)},
			{Path: "sim_time_us", From: &from, To: &to, Step: &step},
		},
		Reps: 1,
	}
	s.Base.Stations = []scenario.Group{{Count: 1}}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if s.GridSize() != len(c.Points) {
		t.Errorf("GridSize = %d, Compile expanded %d points", s.GridSize(), len(c.Points))
	}
	norm, err := s.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.GridSize() != len(c.Points) {
		t.Errorf("normalized GridSize = %d, want %d", norm.GridSize(), len(c.Points))
	}
}

func TestCompileExpandsCrossProduct(t *testing.T) {
	s := Spec{
		Name: "grid",
		Base: baseSpec(),
		Axes: []Axis{
			{Path: "n", Values: rawVals(t, 1, 3)},
			{Path: "stations[0].error_prob", Values: rawVals(t, 0, 0.25, 0.5)},
		},
		Reps: 2,
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 6 {
		t.Fatalf("%d points, want 6", len(c.Points))
	}
	// Row-major: the last axis (error_prob) varies fastest.
	wantN := []int{1, 1, 1, 3, 3, 3}
	wantE := []float64{0, 0.25, 0.5, 0, 0.25, 0.5}
	for i, p := range c.Points {
		if p.Spec.Stations[0].Count != wantN[i] {
			t.Errorf("point %d: n = %d, want %d", i, p.Spec.Stations[0].Count, wantN[i])
		}
		if p.Spec.Stations[0].ErrorProb != wantE[i] {
			t.Errorf("point %d: error_prob = %v, want %v", i, p.Spec.Stations[0].ErrorProb, wantE[i])
		}
		if p.Index != i {
			t.Errorf("point %d: index %d", i, p.Index)
		}
		if got := len(p.Labels); got != 2 {
			t.Errorf("point %d: %d labels", i, got)
		}
	}
	// Split policy: point i's seed is base + golden·i.
	for i, p := range c.Points {
		if want := uint64(7) + golden*uint64(i); p.Spec.Seed != want {
			t.Errorf("point %d: seed %d, want %d", i, p.Spec.Seed, want)
		}
	}
}

func TestCompileVectorAxis(t *testing.T) {
	s := Spec{
		Name: "vectors",
		Base: baseSpec(),
		Axes: []Axis{
			{Path: "stations[0].cw", Values: []json.RawMessage{json.RawMessage(`[8,16,32,64]`), json.RawMessage(`[4,8,16,32]`)}},
			{Path: "stations[0].dc", Values: []json.RawMessage{json.RawMessage(`[0,1,3,15]`)}},
		},
		Reps: 1,
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 2 {
		t.Fatalf("%d points, want 2", len(c.Points))
	}
	if got := c.Points[1].Spec.Stations[0].CW; !reflect.DeepEqual(got, []int{4, 8, 16, 32}) {
		t.Errorf("point 1 cw = %v", got)
	}
}

func TestCompileRejectsBadPath(t *testing.T) {
	cases := []struct {
		path string
		want string
	}{
		{"stations[0].cww", "unknown field"},
		{"stations[5].cw", "out of range"},
		{"stations[0]..cw", "empty segment"},
		{"stations[x].cw", "bad index"},
	}
	for _, tc := range cases {
		s := Spec{
			Name: "bad-path",
			Base: baseSpec(),
			Axes: []Axis{{Path: tc.path, Values: []json.RawMessage{json.RawMessage(`[8,16,32,64]`)}}},
		}
		_, err := Compile(s)
		if err == nil {
			t.Errorf("path %q accepted", tc.path)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("path %q: error %q does not mention %q", tc.path, err, tc.want)
		}
	}
}

func TestCompileRejectsUnknownTargetMetric(t *testing.T) {
	s := Spec{
		Name:    "bad-target",
		Base:    baseSpec(),
		Axes:    []Axis{{Path: "n", Values: rawVals(t, 1, 2)}},
		Targets: []Target{{Metric: "no_such_metric", CI: 0.1}},
	}
	s.Base.Stations = []scenario.Group{{Count: 1}}
	_, err := Compile(s)
	if err == nil || !strings.Contains(err.Error(), `"no_such_metric"`) {
		t.Errorf("unknown target metric not rejected by name: %v", err)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","axess":[]}`))
	if err == nil {
		t.Error("unknown field accepted")
	}
}

func TestPointSeedPolicies(t *testing.T) {
	if got := PointSeed(scenario.SeedIncrement, 42, 3); got != 42 {
		t.Errorf("increment point seed = %d, want 42", got)
	}
	// Split: standalone replication seeds of point i must equal the
	// legacy sweep's seeds at point i (the identity Compile relies on).
	base := uint64(9)
	for point := 0; point < 4; point++ {
		for rep := 0; rep < 3; rep++ {
			sweep := scenario.RepSeed(scenario.SeedSplit, base, point, rep)
			standalone := scenario.RepSeed(scenario.SeedSplit, PointSeed(scenario.SeedSplit, base, point), 0, rep)
			if sweep != standalone {
				t.Fatalf("point %d rep %d: sweep seed %d != standalone seed %d", point, rep, sweep, standalone)
			}
		}
	}
}
