package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/scenario"
)

// pathSeg is one step of a parsed axis path: a JSON object key,
// optionally followed by array indexes.
type pathSeg struct {
	key     string
	indexes []int
}

// parsePath parses "stations[0].traffic.mean_interarrival_us"-style
// axis paths: dot-separated JSON field names, each optionally indexed.
// The alias "n" is handled by the caller before navigation.
func parsePath(path string) ([]pathSeg, error) {
	if path == "n" {
		return nil, nil
	}
	var segs []pathSeg
	for _, part := range strings.Split(path, ".") {
		if part == "" {
			return nil, fmt.Errorf("path %q has an empty segment", path)
		}
		key := part
		var indexes []int
		for {
			open := strings.IndexByte(key, '[')
			if open < 0 {
				break
			}
			rest := key[open:]
			key = key[:open]
			for rest != "" {
				if rest[0] != '[' {
					return nil, fmt.Errorf("path %q: unexpected %q after index", path, rest)
				}
				close := strings.IndexByte(rest, ']')
				if close < 0 {
					return nil, fmt.Errorf("path %q: unclosed index bracket", path)
				}
				idx, err := strconv.Atoi(rest[1:close])
				if err != nil || idx < 0 {
					return nil, fmt.Errorf("path %q: bad index %q", path, rest[1:close])
				}
				indexes = append(indexes, idx)
				rest = rest[close+1:]
			}
			break
		}
		if key == "" {
			return nil, fmt.Errorf("path %q indexes an unnamed field", path)
		}
		segs = append(segs, pathSeg{key: key, indexes: indexes})
	}
	return segs, nil
}

// decodeDoc unmarshals JSON into a generic document with number
// fidelity preserved: json.Number carries the original literal, so a
// 64-bit seed survives the map round trip losslessly.
func decodeDoc(data []byte) (map[string]any, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var doc map[string]any
	if err := dec.Decode(&doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// applyPath substitutes value at path inside doc (the generic JSON form
// of a scenario spec). Missing object keys along the way are created —
// normalization omits zero-valued fields, so a legitimate path may name
// an absent key; a genuinely wrong path produces an unknown field that
// the scenario re-parse rejects by name. Array indexes must exist:
// an axis cannot grow the station list.
func applyPath(doc map[string]any, path string, value any) error {
	if path == "n" {
		stations, ok := doc["stations"].([]any)
		if !ok || len(stations) != 1 {
			return fmt.Errorf("axis \"n\" requires exactly one station group")
		}
		group, ok := stations[0].(map[string]any)
		if !ok {
			return fmt.Errorf("axis \"n\": stations[0] is not an object")
		}
		group["count"] = value
		return nil
	}
	segs, err := parsePath(path)
	if err != nil {
		return err
	}
	var cur any = doc
	for si, seg := range segs {
		obj, ok := cur.(map[string]any)
		if !ok {
			return fmt.Errorf("path %q: %q is not an object", path, strings.Join(pathPrefix(segs, si), "."))
		}
		last := si == len(segs)-1 && len(seg.indexes) == 0
		if last {
			obj[seg.key] = value
			return nil
		}
		child, exists := obj[seg.key]
		if !exists || child == nil {
			if len(seg.indexes) > 0 {
				return fmt.Errorf("path %q: %q is absent, cannot index into it", path, seg.key)
			}
			child = map[string]any{}
			obj[seg.key] = child
		}
		for ii, idx := range seg.indexes {
			arr, ok := child.([]any)
			if !ok {
				return fmt.Errorf("path %q: %q is not an array", path, seg.key)
			}
			if idx >= len(arr) {
				return fmt.Errorf("path %q: index %d out of range (%q has %d entries)", path, idx, seg.key, len(arr))
			}
			lastIdx := si == len(segs)-1 && ii == len(seg.indexes)-1
			if lastIdx {
				arr[idx] = value
				return nil
			}
			child = arr[idx]
		}
		cur = child
	}
	return fmt.Errorf("path %q resolved nowhere", path) // unreachable: the loop always returns
}

// pathPrefix names the path up to (excluding) segment si, for errors.
func pathPrefix(segs []pathSeg, si int) []string {
	out := make([]string, 0, si+1)
	for _, s := range segs[:si+1] {
		out = append(out, s.key)
	}
	return out
}

// golden is the SplitMix64 increment, shared with scenario.RepSeed's
// derivation (2⁶⁴/φ).
const golden = 0x9e3779b97f4a7c15

// PointSeed derives grid point i's base seed under the given policy.
// For "split" the offset base + golden·i makes the point's standalone
// replication seeds RepSeed(split, PointSeed, 0, r) coincide with the
// legacy sweep's RepSeed(split, base, i, r); "increment" reuses the
// base seed at every point, the classic sweep convention.
func PointSeed(policy string, base uint64, point int) uint64 {
	if policy == scenario.SeedIncrement {
		return base
	}
	return base + golden*uint64(point)
}

// AxisValue labels one substituted coordinate of a grid point.
type AxisValue struct {
	// Path is the axis path.
	Path string `json:"path"`
	// Value is the substituted value's compact JSON form.
	Value json.RawMessage `json:"value"`
}

// Point is one expanded grid point, ready to run.
type Point struct {
	// Index is the point's row-major position in the grid.
	Index int
	// Labels give the point's coordinate on every axis, in axis order.
	Labels []AxisValue
	// Spec is the expanded, normalized scenario (per-point seed
	// applied). Running it standalone reproduces the campaign's result
	// for this point bit for bit.
	Spec scenario.Spec
	// Compiled is the scenario lowered onto its engine.
	Compiled *scenario.Compiled
}

// Compiled is a campaign ready to run: the normalized spec plus every
// expanded grid point in row-major order.
type Compiled struct {
	// Spec is the normalized campaign spec.
	Spec Spec
	// Points holds the expanded grid.
	Points []Point
}

// Compile validates and normalizes the campaign and expands the grid:
// every cross-product combination is substituted into the base
// scenario, re-parsed (so a typo'd axis path fails by field name),
// seeded per point, normalized and lowered onto its engine.
func Compile(s Spec) (*Compiled, error) {
	norm, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	c := &Compiled{Spec: norm}

	baseJSON, err := json.Marshal(norm.Base)
	if err != nil {
		return nil, fmt.Errorf("campaign %s: marshal base: %w", norm.Name, err)
	}
	dims := make([]int, len(norm.Axes))
	total := 1
	for ai, a := range norm.Axes {
		dims[ai] = len(a.Values)
		total *= len(a.Values)
	}

	coord := make([]int, len(dims))
	for idx := 0; idx < total; idx++ {
		// Row-major: the last axis varies fastest.
		rem := idx
		for ai := len(dims) - 1; ai >= 0; ai-- {
			coord[ai] = rem % dims[ai]
			rem /= dims[ai]
		}
		p, err := c.expandPoint(baseJSON, idx, coord)
		if err != nil {
			return nil, err
		}
		c.Points = append(c.Points, p)
	}
	return c, nil
}

// expandPoint materializes one grid point from its axis coordinates.
func (c *Compiled) expandPoint(baseJSON []byte, idx int, coord []int) (Point, error) {
	s := c.Spec
	p := Point{Index: idx}
	doc, err := decodeDoc(baseJSON)
	if err != nil {
		return Point{}, fmt.Errorf("campaign %s: decode base: %w", s.Name, err)
	}
	for ai, a := range s.Axes {
		raw := a.Values[coord[ai]]
		p.Labels = append(p.Labels, AxisValue{Path: a.Path, Value: raw})
		var value any
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.UseNumber()
		if err := dec.Decode(&value); err != nil {
			return Point{}, fmt.Errorf("campaign %s: point %d: axis %q value %s: %w", s.Name, idx, a.Path, raw, err)
		}
		if err := applyPath(doc, a.Path, value); err != nil {
			return Point{}, fmt.Errorf("campaign %s: point %d: %w", s.Name, idx, err)
		}
	}
	expanded, err := json.Marshal(doc)
	if err != nil {
		return Point{}, fmt.Errorf("campaign %s: point %d: re-encode: %w", s.Name, idx, err)
	}
	spec, err := scenario.Parse(expanded)
	if err != nil {
		// The likeliest cause is an axis path naming a field the
		// scenario schema does not have; the parse error names it.
		return Point{}, fmt.Errorf("campaign %s: point %s: %w", s.Name, p.describeCoord(), err)
	}
	spec.Seed = PointSeed(s.Base.SeedPolicy, s.Base.Seed, idx)
	norm, err := spec.Normalized()
	if err != nil {
		return Point{}, fmt.Errorf("campaign %s: point %s: %w", s.Name, p.describeCoord(), err)
	}
	p.Spec = norm
	p.Compiled, err = scenario.Compile(norm)
	if err != nil {
		return Point{}, fmt.Errorf("campaign %s: point %s: %w", s.Name, p.describeCoord(), err)
	}
	if err := c.checkTargets(p); err != nil {
		return Point{}, err
	}
	return p, nil
}

// checkTargets verifies every convergence-target metric exists on the
// point's engine, so a misspelled metric fails at compile time, not
// mid-run.
func (c *Compiled) checkTargets(p Point) error {
	if !c.Spec.Adaptive() {
		return nil
	}
	names := scenario.MetricNames(p.Spec.Engine)
	for _, tg := range c.Spec.Targets {
		found := false
		for _, n := range names {
			if n == tg.Metric {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("campaign %s: point %s: target metric %q is not reported by engine %s (have %s)",
				c.Spec.Name, p.describeCoord(), tg.Metric, p.Spec.Engine, strings.Join(names, ", "))
		}
	}
	return nil
}

// describeCoord renders a point's grid coordinate for error messages
// and labels: "n=5, stations[0].error_prob=0.1".
func (p Point) describeCoord() string {
	parts := make([]string, len(p.Labels))
	for i, l := range p.Labels {
		parts[i] = fmt.Sprintf("%s=%s", l.Path, valueString(l.Value))
	}
	return strings.Join(parts, ", ")
}

// Describe summarizes a compiled campaign in one line — the -validate
// output of `sim1901 -campaign` and the CI campaign check.
func (c *Compiled) Describe() string {
	s := c.Spec
	reps := plural(s.Reps, "rep", "reps")
	if s.Adaptive() {
		reps = fmt.Sprintf("adaptive %d–%d reps (batch %d, %d targets)", s.MinReps, s.MaxReps, s.BatchReps, len(s.Targets))
	}
	return fmt.Sprintf("campaign %s: %s, %d points, base %s (engine %s), %s",
		s.Name, plural(len(s.Axes), "axis", "axes"), len(c.Points), s.Base.Name, s.Base.Engine, reps)
}

// plural renders a count with the right noun form.
func plural(n int, one, many string) string {
	if n == 1 {
		return fmt.Sprintf("%d %s", n, one)
	}
	return fmt.Sprintf("%d %s", n, many)
}

// Canonical returns the campaign's canonical byte form: the compact
// JSON encoding of the normalized spec.
func (s Spec) Canonical() ([]byte, error) {
	norm, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(norm)
	if err != nil {
		return nil, fmt.Errorf("campaign %s: canonical: %w", s.Name, err)
	}
	return data, nil
}

// Fingerprint content-addresses a campaign: a SHA-256 over a
// "campaign\n" domain tag plus the canonical normalized spec, rendered
// "sha256:<hex>". The replication policy, the base scenario's seed and
// every axis value are all part of the normalized spec, so equal
// fingerprints mean bit-identical campaign results — the property the
// serving layer's cache relies on. The domain tag keeps campaign keys
// disjoint from scenario.Fingerprint's point keys even in the shared
// cache namespace.
func Fingerprint(s Spec) (string, error) {
	canon, err := s.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte("campaign\n"))
	h.Write(canon)
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}
