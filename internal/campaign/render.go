package campaign

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"

	"repro/internal/scenario"
)

// HeadlineMetrics returns the metric columns a consolidated campaign
// table shows: the paper's two outputs (collision probability and
// normalized throughput) plus every adaptively targeted metric, without
// duplicates, in canonical report order where possible.
func (s Spec) HeadlineMetrics() []string {
	out := []string{"collision_pr", "norm_throughput"}
	for _, tg := range s.Targets {
		dup := false
		for _, m := range out {
			if m == tg.Metric {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, tg.Metric)
		}
	}
	return out
}

// metricSummary finds a metric by name in a point's report (nil when
// the point's engine does not report it).
func metricSummary(rep *scenario.Report, name string) *scenario.MetricSummary {
	for i := range rep.Points[0].Metrics {
		if rep.Points[0].Metrics[i].Name == name {
			return &rep.Points[0].Metrics[i]
		}
	}
	return nil
}

// GridRow is one grid point reduced to table form. Every renderer of a
// consolidated campaign table (the plain-text Write, plcbench's
// markdown/CSV/JSON tables) consumes this one reduction, so the
// convergence flag and metric selection cannot drift between surfaces.
type GridRow struct {
	// Labels are the point's axis values in axis order, rendered as
	// compact JSON.
	Labels []string
	// Reps is the point's final replication count.
	Reps int
	// Conv is the convergence flag: "yes"/"NO" for adaptive campaigns,
	// "-" for fixed replication counts.
	Conv string
	// Speedup is the point's control-variate variance-reduction factor
	// (PointResult.Speedup); zero for plain campaigns, where renderers
	// omit the column entirely.
	Speedup float64
	// Metrics holds one summary per Spec.HeadlineMetrics() entry, in
	// order; nil where the point's engine does not report the metric.
	Metrics []*scenario.MetricSummary
}

// Grid reduces the report to one GridRow per grid point, aligned with
// Spec.HeadlineMetrics().
func (r *Report) Grid() []GridRow {
	metrics := r.Spec.HeadlineMetrics()
	rows := make([]GridRow, len(r.Points))
	for i, p := range r.Points {
		row := GridRow{Reps: p.Reps, Conv: "-", Speedup: p.Speedup}
		if r.Spec.Adaptive() {
			row.Conv = "yes"
			if !p.Converged {
				row.Conv = "NO"
			}
		}
		for _, l := range p.Labels {
			row.Labels = append(row.Labels, valueString(l.Value))
		}
		for _, m := range metrics {
			row.Metrics = append(row.Metrics, metricSummary(p.Report, m))
		}
		rows[i] = row
	}
	return rows
}

// formatCell renders one metric summary as a table cell. CV-adjusted
// estimates print the reduced interval (the raw one is in the point's
// full report); a nil summary means the engine does not report the
// metric at this point.
func formatCell(ms *scenario.MetricSummary) string {
	switch {
	case ms == nil:
		return "-"
	case ms.Summary.N == 1:
		return fmt.Sprintf("%.6f", ms.Summary.Mean)
	case ms.CV != nil && ms.CV.Applied:
		return fmt.Sprintf("%.6f ± %.6f", ms.CV.Mean, ms.CV.CI95)
	default:
		return fmt.Sprintf("%.6f ± %.6f", ms.Summary.Mean, ms.Summary.CI95)
	}
}

// FormatSpeedup renders a variance-reduction factor for tables: "×12.3"
// with one decimal, "-" when no estimate applied. Shared by the plain
// writer and plcbench's markdown/CSV tables so the surfaces agree.
func FormatSpeedup(s float64) string {
	if s <= 0 {
		return "-"
	}
	return fmt.Sprintf("×%.1f", s)
}

// Write renders the campaign as aligned plain text: a header describing
// the grid and replication policy, one line per axis, then one row per
// grid point with its coordinate, replication count, convergence flag
// and the headline metrics as mean ± 95% CI. Pure function of the
// report, hence bit-identical between serial, parallel and served runs.
func (r *Report) Write(w io.Writer) error {
	s := r.Spec
	reps := plural(s.Reps, "rep", "reps") + " per point"
	if s.Adaptive() {
		reps = fmt.Sprintf("adaptive %d–%d reps (batch %d)", s.MinReps, s.MaxReps, s.BatchReps)
	}
	if _, err := fmt.Fprintf(w, "# campaign %s (base %s, engine %s, %s, %s, %s, seed %d/%s)\n",
		s.Name, s.Base.Name, s.Base.Engine, plural(len(s.Axes), "axis", "axes"),
		plural(len(r.Points), "point", "points"), reps, s.Base.Seed, s.Base.SeedPolicy); err != nil {
		return err
	}
	if s.Description != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", s.Description); err != nil {
			return err
		}
	}
	for _, a := range s.Axes {
		vals := make([]string, len(a.Values))
		for i, v := range a.Values {
			vals[i] = valueString(v)
		}
		if _, err := fmt.Fprintf(w, "# axis %s: [%s]\n", a.Path, strings.Join(vals, " ")); err != nil {
			return err
		}
	}
	for _, tg := range s.Targets {
		goal := fmt.Sprintf("±%g", tg.CI)
		if tg.RelCI > 0 {
			goal = fmt.Sprintf("±%g×|mean|", tg.RelCI)
		}
		if _, err := fmt.Fprintf(w, "# target %s: 95%% CI half-width %s\n", tg.Metric, goal); err != nil {
			return err
		}
	}

	metrics := s.HeadlineMetrics()
	cv := s.Base.CVEnabled()
	header := make([]string, 0, len(s.Axes)+3+len(metrics))
	for _, a := range s.Axes {
		header = append(header, a.Path)
	}
	header = append(header, "reps", "conv")
	if cv {
		// The speedup column exists only for control-variate campaigns,
		// so plain campaign tables stay byte-identical to the goldens
		// that predate the estimator.
		header = append(header, "speedup")
	}
	header = append(header, metrics...)
	rows := [][]string{header}
	for _, g := range r.Grid() {
		row := append([]string(nil), g.Labels...)
		row = append(row, fmt.Sprint(g.Reps), g.Conv)
		if cv {
			row = append(row, FormatSpeedup(g.Speedup))
		}
		for _, ms := range g.Metrics {
			row = append(row, formatCell(ms))
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			// Rune count, not byte length: the speedup column's "×"
			// is multi-byte, and byte-padding would skew every column
			// to its right.
			if n := utf8.RuneCountInString(cell); n > widths[i] {
				widths[i] = n
			}
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, cell := range row {
			cells[i] = cell + strings.Repeat(" ", widths[i]-utf8.RuneCountInString(cell))
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(cells, "  "), " ")); err != nil {
			return err
		}
	}
	return nil
}
