package campaign

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

// TestExampleScenariosAllValid walks every shipped example scenario:
// each must validate, compile on its (resolved) engine, and — when the
// analytic model can express it — evaluate through the model to
// finite, NaN-free metrics. A broken or stale example fails here, not
// in a user's terminal.
func TestExampleScenariosAllValid(t *testing.T) {
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example scenarios found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			spec, err := scenario.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := spec.Validate(); err != nil {
				t.Fatal(err)
			}
			c, err := scenario.Compile(spec)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("engine %s, %d points", c.Spec.Engine, len(c.Points))

			// Model eligibility: strip the pinned engine and ask the
			// validator. Every model-expressible example must actually
			// answer analytically, whatever engine it ships with.
			ms := spec
			ms.Engine = scenario.EngineModel
			if err := ms.Validate(); err != nil {
				return // genuinely event-driven example (beacons, bursts, framing)
			}
			mc, err := scenario.Compile(ms)
			if err != nil {
				t.Fatalf("model-eligible example failed model compile: %v", err)
			}
			for _, p := range mc.Points {
				metrics, err := scenario.RunOnce(p, 1)
				if err != nil {
					t.Fatalf("model RunOnce: %v", err)
				}
				for _, m := range metrics {
					if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
						t.Errorf("model metric %s = %v", m.Name, m.Value)
					}
				}
			}
		})
	}
}

// TestExampleCampaignsAllValid walks every shipped example campaign:
// each must load, validate and expand its full grid, and every grid
// point must land on a declared engine. Model-engine points must
// additionally evaluate to finite, NaN-free metrics.
func TestExampleCampaignsAllValid(t *testing.T) {
	paths, err := filepath.Glob("../../examples/campaigns/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example campaigns found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			spec, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			c, err := Compile(spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Points) == 0 {
				t.Fatal("campaign expanded to zero points")
			}
			t.Log(c.Describe())
			for _, p := range c.Points {
				switch p.Spec.Engine {
				case scenario.EngineSim, scenario.EngineMac:
					// Simulated points are exercised by the campaign and
					// envelope suites; expanding and compiling is the
					// walk's contract.
				case scenario.EngineModel:
					metrics, err := scenario.RunOnce(p.Compiled.Points[0], 1)
					if err != nil {
						t.Fatalf("point %s: model RunOnce: %v", p.describeCoord(), err)
					}
					for _, m := range metrics {
						if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
							t.Errorf("point %s: model metric %s = %v", p.describeCoord(), m.Name, m.Value)
						}
					}
				default:
					t.Errorf("point %s resolved to unknown engine %q", p.describeCoord(), p.Spec.Engine)
				}
			}
		})
	}
}
