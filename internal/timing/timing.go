// Package timing defines the IEEE 1901 / HomePlug AV MAC time constants
// and a microsecond-resolution virtual clock used by the simulators and
// the emulated testbed.
//
// All durations are expressed in microseconds as float64, matching the
// units of the simulator published in the technical report accompanying
// the paper ("sim_1901" takes Tc, Ts and frame_length in µs and uses a
// 35.84 µs contention slot). Keeping the exact µs figures — rather than
// converting to time.Duration — avoids rounding the fractional slot and
// symbol durations that the standard specifies.
package timing

import (
	"fmt"
	"math"
)

// Microseconds is a duration in microseconds of simulated time.
//
// The zero value is a zero-length duration. Negative values are invalid
// everywhere in this module and are rejected by Validate methods.
type Microseconds = float64

// IEEE 1901 MAC timing constants (µs). The values follow the 1901-2010
// standard and are the ones used by the paper's simulator invocation
// sim_1901(2, 5e8, 2920.64, 2542.64, 2050, [8 16 32 64], [0 1 3 15]).
const (
	// SlotTime is the CSMA/CA contention (backoff) slot duration.
	SlotTime Microseconds = 35.84

	// PriorityResolutionSlot (PRS) is the duration of one of the two
	// priority-resolution slots that precede the contention period.
	PriorityResolutionSlot Microseconds = 35.84

	// CIFS is the contention inter-frame space that follows a
	// transmission before the priority-resolution slots.
	CIFS Microseconds = 100.0

	// RIFS is the response inter-frame space between the end of a frame
	// and the start of its acknowledgment (default value; the standard
	// allows negotiation).
	RIFS Microseconds = 140.0

	// EIFS is the extended inter-frame space used after an errored
	// reception when the frame length cannot be decoded.
	EIFS Microseconds = 2920.64

	// PreambleAndFrameControl is the duration of the PLC preamble plus
	// frame-control symbol that starts every MPDU and every ACK.
	// 110.48 (preamble + first FC symbol) per HomePlug AV.
	PreambleAndFrameControl Microseconds = 110.48

	// AckDuration is the duration of a selective-ACK delimiter: it is a
	// delimiter-only frame, i.e. preamble + frame control.
	AckDuration Microseconds = PreambleAndFrameControl

	// DefaultFrameDuration is the payload duration used in the paper's
	// validation runs ("frame_length" = 2050 µs). It corresponds to the
	// maximum-length MPDU at the testbed's PHY rate.
	DefaultFrameDuration Microseconds = 2050.0

	// DefaultSuccessDuration Ts is the total duration of a successful
	// transmission as used by the paper: priority resolution, preamble,
	// frame, RIFS, ACK and CIFS — 2542.64 µs in the validation runs.
	DefaultSuccessDuration Microseconds = 2542.64

	// DefaultCollisionDuration Tc is the total duration of a collision
	// as used by the paper — 2920.64 µs (EIFS-terminated).
	DefaultCollisionDuration Microseconds = 2920.64

	// MaxFrameDuration is the longest MPDU payload the standard allows
	// (Frame Length field upper bound, ~2501.12 µs of OFDM symbols plus
	// guard intervals; we use the common 2501.12 figure).
	MaxFrameDuration Microseconds = 2501.12
)

// Overheads groups the per-transmission fixed overheads so that Ts and Tc
// can be derived from a payload duration instead of being passed as
// opaque constants. DeriveDurations reproduces the paper's Ts/Tc pair
// from the default frame length.
type Overheads struct {
	// CIFS after the previous busy period.
	CIFS Microseconds
	// PRS is the total priority-resolution duration (two slots).
	PRS Microseconds
	// Preamble is the preamble + frame-control duration per MPDU.
	Preamble Microseconds
	// RIFS before the ACK.
	RIFS Microseconds
	// Ack is the acknowledgment duration.
	Ack Microseconds
	// EIFS terminates collisions (receiver cannot decode the length).
	EIFS Microseconds
}

// DefaultOverheads returns the overhead set that reproduces the paper's
// Ts = 2542.64 µs and Tc = 2920.64 µs for frame_length = 2050 µs.
//
// Success: frame + preamble + RIFS + ACK + CIFS + 2·PRS
//
//	2050 + 110.48 + 140 + 110.48 + 100 + 71.68 = 2582.64.
//
// The paper's 2542.64 corresponds to RIFS = 100 µs (the minimum RIFS);
// we therefore default RIFS to 100 to match the published invocation.
func DefaultOverheads() Overheads {
	return Overheads{
		CIFS:     CIFS,
		PRS:      2 * PriorityResolutionSlot,
		Preamble: PreambleAndFrameControl,
		RIFS:     100.0,
		Ack:      AckDuration,
		EIFS:     EIFS,
	}
}

// SuccessDuration returns Ts for a payload of the given duration.
func (o Overheads) SuccessDuration(frame Microseconds) Microseconds {
	return o.PRS + o.Preamble + frame + o.RIFS + o.Ack + o.CIFS
}

// CollisionDuration returns Tc for a payload of the given duration. A
// collision occupies the channel for the longest colliding frame and is
// followed by EIFS (no ACK can be decoded), per the standard's
// virtual-carrier-sense rules.
func (o Overheads) CollisionDuration(frame Microseconds) Microseconds {
	return o.PRS + o.Preamble + frame + o.EIFS - o.RIFS - o.Ack + o.CIFS
}

// Validate reports whether every overhead component is non-negative.
func (o Overheads) Validate() error {
	fields := []struct {
		name string
		v    Microseconds
	}{
		{"CIFS", o.CIFS}, {"PRS", o.PRS}, {"Preamble", o.Preamble},
		{"RIFS", o.RIFS}, {"Ack", o.Ack}, {"EIFS", o.EIFS},
	}
	for _, f := range fields {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("timing: overhead %s = %v is not a finite non-negative duration", f.name, f.v)
		}
	}
	return nil
}

// Clock is a virtual microsecond clock. Simulated components advance it
// explicitly; it never consults wall-clock time, which keeps every run
// deterministic and lets a 240 s "test" finish in milliseconds.
type Clock struct {
	now Microseconds
}

// NewClock returns a clock positioned at t = 0 µs.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time in µs.
func (c *Clock) Now() Microseconds { return c.now }

// Advance moves the clock forward by d µs. It panics if d is negative or
// not finite: a backwards-moving simulation clock is always a programming
// error and must not be silently absorbed.
func (c *Clock) Advance(d Microseconds) {
	if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		panic(fmt.Sprintf("timing: Clock.Advance(%v): negative or non-finite step", d))
	}
	c.now += d
}

// AdvanceTo moves the clock to absolute time t. It panics if t is in the
// past or not finite.
func (c *Clock) AdvanceTo(t Microseconds) {
	if t < c.now || math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("timing: Clock.AdvanceTo(%v): before current time %v", t, c.now))
	}
	c.now = t
}

// Reset rewinds the clock to zero for reuse between tests.
func (c *Clock) Reset() { c.now = 0 }

// Seconds converts a µs duration to seconds.
func Seconds(us Microseconds) float64 { return us / 1e6 }

// FromSeconds converts seconds to a µs duration.
func FromSeconds(s float64) Microseconds { return s * 1e6 }

// Slots returns how many whole backoff slots fit in d.
func Slots(d Microseconds) int {
	if d <= 0 {
		return 0
	}
	return int(d / SlotTime)
}
