package timing

import (
	"math"
	"testing"
)

func TestSlotTimeMatchesStandard(t *testing.T) {
	if SlotTime != 35.84 {
		t.Fatalf("SlotTime = %v, want 35.84 (IEEE 1901 contention slot)", SlotTime)
	}
	if PriorityResolutionSlot != SlotTime {
		t.Fatalf("PRS slot = %v, want equal to contention slot", PriorityResolutionSlot)
	}
}

func TestPaperDurations(t *testing.T) {
	// The constants must reproduce the paper's example invocation:
	// sim_1901(2, 5e8, 2920.64, 2542.64, 2050, …).
	if DefaultCollisionDuration != 2920.64 {
		t.Errorf("Tc = %v, want 2920.64", DefaultCollisionDuration)
	}
	if DefaultSuccessDuration != 2542.64 {
		t.Errorf("Ts = %v, want 2542.64", DefaultSuccessDuration)
	}
	if DefaultFrameDuration != 2050 {
		t.Errorf("frame_length = %v, want 2050", DefaultFrameDuration)
	}
}

func TestDefaultOverheadsReproduceTs(t *testing.T) {
	o := DefaultOverheads()
	if err := o.Validate(); err != nil {
		t.Fatalf("DefaultOverheads invalid: %v", err)
	}
	ts := o.SuccessDuration(DefaultFrameDuration)
	if math.Abs(ts-DefaultSuccessDuration) > 1e-9 {
		t.Errorf("SuccessDuration(2050) = %v, want %v", ts, DefaultSuccessDuration)
	}
}

func TestOverheadsCollisionLongerThanSuccess(t *testing.T) {
	o := DefaultOverheads()
	ts := o.SuccessDuration(DefaultFrameDuration)
	tc := o.CollisionDuration(DefaultFrameDuration)
	if tc <= ts {
		t.Errorf("collision duration %v not longer than success %v (EIFS must dominate RIFS+ACK)", tc, ts)
	}
}

func TestOverheadsValidateRejectsNegative(t *testing.T) {
	o := DefaultOverheads()
	o.RIFS = -1
	if err := o.Validate(); err == nil {
		t.Error("Validate accepted negative RIFS")
	}
	o = DefaultOverheads()
	o.CIFS = math.NaN()
	if err := o.Validate(); err == nil {
		t.Error("Validate accepted NaN CIFS")
	}
	o = DefaultOverheads()
	o.EIFS = math.Inf(1)
	if err := o.Validate(); err == nil {
		t.Error("Validate accepted +Inf EIFS")
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(SlotTime)
	c.Advance(DefaultSuccessDuration)
	want := SlotTime + DefaultSuccessDuration
	if got := c.Now(); got != want {
		t.Errorf("Now() = %v, want %v", got, want)
	}
	c.AdvanceTo(1e6)
	if c.Now() != 1e6 {
		t.Errorf("AdvanceTo(1e6): Now() = %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("Reset: Now() = %v, want 0", c.Now())
	}
}

func TestClockAdvancePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestClockAdvanceToPanicsOnPast(t *testing.T) {
	c := NewClock()
	c.Advance(100)
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo(past) did not panic")
		}
	}()
	c.AdvanceTo(50)
}

func TestClockAdvancePanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Advance(NaN) did not panic")
		}
	}()
	NewClock().Advance(math.NaN())
}

func TestSecondsRoundTrip(t *testing.T) {
	if got := Seconds(FromSeconds(240)); got != 240 {
		t.Errorf("Seconds(FromSeconds(240)) = %v", got)
	}
	if got := FromSeconds(1); got != 1e6 {
		t.Errorf("FromSeconds(1) = %v, want 1e6", got)
	}
}

func TestSlots(t *testing.T) {
	tests := []struct {
		d    Microseconds
		want int
	}{
		{0, 0},
		{-10, 0},
		{SlotTime, 1},
		{SlotTime * 2.5, 2},
		{DefaultSuccessDuration, 70}, // 2542.64 / 35.84 = 70.94…
	}
	for _, tc := range tests {
		if got := Slots(tc.d); got != tc.want {
			t.Errorf("Slots(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}
