// Package device emulates the HomePlug AV adapter: the closed firmware
// the paper's tools talk to through vendor management messages.
//
// A Device wraps a mac.Station and implements the management-message
// surface the paper uses (Section 3): the 0xA030 statistics family
// (reset/fetch acknowledged and collided MPDU counters per link) and
// the 0xA034 sniffer family (capture SoF delimiters of every frame on
// the power line). The Host in server.go exposes the devices over UDP
// so the reimplemented tools (cmd/ampstat, cmd/faifa) exercise the
// exact reset–run–query procedure of the paper against real sockets.
package device

import (
	"fmt"
	"sync"

	"repro/internal/hpav"
	"repro/internal/mac"
)

// Device is one emulated PLC adapter.
type Device struct {
	station *Station

	mu           sync.Mutex
	snifferOn    bool
	captures     []hpav.SnifferInd
	captureLimit int
	snifferSink  func(hpav.SnifferInd)
}

// Station is the subset of mac.Station the device firmware needs;
// declared as an interface-free alias to keep construction simple.
type Station = mac.Station

// DefaultCaptureLimit bounds the in-device capture buffer. 240 s of a
// 7-station saturated test produces ≈4·10⁵ SoFs; the default keeps the
// full trace with headroom.
const DefaultCaptureLimit = 1 << 20

// New wraps a MAC station in its firmware surface and hooks the
// sniffer path.
func New(st *mac.Station) *Device {
	if st == nil {
		panic("device: New(nil station)")
	}
	d := &Device{station: st, captureLimit: DefaultCaptureLimit}
	st.Sniffer = d.onCapture
	return d
}

// Station returns the wrapped MAC station.
func (d *Device) Station() *mac.Station { return d.station }

// Addr returns the device's MAC address.
func (d *Device) Addr() hpav.MAC { return d.station.Addr }

// onCapture receives SoF delimiters from the medium while the sniffer
// is enabled.
func (d *Device) onCapture(ind hpav.SnifferInd) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.snifferOn {
		return
	}
	if len(d.captures) < d.captureLimit {
		d.captures = append(d.captures, ind)
	}
	if d.snifferSink != nil {
		d.snifferSink(ind)
	}
}

// SetSnifferSink installs a live capture consumer (the UDP host pushes
// VS_SNIFFER.IND datagrams through it). Pass nil to remove.
func (d *Device) SetSnifferSink(sink func(hpav.SnifferInd)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.snifferSink = sink
}

// Captures drains and returns the buffered captures.
func (d *Device) Captures() []hpav.SnifferInd {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := d.captures
	d.captures = nil
	return out
}

// SnifferEnabled reports the sniffer state.
func (d *Device) SnifferEnabled() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snifferOn
}

// HandleMME processes one management request addressed to this device
// and returns the confirmation frame, or an error for malformed or
// unsupported requests (real firmware drops those silently; the
// emulator surfaces them for debuggability).
func (d *Device) HandleMME(req *hpav.Frame) (*hpav.Frame, error) {
	if req == nil {
		return nil, fmt.Errorf("device: nil request")
	}
	switch req.Type {
	case hpav.MMTypeStatsReq:
		return d.handleStats(req)
	case hpav.MMTypeSnifferReq:
		return d.handleSniffer(req)
	default:
		return nil, fmt.Errorf("device: unsupported MMType %v", req.Type)
	}
}

func (d *Device) reply(req *hpav.Frame, typ hpav.MMType, payload []byte) *hpav.Frame {
	return &hpav.Frame{
		ODA:     req.OSA,
		OSA:     d.station.Addr,
		Type:    typ,
		OUI:     hpav.IntellonOUI,
		Payload: payload,
	}
}

// handleStats implements the ampstat surface: reset clears the link's
// counters; fetch returns them in the byte-exact layout of Section 3.2.
func (d *Device) handleStats(req *hpav.Frame) (*hpav.Frame, error) {
	r, err := hpav.UnmarshalStatsReq(req.Payload)
	if err != nil {
		return nil, err
	}
	key := mac.LinkKey{Peer: r.PeerAddress, Priority: r.Priority, Direction: r.Direction}
	switch r.Control {
	case hpav.StatsReset:
		d.station.Counters().Reset(key)
	case hpav.StatsFetch:
		// fall through to the fetch below
	}
	c := d.station.Counters().Fetch(key)
	cnf := &hpav.StatsCnf{
		Status:    hpav.StatsStatusSuccess,
		Direction: r.Direction,
		Acked:     c.Acked,
		Collided:  c.Collided,
	}
	return d.reply(req, hpav.MMTypeStatsCnf, cnf.Marshal()), nil
}

// handleSniffer implements the faifa surface: toggle capture mode.
func (d *Device) handleSniffer(req *hpav.Frame) (*hpav.Frame, error) {
	r, err := hpav.UnmarshalSnifferReq(req.Payload)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.snifferOn = r.Control == hpav.SnifferEnable
	d.station.SnifferEnabled = d.snifferOn
	if !d.snifferOn {
		d.captures = nil
	}
	state := hpav.SnifferDisable
	if d.snifferOn {
		state = hpav.SnifferEnable
	}
	d.mu.Unlock()
	cnf := &hpav.SnifferCnf{Status: 0, State: state}
	return d.reply(req, hpav.MMTypeSnifferCnf, cnf.Marshal()), nil
}
