package device

import (
	"net"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/hpav"
	"repro/internal/mac"
	"repro/internal/rng"
	"repro/internal/timing"
	"repro/internal/traffic"
)

var (
	dstAddr = hpav.MAC{0x00, 0xB0, 0x52, 0, 0, 0x01}
	staAddr = hpav.MAC{0x00, 0xB0, 0x52, 0, 0, 0x02}
	sta2    = hpav.MAC{0x00, 0xB0, 0x52, 0, 0, 0x03}
	toolMAC = hpav.MAC{0x02, 0, 0, 0, 0, 0x01}
)

// buildPair wires a 2-transmitter network and returns (network, devices,
// destination device).
func buildPair(seed uint64) (*mac.Network, []*Device, *Device) {
	root := rng.New(seed)
	nw := mac.NewNetwork()
	dst := mac.NewStation("D", 1, dstAddr, root.Split(0))
	nw.Attach(dst)
	var devs []*Device
	for i, addr := range []hpav.MAC{staAddr, sta2} {
		st := mac.NewStation("sta", hpav.TEI(i+2), addr, root.Split(uint64(i+1)))
		st.AddFlow(&mac.Flow{Source: traffic.Saturated{}, Spec: mac.BurstSpec{
			Dst: 1, DstAddr: dstAddr, Priority: config.CA1,
			MPDUs: 2, PBsPerMPDU: 4, FrameMicros: timing.DefaultFrameDuration,
		}})
		nw.Attach(st)
		devs = append(devs, New(st))
	}
	return nw, devs, New(dst)
}

func mme(oda hpav.MAC, typ hpav.MMType, payload []byte) *hpav.Frame {
	return &hpav.Frame{ODA: oda, OSA: toolMAC, Type: typ, OUI: hpav.IntellonOUI, Payload: payload}
}

func TestStatsFetchAndReset(t *testing.T) {
	nw, devs, _ := buildPair(1)
	nw.Run(2e6)

	fetch := mme(staAddr, hpav.MMTypeStatsReq, (&hpav.StatsReq{
		Control: hpav.StatsFetch, Direction: hpav.DirectionTx,
		Priority: config.CA1, PeerAddress: dstAddr,
	}).Marshal())
	reply, err := devs[0].HandleMME(fetch)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != hpav.MMTypeStatsCnf {
		t.Fatalf("reply type %v", reply.Type)
	}
	if reply.ODA != toolMAC || reply.OSA != staAddr {
		t.Errorf("reply addressing wrong: %v → %v", reply.OSA, reply.ODA)
	}
	cnf, err := hpav.UnmarshalStatsCnf(reply.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if cnf.Acked == 0 {
		t.Error("no acked MPDUs after 2 s of saturation")
	}

	reset := mme(staAddr, hpav.MMTypeStatsReq, (&hpav.StatsReq{
		Control: hpav.StatsReset, Direction: hpav.DirectionTx,
		Priority: config.CA1, PeerAddress: dstAddr,
	}).Marshal())
	reply, err = devs[0].HandleMME(reset)
	if err != nil {
		t.Fatal(err)
	}
	cnf, _ = hpav.UnmarshalStatsCnf(reply.Payload)
	if cnf.Acked != 0 || cnf.Collided != 0 {
		t.Errorf("counters after reset: %+v", cnf)
	}
}

func TestStatsWrongPriorityIsZero(t *testing.T) {
	nw, devs, _ := buildPair(2)
	nw.Run(1e6)
	fetch := mme(staAddr, hpav.MMTypeStatsReq, (&hpav.StatsReq{
		Control: hpav.StatsFetch, Direction: hpav.DirectionTx,
		Priority: config.CA3, PeerAddress: dstAddr,
	}).Marshal())
	reply, err := devs[0].HandleMME(fetch)
	if err != nil {
		t.Fatal(err)
	}
	cnf, _ := hpav.UnmarshalStatsCnf(reply.Payload)
	if cnf.Acked != 0 {
		t.Errorf("CA3 counters nonzero: %+v (stats must be per priority)", cnf)
	}
}

func TestSnifferToggleAndCapture(t *testing.T) {
	nw, _, dst := buildPair(3)

	on := mme(dstAddr, hpav.MMTypeSnifferReq, (&hpav.SnifferReq{Control: hpav.SnifferEnable}).Marshal())
	reply, err := dst.HandleMME(on)
	if err != nil {
		t.Fatal(err)
	}
	cnf, err := hpav.UnmarshalSnifferCnf(reply.Payload)
	if err != nil || cnf.State != hpav.SnifferEnable {
		t.Fatalf("sniffer enable: %+v, %v", cnf, err)
	}
	if !dst.SnifferEnabled() {
		t.Fatal("device does not report sniffer on")
	}

	nw.Run(2e6)
	caps := dst.Captures()
	if len(caps) == 0 {
		t.Fatal("no captures with sniffer on")
	}
	for _, c := range caps {
		if c.SoF.LinkID != config.CA1 {
			t.Errorf("captured non-CA1 SoF in a data-only scenario: %+v", c.SoF)
		}
	}

	off := mme(dstAddr, hpav.MMTypeSnifferReq, (&hpav.SnifferReq{Control: hpav.SnifferDisable}).Marshal())
	if _, err := dst.HandleMME(off); err != nil {
		t.Fatal(err)
	}
	nw.Run(1e6)
	if got := dst.Captures(); len(got) != 0 {
		t.Errorf("%d captures with sniffer off", len(got))
	}
}

func TestHandleMMEErrors(t *testing.T) {
	_, devs, _ := buildPair(4)
	if _, err := devs[0].HandleMME(nil); err == nil {
		t.Error("nil request accepted")
	}
	if _, err := devs[0].HandleMME(mme(staAddr, hpav.MMType(0x6000), nil)); err == nil {
		t.Error("unsupported MMType accepted")
	}
	if _, err := devs[0].HandleMME(mme(staAddr, hpav.MMTypeStatsReq, []byte{1, 2})); err == nil {
		t.Error("truncated stats request accepted")
	}
}

// TestUDPEndToEnd runs the full Section 3.2 procedure over real UDP
// sockets: reset at every station, advance the virtual clock, fetch the
// counters, compute ΣCᵢ/ΣAᵢ.
func TestUDPEndToEnd(t *testing.T) {
	nw, devs, dst := buildPair(5)

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost(pc, nw)
	for _, d := range devs {
		host.Add(d)
	}
	host.Add(dst)
	done := make(chan error, 1)
	go func() { done <- host.Serve() }()
	defer func() {
		if err := host.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	cli, err := Dial(pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Timeout = 10 * time.Second

	// Reset every transmitter (paper step 1).
	for _, a := range []hpav.MAC{staAddr, sta2} {
		if err := cli.ResetLink(a, dstAddr, config.CA1); err != nil {
			t.Fatalf("reset %s: %v", a, err)
		}
	}
	// Run the test (10 virtual seconds).
	clock, err := cli.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if clock < 10_000_000 {
		t.Fatalf("clock %d after run", clock)
	}
	// Fetch and aggregate (paper step 2).
	var sumC, sumA uint64
	for _, a := range []hpav.MAC{staAddr, sta2} {
		c, err := cli.FetchLink(a, dstAddr, config.CA1)
		if err != nil {
			t.Fatalf("fetch %s: %v", a, err)
		}
		sumC += c.Collided
		sumA += c.Acked
	}
	if sumA == 0 {
		t.Fatal("no acknowledged MPDUs over UDP path")
	}
	p := float64(sumC) / float64(sumA)
	if p <= 0 || p > 0.3 {
		t.Errorf("N=2 collision probability over UDP = %v, outside plausible band", p)
	}

	// Clock query must not advance time.
	c1, err := cli.Clock()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cli.Clock()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("status query advanced the clock: %d → %d", c1, c2)
	}
}

func TestUDPSnifferToggle(t *testing.T) {
	nw, devs, dst := buildPair(6)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost(pc, nw)
	for _, d := range devs {
		host.Add(d)
	}
	host.Add(dst)
	go host.Serve()
	defer host.Close()

	cli, err := Dial(pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	cnf, err := cli.Sniffer(dstAddr, hpav.SnifferEnable)
	if err != nil {
		t.Fatal(err)
	}
	if cnf.State != hpav.SnifferEnable {
		t.Errorf("state %v", cnf.State)
	}
	if _, err := cli.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if caps := dst.Captures(); len(caps) == 0 {
		t.Error("no captures after UDP-enabled sniffer run")
	}
}

func TestHostIgnoresGarbage(t *testing.T) {
	nw, devs, _ := buildPair(7)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost(pc, nw)
	host.Add(devs[0])
	go host.Serve()
	defer host.Close()

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Garbage, then a valid request: the host must survive and answer.
	if _, err := conn.Write([]byte("not an mme")); err != nil {
		t.Fatal(err)
	}
	req := mme(staAddr, hpav.MMTypeStatsReq, (&hpav.StatsReq{
		Control: hpav.StatsFetch, Direction: hpav.DirectionTx,
		Priority: config.CA1, PeerAddress: dstAddr,
	}).Marshal())
	if _, err := conn.Write(req.Marshal()); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("no reply after garbage: %v", err)
	}
	f, err := hpav.Unmarshal(buf[:n])
	if err != nil || f.Type != hpav.MMTypeStatsCnf {
		t.Errorf("unexpected reply %v, %v", f, err)
	}
}

func TestBroadcastStatsReachesAll(t *testing.T) {
	nw, devs, dst := buildPair(8)
	nw.Run(1e6)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost(pc, nw)
	for _, d := range devs {
		host.Add(d)
	}
	host.Add(dst)
	go host.Serve()
	defer host.Close()

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := mme(hpav.Broadcast, hpav.MMTypeStatsReq, (&hpav.StatsReq{
		Control: hpav.StatsFetch, Direction: hpav.DirectionTx,
		Priority: config.CA1, PeerAddress: dstAddr,
	}).Marshal())
	if _, err := conn.Write(req.Marshal()); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	seen := map[hpav.MAC]bool{}
	for len(seen) < 3 {
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("after %d replies: %v", len(seen), err)
		}
		f, err := hpav.Unmarshal(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		seen[f.OSA] = true
	}
}

func TestDeviceNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(nil) accepted")
		}
	}()
	New(nil)
}
