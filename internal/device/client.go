package device

import (
	"fmt"
	"net"
	"time"

	"repro/internal/config"
	"repro/internal/hpav"
	"repro/internal/mac"
)

// Client is the tool-side MME endpoint: it sends requests to a Host and
// awaits the matching confirmations. Both cmd/ampstat and cmd/faifa are
// thin wrappers around it, mirroring how the original tools wrap raw
// Ethernet MME exchanges.
type Client struct {
	conn net.Conn
	// HostAddr is the client's own source MAC placed in the OSA field.
	HostAddr hpav.MAC
	// Timeout bounds each request/confirm exchange.
	Timeout time.Duration
}

// Dial connects a client to a host's UDP address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("device: dial %s: %w", addr, err)
	}
	return &Client{
		conn:     conn,
		HostAddr: hpav.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01},
		Timeout:  5 * time.Second,
	}, nil
}

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends a request frame and returns the first frame of the
// wanted type (skipping unrelated traffic such as sniffer indications).
func (c *Client) roundTrip(req *hpav.Frame, want hpav.MMType) (*hpav.Frame, error) {
	if err := c.conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
		return nil, err
	}
	if _, err := c.conn.Write(req.Marshal()); err != nil {
		return nil, fmt.Errorf("device: send %v: %w", req.Type, err)
	}
	buf := make([]byte, 64<<10)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("device: await %v: %w", want, err)
		}
		f, err := hpav.Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		if f.Type == want {
			// Copy the payload out of the receive buffer before reuse.
			p := make([]byte, len(f.Payload))
			copy(p, f.Payload)
			f.Payload = p
			return f, nil
		}
	}
}

// Stats performs one VS_STATS exchange against the device at target.
func (c *Client) Stats(target hpav.MAC, control hpav.StatsControl, dir hpav.StatsDirection,
	pri config.Priority, peer hpav.MAC) (*hpav.StatsCnf, error) {

	body := &hpav.StatsReq{Control: control, Direction: dir, Priority: pri, PeerAddress: peer}
	req := &hpav.Frame{
		ODA: target, OSA: c.HostAddr,
		Type: hpav.MMTypeStatsReq, OUI: hpav.IntellonOUI,
		Payload: body.Marshal(),
	}
	cnf, err := c.roundTrip(req, hpav.MMTypeStatsCnf)
	if err != nil {
		return nil, err
	}
	out, err := hpav.UnmarshalStatsCnf(cnf.Payload)
	if err != nil {
		return nil, err
	}
	if out.Status != hpav.StatsStatusSuccess {
		return nil, fmt.Errorf("device: stats status %d", out.Status)
	}
	return out, nil
}

// ResetLink clears the tx counters toward peer at the device, the
// start-of-test step of Section 3.2.
func (c *Client) ResetLink(target, peer hpav.MAC, pri config.Priority) error {
	_, err := c.Stats(target, hpav.StatsReset, hpav.DirectionTx, pri, peer)
	return err
}

// FetchLink retrieves the tx counters toward peer at the device, the
// end-of-test step of Section 3.2.
func (c *Client) FetchLink(target, peer hpav.MAC, pri config.Priority) (mac.LinkCounters, error) {
	cnf, err := c.Stats(target, hpav.StatsFetch, hpav.DirectionTx, pri, peer)
	if err != nil {
		return mac.LinkCounters{}, err
	}
	return mac.LinkCounters{Acked: cnf.Acked, Collided: cnf.Collided}, nil
}

// Sniffer toggles the sniffer mode of the device at target.
func (c *Client) Sniffer(target hpav.MAC, control hpav.SnifferControl) (*hpav.SnifferCnf, error) {
	body := &hpav.SnifferReq{Control: control}
	req := &hpav.Frame{
		ODA: target, OSA: c.HostAddr,
		Type: hpav.MMTypeSnifferReq, OUI: hpav.IntellonOUI,
		Payload: body.Marshal(),
	}
	cnf, err := c.roundTrip(req, hpav.MMTypeSnifferCnf)
	if err != nil {
		return nil, err
	}
	return hpav.UnmarshalSnifferCnf(cnf.Payload)
}

// Run advances the emulated power strip's virtual clock — the stand-in
// for letting a real test run for the given duration.
func (c *Client) Run(durationMicros uint64) (clockMicros uint64, err error) {
	body := &hpav.EmulatorReq{Op: hpav.EmulatorRun, DurationMicros: durationMicros}
	req := &hpav.Frame{
		ODA: hpav.Broadcast, OSA: c.HostAddr,
		Type: hpav.MMTypeEmulatorReq, OUI: hpav.IntellonOUI,
		Payload: body.Marshal(),
	}
	cnf, err := c.roundTrip(req, hpav.MMTypeEmulatorCnf)
	if err != nil {
		return 0, err
	}
	out, err := hpav.UnmarshalEmulatorCnf(cnf.Payload)
	if err != nil {
		return 0, err
	}
	return out.ClockMicros, nil
}

// ReadCaptures drains live VS_SNIFFER.IND datagrams until either max
// indications arrived or the socket stays quiet for the idle timeout.
// Other frame types received meanwhile are discarded.
func (c *Client) ReadCaptures(max int, idle time.Duration) ([]hpav.SnifferInd, error) {
	var out []hpav.SnifferInd
	buf := make([]byte, 64<<10)
	for max <= 0 || len(out) < max {
		if err := c.conn.SetReadDeadline(time.Now().Add(idle)); err != nil {
			return out, err
		}
		n, err := c.conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return out, nil // stream went quiet
			}
			return out, err
		}
		f, err := hpav.Unmarshal(buf[:n])
		if err != nil || f.Type != hpav.MMTypeSnifferInd {
			continue
		}
		ind, err := hpav.UnmarshalSnifferInd(f.Payload)
		if err != nil {
			continue
		}
		out = append(out, *ind)
	}
	return out, nil
}

// Clock queries the emulator's virtual clock.
func (c *Client) Clock() (uint64, error) {
	body := &hpav.EmulatorReq{Op: hpav.EmulatorStatus}
	req := &hpav.Frame{
		ODA: hpav.Broadcast, OSA: c.HostAddr,
		Type: hpav.MMTypeEmulatorReq, OUI: hpav.IntellonOUI,
		Payload: body.Marshal(),
	}
	cnf, err := c.roundTrip(req, hpav.MMTypeEmulatorCnf)
	if err != nil {
		return 0, err
	}
	out, err := hpav.UnmarshalEmulatorCnf(cnf.Payload)
	if err != nil {
		return 0, err
	}
	return out.ClockMicros, nil
}
