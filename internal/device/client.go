package device

import (
	"fmt"
	"net"
	"time"

	"repro/internal/config"
	"repro/internal/hpav"
	"repro/internal/mac"
)

// Client is the tool-side MME endpoint: it sends requests to a Host and
// awaits the matching confirmations. Both cmd/ampstat and cmd/faifa are
// thin wrappers around it, mirroring how the original tools wrap raw
// Ethernet MME exchanges.
type Client struct {
	conn net.Conn
	// HostAddr is the client's own source MAC placed in the OSA field.
	HostAddr hpav.MAC
	// Timeout bounds each attempt of a request/confirm exchange.
	Timeout time.Duration
	// dirty records that an attempt timed out with a request in flight,
	// so its confirmation may still arrive and must be drained before
	// the next exchange (confirmations carry no correlation id).
	dirty bool
}

// Dial connects a client to a host's UDP address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("device: dial %s: %w", addr, err)
	}
	if uc, ok := conn.(*net.UDPConn); ok {
		// A sniffer-enabled run floods the socket with VS_SNIFFER.IND
		// datagrams; a larger receive buffer keeps the flood from
		// evicting the confirmation the client is actually waiting for.
		_ = uc.SetReadBuffer(4 << 20)
	}
	return &Client{
		conn:     conn,
		HostAddr: hpav.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01},
		Timeout:  5 * time.Second,
	}, nil
}

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends a request frame and returns the first frame of the
// wanted type (skipping unrelated traffic such as sniffer indications).
// It retries with the same request; callers whose request is not
// idempotent use exchange with a distinct probe directly.
func (c *Client) roundTrip(req *hpav.Frame, want hpav.MMType) (*hpav.Frame, error) {
	return c.exchange(req, req, want)
}

// exchangeAttempts bounds how many times exchange (re-)sends before
// giving up; each attempt waits up to Client.Timeout.
const exchangeAttempts = 3

// exchange sends req and awaits the first frame of the wanted type.
// UDP offers no delivery guarantee — a capture flood can overflow the
// tool-side socket and drop the confirmation — so instead of failing on
// a single fixed deadline, exchange retries: when an attempt times out
// it sends probe and waits again. probe must be an idempotent request
// eliciting the same confirmation type (for idempotent requests
// probe == req; Run implements its own retry loop because advancing the
// clock is not idempotent).
//
// Confirmations carry no correlation id, so a retry can leave an
// orphaned duplicate behind (the original confirmation was queued, not
// dropped). After any timed-out attempt the socket is marked dirty and
// drained before the next exchange, so a stale confirmation is never
// mistaken for a fresh one.
func (c *Client) exchange(req, probe *hpav.Frame, want hpav.MMType) (*hpav.Frame, error) {
	return c.exchangeChecked(req, probe, want, nil)
}

// exchangeChecked is exchange with an acceptance check: a non-nil
// accept may reject the confirmation, aborting the exchange with its
// error. Run uses it to validate the emulator clock without
// duplicating the retry loop.
func (c *Client) exchangeChecked(req, probe *hpav.Frame, want hpav.MMType, accept func(*hpav.Frame) error) (*hpav.Frame, error) {
	buf := make([]byte, 64<<10)
	if c.dirty {
		c.drain(buf)
		c.dirty = false
	}
	send := req
	var lastErr error
	for attempt := 0; attempt < exchangeAttempts; attempt++ {
		f, timedOut, err := c.attempt(send, want, buf, attempt)
		if f != nil {
			if accept != nil {
				if err := accept(f); err != nil {
					return nil, err
				}
			}
			return f, nil
		}
		if !timedOut {
			return nil, err
		}
		lastErr = err
		send = probe
	}
	return nil, lastErr
}

// drain discards every datagram already queued on the socket — orphaned
// confirmations from timed-out exchanges and leftover capture
// indications — so the next exchange starts from a clean buffer.
func (c *Client) drain(buf []byte) {
	for {
		if err := c.conn.SetReadDeadline(time.Now().Add(time.Millisecond)); err != nil {
			return
		}
		if _, err := c.conn.Read(buf); err != nil {
			return
		}
	}
}

// attempt performs one send + deadline-bounded await for a frame of the
// wanted type (skipping unrelated traffic such as sniffer indications).
// timedOut distinguishes a read deadline (retryable) from a hard error.
func (c *Client) attempt(send *hpav.Frame, want hpav.MMType, buf []byte, attempt int) (f *hpav.Frame, timedOut bool, err error) {
	if err := c.conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
		return nil, false, err
	}
	if _, err := c.conn.Write(send.Marshal()); err != nil {
		return nil, false, fmt.Errorf("device: send %v: %w", send.Type, err)
	}
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				c.dirty = true // the reply may still arrive; drain later
				return nil, true, fmt.Errorf("device: await %v (attempt %d/%d): %w", want, attempt+1, exchangeAttempts, err)
			}
			return nil, false, fmt.Errorf("device: await %v: %w", want, err)
		}
		f, err := hpav.Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		if f.Type == want {
			// Copy the payload out of the receive buffer before reuse.
			p := make([]byte, len(f.Payload))
			copy(p, f.Payload)
			f.Payload = p
			return f, false, nil
		}
	}
}

// Stats performs one VS_STATS exchange against the device at target.
func (c *Client) Stats(target hpav.MAC, control hpav.StatsControl, dir hpav.StatsDirection,
	pri config.Priority, peer hpav.MAC) (*hpav.StatsCnf, error) {

	body := &hpav.StatsReq{Control: control, Direction: dir, Priority: pri, PeerAddress: peer}
	req := &hpav.Frame{
		ODA: target, OSA: c.HostAddr,
		Type: hpav.MMTypeStatsReq, OUI: hpav.IntellonOUI,
		Payload: body.Marshal(),
	}
	cnf, err := c.roundTrip(req, hpav.MMTypeStatsCnf)
	if err != nil {
		return nil, err
	}
	out, err := hpav.UnmarshalStatsCnf(cnf.Payload)
	if err != nil {
		return nil, err
	}
	if out.Status != hpav.StatsStatusSuccess {
		return nil, fmt.Errorf("device: stats status %d", out.Status)
	}
	return out, nil
}

// ResetLink clears the tx counters toward peer at the device, the
// start-of-test step of Section 3.2.
func (c *Client) ResetLink(target, peer hpav.MAC, pri config.Priority) error {
	_, err := c.Stats(target, hpav.StatsReset, hpav.DirectionTx, pri, peer)
	return err
}

// FetchLink retrieves the tx counters toward peer at the device, the
// end-of-test step of Section 3.2.
func (c *Client) FetchLink(target, peer hpav.MAC, pri config.Priority) (mac.LinkCounters, error) {
	cnf, err := c.Stats(target, hpav.StatsFetch, hpav.DirectionTx, pri, peer)
	if err != nil {
		return mac.LinkCounters{}, err
	}
	return mac.LinkCounters{Acked: cnf.Acked, Collided: cnf.Collided}, nil
}

// Sniffer toggles the sniffer mode of the device at target.
func (c *Client) Sniffer(target hpav.MAC, control hpav.SnifferControl) (*hpav.SnifferCnf, error) {
	body := &hpav.SnifferReq{Control: control}
	req := &hpav.Frame{
		ODA: target, OSA: c.HostAddr,
		Type: hpav.MMTypeSnifferReq, OUI: hpav.IntellonOUI,
		Payload: body.Marshal(),
	}
	cnf, err := c.roundTrip(req, hpav.MMTypeSnifferCnf)
	if err != nil {
		return nil, err
	}
	return hpav.UnmarshalSnifferCnf(cnf.Payload)
}

// Run advances the emulated power strip's virtual clock — the stand-in
// for letting a real test run for the given duration. Advancing the
// clock is not idempotent, and either direction of the exchange can
// lose a datagram (a sniffer capture flood can overflow a socket), so
// Run brackets the exchange with the expected final clock: it reads the
// clock first, sends the run request exactly once, and from then on
// only probes with idempotent status queries. A probe answer at or past
// start+duration means the run completed and only its confirmation was
// lost; an answer short of it proves the run request never reached the
// host (the host serializes exchanges in arrival order), which Run
// reports as an error — it deliberately never re-sends the run op,
// because a confirmation that was merely delayed rather than dropped
// would otherwise let a retry advance the clock twice.
func (c *Client) Run(durationMicros uint64) (clockMicros uint64, err error) {
	start, err := c.Clock()
	if err != nil {
		return 0, fmt.Errorf("device: run: read clock: %w", err)
	}
	want := start + durationMicros
	run := &hpav.Frame{
		ODA: hpav.Broadcast, OSA: c.HostAddr,
		Type: hpav.MMTypeEmulatorReq, OUI: hpav.IntellonOUI,
		Payload: (&hpav.EmulatorReq{Op: hpav.EmulatorRun, DurationMicros: durationMicros}).Marshal(),
	}
	status := &hpav.Frame{
		ODA: hpav.Broadcast, OSA: c.HostAddr,
		Type: hpav.MMTypeEmulatorReq, OUI: hpav.IntellonOUI,
		Payload: (&hpav.EmulatorReq{Op: hpav.EmulatorStatus}).Marshal(),
	}
	var clock uint64
	if _, err := c.exchangeChecked(run, status, hpav.MMTypeEmulatorCnf, func(cnf *hpav.Frame) error {
		out, err := hpav.UnmarshalEmulatorCnf(cnf.Payload)
		if err != nil {
			return err
		}
		if out.ClockMicros < want {
			return fmt.Errorf("device: run: clock %d short of %d; run request lost", out.ClockMicros, want)
		}
		clock = out.ClockMicros
		return nil
	}); err != nil {
		return 0, err
	}
	return clock, nil
}

// ReadCaptures drains live VS_SNIFFER.IND datagrams until either max
// indications arrived or the socket stays quiet for the idle timeout.
// Other frame types received meanwhile are discarded.
func (c *Client) ReadCaptures(max int, idle time.Duration) ([]hpav.SnifferInd, error) {
	var out []hpav.SnifferInd
	buf := make([]byte, 64<<10)
	for max <= 0 || len(out) < max {
		if err := c.conn.SetReadDeadline(time.Now().Add(idle)); err != nil {
			return out, err
		}
		n, err := c.conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return out, nil // stream went quiet
			}
			return out, err
		}
		f, err := hpav.Unmarshal(buf[:n])
		if err != nil || f.Type != hpav.MMTypeSnifferInd {
			continue
		}
		ind, err := hpav.UnmarshalSnifferInd(f.Payload)
		if err != nil {
			continue
		}
		out = append(out, *ind)
	}
	return out, nil
}

// Clock queries the emulator's virtual clock.
func (c *Client) Clock() (uint64, error) {
	body := &hpav.EmulatorReq{Op: hpav.EmulatorStatus}
	req := &hpav.Frame{
		ODA: hpav.Broadcast, OSA: c.HostAddr,
		Type: hpav.MMTypeEmulatorReq, OUI: hpav.IntellonOUI,
		Payload: body.Marshal(),
	}
	cnf, err := c.roundTrip(req, hpav.MMTypeEmulatorCnf)
	if err != nil {
		return 0, err
	}
	out, err := hpav.UnmarshalEmulatorCnf(cnf.Payload)
	if err != nil {
		return 0, err
	}
	return out.ClockMicros, nil
}
