package device

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"repro/internal/hpav"
	"repro/internal/mac"
)

// Host exposes a set of emulated devices — one power strip — over a UDP
// socket. The reimplemented measurement tools address individual
// devices by MAC inside the MME frame (the ODA field), exactly as the
// real tools address adapters over raw Ethernet; UDP stands in for the
// host's Ethernet link to each adapter.
//
// The host also answers the VS_EMULATOR control MME, which advances the
// shared virtual clock (the stand-in for "let the test run for 240
// seconds"). Management queries and clock advancement are serialized:
// a stats fetch never observes a half-run test.
type Host struct {
	pc      net.PacketConn
	network *mac.Network

	mu      sync.Mutex
	devices map[hpav.MAC]*Device

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewHost creates a host bound to the given packet connection (usually
// a 127.0.0.1 UDP socket) coordinating the given network.
func NewHost(pc net.PacketConn, network *mac.Network) *Host {
	if pc == nil {
		panic("device: NewHost: nil packet conn")
	}
	if network == nil {
		panic("device: NewHost: nil network")
	}
	return &Host{
		pc:      pc,
		network: network,
		devices: make(map[hpav.MAC]*Device),
		closed:  make(chan struct{}),
	}
}

// Add registers a device with the host.
func (h *Host) Add(d *Device) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.devices[d.Addr()]; dup {
		panic(fmt.Sprintf("device: duplicate device %s", d.Addr()))
	}
	h.devices[d.Addr()] = d
}

// Addr returns the UDP address the host listens on.
func (h *Host) Addr() net.Addr { return h.pc.LocalAddr() }

// Serve processes management datagrams until Close. It is typically run
// in its own goroutine.
func (h *Host) Serve() error {
	buf := make([]byte, 64<<10)
	for {
		n, from, err := h.pc.ReadFrom(buf)
		if err != nil {
			select {
			case <-h.closed:
				return nil
			default:
				return fmt.Errorf("device: host read: %w", err)
			}
		}
		replies := h.dispatch(buf[:n], from)
		for _, r := range replies {
			if _, err := h.pc.WriteTo(r, from); err != nil {
				return fmt.Errorf("device: host write: %w", err)
			}
		}
	}
}

// dispatch decodes one datagram and routes it; it returns the encoded
// replies (possibly several for broadcast requests). Sniffer-mode
// requests additionally subscribe the requester: captured delimiters
// are pushed to it live as VS_SNIFFER.IND datagrams, the way faifa
// receives indications from a real adapter.
func (h *Host) dispatch(datagram []byte, from net.Addr) [][]byte {
	f, err := hpav.Unmarshal(datagram)
	if err != nil {
		return nil // malformed frames are dropped, as on a real wire
	}

	if f.Type == hpav.MMTypeEmulatorReq {
		if r := h.handleEmulator(f); r != nil {
			return [][]byte{r}
		}
		return nil
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	var out [][]byte
	if f.ODA == hpav.Broadcast {
		// Reply in MAC order: broadcast responses land on the wire in
		// iteration order, and map order is randomized per process.
		addrs := make([]hpav.MAC, 0, len(h.devices))
		for a := range h.devices {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool {
			return bytes.Compare(addrs[i][:], addrs[j][:]) < 0
		})
		for _, a := range addrs {
			if reply, err := h.devices[a].HandleMME(f); err == nil {
				out = append(out, reply.Marshal())
			}
		}
		return out
	}
	d := h.devices[f.ODA]
	if d == nil {
		return nil // no adapter at that address
	}
	reply, err := d.HandleMME(f)
	if err != nil {
		return nil
	}
	if f.Type == hpav.MMTypeSnifferReq {
		h.updateSnifferSink(d, from)
	}
	return [][]byte{reply.Marshal()}
}

// updateSnifferSink subscribes (or unsubscribes) the tool at from to
// the device's live capture stream, based on the sniffer state the
// request just set.
func (h *Host) updateSnifferSink(d *Device, from net.Addr) {
	if !d.SnifferEnabled() {
		d.SetSnifferSink(nil)
		return
	}
	deviceAddr := d.Addr()
	d.SetSnifferSink(func(ind hpav.SnifferInd) {
		frame := &hpav.Frame{
			ODA:     hpav.Broadcast, // to the host interface
			OSA:     deviceAddr,
			Type:    hpav.MMTypeSnifferInd,
			OUI:     hpav.IntellonOUI,
			Payload: ind.Marshal(),
		}
		// Best effort: a full tool-side socket buffer drops
		// indications, exactly as a flooded capture does.
		_, _ = h.pc.WriteTo(frame.Marshal(), from)
	})
}

// handleEmulator advances or reports the virtual clock.
func (h *Host) handleEmulator(f *hpav.Frame) []byte {
	req, err := hpav.UnmarshalEmulatorReq(f.Payload)
	if err != nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	status := uint8(0)
	if req.Op == hpav.EmulatorRun {
		h.network.Run(float64(req.DurationMicros))
	}
	cnf := &hpav.EmulatorCnf{Status: status, ClockMicros: uint64(h.network.Now())}
	reply := &hpav.Frame{
		ODA:     f.OSA,
		OSA:     hpav.MAC{0x00, 0xB0, 0x52, 0xEE, 0xEE, 0xEE}, // the strip itself
		Type:    hpav.MMTypeEmulatorCnf,
		OUI:     hpav.IntellonOUI,
		Payload: cnf.Marshal(),
	}
	return reply.Marshal()
}

// Close stops Serve and releases the socket.
func (h *Host) Close() error {
	select {
	case <-h.closed:
		return errors.New("device: host already closed")
	default:
	}
	close(h.closed)
	err := h.pc.Close()
	h.wg.Wait()
	return err
}
