package statcheck

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestBinomialProbExact(t *testing.T) {
	// C(10, 3)·0.6³·0.4⁷ — small enough to check by hand.
	want := 120 * math.Pow(0.6, 3) * math.Pow(0.4, 7)
	if got := BinomialProb(3, 10, 0.6); math.Abs(got-want) > 1e-15 {
		t.Errorf("BinomialProb(3,10,0.6) = %v, want %v", got, want)
	}
	if BinomialProb(-1, 10, 0.5) != 0 || BinomialProb(11, 10, 0.5) != 0 {
		t.Error("out-of-range k should have probability 0")
	}
	// The big-integer path must survive a trial count where naive
	// factorials overflow float64.
	var sum float64
	for k := int64(0); k <= 500; k++ {
		sum += BinomialProb(k, 500, 0.95)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Binomial(500, 0.95) mass sums to %v", sum)
	}
}

func TestBinomialLowerTail(t *testing.T) {
	// P(X ≤ 5 | n=10, p=0.5) = 0.623046875 exactly.
	if got := BinomialLowerTail(5, 10, 0.5); math.Abs(got-0.623046875) > 1e-12 {
		t.Errorf("lower tail = %v, want 0.623046875", got)
	}
	if got := BinomialLowerTail(10, 10, 0.5); got != 1 {
		t.Errorf("full tail = %v, want 1", got)
	}
	// Monotone in k.
	prev := 0.0
	for k := int64(0); k <= 20; k++ {
		cur := BinomialLowerTail(k, 20, 0.3)
		if cur < prev {
			t.Fatalf("tail not monotone at k=%d: %v < %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestSeedDeterministicAndDecorrelated(t *testing.T) {
	if Seed(42, 0) != Seed(42, 0) {
		t.Error("Seed not deterministic")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		s := Seed(42, i)
		if seen[s] {
			t.Fatalf("seed collision at trial %d", i)
		}
		seen[s] = true
	}
	if Seed(1, 0) == Seed(2, 0) {
		t.Error("different bases share a trial seed")
	}
}

func TestCoverageTally(t *testing.T) {
	var c Coverage
	if c.Rate() != 0 {
		t.Error("empty rate")
	}
	c.Observe(true)
	c.Observe(false)
	c.Observe(true)
	if c.Trials != 3 || c.Covered != 2 {
		t.Errorf("tally %+v", c)
	}
	if math.Abs(c.Rate()-2.0/3) > 1e-12 {
		t.Errorf("rate %v", c.Rate())
	}
}

func TestRunIsDeterministic(t *testing.T) {
	trial := func(i int, seed uint64) bool { return seed%3 != 0 }
	a := Run(100, 7, trial)
	b := Run(100, 7, trial)
	if a != b {
		t.Errorf("Run not deterministic: %+v vs %+v", a, b)
	}
	if a.Trials != 100 {
		t.Errorf("ran %d trials", a.Trials)
	}
}

// gauss draws a standard normal via Box–Muller from the repo's seeded
// generator.
func gauss(src *rng.Source) float64 {
	u := src.Float64()
	for u == 0 {
		u = src.Float64()
	}
	v := src.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// coverageAtN runs the canonical experiment these assertions exist for:
// repeatedly draw n Gaussians, build a mean interval with the given
// critical value, and tally how often it covers the true mean.
func coverageAtN(n int, crit float64, trials int) Coverage {
	return Run(trials, 0xc0ffee, func(i int, seed uint64) bool {
		src := rng.New(seed)
		var a stats.Accumulator
		for j := 0; j < n; j++ {
			a.Add(gauss(src))
		}
		half := crit * a.StdDev() / math.Sqrt(float64(n))
		return math.Abs(a.Mean()) <= half
	})
}

// TestStudentTCoversZDoesNot is the negative control for the whole
// package: at n=3 the Student-t interval (t(0.975,2) = 4.303) must pass
// the ≥93% coverage bound while the normal-1.96 interval — the bug the
// z→t fix removed — must fail it decisively. If statcheck cannot tell
// those two estimators apart, none of the downstream acceptance tests
// mean anything.
func TestStudentTCoversZDoesNot(t *testing.T) {
	const trials = 600
	tCov := coverageAtN(3, stats.TCrit95(2), trials)
	if tCov.Rate() < 0.93 {
		t.Errorf("Student-t coverage %s below 93%%", tCov)
	}
	zCov := coverageAtN(3, 1.96, trials)
	// True z coverage at n=3 is ≈ 81%; anywhere near the bound means
	// the harness lost its power to detect the historical bug.
	if zCov.Rate() >= 0.90 {
		t.Errorf("normal-approximation interval covered %s — statcheck can no longer distinguish z from t at n=3", zCov)
	}
	// And the p-value machinery must flag it as wildly incompatible
	// with nominal 95% coverage.
	pval := BinomialLowerTail(int64(zCov.Covered), int64(zCov.Trials), 0.95)
	if pval > 1e-6 {
		t.Errorf("z-interval p-value %v too large; tally %s", pval, zCov)
	}
}

func TestAssertAtLeastPasses(t *testing.T) {
	c := Coverage{Trials: 100, Covered: 95}
	c.AssertAtLeast(t, 0.93, 0.95) // must not fail the test
}

func TestAssertUnbiasedPasses(t *testing.T) {
	AssertUnbiased(t, "mean", 0.1, 0.05, 0.05, 4) // z = 1, fine
}

// The assertions must actually fail failing inputs; run them against a
// scratch recorder rather than this test's own t.
type recorder struct {
	testing.TB
	failed bool
}

func (r *recorder) Helper()                       {}
func (r *recorder) Errorf(string, ...interface{}) { r.failed = true }
func (r *recorder) Fatal(args ...interface{})     { r.failed = true }
func (r *recorder) Fatalf(string, ...interface{}) { r.failed = true }

func TestAssertAtLeastFlagsRegression(t *testing.T) {
	r := &recorder{}
	Coverage{Trials: 200, Covered: 160}.AssertAtLeast(r, 0.93, 0.95)
	if !r.failed {
		t.Error("80% coverage passed a 93% bound")
	}
}

func TestAssertUnbiasedFlagsBias(t *testing.T) {
	r := &recorder{}
	AssertUnbiased(r, "mean", 1.0, 0.1, 0.0, 4) // z = 10
	if !r.failed {
		t.Error("10-sigma bias passed")
	}
	r2 := &recorder{}
	AssertUnbiased(r2, "mean", 0, 0, 0, 4)
	if !r2.failed {
		t.Error("zero standard error accepted")
	}
}
