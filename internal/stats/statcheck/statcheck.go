// Package statcheck turns statistical correctness claims — "this
// estimator is unbiased", "this 95% interval really covers ≥93% of the
// time" — into reusable, deterministic test assertions. Estimator bugs
// rarely fail an example-based test: a subtly wrong interval still
// contains the truth on most seeds. What distinguishes a correct
// estimator from a subtly wrong one is the *rate* at which it covers
// over many independent trials, so the assertions here run seeded trial
// loops and test the observed rate against an exact binomial tail (the
// big.Int.Binomial idiom, so no approximation error hides a regression
// at the a few-hundred-trial scale CI budgets allow).
package statcheck

import (
	"fmt"
	"math"
	"math/big"
	"testing"
)

// golden is the SplitMix64 increment; Seed derives per-trial seeds with
// it so trial i's randomness is a pure function of (base, i) — the same
// scheme the scenario layer uses for per-replication seeds.
const golden = 0x9e3779b97f4a7c15

// Seed returns the deterministic seed for trial i of a loop keyed by
// base. Adjacent trials get decorrelated seeds; the mapping is stable
// across runs and platforms, which is what lets a coverage bound be
// pinned in CI.
func Seed(base uint64, i int) uint64 {
	z := base + golden*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// BinomialProb returns P(X = k) for X ~ Binomial(n, p), computed with
// an exact big-integer binomial coefficient so it stays accurate where
// the naive factorial form overflows (fine through a few thousand
// trials; beyond that the float64 power terms underflow first).
func BinomialProb(k, n int64, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	f := new(big.Float).SetInt(new(big.Int).Binomial(n, k))
	f.Mul(f, big.NewFloat(math.Pow(p, float64(k))))
	f.Mul(f, big.NewFloat(math.Pow(1-p, float64(n-k))))
	out, _ := f.Float64()
	return out
}

// BinomialLowerTail returns P(X ≤ k) for X ~ Binomial(n, p): the exact
// probability of seeing k or fewer successes in n trials. A coverage
// regression test uses it as a p-value — "if the interval really
// covered at rate p, how unlikely is a count this low?"
func BinomialLowerTail(k, n int64, p float64) float64 {
	var sum float64
	for i := int64(0); i <= k; i++ {
		sum += BinomialProb(i, n, p)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Coverage tallies a trial loop: how many trials ran, and in how many
// the interval under test covered the truth.
type Coverage struct {
	Trials  int
	Covered int
}

// Observe records one trial.
func (c *Coverage) Observe(covered bool) {
	c.Trials++
	if covered {
		c.Covered++
	}
}

// Rate returns the empirical coverage fraction (0 for an empty tally).
func (c Coverage) Rate() float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Covered) / float64(c.Trials)
}

func (c Coverage) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", c.Covered, c.Trials, 100*c.Rate())
}

// Run executes a deterministic trial loop: trial i receives
// Seed(base, i) and reports whether its interval covered the truth.
func Run(trials int, base uint64, trial func(i int, seed uint64) bool) Coverage {
	var c Coverage
	for i := 0; i < trials; i++ {
		c.Observe(trial(i, Seed(base, i)))
	}
	return c
}

// AssertAtLeast fails the test when the empirical coverage falls below
// bound. The failure message includes the exact binomial p-value of the
// observed count under a true coverage of nominal (e.g. 0.95), so a
// flagged regression shows how incompatible the tally is with a correct
// interval — a near-miss on an unlucky seed reads very differently from
// a collapsed estimator.
func (c Coverage) AssertAtLeast(t testing.TB, bound, nominal float64) {
	t.Helper()
	if c.Trials == 0 {
		t.Fatal("statcheck: coverage assertion over zero trials")
	}
	if c.Rate() < bound {
		pval := BinomialLowerTail(int64(c.Covered), int64(c.Trials), nominal)
		t.Errorf("coverage %s below the %.0f%% bound (P[X ≤ %d | n=%d, p=%.2f] = %.2g)",
			c, 100*bound, c.Covered, c.Trials, nominal, pval)
	}
}

// AssertUnbiased fails when the sample mean of an estimator sits more
// than zmax standard errors from the truth — a seeded z-test for bias.
// With zmax = 4 a correct estimator fails with probability ~6e-5 per
// check, while an estimator biased by even one standard error gets
// caught as soon as the trial count pushes the standard error below a
// quarter of the bias.
func AssertUnbiased(t testing.TB, name string, mean, stderr, truth, zmax float64) {
	t.Helper()
	if !(stderr > 0) {
		t.Fatalf("statcheck: %s: nonpositive standard error %v", name, stderr)
	}
	z := (mean - truth) / stderr
	if math.Abs(z) > zmax {
		t.Errorf("%s biased: mean %v vs truth %v is %.1f standard errors (limit %.1f)",
			name, mean, truth, z, zmax)
	}
}
