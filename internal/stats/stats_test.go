package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary %+v", s)
	}
	want := math.Sqrt(2.5) // sample variance of 1..5 is 2.5
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("stddev %v, want %v", s.StdDev, want)
	}
	wantCI := 2.776 * want / math.Sqrt(5) // t(0.975, 4) = 2.776
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Errorf("ci95 %v, want %v", s.CI95, wantCI)
	}
}

// TestTCrit95Quantiles pins the Student-t critical values the CI uses —
// in particular the n=3 (df=2) value, which is 2.2× the normal 1.96 the
// old code hardcoded, and the n=30 (df=29) value near the normal limit.
func TestTCrit95Quantiles(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706},
		{2, 4.303}, // n=3, the quick-run rep count
		{4, 2.776},
		{29, 2.045}, // n=30
		{30, 2.042},
	}
	for _, tc := range cases {
		if got := TCrit95(tc.df); got != tc.want {
			t.Errorf("TCrit95(%d) = %v, want %v", tc.df, got, tc.want)
		}
	}
	// Beyond the table: monotone decreasing toward the normal quantile.
	prev := TCrit95(30)
	for _, df := range []int{31, 40, 60, 120, 1000, 100000} {
		got := TCrit95(df)
		if got > prev+1e-12 {
			t.Errorf("TCrit95 not decreasing at df=%d: %v > %v", df, got, prev)
		}
		if got < 1.9599 {
			t.Errorf("TCrit95(%d) = %v fell below the normal quantile", df, got)
		}
		prev = got
	}
	if got := TCrit95(100000); math.Abs(got-1.95996) > 1e-3 {
		t.Errorf("TCrit95(1e5) = %v, want ≈ 1.96", got)
	}
	// t(0.975, 40) = 2.0211; the tail expansion must be ~1e-4 accurate.
	if got := TCrit95(40); math.Abs(got-2.0211) > 5e-4 {
		t.Errorf("TCrit95(40) = %v, want ≈ 2.0211", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("TCrit95(0) accepted")
		}
	}()
	TCrit95(0)
}

// TestSummarizeCIUsesStudentT: the CI of a 3-sample summary must carry
// the t(0.975, 2) = 4.303 multiplier, not the normal 1.96.
func TestSummarizeCIUsesStudentT(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	want := 4.303 * s.StdDev / math.Sqrt(3)
	if math.Abs(s.CI95-want) > 1e-12 {
		t.Errorf("n=3 ci95 = %v, want %v (2.2× the normal approximation)", s.CI95, want)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.StdDev != 0 || s.CI95 != 0 {
		t.Errorf("single-sample summary %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty sample accepted")
		}
	}()
	Summarize(nil)
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	for _, want := range []string{"2", "n=3"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
	if got := Mean([]float64{1, 2, 6}); math.Abs(got-3) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd Median = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("even Median = %v", got)
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median sorted the caller's slice")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct{ q, want float64 }{
		{0, 0}, {1, 10}, {0.5, 5}, {0.25, 2.5}, {-1, 0}, {2, 10},
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("under %d", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("over %d (10 and 42 are ≥ max)", h.Over)
	}
	if h.Counts[0] != 2 { // 0, 1.9
		t.Errorf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin 1 = %d", h.Counts[1])
	}
	if h.Counts[2] != 1 { // 5
		t.Errorf("bin 2 = %d", h.Counts[2])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Errorf("bin 4 = %d", h.Counts[4])
	}
	if h.Total() != 8 {
		t.Errorf("total %d", h.Total())
	}
	// Mode: bin 0 has 2 entries → midpoint 1.
	if got := h.Mode(); math.Abs(got-1) > 1e-12 {
		t.Errorf("mode %v", got)
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, mk := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
		func() { NewHistogram(10, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid histogram accepted")
				}
			}()
			mk()
		}()
	}
}

func TestEmptyHistogramMode(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Mode() != 0 {
		t.Errorf("empty mode %v", h.Mode())
	}
}

// Property: the summary's bounds and ordering invariants hold.
func TestSummaryInvariantsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		if s.Min > s.Mean || s.Mean > s.Max {
			return false
		}
		if s.StdDev < 0 || s.CI95 < 0 {
			return false
		}
		return s.N == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a := float64(qa) / 255
		b := float64(qb) / 255
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: histogram never loses a sample.
func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []int8) bool {
		h := NewHistogram(-50, 50, 7)
		for _, r := range raw {
			h.Add(float64(r))
		}
		return h.Total() == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: an Accumulator fed a sample one value at a time agrees with
// the two-pass Summarize to within rounding on every statistic, and its
// CI uses the same Student-t critical values.
func TestAccumulatorMatchesSummarize(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var a Accumulator
		for i, r := range raw {
			xs[i] = float64(r) / 7
			a.Add(xs[i])
		}
		want := Summarize(xs)
		got := a.Summary()
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
			return false
		}
		close := func(x, y float64) bool {
			return math.Abs(x-y) <= 1e-9*(1+math.Abs(x)+math.Abs(y))
		}
		return close(got.Mean, want.Mean) && close(got.StdDev, want.StdDev) && close(got.CI95, want.CI95)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: merging shard accumulators equals accumulating the
// concatenated sample, whatever the split point.
func TestAccumulatorMergeProperty(t *testing.T) {
	f := func(raw []int16, cut uint8) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 3
		}
		k := 0
		if len(xs) > 0 {
			k = int(cut) % (len(xs) + 1)
		}
		var whole, left, right Accumulator
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			left.Add(x)
		}
		for _, x := range xs[k:] {
			right.Add(x)
		}
		left.Merge(right)
		if whole.N() != left.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		close := func(x, y float64) bool {
			return math.Abs(x-y) <= 1e-9*(1+math.Abs(x)+math.Abs(y))
		}
		return close(whole.Mean(), left.Mean()) && close(whole.StdDev(), left.StdDev())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorStudentT(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{1, 2, 3} {
		a.Add(x)
	}
	// n = 3 → t(0.975, 2) = 4.303, not the normal 1.96.
	want := 4.303 * a.StdDev() / math.Sqrt(3)
	if math.Abs(a.CI95()-want) > 1e-12 {
		t.Errorf("CI95 = %v, want %v (Student-t at df=2)", a.CI95(), want)
	}
	if a.CI95() == 0 {
		t.Error("CI95 = 0 for a 3-value sample")
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.StdDev() != 0 || a.CI95() != 0 {
		t.Errorf("zero Accumulator not zero-valued: %+v", a)
	}
	defer func() {
		if recover() == nil {
			t.Error("Summary of empty Accumulator did not panic")
		}
	}()
	a.Summary()
}
