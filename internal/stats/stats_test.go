package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary %+v", s)
	}
	want := math.Sqrt(2.5) // sample variance of 1..5 is 2.5
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("stddev %v, want %v", s.StdDev, want)
	}
	wantCI := 1.96 * want / math.Sqrt(5)
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Errorf("ci95 %v, want %v", s.CI95, wantCI)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.StdDev != 0 || s.CI95 != 0 {
		t.Errorf("single-sample summary %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty sample accepted")
		}
	}()
	Summarize(nil)
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	for _, want := range []string{"2", "n=3"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
	if got := Mean([]float64{1, 2, 6}); math.Abs(got-3) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd Median = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("even Median = %v", got)
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median sorted the caller's slice")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct{ q, want float64 }{
		{0, 0}, {1, 10}, {0.5, 5}, {0.25, 2.5}, {-1, 0}, {2, 10},
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("under %d", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("over %d (10 and 42 are ≥ max)", h.Over)
	}
	if h.Counts[0] != 2 { // 0, 1.9
		t.Errorf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin 1 = %d", h.Counts[1])
	}
	if h.Counts[2] != 1 { // 5
		t.Errorf("bin 2 = %d", h.Counts[2])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Errorf("bin 4 = %d", h.Counts[4])
	}
	if h.Total() != 8 {
		t.Errorf("total %d", h.Total())
	}
	// Mode: bin 0 has 2 entries → midpoint 1.
	if got := h.Mode(); math.Abs(got-1) > 1e-12 {
		t.Errorf("mode %v", got)
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, mk := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
		func() { NewHistogram(10, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid histogram accepted")
				}
			}()
			mk()
		}()
	}
}

func TestEmptyHistogramMode(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Mode() != 0 {
		t.Errorf("empty mode %v", h.Mode())
	}
}

// Property: the summary's bounds and ordering invariants hold.
func TestSummaryInvariantsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		if s.Min > s.Mean || s.Mean > s.Max {
			return false
		}
		if s.StdDev < 0 || s.CI95 < 0 {
			return false
		}
		return s.N == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a := float64(qa) / 255
		b := float64(qb) / 255
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: histogram never loses a sample.
func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []int8) bool {
		h := NewHistogram(-50, 50, 7)
		for _, r := range raw {
			h.Add(float64(r))
		}
		return h.Total() == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
