package stats

import (
	"fmt"
	"math"
)

// CVOpts tunes the control-variate estimator. The zero value selects
// the defaults below; the scenario layer writes them out explicitly
// during spec normalization so fingerprints pin them.
type CVOpts struct {
	// PilotReps is the smallest sample on which a fitted β is trusted;
	// below it the estimator falls back to β = 0 (the raw mean).
	PilotReps int
	// MinCorr gates on the multiple correlation between the metric and
	// its controls: a fit weaker than this is noise, and applying its β
	// would trade a known-unbiased estimator for no variance win.
	MinCorr float64
	// MaxBeta clamps each fitted coefficient to at most MaxBeta times
	// the scale-matched ratio sd(y)/sd(cⱼ). A lone control's OLS β is
	// ρ·sd(y)/sd(c) with |ρ| ≤ 1, so honest fits sit far below the
	// clamp; only near-collinear control sets can blow past it.
	MaxBeta float64
}

// Control-variate defaults (see CVOpts).
const (
	DefaultPilotReps = 4
	DefaultMinCorr   = 0.2
	DefaultMaxBeta   = 8.0
)

// normalized fills the defaults for unset fields.
func (o CVOpts) normalized() CVOpts {
	if o.PilotReps <= 0 {
		o.PilotReps = DefaultPilotReps
	}
	if o.MinCorr <= 0 {
		o.MinCorr = DefaultMinCorr
	}
	if o.MaxBeta <= 0 {
		o.MaxBeta = DefaultMaxBeta
	}
	return o
}

// CVEstimate is a control-variate estimate of a mean: the regression-
// adjusted estimator ȳ − β̂ᵀc̄ for controls with known zero expectation,
// with an honest Student-t confidence interval from the regression
// residuals. The JSON tags are part of the serving API.
//
// When the estimator declines to apply a β (sample below the pilot
// size, correlation under the gate, degenerate or collinear controls,
// or an adjusted interval no tighter than the raw one), Applied is
// false and Mean/CI95/StdDev carry the raw sample values, so consumers
// can read them unconditionally.
type CVEstimate struct {
	// Applied tells whether a fitted β was used (false ⇒ β = 0).
	Applied bool `json:"applied"`
	// K is the number of controls in the regression (degenerate
	// zero-variance controls are excluded; 0 when not applied).
	K int `json:"k"`
	// Beta holds the fitted coefficients over the active controls, in
	// control order (omitted when not applied).
	Beta []float64 `json:"beta,omitempty"`
	// Mean is the control-variate point estimate ȳ − β̂ᵀc̄.
	Mean float64 `json:"mean"`
	// StdDev is the residual sample standard deviation after the
	// control adjustment (the raw sd when not applied).
	StdDev float64 `json:"stddev"`
	// CI95 is the 95% half-width of the estimate: Student-t over the
	// regression residuals with n−1−K degrees of freedom.
	CI95 float64 `json:"ci95"`
	// RawCI95 is the plain sample's CI95 half-width, for comparison.
	RawCI95 float64 `json:"raw_ci95"`
	// R2 is the fraction of the metric's variance the controls explain.
	R2 float64 `json:"r2"`
	// VarReduction is the estimated variance ratio raw/reduced — the
	// factor by which the control variate shrinks the replication count
	// needed for a given CI half-width (1 when not applied).
	VarReduction float64 `json:"var_reduction"`
}

// PairedAccumulator extends Accumulator to a sample paired with K
// control observations per value: alongside the metric's Welford
// moments it maintains the control means, the metric–control
// co-moments and the control co-moment matrix, all mergeable with Chan
// et al.'s parallel update. It exists for the adaptive-replication
// loop, whose stopping rule needs the control-variate CI95 in O(1) per
// added replication; the canonical published estimate still comes from
// the two-pass SummarizeCV over the full sample, mirroring the
// Accumulator/Summarize split.
type PairedAccumulator struct {
	y     Accumulator
	k     int
	meanC []float64
	syc   []float64 // Σ(y−ȳ)(cⱼ−c̄ⱼ)
	scc   []float64 // Σ(cᵢ−c̄ᵢ)(cⱼ−c̄ⱼ), row-major k×k, symmetric
}

// NewPaired returns an empty accumulator over k controls (k ≥ 1).
func NewPaired(k int) *PairedAccumulator {
	if k < 1 {
		panic(fmt.Sprintf("stats: NewPaired(%d): need at least one control", k))
	}
	return &PairedAccumulator{
		k:     k,
		meanC: make([]float64, k),
		syc:   make([]float64, k),
		scc:   make([]float64, k*k),
	}
}

// K returns the number of controls per value.
func (p *PairedAccumulator) K() int { return p.k }

// N returns the number of pairs accumulated.
func (p *PairedAccumulator) N() int { return p.y.N() }

// Raw returns the metric-only accumulator (mean, m2, min, max of y).
func (p *PairedAccumulator) Raw() Accumulator { return p.y }

// Add folds one (value, controls) pair into the accumulator.
//
//plclint:noalloc
func (p *PairedAccumulator) Add(y float64, c []float64) {
	if len(c) != p.k {
		panic(fmt.Sprintf("stats: PairedAccumulator.Add: %d controls, want %d", len(c), p.k))
	}
	nOld := float64(p.y.N())
	n := nOld + 1
	f := nOld / n
	dy := y - p.y.Mean()
	for j := 0; j < p.k; j++ {
		dcj := c[j] - p.meanC[j]
		p.syc[j] += dy * dcj * f
		for i := 0; i <= j; i++ {
			dci := c[i] - p.meanC[i]
			v := dci * dcj * f
			p.scc[i*p.k+j] += v
			if i != j {
				p.scc[j*p.k+i] += v
			}
		}
	}
	for j := 0; j < p.k; j++ {
		p.meanC[j] += (c[j] - p.meanC[j]) / n
	}
	p.y.Add(y)
}

// Merge folds another accumulator's sample into this one, as if every
// pair it saw had been Added here. A one-pair argument delegates to
// Add, so merging singletons reproduces sequential accumulation bit for
// bit (the same guarantee Accumulator.Merge gives).
//
//plclint:noalloc
func (p *PairedAccumulator) Merge(b *PairedAccumulator) {
	if b.k != p.k {
		panic(fmt.Sprintf("stats: PairedAccumulator.Merge: %d controls into %d", b.k, p.k))
	}
	switch {
	case b.y.N() == 0:
		return
	case b.y.N() == 1:
		p.Add(b.y.Mean(), b.meanC)
		return
	case p.y.N() == 0:
		p.y = b.y
		copy(p.meanC, b.meanC)
		copy(p.syc, b.syc)
		copy(p.scc, b.scc)
		return
	}
	na, nb := float64(p.y.N()), float64(b.y.N())
	n := na + nb
	w := na * nb / n
	dy := b.y.Mean() - p.y.Mean()
	for j := 0; j < p.k; j++ {
		dcj := b.meanC[j] - p.meanC[j]
		p.syc[j] += b.syc[j] + dy*dcj*w
		for i := 0; i <= j; i++ {
			dci := b.meanC[i] - p.meanC[i]
			v := b.scc[i*p.k+j] + dci*dcj*w
			p.scc[i*p.k+j] += v
			if i != j {
				p.scc[j*p.k+i] += v
			}
		}
	}
	for j := 0; j < p.k; j++ {
		p.meanC[j] += (b.meanC[j] - p.meanC[j]) * nb / n
	}
	p.y.Merge(b.y)
}

// Estimate computes the control-variate estimate from the accumulated
// moments. Like Accumulator.CI95 it answers in O(k³) independent of n,
// which is what the adaptive stopping rule consumes; the canonical
// published bytes come from SummarizeCV over the full ordered sample
// (the two agree to within float rounding).
func (p *PairedAccumulator) Estimate(opts CVOpts) CVEstimate {
	return cvFromMoments(p.y.N(), p.y.Mean(), p.y.m2, p.meanC, p.syc, p.scc, p.k, opts)
}

// SummarizeCV reduces a paired sample with a canonical two-pass moment
// computation: ys[r] is the metric at replication r, cs[r] its control
// vector (all the same length ≥ 1). This is the published form of the
// estimate — a pure function of the ordered sample, hence bit-identical
// between serial and parallel runs. It panics on an empty or ragged
// sample, mirroring Summarize's contract.
func SummarizeCV(ys []float64, cs [][]float64, opts CVOpts) CVEstimate {
	if len(ys) == 0 {
		panic("stats: SummarizeCV of empty sample")
	}
	if len(cs) != len(ys) {
		panic(fmt.Sprintf("stats: SummarizeCV: %d control rows for %d values", len(cs), len(ys)))
	}
	k := len(cs[0])
	if k < 1 {
		panic("stats: SummarizeCV: need at least one control")
	}
	n := len(ys)
	meanY := 0.0
	meanC := make([]float64, k)
	for r, y := range ys {
		if len(cs[r]) != k {
			panic(fmt.Sprintf("stats: SummarizeCV: control row %d has %d entries, want %d", r, len(cs[r]), k))
		}
		meanY += y
		for j, c := range cs[r] {
			meanC[j] += c
		}
	}
	meanY /= float64(n)
	for j := range meanC {
		meanC[j] /= float64(n)
	}
	var syy float64
	syc := make([]float64, k)
	scc := make([]float64, k*k)
	for r, y := range ys {
		dy := y - meanY
		syy += dy * dy
		for j := 0; j < k; j++ {
			dcj := cs[r][j] - meanC[j]
			syc[j] += dy * dcj
			for i := 0; i <= j; i++ {
				v := (cs[r][i] - meanC[i]) * dcj
				scc[i*k+j] += v
				if i != j {
					scc[j*k+i] += v
				}
			}
		}
	}
	return cvFromMoments(n, meanY, syy, meanC, syc, scc, k, opts)
}

// cvFromMoments is the shared estimator core: the regression-adjusted
// mean ȳ − β̂ᵀc̄ for zero-expectation controls, from centered sums.
//
// β̂ solves S_CC β = S_YC over the active controls (those with positive
// variance — a control that never moves, like the frame-error channel
// of an error-free spec, would make the system singular and carries no
// information). The confidence interval is the OLS prediction interval
// of the regression at c = 0: with s_e² = SSR/(n−1−K),
//
//	Var(μ̂) = s_e² · (1/n + c̄ᵀ S_CC⁻¹ c̄),  CI95 = t(n−1−K) · √Var
//
// which both credits the variance the controls remove and pays for the
// K estimated coefficients — at small n the t(n−1−K) quantile and the
// c̄ term keep the interval honest, which the coverage acceptance tests
// pin.
func cvFromMoments(n int, meanY, syy float64, meanC, syc, scc []float64, k int, opts CVOpts) CVEstimate {
	opts = opts.normalized()
	est := CVEstimate{Mean: meanY, VarReduction: 1}
	if n >= 2 {
		sd := math.Sqrt(syy / float64(n-1))
		est.StdDev = sd
		est.RawCI95 = TCrit95(n-1) * sd / math.Sqrt(float64(n))
		est.CI95 = est.RawCI95
	}

	// Active controls: positive, finite variance.
	active := make([]int, 0, k)
	for j := 0; j < k; j++ {
		v := scc[j*k+j]
		if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
			active = append(active, j)
		}
	}
	ka := len(active)
	df := n - 1 - ka
	if ka == 0 || n < opts.PilotReps || df < 1 || !(syy > 0) {
		return est
	}

	// Solve S_CC β = S_YC on the active submatrix.
	a := make([]float64, ka*ka)
	rhs := make([]float64, ka)
	for bi, j := range active {
		rhs[bi] = syc[j]
		for bj, jj := range active {
			a[bi*ka+bj] = scc[j*k+jj]
		}
	}
	beta := solveSym(a, rhs, ka)
	if beta == nil {
		return est // singular (collinear controls): keep the raw mean
	}

	// Clamp each coefficient to the scale-matched bound.
	for bi, j := range active {
		cap := opts.MaxBeta * math.Sqrt(syy/scc[j*k+j])
		if beta[bi] > cap {
			beta[bi] = cap
		} else if beta[bi] < -cap {
			beta[bi] = -cap
		}
	}

	// Residual sum of squares via the full quadratic form — exact for
	// the OLS β and still correct after clamping.
	ssr := syy
	for bi, j := range active {
		ssr -= 2 * beta[bi] * syc[j]
		for bj, jj := range active {
			ssr += beta[bi] * beta[bj] * scc[j*k+jj]
		}
	}
	if ssr < 0 {
		ssr = 0
	}
	r2 := 1 - ssr/syy
	est.R2 = r2
	if !(r2 > 0) || math.Sqrt(r2) < opts.MinCorr {
		return est // the fit is noise; β = 0 keeps the estimator honest
	}

	// c̄ᵀ S_CC⁻¹ c̄ for the prediction-variance term.
	cbar := make([]float64, ka)
	for bi, j := range active {
		cbar[bi] = meanC[j]
	}
	x := solveSym(a, cbar, ka)
	if x == nil {
		return est
	}
	quad := 0.0
	for bi := range cbar {
		quad += cbar[bi] * x[bi]
	}
	if quad < 0 {
		quad = 0
	}
	se2 := ssr / float64(df)
	varMean := se2 * (1/float64(n) + quad)
	if math.IsNaN(varMean) || math.IsInf(varMean, 0) {
		return est
	}
	if TCrit95(df)*math.Sqrt(varMean) >= est.RawCI95 {
		// The fit passed the correlation gate but the interval did not
		// actually tighten — at small n the K spent degrees of freedom
		// (wider t quantile) and the c̄ᵀS⁻¹c̄ prediction term can cost
		// more than the removed variance buys. Applying β would then
		// report a *worse* interval and stall the adaptive stopping rule
		// behind the plain path, so decline and keep the raw estimator.
		return est
	}

	est.Applied = true
	est.K = ka
	est.Beta = beta
	mean := meanY
	for bi, j := range active {
		mean -= beta[bi] * meanC[j]
	}
	est.Mean = mean
	est.StdDev = math.Sqrt(se2)
	est.CI95 = TCrit95(df) * math.Sqrt(varMean)
	rawVar := syy / float64(n-1) / float64(n)
	if varMean > 0 {
		est.VarReduction = rawVar / varMean
	}
	return est
}

// solveSym solves the n×n system a·x = b by Gaussian elimination with
// partial pivoting (a is row-major and destroyed). It returns nil when
// the matrix is numerically singular, which the caller treats as "no
// usable fit" rather than an error.
func solveSym(a, b []float64, n int) []float64 {
	// Scale-aware singularity guard: pivots are compared against the
	// matrix's largest initial magnitude.
	scale := 0.0
	for _, v := range a {
		if m := math.Abs(v); m > scale {
			scale = m
		}
	}
	if scale == 0 {
		return nil
	}
	x := append([]float64(nil), b...)
	for c := 0; c < n; c++ {
		p := c
		for r := c + 1; r < n; r++ {
			if math.Abs(a[r*n+c]) > math.Abs(a[p*n+c]) {
				p = r
			}
		}
		if math.Abs(a[p*n+c]) <= scale*1e-12 {
			return nil
		}
		if p != c {
			for j := 0; j < n; j++ {
				a[c*n+j], a[p*n+j] = a[p*n+j], a[c*n+j]
			}
			x[c], x[p] = x[p], x[c]
		}
		for r := 0; r < n; r++ {
			if r == c {
				continue
			}
			f := a[r*n+c] / a[c*n+c]
			for j := c; j < n; j++ {
				a[r*n+j] -= f * a[c*n+j]
			}
			x[r] -= f * x[c]
		}
	}
	for i := 0; i < n; i++ {
		x[i] /= a[i*n+i]
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
			return nil
		}
	}
	return x
}
