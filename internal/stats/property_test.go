package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestMergeEmptyAndSingletonExact: the n ∈ {0, 1} Merge edges are
// bit-exact, not just within rounding — merging an empty accumulator
// is a no-op, merging into an empty one is a copy, and folding a
// stream of singletons reproduces sequential Adds bit for bit.
func TestMergeEmptyAndSingletonExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			// Mix magnitudes so rounding differences would surface.
			xs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(6)-3))
		}

		var seq Accumulator
		for _, x := range xs {
			seq.Add(x)
		}

		// Singleton merges in order ≡ sequential accumulation.
		var viaSingletons Accumulator
		for _, x := range xs {
			var one Accumulator
			one.Add(x)
			viaSingletons.Merge(one)
		}
		if viaSingletons != seq {
			t.Fatalf("trial %d: singleton merges diverge from sequential Adds:\n got %+v\nwant %+v",
				trial, viaSingletons, seq)
		}

		// Merging an empty right side changes nothing.
		withEmpty := seq
		withEmpty.Merge(Accumulator{})
		if withEmpty != seq {
			t.Fatalf("trial %d: merging an empty accumulator moved state", trial)
		}

		// Merging into an empty left side is a bitwise copy.
		var fromEmpty Accumulator
		fromEmpty.Merge(seq)
		if fromEmpty != seq {
			t.Fatalf("trial %d: merge into empty is not a copy:\n got %+v\nwant %+v", trial, fromEmpty, seq)
		}
	}
}

// TestMergeGeneralMatchesSequential: the general (n ≥ 2 both sides)
// Chan et al. update agrees with sequential accumulation to within
// float rounding on mean, variance and extrema.
func TestMergeGeneralMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		na, nb := 2+rng.Intn(30), 2+rng.Intn(30)
		var a, b, seq Accumulator
		for i := 0; i < na; i++ {
			x := rng.NormFloat64() * 100
			a.Add(x)
			seq.Add(x)
		}
		for i := 0; i < nb; i++ {
			x := rng.NormFloat64() * 100
			b.Add(x)
			seq.Add(x)
		}
		a.Merge(b)
		if a.N() != seq.N() {
			t.Fatalf("trial %d: merged n=%d, want %d", trial, a.N(), seq.N())
		}
		if rel := math.Abs(a.Mean()-seq.Mean()) / math.Max(1, math.Abs(seq.Mean())); rel > 1e-12 {
			t.Errorf("trial %d: merged mean %v vs sequential %v", trial, a.Mean(), seq.Mean())
		}
		if rel := math.Abs(a.StdDev()-seq.StdDev()) / math.Max(1e-9, seq.StdDev()); rel > 1e-9 {
			t.Errorf("trial %d: merged stddev %v vs sequential %v", trial, a.StdDev(), seq.StdDev())
		}
		sa, ss := a.Summary(), seq.Summary()
		if sa.Min != ss.Min || sa.Max != ss.Max {
			t.Errorf("trial %d: merged extrema [%v, %v] vs sequential [%v, %v]",
				trial, sa.Min, sa.Max, ss.Min, ss.Max)
		}
	}
}

// TestTCrit95Monotonic: the Student-t 95% critical value decreases
// monotonically in the degrees of freedom — across the exact table,
// the table→Cornish–Fisher seam at df 30, and deep into the
// asymptotic regime — and stays above the normal-limit 1.959964.
func TestTCrit95Monotonic(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 2000; df++ {
		v := TCrit95(df)
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("TCrit95(%d) = %v", df, v)
		}
		if v > prev {
			t.Fatalf("TCrit95 not monotone: df=%d gives %v > %v at df=%d", df, v, prev, df-1)
		}
		if v < 1.9599 {
			t.Fatalf("TCrit95(%d) = %v fell below the normal limit", df, v)
		}
		prev = v
	}
	// And the asymptote is approached: far out it is within 1e-3 of z.
	if v := TCrit95(100000); v > 1.961 {
		t.Errorf("TCrit95(1e5) = %v, want ≈1.96", v)
	}
}
