// Package stats provides the summary statistics the experiment harness
// reports: means, standard deviations, confidence intervals across
// repeated tests (the paper averages 10 tests per point in Figure 2),
// and simple histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of repeated measurements. The JSON tags
// are part of the serving API (internal/serve caches and returns
// marshalled summaries); renaming them is a wire-format change.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"` // sample standard deviation (n−1)
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// CI95 is the half-width of the 95% confidence interval of the
	// mean under the normal approximation (1.96·σ/√n).
	CI95 float64 `json:"ci95"`
}

// Summarize reduces a sample. It panics on an empty sample: averaging
// zero tests is a harness bug, not a data condition.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var sq float64
		for _, x := range xs {
			d := x - s.Mean
			sq += d * d
		}
		s.StdDev = math.Sqrt(sq / float64(s.N-1))
		s.CI95 = 1.96 * s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

// String renders "mean ± ci95 [min, max] (n)".
func (s Summary) String() string {
	return fmt.Sprintf("%.6g ± %.2g [%.6g, %.6g] (n=%d)", s.Mean, s.CI95, s.Min, s.Max, s.N)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the sample median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		q = 1
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	pos := q * float64(len(ys)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return ys[lo]
	}
	frac := pos - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// Histogram buckets values into equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	// Under/Over count values outside [Min, Max).
	Under, Over int
}

// NewHistogram builds a histogram with the given bounds and bin count.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins < 1 || max <= min {
		panic(fmt.Sprintf("stats: NewHistogram(%v, %v, %d): invalid shape", min, max, bins))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records one value.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Min:
		h.Under++
	case x >= h.Max:
		h.Over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i == len(h.Counts) { // x == Max guarded above; float edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of recorded values, including outliers.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mode returns the midpoint of the fullest bin (0 if empty).
func (h *Histogram) Mode() float64 {
	best, bestCount := -1, 0
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return 0
	}
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + w*(float64(best)+0.5)
}
