// Package stats provides the summary statistics the experiment harness
// reports: means, standard deviations, confidence intervals across
// repeated tests (the paper averages 10 tests per point in Figure 2),
// and simple histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of repeated measurements. The JSON tags
// are part of the serving API (internal/serve caches and returns
// marshalled summaries); renaming them is a wire-format change.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"` // sample standard deviation (n−1)
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// CI95 is the half-width of the 95% confidence interval of the
	// mean, t(0.975, n−1)·σ/√n. The Student-t critical value — not the
	// normal 1.96 — is what makes the interval honest at the small rep
	// counts quick runs use: at n = 3 the correct multiplier is 4.303,
	// 2.2× the normal approximation.
	CI95 float64 `json:"ci95"`
}

// tTable95 holds the two-sided 95% Student-t critical values
// t(0.975, df) for df = 1…30 (Abramowitz & Stegun, Table 26.10).
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// z975 is the 0.975 normal quantile, the df → ∞ limit of TCrit95.
const z975 = 1.959963984540054

// TCrit95 returns the two-sided 95% Student-t critical value
// t(0.975, df): a table lookup for df ≤ 30 and the Cornish–Fisher
// expansion around the normal quantile beyond it (accurate to ~1e-4
// there, converging to 1.96 as df grows). It panics on df < 1 — a
// confidence interval needs at least two samples.
func TCrit95(df int) float64 {
	if df < 1 {
		panic(fmt.Sprintf("stats: TCrit95(%d): need df ≥ 1", df))
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	z, d := z975, float64(df)
	return z + (z*z*z+z)/(4*d) + (5*z*z*z*z*z+16*z*z*z+3*z)/(96*d*d)
}

// Summarize reduces a sample. It panics on an empty sample: averaging
// zero tests is a harness bug, not a data condition.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var sq float64
		for _, x := range xs {
			d := x - s.Mean
			sq += d * d
		}
		s.StdDev = math.Sqrt(sq / float64(s.N-1))
		s.CI95 = TCrit95(s.N-1) * s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

// String renders "mean ± ci95 [min, max] (n)".
func (s Summary) String() string {
	return fmt.Sprintf("%.6g ± %.2g [%.6g, %.6g] (n=%d)", s.Mean, s.CI95, s.Min, s.Max, s.N)
}

// Accumulator is an incremental, mergeable summary of a growing sample:
// Welford's online algorithm for the mean and second central moment,
// plus min/max. It exists for the adaptive-replication loop, which
// checks a confidence-interval target after every replication batch —
// an Accumulator answers in O(1) per added value instead of
// re-summarizing the whole sample, and two Accumulators built on
// disjoint shards Merge into the same moments (Chan et al.'s parallel
// update), so convergence checks compose across workers.
//
// Note the float caveat: Welford's streaming variance and Summarize's
// two-pass variance agree to within rounding, not bit for bit. The
// canonical Summary a report publishes therefore still comes from
// Summarize over the full sample; the Accumulator drives stopping
// decisions, which only need the moments, not canonical bytes.
type Accumulator struct {
	n    int
	mean float64
	m2   float64 // Σ(x − mean)², maintained incrementally
	min  float64
	max  float64
}

// Add folds one value into the accumulator.
//
//plclint:noalloc
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.mean, a.min, a.max = x, x, x
		a.m2 = 0
		return
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if x < a.min {
		a.min = x
	}
	if x > a.max {
		a.max = x
	}
}

// Merge folds another accumulator's sample into this one, as if every
// value it saw had been Added here. The n ∈ {0, 1} edges are exact, not
// just within rounding: an empty side is a bitwise copy (or no-op), and
// a one-value argument delegates to Add — so merging singletons in
// order reproduces sequential accumulation bit for bit, the property
// the shard-equivalence tests pin. (Chan et al.'s update for the
// general case agrees with sequential Adds only to within float
// rounding; a singleton's d²·na·nb/n term rounds differently than Add's
// d·(x−mean′), which is why the delegation is not an optimization but a
// correctness fix for bit-exact replay.)
//
//plclint:noalloc
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if b.n == 1 {
		a.Add(b.mean)
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	na, nb := float64(a.n), float64(b.n)
	d := b.mean - a.mean
	n := na + nb
	a.mean += d * nb / n
	a.m2 += b.m2 + d*d*na*nb/n
	a.n += b.n
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// N returns the number of values accumulated.
func (a Accumulator) N() int { return a.n }

// Mean returns the running mean (0 when empty).
func (a Accumulator) Mean() float64 { return a.mean }

// StdDev returns the sample standard deviation (n−1 denominator; 0 for
// fewer than two values).
func (a Accumulator) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// CI95 returns the half-width of the 95% confidence interval of the
// mean under the same Student-t critical values Summarize uses (0 for
// fewer than two values).
func (a Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return TCrit95(a.n-1) * a.StdDev() / math.Sqrt(float64(a.n))
}

// Summary renders the accumulated moments as a Summary. It panics on an
// empty accumulator, mirroring Summarize's contract.
func (a Accumulator) Summary() Summary {
	if a.n == 0 {
		panic("stats: Summary of empty Accumulator")
	}
	return Summary{
		N:      a.n,
		Mean:   a.mean,
		StdDev: a.StdDev(),
		Min:    a.min,
		Max:    a.max,
		CI95:   a.CI95(),
	}
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the sample median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		q = 1
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	pos := q * float64(len(ys)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return ys[lo]
	}
	frac := pos - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// Histogram buckets values into equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	// Under/Over count values outside [Min, Max).
	Under, Over int
}

// NewHistogram builds a histogram with the given bounds and bin count.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins < 1 || max <= min {
		panic(fmt.Sprintf("stats: NewHistogram(%v, %v, %d): invalid shape", min, max, bins))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records one value.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Min:
		h.Under++
	case x >= h.Max:
		h.Over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i == len(h.Counts) { // x == Max guarded above; float edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of recorded values, including outliers.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mode returns the midpoint of the fullest bin (0 if empty).
func (h *Histogram) Mode() float64 {
	best, bestCount := -1, 0
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return 0
	}
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + w*(float64(best)+0.5)
}
