package stats

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// gauss draws a standard normal via Box–Muller from the repo's seeded
// generator, so every statistical test here is deterministic.
func gauss(src *rng.Source) float64 {
	u := src.Float64()
	for u == 0 {
		u = src.Float64()
	}
	v := src.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

func relClose(x, y, tol float64) bool {
	return math.Abs(x-y) <= tol*(1+math.Abs(x)+math.Abs(y))
}

// --- Accumulator.Merge edge-case properties (satellite: n=0/n=1 audit) ---

// Merging singleton accumulators in sample order must reproduce
// sequential Add bit for bit — this is what makes a parallel run's
// per-replication shards replayable into the exact serial moments.
func TestAccumulatorSingletonMergeBitIdentical(t *testing.T) {
	f := func(raw []int16) bool {
		var seq, merged Accumulator
		for _, r := range raw {
			x := float64(r) / 7
			seq.Add(x)
			var one Accumulator
			one.Add(x)
			merged.Merge(one)
		}
		return seq == merged
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Merging a singleton into a populated accumulator must equal Adding the
// value directly — bit for bit, not just within rounding.
func TestAccumulatorMergeSingletonArgumentIsAdd(t *testing.T) {
	f := func(raw []int16, last int16) bool {
		var a, b Accumulator
		for _, r := range raw {
			x := float64(r) / 3
			a.Add(x)
			b.Add(x)
		}
		a.Add(float64(last) / 3)
		var one Accumulator
		one.Add(float64(last) / 3)
		b.Merge(one)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorMergeEmptyEdges(t *testing.T) {
	var a Accumulator
	a.Add(1)
	a.Add(2)
	before := a
	a.Merge(Accumulator{}) // empty argument: no-op
	if a != before {
		t.Errorf("merge of empty argument changed the receiver: %+v", a)
	}
	var empty Accumulator
	empty.Merge(before) // empty receiver: bitwise copy
	if empty != before {
		t.Errorf("merge into empty receiver not a copy: %+v vs %+v", empty, before)
	}
	var both Accumulator
	both.Merge(Accumulator{})
	if both.N() != 0 {
		t.Errorf("empty-empty merge produced n=%d", both.N())
	}
}

// Merge of random contiguous splits ≡ one-shot accumulation: n/min/max
// exactly, moments to within tight rounding (Chan's update and Welford's
// agree only up to float rounding for multi-value shards — the singleton
// path above is the bit-exact one).
func TestAccumulatorMergeSplitProperty(t *testing.T) {
	src := rng.New(0x5eed)
	for trial := 0; trial < 200; trial++ {
		n := 1 + src.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 100*gauss(src) + 42
		}
		var whole Accumulator
		for _, x := range xs {
			whole.Add(x)
		}
		cut := src.Intn(n + 1)
		var left, right Accumulator
		for _, x := range xs[:cut] {
			left.Add(x)
		}
		for _, x := range xs[cut:] {
			right.Add(x)
		}
		left.Merge(right)
		if left.N() != whole.N() || left.min != whole.min || left.max != whole.max {
			t.Fatalf("trial %d: n/min/max mismatch after merge: %+v vs %+v", trial, left, whole)
		}
		if !relClose(left.mean, whole.mean, 1e-12) || !relClose(left.m2, whole.m2, 1e-12) {
			t.Fatalf("trial %d: moments diverged: merged mean=%v m2=%v, whole mean=%v m2=%v",
				trial, left.mean, left.m2, whole.mean, whole.m2)
		}
	}
}

// --- PairedAccumulator ---

func TestNewPairedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPaired(0) accepted")
		}
	}()
	NewPaired(0)
}

func TestPairedAddLengthPanics(t *testing.T) {
	p := NewPaired(2)
	defer func() {
		if recover() == nil {
			t.Error("Add with wrong control count accepted")
		}
	}()
	p.Add(1, []float64{1})
}

func TestPairedMergeMismatchedKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Merge with mismatched k accepted")
		}
	}()
	NewPaired(2).Merge(NewPaired(3))
}

// The online paired moments must match the two-pass SummarizeCV
// computation on the same sample: same estimate decision, same mean,
// same CI to within rounding.
func TestPairedEstimateMatchesSummarizeCV(t *testing.T) {
	src := rng.New(0xcafe)
	for trial := 0; trial < 100; trial++ {
		n := 2 + src.Intn(30)
		k := 1 + src.Intn(3)
		ys := make([]float64, n)
		cs := make([][]float64, n)
		p := NewPaired(k)
		for r := 0; r < n; r++ {
			c := make([]float64, k)
			var y float64
			for j := range c {
				c[j] = gauss(src)
				y += c[j]
			}
			y += 0.5 * gauss(src)
			ys[r], cs[r] = y, c
			p.Add(y, c)
		}
		want := SummarizeCV(ys, cs, CVOpts{})
		got := p.Estimate(CVOpts{})
		if got.Applied != want.Applied || got.K != want.K {
			t.Fatalf("trial %d: decision mismatch: online %+v vs two-pass %+v", trial, got, want)
		}
		if !relClose(got.Mean, want.Mean, 1e-9) || !relClose(got.CI95, want.CI95, 1e-9) ||
			!relClose(got.VarReduction, want.VarReduction, 1e-9) {
			t.Fatalf("trial %d: estimate mismatch: online %+v vs two-pass %+v", trial, got, want)
		}
	}
}

// Singleton merges of paired accumulators reproduce sequential Add bit
// for bit, the same guarantee Accumulator gives — this is what keeps a
// parallel campaign's stopping decisions identical to the serial run's.
func TestPairedSingletonMergeBitIdentical(t *testing.T) {
	src := rng.New(0xbeef)
	for trial := 0; trial < 50; trial++ {
		n := src.Intn(20)
		k := 1 + src.Intn(3)
		seq := NewPaired(k)
		merged := NewPaired(k)
		for r := 0; r < n; r++ {
			y := gauss(src)
			c := make([]float64, k)
			for j := range c {
				c[j] = gauss(src)
			}
			seq.Add(y, c)
			one := NewPaired(k)
			one.Add(y, c)
			merged.Merge(one)
		}
		if seq.y != merged.y {
			t.Fatalf("trial %d: y accumulators diverged: %+v vs %+v", trial, seq.y, merged.y)
		}
		for j := range seq.meanC {
			if seq.meanC[j] != merged.meanC[j] || seq.syc[j] != merged.syc[j] {
				t.Fatalf("trial %d: control moments diverged at %d", trial, j)
			}
		}
		for i := range seq.scc {
			if seq.scc[i] != merged.scc[i] {
				t.Fatalf("trial %d: scc diverged at %d: %v vs %v", trial, i, seq.scc[i], merged.scc[i])
			}
		}
	}
}

// Merging multi-value paired shards agrees with one-shot accumulation to
// within rounding on every moment.
func TestPairedMergeSplitProperty(t *testing.T) {
	src := rng.New(0xdead)
	for trial := 0; trial < 100; trial++ {
		n := 1 + src.Intn(30)
		k := 1 + src.Intn(3)
		whole := NewPaired(k)
		type pair struct {
			y float64
			c []float64
		}
		sample := make([]pair, n)
		for r := range sample {
			c := make([]float64, k)
			for j := range c {
				c[j] = 10 * gauss(src)
			}
			sample[r] = pair{y: 5 * gauss(src), c: c}
			whole.Add(sample[r].y, sample[r].c)
		}
		cut := src.Intn(n + 1)
		left, right := NewPaired(k), NewPaired(k)
		for _, s := range sample[:cut] {
			left.Add(s.y, s.c)
		}
		for _, s := range sample[cut:] {
			right.Add(s.y, s.c)
		}
		left.Merge(right)
		if left.N() != whole.N() {
			t.Fatalf("trial %d: n mismatch", trial)
		}
		if !relClose(left.y.mean, whole.y.mean, 1e-12) || !relClose(left.y.m2, whole.y.m2, 1e-12) {
			t.Fatalf("trial %d: y moments diverged", trial)
		}
		for j := 0; j < k; j++ {
			if !relClose(left.meanC[j], whole.meanC[j], 1e-12) || !relClose(left.syc[j], whole.syc[j], 1e-12) {
				t.Fatalf("trial %d: control %d moments diverged: mean %v vs %v, syc %v vs %v",
					trial, j, left.meanC[j], whole.meanC[j], left.syc[j], whole.syc[j])
			}
			for i := 0; i < k; i++ {
				if !relClose(left.scc[i*k+j], whole.scc[i*k+j], 1e-12) {
					t.Fatalf("trial %d: scc[%d,%d] diverged", trial, i, j)
				}
			}
		}
	}
}

// --- estimator behavior ---

// Known-answer check: with a single control and correlation ρ, OLS gives
// β = ρ·sd(y)/sd(c) and the variance shrinks by ≈ 1/(1−ρ²).
func TestCVSingleControlKnownAnswer(t *testing.T) {
	src := rng.New(0xfeed)
	const n = 2000
	const rho = 0.9
	ys := make([]float64, n)
	cs := make([][]float64, n)
	for r := 0; r < n; r++ {
		c := gauss(src)
		ys[r] = 10 + rho*c + math.Sqrt(1-rho*rho)*gauss(src)
		cs[r] = []float64{c}
	}
	est := SummarizeCV(ys, cs, CVOpts{})
	if !est.Applied || est.K != 1 {
		t.Fatalf("estimator declined an obviously strong control: %+v", est)
	}
	if math.Abs(est.Beta[0]-rho) > 0.05 {
		t.Errorf("beta = %v, want ≈ %v", est.Beta[0], rho)
	}
	if math.Abs(est.Mean-10) > 0.1 {
		t.Errorf("mean = %v, want ≈ 10", est.Mean)
	}
	wantVR := 1 / (1 - rho*rho) // ≈ 5.26
	if est.VarReduction < 0.7*wantVR || est.VarReduction > 1.3*wantVR {
		t.Errorf("var reduction = %v, want ≈ %v", est.VarReduction, wantVR)
	}
	if est.CI95 >= est.RawCI95 {
		t.Errorf("reduced CI %v not below raw CI %v", est.CI95, est.RawCI95)
	}
	if math.Abs(est.R2-rho*rho) > 0.05 {
		t.Errorf("R2 = %v, want ≈ %v", est.R2, rho*rho)
	}
}

// A zero-expectation control shifts the point estimate by −β·c̄; on a
// sample where the control happens to average exactly zero, the CV mean
// must equal the raw mean while the CI still shrinks.
func TestCVZeroMeanControlKeepsMean(t *testing.T) {
	src := rng.New(0x1234)
	const n = 500
	ys := make([]float64, n)
	cs := make([][]float64, n)
	for r := 0; r < n; r += 2 {
		c := 1 + math.Abs(gauss(src))
		noise := 0.1 * gauss(src)
		ys[r] = 3 + c + noise
		cs[r] = []float64{c}
		ys[r+1] = 3 - c + noise
		cs[r+1] = []float64{-c} // antithetic pair → c̄ = 0 exactly
	}
	est := SummarizeCV(ys, cs, CVOpts{})
	if !est.Applied {
		t.Fatalf("estimator declined: %+v", est)
	}
	rawMean := Mean(ys)
	if math.Abs(est.Mean-rawMean) > 1e-9 {
		t.Errorf("CV mean %v moved off the raw mean %v despite c̄ = 0", est.Mean, rawMean)
	}
	if est.VarReduction < 2 {
		t.Errorf("var reduction %v, want substantial", est.VarReduction)
	}
}

// A constant (zero-variance) control — e.g. the frame-error channel of
// an error-free spec — must be dropped from the regression instead of
// making the normal equations singular.
func TestCVDegenerateControlExcluded(t *testing.T) {
	src := rng.New(0x777)
	const n = 200
	ys := make([]float64, n)
	cs := make([][]float64, n)
	for r := 0; r < n; r++ {
		c := gauss(src)
		ys[r] = c + 0.2*gauss(src)
		cs[r] = []float64{0, c} // control 0 never moves
	}
	est := SummarizeCV(ys, cs, CVOpts{})
	if !est.Applied {
		t.Fatalf("estimator declined with one live control: %+v", est)
	}
	if est.K != 1 || len(est.Beta) != 1 {
		t.Errorf("K = %d, beta = %v; the dead control should be excluded", est.K, est.Beta)
	}
}

// Perfectly collinear controls make S_CC singular; the estimator must
// fall back to the raw mean rather than emit a garbage β.
func TestCVCollinearControlsFallBack(t *testing.T) {
	src := rng.New(0x888)
	const n = 100
	ys := make([]float64, n)
	cs := make([][]float64, n)
	for r := 0; r < n; r++ {
		c := gauss(src)
		ys[r] = c + gauss(src)
		cs[r] = []float64{c, 2 * c}
	}
	est := SummarizeCV(ys, cs, CVOpts{})
	if est.Applied {
		t.Errorf("estimator applied a fit on a singular system: %+v", est)
	}
	if est.Mean != Mean(ys) {
		t.Errorf("fallback mean %v is not the raw mean %v", est.Mean, Mean(ys))
	}
	if est.VarReduction != 1 {
		t.Errorf("fallback var reduction = %v, want 1", est.VarReduction)
	}
}

// An uncorrelated control must be rejected by the MinCorr gate: fitting
// noise would only widen the honest interval.
func TestCVWeakCorrelationGated(t *testing.T) {
	src := rng.New(0x999)
	const n = 400
	ys := make([]float64, n)
	cs := make([][]float64, n)
	for r := 0; r < n; r++ {
		ys[r] = gauss(src)
		cs[r] = []float64{gauss(src)} // independent of y
	}
	est := SummarizeCV(ys, cs, CVOpts{MinCorr: 0.2})
	if est.Applied {
		t.Errorf("estimator applied a noise fit (R2=%v): %+v", est.R2, est)
	}
	if est.CI95 != est.RawCI95 {
		t.Errorf("gated estimate changed the CI: %v vs raw %v", est.CI95, est.RawCI95)
	}
}

// Below the pilot size the estimator must not fit at all.
func TestCVPilotGate(t *testing.T) {
	ys := []float64{1, 2, 3}
	cs := [][]float64{{1}, {2}, {3}}
	est := SummarizeCV(ys, cs, CVOpts{PilotReps: 4})
	if est.Applied {
		t.Errorf("estimator fit below the pilot size: %+v", est)
	}
	// At the pilot size with a perfect control it should engage.
	ys = append(ys, 4)
	cs = append(cs, []float64{4})
	est = SummarizeCV(ys, cs, CVOpts{PilotReps: 4, MaxBeta: 8})
	if !est.Applied {
		t.Errorf("estimator declined at the pilot size with a perfect control: %+v", est)
	}
}

// The clamp bounds each |βⱼ| by MaxBeta·sd(y)/sd(cⱼ).
func TestCVBetaClamp(t *testing.T) {
	src := rng.New(0xaaa)
	const n = 50
	ys := make([]float64, n)
	cs := make([][]float64, n)
	for r := 0; r < n; r++ {
		c := gauss(src)
		ys[r] = 100*c + gauss(src)
		cs[r] = []float64{c}
	}
	est := SummarizeCV(ys, cs, CVOpts{MaxBeta: 0.5})
	if !est.Applied {
		t.Fatalf("estimator declined: %+v", est)
	}
	// sd(y)/sd(c) ≈ 100, so the clamp sits near 50 — far below the
	// OLS β ≈ 100.
	if est.Beta[0] > 0.5*100*1.2 {
		t.Errorf("beta %v escaped the clamp", est.Beta[0])
	}
}

func TestCVEstimateNotAppliedMirrorsRaw(t *testing.T) {
	ys := []float64{1, 2, 3, 4, 5}
	cs := [][]float64{{0}, {0}, {0}, {0}, {0}}
	est := SummarizeCV(ys, cs, CVOpts{})
	want := Summarize(ys)
	if est.Applied || est.K != 0 || est.Beta != nil {
		t.Errorf("degenerate-only controls applied: %+v", est)
	}
	if est.Mean != want.Mean || est.StdDev != want.StdDev || est.CI95 != want.CI95 || est.RawCI95 != want.CI95 {
		t.Errorf("unapplied estimate does not mirror the raw summary: %+v vs %+v", est, want)
	}
}

func TestSummarizeCVPanics(t *testing.T) {
	for name, call := range map[string]func(){
		"empty":       func() { SummarizeCV(nil, nil, CVOpts{}) },
		"row-count":   func() { SummarizeCV([]float64{1}, nil, CVOpts{}) },
		"no-controls": func() { SummarizeCV([]float64{1}, [][]float64{{}}, CVOpts{}) },
		"ragged":      func() { SummarizeCV([]float64{1, 2}, [][]float64{{1}, {1, 2}}, CVOpts{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s sample accepted", name)
				}
			}()
			call()
		}()
	}
}

// The wire form must be stable: unapplied estimates omit beta, and the
// field set is what the serving API documents.
func TestCVEstimateJSON(t *testing.T) {
	est := SummarizeCV([]float64{1, 2, 3}, [][]float64{{0}, {0}, {0}}, CVOpts{})
	b, err := json.Marshal(est)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"applied", "k", "mean", "stddev", "ci95", "raw_ci95", "r2", "var_reduction"} {
		if _, ok := m[key]; !ok {
			t.Errorf("marshalled estimate missing %q: %s", key, b)
		}
	}
	if _, ok := m["beta"]; ok {
		t.Errorf("unapplied estimate carries beta: %s", b)
	}
}
