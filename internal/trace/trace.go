// Package trace records medium-event logs from either simulator and
// serializes them to a compact binary format, so that long experiments
// can be captured once and re-analyzed offline (fairness windows, delay
// distributions, airtime accounting) — the workflow the paper uses with
// its testbed captures ("It can be modified to return the traces of
// successfully transmitted packets to study other metrics such as
// fairness").
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Kind classifies a recorded medium event.
type Kind uint8

// Event kinds. The values are part of the serialized format; append
// only.
const (
	// KindIdle is an empty contention slot.
	KindIdle Kind = iota
	// KindSuccess is a successful transmission (one transmitter).
	KindSuccess
	// KindCollision is an overlap of two or more transmitters.
	KindCollision
	// KindQuiet is a traffic-less fast-forward period.
	KindQuiet
	// KindBeacon is a central-coordinator beacon busy period.
	KindBeacon
	// KindError is a single-transmitter busy period lost to a channel
	// error (frame loss without collision).
	KindError
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindIdle:
		return "idle"
	case KindSuccess:
		return "success"
	case KindCollision:
		return "collision"
	case KindQuiet:
		return "quiet"
	case KindBeacon:
		return "beacon"
	case KindError:
		return "error"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one medium event.
type Record struct {
	// Time is the event's start in simulated µs.
	Time float64
	// Duration of the event in µs.
	Duration float64
	// Kind of event.
	Kind Kind
	// Class is the contending priority class (0-3), 0 when absent.
	Class uint8
	// Transmitters are the transmitting stations' identifiers.
	Transmitters []uint16
}

// Log is an in-memory event log.
type Log struct {
	records []Record
}

// Append adds one record. Records must be appended in time order; out
// of order appends are rejected because every consumer assumes
// monotonic time.
func (l *Log) Append(r Record) error {
	if n := len(l.records); n > 0 && r.Time < l.records[n-1].Time {
		return fmt.Errorf("trace: record at %v before previous %v", r.Time, l.records[n-1].Time)
	}
	if math.IsNaN(r.Time) || math.IsNaN(r.Duration) || r.Duration < 0 {
		return fmt.Errorf("trace: invalid record time=%v duration=%v", r.Time, r.Duration)
	}
	l.records = append(l.records, r)
	return nil
}

// MustAppend is Append for recorders that cannot propagate errors
// (observer callbacks); it panics on misuse.
func (l *Log) MustAppend(r Record) {
	if err := l.Append(r); err != nil {
		panic(err)
	}
}

// Len returns the number of records.
func (l *Log) Len() int { return len(l.records) }

// Records returns the backing slice (read-only by convention).
func (l *Log) Records() []Record { return l.records }

// Winners extracts the success-winner sequence, the input to the
// fairness analytics.
func (l *Log) Winners() []int {
	var out []int
	for _, r := range l.records {
		if r.Kind == KindSuccess && len(r.Transmitters) == 1 {
			out = append(out, int(r.Transmitters[0]))
		}
	}
	return out
}

// Summary aggregates the log.
type Summary struct {
	// Counts per kind.
	Counts map[Kind]int
	// Airtime per kind in µs.
	Airtime map[Kind]float64
	// Span is last event end − first event start.
	Span float64
}

// Summarize reduces the log.
func (l *Log) Summarize() Summary {
	s := Summary{Counts: make(map[Kind]int), Airtime: make(map[Kind]float64)}
	if len(l.records) == 0 {
		return s
	}
	for _, r := range l.records {
		s.Counts[r.Kind]++
		s.Airtime[r.Kind] += r.Duration
	}
	first := l.records[0]
	last := l.records[len(l.records)-1]
	s.Span = last.Time + last.Duration - first.Time
	return s
}

// Filter returns a new log with only the records matching keep.
func (l *Log) Filter(keep func(Record) bool) *Log {
	out := &Log{}
	for _, r := range l.records {
		if keep(r) {
			out.records = append(out.records, r)
		}
	}
	return out
}

// Serialization format:
//
//	magic "PLCT" | version u8 | count u64 |
//	per record: time f64 | duration f64 | kind u8 | class u8 |
//	            ntx u16 | tx u16 × ntx
//
// all little-endian.
var magic = [4]byte{'P', 'L', 'C', 'T'}

const formatVersion = 1

// ErrFormat reports a malformed trace stream.
var ErrFormat = errors.New("trace: malformed stream")

// WriteTo serializes the log.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	if err := put(magic); err != nil {
		return written, err
	}
	if err := put(uint8(formatVersion)); err != nil {
		return written, err
	}
	if err := put(uint64(len(l.records))); err != nil {
		return written, err
	}
	for _, r := range l.records {
		if len(r.Transmitters) > math.MaxUint16 {
			return written, fmt.Errorf("trace: %d transmitters exceed format limit", len(r.Transmitters))
		}
		if err := put(r.Time); err != nil {
			return written, err
		}
		if err := put(r.Duration); err != nil {
			return written, err
		}
		if err := put(uint8(r.Kind)); err != nil {
			return written, err
		}
		if err := put(r.Class); err != nil {
			return written, err
		}
		if err := put(uint16(len(r.Transmitters))); err != nil {
			return written, err
		}
		for _, tx := range r.Transmitters {
			if err := put(tx); err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// Read deserializes a log written by WriteTo.
func Read(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, m)
	}
	var version uint8
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, version)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	l := &Log{}
	for i := uint64(0); i < count; i++ {
		var rec Record
		var kind, class uint8
		var ntx uint16
		for _, v := range []any{&rec.Time, &rec.Duration, &kind, &class, &ntx} {
			if err := binary.Read(br, binary.LittleEndian, v); err != nil {
				return nil, fmt.Errorf("%w: record %d: %v", ErrFormat, i, err)
			}
		}
		rec.Kind = Kind(kind)
		rec.Class = class
		if ntx > 0 {
			rec.Transmitters = make([]uint16, ntx)
			if err := binary.Read(br, binary.LittleEndian, rec.Transmitters); err != nil {
				return nil, fmt.Errorf("%w: record %d transmitters: %v", ErrFormat, i, err)
			}
		}
		if err := l.Append(rec); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
	}
	return l, nil
}
