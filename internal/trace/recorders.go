package trace

import (
	"repro/internal/backoff"
	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/timing"
)

// SimRecorder adapts a Log to the minimal simulator's observer
// interface. Durations are reconstructed from the scenario's timing
// constants (the observer fires before the event, so the engine's own
// accounting is not yet available).
type SimRecorder struct {
	Log *Log
	// Ts and Tc are the scenario's busy-period durations, used to stamp
	// record durations.
	Ts, Tc float64
}

// NewSimRecorder builds a recorder for the given inputs.
func NewSimRecorder(in sim.Inputs) *SimRecorder {
	return &SimRecorder{Log: &Log{}, Ts: in.Ts, Tc: in.Tc}
}

// OnSlot implements sim.Observer.
func (r *SimRecorder) OnSlot(t float64, kind sim.SlotKind, txs []int, _ []backoff.Snapshot) {
	rec := Record{Time: t}
	switch kind {
	case sim.Idle:
		rec.Kind = KindIdle
		rec.Duration = timing.SlotTime
	case sim.Success:
		rec.Kind = KindSuccess
		rec.Duration = r.Ts
	case sim.Collision:
		rec.Kind = KindCollision
		rec.Duration = r.Tc
	case sim.FrameError:
		rec.Kind = KindError
		rec.Duration = r.Ts
	}
	rec.Transmitters = make([]uint16, len(txs))
	for i, tx := range txs {
		rec.Transmitters[i] = uint16(tx)
	}
	r.Log.MustAppend(rec)
}

// MACRecorder adapts a Log to the event-driven MAC's observer
// interface.
type MACRecorder struct {
	Log *Log
}

// NewMACRecorder builds an empty recorder.
func NewMACRecorder() *MACRecorder { return &MACRecorder{Log: &Log{}} }

// OnEvent implements mac.Observer.
func (r *MACRecorder) OnEvent(ev mac.Event) {
	rec := Record{Time: ev.Time, Duration: ev.Duration, Class: uint8(ev.Class)}
	switch ev.Kind {
	case mac.EventIdle:
		rec.Kind = KindIdle
	case mac.EventSuccess:
		rec.Kind = KindSuccess
	case mac.EventCollision:
		rec.Kind = KindCollision
	case mac.EventQuiet:
		rec.Kind = KindQuiet
	case mac.EventBeacon:
		rec.Kind = KindBeacon
	case mac.EventError:
		rec.Kind = KindError
	}
	rec.Transmitters = make([]uint16, len(ev.Transmitters))
	for i, tei := range ev.Transmitters {
		rec.Transmitters[i] = uint16(tei)
	}
	r.Log.MustAppend(rec)
}
