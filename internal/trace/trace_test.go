package trace

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/testbed"
)

func sample() *Log {
	l := &Log{}
	l.MustAppend(Record{Time: 0, Duration: 35.84, Kind: KindIdle})
	l.MustAppend(Record{Time: 35.84, Duration: 2542.64, Kind: KindSuccess, Class: 1, Transmitters: []uint16{3}})
	l.MustAppend(Record{Time: 2578.48, Duration: 2920.64, Kind: KindCollision, Class: 1, Transmitters: []uint16{2, 4}})
	l.MustAppend(Record{Time: 5499.12, Duration: 210.48, Kind: KindBeacon})
	return l
}

func TestAppendOrdering(t *testing.T) {
	l := &Log{}
	if err := l.Append(Record{Time: 10}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Time: 5}); err == nil {
		t.Error("out-of-order append accepted")
	}
	if err := l.Append(Record{Time: 20, Duration: -1}); err == nil {
		t.Error("negative duration accepted")
	}
	if err := l.Append(Record{Time: math.NaN()}); err == nil {
		t.Error("NaN time accepted")
	}
}

func TestMustAppendPanics(t *testing.T) {
	l := &Log{}
	l.MustAppend(Record{Time: 10})
	defer func() {
		if recover() == nil {
			t.Error("MustAppend out of order did not panic")
		}
	}()
	l.MustAppend(Record{Time: 1})
}

func TestWinners(t *testing.T) {
	w := sample().Winners()
	if len(w) != 1 || w[0] != 3 {
		t.Errorf("Winners() = %v, want [3]", w)
	}
}

func TestSummarize(t *testing.T) {
	s := sample().Summarize()
	if s.Counts[KindIdle] != 1 || s.Counts[KindSuccess] != 1 ||
		s.Counts[KindCollision] != 1 || s.Counts[KindBeacon] != 1 {
		t.Errorf("counts %v", s.Counts)
	}
	if s.Airtime[KindSuccess] != 2542.64 {
		t.Errorf("success airtime %v", s.Airtime[KindSuccess])
	}
	wantSpan := 5499.12 + 210.48
	if math.Abs(s.Span-wantSpan) > 1e-9 {
		t.Errorf("span %v, want %v", s.Span, wantSpan)
	}
	empty := (&Log{}).Summarize()
	if empty.Span != 0 || len(empty.Counts) != 0 {
		t.Error("empty summary not empty")
	}
}

func TestFilter(t *testing.T) {
	busy := sample().Filter(func(r Record) bool { return r.Kind != KindIdle })
	if busy.Len() != 3 {
		t.Errorf("filtered length %d", busy.Len())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	l := sample()
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("round trip %d records, want %d", got.Len(), l.Len())
	}
	for i, r := range got.Records() {
		want := l.Records()[i]
		if r.Time != want.Time || r.Duration != want.Duration ||
			r.Kind != want.Kind || r.Class != want.Class ||
			len(r.Transmitters) != len(want.Transmitters) {
			t.Errorf("record %d: %+v vs %+v", i, r, want)
		}
		for j := range r.Transmitters {
			if r.Transmitters[j] != want.Transmitters[j] {
				t.Errorf("record %d tx %d mismatch", i, j)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00"),
		"bad version": append([]byte("PLCT\x09"), make([]byte, 8)...),
		"truncated":   {'P', 'L', 'C', 'T', 1, 5, 0, 0, 0, 0, 0, 0, 0}, // claims 5 records, has none
	}
	for name, b := range cases {
		if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", name, err)
		}
	}
}

func TestSimRecorderEndToEnd(t *testing.T) {
	in := sim.DefaultInputs(3)
	in.SimTime = 2e6
	rec := NewSimRecorder(in)
	e, err := sim.NewEngine(in)
	if err != nil {
		t.Fatal(err)
	}
	e.SetObserver(rec)
	r := e.Run()
	sum := rec.Log.Summarize()
	if int64(sum.Counts[KindSuccess]) != r.Successes {
		t.Errorf("trace successes %d ≠ result %d", sum.Counts[KindSuccess], r.Successes)
	}
	if int64(sum.Counts[KindCollision]) != r.CollisionEvents {
		t.Errorf("trace collisions %d ≠ result %d", sum.Counts[KindCollision], r.CollisionEvents)
	}
	if int64(sum.Counts[KindIdle]) != r.IdleSlots {
		t.Errorf("trace idles %d ≠ result %d", sum.Counts[KindIdle], r.IdleSlots)
	}
	// Airtime accounting must match the engine's elapsed time.
	var total float64
	for _, v := range sum.Airtime {
		total += v
	}
	if math.Abs(total-r.Elapsed) > 1e-6*r.Elapsed {
		t.Errorf("trace airtime %v ≠ elapsed %v", total, r.Elapsed)
	}
	// Winner trace length equals success count.
	if len(rec.Log.Winners()) != int(r.Successes) {
		t.Error("winner trace length mismatch")
	}
}

func TestMACRecorderEndToEnd(t *testing.T) {
	tb, err := testbed.New(testbed.Options{N: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewMACRecorder()
	tb.Network.Observe(rec)
	tb.Network.EnableBeacons(33_330)
	tb.Run(2e6)
	sum := rec.Log.Summarize()
	st := tb.Network.Stats()
	if int64(sum.Counts[KindSuccess]) != st.Successes {
		t.Errorf("trace successes %d ≠ stats %d", sum.Counts[KindSuccess], st.Successes)
	}
	if int64(sum.Counts[KindBeacon]) != st.Beacons {
		t.Errorf("trace beacons %d ≠ stats %d", sum.Counts[KindBeacon], st.Beacons)
	}
	// Round-trip the MAC trace through serialization.
	var buf bytes.Buffer
	if _, err := rec.Log.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rec.Log.Len() {
		t.Error("MAC trace round trip lost records")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindIdle: "idle", KindSuccess: "success", KindCollision: "collision",
		KindQuiet: "quiet", KindBeacon: "beacon",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

// Property: serialization round-trips arbitrary well-formed logs.
func TestSerializationProperty(t *testing.T) {
	f := func(durations []uint16, kinds []uint8) bool {
		l := &Log{}
		time := 0.0
		for i := range durations {
			k := KindIdle
			if i < len(kinds) {
				k = Kind(kinds[i] % 5)
			}
			r := Record{Time: time, Duration: float64(durations[i]), Kind: k}
			if k == KindSuccess {
				r.Transmitters = []uint16{uint16(i)}
			}
			if err := l.Append(r); err != nil {
				return false
			}
			time += float64(durations[i])
		}
		var buf bytes.Buffer
		if _, err := l.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return got.Len() == l.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
