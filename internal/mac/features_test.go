package mac

import (
	"math"
	"sort"
	"testing"

	"repro/internal/config"
	"repro/internal/hpav"
	"repro/internal/phy"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/traffic"
)

func TestBeaconsConsumeAirtime(t *testing.T) {
	nw, _, _ := buildSaturated(2, 2, 51)
	nw.EnableBeacons(33_330) // 60 Hz AC: beacon every 33.33 ms
	nw.Run(1e7)              // 10 s → ≈300 beacons
	st := nw.Stats()
	if st.Beacons < 250 || st.Beacons > 310 {
		t.Errorf("%d beacons in 10 s at 33.33 ms period", st.Beacons)
	}
	// Beacons must appear in the observer stream too.
	nw2, _, _ := buildSaturated(2, 2, 51)
	nw2.EnableBeacons(33_330)
	beacons := 0
	nw2.Observe(ObserverFunc(func(ev Event) {
		if ev.Kind == EventBeacon {
			beacons++
			if ev.Duration <= 0 {
				t.Error("beacon with no duration")
			}
		}
	}))
	nw2.Run(1e6)
	if beacons == 0 {
		t.Error("no beacon events observed")
	}
}

func TestBeaconsReduceThroughputSlightly(t *testing.T) {
	thr := func(beacons bool) float64 {
		nw, _, _ := buildSaturated(2, 2, 53)
		if beacons {
			nw.EnableBeacons(33_330)
		}
		nw.Run(2e7)
		st := nw.Stats()
		return st.PayloadMicros / st.Elapsed
	}
	with, without := thr(true), thr(false)
	if with >= without {
		t.Errorf("beacons did not cost airtime: %v with vs %v without", with, without)
	}
	// But the cost must be small (a beacon is delimiter-only).
	if (without-with)/without > 0.05 {
		t.Errorf("beacon overhead %.1f%% implausibly high", (without-with)/without*100)
	}
}

func TestBeaconsDisable(t *testing.T) {
	nw, _, _ := buildSaturated(1, 1, 57)
	nw.EnableBeacons(10_000)
	nw.EnableBeacons(0) // disable again
	nw.Run(1e6)
	if nw.Stats().Beacons != 0 {
		t.Error("disabled beacons still fired")
	}
}

func TestAccessDelayRecording(t *testing.T) {
	nw, _, _ := buildSaturated(3, 2, 59)
	nw.RecordDelays(true)
	nw.Run(1e7)
	st := nw.Stats()
	if int64(len(st.AccessDelays)) != st.Successes {
		t.Fatalf("%d delay samples, %d successes", len(st.AccessDelays), st.Successes)
	}
	// Every delay must be at least the burst's busy duration and
	// bounded by the run length.
	minBusy := 2 * timing.DefaultFrameDuration // 2 MPDUs of payload
	for _, d := range st.AccessDelays {
		if d < minBusy {
			t.Fatalf("delay %v below the burst airtime %v", d, minBusy)
		}
		if d > 1e7 {
			t.Fatalf("delay %v exceeds the run length", d)
		}
	}
	sum := stats.Summarize(st.AccessDelays)
	if sum.Mean <= 0 {
		t.Error("degenerate delay mean")
	}
}

func TestAccessDelayGrowsWithN(t *testing.T) {
	mean := func(n int) float64 {
		nw, _, _ := buildSaturated(n, 2, 61)
		nw.RecordDelays(true)
		nw.Run(1e7)
		return stats.Mean(nw.Stats().AccessDelays)
	}
	d2, d7 := mean(2), mean(7)
	if d7 <= d2*2 {
		t.Errorf("mean access delay at N=7 (%v) not well above N=2 (%v)", d7, d2)
	}
}

func TestDelaysOffByDefault(t *testing.T) {
	nw, _, _ := buildSaturated(2, 2, 63)
	nw.Run(1e6)
	if len(nw.Stats().AccessDelays) != 0 {
		t.Error("delay samples recorded without RecordDelays")
	}
}

func TestDeliveredPBAccounting(t *testing.T) {
	nw, _, _ := buildSaturated(1, 2, 67)
	nw.SetErrorModel(phy.NewBernoulli(0.25, rng.New(5)))
	nw.Run(1e7)
	st := nw.Stats()
	total := st.DeliveredPBs + st.ErroredPBs
	if total != st.SuccessMPDUs*4 {
		t.Errorf("delivered %d + errored %d ≠ transmitted PBs %d",
			st.DeliveredPBs, st.ErroredPBs, st.SuccessMPDUs*4)
	}
	rate := float64(st.ErroredPBs) / float64(total)
	if math.Abs(rate-0.25) > 0.03 {
		t.Errorf("PB error rate %v, want ≈0.25", rate)
	}
}

// TestUnsaturatedDelayBelowSaturatedDelay: a lightly loaded station
// mostly finds the medium free, so its access delay must be far below
// the saturated head-of-line delay at the same N.
func TestUnsaturatedDelayBelowSaturated(t *testing.T) {
	root := rng.New(71)
	build := func(mean float64) *Network {
		nw := NewNetwork()
		nw.RecordDelays(true)
		dst := NewStation("D", 100, addr(100), root.Split(999))
		nw.Attach(dst)
		for i := 0; i < 3; i++ {
			s := NewStation("sta", hpav.TEI(i+1), addr(i+1), root.Split(uint64(200+i)))
			var src traffic.Source = traffic.Saturated{}
			if mean > 0 {
				src = traffic.NewPoisson(mean, root.Split(uint64(300+i)))
			}
			s.AddFlow(&Flow{Source: src, Spec: BurstSpec{
				Dst: 100, DstAddr: addr(100), Priority: config.CA1,
				MPDUs: 2, PBsPerMPDU: 4, FrameMicros: timing.DefaultFrameDuration,
			}})
			nw.Attach(s)
		}
		return nw
	}
	sat := build(0)
	sat.Run(1e7)
	light := build(100_000) // 10 bursts/s each — far below capacity
	light.Run(1e7)
	ds := stats.Mean(sat.Stats().AccessDelays)
	dl := stats.Mean(light.Stats().AccessDelays)
	if dl >= ds {
		t.Errorf("light-load delay %v not below saturated %v", dl, ds)
	}
}

// TestDelayDistributionTail: saturated delays must be right-skewed
// (p95 well above the median) — the short-term unfairness shows up as a
// delay tail.
func TestDelayDistributionTail(t *testing.T) {
	nw, _, _ := buildSaturated(5, 2, 73)
	nw.RecordDelays(true)
	nw.Run(2e7)
	ds := nw.Stats().AccessDelays
	sort.Float64s(ds)
	median := stats.Median(ds)
	p95 := stats.Quantile(ds, 0.95)
	if p95 < 2*median {
		t.Errorf("p95 %v < 2×median %v: expected a heavy delay tail under saturation", p95, median)
	}
}
