// Package mac implements the full event-driven IEEE 1901 station MAC
// and the single-contention-domain network that the emulated testbed
// (internal/device, internal/testbed) is built on.
//
// Where internal/sim reproduces the paper's minimal slot-based
// simulator (single priority, one frame per transmission, no
// management traffic), this package adds the mechanisms the paper's
// *measurement* methodology interacts with:
//
//   - the four channel-access priorities with the priority-resolution
//     phase (only the highest contending class runs the backoff);
//   - frame bursting (up to four MPDUs contend as one unit, MPDUCnt
//     counting down — Section 3.1);
//   - selective acknowledgments that also acknowledge collided frames
//     with an all-blocks-errored indication (Section 3.2), feeding
//     firmware-style per-link counters;
//   - management-message traffic at CA2/CA3 whose overhead the sniffer
//     methodology of Section 3.3 measures;
//   - pluggable PB error models for the failure-injection experiments.
//
// The per-station backoff process itself is the exact same
// internal/backoff machine the minimal simulator runs, which is what
// makes the "HomePlug AV measurements" curve of Figure 2 land on the
// "MAC simulation" curve.
package mac

import (
	"sort"
	"sync"

	"repro/internal/config"
	"repro/internal/hpav"
)

// LinkKey identifies a firmware counter bucket: statistics are kept per
// peer address, priority and direction, which is exactly the query key
// of ampstat's 0xA030 request.
type LinkKey struct {
	Peer      hpav.MAC
	Priority  config.Priority
	Direction hpav.StatsDirection
}

// LinkCounters are the two counters of the INT6300 statistics block the
// paper reads: acknowledged MPDUs (including collided ones, which the
// destination acknowledges as all-errored) and collided MPDUs.
type LinkCounters struct {
	Acked    uint64
	Collided uint64
}

// Counters is a station's firmware counter block. It is safe for
// concurrent use: the simulation goroutine writes while management
// tooling (ampstat over UDP) reads.
type Counters struct {
	mu sync.Mutex
	m  map[LinkKey]*LinkCounters
}

// NewCounters returns an empty counter block.
func NewCounters() *Counters {
	return &Counters{m: make(map[LinkKey]*LinkCounters)}
}

func (c *Counters) bucket(k LinkKey) *LinkCounters {
	b := c.m[k]
	if b == nil {
		b = &LinkCounters{}
		c.m[k] = b
	}
	return b
}

// AddAcked increments the acknowledged-MPDU counter of a link.
func (c *Counters) AddAcked(k LinkKey, n uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bucket(k).Acked += n
}

// AddCollided increments the collided-MPDU counter of a link.
func (c *Counters) AddCollided(k LinkKey, n uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bucket(k).Collided += n
}

// Fetch returns the current counters of a link (zeros if never used).
func (c *Counters) Fetch(k LinkKey) LinkCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b := c.m[k]; b != nil {
		return *b
	}
	return LinkCounters{}
}

// Reset clears the counters of one link, mirroring ampstat's reset
// command ("we reset the statistics of the frames transmitted at all
// the stations at the beginning of each test").
func (c *Counters) Reset(k LinkKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, k)
}

// ResetAll clears every bucket.
func (c *Counters) ResetAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[LinkKey]*LinkCounters)
}

// Keys returns the populated link keys in a deterministic order, for
// reports and tests.
func (c *Counters) Keys() []LinkKey {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]LinkKey, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		for x := 0; x < 6; x++ {
			if a.Peer[x] != b.Peer[x] {
				return a.Peer[x] < b.Peer[x]
			}
		}
		if a.Priority != b.Priority {
			return a.Priority < b.Priority
		}
		return a.Direction < b.Direction
	})
	return keys
}
