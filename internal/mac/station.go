package mac

import (
	"fmt"

	"repro/internal/backoff"
	"repro/internal/config"
	"repro/internal/hpav"
	"repro/internal/rng"
	"repro/internal/traffic"
)

// BurstSpec describes what a flow transmits when its station wins the
// channel: a burst of MPDUs to a destination.
type BurstSpec struct {
	// Dst is the destination station.
	Dst hpav.TEI
	// DstAddr is the destination's MAC (the counter key ampstat uses).
	DstAddr hpav.MAC
	// Priority is the channel-access class of the burst.
	Priority config.Priority
	// MPDUs is the burst size (1–4). The paper's testbed measures 2.
	MPDUs int
	// PBsPerMPDU is the number of 512-byte physical blocks per MPDU.
	PBsPerMPDU int
	// FrameMicros is the on-wire payload duration of one MPDU.
	FrameMicros float64
}

// Validate checks the spec's ranges.
func (s BurstSpec) Validate() error {
	if s.MPDUs < 1 || s.MPDUs > hpav.MaxBurstMPDUs {
		return fmt.Errorf("mac: burst of %d MPDUs (must be 1–%d)", s.MPDUs, hpav.MaxBurstMPDUs)
	}
	if s.PBsPerMPDU < 1 {
		return fmt.Errorf("mac: %d PBs per MPDU (must be ≥ 1)", s.PBsPerMPDU)
	}
	if s.FrameMicros <= 0 {
		return fmt.Errorf("mac: frame duration %v must be positive", s.FrameMicros)
	}
	if !s.Priority.Valid() {
		return fmt.Errorf("mac: invalid priority %d", s.Priority)
	}
	return nil
}

// Flow binds a traffic source to a burst specification at one station.
type Flow struct {
	Source traffic.Source
	Spec   BurstSpec
}

// Station is one PLC station of the emulated network: per-priority
// backoff engines, traffic flows, and the firmware counter block.
type Station struct {
	// Name labels the station in traces ("sta1", "D", …).
	Name string
	// Addr is the station's MAC address.
	Addr hpav.MAC
	// TEI is the short identifier delimiters carry.
	TEI hpav.TEI

	flows     []*Flow
	params    map[config.Priority]config.Params
	engines   map[config.Priority]*backoff.Station
	active    map[config.Priority]bool
	intents   map[config.Priority]backoff.Action
	counters  *Counters
	src       *rng.Source
	headSince map[config.Priority]float64

	burstSeq uint32

	// frameErrProb is the per-burst channel error probability of this
	// station's transmissions; errSrc is the dedicated stream the draws
	// come from (so errors never perturb backoff draws).
	frameErrProb float64
	errSrc       *rng.Source

	// SnifferEnabled mirrors the device's sniffer mode: when set, the
	// network delivers every observed SoF to the Sniffer callback.
	SnifferEnabled bool
	// Sniffer receives captured delimiters while SnifferEnabled.
	Sniffer func(ind hpav.SnifferInd)
}

// NewStation builds a station with the standard Table 1 parameters for
// every priority class.
func NewStation(name string, tei hpav.TEI, addr hpav.MAC, src *rng.Source) *Station {
	if src == nil {
		panic("mac: NewStation: nil rng source")
	}
	params := make(map[config.Priority]config.Params, 4)
	for _, p := range []config.Priority{config.CA0, config.CA1, config.CA2, config.CA3} {
		params[p] = config.Default1901(p)
	}
	return &Station{
		Name:      name,
		Addr:      addr,
		TEI:       tei,
		params:    params,
		engines:   make(map[config.Priority]*backoff.Station),
		active:    make(map[config.Priority]bool),
		intents:   make(map[config.Priority]backoff.Action),
		headSince: make(map[config.Priority]float64),
		counters:  NewCounters(),
		src:       src,
	}
}

// SetParams overrides the CSMA/CA parameters of one priority class —
// the hook the boosting experiments use. It must be called before the
// network starts; changing parameters mid-run would desynchronize the
// engine state.
func (s *Station) SetParams(pri config.Priority, p config.Params) {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("mac: SetParams: %v", err))
	}
	if s.engines[pri] != nil {
		panic("mac: SetParams after the engine started")
	}
	s.params[pri] = p
}

// SetFrameError gives the station's transmissions a per-burst channel
// error probability p ∈ [0, 1]: a burst that wins the medium alone is
// still lost with probability p (frame loss without collision). Draws
// come from src, a stream dedicated to this purpose — never from the
// backoff streams — so an errored scenario shares every backoff draw
// with its error-free twin. p = 0 restores the error-free channel.
func (s *Station) SetFrameError(p float64, src *rng.Source) {
	if p < 0 || p > 1 || p != p {
		panic(fmt.Sprintf("mac: SetFrameError(%v): probability outside [0, 1]", p))
	}
	if p > 0 && src == nil {
		panic("mac: SetFrameError: nil rng source")
	}
	s.frameErrProb = p
	s.errSrc = src
}

// AddFlow attaches a traffic flow. Flows are served in order: the first
// pending flow at the contending priority supplies the burst.
func (s *Station) AddFlow(f *Flow) {
	if f == nil || f.Source == nil {
		panic("mac: AddFlow: nil flow or source")
	}
	if err := f.Spec.Validate(); err != nil {
		panic(fmt.Sprintf("mac: AddFlow: %v", err))
	}
	s.flows = append(s.flows, f)
}

// Counters exposes the firmware counter block (the MME stats handler
// reads it).
func (s *Station) Counters() *Counters { return s.counters }

// pendingAt reports whether any flow of class pri has traffic at now.
func (s *Station) pendingAt(pri config.Priority, now float64) bool {
	for _, f := range s.flows {
		if f.Spec.Priority == pri && f.Source.Pending(now) {
			return true
		}
	}
	return false
}

// highestPending returns the top contending class at now, if any.
func (s *Station) highestPending(now float64) (config.Priority, bool) {
	for pri := config.CA3; ; pri-- {
		if s.pendingAt(pri, now) {
			return pri, true
		}
		if pri == config.CA0 {
			return 0, false
		}
	}
}

// nextArrival returns the earliest next arrival across flows.
func (s *Station) nextArrival(now float64) float64 {
	next := inf
	for _, f := range s.flows {
		if t := f.Source.NextArrival(now); t < next {
			next = t
		}
	}
	return next
}

// contend ensures the station's backoff engine for class pri is live
// and returns its current intent. A station whose queue drained resets
// to backoff stage 0 on the next frame, per the standard ("upon the
// arrival of a new packet, a transmitting station enters backoff
// stage 0").
func (s *Station) contend(pri config.Priority, now float64) backoff.Action {
	eng := s.engines[pri]
	if eng == nil {
		eng = backoff.NewStation(s.params[pri], s.src.Split(uint64(pri)))
		s.engines[pri] = eng
	}
	if !s.active[pri] {
		eng.Reset()
		s.intents[pri] = eng.Start()
		s.active[pri] = true
		s.headSince[pri] = now
	}
	return s.intents[pri]
}

// afterIdle advances class pri across an idle slot.
func (s *Station) afterIdle(pri config.Priority) {
	s.intents[pri] = s.engines[pri].AfterIdle()
}

// afterIdleN advances class pri across k batched idle slots (the
// network's idle fast-forward); bit-identical to k afterIdle calls.
func (s *Station) afterIdleN(pri config.Priority, k int) {
	s.intents[pri] = s.engines[pri].AfterIdleN(k)
}

// backoffAt returns the live backoff counter of class pri. It must only
// be called while the class is contending (engine started).
func (s *Station) backoffAt(pri config.Priority) int { return s.engines[pri].BC() }

// afterBusy advances class pri across a busy period.
func (s *Station) afterBusy(pri config.Priority, transmitted, success bool) {
	s.intents[pri] = s.engines[pri].AfterBusy(transmitted, success)
}

// quiesce marks the class inactive (queue drained): the next frame
// restarts at stage 0.
func (s *Station) quiesce(pri config.Priority) { s.active[pri] = false }

// takeBurst consumes one frame from the first pending flow at pri and
// materializes the burst it describes.
func (s *Station) takeBurst(pri config.Priority, now float64) (*hpav.Burst, BurstSpec) {
	spec := s.takeSpec(pri, now)
	b, err := hpav.NewBurst(spec.MPDUs, s.TEI, spec.Dst, pri,
		spec.PBsPerMPDU, spec.FrameMicros, s.burstSeq)
	if err != nil {
		panic(fmt.Sprintf("mac: takeBurst: %v", err)) // spec validated at AddFlow
	}
	return b, spec
}

// takeSpec consumes one frame from the first pending flow at pri without
// materializing the burst — the allocation-free success path used when
// no observer or sniffer needs the delimiters. The burst sequence number
// still advances so that captures started later see the same numbering.
func (s *Station) takeSpec(pri config.Priority, now float64) BurstSpec {
	for _, f := range s.flows {
		if f.Spec.Priority != pri || !f.Source.Pending(now) {
			continue
		}
		f.Source.Take(now)
		s.burstSeq++
		return f.Spec
	}
	panic("mac: takeSpec called with no pending flow")
}

// peekBurst materializes the head-of-line burst at pri without
// consuming the frame or advancing the burst sequence — the
// channel-error path, where the burst stays queued and a later
// successful delivery reuses the same numbering (a retransmission).
func (s *Station) peekBurst(pri config.Priority, now float64) (*hpav.Burst, BurstSpec) {
	spec := s.peekSpec(pri, now)
	b, err := hpav.NewBurst(spec.MPDUs, s.TEI, spec.Dst, pri,
		spec.PBsPerMPDU, spec.FrameMicros, s.burstSeq)
	if err != nil {
		panic(fmt.Sprintf("mac: peekBurst: %v", err)) // spec validated at AddFlow
	}
	return b, spec
}

// peekSpec returns the burst specification of the first pending flow at
// pri without consuming the frame — used by the collision path, where
// the frame stays queued for retry.
func (s *Station) peekSpec(pri config.Priority, now float64) BurstSpec {
	for _, f := range s.flows {
		if f.Spec.Priority == pri && f.Source.Pending(now) {
			return f.Spec
		}
	}
	panic("mac: peekSpec called with no pending flow")
}

// engineSnapshot exposes the backoff counters of one class for traces.
func (s *Station) engineSnapshot(pri config.Priority) (backoff.Snapshot, bool) {
	eng := s.engines[pri]
	if eng == nil {
		return backoff.Snapshot{}, false
	}
	return eng.Snapshot(), true
}
