package mac

import (
	"fmt"
	"math"

	"repro/internal/backoff"
	"repro/internal/config"
	"repro/internal/hpav"
	"repro/internal/phy"
	"repro/internal/timing"
)

var inf = math.Inf(1)

// EventKind classifies what happened on the medium.
type EventKind int

const (
	// EventIdle is an empty contention slot.
	EventIdle EventKind = iota
	// EventSuccess is a burst delivered without collision.
	EventSuccess
	// EventCollision is two or more overlapping bursts.
	EventCollision
	// EventQuiet is a traffic-less fast-forward period (unsaturated
	// scenarios only).
	EventQuiet
	// EventBeacon is a central-coordinator beacon busy period.
	EventBeacon
	// EventError is a single-transmitter burst lost to a channel error:
	// no collision, but the destination received every block corrupted
	// and acknowledged with the all-errored indication.
	EventError
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventIdle:
		return "idle"
	case EventSuccess:
		return "success"
	case EventCollision:
		return "collision"
	case EventQuiet:
		return "quiet"
	case EventBeacon:
		return "beacon"
	case EventError:
		return "error"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event describes one medium event for observers.
type Event struct {
	// Time is the event's start in simulated µs.
	Time float64
	// Duration of the event.
	Duration float64
	// Kind of event.
	Kind EventKind
	// Class is the contending priority class (success/collision/idle
	// with contenders present).
	Class config.Priority
	// Transmitters lists the stations that transmitted.
	Transmitters []hpav.TEI
	// Burst is the burst delivered on success or lost on a channel
	// error (nil otherwise).
	Burst *hpav.Burst
	// ErroredPBs counts physical blocks corrupted by the channel: some
	// blocks of a delivered burst (EventSuccess with an error model
	// installed), or the whole burst on EventError.
	ErroredPBs int
}

// Observer receives every medium event. Callbacks run on the simulation
// goroutine; the Event's Burst is shared — do not mutate.
type Observer interface {
	OnEvent(ev Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(ev Event)

// OnEvent calls f.
func (f ObserverFunc) OnEvent(ev Event) { f(ev) }

// Stats aggregates network-level outcomes of a run.
type Stats struct {
	// Successes counts successful bursts; SuccessMPDUs the MPDUs they
	// carried.
	Successes    int64
	SuccessMPDUs int64
	// Collisions counts collision events; CollidedMPDUs the MPDUs of
	// all bursts involved.
	Collisions    int64
	CollidedMPDUs int64
	// IdleSlots counts empty contention slots with contenders present.
	IdleSlots int64
	// FrameErrors counts single-transmitter bursts lost to channel
	// errors (per-station frame loss, no collision); FrameErrorMPDUs
	// the MPDUs they carried.
	FrameErrors     int64
	FrameErrorMPDUs int64
	// QuietTime is simulated time with no pending traffic anywhere.
	QuietTime float64
	// Elapsed is the total simulated time advanced.
	Elapsed float64
	// PayloadMicros is the cumulative useful payload time delivered.
	PayloadMicros float64
	// ErroredPBs counts channel-corrupted physical blocks.
	ErroredPBs int64
	// DeliveredPBs counts physical blocks received intact; with an
	// error model active, goodput = DeliveredPBs/(DeliveredPBs +
	// ErroredPBs) of the payload time.
	DeliveredPBs int64
	// Beacons counts central-coordinator beacon periods.
	Beacons int64
	// AccessDelays holds one sample per successful burst — the time
	// from the frame reaching the head of its queue to the end of its
	// successful transmission (µs) — when delay recording is enabled.
	AccessDelays []float64
	// PerClass breaks successes/collisions down by priority class.
	PerClass map[config.Priority]*ClassStats
}

// ClassStats are per-priority outcome counts. Successes + Collisions +
// FrameErrors accounts for every data busy period of the class.
type ClassStats struct {
	Successes   int64
	Collisions  int64
	FrameErrors int64
}

// Network is the single contention domain ("all stations are attached
// to the same power strip") coordinating the attached stations.
type Network struct {
	stations []*Station
	byTEI    map[hpav.TEI]*Station
	byAddr   map[hpav.MAC]*Station

	overheads timing.Overheads
	errModel  phy.ErrorModel

	clock     float64
	observers []Observer
	stats     Stats

	beaconPeriod float64
	nextBeacon   float64
	recordDelays bool

	// Scratch buffers reused across medium events so that the steady-state
	// loop is allocation-free (observers get freshly allocated Event
	// slices; the scratch is only shared with the unobserved fast path).
	classScratch     []config.Priority
	contenderScratch []*Station
	txScratch        []*Station
}

// Config is the compiled form of a contention domain's knobs — what the
// declarative scenario layer (internal/scenario) and the testbed hand
// to NewNetworkCfg in one value instead of a constructor-plus-setters
// dance. The zero value reproduces the paper's medium exactly: default
// Table-derived overheads, error-free channel, no beacons, no delay
// recording.
type Config struct {
	// Overheads replaces the timing overheads; nil keeps
	// timing.DefaultOverheads().
	Overheads *timing.Overheads
	// ErrorModel corrupts physical blocks of delivered bursts; nil keeps
	// the error-free channel.
	ErrorModel phy.ErrorModel
	// BeaconPeriodMicros, when positive, carries a central-coordinator
	// beacon every period µs (see EnableBeacons).
	BeaconPeriodMicros float64
	// RecordDelays enables per-burst access-delay sampling.
	RecordDelays bool
}

// NewNetwork builds an empty contention domain with the paper's timing
// overheads and an error-free channel.
func NewNetwork() *Network { return NewNetworkCfg(Config{}) }

// NewNetworkCfg builds an empty contention domain from a compiled
// configuration. It panics on invalid overheads, like SetOverheads.
func NewNetworkCfg(cfg Config) *Network {
	n := &Network{
		byTEI:     make(map[hpav.TEI]*Station),
		byAddr:    make(map[hpav.MAC]*Station),
		overheads: timing.DefaultOverheads(),
		errModel:  phy.None{},
	}
	n.stats.PerClass = make(map[config.Priority]*ClassStats)
	if cfg.Overheads != nil {
		n.SetOverheads(*cfg.Overheads)
	}
	if cfg.ErrorModel != nil {
		n.SetErrorModel(cfg.ErrorModel)
	}
	if cfg.BeaconPeriodMicros > 0 {
		n.EnableBeacons(cfg.BeaconPeriodMicros)
	}
	n.RecordDelays(cfg.RecordDelays)
	return n
}

// SetOverheads replaces the timing overheads (must be valid).
func (n *Network) SetOverheads(o timing.Overheads) {
	if err := o.Validate(); err != nil {
		panic(fmt.Sprintf("mac: SetOverheads: %v", err))
	}
	n.overheads = o
}

// SetErrorModel installs a PB corruption model (nil restores the
// error-free channel).
func (n *Network) SetErrorModel(m phy.ErrorModel) {
	if m == nil {
		m = phy.None{}
	}
	n.errModel = m
}

// EnableBeacons makes the contention domain carry a central-coordinator
// beacon every period µs (HomePlug AV beacons every two AC line cycles:
// 33.33 ms at 60 Hz, 40 ms at 50 Hz). Beacons are delimiter-only busy
// periods sent without contention; every contending station senses them
// busy, consuming one counter decrement like any other busy period.
// period ≤ 0 disables beacons.
func (n *Network) EnableBeacons(period float64) {
	if period <= 0 {
		n.beaconPeriod = 0
		return
	}
	n.beaconPeriod = period
	n.nextBeacon = n.clock + period
}

// RecordDelays toggles per-burst access-delay sampling into
// Stats.AccessDelays (off by default: a week-long run would accumulate
// millions of samples).
func (n *Network) RecordDelays(on bool) { n.recordDelays = on }

// Attach adds a station to the contention domain. TEIs and MACs must be
// unique.
func (n *Network) Attach(s *Station) {
	if s == nil {
		panic("mac: Attach(nil)")
	}
	if _, dup := n.byTEI[s.TEI]; dup {
		panic(fmt.Sprintf("mac: duplicate TEI %d", s.TEI))
	}
	if _, dup := n.byAddr[s.Addr]; dup {
		panic(fmt.Sprintf("mac: duplicate MAC %s", s.Addr))
	}
	n.stations = append(n.stations, s)
	n.byTEI[s.TEI] = s
	n.byAddr[s.Addr] = s
}

// Observe registers an observer for medium events.
func (n *Network) Observe(o Observer) { n.observers = append(n.observers, o) }

// Station returns the station with the given TEI, or nil.
func (n *Network) Station(tei hpav.TEI) *Station { return n.byTEI[tei] }

// StationByAddr returns the station with the given MAC, or nil.
func (n *Network) StationByAddr(addr hpav.MAC) *Station { return n.byAddr[addr] }

// Stations returns the attached stations in attach order.
func (n *Network) Stations() []*Station { return n.stations }

// Now returns the current simulated time in µs.
func (n *Network) Now() float64 { return n.clock }

// Stats returns a copy of the aggregate statistics so far.
func (n *Network) Stats() Stats {
	out := n.stats
	out.PerClass = make(map[config.Priority]*ClassStats, len(n.stats.PerClass))
	for k, v := range n.stats.PerClass {
		c := *v
		out.PerClass[k] = &c
	}
	out.AccessDelays = append([]float64(nil), n.stats.AccessDelays...)
	return out
}

func (n *Network) classStats(pri config.Priority) *ClassStats {
	c := n.stats.PerClass[pri]
	if c == nil {
		c = &ClassStats{}
		n.stats.PerClass[pri] = c
	}
	return c
}

func (n *Network) emit(ev Event) {
	for _, o := range n.observers {
		o.OnEvent(ev)
	}
}

// Run advances the network by the given simulated duration (µs). It can
// be called repeatedly; the paper's reset–run–fetch cycle maps to
// Counters.Reset, Run, Counters.Fetch.
func (n *Network) Run(duration float64) {
	if duration <= 0 || math.IsNaN(duration) || math.IsInf(duration, 0) {
		panic(fmt.Sprintf("mac: Run(%v): duration must be positive and finite", duration))
	}
	end := n.clock + duration
	for n.clock < end {
		n.step(end)
	}
	n.stats.Elapsed = n.clock
}

// step executes one medium event. It is the steady-state loop
// BenchmarkMACNetworkSteadyState pins at 0 allocs/op; the escape gate
// keeps it that way statically.
//
//plclint:noalloc
func (n *Network) step(end float64) {
	now := n.clock

	// Beacon region: the central coordinator's beacon preempts the
	// contention period.
	if n.beaconPeriod > 0 && n.nextBeacon <= now {
		n.beacon(now)
		return
	}

	// Priority resolution: each station that intends to contend
	// signals its class in the two priority-resolution slots; the tone
	// protocol elects the highest contending class and every lower
	// class defers (its engines freeze).
	classes := n.classScratch[:0]
	for _, s := range n.stations {
		if pri, ok := s.highestPending(now); ok {
			classes = append(classes, pri)
		}
	}
	n.classScratch = classes[:0]
	activeClass, anyPending := ResolvePriority(classes)

	if !anyPending {
		// Fast-forward to the next arrival (or the run's end).
		next := end
		for _, s := range n.stations {
			if t := s.nextArrival(now); t < next {
				next = t
			}
		}
		if next <= now {
			next = now + timing.SlotTime
		}
		d := next - now
		n.stats.QuietTime += d
		n.clock = next
		n.emit(Event{Time: now, Duration: d, Kind: EventQuiet})
		return
	}

	// Contenders: stations with pending traffic in the active class.
	contenders := n.contenderScratch[:0]
	txs := n.txScratch[:0]
	for _, s := range n.stations {
		if !s.pendingAt(activeClass, now) {
			continue
		}
		contenders = append(contenders, s)
		if s.contend(activeClass, now) == backoff.Transmit {
			txs = append(txs, s)
		}
	}
	n.contenderScratch = contenders[:0]
	n.txScratch = txs[:0]

	switch len(txs) {
	case 0:
		if len(n.observers) == 0 {
			// Idle fast-forward: batch every provably idle slot. With
			// observers installed the network steps slot by slot so that
			// traces see every medium event; both paths are bit-identical.
			k, t := n.idleRun(contenders, activeClass, now, end)
			n.stats.IdleSlots += int64(k)
			for _, s := range contenders {
				s.afterIdleN(activeClass, k)
			}
			n.clock = t
			return
		}
		n.stats.IdleSlots++
		for _, s := range contenders {
			s.afterIdle(activeClass)
		}
		n.clock = now + timing.SlotTime
		n.emit(Event{Time: now, Duration: timing.SlotTime, Kind: EventIdle, Class: activeClass})

	case 1:
		// Per-station channel error: a lone transmission can still be
		// lost (impulsive noise). The draw comes from the station's
		// dedicated error stream, so enabling errors never perturbs
		// backoff draws, and only single-transmitter events consume it.
		if w := txs[0]; w.frameErrProb > 0 && w.errSrc.Bernoulli(w.frameErrProb) {
			n.frameError(w, activeClass, now)
		} else {
			n.success(w, activeClass, now)
		}

	default:
		n.collision(txs, activeClass, now)
	}
}

// burstDuration is the busy period of a burst of k MPDUs transmitted
// without collision (delivered or channel-errored): priority
// resolution + each MPDU's preamble and payload + the response
// interval with one selective ACK + CIFS.
func (n *Network) burstDuration(k int, frameMicros float64) float64 {
	o := n.overheads
	return o.PRS + float64(k)*(o.Preamble+frameMicros) + o.RIFS + o.Ack + o.CIFS
}

// frameError wastes one success-shaped busy period on a burst the
// channel corrupted end to end. The destination decodes the robust
// preamble and acknowledges with the all-blocks-errored indication
// (Section 3.2 semantics), so the transmitter's Acked counter advances,
// its backoff moves to the next stage like any failed attempt, and the
// burst stays queued for retry — exactly the collision path's retry
// rule, but with a single transmitter. The SoF delimiters are robustly
// coded, so sniffer-enabled stations still capture the errored burst.
func (n *Network) frameError(w *Station, pri config.Priority, now float64) {
	observed := len(n.observers) > 0
	needBurst := observed || n.snifferActive()
	var burst *hpav.Burst
	var spec BurstSpec
	if needBurst {
		burst, spec = w.peekBurst(pri, now) // not consumed: the burst is retried
	} else {
		spec = w.peekSpec(pri, now)
	}
	k := spec.MPDUs
	d := n.burstDuration(k, spec.FrameMicros)

	txKey := LinkKey{Peer: spec.DstAddr, Priority: pri, Direction: hpav.DirectionTx}
	w.counters.AddAcked(txKey, uint64(k))
	if dst := n.byTEI[spec.Dst]; dst != nil {
		rxKey := LinkKey{Peer: w.Addr, Priority: pri, Direction: hpav.DirectionRx}
		dst.counters.AddAcked(rxKey, uint64(k))
	}

	if needBurst {
		n.capture(burst, now)
	}

	for _, s := range n.stations {
		if !s.active[pri] {
			continue
		}
		s.afterBusy(pri, s == w, false)
	}

	n.stats.FrameErrors++
	n.stats.FrameErrorMPDUs += int64(k)
	n.stats.ErroredPBs += int64(k * spec.PBsPerMPDU)
	n.classStats(pri).FrameErrors++
	n.clock = now + d
	if observed {
		n.emit(Event{
			Time: now, Duration: d, Kind: EventError, Class: pri,
			Transmitters: []hpav.TEI{w.TEI}, Burst: burst,
			ErroredPBs: k * spec.PBsPerMPDU,
		})
	}
}

// idleRun returns how many consecutive idle slots can be batched
// starting at now, together with the clock value after them. A slot can
// join the batch only while nothing can change the contention picture:
// the batch is bounded by the earliest backoff expiry (min BC slots from
// now a station transmits), the run's end, the next beacon and the next
// traffic arrival at any station. The clock accumulates one SlotTime
// addition per slot so the floating-point trajectory stays bit-identical
// to the slot-by-slot path; backoff counters advance in one AfterIdleN
// batch, which is what removes the O(contenders) work per idle slot.
//
//plclint:noalloc
func (n *Network) idleRun(contenders []*Station, pri config.Priority, now, end float64) (int, float64) {
	m := contenders[0].backoffAt(pri)
	for _, s := range contenders[1:] {
		if bc := s.backoffAt(pri); bc < m {
			m = bc
		}
	}
	k := 1
	t := now + timing.SlotTime
	if m == 1 {
		return k, t
	}
	// Earliest instant a currently empty flow could gain traffic; an
	// arrival can add a contender or raise the resolved priority class,
	// so the batch must stop before the first slot that would see it.
	nextArrival := inf
	for _, s := range n.stations {
		for _, f := range s.flows {
			if f.Source.Pending(now) {
				continue
			}
			if a := f.Source.NextArrival(now); a < nextArrival {
				nextArrival = a
			}
		}
	}
	for k < m && t < end && t < nextArrival && !(n.beaconPeriod > 0 && n.nextBeacon <= t) {
		t += timing.SlotTime
		k++
	}
	return k, t
}

// snifferActive reports whether any station is capturing delimiters.
func (n *Network) snifferActive() bool {
	for _, s := range n.stations {
		if s.SnifferEnabled && s.Sniffer != nil {
			return true
		}
	}
	return false
}

// success delivers the winner's burst. The burst's delimiters are only
// materialized when an observer or sniffer will see them; the counters
// and timing need just the spec, which keeps the unobserved loop
// allocation-free.
func (n *Network) success(w *Station, pri config.Priority, now float64) {
	observed := len(n.observers) > 0
	needBurst := observed || n.snifferActive()
	var burst *hpav.Burst
	var spec BurstSpec
	if needBurst {
		burst, spec = w.takeBurst(pri, now)
	} else {
		spec = w.takeSpec(pri, now)
	}
	k := spec.MPDUs

	d := n.burstDuration(k, spec.FrameMicros)

	// Channel errors: corrupt PBs of the delivered burst.
	errored := 0
	for i := 0; i < k*spec.PBsPerMPDU; i++ {
		if n.errModel.Corrupt() {
			errored++
		}
	}
	delivered := k*spec.PBsPerMPDU - errored

	// Firmware counters: the transmitter's tx link gets k acked MPDUs;
	// the destination's rx link mirrors them.
	txKey := LinkKey{Peer: spec.DstAddr, Priority: pri, Direction: hpav.DirectionTx}
	w.counters.AddAcked(txKey, uint64(k))
	if dst := n.byTEI[spec.Dst]; dst != nil {
		rxKey := LinkKey{Peer: w.Addr, Priority: pri, Direction: hpav.DirectionRx}
		dst.counters.AddAcked(rxKey, uint64(k))
	}

	// Sniffer capture: stations in sniffer mode hear every SoF of the
	// burst (same contention domain).
	if needBurst {
		n.capture(burst, now)
	}

	// Backoff: winner restarts at stage 0; other contenders absorb one
	// busy period.
	for _, s := range n.stations {
		if !s.active[pri] {
			continue
		}
		if s == w {
			s.afterBusy(pri, true, true)
		} else {
			s.afterBusy(pri, false, true)
		}
	}
	if n.recordDelays {
		n.stats.AccessDelays = append(n.stats.AccessDelays, now+d-w.headSince[pri])
	}
	if w.pendingAt(pri, now) {
		// The next frame becomes head of line when this burst ends.
		w.headSince[pri] = now + d
	} else {
		w.quiesce(pri)
	}

	n.stats.Successes++
	n.stats.SuccessMPDUs += int64(k)
	n.stats.PayloadMicros += float64(k) * spec.FrameMicros
	n.stats.ErroredPBs += int64(errored)
	n.stats.DeliveredPBs += int64(delivered)
	n.classStats(pri).Successes++
	n.clock = now + d
	if observed {
		n.emit(Event{
			Time: now, Duration: d, Kind: EventSuccess, Class: pri,
			Transmitters: []hpav.TEI{w.TEI}, Burst: burst, ErroredPBs: errored,
		})
	}
}

// collision wastes the medium for all transmitters. The colliding
// frames are NOT consumed from their flows: the retry limit is
// infinite, the station re-contends with the same frame (the paper's
// simulator makes the same assumption).
func (n *Network) collision(txs []*Station, pri config.Priority, now float64) {
	observed := len(n.observers) > 0
	var teis []hpav.TEI
	if observed {
		teis = make([]hpav.TEI, 0, len(txs))
	}
	var maxFrame float64
	var collidedMPDUs int64

	for _, s := range txs {
		spec := s.peekSpec(pri, now)
		if observed {
			teis = append(teis, s.TEI)
		}
		if spec.FrameMicros > maxFrame {
			maxFrame = spec.FrameMicros
		}
		k := uint64(spec.MPDUs)
		collidedMPDUs += int64(k)
		// Section 3.2: the destination decodes the robust preamble and
		// acknowledges the collided frame with an all-errored
		// indication — so the Acked counter advances together with the
		// Collided counter.
		txKey := LinkKey{Peer: spec.DstAddr, Priority: pri, Direction: hpav.DirectionTx}
		s.counters.AddAcked(txKey, k)
		s.counters.AddCollided(txKey, k)
	}

	o := n.overheads
	d := o.CollisionDuration(maxFrame)

	for _, s := range n.stations {
		if !s.active[pri] {
			continue
		}
		transmitted := false
		for _, x := range txs {
			if x == s {
				transmitted = true
				break
			}
		}
		s.afterBusy(pri, transmitted, false)
	}

	n.stats.Collisions++
	n.stats.CollidedMPDUs += collidedMPDUs
	n.classStats(pri).Collisions++
	n.clock = now + d
	if observed {
		n.emit(Event{
			Time: now, Duration: d, Kind: EventCollision, Class: pri,
			Transmitters: teis,
		})
	}
}

// capture fans captured SoF delimiters out to sniffer-enabled stations.
func (n *Network) capture(burst *hpav.Burst, now float64) {
	for _, s := range n.stations {
		if !s.SnifferEnabled || s.Sniffer == nil {
			continue
		}
		for i := range burst.MPDUs {
			s.Sniffer(hpav.SnifferInd{
				TimestampMicros: uint64(now),
				SoF:             burst.MPDUs[i].SoF,
			})
		}
	}
}

// beacon carries one central-coordinator beacon: a delimiter-only busy
// period every station senses.
func (n *Network) beacon(now float64) {
	d := n.overheads.Preamble + n.overheads.CIFS
	for _, s := range n.stations {
		for pri := range s.active {
			if s.active[pri] {
				s.afterBusy(pri, false, true)
			}
		}
	}
	n.stats.Beacons++
	n.nextBeacon += n.beaconPeriod
	n.clock = now + d
	n.emit(Event{Time: now, Duration: d, Kind: EventBeacon})
}
