package mac

import "repro/internal/config"

// Priority resolution, as the standard actually performs it: two
// priority-resolution slots (PRS0, PRS1) follow each busy period. A
// station intending to contend signals a busy tone in PRS0 if the high
// bit of its class is set (CA2/CA3), and in PRS1 if the low bit is set
// (CA1/CA3) — but a station that stayed silent in PRS0 while someone
// else signalled has already lost and keeps silent in PRS1. The
// surviving bit pattern spells the winning class; everyone below defers
// ("the rest of the priority classes defer their transmission until
// the highest contending priority class does not transmit a busy tone
// during the corresponding slot").
//
// ResolvePriority implements exactly that two-slot tone protocol. For a
// single contention domain the outcome necessarily equals the maximum
// contending class — TestResolvePriorityEqualsMax pins the equivalence
// — but modeling the mechanism keeps the door open for the multi-domain
// scenarios where tones, not global knowledge, are all a station hears.
func ResolvePriority(contending []config.Priority) (config.Priority, bool) {
	if len(contending) == 0 {
		return 0, false
	}

	// PRS0: stations with the high priority bit signal.
	prs0 := false
	for _, p := range contending {
		if uint8(p)&0b10 != 0 {
			prs0 = true
			break
		}
	}

	// PRS1: stations still in the race with the low bit signal. A
	// station is still in the race if its high bit matched the PRS0
	// outcome (it signalled, or nobody did).
	prs1 := false
	for _, p := range contending {
		hi := uint8(p)&0b10 != 0
		if hi != prs0 {
			continue // lost in PRS0
		}
		if uint8(p)&0b01 != 0 {
			prs1 = true
			break
		}
	}

	winner := config.Priority(0)
	if prs0 {
		winner |= 0b10
	}
	if prs1 {
		winner |= 0b01
	}
	return winner, true
}
