package mac

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/hpav"
	"repro/internal/rng"
	"repro/internal/traffic"
)

// errorNetwork assembles two saturated CA1 stations, the first with the
// given frame error probability.
func errorNetwork(seed uint64, p float64) (*Network, *Station, *Station) {
	root := rng.New(seed)
	nw := NewNetworkCfg(Config{})
	a := NewStation("A", 2, hpav.MAC{0, 0, 0, 0, 0, 2}, root.Split(1))
	b := NewStation("B", 3, hpav.MAC{0, 0, 0, 0, 0, 3}, root.Split(2))
	dstAddr := hpav.MAC{0, 0, 0, 0, 0, 1}
	for _, s := range []*Station{a, b} {
		s.AddFlow(&Flow{
			Source: traffic.Saturated{},
			Spec: BurstSpec{
				Dst: 9, DstAddr: dstAddr, Priority: config.CA1,
				MPDUs: 1, PBsPerMPDU: 4, FrameMicros: 2050,
			},
		})
	}
	if p > 0 {
		a.SetFrameError(p, root.Split(1<<32))
	}
	nw.Attach(a)
	nw.Attach(b)
	return nw, a, b
}

// TestFrameErrorStats checks the error path's bookkeeping: errors
// accrue, errored bursts stay queued (the run keeps making progress),
// the transmitter's Acked counter includes them, and goodput drops
// against the error-free twin under the same seed.
func TestFrameErrorStats(t *testing.T) {
	noisy, a, _ := errorNetwork(1, 0.3)
	noisy.Run(5e6)
	st := noisy.Stats()
	if st.FrameErrors == 0 {
		t.Fatal("no frame errors at p=0.3")
	}
	if st.FrameErrorMPDUs != st.FrameErrors {
		t.Fatalf("FrameErrorMPDUs %d != FrameErrors %d for 1-MPDU bursts", st.FrameErrorMPDUs, st.FrameErrors)
	}
	if st.ErroredPBs != st.FrameErrorMPDUs*4 {
		t.Fatalf("ErroredPBs %d, want %d (4 PBs per errored MPDU)", st.ErroredPBs, st.FrameErrorMPDUs*4)
	}
	key := LinkKey{Peer: hpav.MAC{0, 0, 0, 0, 0, 1}, Priority: config.CA1, Direction: hpav.DirectionTx}
	c := a.Counters().Fetch(key)
	// Acked counts successes + collisions + errors for station A; its
	// collided counter only counts collisions, so the difference bounds
	// the errors from below.
	if c.Acked <= c.Collided {
		t.Fatalf("Acked %d should exceed Collided %d (successes and errors ack too)", c.Acked, c.Collided)
	}

	if cs := st.PerClass[config.CA1]; cs == nil || cs.FrameErrors != st.FrameErrors {
		t.Fatalf("per-class frame errors %+v do not match total %d", cs, st.FrameErrors)
	}

	clean, _, _ := errorNetwork(1, 0)
	clean.Run(5e6)
	stClean := clean.Stats()
	if stClean.FrameErrors != 0 {
		t.Fatalf("error-free twin recorded %d frame errors", stClean.FrameErrors)
	}
	if st.PayloadMicros >= stClean.PayloadMicros {
		t.Fatalf("payload with 30%% errors %v not below error-free %v", st.PayloadMicros, stClean.PayloadMicros)
	}
}

// TestFrameErrorSnifferCapture checks that sniffer-enabled stations
// hear errored bursts: the SoF delimiters are robustly coded, so the
// capture stream must cover successes AND channel errors (the two
// acked outcomes), keeping sniffer-based and counter-based attempt
// estimates consistent.
func TestFrameErrorSnifferCapture(t *testing.T) {
	nw, a, b := errorNetwork(1, 0.3)
	var captured int64
	b.SnifferEnabled = true
	b.Sniffer = func(hpav.SnifferInd) { captured++ }
	nw.Run(5e6)
	st := nw.Stats()
	if st.FrameErrors == 0 {
		t.Fatal("no frame errors at p=0.3")
	}
	// B hears every success on the strip (its own included) and every
	// errored burst; bursts are 1 MPDU here.
	want := st.SuccessMPDUs + st.FrameErrorMPDUs
	if captured != want {
		t.Fatalf("sniffer captured %d SoFs, want %d (successes %d + errors %d)",
			captured, want, st.SuccessMPDUs, st.FrameErrorMPDUs)
	}
	_ = a
}

// TestFrameErrorObserverEquivalence pins the bit-identical guarantee
// with frame errors active: an observed network (slot-by-slot, every
// event emitted) and an unobserved one (idle fast-forward) must agree
// on every statistic.
func TestFrameErrorObserverEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		fast, _, _ := errorNetwork(seed, 0.25)
		fast.Run(3e6)

		slow, _, _ := errorNetwork(seed, 0.25)
		var events, errorEvents int
		slow.Observe(ObserverFunc(func(ev Event) {
			events++
			if ev.Kind == EventError {
				errorEvents++
				if len(ev.Transmitters) != 1 {
					t.Fatalf("error event with %d transmitters", len(ev.Transmitters))
				}
			}
		}))
		slow.Run(3e6)

		fs, ss := fast.Stats(), slow.Stats()
		if !reflect.DeepEqual(fs, ss) {
			t.Fatalf("seed %d: observed and unobserved stats differ:\n%+v\n%+v", seed, fs, ss)
		}
		if int64(errorEvents) != ss.FrameErrors {
			t.Fatalf("seed %d: %d EventError emissions, stats say %d", seed, errorEvents, ss.FrameErrors)
		}
		if events == 0 {
			t.Fatal("observer saw no events")
		}
	}
}

// TestSetFrameErrorValidation covers the setter's contract.
func TestSetFrameErrorValidation(t *testing.T) {
	_, a, _ := errorNetwork(1, 0)
	for _, bad := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetFrameError(%v) did not panic", bad)
				}
			}()
			a.SetFrameError(bad, rng.New(1))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetFrameError(0.5, nil) did not panic")
			}
		}()
		a.SetFrameError(0.5, nil)
	}()
	a.SetFrameError(0, nil) // p=0 with nil source is the off switch
}
