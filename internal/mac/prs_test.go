package mac

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func TestResolvePriorityEmpty(t *testing.T) {
	if _, ok := ResolvePriority(nil); ok {
		t.Error("empty contention resolved to a class")
	}
}

func TestResolvePriorityKnownCases(t *testing.T) {
	tests := []struct {
		in   []config.Priority
		want config.Priority
	}{
		{[]config.Priority{config.CA0}, config.CA0},
		{[]config.Priority{config.CA1}, config.CA1},
		{[]config.Priority{config.CA2}, config.CA2},
		{[]config.Priority{config.CA3}, config.CA3},
		{[]config.Priority{config.CA0, config.CA1}, config.CA1},
		{[]config.Priority{config.CA1, config.CA2}, config.CA2},
		{[]config.Priority{config.CA2, config.CA3}, config.CA3},
		// The interesting case for the tone protocol: CA1 (01) must not
		// pollute PRS1 after losing PRS0 to CA2 (10) — a naive OR of
		// both slots would elect CA3 (11), which nobody signalled.
		{[]config.Priority{config.CA1, config.CA2, config.CA1}, config.CA2},
		{[]config.Priority{config.CA0, config.CA2}, config.CA2},
		{[]config.Priority{config.CA1, config.CA1}, config.CA1},
	}
	for _, tc := range tests {
		got, ok := ResolvePriority(tc.in)
		if !ok || got != tc.want {
			t.Errorf("ResolvePriority(%v) = %v, %v; want %v", tc.in, got, ok, tc.want)
		}
	}
}

// Property: the two-slot tone protocol always elects exactly the
// maximum contending class in a single contention domain.
func TestResolvePriorityEqualsMax(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		classes := make([]config.Priority, len(raw))
		max := config.CA0
		for i, r := range raw {
			classes[i] = config.Priority(r % 4)
			if classes[i] > max {
				max = classes[i]
			}
		}
		got, ok := ResolvePriority(classes)
		return ok && got == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
