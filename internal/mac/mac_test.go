package mac

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/hpav"
	"repro/internal/phy"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/traffic"
)

func addr(i int) hpav.MAC {
	return hpav.MAC{0x00, 0xB0, 0x52, 0x00, 0x00, byte(i)}
}

// buildSaturated wires the paper's canonical scenario: n saturated CA1
// stations all transmitting to destination D (TEI 100), bursts of k
// MPDUs with the default 2050 µs frames.
func buildSaturated(n, k int, seed uint64) (*Network, []*Station, *Station) {
	root := rng.New(seed)
	nw := NewNetwork()
	dst := NewStation("D", 100, addr(100), root.Split(1000))
	nw.Attach(dst)
	stations := make([]*Station, n)
	for i := 0; i < n; i++ {
		s := NewStation("sta", hpav.TEI(i+1), addr(i+1), root.Split(uint64(i)))
		s.AddFlow(&Flow{
			Source: traffic.Saturated{},
			Spec: BurstSpec{
				Dst: 100, DstAddr: addr(100), Priority: config.CA1,
				MPDUs: k, PBsPerMPDU: 4, FrameMicros: timing.DefaultFrameDuration,
			},
		})
		stations[i] = s
		nw.Attach(s)
	}
	return nw, stations, dst
}

func TestAttachRejectsDuplicates(t *testing.T) {
	nw := NewNetwork()
	s := NewStation("a", 1, addr(1), rng.New(1))
	nw.Attach(s)
	for _, dup := range []*Station{
		NewStation("b", 1, addr(2), rng.New(2)),
		NewStation("c", 2, addr(1), rng.New(3)),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("duplicate station %s accepted", dup.Name)
				}
			}()
			nw.Attach(dup)
		}()
	}
}

func TestRunRejectsBadDuration(t *testing.T) {
	nw, _, _ := buildSaturated(1, 1, 1)
	for _, d := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Run(%v) accepted", d)
				}
			}()
			nw.Run(d)
		}()
	}
}

func TestSingleStationNoCollisions(t *testing.T) {
	nw, stations, _ := buildSaturated(1, 2, 1)
	nw.Run(1e7)
	st := nw.Stats()
	if st.Collisions != 0 {
		t.Errorf("lone station collided %d times", st.Collisions)
	}
	if st.Successes == 0 {
		t.Error("no successes")
	}
	key := LinkKey{Peer: addr(100), Priority: config.CA1, Direction: hpav.DirectionTx}
	c := stations[0].Counters().Fetch(key)
	if c.Collided != 0 {
		t.Errorf("counter shows %d collided", c.Collided)
	}
	if int64(c.Acked) != st.SuccessMPDUs {
		t.Errorf("acked %d ≠ success MPDUs %d", c.Acked, st.SuccessMPDUs)
	}
}

// TestAckedIncludesCollided is the heart of Section 3.2's accounting:
// every collided MPDU must ALSO advance the Acked counter (the
// destination acknowledges it with an all-errored indication), so that
// ΣCᵢ/ΣAᵢ equals the collision probability directly.
func TestAckedIncludesCollided(t *testing.T) {
	nw, stations, _ := buildSaturated(5, 2, 2)
	nw.Run(2e7)
	st := nw.Stats()
	if st.Collisions == 0 {
		t.Fatal("no collisions with 5 saturated stations")
	}
	var acked, collided uint64
	key := LinkKey{Peer: addr(100), Priority: config.CA1, Direction: hpav.DirectionTx}
	for _, s := range stations {
		c := s.Counters().Fetch(key)
		acked += c.Acked
		collided += c.Collided
	}
	if int64(collided) != st.CollidedMPDUs {
		t.Errorf("Σ collided counters %d ≠ network %d", collided, st.CollidedMPDUs)
	}
	if int64(acked) != st.SuccessMPDUs+st.CollidedMPDUs {
		t.Errorf("Σ acked %d ≠ successes %d + collided %d", acked, st.SuccessMPDUs, st.CollidedMPDUs)
	}
}

// TestCollisionProbabilityMatchesMinimalSimulator cross-validates the
// full MAC against the paper's minimal simulator on the same scenario
// (single priority, saturated): the two implementations share the
// backoff engine but nothing else, so agreement here is the Figure 2
// "measurements ≈ simulation" result in miniature.
func TestCollisionProbabilityMatchesMinimalSimulator(t *testing.T) {
	for _, n := range []int{2, 5, 7} {
		nw, stations, _ := buildSaturated(n, 1, 3)
		nw.Run(4e7)
		var acked, collided uint64
		key := LinkKey{Peer: addr(100), Priority: config.CA1, Direction: hpav.DirectionTx}
		for _, s := range stations {
			c := s.Counters().Fetch(key)
			acked += c.Acked
			collided += c.Collided
		}
		macP := float64(collided) / float64(acked)

		in := sim.DefaultInputs(n)
		in.SimTime = 4e7
		e, err := sim.NewEngine(in)
		if err != nil {
			t.Fatal(err)
		}
		simP := e.Run().CollisionProbability

		if math.Abs(macP-simP) > 0.025 {
			t.Errorf("N=%d: MAC collision probability %.4f vs minimal simulator %.4f (> 0.025 apart)", n, macP, simP)
		}
	}
}

func TestBurstsCarryCountdown(t *testing.T) {
	nw, _, dst := buildSaturated(2, 2, 4)
	var caps []hpav.SnifferInd
	dst.SnifferEnabled = true
	dst.Sniffer = func(ind hpav.SnifferInd) { caps = append(caps, ind) }
	nw.Run(5e6)
	if len(caps) < 4 {
		t.Fatalf("only %d captures", len(caps))
	}
	// Captures come in burst pairs: MPDUCnt 1 then 0 with equal BurstID.
	for i := 0; i+1 < len(caps); i += 2 {
		a, b := caps[i].SoF, caps[i+1].SoF
		if a.MPDUCnt != 1 || b.MPDUCnt != 0 {
			t.Fatalf("capture pair %d: MPDUCnt %d,%d want 1,0", i/2, a.MPDUCnt, b.MPDUCnt)
		}
		if a.BurstID != b.BurstID || a.STEI != b.STEI {
			t.Fatalf("capture pair %d: mixed bursts", i/2)
		}
	}
}

func TestSnifferDisabledReceivesNothing(t *testing.T) {
	nw, _, dst := buildSaturated(2, 2, 5)
	called := 0
	dst.SnifferEnabled = false
	dst.Sniffer = func(hpav.SnifferInd) { called++ }
	nw.Run(2e6)
	if called != 0 {
		t.Errorf("sniffer callback fired %d times while disabled", called)
	}
}

// TestPriorityResolution: a CA2 flow must always win the channel over
// saturated CA1 flows — "only the stations belonging to the highest
// contending priority class run the backoff process".
func TestPriorityResolution(t *testing.T) {
	root := rng.New(7)
	nw := NewNetwork()
	dst := NewStation("D", 100, addr(100), root.Split(1000))
	nw.Attach(dst)

	ca1 := NewStation("bulk", 1, addr(1), root.Split(1))
	ca1.AddFlow(&Flow{Source: traffic.Saturated{}, Spec: BurstSpec{
		Dst: 100, DstAddr: addr(100), Priority: config.CA1,
		MPDUs: 2, PBsPerMPDU: 4, FrameMicros: timing.DefaultFrameDuration,
	}})
	nw.Attach(ca1)

	mgmt := NewStation("mgmt", 2, addr(2), root.Split(2))
	mgmtSrc := traffic.NewPoisson(50_000, root.Split(3)) // one MME every 50 ms
	mgmt.AddFlow(&Flow{Source: mgmtSrc, Spec: BurstSpec{
		Dst: 100, DstAddr: addr(100), Priority: config.CA2,
		MPDUs: 1, PBsPerMPDU: 1, FrameMicros: 150,
	}})
	nw.Attach(mgmt)

	var ca2Events, ca2Collisions int
	nw.Observe(ObserverFunc(func(ev Event) {
		if ev.Class == config.CA2 {
			switch ev.Kind {
			case EventSuccess:
				ca2Events++
			case EventCollision:
				ca2Collisions++
			}
		}
	}))
	nw.Run(3e7) // 30 s → ≈600 MMEs
	if ca2Events < 100 {
		t.Errorf("only %d CA2 successes; priority resolution is starving the high class", ca2Events)
	}
	if ca2Collisions != 0 {
		t.Errorf("%d CA2 collisions with a single CA2 station; classes are contending against each other", ca2Collisions)
	}
	st := nw.Stats()
	if st.PerClass[config.CA1] == nil || st.PerClass[config.CA1].Successes == 0 {
		t.Error("CA1 starved completely")
	}
}

func TestUnsaturatedQuietPeriods(t *testing.T) {
	root := rng.New(9)
	nw := NewNetwork()
	dst := NewStation("D", 100, addr(100), root.Split(1000))
	nw.Attach(dst)
	s := NewStation("slow", 1, addr(1), root.Split(1))
	s.AddFlow(&Flow{
		Source: traffic.NewPoisson(100_000, root.Split(2)), // 10 frames/s
		Spec: BurstSpec{Dst: 100, DstAddr: addr(100), Priority: config.CA1,
			MPDUs: 1, PBsPerMPDU: 4, FrameMicros: timing.DefaultFrameDuration},
	})
	nw.Attach(s)
	nw.Run(1e7)
	st := nw.Stats()
	if st.QuietTime == 0 {
		t.Error("no quiet time in a 10-frames/s scenario")
	}
	if st.QuietTime >= 1e7 {
		t.Error("all time quiet; traffic never served")
	}
	if st.Successes == 0 {
		t.Error("no successes")
	}
	if st.Collisions != 0 {
		t.Errorf("%d collisions with one station", st.Collisions)
	}
}

func TestTimeAccountingAcrossEvents(t *testing.T) {
	nw, _, _ := buildSaturated(3, 2, 11)
	var accounted float64
	nw.Observe(ObserverFunc(func(ev Event) { accounted += ev.Duration }))
	nw.Run(1e7)
	if got := nw.Now(); math.Abs(got-accounted) > 1e-6*got {
		t.Errorf("clock %v ≠ sum of event durations %v", got, accounted)
	}
	if nw.Now() < 1e7 {
		t.Errorf("run stopped early at %v", nw.Now())
	}
}

func TestRunResumes(t *testing.T) {
	nw, _, _ := buildSaturated(2, 2, 13)
	nw.Run(1e6)
	t1 := nw.Now()
	nw.Run(1e6)
	if nw.Now() <= t1 {
		t.Error("second Run did not advance the clock")
	}
	if nw.Now() < 2e6 {
		t.Errorf("clock %v after two 1e6 runs", nw.Now())
	}
}

func TestErrorModelCorruptsPBs(t *testing.T) {
	nw, _, _ := buildSaturated(1, 2, 17)
	nw.SetErrorModel(phy.NewBernoulli(0.1, rng.New(99)))
	nw.Run(1e7)
	st := nw.Stats()
	if st.ErroredPBs == 0 {
		t.Error("Bernoulli(0.1) corrupted nothing")
	}
	totalPBs := st.SuccessMPDUs * 4
	rate := float64(st.ErroredPBs) / float64(totalPBs)
	if math.Abs(rate-0.1) > 0.02 {
		t.Errorf("PB error rate %v, want ≈0.1", rate)
	}
}

func TestSetErrorModelNilRestoresClean(t *testing.T) {
	nw, _, _ := buildSaturated(1, 1, 19)
	nw.SetErrorModel(nil)
	nw.Run(1e6)
	if nw.Stats().ErroredPBs != 0 {
		t.Error("nil error model still corrupted blocks")
	}
}

func TestRxCountersMirrorTx(t *testing.T) {
	nw, stations, dst := buildSaturated(3, 2, 23)
	nw.Run(1e7)
	var txAcked uint64
	for _, s := range stations {
		c := s.Counters().Fetch(LinkKey{Peer: addr(100), Priority: config.CA1, Direction: hpav.DirectionTx})
		txAcked += c.Acked
	}
	var rxAcked uint64
	for i := range stations {
		c := dst.Counters().Fetch(LinkKey{Peer: addr(i + 1), Priority: config.CA1, Direction: hpav.DirectionRx})
		rxAcked += c.Acked
	}
	st := nw.Stats()
	// RX counts only successful deliveries; TX acked includes collided.
	if int64(rxAcked) != st.SuccessMPDUs {
		t.Errorf("rx acked %d ≠ delivered MPDUs %d", rxAcked, st.SuccessMPDUs)
	}
	if int64(txAcked) != st.SuccessMPDUs+st.CollidedMPDUs {
		t.Errorf("tx acked %d ≠ delivered + collided %d", txAcked, st.SuccessMPDUs+st.CollidedMPDUs)
	}
}

func TestCountersResetSemantics(t *testing.T) {
	nw, stations, _ := buildSaturated(2, 2, 29)
	key := LinkKey{Peer: addr(100), Priority: config.CA1, Direction: hpav.DirectionTx}
	nw.Run(1e6)
	if stations[0].Counters().Fetch(key).Acked == 0 {
		t.Fatal("no traffic counted")
	}
	stations[0].Counters().Reset(key)
	if c := stations[0].Counters().Fetch(key); c.Acked != 0 || c.Collided != 0 {
		t.Error("reset did not clear the link")
	}
	// The other station's counters must be untouched.
	if stations[1].Counters().Fetch(key).Acked == 0 {
		t.Error("reset leaked to another station")
	}
	nw.Run(1e6)
	if stations[0].Counters().Fetch(key).Acked == 0 {
		t.Error("counters did not resume after reset")
	}
}

func TestCountersKeysDeterministic(t *testing.T) {
	c := NewCounters()
	k1 := LinkKey{Peer: addr(2), Priority: config.CA1, Direction: hpav.DirectionTx}
	k2 := LinkKey{Peer: addr(1), Priority: config.CA2, Direction: hpav.DirectionRx}
	k3 := LinkKey{Peer: addr(1), Priority: config.CA1, Direction: hpav.DirectionTx}
	c.AddAcked(k1, 1)
	c.AddAcked(k2, 1)
	c.AddAcked(k3, 1)
	keys := c.Keys()
	if len(keys) != 3 {
		t.Fatalf("%d keys", len(keys))
	}
	if keys[0] != k3 || keys[1] != k2 || keys[2] != k1 {
		t.Errorf("keys not sorted: %v", keys)
	}
	c.ResetAll()
	if len(c.Keys()) != 0 {
		t.Error("ResetAll left keys")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, _, _ := buildSaturated(4, 2, 31)
	b, _, _ := buildSaturated(4, 2, 31)
	a.Run(5e6)
	b.Run(5e6)
	sa, sb := a.Stats(), b.Stats()
	if sa.Successes != sb.Successes || sa.Collisions != sb.Collisions || sa.IdleSlots != sb.IdleSlots {
		t.Errorf("equal seeds diverged: %+v vs %+v", sa, sb)
	}
}

func TestBurstSpecValidate(t *testing.T) {
	good := BurstSpec{Dst: 1, Priority: config.CA1, MPDUs: 2, PBsPerMPDU: 4, FrameMicros: 2050}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []BurstSpec{
		{Dst: 1, Priority: config.CA1, MPDUs: 0, PBsPerMPDU: 4, FrameMicros: 2050},
		{Dst: 1, Priority: config.CA1, MPDUs: 5, PBsPerMPDU: 4, FrameMicros: 2050},
		{Dst: 1, Priority: config.CA1, MPDUs: 2, PBsPerMPDU: 0, FrameMicros: 2050},
		{Dst: 1, Priority: config.CA1, MPDUs: 2, PBsPerMPDU: 4, FrameMicros: 0},
		{Dst: 1, Priority: config.Priority(8), MPDUs: 2, PBsPerMPDU: 4, FrameMicros: 2050},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestSetParamsBeforeStartOnly(t *testing.T) {
	nw, stations, _ := buildSaturated(1, 1, 37)
	nw.Run(1e5)
	defer func() {
		if recover() == nil {
			t.Error("SetParams after start accepted")
		}
	}()
	stations[0].SetParams(config.CA1, config.DefaultCA1())
}

func TestStationLookups(t *testing.T) {
	nw, stations, dst := buildSaturated(2, 1, 41)
	if nw.Station(1) != stations[0] || nw.Station(100) != dst {
		t.Error("TEI lookup broken")
	}
	if nw.StationByAddr(addr(2)) != stations[1] {
		t.Error("MAC lookup broken")
	}
	if nw.Station(250) != nil {
		t.Error("unknown TEI returned a station")
	}
	if len(nw.Stations()) != 3 {
		t.Errorf("Stations() returned %d", len(nw.Stations()))
	}
}

// TestBurstSizeDoesNotChangeCollisionRatio: bursts contend as units, so
// ΣC/ΣA is invariant to the burst size (both counters scale by k) while
// throughput improves. This is why the paper can compare MPDU-level
// counters against a frame-level simulator.
func TestBurstSizeDoesNotChangeCollisionRatio(t *testing.T) {
	ratio := func(k int) float64 {
		nw, stations, _ := buildSaturated(4, k, 43)
		nw.Run(3e7)
		var acked, collided uint64
		key := LinkKey{Peer: addr(100), Priority: config.CA1, Direction: hpav.DirectionTx}
		for _, s := range stations {
			c := s.Counters().Fetch(key)
			acked += c.Acked
			collided += c.Collided
		}
		return float64(collided) / float64(acked)
	}
	r1, r2 := ratio(1), ratio(2)
	if math.Abs(r1-r2) > 0.03 {
		t.Errorf("collision ratio changed with burst size: k=1 %.4f vs k=2 %.4f", r1, r2)
	}
}

// TestBurstingImprovesThroughput: two MPDUs per contention deliver more
// payload per unit time than one — the rationale for bursting.
func TestBurstingImprovesThroughput(t *testing.T) {
	thr := func(k int) float64 {
		nw, _, _ := buildSaturated(3, k, 47)
		nw.Run(3e7)
		st := nw.Stats()
		return st.PayloadMicros / st.Elapsed
	}
	t1, t2 := thr(1), thr(2)
	if t2 <= t1 {
		t.Errorf("burst of 2 throughput %v not above burst of 1 %v", t2, t1)
	}
}
