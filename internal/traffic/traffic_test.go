package traffic

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSaturatedAlwaysPending(t *testing.T) {
	var s Saturated
	for _, now := range []float64{0, 1, 1e9} {
		if !s.Pending(now) {
			t.Fatalf("saturated source not pending at %v", now)
		}
		if got := s.NextArrival(now); got != now {
			t.Fatalf("NextArrival(%v) = %v, want now", now, got)
		}
		s.Take(now) // must never panic
	}
	if s.Name() != "saturated" {
		t.Errorf("Name() = %q", s.Name())
	}
}

func TestPoissonValidation(t *testing.T) {
	for _, mean := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPoisson(%v) accepted", mean)
				}
			}()
			NewPoisson(mean, rng.New(1))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewPoisson(nil rng) accepted")
			}
		}()
		NewPoisson(100, nil)
	}()
}

func TestPoissonArrivalRate(t *testing.T) {
	const mean = 1000.0
	p := NewPoisson(mean, rng.New(42))
	const horizon = 1e7
	// Count arrivals by draining the backlog at the horizon.
	n := 0
	for p.Pending(horizon) {
		p.Take(horizon)
		n++
	}
	want := horizon / mean
	if math.Abs(float64(n)-want)/want > 0.05 {
		t.Errorf("%d arrivals in %v µs, want ≈%v", n, horizon, want)
	}
}

func TestPoissonPendingMonotone(t *testing.T) {
	p := NewPoisson(500, rng.New(7))
	if p.Pending(0) {
		t.Error("pending at t=0 before any arrival can occur")
	}
	next := p.NextArrival(0)
	if next <= 0 || math.IsInf(next, 0) {
		t.Fatalf("NextArrival(0) = %v", next)
	}
	if !p.Pending(next) {
		t.Error("not pending exactly at the announced arrival time")
	}
	if got := p.NextArrival(next); got != next {
		t.Errorf("NextArrival with backlog = %v, want %v (now)", got, next)
	}
}

func TestPoissonTakeEmptyPanics(t *testing.T) {
	p := NewPoisson(1e12, rng.New(1)) // arrivals effectively never
	defer func() {
		if recover() == nil {
			t.Error("Take with empty backlog did not panic")
		}
	}()
	p.Take(0)
}

func TestPoissonBacklogCounts(t *testing.T) {
	p := NewPoisson(100, rng.New(11))
	const now = 10000.0
	depth := p.Backlog(now)
	if depth < 50 || depth > 200 {
		t.Errorf("backlog at t=10000 with mean 100 = %d, want ≈100", depth)
	}
	p.Take(now)
	if got := p.Backlog(now); got != depth-1 {
		t.Errorf("backlog after Take = %d, want %d", got, depth-1)
	}
}

func TestPoissonName(t *testing.T) {
	p := NewPoisson(250, rng.New(1))
	if p.Name() != "poisson(mean=250µs)" {
		t.Errorf("Name() = %q", p.Name())
	}
}

func TestNoneSource(t *testing.T) {
	var n None
	if n.Pending(1e9) {
		t.Error("None pending")
	}
	if !math.IsInf(n.NextArrival(0), 1) {
		t.Error("None has an arrival")
	}
	if n.Name() != "none" {
		t.Errorf("Name() = %q", n.Name())
	}
	defer func() {
		if recover() == nil {
			t.Error("None.Take did not panic")
		}
	}()
	n.Take(0)
}

func TestPoissonDeterminism(t *testing.T) {
	a := NewPoisson(300, rng.New(5))
	b := NewPoisson(300, rng.New(5))
	for now := 0.0; now < 1e6; now += 1e5 {
		if a.Backlog(now) != b.Backlog(now) {
			t.Fatal("identical Poisson sources diverged")
		}
	}
}
