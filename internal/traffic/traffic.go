// Package traffic provides the load generators feeding the emulated
// testbed's stations.
//
// The paper's experiments use saturated UDP flows ("we assume that we
// have N saturated PLC stations transmitting UDP traffic to the same
// destination station called D"); the extended experiments also need
// unsaturated (Poisson) sources and the sparse management-message
// generators whose overhead Section 3.3 measures.
package traffic

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Source models a per-station, per-priority packet arrival process in
// simulated time (µs).
type Source interface {
	// Pending reports whether at least one frame is queued at time now.
	Pending(now float64) bool
	// Take consumes one queued frame at time now. It panics when
	// nothing is pending — the MAC only dequeues after Pending.
	Take(now float64)
	// NextArrival returns the absolute time of the next arrival after
	// now, or +Inf for saturated/exhausted sources. The medium uses it
	// to fast-forward idle periods.
	NextArrival(now float64) float64
	// Name labels the source in reports.
	Name() string
}

// Saturated always has a frame queued: the station re-enters backoff
// immediately after every transmission, which is the regime of every
// validation experiment.
type Saturated struct{}

// Pending always reports true.
func (Saturated) Pending(float64) bool { return true }

// Take is a no-op: the queue never drains.
func (Saturated) Take(float64) {}

// NextArrival reports an arrival "now": the source is backlogged.
func (Saturated) NextArrival(now float64) float64 { return now }

// Name returns "saturated".
func (Saturated) Name() string { return "saturated" }

// Poisson generates exponentially spaced arrivals with the given mean
// inter-arrival time, buffering them in an unbounded queue.
type Poisson struct {
	mean    float64
	src     *rng.Source
	next    float64
	backlog int
}

// NewPoisson builds a Poisson source with mean inter-arrival time in µs.
func NewPoisson(meanInterArrival float64, src *rng.Source) *Poisson {
	if meanInterArrival <= 0 || math.IsNaN(meanInterArrival) || math.IsInf(meanInterArrival, 0) {
		panic(fmt.Sprintf("traffic: NewPoisson(%v): mean must be positive and finite", meanInterArrival))
	}
	if src == nil {
		panic("traffic: NewPoisson: nil rng source")
	}
	p := &Poisson{mean: meanInterArrival, src: src}
	p.next = p.src.Exponential(p.mean)
	return p
}

// pull moves all arrivals up to now into the backlog.
func (p *Poisson) pull(now float64) {
	for p.next <= now {
		p.backlog++
		p.next += p.src.Exponential(p.mean)
	}
}

// Pending reports whether an arrival is queued at time now.
func (p *Poisson) Pending(now float64) bool {
	p.pull(now)
	return p.backlog > 0
}

// Take consumes one queued arrival.
func (p *Poisson) Take(now float64) {
	p.pull(now)
	if p.backlog == 0 {
		panic("traffic: Poisson.Take with empty backlog")
	}
	p.backlog--
}

// NextArrival returns the next arrival time (or now, if backlogged).
func (p *Poisson) NextArrival(now float64) float64 {
	p.pull(now)
	if p.backlog > 0 {
		return now
	}
	return p.next
}

// Name returns a rate-labelled name.
func (p *Poisson) Name() string { return fmt.Sprintf("poisson(mean=%.0fµs)", p.mean) }

// Backlog exposes the queue depth for tests and delay metrics.
func (p *Poisson) Backlog(now float64) int {
	p.pull(now)
	return p.backlog
}

// None never has traffic; it models attached-but-silent stations (the
// paper removes those from the power strip precisely because their
// management traffic would perturb measurements — the emulated testbed
// can represent them explicitly).
type None struct{}

// Pending always reports false.
func (None) Pending(float64) bool { return false }

// Take panics: nothing can be pending.
func (None) Take(float64) { panic("traffic: Take on None source") }

// NextArrival reports no future arrivals.
func (None) NextArrival(float64) float64 { return math.Inf(1) }

// Name returns "none".
func (None) Name() string { return "none" }
