package backoff

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/rng"
)

func newTestStation(seed uint64) *Station {
	return NewStation(config.DefaultCA1(), rng.New(seed))
}

func TestNewStationRejectsInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewStation accepted invalid params")
		}
	}()
	NewStation(config.Params{}, rng.New(1))
}

func TestNewStationRejectsNilRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewStation accepted nil rng")
		}
	}()
	NewStation(config.DefaultCA1(), nil)
}

func TestStartDrawsStageZero(t *testing.T) {
	s := newTestStation(1)
	s.Start()
	if s.CW() != 8 {
		t.Errorf("CW after Start = %d, want 8 (stage 0)", s.CW())
	}
	if s.DC() != 0 {
		t.Errorf("DC after Start = %d, want 0 (d_0 for CA1)", s.DC())
	}
	if bc := s.BC(); bc < 0 || bc > 7 {
		t.Errorf("BC after Start = %d, want in {0,…,7}", bc)
	}
	if s.BPC() != 1 {
		t.Errorf("BPC after Start = %d, want 1 (one redraw)", s.BPC())
	}
	if s.Stage() != 0 {
		t.Errorf("Stage after Start = %d, want 0", s.Stage())
	}
}

func TestStartTwicePanics(t *testing.T) {
	s := newTestStation(1)
	s.Start()
	defer func() {
		if recover() == nil {
			t.Error("second Start did not panic")
		}
	}()
	s.Start()
}

func TestIdleCountdownReachesTransmit(t *testing.T) {
	// Find a seed whose first draw is > 0, then count down.
	for seed := uint64(1); seed < 50; seed++ {
		s := newTestStation(seed)
		if s.Start() == Transmit {
			continue
		}
		b := s.BC()
		for i := 0; i < b-1; i++ {
			if a := s.AfterIdle(); a != Defer {
				t.Fatalf("seed %d: transmit after %d of %d idle slots", seed, i+1, b)
			}
		}
		if a := s.AfterIdle(); a != Transmit {
			t.Fatalf("seed %d: no transmit after %d idle slots", seed, b)
		}
		if s.DC() != 0 {
			t.Errorf("idle slots moved DC to %d; deferral counter must ignore idle slots", s.DC())
		}
		return
	}
	t.Fatal("no seed with BC > 0 found")
}

func TestAfterIdleOnExpiredPanics(t *testing.T) {
	for seed := uint64(1); seed < 50; seed++ {
		s := newTestStation(seed)
		if s.Start() != Transmit {
			continue
		}
		defer func() {
			if recover() == nil {
				t.Error("AfterIdle on expired backoff did not panic")
			}
		}()
		s.AfterIdle()
		return
	}
	t.Fatal("no seed with BC == 0 found")
}

func TestAfterIdleBeforeStartPanics(t *testing.T) {
	s := newTestStation(1)
	defer func() {
		if recover() == nil {
			t.Error("AfterIdle before Start did not panic")
		}
	}()
	s.AfterIdle()
}

// TestSuccessResetsToStageZero verifies the success path of Figure 1:
// the winner restarts at backoff stage 0.
func TestSuccessResetsToStageZero(t *testing.T) {
	s := newTestStation(1)
	s.Start()
	driveToTransmit(s)
	s.AfterBusy(true, true)
	if s.Stage() != 0 || s.CW() != 8 || s.BPC() != 1 {
		t.Errorf("after success: stage=%d CW=%d BPC=%d, want 0/8/1", s.Stage(), s.CW(), s.BPC())
	}
}

// TestCollisionAdvancesStage verifies the collision path: next stage,
// larger window, Table 1 deferral value.
func TestCollisionAdvancesStage(t *testing.T) {
	s := newTestStation(1)
	s.Start()
	driveToTransmit(s)
	s.AfterBusy(true, false)
	if s.Stage() != 1 || s.CW() != 16 || s.DC() != 1 {
		t.Errorf("after collision: stage=%d CW=%d DC=%d, want 1/16/1", s.Stage(), s.CW(), s.DC())
	}
	// A second collision moves to stage 2.
	driveToTransmit(s)
	s.AfterBusy(true, false)
	if s.Stage() != 2 || s.CW() != 32 || s.DC() != 3 {
		t.Errorf("after 2nd collision: stage=%d CW=%d DC=%d, want 2/32/3", s.Stage(), s.CW(), s.DC())
	}
}

// TestStageSaturatesAtLast verifies that collisions beyond the last
// stage re-enter the last stage (Table 1: BPC ≥ 3 → stage 3).
func TestStageSaturatesAtLast(t *testing.T) {
	s := newTestStation(1)
	s.Start()
	for k := 0; k < 10; k++ {
		driveToTransmit(s)
		s.AfterBusy(true, false)
	}
	if s.Stage() != 3 || s.CW() != 64 {
		t.Errorf("after 10 collisions: stage=%d CW=%d, want 3/64", s.Stage(), s.CW())
	}
}

// TestDeferralJump exercises the 1901-specific mechanism: with d_0 = 0,
// the very first overheard busy period at stage 0 must move the station
// to stage 1 without a transmission attempt.
func TestDeferralJump(t *testing.T) {
	for seed := uint64(1); seed < 100; seed++ {
		s := newTestStation(seed)
		if s.Start() == Transmit {
			continue // need BC > 0 so the station is listening
		}
		s.AfterBusy(false, true) // overhear a success with DC = 0
		if s.Stage() != 1 || s.CW() != 16 || s.DC() != 1 {
			t.Fatalf("seed %d: overheard busy at stage 0 (d0=0): stage=%d CW=%d DC=%d, want 1/16/1",
				seed, s.Stage(), s.CW(), s.DC())
		}
		if s.Deferrals() != 1 {
			t.Fatalf("Deferrals() = %d, want 1", s.Deferrals())
		}
		return
	}
	t.Fatal("no suitable seed found")
}

// TestDeferralCountdown verifies that at stage 1 (d1 = 1) the first busy
// period decrements DC and BC, and the second triggers the jump.
func TestDeferralCountdown(t *testing.T) {
	for seed := uint64(1); seed < 200; seed++ {
		s := newTestStation(seed)
		if s.Start() == Transmit {
			continue
		}
		s.AfterBusy(false, true) // jump to stage 1 (d0 = 0)
		if s.BC() < 2 {
			continue // need room for two busy periods without expiry
		}
		bc := s.BC()
		s.AfterBusy(false, false) // first busy: decrement both
		if s.Stage() != 1 || s.BC() != bc-1 || s.DC() != 0 {
			t.Fatalf("seed %d: first busy at stage 1: stage=%d BC=%d DC=%d, want 1/%d/0",
				seed, s.Stage(), s.BC(), s.DC(), bc-1)
		}
		s.AfterBusy(false, true) // second busy with DC = 0: jump
		if s.Stage() != 2 || s.CW() != 32 || s.DC() != 3 {
			t.Fatalf("seed %d: second busy: stage=%d CW=%d DC=%d, want 2/32/3",
				seed, s.Stage(), s.CW(), s.DC())
		}
		return
	}
	t.Fatal("no suitable seed found")
}

// TestOverheardSuccessDoesNotResetStage: only the transmitting winner
// returns to stage 0; bystanders keep their stage (or advance via DC).
func TestOverheardSuccessKeepsStage(t *testing.T) {
	for seed := uint64(1); seed < 200; seed++ {
		s := newTestStation(seed)
		if s.Start() == Transmit {
			continue
		}
		s.AfterBusy(false, true) // → stage 1
		if s.BC() < 2 {
			continue
		}
		s.AfterBusy(false, true) // overheard success, DC 1→0, stays stage 1
		if s.Stage() != 1 {
			t.Fatalf("seed %d: overheard success reset stage to %d", seed, s.Stage())
		}
		return
	}
	t.Fatal("no suitable seed found")
}

func TestAfterBusyTransmittedWithPendingBackoffPanics(t *testing.T) {
	for seed := uint64(1); seed < 100; seed++ {
		s := newTestStation(seed)
		if s.Start() == Transmit {
			continue
		}
		defer func() {
			if recover() == nil {
				t.Error("AfterBusy(transmitted) with BC > 0 did not panic")
			}
		}()
		s.AfterBusy(true, true)
		return
	}
	t.Fatal("no suitable seed found")
}

func TestResetRestoresFreshState(t *testing.T) {
	s := newTestStation(1)
	s.Start()
	driveToTransmit(s)
	s.AfterBusy(true, false)
	s.Reset()
	if s.BPC() != 0 || s.Redraws() != 0 || s.Deferrals() != 0 {
		t.Errorf("Reset left BPC=%d redraws=%d deferrals=%d", s.BPC(), s.Redraws(), s.Deferrals())
	}
	// Start must work again after Reset.
	s.Start()
	if s.Stage() != 0 {
		t.Errorf("stage after Reset+Start = %d", s.Stage())
	}
}

func TestSnapshotMatchesAccessors(t *testing.T) {
	s := newTestStation(42)
	s.Start()
	snap := s.Snapshot()
	if snap.BC != s.BC() || snap.DC != s.DC() || snap.CW != s.CW() ||
		snap.BPC != s.BPC() || snap.Stage != s.Stage() {
		t.Errorf("Snapshot %+v disagrees with accessors", snap)
	}
}

func TestParamsAccessor(t *testing.T) {
	p := config.DefaultCA1()
	s := NewStation(p, rng.New(1))
	if !s.Params().Equal(p) {
		t.Error("Params() does not round-trip")
	}
}

// driveToTransmit advances a station through idle slots until its
// backoff expires. With CA1 windows this takes at most 63 slots.
func driveToTransmit(s *Station) {
	for s.BC() > 0 {
		s.AfterIdle()
	}
}

// Property: the backoff counter never goes negative and never exceeds
// the current window, across arbitrary busy/idle event sequences.
func TestCounterBoundsProperty(t *testing.T) {
	f := func(seed uint64, events []bool) bool {
		s := NewStation(config.DefaultCA1(), rng.New(seed))
		a := s.Start()
		for _, busy := range events {
			if a == Transmit {
				// Model a transmission outcome: treat "busy" as success.
				a = s.AfterBusy(true, busy)
			} else if busy {
				a = s.AfterBusy(false, false)
			} else {
				a = s.AfterIdle()
			}
			if s.BC() < 0 || s.BC() >= s.CW() {
				return false
			}
			if s.DC() < 0 {
				return false
			}
			if st := s.Stage(); st < 0 || st > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a station that only ever wins returns to stage 0 forever.
func TestAlwaysWinningStaysAtStageZeroProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := NewStation(config.DefaultCA1(), rng.New(seed))
		s.Start()
		for k := 0; k < 200; k++ {
			driveToTransmit(s)
			s.AfterBusy(true, true)
			if s.Stage() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: intent is Transmit exactly when BC == 0.
func TestIntentConsistencyProperty(t *testing.T) {
	f := func(seed uint64, events []bool) bool {
		s := NewStation(config.DefaultCA1(), rng.New(seed))
		a := s.Start()
		for _, busy := range events {
			if (a == Transmit) != (s.BC() == 0) {
				return false
			}
			if a == Transmit {
				a = s.AfterBusy(true, !busy)
			} else if busy {
				a = s.AfterBusy(false, true)
			} else {
				a = s.AfterIdle()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFigure1Scenario replays the exact two-station example of Figure 1
// of the paper and checks the documented behaviours: the winner restarts
// at stage 0 with CW 8, the loser climbs to CW 16 with DC 1, and a
// deferral with DC = 0 changes CW without a transmission.
func TestFigure1Scenario(t *testing.T) {
	// Station B of Figure 1: starts at stage 0 (CW 8, DC 0), overhears
	// station A's transmission → jumps to stage 1 (CW 16, DC 1); after
	// overhearing a second transmission with DC 1 → DC 0 and stays;
	// a third overheard busy with DC 0 → would jump again, but in the
	// figure B's counter expires first and B transmits, returning to
	// stage 0 on success.
	b := newTestStation(3)
	if b.Start() == Transmit {
		t.Skip("seed draws BC=0; scenario needs a listening station")
	}
	b.AfterBusy(false, true)
	if b.CW() != 16 || b.DC() != 1 {
		t.Fatalf("B after overhearing A: CW=%d DC=%d, want 16/1", b.CW(), b.DC())
	}
	if b.BC() == 0 {
		t.Skip("redraw hit 0; pick of figure needs countdown room")
	}
	b.AfterBusy(false, true)
	if b.CW() != 16 || b.DC() != 0 {
		t.Fatalf("B after 2nd overhear: CW=%d DC=%d, want 16/0", b.CW(), b.DC())
	}
	// B's backoff expires; B transmits successfully → back to stage 0.
	driveToTransmit(b)
	b.AfterBusy(true, true)
	if b.CW() != 8 || b.Stage() != 0 {
		t.Fatalf("B after winning: CW=%d stage=%d, want 8/0", b.CW(), b.Stage())
	}
}
