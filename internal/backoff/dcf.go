package backoff

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/rng"
)

// DCFStation is an 802.11 distributed-coordination-function backoff
// engine, the baseline of the 1901 comparisons.
//
// Two conventions exist for how a busy period interacts with the backoff
// counter. In the hardware, BC freezes while the medium is busy and
// resumes afterwards; in Bianchi-style slotted analyses (and in the
// paper's 1901 simulator, whose busy period also consumes one counter
// decrement), the busy period counts as a single slot. DCFStation
// supports both through the DecrementOnBusy flag so the 1901-vs-802.11
// comparison can be run under either convention; the papers' plots use
// the slotted convention (true).
type DCFStation struct {
	cfg             config.DCF
	src             *rng.Source
	DecrementOnBusy bool

	stage int
	bc    int
	fresh bool

	redraws int64
}

// NewDCFStation returns an 802.11 station with the slotted (Bianchi)
// busy-decrement convention, matching how the 1901 simulator accounts
// for busy periods.
func NewDCFStation(cfg config.DCF, src *rng.Source) *DCFStation {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("backoff: NewDCFStation: %v", err))
	}
	if src == nil {
		panic("backoff: NewDCFStation: nil rng source")
	}
	s := &DCFStation{cfg: cfg, src: src, DecrementOnBusy: true}
	s.Reset()
	return s
}

// Reset returns the station to the fresh state preceding its first draw.
func (s *DCFStation) Reset() {
	s.stage = 0
	s.bc = 0
	s.fresh = true
	s.redraws = 0
}

func (s *DCFStation) redraw() {
	s.bc = s.src.Backoff(s.cfg.Window(s.stage))
	s.fresh = false
	s.redraws++
}

// Start performs the initial stage-0 draw.
func (s *DCFStation) Start() Action {
	if !s.fresh {
		panic("backoff: DCF Start called twice without Reset")
	}
	s.redraw()
	return s.intent()
}

func (s *DCFStation) intent() Action {
	if s.bc == 0 {
		return Transmit
	}
	return Defer
}

// AfterIdle advances across one idle slot.
func (s *DCFStation) AfterIdle() Action {
	if s.fresh {
		panic("backoff: DCF AfterIdle before Start")
	}
	if s.bc == 0 {
		panic("backoff: DCF AfterIdle on a station with expired backoff")
	}
	s.bc--
	return s.intent()
}

// AfterIdleN advances across k consecutive idle slots in O(1); like the
// 1901 machine, DCF idle slots consume no randomness, so the state is
// bit-identical to k successive AfterIdle calls. 1 ≤ k ≤ BC.
//
//plclint:noalloc
func (s *DCFStation) AfterIdleN(k int) Action {
	if s.fresh {
		panic("backoff: DCF AfterIdleN before Start")
	}
	if k < 1 {
		panic(fmt.Sprintf("backoff: DCF AfterIdleN(%d): batch must cover at least one slot", k))
	}
	if k > s.bc {
		panic(fmt.Sprintf("backoff: DCF AfterIdleN(%d) with BC=%d; the station would transmit before the batch ends", k, s.bc))
	}
	s.bc -= k
	return s.intent()
}

// AfterBusy advances across one busy period. In 802.11 there is no
// deferral counter: overhearing stations either freeze (hardware
// convention) or pay one slot (slotted convention); transmitters double
// their window on collision and reset it on success.
func (s *DCFStation) AfterBusy(transmitted, success bool) Action {
	switch {
	case s.fresh:
		s.redraw()
	case transmitted && success:
		s.stage = 0
		s.redraw()
	case transmitted: // collision
		s.stage++
		s.redraw()
	default: // overheard
		if s.DecrementOnBusy && s.bc > 0 {
			s.bc--
		}
	}
	return s.intent()
}

// BC returns the current backoff counter.
func (s *DCFStation) BC() int { return s.bc }

// Stage returns the current backoff stage.
func (s *DCFStation) Stage() int { return s.stage }

// CW returns the contention window of the current stage.
func (s *DCFStation) CW() int { return s.cfg.Window(s.stage) }

// Redraws returns the number of redraws since Reset.
func (s *DCFStation) Redraws() int64 { return s.redraws }

// Process is the common interface of the two backoff engines, letting
// the simulator run either protocol through identical code.
type Process interface {
	Start() Action
	AfterIdle() Action
	AfterIdleN(k int) Action
	AfterBusy(transmitted, success bool) Action
	Reset()
	BC() int
}

var (
	_ Process = (*Station)(nil)
	_ Process = (*DCFStation)(nil)
)
