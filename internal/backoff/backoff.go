// Package backoff implements the per-station CSMA/CA backoff processes
// studied by the paper: the IEEE 1901 process with its three counters
// (backoff counter BC, deferral counter DC, backoff procedure counter
// BPC), and the 802.11 DCF process used as baseline.
//
// The types here are pure state machines: they know nothing about time,
// the medium, frames or priorities. The slot-synchronous simulator
// (internal/sim), the event-driven MAC (internal/mac) and the analytical
// model's validation tests all drive the same machine, which is what
// makes the cross-validation of Figure 2 meaningful.
//
// # Semantics
//
// The machine follows the finite state machine of the 1901 standard
// exactly as in the simulator published with the paper:
//
//   - Upon a fresh start (new packet after a success, or first packet),
//     the station enters backoff stage 0, draws BC uniformly in
//     {0,…,CW0−1}, and sets DC to d0.
//   - Each idle slot decrements BC. When BC reaches 0, the station
//     attempts transmission in the next slot.
//   - Each busy period (a transmission by any station) counts as one
//     slot for the counters: it decrements both BC and DC — unless DC
//     was already 0 when the busy period was sensed, in which case the
//     station jumps to the next backoff stage and redraws BC without
//     attempting a transmission (the 1901-specific deferral mechanism).
//   - A collision moves the station to the next backoff stage; a success
//     resets it to stage 0. Stages beyond the last re-enter the last.
//
// BPC counts the redraws since the last success, so the stage used at
// redraw k is min(k, m−1), matching Table 1's "BPC ≥ 3 → stage 3".
package backoff

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/rng"
)

// Action is a station's intent for the next contention slot.
type Action int

const (
	// Defer: the station stays silent for the upcoming slot.
	Defer Action = iota
	// Transmit: the station's backoff counter has expired; it transmits
	// in the upcoming slot.
	Transmit
)

// String returns "defer" or "transmit".
func (a Action) String() string {
	if a == Transmit {
		return "transmit"
	}
	return "defer"
}

// Station is a single IEEE 1901 station's backoff engine.
type Station struct {
	params config.Params
	src    *rng.Source

	bpc int // backoff procedure counter (redraws since last success)
	bc  int // backoff counter
	dc  int // deferral counter
	cw  int // contention window of the current stage (for introspection)

	fresh bool // true before the very first redraw (MATLAB BPC==0 state)

	// Counters for statistics and invariant checks.
	redraws   int64 // total BC redraws
	deferrals int64 // redraws caused by deferral-counter expiry
}

// NewStation returns a station using the given parameters and random
// stream. It panics if params is invalid: constructing a station from an
// unvalidated configuration is a programming error (CLI and search code
// validate user input before reaching here).
func NewStation(params config.Params, src *rng.Source) *Station {
	if err := params.Validate(); err != nil {
		panic(fmt.Sprintf("backoff: NewStation: %v", err))
	}
	if src == nil {
		panic("backoff: NewStation: nil rng source")
	}
	s := &Station{params: params, src: src}
	s.Reset()
	return s
}

// Reset returns the station to its initial state: as if a new packet
// just arrived at a station that has never contended. The first call to
// AfterBusy or Start will draw the stage-0 backoff.
func (s *Station) Reset() {
	s.bpc = 0
	s.bc = 0
	s.dc = 0
	s.cw = s.params.CW[0]
	s.fresh = true
	s.redraws = 0
	s.deferrals = 0
}

// redraw enters the backoff stage addressed by the current BPC, draws a
// fresh backoff counter and advances BPC. deferral records whether this
// redraw was caused by deferral-counter expiry (for statistics).
func (s *Station) redraw(deferral bool) {
	stage := s.params.Stage(s.bpc)
	s.cw = s.params.CW[stage]
	s.dc = s.params.DC[stage]
	s.bc = s.src.Backoff(s.cw)
	s.bpc++
	s.fresh = false
	s.redraws++
	if deferral {
		s.deferrals++
	}
}

// Start performs the initial stage-0 draw and returns the station's
// intent for the first slot. Call exactly once after Reset (the
// slot-synchronous simulator instead reaches the same state through
// AfterBusy's fresh-start path; both are equivalent).
func (s *Station) Start() Action {
	if !s.fresh {
		panic("backoff: Start called twice without Reset")
	}
	s.redraw(false)
	return s.intent()
}

// intent converts the current BC into the next-slot action.
func (s *Station) intent() Action {
	if s.bc == 0 {
		return Transmit
	}
	return Defer
}

// AfterIdle advances the machine across one idle slot: BC decrements;
// DC is untouched (the deferral counter reacts only to busy slots).
// It must not be called while the station intends to transmit.
func (s *Station) AfterIdle() Action {
	if s.fresh {
		panic("backoff: AfterIdle before Start")
	}
	if s.bc == 0 {
		panic("backoff: AfterIdle called on a station whose backoff expired (it should be transmitting)")
	}
	s.bc--
	return s.intent()
}

// AfterIdleN advances the machine across k consecutive idle slots in
// O(1): BC decrements by k in one step. Idle slots touch neither the
// deferral counter nor the random stream, so the result is bit-identical
// to k successive AfterIdle calls — the property the simulator's
// idle-slot fast-forward relies on. k must satisfy 1 ≤ k ≤ BC (the k-th
// batched slot still needs a pending backoff to decrement).
//
//plclint:noalloc
func (s *Station) AfterIdleN(k int) Action {
	if s.fresh {
		panic("backoff: AfterIdleN before Start")
	}
	if k < 1 {
		panic(fmt.Sprintf("backoff: AfterIdleN(%d): batch must cover at least one slot", k))
	}
	if k > s.bc {
		panic(fmt.Sprintf("backoff: AfterIdleN(%d) with BC=%d; the station would transmit before the batch ends", k, s.bc))
	}
	s.bc -= k
	return s.intent()
}

// AfterBusy advances the machine across one busy period of the medium —
// a slot in which at least one station transmitted.
//
// transmitted tells whether this station was among the transmitters, and
// success whether the busy period was a successful transmission (exactly
// one transmitter). The four combinations cover: my success, my
// collision, an overheard success and an overheard collision.
//
// Returns the station's intent for the next slot.
func (s *Station) AfterBusy(transmitted, success bool) Action {
	if transmitted && s.bc != 0 && !s.fresh {
		panic(fmt.Sprintf("backoff: AfterBusy(transmitted=true) with BC=%d; only stations with expired backoff transmit", s.bc))
	}
	if transmitted && success {
		// Successful transmission: restart at backoff stage 0 for the
		// next frame (saturated stations always have a next frame).
		s.bpc = 0
	}
	// This is the State-0 path of the published simulator: a fresh
	// station, a station whose BC expired (it just transmitted), or a
	// station whose DC expired redraws; everyone else pays one slot on
	// both counters.
	switch {
	case s.fresh || s.bc == 0:
		s.redraw(false)
	case s.dc == 0:
		// Deferral: sensed busy with DC exhausted → next stage, no
		// transmission attempt. This is the 1901-specific transition.
		s.redraw(true)
	default:
		s.bc--
		s.dc--
	}
	return s.intent()
}

// BC returns the current backoff counter (slots until transmission).
func (s *Station) BC() int { return s.bc }

// DC returns the current deferral counter.
func (s *Station) DC() int { return s.dc }

// BPC returns the backoff procedure counter: redraws since last success.
func (s *Station) BPC() int { return s.bpc }

// Stage returns the backoff stage the station currently sits in
// (the stage used by its most recent redraw).
func (s *Station) Stage() int {
	// The most recent redraw used min(bpc-1, m-1); bpc==0 only before
	// Start or right after a success, where the stage is still the one
	// of the pending frame (0 after success).
	if s.bpc == 0 {
		return 0
	}
	return s.params.Stage(s.bpc - 1)
}

// CW returns the contention window of the current stage.
func (s *Station) CW() int { return s.cw }

// Redraws returns the total number of backoff redraws since Reset.
func (s *Station) Redraws() int64 { return s.redraws }

// Deferrals returns how many redraws were caused by deferral-counter
// expiry (as opposed to transmissions and fresh starts).
func (s *Station) Deferrals() int64 { return s.deferrals }

// Params returns the configuration the station runs.
func (s *Station) Params() config.Params { return s.params }

// Snapshot captures the visible counters for trace output (the columns
// of Figure 1: CW_i, DC, BC per station).
type Snapshot struct {
	CW    int
	DC    int
	BC    int
	BPC   int
	Stage int
}

// Snapshot returns the station's current counters.
func (s *Station) Snapshot() Snapshot {
	return Snapshot{CW: s.cw, DC: s.dc, BC: s.bc, BPC: s.bpc, Stage: s.Stage()}
}
