package backoff

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/rng"
)

func newTestDCF(seed uint64) *DCFStation {
	return NewDCFStation(config.Default80211(), rng.New(seed))
}

func TestDCFRejectsInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDCFStation accepted invalid config")
		}
	}()
	NewDCFStation(config.DCF{CWmin: 0, CWmax: 8}, rng.New(1))
}

func TestDCFRejectsNilRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDCFStation accepted nil rng")
		}
	}()
	NewDCFStation(config.Default80211(), nil)
}

func TestDCFStartStageZero(t *testing.T) {
	s := newTestDCF(1)
	s.Start()
	if s.Stage() != 0 || s.CW() != 16 {
		t.Errorf("after Start: stage=%d CW=%d, want 0/16", s.Stage(), s.CW())
	}
	if bc := s.BC(); bc < 0 || bc > 15 {
		t.Errorf("BC = %d outside {0,…,15}", bc)
	}
}

func TestDCFStartTwicePanics(t *testing.T) {
	s := newTestDCF(1)
	s.Start()
	defer func() {
		if recover() == nil {
			t.Error("second Start did not panic")
		}
	}()
	s.Start()
}

func TestDCFCollisionDoublesWindow(t *testing.T) {
	s := newTestDCF(1)
	s.Start()
	wants := []int{32, 64, 128, 256, 512, 1024, 1024, 1024}
	for i, want := range wants {
		driveDCFToTransmit(s)
		s.AfterBusy(true, false)
		if s.CW() != want {
			t.Fatalf("after collision %d: CW=%d, want %d", i+1, s.CW(), want)
		}
	}
}

func TestDCFSuccessResetsWindow(t *testing.T) {
	s := newTestDCF(1)
	s.Start()
	for i := 0; i < 3; i++ {
		driveDCFToTransmit(s)
		s.AfterBusy(true, false)
	}
	driveDCFToTransmit(s)
	s.AfterBusy(true, true)
	if s.Stage() != 0 || s.CW() != 16 {
		t.Errorf("after success: stage=%d CW=%d, want 0/16", s.Stage(), s.CW())
	}
}

func TestDCFNoDeferralMechanism(t *testing.T) {
	// Unlike 1901, overhearing busy periods must never change the DCF
	// stage, no matter how many occur.
	for seed := uint64(1); seed < 100; seed++ {
		s := newTestDCF(seed)
		if s.Start() == Transmit {
			continue
		}
		start := s.BC()
		for i := 0; i < start-1; i++ {
			s.AfterBusy(false, i%2 == 0)
			if s.Stage() != 0 {
				t.Fatalf("overheard busy changed DCF stage to %d", s.Stage())
			}
		}
		return
	}
	t.Fatal("no suitable seed")
}

func TestDCFSlottedBusyConvention(t *testing.T) {
	for seed := uint64(1); seed < 100; seed++ {
		s := newTestDCF(seed)
		if s.Start() == Transmit || s.BC() < 2 {
			continue
		}
		bc := s.BC()
		s.AfterBusy(false, true)
		if s.BC() != bc-1 {
			t.Fatalf("slotted convention: BC %d → %d, want %d", bc, s.BC(), bc-1)
		}
		// Hardware convention: freeze.
		s.DecrementOnBusy = false
		bc = s.BC()
		s.AfterBusy(false, true)
		if s.BC() != bc {
			t.Fatalf("freeze convention: BC %d → %d, want unchanged", bc, s.BC())
		}
		return
	}
	t.Fatal("no suitable seed")
}

func TestDCFAfterIdlePanics(t *testing.T) {
	s := newTestDCF(1)
	defer func() {
		if recover() == nil {
			t.Error("AfterIdle before Start did not panic")
		}
	}()
	s.AfterIdle()
}

func TestDCFReset(t *testing.T) {
	s := newTestDCF(1)
	s.Start()
	driveDCFToTransmit(s)
	s.AfterBusy(true, false)
	s.Reset()
	if s.Stage() != 0 || s.Redraws() != 0 {
		t.Errorf("Reset left stage=%d redraws=%d", s.Stage(), s.Redraws())
	}
	s.Start()
	if s.CW() != 16 {
		t.Errorf("CW after Reset+Start = %d", s.CW())
	}
}

func driveDCFToTransmit(s *DCFStation) {
	for s.BC() > 0 {
		s.AfterIdle()
	}
}

// Property: DCF counters stay within bounds over arbitrary event
// sequences under both busy conventions.
func TestDCFCounterBoundsProperty(t *testing.T) {
	f := func(seed uint64, events []bool, slotted bool) bool {
		s := NewDCFStation(config.Default80211(), rng.New(seed))
		s.DecrementOnBusy = slotted
		a := s.Start()
		for _, busy := range events {
			if a == Transmit {
				a = s.AfterBusy(true, busy)
			} else if busy {
				a = s.AfterBusy(false, false)
			} else {
				a = s.AfterIdle()
			}
			if s.BC() < 0 || s.BC() >= s.CW() {
				return false
			}
			if s.CW() > 1024 || s.CW() < 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
