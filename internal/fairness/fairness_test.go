package fairness

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJainIndexKnownValues(t *testing.T) {
	tests := []struct {
		shares []float64
		want   float64
	}{
		{nil, 0},
		{[]float64{5}, 1},
		{[]float64{1, 1, 1, 1}, 1},
		{[]float64{1, 0}, 0.5},        // one of two takes all → 1/n
		{[]float64{1, 0, 0, 0}, 0.25}, // one of four takes all
		{[]float64{2, 2, 0, 0}, 0.5},  // half take all equally
		{[]float64{0, 0, 0}, 1},       // vacuous
	}
	for _, tc := range tests {
		if got := JainIndex(tc.shares); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("JainIndex(%v) = %v, want %v", tc.shares, got, tc.want)
		}
	}
}

func TestJainIndexInts(t *testing.T) {
	if got := JainIndexInts([]int{3, 3, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal counts: %v", got)
	}
	if got := JainIndexInts([]int{6, 0, 0}); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("monopoly of 3: %v", got)
	}
}

func TestCountBySource(t *testing.T) {
	trace := []int{1, 2, 1, 1, 3}
	counts := CountBySource(trace, []int{1, 2, 3, 4})
	want := map[int]int{1: 3, 2: 1, 3: 1, 4: 0}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("counts[%d] = %d, want %d", k, counts[k], v)
		}
	}
}

func TestShortTermJainValidation(t *testing.T) {
	if _, err := ShortTermJain([]int{1, 2}, []int{1, 2}, 0); err == nil {
		t.Error("window 0 accepted")
	}
	if _, err := ShortTermJain([]int{1, 2}, nil, 1); err == nil {
		t.Error("empty universe accepted")
	}
	if _, err := ShortTermJain([]int{1}, []int{1, 2}, 5); err == nil {
		t.Error("trace shorter than window accepted")
	}
}

func TestShortTermJainAlternating(t *testing.T) {
	// Perfect alternation: every even-size window is perfectly fair.
	trace := make([]int, 100)
	for i := range trace {
		trace[i] = i % 2
	}
	res, err := ShortTermJain(trace, []int{0, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanJain-1) > 1e-12 || math.Abs(res.MinJain-1) > 1e-12 {
		t.Errorf("alternating trace: mean %v min %v, want 1", res.MeanJain, res.MinJain)
	}
	if res.Windows != 91 {
		t.Errorf("%d windows, want 91", res.Windows)
	}
}

func TestShortTermJainMonopoly(t *testing.T) {
	trace := make([]int, 50)
	res, err := ShortTermJain(trace, []int{0, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanJain-0.5) > 1e-12 {
		t.Errorf("monopoly of 2: mean %v, want 0.5", res.MeanJain)
	}
}

// TestShortTermVsLongTerm: a blocky trace (AAAA BBBB AAAA …) is fair in
// the long run but unfair at small windows — the signature metric of
// the 1901 short-term unfairness study.
func TestShortTermVsLongTerm(t *testing.T) {
	var trace []int
	for b := 0; b < 25; b++ {
		for i := 0; i < 4; i++ {
			trace = append(trace, b%2)
		}
	}
	short, err := ShortTermJain(trace, []int{0, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	long, err := ShortTermJain(trace, []int{0, 1}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if short.MeanJain >= long.MeanJain {
		t.Errorf("short-window Jain %v not below long-window %v", short.MeanJain, long.MeanJain)
	}
	if long.MeanJain < 0.9 {
		t.Errorf("long-term fairness %v, want near 1", long.MeanJain)
	}
}

func TestShortTermIgnoresOutsiders(t *testing.T) {
	// Transmissions from stations outside the universe must not panic
	// or corrupt the window accounting.
	trace := []int{0, 1, 9, 0, 1, 9, 0, 1}
	res, err := ShortTermJain(trace, []int{0, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanJain <= 0 || res.MeanJain > 1 {
		t.Errorf("mean Jain %v out of range", res.MeanJain)
	}
}

func TestInterTxGaps(t *testing.T) {
	trace := []string{"a", "b", "b", "a", "c", "a"}
	gaps := InterTxGaps(trace, []string{"a", "b", "c"})
	// a at 0,3,5 → gaps 2, 1. b at 1,2 → gap 0. c single → none.
	if len(gaps["a"]) != 2 || gaps["a"][0] != 2 || gaps["a"][1] != 1 {
		t.Errorf(`gaps["a"] = %v, want [2 1]`, gaps["a"])
	}
	if len(gaps["b"]) != 1 || gaps["b"][0] != 0 {
		t.Errorf(`gaps["b"] = %v, want [0]`, gaps["b"])
	}
	if len(gaps["c"]) != 0 {
		t.Errorf(`gaps["c"] = %v, want empty`, gaps["c"])
	}
}

func TestGapHelpers(t *testing.T) {
	if MeanGap(nil) != 0 || MaxGap(nil) != 0 {
		t.Error("empty gaps should be 0")
	}
	if got := MeanGap([]int{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("MeanGap = %v", got)
	}
	if got := MaxGap([]int{1, 7, 3}); got != 7 {
		t.Errorf("MaxGap = %v", got)
	}
}

func TestConsecutiveWins(t *testing.T) {
	runs := ConsecutiveWins([]int{1, 1, 2, 1, 1, 1, 2, 2})
	// Runs: 1×2, 2×1, 1×3, 2×2 → lengths {2:2, 1:1, 3:1}.
	want := map[int]int{2: 2, 1: 1, 3: 1}
	for k, v := range want {
		if runs[k] != v {
			t.Errorf("runs[%d] = %d, want %d", k, runs[k], v)
		}
	}
	if len(ConsecutiveWins[int](nil)) != 0 {
		t.Error("empty trace produced runs")
	}
}

// Property: Jain index lies in [1/n, 1] for any non-negative shares
// with at least one positive entry.
func TestJainRangeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		shares := make([]float64, len(raw))
		positive := false
		for i, r := range raw {
			shares[i] = float64(r)
			if r > 0 {
				positive = true
			}
		}
		j := JainIndex(shares)
		if !positive {
			return j == 1
		}
		n := float64(len(shares))
		return j >= 1/n-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: window = len(trace) gives exactly one window whose Jain
// index matches the long-term index over the universe members.
func TestShortTermDegeneratesToLongTermProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		trace := make([]int, len(raw))
		for i, r := range raw {
			trace[i] = int(r % 3)
		}
		universe := []int{0, 1, 2}
		res, err := ShortTermJain(trace, universe, len(trace))
		if err != nil {
			return false
		}
		counts := CountBySource(trace, universe)
		long := JainIndexInts([]int{counts[0], counts[1], counts[2]})
		return res.Windows == 1 && math.Abs(res.MeanJain-long) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
