// Package fairness implements the fairness metrics of the authors'
// prior study ("Fairness of MAC protocols: IEEE 1901 vs. 802.11",
// ISPLC 2013), which Section 3.3 of the paper derives from sniffer
// traces: Jain's fairness index over per-source transmission counts,
// its sliding-window short-term variant, and inter-transmission gap
// statistics. All metrics operate on burst-granularity source traces
// ("we can study the fairness of the PLC MAC layer by considering
// again bursts and not individual MPDUs").
package fairness

import (
	"fmt"
	"math"
)

// JainIndex returns Jain's fairness index of the given shares:
// (Σx)² / (n·Σx²). It is 1 for perfectly equal shares and 1/n when one
// party takes everything. Zero-length input returns 0; all-zero shares
// return 1 (vacuously fair).
func JainIndex(shares []float64) float64 {
	if len(shares) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range shares {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(shares)) * sq)
}

// JainIndexInts is JainIndex over integer counts.
func JainIndexInts(counts []int) float64 {
	shares := make([]float64, len(counts))
	for i, c := range counts {
		shares[i] = float64(c)
	}
	return JainIndex(shares)
}

// CountBySource reduces a source trace (one entry per successful burst,
// in time order) to per-source totals over the given station universe.
// Sources outside the universe are counted too: the universe only
// guarantees that silent stations appear with a zero count.
func CountBySource[S comparable](trace []S, universe []S) map[S]int {
	counts := make(map[S]int, len(universe))
	for _, s := range universe {
		counts[s] = 0
	}
	for _, s := range trace {
		counts[s]++
	}
	return counts
}

// ShortTermResult is the sliding-window fairness summary.
type ShortTermResult struct {
	// WindowSize is the number of consecutive transmissions per window.
	WindowSize int
	// Windows is the number of (overlapping) windows evaluated.
	Windows int
	// MeanJain is the average Jain index across windows — the
	// short-term fairness estimator of the ISPLC study.
	MeanJain float64
	// MinJain is the worst window.
	MinJain float64
}

// ShortTermJain slides a window of the given size over the trace and
// averages the per-window Jain index over the station universe. Small
// windows expose the short-term unfairness of 1901 that Figure 1
// illustrates (a winner restarts at CW₀ = 8 and tends to win again);
// as the window grows the index approaches the long-term value.
func ShortTermJain[S comparable](trace []S, universe []S, window int) (ShortTermResult, error) {
	if window < 1 {
		return ShortTermResult{}, fmt.Errorf("fairness: window %d must be ≥ 1", window)
	}
	if len(universe) == 0 {
		return ShortTermResult{}, fmt.Errorf("fairness: empty station universe")
	}
	if len(trace) < window {
		return ShortTermResult{}, fmt.Errorf("fairness: trace of %d shorter than window %d", len(trace), window)
	}

	idx := make(map[S]int, len(universe))
	for i, s := range universe {
		idx[s] = i
	}
	counts := make([]int, len(universe))
	inWindow := func(s S) (int, bool) {
		i, ok := idx[s]
		return i, ok
	}

	// Prime the first window.
	for _, s := range trace[:window] {
		if i, ok := inWindow(s); ok {
			counts[i]++
		}
	}
	res := ShortTermResult{WindowSize: window, MinJain: math.Inf(1)}
	var total float64
	record := func() {
		j := JainIndexInts(counts)
		total += j
		if j < res.MinJain {
			res.MinJain = j
		}
		res.Windows++
	}
	record()
	for t := window; t < len(trace); t++ {
		if i, ok := inWindow(trace[t-window]); ok {
			counts[i]--
		}
		if i, ok := inWindow(trace[t]); ok {
			counts[i]++
		}
		record()
	}
	res.MeanJain = total / float64(res.Windows)
	return res, nil
}

// InterTxGaps returns, for each station in the universe, the gaps (in
// number of other-station transmissions) between its consecutive wins.
// Long tails here are the burstiness signature of short-term
// unfairness: a station that loses the channel waits many transmissions
// before winning again because it sits at a high backoff stage.
func InterTxGaps[S comparable](trace []S, universe []S) map[S][]int {
	gaps := make(map[S][]int, len(universe))
	last := make(map[S]int, len(universe))
	for _, s := range universe {
		gaps[s] = nil
		last[s] = -1
	}
	for t, s := range trace {
		if prev, ok := last[s]; ok {
			if prev >= 0 {
				gaps[s] = append(gaps[s], t-prev-1)
			}
			last[s] = t
		}
	}
	return gaps
}

// MeanGap returns the average of the given gaps, or 0 for none.
func MeanGap(gaps []int) float64 {
	if len(gaps) == 0 {
		return 0
	}
	var sum int
	for _, g := range gaps {
		sum += g
	}
	return float64(sum) / float64(len(gaps))
}

// MaxGap returns the largest gap, or 0 for none.
func MaxGap(gaps []int) int {
	max := 0
	for _, g := range gaps {
		if g > max {
			max = g
		}
	}
	return max
}

// ConsecutiveWins returns the distribution of run lengths in the trace:
// how often a station won k times in a row. The heavy head at k ≥ 2 for
// 1901 with 2 stations is exactly the Figure 1 phenomenon ("a station
// that grabs the channel moves to backoff stage 0, whereas the other
// station enters a higher backoff stage").
func ConsecutiveWins[S comparable](trace []S) map[int]int {
	runs := make(map[int]int)
	if len(trace) == 0 {
		return runs
	}
	runLen := 1
	for i := 1; i < len(trace); i++ {
		if trace[i] == trace[i-1] {
			runLen++
			continue
		}
		runs[runLen]++
		runLen = 1
	}
	runs[runLen]++
	return runs
}
