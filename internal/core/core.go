// Package core is the top-level API of the library: one call evaluates
// an IEEE 1901 CSMA/CA scenario through all three lenses the paper
// compares in Figure 2 — the finite-state-machine simulator, the
// analytical (decoupling) model, and the emulated HomePlug AV testbed
// measurement — and reports them side by side.
//
// The package exists so that downstream users (and the examples/) have
// a single stable entry point; specialised work goes straight to the
// focused packages (internal/sim, internal/model, internal/testbed,
// internal/boost).
package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Scenario describes a contention scenario to evaluate.
type Scenario struct {
	// N is the number of saturated stations.
	N int
	// Params are the CSMA/CA parameters; zero value means the CA1
	// defaults of Table 1.
	Params config.Params
	// SimTimeMicros is the simulator duration (default: the paper's
	// 5·10⁸ µs).
	SimTimeMicros float64
	// TestDurationMicros is the per-measurement virtual duration
	// (default: the paper's 240 s).
	TestDurationMicros float64
	// Tests is the number of repeated testbed measurements (default:
	// the paper's 10).
	Tests int
	// Seed drives all random streams (default 1).
	Seed uint64
}

// withDefaults fills the zero values with the paper's setup.
func (s Scenario) withDefaults() Scenario {
	if s.Params.Stages() == 0 {
		s.Params = config.DefaultCA1()
	}
	if s.SimTimeMicros == 0 {
		s.SimTimeMicros = 5e8
	}
	if s.TestDurationMicros == 0 {
		s.TestDurationMicros = 240e6
	}
	if s.Tests == 0 {
		s.Tests = 10
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Validate checks the scenario.
func (s Scenario) Validate() error {
	if s.N < 1 {
		return fmt.Errorf("core: N=%d must be ≥ 1", s.N)
	}
	if s.Tests < 0 {
		return fmt.Errorf("core: Tests=%d must be ≥ 0", s.Tests)
	}
	return s.Params.Validate()
}

// Evaluation is the three-way result.
type Evaluation struct {
	Scenario Scenario

	// Simulation is the FSM simulator's result.
	Simulation sim.Result
	// Analysis is the analytical model's prediction and metrics.
	Analysis model.Prediction
	// AnalysisMetrics derives throughput etc. from Analysis.
	AnalysisMetrics model.Metrics
	// Measured summarizes the testbed's ΣC/ΣA across repeated tests.
	Measured stats.Summary
}

// CollisionProbabilities returns the three collision-probability
// estimates in Figure 2's order: simulation, analysis, measurement.
func (e Evaluation) CollisionProbabilities() (simP, modelP, measuredP float64) {
	return e.Simulation.CollisionProbability, e.Analysis.Gamma, e.Measured.Mean
}

// Evaluate runs the full three-way comparison for one scenario. With
// Tests = 0 the testbed step is skipped (Measured is a zero Summary
// with N = 0).
func Evaluate(s Scenario) (Evaluation, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return Evaluation{}, err
	}
	out := Evaluation{Scenario: s}

	in := sim.DefaultInputs(s.N)
	in.SimTime = s.SimTimeMicros
	in.Params = s.Params
	in.Seed = s.Seed
	eng, err := sim.NewEngine(in)
	if err != nil {
		return Evaluation{}, err
	}
	out.Simulation = eng.Run()

	pred, err := model.Solve(s.N, s.Params, model.Options{})
	if err != nil {
		return Evaluation{}, err
	}
	out.Analysis = pred
	out.AnalysisMetrics = model.MetricsFor(pred, s.N, model.DefaultTiming())

	if s.Tests > 0 {
		measured := make([]float64, 0, s.Tests)
		for k := 0; k < s.Tests; k++ {
			tb, err := testbed.New(testbed.Options{
				N: s.N, Seed: s.Seed + uint64(1000*s.N+k), Params: &s.Params,
			})
			if err != nil {
				return Evaluation{}, err
			}
			measured = append(measured, tb.CollisionProbability(s.TestDurationMicros))
		}
		out.Measured = stats.Summarize(measured)
	}
	return out, nil
}

// Sweep evaluates a scenario across station counts, reusing every other
// setting — the shape of Figure 2.
func Sweep(base Scenario, ns []int) ([]Evaluation, error) {
	out := make([]Evaluation, 0, len(ns))
	for _, n := range ns {
		s := base
		s.N = n
		ev, err := Evaluate(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}
