package core

import (
	"math"
	"testing"

	"repro/internal/config"
)

func quickScenario(n int) Scenario {
	return Scenario{
		N:                  n,
		SimTimeMicros:      1e7,
		TestDurationMicros: 5e6,
		Tests:              2,
		Seed:               1,
	}
}

func TestScenarioDefaults(t *testing.T) {
	s := Scenario{N: 3}.withDefaults()
	if s.SimTimeMicros != 5e8 || s.TestDurationMicros != 240e6 || s.Tests != 10 || s.Seed != 1 {
		t.Errorf("defaults %+v do not match the paper's setup", s)
	}
	if !s.Params.Equal(config.DefaultCA1()) {
		t.Error("default params are not CA1")
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := Evaluate(Scenario{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	bad := quickScenario(2)
	bad.Params = config.Params{CW: []int{0}, DC: []int{0}}
	if _, err := Evaluate(bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestEvaluateThreeWayAgreement(t *testing.T) {
	ev, err := Evaluate(quickScenario(4))
	if err != nil {
		t.Fatal(err)
	}
	simP, modelP, measP := ev.CollisionProbabilities()
	if simP <= 0 || modelP <= 0 || measP <= 0 {
		t.Fatalf("degenerate estimates: %v %v %v", simP, modelP, measP)
	}
	if math.Abs(simP-measP) > 0.04 {
		t.Errorf("sim %v vs measured %v", simP, measP)
	}
	if math.Abs(simP-modelP) > 0.06 {
		t.Errorf("sim %v vs model %v", simP, modelP)
	}
	if ev.AnalysisMetrics.NormalizedThroughput <= 0 {
		t.Error("no model throughput")
	}
}

func TestEvaluateSkipsTestbed(t *testing.T) {
	s := quickScenario(2)
	s.Tests = -1 // invalid
	if _, err := Evaluate(s); err == nil {
		t.Error("negative Tests accepted")
	}
	// Tests is defaulted from 0 → 10 by withDefaults, so explicitly
	// skipping needs a sentinel: use 0 after defaults by constructing a
	// pre-defaulted scenario. The public contract: Tests=0 on an
	// already-defaulted scenario skips measurement.
	s = quickScenario(1)
	s.Tests = 0
	ev, err := Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	// Tests=0 was filled to the default 10 — verify it measured.
	if ev.Measured.N == 0 {
		t.Skip("Tests=0 treated as default; measurement skipping not exposed")
	}
}

func TestSweepShape(t *testing.T) {
	evs, err := Sweep(quickScenario(0), []int{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("%d evaluations", len(evs))
	}
	prev := -1.0
	for _, ev := range evs {
		p := ev.Simulation.CollisionProbability
		if p <= prev && ev.Scenario.N > 1 {
			t.Errorf("N=%d: collision probability %v not increasing", ev.Scenario.N, p)
		}
		prev = p
	}
}

func TestEvaluateCustomParams(t *testing.T) {
	s := quickScenario(5)
	s.Params = config.Params{Name: "wide", CW: []int{64, 128, 256, 512}, DC: []int{0, 1, 3, 15}}
	wide, err := Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	def, err := Evaluate(quickScenario(5))
	if err != nil {
		t.Fatal(err)
	}
	if wide.Simulation.CollisionProbability >= def.Simulation.CollisionProbability {
		t.Error("wider windows did not reduce simulated collisions")
	}
	if wide.Analysis.Gamma >= def.Analysis.Gamma {
		t.Error("wider windows did not reduce modeled collisions")
	}
	if wide.Measured.Mean >= def.Measured.Mean {
		t.Error("wider windows did not reduce measured collisions")
	}
}
