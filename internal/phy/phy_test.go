package phy

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPBCount(t *testing.T) {
	tests := []struct{ bytes, want int }{
		{-1, 1}, {0, 1}, {1, 1}, {511, 1}, {512, 1}, {513, 2},
		{1024, 2}, {1025, 3}, {4 * 512, 4},
	}
	for _, tc := range tests {
		if got := PBCount(tc.bytes); got != tc.want {
			t.Errorf("PBCount(%d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
}

func TestSegment(t *testing.T) {
	payload := bytes.Repeat([]byte{0xCC}, 1200)
	blocks := Segment(payload)
	if len(blocks) != 3 {
		t.Fatalf("Segment(1200 bytes) = %d blocks, want 3", len(blocks))
	}
	if len(blocks[0]) != 512 || len(blocks[1]) != 512 || len(blocks[2]) != 176 {
		t.Errorf("block sizes %d/%d/%d, want 512/512/176", len(blocks[0]), len(blocks[1]), len(blocks[2]))
	}
	var rejoined []byte
	for _, b := range blocks {
		rejoined = append(rejoined, b...)
	}
	if !bytes.Equal(rejoined, payload) {
		t.Error("segmentation lost bytes")
	}
	if got := Segment(nil); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("Segment(nil) = %v, want one empty block", got)
	}
}

func TestRateValidate(t *testing.T) {
	for _, r := range []Rate{ROBO, MiniROBO, AV50, AV100, AV200} {
		if err := r.Validate(); err != nil {
			t.Errorf("%s: %v", r.Name, err)
		}
	}
	for _, bad := range []Rate{{Name: "zero"}, {Name: "neg", BitsPerSymbol: -1}, {Name: "nan", BitsPerSymbol: math.NaN()}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s accepted", bad.Name)
		}
	}
}

func TestRateOrdering(t *testing.T) {
	// The profile ladder must be ordered: mini-ROBO < ROBO < AV-50 <
	// AV-100 < AV-200, and durations must shrink accordingly.
	ladder := []Rate{MiniROBO, ROBO, AV50, AV100, AV200}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].BitsPerSymbol <= ladder[i-1].BitsPerSymbol {
			t.Errorf("%s not faster than %s", ladder[i].Name, ladder[i-1].Name)
		}
		if FrameDuration(4, ladder[i]) >= FrameDuration(4, ladder[i-1]) {
			t.Errorf("duration at %s not below %s", ladder[i].Name, ladder[i-1].Name)
		}
	}
}

func TestFrameDurationQuantization(t *testing.T) {
	d := FrameDuration(1, AV200)
	if rem := math.Mod(d, SymbolDuration); math.Abs(rem) > 1e-9 && math.Abs(rem-SymbolDuration) > 1e-9 {
		t.Errorf("duration %v not a whole number of %v µs symbols", d, SymbolDuration)
	}
	if FrameDuration(0, AV200) != FrameDuration(1, AV200) {
		t.Error("0 PBs should behave as 1 PB")
	}
	if FrameDuration(8, AV200) <= FrameDuration(4, AV200) {
		t.Error("more blocks must take longer")
	}
}

func TestFrameDurationPanicsOnInvalidRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid rate accepted")
		}
	}()
	FrameDuration(1, Rate{Name: "bad"})
}

func TestRateForTargetDuration(t *testing.T) {
	// Calibrate a 4-PB MPDU to the paper's 2050 µs frame and check the
	// resulting duration lands within one symbol of the target.
	r := RateForTargetDuration(4, 2050)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	d := FrameDuration(4, r)
	if math.Abs(d-2050) > SymbolDuration {
		t.Errorf("calibrated duration %v more than one symbol from 2050", d)
	}
}

func TestRateForTargetDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive target accepted")
		}
	}()
	RateForTargetDuration(1, 0)
}

func TestBitsPerMicrosecond(t *testing.T) {
	// AV200 ≈ 200 Mb/s raw.
	if rate := AV200.BitsPerMicrosecond(); rate < 150 || rate > 250 {
		t.Errorf("AV200 = %v Mb/s, want ≈200", rate)
	}
}

func TestNoneErrorModel(t *testing.T) {
	var m None
	for i := 0; i < 100; i++ {
		if m.Corrupt() {
			t.Fatal("error-free channel corrupted a block")
		}
	}
	if m.Name() != "error-free" {
		t.Errorf("Name() = %q", m.Name())
	}
}

func TestBernoulliRate(t *testing.T) {
	m := NewBernoulli(0.25, rng.New(1))
	const n = 100000
	bad := 0
	for i := 0; i < n; i++ {
		if m.Corrupt() {
			bad++
		}
	}
	if got := float64(bad) / n; math.Abs(got-0.25) > 0.01 {
		t.Errorf("empirical corruption rate %v, want 0.25", got)
	}
	if m.Name() == "" {
		t.Error("empty model name")
	}
}

func TestBernoulliValidation(t *testing.T) {
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBernoulli(%v) accepted", p)
				}
			}()
			NewBernoulli(p, rng.New(1))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewBernoulli(nil rng) accepted")
			}
		}()
		NewBernoulli(0.5, nil)
	}()
}

func TestGilbertElliottValidation(t *testing.T) {
	if _, err := NewGilbertElliott(0.001, 0.5, 2, 0.1, rng.New(1)); err == nil {
		t.Error("transition probability > 1 accepted")
	}
	if _, err := NewGilbertElliott(0.001, 0.5, 0.01, 0.1, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewGilbertElliott(math.NaN(), 0.5, 0.01, 0.1, rng.New(1)); err == nil {
		t.Error("NaN probability accepted")
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// With sticky states, errors must cluster: the conditional error
	// rate after an error must exceed the marginal rate.
	ge, err := NewGilbertElliott(0.001, 0.5, 0.01, 0.05, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	var errs, pairs, after int
	prev := false
	for i := 0; i < n; i++ {
		c := ge.Corrupt()
		if c {
			errs++
		}
		if prev {
			pairs++
			if c {
				after++
			}
		}
		prev = c
	}
	marginal := float64(errs) / n
	conditional := float64(after) / float64(pairs)
	if conditional <= marginal {
		t.Errorf("no burstiness: P(err|err)=%v ≤ P(err)=%v", conditional, marginal)
	}
	if ge.Name() != "gilbert-elliott" {
		t.Errorf("Name() = %q", ge.Name())
	}
}

func TestGilbertElliottStateVisible(t *testing.T) {
	ge, _ := NewGilbertElliott(0, 1, 1, 0, rng.New(1)) // jump to bad immediately, stay
	ge.Corrupt()
	if !ge.InBadState() {
		t.Error("guaranteed transition to bad state did not happen")
	}
}

// Property: segmentation always reassembles and the block count matches
// PBCount.
func TestSegmentProperty(t *testing.T) {
	f := func(payload []byte) bool {
		blocks := Segment(payload)
		if len(blocks) != PBCount(len(payload)) {
			return false
		}
		var joined []byte
		for _, b := range blocks {
			if len(b) > PBSize {
				return false
			}
			joined = append(joined, b...)
		}
		if len(payload) == 0 {
			return len(joined) == 0
		}
		return bytes.Equal(joined, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: frame duration is monotone in PB count for any valid rate.
func TestFrameDurationMonotoneProperty(t *testing.T) {
	f := func(pbsRaw uint8, rateRaw uint16) bool {
		pbs := int(pbsRaw)%16 + 1
		rate := Rate{Name: "q", BitsPerSymbol: float64(rateRaw%5000) + 100}
		return FrameDuration(pbs+1, rate) >= FrameDuration(pbs, rate)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
