// Package phy is the synthetic physical-layer substrate for the
// emulated HomePlug AV testbed.
//
// The paper deliberately excludes PHY mechanisms from its simulator
// (Section 4.1 lists bit loading, management-message-driven tone-map
// updates and channel errors as vendor secrets that "prevent us from
// designing a simulator of the complete MAC stack"). The emulated
// testbed still needs a PHY: frames must have durations, payloads must
// be segmented into 512-byte physical blocks (PBs), and the extended
// experiments exercise error models. This package provides the closest
// synthetic equivalents:
//
//   - a tone-map abstraction mapping a modulation profile to a PHY rate;
//   - exact PB segmentation (the framing the sniffer sees);
//   - duration computation from payload size and PHY rate, quantized to
//     OFDM symbols;
//   - pluggable PB error models (none / Bernoulli / Gilbert-Elliott)
//     for the failure-injection experiments. Validation experiments run
//     with the error-free channel, matching the paper's assumption.
package phy

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// PBSize is the physical-block payload size in bytes. IEEE 1901
// organizes MPDU payloads in 512-byte PBs (PB512).
const PBSize = 512

// PBHeaderSize is the per-PB overhead (PB header + checksum) in bytes.
const PBHeaderSize = 8

// SymbolDuration is the OFDM symbol duration in µs (HomePlug AV:
// 40.96 µs symbol + 5.56 µs guard interval as commonly configured).
const SymbolDuration = 46.52

// Rate is a PHY bit-loading profile. HomePlug AV negotiates tone maps
// per link; we expose the standard named profiles plus arbitrary rates.
type Rate struct {
	// Name labels the profile ("ROBO", "mini-ROBO", "AV-200", …).
	Name string
	// BitsPerSymbol is the useful payload bits carried per OFDM symbol
	// after FEC, the quantity that determines frame duration.
	BitsPerSymbol float64
}

// Standard HomePlug AV profiles. The precise per-symbol payloads of
// real tone maps are channel-dependent; these values give the canonical
// data rates (ROBO ≈ 4–10 Mb/s, full tone maps up to ≈ 200 Mb/s raw).
var (
	// ROBO is the robust modulation used for broadcast, beacons and
	// frame-control: heavily coded, decodable even during collisions —
	// the property that lets the destination acknowledge collided
	// frames (Section 3.2).
	ROBO = Rate{Name: "ROBO", BitsPerSymbol: 466}
	// MiniROBO is the more conservative profile used for short
	// management payloads.
	MiniROBO = Rate{Name: "mini-ROBO", BitsPerSymbol: 182}
	// AV50 approximates a mid-quality in-home link (~50 Mb/s).
	AV50 = Rate{Name: "AV-50", BitsPerSymbol: 2326}
	// AV100 approximates a good in-home link (~100 Mb/s).
	AV100 = Rate{Name: "AV-100", BitsPerSymbol: 4652}
	// AV200 approximates the ideal power-strip channel of the paper's
	// testbed (~200 Mb/s raw PHY rate).
	AV200 = Rate{Name: "AV-200", BitsPerSymbol: 9304}
)

// Validate rejects non-positive bit loadings.
func (r Rate) Validate() error {
	if r.BitsPerSymbol <= 0 || math.IsNaN(r.BitsPerSymbol) || math.IsInf(r.BitsPerSymbol, 0) {
		return fmt.Errorf("phy: rate %q has invalid bits/symbol %v", r.Name, r.BitsPerSymbol)
	}
	return nil
}

// BitsPerMicrosecond returns the payload rate in bits/µs (= Mb/s).
func (r Rate) BitsPerMicrosecond() float64 {
	return r.BitsPerSymbol / SymbolDuration
}

// PBCount returns how many physical blocks are needed for a payload of
// the given size in bytes (zero-byte payloads still consume one PB —
// an MPDU carries at least one block).
func PBCount(payloadBytes int) int {
	if payloadBytes <= 0 {
		return 1
	}
	return (payloadBytes + PBSize - 1) / PBSize
}

// Segment splits a payload into PB-sized chunks; the final block is
// zero-padded to PBSize by the framing layer, not here (the sniffer
// reports the padded count, the codec keeps the true bytes).
func Segment(payload []byte) [][]byte {
	n := PBCount(len(payload))
	blocks := make([][]byte, 0, n)
	for off := 0; off < len(payload); off += PBSize {
		end := off + PBSize
		if end > len(payload) {
			end = len(payload)
		}
		blocks = append(blocks, payload[off:end])
	}
	if len(blocks) == 0 {
		blocks = append(blocks, []byte{})
	}
	return blocks
}

// FrameDuration returns the on-wire duration in µs of an MPDU payload
// of pbs physical blocks at the given rate, quantized up to whole OFDM
// symbols. It panics on an invalid rate — rates are validated at
// configuration time.
func FrameDuration(pbs int, rate Rate) float64 {
	if err := rate.Validate(); err != nil {
		panic(err.Error())
	}
	if pbs < 1 {
		pbs = 1
	}
	bits := float64(pbs) * (PBSize + PBHeaderSize) * 8
	symbols := math.Ceil(bits / rate.BitsPerSymbol)
	return symbols * SymbolDuration
}

// RateForTargetDuration returns the synthetic rate that makes an MPDU
// of pbs blocks last approximately the target duration — used to
// calibrate the emulated testbed to the paper's 2050 µs frames.
func RateForTargetDuration(pbs int, target float64) Rate {
	if pbs < 1 {
		pbs = 1
	}
	if target <= 0 {
		panic(fmt.Sprintf("phy: RateForTargetDuration(%d, %v): non-positive target", pbs, target))
	}
	bits := float64(pbs) * (PBSize + PBHeaderSize) * 8
	symbols := math.Max(1, math.Round(target/SymbolDuration))
	return Rate{
		Name:          fmt.Sprintf("calibrated-%dpb-%.0fus", pbs, target),
		BitsPerSymbol: bits / symbols,
	}
}

// ErrorModel decides, per physical block, whether transmission corrupts
// it. The validation experiments use None; the failure-injection
// experiments use the stochastic models.
type ErrorModel interface {
	// Corrupt reports whether the next PB is received in error.
	Corrupt() bool
	// Name identifies the model in reports.
	Name() string
}

// None is the error-free channel of the paper ("we assume that the
// channel is error-free").
type None struct{}

// Corrupt always reports false.
func (None) Corrupt() bool { return false }

// Name returns "error-free".
func (None) Name() string { return "error-free" }

// Bernoulli corrupts each PB independently with probability P.
type Bernoulli struct {
	P   float64
	Src *rng.Source
}

// NewBernoulli builds an independent-loss model.
func NewBernoulli(p float64, src *rng.Source) *Bernoulli {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("phy: NewBernoulli(%v): probability outside [0,1]", p))
	}
	if src == nil {
		panic("phy: NewBernoulli: nil rng source")
	}
	return &Bernoulli{P: p, Src: src}
}

// Corrupt flips the per-PB coin.
func (b *Bernoulli) Corrupt() bool { return b.Src.Bernoulli(b.P) }

// Name returns a label including the loss probability.
func (b *Bernoulli) Name() string { return fmt.Sprintf("bernoulli(%.3g)", b.P) }

// GilbertElliott is the classic two-state burst-error channel: a good
// state with low loss and a bad state with high loss, with geometric
// sojourn times. Power-line noise is bursty (appliance impulses), which
// makes this the natural synthetic stand-in.
type GilbertElliott struct {
	// PGood/PBad are the per-PB corruption probabilities in each state.
	PGood, PBad float64
	// GoodToBad/BadToGood are the per-PB state transition probabilities.
	GoodToBad, BadToGood float64

	src *rng.Source
	bad bool
}

// NewGilbertElliott validates and builds the burst model.
func NewGilbertElliott(pGood, pBad, g2b, b2g float64, src *rng.Source) (*GilbertElliott, error) {
	for _, v := range []struct {
		name string
		p    float64
	}{{"PGood", pGood}, {"PBad", pBad}, {"GoodToBad", g2b}, {"BadToGood", b2g}} {
		if v.p < 0 || v.p > 1 || math.IsNaN(v.p) {
			return nil, fmt.Errorf("phy: GilbertElliott %s=%v outside [0,1]", v.name, v.p)
		}
	}
	if src == nil {
		return nil, fmt.Errorf("phy: GilbertElliott: nil rng source")
	}
	return &GilbertElliott{PGood: pGood, PBad: pBad, GoodToBad: g2b, BadToGood: b2g, src: src}, nil
}

// Corrupt advances the channel state and flips the state's coin.
func (ge *GilbertElliott) Corrupt() bool {
	if ge.bad {
		if ge.src.Bernoulli(ge.BadToGood) {
			ge.bad = false
		}
	} else {
		if ge.src.Bernoulli(ge.GoodToBad) {
			ge.bad = true
		}
	}
	if ge.bad {
		return ge.src.Bernoulli(ge.PBad)
	}
	return ge.src.Bernoulli(ge.PGood)
}

// InBadState exposes the current state for tests.
func (ge *GilbertElliott) InBadState() bool { return ge.bad }

// Name returns "gilbert-elliott".
func (ge *GilbertElliott) Name() string { return "gilbert-elliott" }
