// Package config defines the CSMA/CA parameter sets of IEEE 1901 and of
// the 802.11 DCF baseline.
//
// The central type is Params, the pair of vectors (cw, dc) from the
// paper: cw[i] is the contention window at backoff stage i and dc[i] the
// initial value of the deferral counter at stage i. Table 1 of the paper
// — the CA0/CA1 and CA2/CA3 priority-class defaults — is exposed as
// ready-made values, and arbitrary custom vectors (the object of the
// "boosting" search) are validated by Params.Validate.
package config

import (
	"errors"
	"fmt"
	"strings"
)

// Priority is an IEEE 1901 channel-access priority class. Two stations
// never contend across classes: a priority-resolution phase (two slots of
// busy tones) elects the highest contending class and only its members
// run the backoff process.
type Priority uint8

// The four 1901 priority classes. CA0/CA1 carry best-effort traffic
// (CA1 is the default for untagged Ethernet frames), CA2/CA3 carry
// delay-sensitive traffic; management messages use CA2 or CA3.
const (
	CA0 Priority = iota
	CA1
	CA2
	CA3
)

// String returns the conventional name of the priority class.
func (p Priority) String() string {
	switch p {
	case CA0:
		return "CA0"
	case CA1:
		return "CA1"
	case CA2:
		return "CA2"
	case CA3:
		return "CA3"
	default:
		return fmt.Sprintf("CA?(%d)", uint8(p))
	}
}

// Valid reports whether p is one of the four defined classes.
func (p Priority) Valid() bool { return p <= CA3 }

// ParsePriority converts a textual class name ("CA0".."CA3", case
// insensitive, or a bare digit) into a Priority.
func ParsePriority(s string) (Priority, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "CA0", "0":
		return CA0, nil
	case "CA1", "1":
		return CA1, nil
	case "CA2", "2":
		return CA2, nil
	case "CA3", "3":
		return CA3, nil
	}
	return 0, fmt.Errorf("config: unknown priority class %q", s)
}

// Params is a 1901 CSMA/CA configuration: the per-stage contention
// windows and initial deferral-counter values. Stage i uses CW[i] and
// DC[i]; a station whose backoff-procedure counter exceeds the last stage
// re-enters the last stage (Table 1: BPC ≥ 3 maps to stage 3).
type Params struct {
	// Name labels the configuration in reports ("CA1", "boost-t5", …).
	Name string
	// CW holds the contention window CW_i for each backoff stage. The
	// backoff counter at stage i is drawn uniformly in {0, …, CW[i]-1}.
	CW []int
	// DC holds the initial deferral-counter value d_i for each stage.
	DC []int
}

// Errors returned by Validate.
var (
	ErrNoStages     = errors.New("config: params must define at least one backoff stage")
	ErrLengthMixup  = errors.New("config: cw and dc vectors must have the same length")
	ErrWindowRange  = errors.New("config: contention windows must be ≥ 1")
	ErrDeferralsNeg = errors.New("config: deferral counters must be ≥ 0")
)

// Validate checks the structural invariants the simulator and the model
// rely on: equal-length non-empty vectors, CW_i ≥ 1 and d_i ≥ 0.
// It deliberately does not require monotonicity — the boosting search
// explores non-monotone schedules.
func (p Params) Validate() error {
	if len(p.CW) == 0 {
		return ErrNoStages
	}
	if len(p.CW) != len(p.DC) {
		return fmt.Errorf("%w: len(cw)=%d len(dc)=%d", ErrLengthMixup, len(p.CW), len(p.DC))
	}
	for i, w := range p.CW {
		if w < 1 {
			return fmt.Errorf("%w: cw[%d]=%d", ErrWindowRange, i, w)
		}
	}
	for i, d := range p.DC {
		if d < 0 {
			return fmt.Errorf("%w: dc[%d]=%d", ErrDeferralsNeg, i, d)
		}
	}
	return nil
}

// Stages returns the number of backoff stages m.
func (p Params) Stages() int { return len(p.CW) }

// Stage clamps a backoff-procedure counter value to a stage index:
// BPC values beyond the last stage re-use the last stage's parameters.
func (p Params) Stage(bpc int) int {
	if bpc < 0 {
		return 0
	}
	if m := len(p.CW) - 1; bpc > m {
		return m
	}
	return bpc
}

// WindowAt returns CW for the stage addressed by the given BPC value.
func (p Params) WindowAt(bpc int) int { return p.CW[p.Stage(bpc)] }

// DeferralAt returns d_i for the stage addressed by the given BPC value.
func (p Params) DeferralAt(bpc int) int { return p.DC[p.Stage(bpc)] }

// Clone returns a deep copy, so that search code can mutate candidates
// without aliasing the originals.
func (p Params) Clone() Params {
	q := Params{Name: p.Name, CW: make([]int, len(p.CW)), DC: make([]int, len(p.DC))}
	copy(q.CW, p.CW)
	copy(q.DC, p.DC)
	return q
}

// Equal reports whether two configurations have identical vectors
// (names are ignored: they are labels, not behaviour).
func (p Params) Equal(q Params) bool {
	if len(p.CW) != len(q.CW) || len(p.DC) != len(q.DC) {
		return false
	}
	for i := range p.CW {
		if p.CW[i] != q.CW[i] {
			return false
		}
	}
	for i := range p.DC {
		if p.DC[i] != q.DC[i] {
			return false
		}
	}
	return true
}

// String renders the configuration in the paper's vector notation.
func (p Params) String() string {
	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, "%s ", p.Name)
	}
	b.WriteString("cw=[")
	for i, w := range p.CW {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", w)
	}
	b.WriteString("] dc=[")
	for i, d := range p.DC {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	b.WriteString("]")
	return b.String()
}

// Default1901 returns the Table 1 parameters for the given priority
// class. CA0/CA1 share one column and CA2/CA3 the other.
func Default1901(p Priority) Params {
	switch p {
	case CA0, CA1:
		return Params{
			Name: p.String(),
			CW:   []int{8, 16, 32, 64},
			DC:   []int{0, 1, 3, 15},
		}
	case CA2, CA3:
		return Params{
			Name: p.String(),
			CW:   []int{8, 16, 16, 32},
			DC:   []int{0, 1, 3, 15},
		}
	default:
		panic(fmt.Sprintf("config: Default1901(%v): invalid priority", p))
	}
}

// DefaultCA1 is the configuration of every validation experiment in the
// paper (best-effort UDP traffic is transmitted at CA1).
func DefaultCA1() Params { return Default1901(CA1) }

// DCF is an 802.11 distributed-coordination-function configuration, the
// baseline the 1901 papers compare against. 802.11 has no deferral
// counter; window doubling is expressed by the explicit CW vector.
type DCF struct {
	// Name labels the configuration.
	Name string
	// CWmin is the initial contention window (e.g. 16 for 802.11a/g,
	// 32 for 802.11b). The backoff counter is drawn in {0,…,CW-1}.
	CWmin int
	// CWmax caps the doubling (1024 in the standards).
	CWmax int
}

// Validate checks CWmin/CWmax sanity.
func (d DCF) Validate() error {
	if d.CWmin < 1 {
		return fmt.Errorf("config: DCF CWmin=%d must be ≥ 1", d.CWmin)
	}
	if d.CWmax < d.CWmin {
		return fmt.Errorf("config: DCF CWmax=%d < CWmin=%d", d.CWmax, d.CWmin)
	}
	return nil
}

// Window returns the contention window at backoff stage i (CWmin·2^i,
// capped at CWmax).
func (d DCF) Window(stage int) int {
	w := d.CWmin
	for i := 0; i < stage; i++ {
		if w >= d.CWmax {
			return d.CWmax
		}
		w *= 2
	}
	if w > d.CWmax {
		return d.CWmax
	}
	return w
}

// Stages returns the number of distinct window sizes before the cap.
func (d DCF) Stages() int {
	n := 1
	for w := d.CWmin; w < d.CWmax; w *= 2 {
		n++
	}
	return n
}

// Params flattens the DCF doubling schedule into a 1901-style Params
// value with "infinite" deferral counters, so that the 1901 simulator
// can run 802.11 semantics unchanged: a deferral counter that can never
// reach zero before the backoff counter reproduces pure DCF freezing.
// The sentinel is per-stage dc = CWmax (the DC can decrement at most
// CW-1 ≤ CWmax-1 times while the station is at a stage, since every
// busy slot also decrements BC).
func (d DCF) Params() Params {
	m := d.Stages()
	p := Params{Name: d.Name, CW: make([]int, m), DC: make([]int, m)}
	for i := 0; i < m; i++ {
		p.CW[i] = d.Window(i)
		p.DC[i] = d.CWmax
	}
	return p
}

// Default80211 returns the classic DCF baseline (CWmin 16, CWmax 1024)
// used in the 1901-vs-802.11 comparisons.
func Default80211() DCF { return DCF{Name: "802.11", CWmin: 16, CWmax: 1024} }
