package config

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// TestTable1Defaults pins the CA0–CA3 parameters to Table 1 of the
// paper. Any drift here invalidates every experiment.
func TestTable1Defaults(t *testing.T) {
	tests := []struct {
		pri    Priority
		wantCW []int
		wantDC []int
	}{
		{CA0, []int{8, 16, 32, 64}, []int{0, 1, 3, 15}},
		{CA1, []int{8, 16, 32, 64}, []int{0, 1, 3, 15}},
		{CA2, []int{8, 16, 16, 32}, []int{0, 1, 3, 15}},
		{CA3, []int{8, 16, 16, 32}, []int{0, 1, 3, 15}},
	}
	for _, tc := range tests {
		p := Default1901(tc.pri)
		if err := p.Validate(); err != nil {
			t.Errorf("%v: Validate: %v", tc.pri, err)
		}
		if len(p.CW) != 4 {
			t.Fatalf("%v: %d stages, want 4", tc.pri, len(p.CW))
		}
		for i := range tc.wantCW {
			if p.CW[i] != tc.wantCW[i] {
				t.Errorf("%v: CW[%d] = %d, want %d", tc.pri, i, p.CW[i], tc.wantCW[i])
			}
			if p.DC[i] != tc.wantDC[i] {
				t.Errorf("%v: DC[%d] = %d, want %d", tc.pri, i, p.DC[i], tc.wantDC[i])
			}
		}
	}
}

func TestDefault1901PanicsOnInvalidPriority(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Default1901(7) did not panic")
		}
	}()
	Default1901(Priority(7))
}

func TestPriorityString(t *testing.T) {
	for p, want := range map[Priority]string{CA0: "CA0", CA1: "CA1", CA2: "CA2", CA3: "CA3"} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
	if got := Priority(9).String(); !strings.Contains(got, "9") {
		t.Errorf("invalid priority String() = %q, want it to contain the raw value", got)
	}
}

func TestPriorityValid(t *testing.T) {
	for _, p := range []Priority{CA0, CA1, CA2, CA3} {
		if !p.Valid() {
			t.Errorf("%v.Valid() = false", p)
		}
	}
	if Priority(4).Valid() {
		t.Error("Priority(4).Valid() = true")
	}
}

func TestParsePriority(t *testing.T) {
	ok := map[string]Priority{
		"CA0": CA0, "ca1": CA1, " CA2 ": CA2, "Ca3": CA3,
		"0": CA0, "1": CA1, "2": CA2, "3": CA3,
	}
	for s, want := range ok {
		got, err := ParsePriority(s)
		if err != nil || got != want {
			t.Errorf("ParsePriority(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"", "CA4", "best-effort", "-1"} {
		if _, err := ParsePriority(s); err == nil {
			t.Errorf("ParsePriority(%q) succeeded, want error", s)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name string
		p    Params
		want error
	}{
		{"empty", Params{}, ErrNoStages},
		{"length mismatch", Params{CW: []int{8, 16}, DC: []int{0}}, ErrLengthMixup},
		{"zero window", Params{CW: []int{0}, DC: []int{0}}, ErrWindowRange},
		{"negative deferral", Params{CW: []int{8}, DC: []int{-1}}, ErrDeferralsNeg},
		{"ok single stage", Params{CW: []int{8}, DC: []int{0}}, nil},
		{"ok non-monotone", Params{CW: []int{64, 8}, DC: []int{3, 0}}, nil},
	}
	for _, tc := range tests {
		err := tc.p.Validate()
		if tc.want == nil {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
			}
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate() = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestParamsStageClamping(t *testing.T) {
	p := DefaultCA1()
	tests := []struct{ bpc, want int }{
		{-3, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 3}, {100, 3},
	}
	for _, tc := range tests {
		if got := p.Stage(tc.bpc); got != tc.want {
			t.Errorf("Stage(%d) = %d, want %d", tc.bpc, got, tc.want)
		}
	}
	// Table 1: BPC ≥ 3 keeps CW = 64, d = 15 for CA1.
	if got := p.WindowAt(10); got != 64 {
		t.Errorf("WindowAt(10) = %d, want 64", got)
	}
	if got := p.DeferralAt(10); got != 15 {
		t.Errorf("DeferralAt(10) = %d, want 15", got)
	}
}

func TestParamsCloneIsDeep(t *testing.T) {
	p := DefaultCA1()
	q := p.Clone()
	q.CW[0] = 999
	q.DC[0] = 999
	if p.CW[0] == 999 || p.DC[0] == 999 {
		t.Error("Clone shares backing arrays with the original")
	}
	if !p.Equal(DefaultCA1()) {
		t.Error("original mutated by clone edit")
	}
}

func TestParamsEqual(t *testing.T) {
	a := DefaultCA1()
	b := DefaultCA1()
	b.Name = "renamed"
	if !a.Equal(b) {
		t.Error("Equal must ignore names")
	}
	c := b.Clone()
	c.CW[3] = 128
	if a.Equal(c) {
		t.Error("Equal missed a CW difference")
	}
	d := b.Clone()
	d.DC[2] = 4
	if a.Equal(d) {
		t.Error("Equal missed a DC difference")
	}
	if a.Equal(Params{CW: []int{8}, DC: []int{0}}) {
		t.Error("Equal missed a length difference")
	}
}

func TestParamsString(t *testing.T) {
	s := DefaultCA1().String()
	for _, want := range []string{"CA1", "cw=[8 16 32 64]", "dc=[0 1 3 15]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, want substring %q", s, want)
		}
	}
}

func TestDCFWindowDoubling(t *testing.T) {
	d := Default80211()
	wants := []int{16, 32, 64, 128, 256, 512, 1024, 1024, 1024}
	for i, want := range wants {
		if got := d.Window(i); got != want {
			t.Errorf("Window(%d) = %d, want %d", i, got, want)
		}
	}
	if got := d.Stages(); got != 7 {
		t.Errorf("Stages() = %d, want 7 (16·2^6 = 1024)", got)
	}
}

func TestDCFValidate(t *testing.T) {
	if err := Default80211().Validate(); err != nil {
		t.Errorf("default DCF invalid: %v", err)
	}
	if err := (DCF{CWmin: 0, CWmax: 16}).Validate(); err == nil {
		t.Error("CWmin=0 accepted")
	}
	if err := (DCF{CWmin: 32, CWmax: 16}).Validate(); err == nil {
		t.Error("CWmax < CWmin accepted")
	}
}

func TestDCFParamsFlattening(t *testing.T) {
	d := Default80211()
	p := d.Params()
	if err := p.Validate(); err != nil {
		t.Fatalf("flattened params invalid: %v", err)
	}
	if len(p.CW) != d.Stages() {
		t.Fatalf("flattened stages = %d, want %d", len(p.CW), d.Stages())
	}
	for i := range p.CW {
		if p.CW[i] != d.Window(i) {
			t.Errorf("CW[%d] = %d, want %d", i, p.CW[i], d.Window(i))
		}
		// The sentinel deferral counter must exceed any possible number
		// of busy decrements at the stage (CW−1), so DC can never hit 0
		// before BC does.
		if p.DC[i] < p.CW[i]-1 {
			t.Errorf("DC[%d] = %d is reachable within CW %d; 802.11 emulation would defer", i, p.DC[i], p.CW[i])
		}
	}
}

// Property: Stage never exceeds bounds for any BPC.
func TestStageBoundsProperty(t *testing.T) {
	p := DefaultCA1()
	f := func(bpc int) bool {
		s := p.Stage(bpc)
		return s >= 0 && s < p.Stages()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DCF windows are monotone non-decreasing and capped.
func TestDCFWindowMonotoneProperty(t *testing.T) {
	d := Default80211()
	f := func(stage uint8) bool {
		i := int(stage % 32)
		w, next := d.Window(i), d.Window(i+1)
		return w <= next && next <= d.CWmax && w >= d.CWmin
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
