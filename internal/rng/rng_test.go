package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams with different seeds produced %d equal draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	c1again := parent.Split(0)
	// Same label → same stream.
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1again.Uint64() {
			t.Fatal("Split(0) called twice produced different streams")
		}
	}
	// Different labels → different streams.
	c1 = parent.Split(0)
	equal := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Errorf("sibling streams share %d of 100 draws", equal)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Split(5)
	_ = a.Split(6)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 7, 8, 16, 63, 64, 1000} {
		for i := 0; i < 2000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

// TestIntnUniform checks that Intn(8) — the stage-0 backoff draw — is
// uniform within 4 standard deviations per bucket.
func TestIntnUniform(t *testing.T) {
	s := New(11)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	mean := float64(draws) / n
	sigma := math.Sqrt(mean * (1 - 1.0/n))
	for v, c := range counts {
		if d := math.Abs(float64(c) - mean); d > 4*sigma {
			t.Errorf("bucket %d: count %d deviates %.1fσ from mean %.0f", v, c, d/sigma, mean)
		}
	}
}

func TestBackoffMatchesUnidrnd(t *testing.T) {
	// Backoff(cw) must cover {0,…,cw−1} like MATLAB's unidrnd(cw)−1.
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[s.Backoff(8)] = true
	}
	for v := 0; v < 8; v++ {
		if !seen[v] {
			t.Errorf("Backoff(8) never produced %d in 1000 draws", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(13)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(17)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	s := New(19)
	const p, draws = 0.3, 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.01 {
		t.Errorf("Bernoulli(%v) empirical mean %v", p, got)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(23)
	const mean, draws = 250.0, 200000
	var sum float64
	for i := 0; i < draws; i++ {
		v := s.Exponential(mean)
		if v < 0 {
			t.Fatalf("Exponential produced negative %v", v)
		}
		sum += v
	}
	got := sum / draws
	if math.Abs(got-mean)/mean > 0.02 {
		t.Errorf("Exponential(%v) empirical mean %v", mean, got)
	}
	if s.Exponential(0) != 0 || s.Exponential(-1) != 0 {
		t.Error("Exponential with non-positive mean should return 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(29)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

// Property: Intn stays in range for arbitrary seeds and bounds.
func TestIntnRangeProperty(t *testing.T) {
	f := func(seed uint64, bound uint16) bool {
		n := int(bound)%1024 + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			if v := s.Intn(n); v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Split is a pure function of (parent state, id).
func TestSplitDeterministicProperty(t *testing.T) {
	f := func(seed, id uint64) bool {
		p := New(seed)
		a, b := p.Split(id), p.Split(id)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMul64(t *testing.T) {
	tests := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, tc := range tests {
		hi, lo := mul64(tc.a, tc.b)
		if hi != tc.hi || lo != tc.lo {
			t.Errorf("mul64(%d, %d) = (%d, %d), want (%d, %d)", tc.a, tc.b, hi, lo, tc.hi, tc.lo)
		}
	}
}
