// Package rng provides the deterministic pseudo-random number generator
// used throughout the simulators and the emulated testbed.
//
// Requirements that math/rand does not meet directly:
//
//   - splittable per-station streams, so that adding a station to a
//     scenario does not perturb the draws of the existing stations;
//   - cheap re-seeding for repeated independent tests (the paper runs
//     10 × 240 s tests per point);
//   - a frozen algorithm: results must not change under Go toolchain
//     upgrades (math/rand/v2 changed generators between releases).
//
// The generator is xoshiro256**, seeded through SplitMix64 — the
// reference construction recommended by its authors. Both algorithms are
// public domain.
package rng

import "math"

// Source is a deterministic xoshiro256** stream.
//
// The zero value is not usable; construct with New or Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the seed-expansion state and returns the next
// 64-bit output. Used only for seeding, as prescribed for xoshiro.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from the given 64-bit seed. Distinct seeds
// give (with overwhelming probability) non-overlapping streams.
func New(seed uint64) *Source {
	st := seed
	return &Source{
		s0: splitmix64(&st),
		s1: splitmix64(&st),
		s2: splitmix64(&st),
		s3: splitmix64(&st),
	}
}

// Split derives an independent child stream labelled by id. Children of
// the same parent with different ids are independent of each other and
// of the parent's subsequent output, so per-station streams are stable
// under changes to the number of stations.
func (s *Source) Split(id uint64) *Source {
	// Mix the parent's state with the label through SplitMix64 rather
	// than drawing from the parent, so Split does not advance s.
	st := s.s0 ^ rotl(s.s1, 13) ^ (id * 0x9e3779b97f4a7c15)
	return &Source{
		s0: splitmix64(&st),
		s1: splitmix64(&st),
		s2: splitmix64(&st),
		s3: splitmix64(&st),
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n ≤ 0, matching
// math/rand's contract: asking for a uniform draw from an empty range is
// a programming error at the call site.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless unbiased bounded draw.
	bound := uint64(n)
	x := s.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = s.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + (t >> 32) + ((t&mask32 + aLo*bHi) >> 32)
	return hi, lo
}

// Backoff draws a 1901 backoff counter: uniform in {0, …, cw-1}. This is
// the Go equivalent of the simulator's "unidrnd(CW) - 1".
func (s *Source) Backoff(cw int) int { return s.Intn(cw) }

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exponential returns an exponentially distributed duration with the
// given mean. Used by the Poisson traffic sources.
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := s.Float64()
	for u == 0 { // avoid log(0)
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates),
// used to randomize station activation order in testbed scenarios.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
