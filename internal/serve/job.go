package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// State is a job's lifecycle stage.
type State string

// Job states. Queued and Running are transient; Done, Failed,
// Cancelled and TimedOut are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	// StateTimedOut marks a job cancelled by its deadline (the server's
	// JobTimeout, or the request's timeout_s capped by it) rather than
	// by a client.
	StateTimedOut State = "timed_out"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateTimedOut
}

// Trace stage names. The lifecycle stages a job's timeline records:
// accepted (admission), queued (landed on the queue; absent for
// cache-hit answers), running (a worker picked it up), first_batch
// (first progress callback — time-to-first-result), then the terminal
// state name verbatim.
const (
	traceAccepted   = "accepted"
	traceQueued     = "queued"
	traceRunning    = "running"
	traceFirstBatch = "first_batch"
)

// TraceStage is one step of a job's trace timeline as served on
// /v1/jobs/{id}, /v1/campaigns/{id} and terminal NDJSON event lines.
// Purely operational metadata: never part of a result payload or a
// fingerprint.
type TraceStage struct {
	// Stage is the lifecycle stage name ("accepted", "queued",
	// "running", "first_batch", or a terminal state).
	Stage string `json:"stage"`
	// At is the wall-clock time the stage was reached.
	At time.Time `json:"at"`
	// DeltaMS is the time since the previous stage, in milliseconds.
	DeltaMS float64 `json:"delta_ms"`
	// ElapsedMS is the time since acceptance, in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// traceStages converts timeline marks to the wire form.
func traceStages(stages []obs.Stage) []TraceStage {
	if len(stages) == 0 {
		return nil
	}
	out := make([]TraceStage, len(stages))
	for i, st := range stages {
		out[i] = TraceStage{
			Stage:     st.Name,
			At:        st.At,
			ElapsedMS: st.At.Sub(stages[0].At).Seconds() * 1e3,
		}
		if i > 0 {
			out[i].DeltaMS = st.At.Sub(stages[i-1].At).Seconds() * 1e3
		}
	}
	return out
}

// Result is the JSON a finished job serves: the aggregated replication
// report plus the exact plain-text rendering the sim1901 CLI would
// print for the same spec. The text is part of the payload so the
// bit-identical guarantee is checkable end to end: cached, coalesced,
// freshly computed and CLI output all compare byte-for-byte.
type Result struct {
	// Key is the study's content address (scenario.Fingerprint).
	Key string `json:"key"`
	// Report is the aggregated outcome: normalized spec, replication
	// count, per-point seeds, metric summaries and raw per-rep metrics.
	Report *scenario.Report `json:"report"`
	// Text is the scenario.Report.Write rendering of Report.
	Text string `json:"text"`
}

// encodeResult renders a report into a cache entry: the verbatim JSON
// bytes served for the result and the CLI-identical text rendering.
func encodeResult(key string, rep *scenario.Report) (entry, error) {
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		return entry{}, fmt.Errorf("serve: render report: %w", err)
	}
	res := Result{Key: key, Report: rep, Text: buf.String()}
	data, err := json.Marshal(res)
	if err != nil {
		return entry{}, fmt.Errorf("serve: marshal result: %w", err)
	}
	return entry{key: key, json: append(data, '\n'), text: buf.String()}, nil
}

// CampaignResult is the JSON a finished campaign job serves: the
// campaign report (normalized spec, every grid point's replication
// report and content address) plus the exact text rendering the
// `sim1901 -campaign` CLI prints for the same file. It shares the
// key/text envelope with Result, so both kinds live in one cache.
type CampaignResult struct {
	// Key is the campaign's content address (campaign.Fingerprint).
	Key string `json:"key"`
	// Report is the grid outcome, one PointResult per grid point.
	Report *campaign.Report `json:"report"`
	// Text is the campaign.Report.Write rendering of Report.
	Text string `json:"text"`
}

// encodeCampaignResult renders a campaign report into a cache entry.
func encodeCampaignResult(key string, rep *campaign.Report) (entry, error) {
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		return entry{}, fmt.Errorf("serve: render campaign report: %w", err)
	}
	res := CampaignResult{Key: key, Report: rep, Text: buf.String()}
	data, err := json.Marshal(res)
	if err != nil {
		return entry{}, fmt.Errorf("serve: marshal campaign result: %w", err)
	}
	return entry{key: key, json: append(data, '\n'), text: buf.String()}, nil
}

// Status is a point-in-time job snapshot (the /v1/jobs and
// /v1/campaigns responses).
type Status struct {
	ID       string `json:"id"`
	Key      string `json:"key"`
	Scenario string `json:"scenario"`
	// Kind is "campaign" for campaign jobs; empty for scenario jobs
	// (the original wire format, unchanged).
	Kind  string `json:"kind,omitempty"`
	State State  `json:"state"`
	Reps  int    `json:"reps"`
	// Done and Total count completed vs. scheduled replications
	// (points × reps); Total is 0 until the job starts. For adaptive
	// campaigns Total grows as replication batches are scheduled.
	Done  int `json:"done"`
	Total int `json:"total"`
	// PointsDone and PointsTotal track grid points through a campaign
	// job (0 for scenario jobs).
	PointsDone  int `json:"points_done,omitempty"`
	PointsTotal int `json:"points_total,omitempty"`
	// Cached marks a job answered from the result cache without
	// running.
	Cached bool `json:"cached,omitempty"`
	// Replayed marks a job re-admitted from the journal after a
	// restart rather than submitted by a client this run.
	Replayed bool `json:"replayed,omitempty"`
	// Error carries the failure or cancellation cause in terminal
	// states.
	Error string `json:"error,omitempty"`
	// Trace is the job's lifecycle timeline (accepted → queued →
	// running → first_batch → terminal), with per-stage and cumulative
	// durations. Operational metadata only — results and their
	// fingerprints never include it.
	Trace []TraceStage `json:"trace,omitempty"`
}

// Job is one admitted study — a scenario replication study, or (when
// camp is non-nil) a whole campaign riding the same queue. All mutable
// fields are guarded by mu; cond broadcasts on every mutation so
// streamers can follow along.
type Job struct {
	id       string
	key      string
	compiled *scenario.Compiled // scenario jobs
	camp     *campaign.Compiled // campaign jobs
	reps     int
	// seq is the job's journal sequence number (0 without a journal, or
	// for cached/coalesced answers that never queued). Written once
	// during admission under Server.mu, read by the finishing worker —
	// the queue send orders the two.
	seq int64
	// timeout is the job's effective deadline, armed when it starts
	// running (queue wait does not count). Zero means none.
	timeout time.Duration
	// trace records the job's lifecycle timeline. It has its own leaf
	// mutex, so stages can be marked with or without mu held.
	trace obs.Timeline

	mu          sync.Mutex
	cond        *sync.Cond
	state       State
	done        int
	total       int
	pointsDone  int
	pointsTotal int
	cached      bool
	replayed    bool
	batched     bool   // first progress batch already trace-marked
	result      []byte // verbatim response bytes of /result (terminal Done)
	text        string // CLI-identical text rendering (terminal Done)
	errMsg      string
	cancel      context.CancelFunc
}

func newJob(id, key string, c *scenario.Compiled, reps int) *Job {
	j := &Job{id: id, key: key, compiled: c, reps: reps, state: StateQueued}
	j.cond = sync.NewCond(&j.mu)
	j.trace.Mark(traceAccepted)
	return j
}

func newCampaignJob(id, key string, c *campaign.Compiled) *Job {
	j := &Job{id: id, key: key, camp: c, state: StateQueued}
	j.cond = sync.NewCond(&j.mu)
	j.trace.Mark(traceAccepted)
	return j
}

// IsCampaign reports whether the job runs a campaign.
func (j *Job) IsCampaign() bool { return j.camp != nil }

// ID returns the job's server-unique identifier.
func (j *Job) ID() string { return j.id }

// Key returns the study's content address.
func (j *Job) Key() string { return j.key }

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() Status {
	st := Status{
		ID:          j.id,
		Key:         j.key,
		State:       j.state,
		Reps:        j.reps,
		Done:        j.done,
		Total:       j.total,
		PointsDone:  j.pointsDone,
		PointsTotal: j.pointsTotal,
		Cached:      j.cached,
		Replayed:    j.replayed,
		Error:       j.errMsg,
		Trace:       traceStages(j.trace.Stages()),
	}
	if j.camp != nil {
		st.Scenario = j.camp.Spec.Name
		st.Kind = "campaign"
	} else {
		st.Scenario = j.compiled.Spec.Name
	}
	return st
}

// Result returns the verbatim response bytes and text rendering of a
// Done job (ok=false otherwise).
func (j *Job) Result() (jsonBytes []byte, text string, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, "", false
	}
	return j.result, j.text, true
}

// Cancel requests cancellation: a queued job will be skipped by the
// worker, a running job's context is cancelled (in-flight replications
// finish, the rest are skipped). Terminal jobs are unaffected. It
// returns the state observed at the time of the call.
func (j *Job) Cancel() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.errMsg = "cancelled while queued"
		j.trace.Mark(string(StateCancelled))
		j.cond.Broadcast()
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.state
}

// Wait blocks until the job reaches a terminal state or ctx is done,
// and returns the job's state at that moment.
func (j *Job) Wait(ctx context.Context) State {
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for !j.state.Terminal() && ctx.Err() == nil {
		j.cond.Wait()
	}
	return j.state
}

// start transitions Queued → Running and arms the job's cancel
// context — with the job's deadline when it has one; queue wait does
// not consume deadline budget. ok=false means the job was cancelled
// while queued and must not run.
func (j *Job) start(parent context.Context) (ctx context.Context, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return nil, false
	}
	if j.timeout > 0 {
		ctx, j.cancel = context.WithTimeout(parent, j.timeout)
	} else {
		ctx, j.cancel = context.WithCancel(parent)
	}
	j.state = StateRunning
	j.trace.Mark(traceRunning)
	if j.camp != nil {
		// Replication totals arrive through the campaign's progress
		// callback (they grow with adaptive batches); the point count
		// is known up front.
		j.pointsTotal = len(j.camp.Points)
	} else {
		j.total = len(j.compiled.Points) * j.reps
	}
	j.cond.Broadcast()
	return ctx, true
}

// setPoints records grid-point completion (the campaign.Opts.PointDone
// callback).
func (j *Job) setPoints(done, total int) {
	j.mu.Lock()
	j.markBatchLocked()
	j.pointsDone, j.pointsTotal = done, total
	j.cond.Broadcast()
	j.mu.Unlock()
}

// setProgress records one more completed replication (the
// scenario.Options.Progress callback).
func (j *Job) setProgress(done, total int) {
	j.mu.Lock()
	j.markBatchLocked()
	j.done, j.total = done, total
	j.cond.Broadcast()
	j.mu.Unlock()
}

// markBatchLocked trace-marks the first completed batch of work (a
// replication or a grid point) exactly once — the job's
// time-to-first-result. j.mu must be held.
func (j *Job) markBatchLocked() {
	if !j.batched {
		j.batched = true
		j.trace.Mark(traceFirstBatch)
	}
}

// finish moves the job to a terminal state.
func (j *Job) finish(state State, ent *entry, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.trace.Mark(string(state))
	if ent != nil {
		j.result, j.text = ent.json, ent.text
		j.done = j.total
	}
	if j.cancel != nil {
		j.cancel()
		j.cancel = nil
	}
	j.cond.Broadcast()
}

// markReplayed flags the job as recovered from the journal.
func (j *Job) markReplayed() {
	j.mu.Lock()
	j.replayed = true
	j.cond.Broadcast()
	j.mu.Unlock()
}

// completeFromCache marks a fresh job Done with a cached result.
func (j *Job) completeFromCache(ent entry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.cached = true
	j.trace.Mark(string(StateDone))
	j.result, j.text = ent.json, ent.text
	if j.camp != nil {
		// GridSize, not len(Points): a cache-hit campaign job carries
		// an unexpanded Compiled (the whole point of hitting the cache
		// is skipping expansion).
		j.pointsTotal = j.camp.Spec.GridSize()
		j.pointsDone = j.pointsTotal
	} else {
		j.total = len(j.compiled.Points) * j.reps
		j.done = j.total
	}
	j.cond.Broadcast()
}
