package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// journalFile is the write-ahead log's file name inside JournalDir.
const journalFile = "journal.ndjson"

// journalRecord is one NDJSON line of the job journal. Two ops:
//
//   - "accept": a submission was admitted to the queue. Carries the
//     study's kind, content address, replication count, effective
//     timeout and the canonical (normalized) spec or campaign JSON —
//     everything needed to resubmit the identical study after a crash.
//   - "end": the job with the same seq reached a terminal state.
//
// An accept without a matching end is a job the daemon still owed work
// on when it stopped; startup replays exactly those.
type journalRecord struct {
	// Seq is the journal-unique job sequence number, monotonic across
	// restarts (startup resumes past the largest seq on disk). It is
	// what pairs an end with its accept: job IDs restart at j1/c1 every
	// boot, fingerprints repeat across resubmissions, seqs do neither.
	Seq int64 `json:"seq"`
	// Op is "accept" or "end".
	Op string `json:"op"`
	// Kind is "scenario" or "campaign" (accept records only).
	Kind string `json:"kind,omitempty"`
	// Key is the study's content address (accept records only).
	Key string `json:"key,omitempty"`
	// Spec is the canonical normalized scenario spec (kind "scenario").
	Spec json.RawMessage `json:"spec,omitempty"`
	// Campaign is the normalized campaign spec (kind "campaign").
	Campaign json.RawMessage `json:"campaign,omitempty"`
	// Reps is the admitted replication count (kind "scenario").
	Reps int `json:"reps,omitempty"`
	// TimeoutS is the job's effective deadline in seconds (0 = none),
	// preserved across recovery so a replayed job keeps its budget.
	TimeoutS float64 `json:"timeout_s,omitempty"`
	// State is the terminal state (end records only).
	State State `json:"state,omitempty"`
}

// journal is the append-only NDJSON write-ahead log of accepted jobs.
// Accepts are fsynced before the submission is acknowledged, so an
// acknowledged job survives a crash; ends are buffered-write only (the
// worst a lost end costs is one cache-hit replay). Terminal records
// are compacted away once enough accumulate: the file is rewritten
// with only the still-live accepts, so it stays proportional to the
// in-flight job count, not the submission history.
//
// Durability is best-effort beyond the fsync contract: a journal that
// starts failing (full disk, revoked permissions) degrades the server
// — failures are counted, surfaced through /readyz and /v1/stats, and
// the first one is logged — but never blocks serving.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seq  int64
	// live maps seq → accept record for every journaled job not yet
	// ended; it is both the replay set at startup and the survivor set
	// at compaction. Bounded by queue depth + running jobs.
	live map[int64]journalRecord
	// earlyEnd holds terminal states that arrived before their accept
	// was written (a tiny job can finish while its accept append is
	// still in flight); the accept then cancels against it and neither
	// record is written.
	earlyEnd map[int64]State
	// endsSinceCompact counts end records written since the last
	// compaction; reaching compactEvery triggers one.
	endsSinceCompact int
	compactEvery     int
	consecFailures   int64
	totalFailures    int64
	logOnce          sync.Once
	faults           *Faults
}

// journalCompactEvery is the default number of terminal records that
// triggers a compaction. Low enough that an idle-ish server's journal
// stays small, high enough that compaction I/O is rare.
const journalCompactEvery = 256

// openJournal opens (creating if needed) the journal under dir,
// recovers its state, and returns the records to replay — every accept
// without a matching end, in seq order. Corrupt trailing data (a crash
// mid-append) is truncated, not fatal: everything up to the last
// well-formed record is trusted, the rest is logged and dropped. The
// recovered file is compacted immediately, which also rewrites away
// the corrupt tail.
func openJournal(dir string, faults *Faults) (*journal, []journalRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: journal dir %s: %w", dir, err)
	}
	l := &journal{
		path:         filepath.Join(dir, journalFile),
		live:         make(map[int64]journalRecord),
		earlyEnd:     make(map[int64]State),
		compactEvery: journalCompactEvery,
		faults:       faults,
	}
	data, err := os.ReadFile(l.path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("serve: journal %s: %w", l.path, err)
	}
	good := 0 // bytes covered by well-formed records
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // partial final line: a crash mid-append
		}
		line := data[off : off+nl]
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || !rec.wellFormed() {
			break // corrupt record: trust nothing at or after it
		}
		off += nl + 1
		good = off
		if rec.Seq > l.seq {
			l.seq = rec.Seq
		}
		switch rec.Op {
		case "accept":
			l.live[rec.Seq] = rec
		case "end":
			delete(l.live, rec.Seq)
		}
	}
	if good < len(data) {
		log.Printf("serve: journal: dropping %d corrupt trailing byte(s) of %s (crash mid-append; %d live record(s) recovered)",
			len(data)-good, l.path, len(l.live))
	}
	pending := make([]journalRecord, 0, len(l.live))
	for _, rec := range l.live {
		pending = append(pending, rec)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].Seq < pending[j].Seq })

	// Compact on open: rewrites away ended pairs and the corrupt tail,
	// and leaves l.f positioned for appends.
	if err := l.rewriteLocked(); err != nil {
		return nil, nil, err
	}
	return l, pending, nil
}

// wellFormed rejects records that parsed as JSON but are not usable —
// the tail-corruption guard must not admit a half-overwritten line
// that happens to still be valid JSON.
func (r journalRecord) wellFormed() bool {
	switch r.Op {
	case "accept":
		return r.Seq > 0 && r.Key != "" &&
			((r.Kind == "scenario" && len(r.Spec) > 0 && r.Reps > 0) ||
				(r.Kind == "campaign" && len(r.Campaign) > 0))
	case "end":
		return r.Seq > 0 && r.State.Terminal()
	}
	return false
}

// next mints the next journal sequence number.
func (l *journal) next() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	return l.seq
}

// accept journals one admitted job: append + fsync, so the record is
// durable before the submission is acknowledged. If the job already
// ended (earlyEnd), both records collapse to nothing — there is
// nothing to recover.
func (l *journal) accept(rec journalRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ended := l.earlyEnd[rec.Seq]; ended {
		delete(l.earlyEnd, rec.Seq)
		return
	}
	if l.writeLocked(rec, true) {
		l.live[rec.Seq] = rec
	}
}

// end journals one terminal transition (no fsync — losing an end to a
// crash only costs a cache-hit replay) and compacts once enough
// terminal records accumulate.
func (l *journal) end(seq int64, state State) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.live[seq]; !ok {
		// Accept not written yet (the job outran its own append) or its
		// write failed; park the state so the accept can cancel against
		// it. The map stays tiny — entries are consumed by accept — but
		// a long run of failed accepts must not grow it unboundedly.
		if len(l.earlyEnd) < 1024 {
			l.earlyEnd[seq] = state
		}
		return
	}
	if l.writeLocked(journalRecord{Seq: seq, Op: "end", State: state}, false) {
		delete(l.live, seq)
		l.endsSinceCompact++
		if l.endsSinceCompact >= l.compactEvery {
			if err := l.rewriteLocked(); err != nil {
				l.fail(err)
			}
		}
	}
}

// writeLocked appends one record, optionally fsyncing, and accounts
// the outcome. l.mu must be held.
func (l *journal) writeLocked(rec journalRecord, sync bool) bool {
	data, err := json.Marshal(rec)
	if err != nil {
		l.fail(err) // unreachable: every journalRecord marshals
		return false
	}
	data = append(data, '\n')
	switch f := l.faults; {
	case f != nil && f.JournalWrite != nil:
		err = f.JournalWrite(data)
	case l.f == nil:
		err = os.ErrClosed // a late end racing close; nothing to append to
	default:
		_, err = l.f.Write(data)
	}
	if err == nil && sync {
		switch f := l.faults; {
		case f != nil && f.JournalSync != nil:
			err = f.JournalSync()
		case l.f == nil:
			err = os.ErrClosed
		default:
			err = l.f.Sync()
		}
	}
	if err != nil {
		l.fail(err)
		return false
	}
	l.consecFailures = 0
	return true
}

// fail accounts one journal write failure. The first is logged; the
// rest are only counted (a full disk must not flood the log) and
// surface through /readyz and /v1/stats.
func (l *journal) fail(err error) {
	l.consecFailures++
	l.totalFailures++
	l.logOnce.Do(func() {
		log.Printf("serve: journal: write to %s failing: %v (durability degraded; failures are counted in /v1/stats, further ones not logged)", l.path, err)
	})
}

// rewriteLocked replaces the journal file with only the live accepts
// (atomic temp + rename), resetting the compaction counter. l.mu must
// be held.
func (l *journal) rewriteLocked() error {
	recs := make([]journalRecord, 0, len(l.live))
	for _, rec := range l.live {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	var buf bytes.Buffer
	for _, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("serve: journal: compact: %w", err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, ".journal-*")
	if err != nil {
		return fmt.Errorf("serve: journal: compact: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close() //plclint:allow journalerr -- already on the compact-failure path; the temp file is removed next
		os.Remove(name)
		return fmt.Errorf("serve: journal: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //plclint:allow journalerr -- already on the compact-failure path; the temp file is removed next
		os.Remove(name)
		return fmt.Errorf("serve: journal: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: journal: compact: %w", err)
	}
	if err := os.Rename(name, l.path); err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: journal: compact: %w", err)
	}
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("serve: journal: reopen after compact: %w", err)
	}
	if l.f != nil {
		l.f.Close() //plclint:allow journalerr -- closing the pre-compaction fd; the journal already lives at the renamed path
	}
	l.f = f
	l.endsSinceCompact = 0
	return nil
}

// liveCount returns the number of accepted jobs without a terminal
// record yet — what a crash right now would replay.
func (l *journal) liveCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.live)
}

// failures snapshots the consecutive and total write-failure counts.
func (l *journal) failures() (consecutive, total int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.consecFailures, l.totalFailures
}

// close releases the journal file. Records already written stay on
// disk; live jobs stay live (that is the point — they replay).
func (l *journal) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		l.f.Close() //plclint:allow journalerr -- shutdown close; end records are unfsynced by design and replay on restart
		l.f = nil
	}
}
