package serve

// Faults is the internal fault-injection surface the robustness tests
// drive. It is nil in production — cmd/plcsrv cannot set it, there is
// no build tag, and every call site guards with a nil check, so the
// hooks cost one pointer compare on the hot path and nothing else.
// Tests (in this package) set Config.faults before the first
// submission; the channel send that admits a job orders that write
// before any worker read, so the hooks are race-free without a lock.
//
// Each hook models one concrete failure the daemon must survive:
// disk-cache write errors, journal write/fsync errors, a replication
// that panics, and a replication that stalls past the job deadline.
type Faults struct {
	// DiskCacheWrite, when non-nil, is consulted before every disk-cache
	// persistence write; a non-nil error simulates the write failing
	// (the entry is dropped exactly as a real I/O error would drop it).
	DiskCacheWrite func(key string) error
	// JournalWrite, when non-nil, replaces the journal's record write; a
	// non-nil error simulates an append failure. The record bytes are
	// passed so a test can fail selectively.
	JournalWrite func(record []byte) error
	// JournalSync, when non-nil, replaces the journal's fsync; a non-nil
	// error simulates a sync failure after a successful write.
	JournalSync func() error
	// RepHook, when non-nil, runs inside every job's per-replication
	// progress path — on the worker-pool goroutines, before progress is
	// recorded. A hook that panics exercises panic isolation; a hook
	// that sleeps exercises the per-job deadline.
	RepHook func()
	// PredictSolve, when non-nil, runs after a /v1/predict cache miss
	// registers as the in-flight leader and before it solves — a window
	// widener for coalescing tests.
	PredictSolve func()
}
