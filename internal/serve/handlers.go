package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/scenario"
)

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	// Spec is the scenario to run (same schema as the files under
	// examples/scenarios/; unknown fields are rejected).
	Spec json.RawMessage `json:"spec"`
	// Reps is the replication count per sweep point (default 10, the
	// CLI default).
	Reps int `json:"reps,omitempty"`
	// TimeoutS bounds the job's running time in seconds, capped by the
	// server's -job-timeout. 0 (or absent) inherits the server limit.
	// A job exceeding its deadline ends in state "timed_out" (504 on
	// /result).
	TimeoutS float64 `json:"timeout_s,omitempty"`
}

// SubmitResponse answers POST /v1/jobs.
type SubmitResponse struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State State  `json:"state"`
	// Cached: answered from the result cache, job is already done.
	Cached bool `json:"cached"`
	// Coalesced: attached to an identical queued/running job.
	Coalesced bool `json:"coalesced"`
}

// StatsResponse answers GET /v1/stats.
type StatsResponse struct {
	Counters
	CacheEntries int `json:"cache_entries"`
	// CacheBytes is the in-memory result cache's resident byte count;
	// DiskCacheBytes the disk tier's occupancy (0 without -cache-dir).
	CacheBytes     int   `json:"cache_bytes"`
	DiskCacheBytes int64 `json:"disk_cache_bytes"`
	// JournalLiveRecords counts accepted jobs the journal still owes a
	// terminal record for (0 without -journal-dir) — the replay set a
	// crash right now would leave behind.
	JournalLiveRecords int `json:"journal_live_records"`
}

// Event is one line of the GET /v1/jobs/{id}/events and
// /v1/campaigns/{id}/events NDJSON streams.
type Event struct {
	// Event is "state" (job changed lifecycle stage) or "progress"
	// (one more replication finished, or — for campaigns — a grid
	// point completed).
	Event string `json:"event"`
	State State  `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	// PointsDone/PointsTotal track grid points through a campaign job
	// (absent for scenario jobs).
	PointsDone  int `json:"points_done,omitempty"`
	PointsTotal int `json:"points_total,omitempty"`
	// Error is set on terminal failed/cancelled states.
	Error string `json:"error,omitempty"`
	// Trace carries the job's full lifecycle timeline on the terminal
	// event line only (absent on progress lines).
	Trace []TraceStage `json:"trace,omitempty"`
}

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs             submit a study (SubmitRequest)
//	POST   /v1/predict          answer a spec analytically, synchronously
//	                            (model engine; fingerprint-cached;
//	                            ?format=text for the CLI-identical text)
//	POST   /v1/campaigns        submit a campaign (CampaignRequest);
//	                            X-Cache reports hit/miss
//	GET    /v1/jobs             list scenario-job statuses in submission order
//	GET    /v1/jobs/{id}        one job's status
//	GET    /v1/jobs/{id}/result final result (JSON; ?format=text for
//	                            the CLI-identical text rendering)
//	GET    /v1/jobs/{id}/events NDJSON stream of state/progress events
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/campaigns        list campaign-job statuses
//	GET    /v1/campaigns/{id}   one campaign's status (incl. grid points)
//	GET    /v1/campaigns/{id}/result  final campaign result (JSON;
//	                            ?format=text for the sim1901 -campaign text)
//	GET    /v1/campaigns/{id}/events  NDJSON per-replication and
//	                            per-point progress
//	DELETE /v1/campaigns/{id}   cancel a queued or running campaign
//	GET    /v1/stats            counters + cache/journal occupancy
//	GET    /metrics             Prometheus text exposition (same counts
//	                            as /v1/stats, plus queue/latency
//	                            histograms and occupancy gauges)
//	GET    /healthz             liveness probe (200 while the process runs)
//	GET    /readyz              readiness probe (503 during journal
//	                            replay, queue saturation, or after
//	                            repeated journal/disk-cache write
//	                            failures; 200 otherwise)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmitCampaign)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/campaigns", s.handleListCampaigns)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

// ReadyResponse answers GET /readyz.
type ReadyResponse struct {
	Ready bool `json:"ready"`
	// Reason explains a 503 ("journal replay in progress", "job queue
	// saturated", "journal degraded: …", "disk cache degraded: …").
	Reason string `json:"reason,omitempty"`
}

// handleReady is the readiness probe: 200 when the server should
// receive traffic, 503 (with the reason) when a load balancer should
// route around it — while it replays its journal, while its queue is
// saturated, or while its journal or disk cache is failing to write.
// Liveness (/healthz) stays 200 throughout: the process is healthy,
// just not ready.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ok, reason := s.Ready()
	status := http.StatusOK
	if !ok {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterValue(s.RetryAfter()))
	}
	writeJSON(w, status, ReadyResponse{Ready: ok, Reason: reason})
}

// retryAfterValue renders a duration as the whole-second Retry-After
// header value.
func retryAfterValue(d time.Duration) string {
	return strconv.FormatInt(int64(d/time.Second), 10)
}

// writeJSON renders v with a trailing newline.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		// Should be unreachable: every payload type here marshals.
		fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
		return
	}
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decodeSpecRequest reads a SubmitRequest body and parses its spec,
// writing the 400 itself on any failure (ok=false). Shared by the
// submit and predict handlers so the two surfaces cannot drift.
func decodeSpecRequest(w http.ResponseWriter, r *http.Request) (spec scenario.Spec, req SubmitRequest, ok bool) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err))
		return scenario.Spec{}, req, false
	}
	if len(req.Spec) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("serve: missing \"spec\""))
		return scenario.Spec{}, req, false
	}
	spec, err := scenario.Parse(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return scenario.Spec{}, req, false
	}
	return spec, req, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, req, ok := decodeSpecRequest(w, r)
	if !ok {
		return
	}
	reps := req.Reps
	if reps == 0 {
		reps = 10
	}
	timeout, err := requestTimeout(req.TimeoutS)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, cached, coalesced, err := s.SubmitTimeout(spec, reps, timeout)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterValue(s.RetryAfter()))
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, SubmitResponse{
		ID: j.ID(), Key: j.Key(), State: j.Status().State,
		Cached: cached, Coalesced: coalesced,
	})
}

// handlePredict is the synchronous analytic endpoint: the submitted
// spec is forced onto the model engine and answered in-request —
// microseconds when solving, sub-millisecond end to end on a cache hit.
// The body reuses SubmitRequest; Reps is ignored (model studies always
// collapse to one deterministic evaluation). The response is the same
// Result JSON a model-engine job's /result endpoint serves —
// byte-identical, since both paths share one cache entry — and
// ?format=text returns the `sim1901 -scenario -engine model` rendering.
// An X-Cache header reports hit/miss.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	spec, _, ok := decodeSpecRequest(w, r)
	if !ok {
		return
	}
	data, text, cached, err := s.Predict(spec)
	switch {
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(text))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// requestTimeout validates and converts a request's timeout_s.
func requestTimeout(secs float64) (time.Duration, error) {
	if secs < 0 {
		return 0, fmt.Errorf("serve: \"timeout_s\" = %g must be ≥ 0", secs)
	}
	return time.Duration(secs * float64(time.Second)), nil
}

// CampaignRequest is the POST /v1/campaigns body.
type CampaignRequest struct {
	// Campaign is the campaign to run (same schema as the files under
	// examples/campaigns/; unknown fields are rejected).
	Campaign json.RawMessage `json:"campaign"`
	// TimeoutS bounds the campaign's running time in seconds, capped by
	// the server's -job-timeout. 0 (or absent) inherits the server
	// limit.
	TimeoutS float64 `json:"timeout_s,omitempty"`
}

// handleSubmitCampaign admits a campaign onto the job queue. The
// response mirrors POST /v1/jobs; an X-Cache header reports whether
// the whole campaign was answered from the result cache.
func (s *Server) handleSubmitCampaign(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req CampaignRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err))
		return
	}
	if len(req.Campaign) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("serve: missing \"campaign\""))
		return
	}
	spec, err := campaign.Parse(req.Campaign)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	timeout, err := requestTimeout(req.TimeoutS)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, cached, coalesced, err := s.SubmitCampaignTimeout(spec, timeout)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterValue(s.RetryAfter()))
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	writeJSON(w, status, SubmitResponse{
		ID: j.ID(), Key: j.Key(), State: j.Status().State,
		Cached: cached, Coalesced: coalesced,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.listStatuses(false))
}

func (s *Server) handleListCampaigns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.listStatuses(true))
}

// listStatuses snapshots every job of one kind in submission order.
func (s *Server) listStatuses(campaigns bool) []Status {
	out := []Status{}
	for _, j := range s.Jobs() {
		if j.IsCampaign() == campaigns {
			out = append(out, j.Status())
		}
	}
	return out
}

// job resolves {id} or writes a 404. Scenario jobs answer only under
// /v1/jobs and campaigns only under /v1/campaigns — the two surfaces
// share one registry but stay distinct for clients.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	wantCampaign := strings.HasPrefix(r.URL.Path, "/v1/campaigns/")
	j, ok := s.Job(id)
	if ok && j.IsCampaign() != wantCampaign {
		ok = false
	}
	if !ok {
		kind := "job"
		if wantCampaign {
			kind = "campaign"
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown %s %q", kind, id))
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	st := j.Status()
	switch st.State {
	case StateDone:
	case StateFailed:
		writeError(w, http.StatusInternalServerError, fmt.Errorf("serve: job %s failed: %s", st.ID, st.Error))
		return
	case StateCancelled:
		writeError(w, http.StatusGone, fmt.Errorf("serve: job %s was cancelled", st.ID))
		return
	case StateTimedOut:
		writeError(w, http.StatusGatewayTimeout, fmt.Errorf("serve: job %s timed out: %s", st.ID, st.Error))
		return
	default:
		// Not finished; tell the client where it stands.
		writeJSON(w, http.StatusConflict, st)
		return
	}
	data, text, _ := j.Result()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(text))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	c, entries := s.Stats()
	resp := StatsResponse{
		Counters:       c,
		CacheEntries:   entries,
		CacheBytes:     s.cache.bytesUsed(),
		DiskCacheBytes: s.cache.diskBytes(),
	}
	if s.journal != nil {
		resp.JournalLiveRecords = s.journal.liveCount()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleEvents streams the job's lifecycle as NDJSON, one Event per
// line: an initial "state" snapshot, a "progress" line per completed
// replication, a "state" line on every transition, ending with the
// terminal state. The stream also ends when the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(e Event) bool {
		if err := enc.Encode(e); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for e := range j.events(r.Context()) {
		if !emit(e) {
			return
		}
	}
}

// events returns a channel of state/progress events, starting with a
// snapshot and closed after the terminal event (or when ctx ends). A
// slow consumer blocks the sender goroutine, not the job: the job only
// broadcasts on its cond; the goroutine re-snapshots when it wakes, so
// missed intermediate progress values collapse into the latest one.
func (j *Job) events(ctx context.Context) <-chan Event {
	ch := make(chan Event)
	go func() {
		defer close(ch)
		stop := context.AfterFunc(ctx, func() {
			j.mu.Lock()
			j.cond.Broadcast()
			j.mu.Unlock()
		})
		defer stop()

		var last *Event
		for {
			j.mu.Lock()
			for ctx.Err() == nil && last != nil && j.state == last.State && j.done == last.Done && j.pointsDone == last.PointsDone {
				j.cond.Wait()
			}
			st := j.statusLocked()
			j.mu.Unlock()
			if ctx.Err() != nil {
				return
			}
			e := Event{Event: "progress", State: st.State, Done: st.Done, Total: st.Total,
				PointsDone: st.PointsDone, PointsTotal: st.PointsTotal, Error: st.Error}
			if last == nil || st.State != last.State {
				e.Event = "state"
			}
			if e.State.Terminal() {
				// The stream's last line carries the full timeline, so a
				// client that only followed events still gets the trace.
				e.Trace = st.Trace
			}
			select {
			case ch <- e:
			case <-ctx.Done():
				return
			}
			last = &e
			if e.State.Terminal() {
				return
			}
		}
	}()
	return ch
}
