package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/scenario"
)

// tinyCampaign is a fast two-axis grid over the tiny sim scenario.
func tinyCampaign(name string) campaign.Spec {
	return campaign.Spec{
		Name: name,
		Base: scenario.Spec{
			Name:          name + "-base",
			SimTimeMicros: 1e6,
			Seed:          7,
			Stations:      []scenario.Group{{Count: 1}},
		},
		Axes: []campaign.Axis{
			{Path: "n", Values: []json.RawMessage{json.RawMessage("1"), json.RawMessage("2")}},
			{Path: "stations[0].error_prob", Values: []json.RawMessage{json.RawMessage("0"), json.RawMessage("0.5")}},
		},
		Reps: 2,
	}
}

// TestCampaignComputeThenCache pins the campaign serving contract: a
// first submission computes (running every grid point), a second
// identical one is answered whole from the cache with byte-identical
// result JSON and text, and the text equals what `sim1901 -campaign`
// prints for the same spec.
func TestCampaignComputeThenCache(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()

	spec := tinyCampaign("camp-cache")
	j1, cached, coalesced, err := s.SubmitCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cached || coalesced {
		t.Fatalf("first submission: cached=%v coalesced=%v", cached, coalesced)
	}
	if !strings.HasPrefix(j1.ID(), "c") {
		t.Errorf("campaign job ID %q does not carry the campaign prefix", j1.ID())
	}
	waitDone(t, j1)
	st := j1.Status()
	if st.State != StateDone || st.Kind != "campaign" || st.PointsDone != 4 || st.PointsTotal != 4 {
		t.Fatalf("campaign status = %+v", st)
	}
	res1, text1, ok := j1.Result()
	if !ok {
		t.Fatal("campaign job has no result")
	}

	// The text must equal the CLI path: campaign.Compile + Run + Write.
	c, err := campaign.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.Run(c, campaign.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if text1 != buf.String() {
		t.Errorf("served campaign text differs from the CLI rendering:\n--- served ---\n%s--- cli ---\n%s", text1, buf.String())
	}

	j2, cached, coalesced, err := s.SubmitCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || coalesced {
		t.Fatalf("second submission: cached=%v coalesced=%v, want true/false", cached, coalesced)
	}
	if st := j2.Status(); st.State != StateDone || !st.Cached {
		t.Fatalf("cached campaign status = %+v", st)
	}
	res2, text2, _ := j2.Result()
	if !bytes.Equal(res1, res2) || text1 != text2 {
		t.Error("cached campaign result differs from the computed one")
	}

	counters, _ := s.Stats()
	if counters.Campaigns != 2 || counters.CampaignCacheHits != 1 {
		t.Errorf("counters = %+v, want 2 campaigns / 1 campaign cache hit", counters)
	}
}

// TestCampaignPointCacheSharing pins the cross-surface dedupe: a direct
// scenario submission of one expanded grid point pre-fills the cache
// entry the campaign then adopts (campaign_point_hits counts it), and
// the campaign's embedded point report is byte-identical to the direct
// job's.
func TestCampaignPointCacheSharing(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()

	spec := tinyCampaign("camp-share")
	c, err := campaign.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Run grid point 2's expanded spec as a plain scenario job first.
	direct, cached, _, err := s.Submit(c.Points[2].Spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("direct point submission unexpectedly cached")
	}
	waitDone(t, direct)
	directJSON, _, _ := direct.Result()

	j, _, _, err := s.SubmitCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	resJSON, _, _ := j.Result()
	var res CampaignResult
	if err := json.Unmarshal(resJSON, &res); err != nil {
		t.Fatal(err)
	}

	counters, _ := s.Stats()
	if counters.CampaignPointHits == 0 {
		t.Errorf("campaign adopted no cached points; counters = %+v", counters)
	}

	var directRes Result
	if err := json.Unmarshal(directJSON, &directRes); err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(res.Report.Points[2].Report)
	want, _ := json.Marshal(directRes.Report)
	if !bytes.Equal(got, want) {
		t.Errorf("campaign point 2 differs from the direct submission\ncampaign: %s\ndirect:   %s", got, want)
	}
	if res.Report.Points[2].Key != direct.Key() {
		t.Errorf("campaign point key %s != direct job key %s", res.Report.Points[2].Key, direct.Key())
	}
}

// TestCampaignHTTPAPI drives the campaign surface over httptest:
// submit, status, result (JSON and text), NDJSON events with grid-point
// progress, listing separation from scenario jobs, and the X-Cache
// header on resubmission.
func TestCampaignHTTPAPI(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	campJSON, err := json.Marshal(tinyCampaign("camp-http"))
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"campaign": %s}`, campJSON)

	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first submission X-Cache = %q, want miss", got)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	j, ok := s.Job(sub.ID)
	if !ok {
		t.Fatalf("submitted campaign %q not in registry", sub.ID)
	}
	waitDone(t, j)

	// Events: the stream must carry grid-point progress and end on the
	// terminal state.
	resp, err = http.Get(ts.URL + "/v1/campaigns/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, err := func() (string, error) {
		defer resp.Body.Close()
		var b bytes.Buffer
		_, err := b.ReadFrom(resp.Body)
		return b.String(), err
	}()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(events, `"points_total":4`) {
		t.Errorf("event stream lacks grid-point totals:\n%s", events)
	}
	if !strings.Contains(events, `"state":"done"`) {
		t.Errorf("event stream lacks the terminal state:\n%s", events)
	}

	// Result, both formats.
	resp, err = http.Get(ts.URL + "/v1/campaigns/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res CampaignResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(res.Report.Points) != 4 {
		t.Fatalf("result has %d points, want 4", len(res.Report.Points))
	}
	for _, p := range res.Report.Points {
		if p.Reps != 2 || !p.Converged {
			t.Errorf("point %d: reps=%d converged=%v, want 2/true (fixed reps)", p.Index, p.Reps, p.Converged)
		}
	}
	resp, err = http.Get(ts.URL + "/v1/campaigns/" + sub.ID + "/result?format=text")
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	text.ReadFrom(resp.Body)
	resp.Body.Close()
	if text.String() != res.Text {
		t.Error("?format=text differs from the embedded text rendering")
	}
	if !strings.Contains(res.Text, "# campaign camp-http") {
		t.Errorf("text rendering unexpected:\n%s", res.Text)
	}

	// Listing separation: /v1/campaigns lists it, /v1/jobs does not,
	// and the ID does not resolve under the scenario surface.
	var campList, jobList []Status
	for path, into := range map[string]*[]Status{"/v1/campaigns": &campList, "/v1/jobs": &jobList} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if len(campList) != 1 || campList[0].Kind != "campaign" {
		t.Errorf("campaign listing = %+v", campList)
	}
	if len(jobList) != 0 {
		t.Errorf("scenario job listing includes campaigns: %+v", jobList)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("campaign ID resolved under /v1/jobs: %d", resp.StatusCode)
	}

	// Resubmission: X-Cache hit, 200, zero additional work.
	resp, err = http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("resubmission: status %d X-Cache %q, want 200/hit", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
}

// TestCampaignInvalidSubmissions covers the fail-fast boundary: bad
// replication bounds are rejected before anything is queued, with
// messages naming the offending fields.
func TestCampaignInvalidSubmissions(t *testing.T) {
	s := mustNew(t, Config{MaxReps: 10})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := tinyCampaign("camp-bad")
	bad.Reps = 0
	bad.MinReps, bad.MaxReps = 9, 3
	bad.Targets = []campaign.Target{{Metric: "norm_throughput", CI: 0.01}}
	if _, _, _, err := s.SubmitCampaign(bad); err == nil || !strings.Contains(err.Error(), `"min_reps" = 9 > "max_reps" = 3`) {
		t.Errorf("min>max error = %v", err)
	}

	over := tinyCampaign("camp-over")
	over.Reps = 11 // above the server's MaxReps
	if _, _, _, err := s.SubmitCampaign(over); err == nil || !strings.Contains(err.Error(), "outside 1–10") {
		t.Errorf("rep-cap error = %v", err)
	}

	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(`{"campaign": {"name": "x"}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid campaign accepted: %d", resp.StatusCode)
	}
	counters, _ := s.Stats()
	if counters.Campaigns != 0 {
		t.Errorf("invalid submissions counted: %+v", counters)
	}
}

// TestCampaignDiskPersistence checks that a campaign result survives a
// server restart through the disk tier and answers byte-identically.
func TestCampaignDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, Config{CacheDir: dir})
	spec := tinyCampaign("camp-disk")
	j, _, _, err := s.SubmitCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	res1, text1, _ := j.Result()
	s.Close()

	s2 := mustNew(t, Config{CacheDir: dir})
	defer s2.Close()
	j2, cached, _, err := s2.SubmitCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("restarted server did not answer the campaign from disk")
	}
	res2, text2, _ := j2.Result()
	if !bytes.Equal(res1, res2) || text1 != text2 {
		t.Error("disk-restored campaign result differs")
	}
	counters, _ := s2.Stats()
	if counters.DiskCacheHits == 0 {
		t.Errorf("no disk hit counted: %+v", counters)
	}
}
